#include "crypto/aes.hpp"

#include <atomic>
#include <cstring>
#include <stdexcept>

#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
#define WIDELEAK_AESNI_COMPILED 1
#include <immintrin.h>
#endif

namespace wideleak::crypto {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7, 0xfb,
    0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb,
    0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49, 0x6d, 0x8b, 0xd1, 0x25,
    0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92,
    0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06,
    0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02, 0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b,
    0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e,
    0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b,
    0xfc, 0x56, 0x3e, 0x4b, 0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f,
    0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef,
    0xa0, 0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c, 0x7d};

constexpr std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

// T-tables: one AES round collapses to 16 table loads + xors. Each entry
// packs the MixColumns column {2s, s, s, 3s} for one S-box output, in the
// big-endian word orientation the round keys already use; Te1..Te3 are the
// byte rotations serving the other three rows.
struct TeTables {
  std::uint32_t t0[256]{}, t1[256]{}, t2[256]{}, t3[256]{};
};

constexpr TeTables make_te_tables() {
  TeTables t{};
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t s = kSbox[i];
    const std::uint8_t s2 = xtime(s);
    const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
    t.t0[i] = static_cast<std::uint32_t>(s2) << 24 | static_cast<std::uint32_t>(s) << 16 |
              static_cast<std::uint32_t>(s) << 8 | s3;
    t.t1[i] = static_cast<std::uint32_t>(s3) << 24 | static_cast<std::uint32_t>(s2) << 16 |
              static_cast<std::uint32_t>(s) << 8 | s;
    t.t2[i] = static_cast<std::uint32_t>(s) << 24 | static_cast<std::uint32_t>(s3) << 16 |
              static_cast<std::uint32_t>(s2) << 8 | s;
    t.t3[i] = static_cast<std::uint32_t>(s) << 24 | static_cast<std::uint32_t>(s) << 16 |
              static_cast<std::uint32_t>(s3) << 8 | s2;
  }
  return t;
}

constexpr TeTables kTe = make_te_tables();

std::uint32_t load_be32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 | static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | p[3];
}

void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

std::uint32_t sub_word(std::uint32_t w) {
  return static_cast<std::uint32_t>(kSbox[(w >> 24) & 0xff]) << 24 |
         static_cast<std::uint32_t>(kSbox[(w >> 16) & 0xff]) << 16 |
         static_cast<std::uint32_t>(kSbox[(w >> 8) & 0xff]) << 8 |
         static_cast<std::uint32_t>(kSbox[w & 0xff]);
}

std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

void add_round_key(std::uint8_t state[16], const std::uint32_t* rk) {
  for (int c = 0; c < 4; ++c) {
    state[4 * c + 0] ^= static_cast<std::uint8_t>(rk[c] >> 24);
    state[4 * c + 1] ^= static_cast<std::uint8_t>(rk[c] >> 16);
    state[4 * c + 2] ^= static_cast<std::uint8_t>(rk[c] >> 8);
    state[4 * c + 3] ^= static_cast<std::uint8_t>(rk[c]);
  }
}

void inv_sub_bytes(std::uint8_t state[16]) {
  for (int i = 0; i < 16; ++i) state[i] = kInvSbox[state[i]];
}

// State layout: state[4*c + r] = byte at row r, column c (column-major,
// matching the FIPS-197 input ordering).
void inv_shift_rows(std::uint8_t state[16]) {
  std::uint8_t tmp[16];
  std::memcpy(tmp, state, 16);
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) state[4 * ((c + r) % 4) + r] = tmp[4 * c + r];
  }
}

void inv_mix_columns(std::uint8_t state[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = state + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9);
    col[1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13);
    col[2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11);
    col[3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14);
  }
}

std::atomic<AesEngine> g_engine{AesEngine::Auto};

#if defined(WIDELEAK_AESNI_COMPILED)

// AES-NI wants the round keys as state-ordered byte vectors; our schedule
// stores big-endian words, so each key is serialized once per call. The
// conversion is 15 loads against thousands of AESENC-pipelined blocks.
__attribute__((target("aes,sse2"))) void encrypt_blocks_aesni(const std::uint32_t* rk_words,
                                                              int rounds, const std::uint8_t* in,
                                                              std::uint8_t* out,
                                                              std::size_t count) {
  __m128i rk[15];
  for (int r = 0; r <= rounds; ++r) {
    std::uint8_t b[16];
    for (int c = 0; c < 4; ++c) store_be32(b + 4 * c, rk_words[4 * r + c]);
    rk[r] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
  }
  const __m128i* src = reinterpret_cast<const __m128i*>(in);
  __m128i* dst = reinterpret_cast<__m128i*>(out);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m128i b0 = _mm_xor_si128(_mm_loadu_si128(src + i + 0), rk[0]);
    __m128i b1 = _mm_xor_si128(_mm_loadu_si128(src + i + 1), rk[0]);
    __m128i b2 = _mm_xor_si128(_mm_loadu_si128(src + i + 2), rk[0]);
    __m128i b3 = _mm_xor_si128(_mm_loadu_si128(src + i + 3), rk[0]);
    for (int r = 1; r < rounds; ++r) {
      b0 = _mm_aesenc_si128(b0, rk[r]);
      b1 = _mm_aesenc_si128(b1, rk[r]);
      b2 = _mm_aesenc_si128(b2, rk[r]);
      b3 = _mm_aesenc_si128(b3, rk[r]);
    }
    _mm_storeu_si128(dst + i + 0, _mm_aesenclast_si128(b0, rk[rounds]));
    _mm_storeu_si128(dst + i + 1, _mm_aesenclast_si128(b1, rk[rounds]));
    _mm_storeu_si128(dst + i + 2, _mm_aesenclast_si128(b2, rk[rounds]));
    _mm_storeu_si128(dst + i + 3, _mm_aesenclast_si128(b3, rk[rounds]));
  }
  for (; i < count; ++i) {
    __m128i b = _mm_xor_si128(_mm_loadu_si128(src + i), rk[0]);
    for (int r = 1; r < rounds; ++r) b = _mm_aesenc_si128(b, rk[r]);
    _mm_storeu_si128(dst + i, _mm_aesenclast_si128(b, rk[rounds]));
  }
}

#endif  // WIDELEAK_AESNI_COMPILED

}  // namespace

void set_aes_engine(AesEngine engine) { g_engine.store(engine, std::memory_order_relaxed); }

AesEngine aes_engine() { return g_engine.load(std::memory_order_relaxed); }

bool aesni_available() {
#if defined(WIDELEAK_AESNI_COMPILED)
  static const bool ok = __builtin_cpu_supports("aes") != 0;
  return ok;
#else
  return false;
#endif
}

Aes::Aes(BytesView key) {
  const std::size_t nk = key.size() / 4;  // key length in 32-bit words
  if (key.size() != 16 && key.size() != 32) {
    throw std::invalid_argument("Aes: key must be 16 or 32 bytes");
  }
  rounds_ = static_cast<int>(nk) + 6;
  const std::size_t total_words = 4 * (static_cast<std::size_t>(rounds_) + 1);

  for (std::size_t i = 0; i < nk; ++i) {
    round_keys_[i] = load_be32(key.data() + 4 * i);
  }
  std::uint32_t rcon = 0x01000000;
  for (std::size_t i = nk; i < total_words; ++i) {
    std::uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = sub_word(rot_word(temp)) ^ rcon;
      rcon = static_cast<std::uint32_t>(xtime(static_cast<std::uint8_t>(rcon >> 24))) << 24;
    } else if (nk == 8 && i % nk == 4) {
      temp = sub_word(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }
}

Aes::~Aes() { secure_wipe(round_keys_.data(), round_keys_.size() * sizeof(round_keys_[0])); }

void Aes::encrypt_block(const std::uint8_t in[kAesBlockSize],
                        std::uint8_t out[kAesBlockSize]) const {
  const std::uint32_t* rk = round_keys_.data();
  std::uint32_t s0 = load_be32(in + 0) ^ rk[0];
  std::uint32_t s1 = load_be32(in + 4) ^ rk[1];
  std::uint32_t s2 = load_be32(in + 8) ^ rk[2];
  std::uint32_t s3 = load_be32(in + 12) ^ rk[3];
  for (int round = 1; round < rounds_; ++round) {
    rk += 4;
    const std::uint32_t t0 = kTe.t0[s0 >> 24] ^ kTe.t1[(s1 >> 16) & 0xff] ^
                             kTe.t2[(s2 >> 8) & 0xff] ^ kTe.t3[s3 & 0xff] ^ rk[0];
    const std::uint32_t t1 = kTe.t0[s1 >> 24] ^ kTe.t1[(s2 >> 16) & 0xff] ^
                             kTe.t2[(s3 >> 8) & 0xff] ^ kTe.t3[s0 & 0xff] ^ rk[1];
    const std::uint32_t t2 = kTe.t0[s2 >> 24] ^ kTe.t1[(s3 >> 16) & 0xff] ^
                             kTe.t2[(s0 >> 8) & 0xff] ^ kTe.t3[s1 & 0xff] ^ rk[2];
    const std::uint32_t t3 = kTe.t0[s3 >> 24] ^ kTe.t1[(s0 >> 16) & 0xff] ^
                             kTe.t2[(s1 >> 8) & 0xff] ^ kTe.t3[s2 & 0xff] ^ rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }
  rk += 4;
  const std::uint32_t o0 = (static_cast<std::uint32_t>(kSbox[s0 >> 24]) << 24 |
                            static_cast<std::uint32_t>(kSbox[(s1 >> 16) & 0xff]) << 16 |
                            static_cast<std::uint32_t>(kSbox[(s2 >> 8) & 0xff]) << 8 |
                            kSbox[s3 & 0xff]) ^
                           rk[0];
  const std::uint32_t o1 = (static_cast<std::uint32_t>(kSbox[s1 >> 24]) << 24 |
                            static_cast<std::uint32_t>(kSbox[(s2 >> 16) & 0xff]) << 16 |
                            static_cast<std::uint32_t>(kSbox[(s3 >> 8) & 0xff]) << 8 |
                            kSbox[s0 & 0xff]) ^
                           rk[1];
  const std::uint32_t o2 = (static_cast<std::uint32_t>(kSbox[s2 >> 24]) << 24 |
                            static_cast<std::uint32_t>(kSbox[(s3 >> 16) & 0xff]) << 16 |
                            static_cast<std::uint32_t>(kSbox[(s0 >> 8) & 0xff]) << 8 |
                            kSbox[s1 & 0xff]) ^
                           rk[2];
  const std::uint32_t o3 = (static_cast<std::uint32_t>(kSbox[s3 >> 24]) << 24 |
                            static_cast<std::uint32_t>(kSbox[(s0 >> 16) & 0xff]) << 16 |
                            static_cast<std::uint32_t>(kSbox[(s1 >> 8) & 0xff]) << 8 |
                            kSbox[s2 & 0xff]) ^
                           rk[3];
  store_be32(out + 0, o0);
  store_be32(out + 4, o1);
  store_be32(out + 8, o2);
  store_be32(out + 12, o3);
}

void Aes::decrypt_block(const std::uint8_t in[kAesBlockSize],
                        std::uint8_t out[kAesBlockSize]) const {
  std::uint8_t state[16];
  std::memcpy(state, in, 16);
  add_round_key(state, round_keys_.data() + 4 * rounds_);
  for (int round = rounds_ - 1; round > 0; --round) {
    inv_shift_rows(state);
    inv_sub_bytes(state);
    add_round_key(state, round_keys_.data() + 4 * round);
    inv_mix_columns(state);
  }
  inv_shift_rows(state);
  inv_sub_bytes(state);
  add_round_key(state, round_keys_.data());
  std::memcpy(out, state, 16);
}

AesBlock Aes::encrypt_block(const AesBlock& in) const {
  AesBlock out;
  encrypt_block(in.data(), out.data());
  return out;
}

AesBlock Aes::decrypt_block(const AesBlock& in) const {
  AesBlock out;
  decrypt_block(in.data(), out.data());
  return out;
}

void Aes::encrypt_blocks(const std::uint8_t* in, std::uint8_t* out, std::size_t count) const {
#if defined(WIDELEAK_AESNI_COMPILED)
  if (aes_engine() == AesEngine::Auto && aesni_available()) {
    encrypt_blocks_aesni(round_keys_.data(), rounds_, in, out, count);
    return;
  }
#endif
  for (std::size_t i = 0; i < count; ++i) {
    encrypt_block(in + i * kAesBlockSize, out + i * kAesBlockSize);
  }
}

}  // namespace wideleak::crypto
