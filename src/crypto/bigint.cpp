#include "crypto/bigint.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace wideleak::crypto {

namespace {

constexpr std::uint64_t kBase = 1ull << 32;

}  // namespace

BigInt::BigInt(std::uint64_t value) {
  while (value != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(value));
    value >>= 32;
  }
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_bytes_be(BytesView bytes) {
  BigInt out;
  for (std::uint8_t byte : bytes) {
    out = (out << 8) + BigInt(byte);
  }
  return out;
}

Bytes BigInt::to_bytes_be(std::size_t min_len) const {
  Bytes out;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint32_t limb = limbs_[i];
    out.push_back(static_cast<std::uint8_t>(limb));
    out.push_back(static_cast<std::uint8_t>(limb >> 8));
    out.push_back(static_cast<std::uint8_t>(limb >> 16));
    out.push_back(static_cast<std::uint8_t>(limb >> 24));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  while (out.size() < min_len) out.push_back(0);
  std::reverse(out.begin(), out.end());
  return out;
}

BigInt BigInt::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  return from_bytes_be(hex_decode(padded));
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  std::string s = hex_encode(to_bytes_be());
  const std::size_t nonzero = s.find_first_not_of('0');
  return s.substr(nonzero);
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() <=> b.limbs_.size();
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] <=> b.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  BigInt out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.reserve(n + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_.push_back(static_cast<std::uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigInt operator-(const BigInt& a, const BigInt& b) {
  if (a < b) throw std::domain_error("BigInt subtraction underflow");
  BigInt out;
  out.limbs_.reserve(a.limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_.push_back(static_cast<std::uint32_t>(diff));
  }
  out.trim();
  return out;
}

BigInt operator*(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt();
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      std::uint64_t cur = static_cast<std::uint64_t>(a.limbs_[i]) * b.limbs_[j] +
                          out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + b.limbs_.size();
    while (carry) {
      std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigInt operator<<(const BigInt& a, std::size_t bits) {
  if (a.is_zero() || bits == 0) return a;
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(a.limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigInt operator>>(const BigInt& a, std::size_t bits) {
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  if (limb_shift >= a.limbs_.size()) return BigInt();
  BigInt out;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = a.limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      v |= static_cast<std::uint64_t>(a.limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

BigIntDivMod BigInt::divmod(const BigInt& a, const BigInt& b) {
  if (b.is_zero()) throw std::domain_error("BigInt division by zero");
  if (a < b) return {BigInt(), a};

  // Single-limb divisor: simple schoolbook pass.
  if (b.limbs_.size() == 1) {
    const std::uint64_t d = b.limbs_[0];
    BigInt q;
    q.limbs_.assign(a.limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | a.limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, BigInt(rem)};
  }

  // Knuth Algorithm D (TAOCP vol. 2, 4.3.1).
  const std::size_t n = b.limbs_.size();
  const std::size_t m = a.limbs_.size() - n;

  // D1: normalize so the divisor's top limb has its high bit set.
  int shift = 0;
  std::uint32_t top = b.limbs_.back();
  while ((top & 0x80000000u) == 0) {
    top <<= 1;
    ++shift;
  }
  const BigInt u_big = a << static_cast<std::size_t>(shift);
  const BigInt v_big = b << static_cast<std::size_t>(shift);
  std::vector<std::uint32_t> u = u_big.limbs_;
  u.resize(a.limbs_.size() + 1, 0);  // extra high limb for D4's borrow space
  const std::vector<std::uint32_t>& v = v_big.limbs_;

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate q-hat from the top two limbs.
    const std::uint64_t numerator = (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = numerator / v[n - 1];
    std::uint64_t rhat = numerator % v[n - 1];
    while (qhat >= kBase ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }

    // D4: multiply and subtract.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t product = qhat * v[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                          static_cast<std::int64_t>(product & 0xffffffffu) - borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<std::uint32_t>(diff);
    }
    std::int64_t diff = static_cast<std::int64_t>(u[j + n]) -
                        static_cast<std::int64_t>(carry) - borrow;
    bool negative = diff < 0;
    u[j + n] = static_cast<std::uint32_t>(diff);

    // D5/D6: if we overshot, add the divisor back and decrement q-hat.
    if (negative) {
      --qhat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum = static_cast<std::uint64_t>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<std::uint32_t>(sum);
        add_carry = sum >> 32;
      }
      u[j + n] = static_cast<std::uint32_t>(u[j + n] + add_carry);
    }
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }
  q.trim();

  BigInt r;
  r.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  r = r >> static_cast<std::size_t>(shift);
  return {q, r};
}

BigInt operator/(const BigInt& a, const BigInt& b) { return BigInt::divmod(a, b).quotient; }

BigInt operator%(const BigInt& a, const BigInt& b) { return BigInt::divmod(a, b).remainder; }

BigInt BigInt::mod_pow(const BigInt& base, const BigInt& exponent, const BigInt& modulus) {
  if (modulus.is_zero()) throw std::domain_error("mod_pow: zero modulus");
  if (modulus == BigInt(1)) return BigInt();
  BigInt result(1);
  BigInt b = base % modulus;
  const std::size_t bits = exponent.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exponent.bit(i)) result = (result * b) % modulus;
    b = (b * b) % modulus;
  }
  return result;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::mod_inverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid with sign-tracked coefficients for t.
  BigInt old_r = a % m, r = m;
  BigInt old_t(1), t;
  bool old_t_neg = false, t_neg = false;
  while (!r.is_zero()) {
    const BigIntDivMod qr = divmod(old_r, r);
    // new_t = old_t - q * t, with explicit sign handling.
    const BigInt qt = qr.quotient * t;
    BigInt new_t;
    bool new_t_neg;
    if (old_t_neg == t_neg) {
      if (old_t >= qt) {
        new_t = old_t - qt;
        new_t_neg = old_t_neg;
      } else {
        new_t = qt - old_t;
        new_t_neg = !old_t_neg;
      }
    } else {
      new_t = old_t + qt;
      new_t_neg = old_t_neg;
    }
    old_r = r;
    r = qr.remainder;
    old_t = t;
    old_t_neg = t_neg;
    t = std::move(new_t);
    t_neg = new_t_neg;
  }
  if (old_r != BigInt(1)) throw std::domain_error("mod_inverse: not invertible");
  if (old_t_neg) return m - (old_t % m);
  return old_t % m;
}

BigInt BigInt::random_below(Rng& rng, const BigInt& bound) {
  if (bound.is_zero()) throw std::domain_error("random_below: zero bound");
  const std::size_t bytes = (bound.bit_length() + 7) / 8;
  // Rejection sampling: at worst ~50% acceptance per draw.
  for (;;) {
    BigInt candidate = from_bytes_be(rng.next_bytes(bytes));
    candidate = candidate >> (bytes * 8 - bound.bit_length());
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::random_bits(Rng& rng, std::size_t bits) {
  if (bits == 0) return BigInt();
  const std::size_t bytes = (bits + 7) / 8;
  BigInt out = from_bytes_be(rng.next_bytes(bytes)) >> (bytes * 8 - bits);
  // Force the MSB so the bit length is exact.
  if (!out.bit(bits - 1)) out = out + (BigInt(1) << (bits - 1));
  return out;
}

bool BigInt::is_probable_prime(const BigInt& n, Rng& rng, int rounds) {
  static const std::array<std::uint32_t, 15> small_primes = {
      2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47};
  if (n < BigInt(2)) return false;
  for (std::uint32_t p : small_primes) {
    if (n == BigInt(p)) return true;
    if ((n % BigInt(p)).is_zero()) return false;
  }

  // Write n-1 = d * 2^s with d odd.
  const BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  std::size_t s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }

  for (int round = 0; round < rounds; ++round) {
    const BigInt a = BigInt(2) + random_below(rng, n - BigInt(4));
    BigInt x = mod_pow(a, d, n);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 0; i + 1 < s; ++i) {
      x = (x * x) % n;
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt BigInt::generate_prime(Rng& rng, std::size_t bits) {
  if (bits < 8) throw std::invalid_argument("generate_prime: need >= 8 bits");
  for (;;) {
    BigInt candidate = random_bits(rng, bits);  // MSB already set
    if (!candidate.is_odd()) candidate = candidate + BigInt(1);
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

std::uint64_t BigInt::to_u64() const {
  if (bit_length() > 64) throw std::overflow_error("BigInt::to_u64: value too large");
  std::uint64_t out = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) out = (out << 32) | limbs_[i];
  return out;
}

}  // namespace wideleak::crypto
