// SHA-1 (FIPS 180-4). Kept for protocol fidelity: real Widevine wraps the
// provisioned Device RSA key with RSA-OAEP over SHA-1, and legacy license
// metadata uses SHA-1 digests. Not used where collision resistance matters.
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.hpp"

namespace wideleak::crypto {

inline constexpr std::size_t kSha1DigestSize = 20;
inline constexpr std::size_t kSha1BlockSize = 64;

/// Incremental SHA-1.
class Sha1 {
 public:
  Sha1();
  void update(BytesView data);
  Bytes finish();

 private:
  void absorb(BytesView data);
  void process_block(const std::uint8_t block[kSha1BlockSize]);

  std::array<std::uint32_t, 5> state_{};
  std::array<std::uint8_t, kSha1BlockSize> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bits_ = 0;
};

/// One-shot convenience.
Bytes sha1(BytesView data);

}  // namespace wideleak::crypto
