// Arbitrary-precision unsigned integers, sufficient for RSA-2048.
//
// Little-endian 32-bit limbs with 64-bit intermediates; division is Knuth's
// Algorithm D so modular exponentiation stays fast enough for key
// generation inside the test suite.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace wideleak::crypto {

struct BigIntDivMod;

/// Non-negative arbitrary-precision integer.
class BigInt {
 public:
  BigInt() = default;
  BigInt(std::uint64_t value);  // NOLINT(google-explicit-constructor): numeric literal interop

  /// Big-endian byte-string (the natural wire format) conversions.
  static BigInt from_bytes_be(BytesView bytes);
  Bytes to_bytes_be(std::size_t min_len = 0) const;

  static BigInt from_hex(std::string_view hex);
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);
  friend bool operator==(const BigInt& a, const BigInt& b) = default;

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  /// Requires a >= b (these integers are unsigned). Throws otherwise.
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);
  friend BigInt operator<<(const BigInt& a, std::size_t bits);
  friend BigInt operator>>(const BigInt& a, std::size_t bits);

  /// Quotient and remainder in one pass. Throws std::domain_error on /0.
  static BigIntDivMod divmod(const BigInt& a, const BigInt& b);

  /// (base ^ exponent) mod modulus, square-and-multiply. modulus must be > 0.
  static BigInt mod_pow(const BigInt& base, const BigInt& exponent, const BigInt& modulus);

  static BigInt gcd(BigInt a, BigInt b);

  /// Multiplicative inverse of a modulo m; throws std::domain_error if none.
  static BigInt mod_inverse(const BigInt& a, const BigInt& m);

  /// Uniform random value in [0, bound).
  static BigInt random_below(Rng& rng, const BigInt& bound);

  /// Random integer with exactly `bits` bits (MSB set).
  static BigInt random_bits(Rng& rng, std::size_t bits);

  /// Miller–Rabin probabilistic primality test.
  static bool is_probable_prime(const BigInt& n, Rng& rng, int rounds = 20);

  /// Random prime with exactly `bits` bits (MSB and LSB set before search).
  static BigInt generate_prime(Rng& rng, std::size_t bits);

  std::uint64_t to_u64() const;  ///< Throws std::overflow_error if too large.

 private:
  void trim();

  std::vector<std::uint32_t> limbs_;  // little-endian; empty == 0
};

/// Result of BigInt::divmod.
struct BigIntDivMod {
  BigInt quotient;
  BigInt remainder;
};

}  // namespace wideleak::crypto
