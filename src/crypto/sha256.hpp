// SHA-256 (FIPS 180-4), from scratch. Used by HMAC, RSA OAEP/PSS/PKCS#1
// digests, TLS transcript hashing and certificate fingerprints (pinning).
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.hpp"

namespace wideleak::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
inline constexpr std::size_t kSha256BlockSize = 64;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256();
  void update(BytesView data);
  Bytes finish();

 private:
  void absorb(BytesView data);
  void process_block(const std::uint8_t block[kSha256BlockSize]);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kSha256BlockSize> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bits_ = 0;
};

/// One-shot convenience.
Bytes sha256(BytesView data);

}  // namespace wideleak::crypto
