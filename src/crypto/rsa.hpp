// RSA from scratch on top of BigInt.
//
// The Widevine ecosystem uses RSA in three places this library reproduces:
//   - the provisioned 2048-bit Device RSA Key that signs license requests
//     (RSASSA-PSS) and receives the session key (RSAES-OAEP),
//   - certificate signatures in the simulated TLS stack (PKCS#1 v1.5),
//   - the provisioning server's signing identity.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/bigint.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace wideleak::crypto {

/// Public half of an RSA key.
struct RsaPublicKey {
  BigInt n;
  BigInt e;

  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  /// Deterministic serialization (n || e as length-prefixed buffers).
  Bytes serialize() const;
  static RsaPublicKey deserialize(BytesView data);

  /// SHA-256 over the serialization — used as a pin / fingerprint.
  Bytes fingerprint() const;

  friend bool operator==(const RsaPublicKey&, const RsaPublicKey&) = default;
};

/// Full RSA key pair.
struct RsaKeyPair {
  RsaPublicKey pub;
  BigInt d;
  BigInt p;
  BigInt q;

  Bytes serialize() const;
  static RsaKeyPair deserialize(BytesView data);
};

/// Generate a key pair with an n of exactly `bits` bits, e = 65537.
RsaKeyPair rsa_generate(Rng& rng, std::size_t bits);

/// RSAES-OAEP (SHA-1 + MGF1-SHA1, empty label — the parameters the real
/// Widevine CDM uses for session-key wrap).
Bytes rsa_oaep_encrypt(const RsaPublicKey& key, Rng& rng, BytesView message);
Bytes rsa_oaep_decrypt(const RsaKeyPair& key, BytesView ciphertext);

/// RSASSA-PKCS1-v1_5 with SHA-256 (certificate signatures).
Bytes rsa_pkcs1_sign(const RsaKeyPair& key, BytesView message);
bool rsa_pkcs1_verify(const RsaPublicKey& key, BytesView message, BytesView signature);

/// RSASSA-PSS with SHA-256, salt length = 32 (license-request signatures).
Bytes rsa_pss_sign(const RsaKeyPair& key, Rng& rng, BytesView message);
bool rsa_pss_verify(const RsaPublicKey& key, BytesView message, BytesView signature);

/// MGF1 mask generation (exposed for tests).
Bytes mgf1_sha1(BytesView seed, std::size_t length);
Bytes mgf1_sha256(BytesView seed, std::size_t length);

}  // namespace wideleak::crypto
