// AES block cipher (FIPS-197), from scratch: 128- and 256-bit keys.
//
// This is the primitive under everything in the Widevine stack: the keybox
// device key, CMAC key derivation, content-key wrapping and CENC itself.
//
// Encryption has two engines behind one interface:
//   - a portable T-table path (four 1 KiB constexpr tables, one round =
//     16 loads + xors) used for single blocks and as the fallback, and
//   - an AES-NI path compiled per-function via the `target("aes")`
//     attribute (or tree-wide when __AES__ is set) and selected at runtime
//     with cpuid, used by `encrypt_blocks` for 4-block batches.
// The batch entry point is what the CENC/CTR data plane feeds: callers
// precompute a run of counter blocks and encrypt them in one call instead
// of paying per-block dispatch and per-byte loop overhead.
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.hpp"
#include "support/secret.hpp"

namespace wideleak::crypto {

inline constexpr std::size_t kAesBlockSize = 16;

using AesBlock = std::array<std::uint8_t, kAesBlockSize>;

/// Engine override for `Aes::encrypt_blocks`. `Auto` picks AES-NI when the
/// CPU has it; `Portable` forces the T-table path. Bench-only escape hatch
/// for measuring both engines on the same machine — not for product code.
enum class AesEngine { Auto, Portable };
void set_aes_engine(AesEngine engine);
AesEngine aes_engine();

/// True when this build carries the AES-NI path and the CPU supports it.
bool aesni_available();

/// One expanded AES key, usable for both encryption and decryption.
class Aes {
 public:
  /// Accepts 16- or 32-byte keys (AES-128 / AES-256).
  /// Throws std::invalid_argument otherwise.
  explicit Aes(BytesView key);
  explicit Aes(const SecretBytes& key) : Aes(key.reveal()) {}

  /// The expanded key schedule is itself key material; wipe it on teardown
  /// so a memory scan after the cipher dies recovers nothing.
  ~Aes();
  Aes(const Aes&) = default;
  Aes& operator=(const Aes&) = default;

  void encrypt_block(const std::uint8_t in[kAesBlockSize],
                     std::uint8_t out[kAesBlockSize]) const;
  void decrypt_block(const std::uint8_t in[kAesBlockSize],
                     std::uint8_t out[kAesBlockSize]) const;

  AesBlock encrypt_block(const AesBlock& in) const;
  AesBlock decrypt_block(const AesBlock& in) const;

  /// Encrypt `count` independent 16-byte blocks from `in` to `out`
  /// (ECB-style; CTR callers pass precomputed counter blocks). `in` and
  /// `out` may alias exactly. Dispatches to AES-NI when available unless
  /// the engine override says otherwise.
  void encrypt_blocks(const std::uint8_t* in, std::uint8_t* out, std::size_t count) const;

  int rounds() const { return rounds_; }

 private:
  // Round keys as 4-byte words; 4*(rounds+1) words.
  std::array<std::uint32_t, 60> round_keys_{};
  int rounds_ = 0;
};

}  // namespace wideleak::crypto
