// AES block cipher (FIPS-197), from scratch: 128- and 256-bit keys.
//
// This is the primitive under everything in the Widevine stack: the keybox
// device key, CMAC key derivation, content-key wrapping and CENC itself.
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.hpp"
#include "support/secret.hpp"

namespace wideleak::crypto {

inline constexpr std::size_t kAesBlockSize = 16;

using AesBlock = std::array<std::uint8_t, kAesBlockSize>;

/// One expanded AES key, usable for both encryption and decryption.
class Aes {
 public:
  /// Accepts 16- or 32-byte keys (AES-128 / AES-256).
  /// Throws std::invalid_argument otherwise.
  explicit Aes(BytesView key);
  explicit Aes(const SecretBytes& key) : Aes(key.reveal()) {}

  /// The expanded key schedule is itself key material; wipe it on teardown
  /// so a memory scan after the cipher dies recovers nothing.
  ~Aes();
  Aes(const Aes&) = default;
  Aes& operator=(const Aes&) = default;

  void encrypt_block(const std::uint8_t in[kAesBlockSize],
                     std::uint8_t out[kAesBlockSize]) const;
  void decrypt_block(const std::uint8_t in[kAesBlockSize],
                     std::uint8_t out[kAesBlockSize]) const;

  AesBlock encrypt_block(const AesBlock& in) const;
  AesBlock decrypt_block(const AesBlock& in) const;

  int rounds() const { return rounds_; }

 private:
  // Round keys as 4-byte words; 4*(rounds+1) words.
  std::array<std::uint32_t, 60> round_keys_{};
  int rounds_ = 0;
};

}  // namespace wideleak::crypto
