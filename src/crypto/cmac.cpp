#include "crypto/cmac.hpp"

#include <cstring>

namespace wideleak::crypto {

namespace {

// Left-shift a 16-byte block by one bit; returns the shifted-out MSB.
AesBlock shift_left(const AesBlock& in, std::uint8_t& carry_out) {
  AesBlock out{};
  std::uint8_t carry = 0;
  for (int i = 15; i >= 0; --i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    out[idx] = static_cast<std::uint8_t>((in[idx] << 1) | carry);
    carry = in[idx] >> 7;
  }
  carry_out = carry;
  return out;
}

AesBlock generate_subkey(const AesBlock& base) {
  std::uint8_t carry = 0;
  AesBlock out = shift_left(base, carry);
  if (carry) out[15] ^= 0x87;  // Rb constant for 128-bit blocks
  return out;
}

}  // namespace

Bytes aes_cmac(BytesView key, BytesView data) {
  const Aes cipher(key);

  AesBlock zero{};
  AesBlock l = cipher.encrypt_block(zero);
  AesBlock k1 = generate_subkey(l);
  AesBlock k2 = generate_subkey(k1);
  secure_wipe(l.data(), l.size());

  const std::size_t n_blocks = data.empty() ? 1 : (data.size() + 15) / 16;
  const bool last_complete = !data.empty() && data.size() % 16 == 0;

  AesBlock x{};
  for (std::size_t b = 0; b + 1 < n_blocks; ++b) {
    AesBlock block;
    for (std::size_t i = 0; i < 16; ++i) block[i] = data[16 * b + i] ^ x[i];
    x = cipher.encrypt_block(block);
  }

  AesBlock last{};
  const std::size_t last_off = (n_blocks - 1) * 16;
  if (last_complete) {
    for (std::size_t i = 0; i < 16; ++i) last[i] = data[last_off + i] ^ k1[i];
  } else {
    const std::size_t rest = data.size() - last_off;
    for (std::size_t i = 0; i < rest; ++i) last[i] = data[last_off + i];
    last[rest] = 0x80;
    for (std::size_t i = 0; i < 16; ++i) last[i] ^= k2[i];
  }
  for (std::size_t i = 0; i < 16; ++i) last[i] ^= x[i];
  AesBlock tag = cipher.encrypt_block(last);
  Bytes out(tag.begin(), tag.end());

  // K1/K2 are derived from the key alone; wipe them (and the staging
  // blocks) so nothing key-dependent survives this frame.
  secure_wipe(k1.data(), k1.size());
  secure_wipe(k2.data(), k2.size());
  secure_wipe(last.data(), last.size());
  return out;
}

Bytes cmac_counter_kdf(BytesView key, BytesView context, std::uint8_t first_counter,
                       std::size_t output_len) {
  Bytes out;
  std::uint8_t counter = first_counter;
  while (out.size() < output_len) {
    Bytes block;
    block.push_back(counter++);
    block.insert(block.end(), context.begin(), context.end());
    const Bytes tag = aes_cmac(key, block);
    out.insert(out.end(), tag.begin(), tag.end());
  }
  out.resize(output_len);
  return out;
}

}  // namespace wideleak::crypto
