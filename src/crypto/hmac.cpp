#include "crypto/hmac.hpp"

#include "crypto/sha256.hpp"

namespace wideleak::crypto {

Bytes hmac_sha256(BytesView key, BytesView data) {
  Bytes k(key.begin(), key.end());
  if (k.size() > kSha256BlockSize) k = sha256(k);
  k.resize(kSha256BlockSize, 0x00);

  Bytes ipad(kSha256BlockSize), opad(kSha256BlockSize);
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const Bytes inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  Bytes out = outer.finish();

  // The padded key copies are key-equivalent material; scrub them before
  // the stack frame unwinds.
  secure_wipe(k);
  secure_wipe(ipad);
  secure_wipe(opad);
  return out;
}

bool hmac_sha256_verify(BytesView key, BytesView data, BytesView tag) {
  return constant_time_equal(hmac_sha256(key, data), tag);
}

}  // namespace wideleak::crypto
