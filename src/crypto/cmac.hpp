// AES-CMAC (RFC 4493 / NIST SP 800-38B).
//
// CMAC is the heart of the Widevine key ladder: session encryption and MAC
// keys are derived from the keybox device key (or an RSA-wrapped session
// key) by CMAC over a counter-prefixed context buffer. The WideLeak key
// ladder re-implementation in src/core reproduces exactly this KDF.
#pragma once

#include "crypto/aes.hpp"
#include "support/bytes.hpp"
#include "support/secret.hpp"

namespace wideleak::crypto {

/// AES-CMAC tag (16 bytes) of `data` under `key` (AES-128 or AES-256 key).
Bytes aes_cmac(BytesView key, BytesView data);
inline Bytes aes_cmac(const SecretBytes& key, BytesView data) {
  return aes_cmac(key.reveal(), data);
}

/// NIST SP 800-108 KDF in CMAC counter mode, as OEMCrypto uses it:
/// out = CMAC(key, counter_i || context) for counter_i = first..first+n-1,
/// concatenated, truncated to `output_len` bytes.
Bytes cmac_counter_kdf(BytesView key, BytesView context, std::uint8_t first_counter,
                       std::size_t output_len);
inline Bytes cmac_counter_kdf(const SecretBytes& key, BytesView context,
                              std::uint8_t first_counter, std::size_t output_len) {
  return cmac_counter_kdf(key.reveal(), context, first_counter, output_len);
}

}  // namespace wideleak::crypto
