// Block-cipher modes used across the DRM stack:
//   - ECB: single-block operations inside the key ladder,
//   - CBC + PKCS#7: content-key wrapping in license responses,
//   - CTR: CENC 'cenc' scheme sample encryption and TLS record protection.
#pragma once

#include "crypto/aes.hpp"
#include "support/bytes.hpp"

namespace wideleak::crypto {

/// AES-CBC encrypt with PKCS#7 padding. `iv` must be 16 bytes.
Bytes aes_cbc_encrypt(const Aes& key, BytesView iv, BytesView plaintext);

/// AES-CBC decrypt + PKCS#7 unpad. Throws CryptoError on bad padding.
Bytes aes_cbc_decrypt(const Aes& key, BytesView iv, BytesView ciphertext);

/// AES-CBC without padding (input must be a multiple of 16 bytes); used by
/// the keybox-provisioning rewrap where lengths are fixed.
Bytes aes_cbc_encrypt_nopad(const Aes& key, BytesView iv, BytesView plaintext);
Bytes aes_cbc_decrypt_nopad(const Aes& key, BytesView iv, BytesView ciphertext);

/// AES-CTR keystream XOR. Encrypt and decrypt are the same operation.
/// `iv` is the initial 16-byte counter block; the low 64 bits increment.
Bytes aes_ctr_crypt(const Aes& key, BytesView iv, BytesView data);

/// AES-CTR over `data` starting at block offset `block_offset` with an
/// additional byte offset into that block — what CENC subsample decryption
/// needs when a sample's protected ranges are discontiguous.
class AesCtrStream {
 public:
  AesCtrStream(const Aes& key, BytesView iv);

  /// XOR the next `data.size()` keystream bytes into a copy of `data`.
  Bytes process(BytesView data);

  /// Skip `n` keystream bytes without producing output.
  void skip(std::size_t n);

 private:
  void refill();

  const Aes& key_;
  AesBlock counter_{};
  AesBlock keystream_{};
  std::size_t used_ = kAesBlockSize;  // force refill on first use
};

}  // namespace wideleak::crypto
