// Block-cipher modes used across the DRM stack:
//   - ECB: single-block operations inside the key ladder,
//   - CBC + PKCS#7: content-key wrapping in license responses,
//   - CTR: CENC 'cenc' scheme sample encryption and TLS record protection.
#pragma once

#include <span>

#include "crypto/aes.hpp"
#include "support/bytes.hpp"

namespace wideleak::crypto {

/// AES-CBC encrypt with PKCS#7 padding. `iv` must be 16 bytes.
Bytes aes_cbc_encrypt(const Aes& key, BytesView iv, BytesView plaintext);

/// AES-CBC decrypt + PKCS#7 unpad. Throws CryptoError on bad padding.
Bytes aes_cbc_decrypt(const Aes& key, BytesView iv, BytesView ciphertext);

/// AES-CBC without padding (input must be a multiple of 16 bytes); used by
/// the keybox-provisioning rewrap where lengths are fixed.
Bytes aes_cbc_encrypt_nopad(const Aes& key, BytesView iv, BytesView plaintext);
Bytes aes_cbc_decrypt_nopad(const Aes& key, BytesView iv, BytesView ciphertext);

/// AES-CTR keystream XOR. Encrypt and decrypt are the same operation.
/// `iv` is the initial 16-byte counter block; the low 64 bits increment.
Bytes aes_ctr_crypt(const Aes& key, BytesView iv, BytesView data);

/// Same keystream, no allocation: XOR straight into `data`.
void aes_ctr_crypt_in_place(const Aes& key, BytesView iv, std::span<std::uint8_t> data);

/// AES-CTR over `data` starting at block offset `block_offset` with an
/// additional byte offset into that block — what CENC subsample decryption
/// needs when a sample's protected ranges are discontiguous.
class AesCtrStream {
 public:
  AesCtrStream(const Aes& key, BytesView iv);

  /// XOR the next `data.size()` keystream bytes into a copy of `data`.
  /// Thin wrapper over `xor_in_place`; prefer the in-place form on hot paths.
  Bytes process(BytesView data);

  /// XOR the next `n` keystream bytes into `data` in place. This is the
  /// batched core: after draining any partial keystream block, whole blocks
  /// are encrypted straight off the counter in multi-block runs
  /// (`Aes::encrypt_blocks`) instead of one refill per 16 bytes.
  void xor_in_place(std::uint8_t* data, std::size_t n);
  void xor_in_place(std::span<std::uint8_t> data) { xor_in_place(data.data(), data.size()); }

  /// Skip `n` keystream bytes without producing output. Whole skipped
  /// blocks only advance the counter — nothing is encrypted for them.
  void skip(std::size_t n);

 private:
  void refill();

  const Aes& key_;
  AesBlock counter_{};
  AesBlock keystream_{};
  std::size_t used_ = kAesBlockSize;  // force refill on first use
};

}  // namespace wideleak::crypto
