#include "crypto/rsa.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "support/byte_io.hpp"
#include "support/errors.hpp"

namespace wideleak::crypto {

namespace {

// Raw RSA primitives. Messages are big-endian integers < n.
Bytes rsa_public_op(const RsaPublicKey& key, BytesView in) {
  const BigInt m = BigInt::from_bytes_be(in);
  if (m >= key.n) throw CryptoError("rsa: message representative out of range");
  return BigInt::mod_pow(m, key.e, key.n).to_bytes_be(key.modulus_bytes());
}

Bytes rsa_private_op(const RsaKeyPair& key, BytesView in) {
  const BigInt c = BigInt::from_bytes_be(in);
  if (c >= key.pub.n) throw CryptoError("rsa: ciphertext representative out of range");
  // CRT for a ~4x speedup: m = CRT(c^dp mod p, c^dq mod q).
  const BigInt dp = key.d % (key.p - BigInt(1));
  const BigInt dq = key.d % (key.q - BigInt(1));
  const BigInt qinv = BigInt::mod_inverse(key.q, key.p);
  const BigInt m1 = BigInt::mod_pow(c % key.p, dp, key.p);
  const BigInt m2 = BigInt::mod_pow(c % key.q, dq, key.q);
  const BigInt h = (qinv * ((m1 + key.p) - (m2 % key.p))) % key.p;
  const BigInt m = m2 + h * key.q;
  return m.to_bytes_be(key.pub.modulus_bytes());
}

Bytes mgf1(BytesView seed, std::size_t length, Bytes (*hash)(BytesView), std::size_t digest_len) {
  Bytes out;
  out.reserve(length + digest_len);
  for (std::uint32_t counter = 0; out.size() < length; ++counter) {
    ByteWriter w;
    w.raw(seed);
    w.u32(counter);
    const Bytes digest = hash(BytesView(w.data()));
    out.insert(out.end(), digest.begin(), digest.end());
  }
  out.resize(length);
  return out;
}

// DigestInfo prefix for SHA-256 (RFC 8017 A.2.4).
const Bytes kSha256DigestInfoPrefix = {0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48,
                                       0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04,
                                       0x20};

}  // namespace

Bytes mgf1_sha1(BytesView seed, std::size_t length) {
  return mgf1(seed, length, &sha1, kSha1DigestSize);
}

Bytes mgf1_sha256(BytesView seed, std::size_t length) {
  return mgf1(seed, length, &sha256, kSha256DigestSize);
}

Bytes RsaPublicKey::serialize() const {
  ByteWriter w;
  w.var_bytes(n.to_bytes_be());
  w.var_bytes(e.to_bytes_be());
  return w.take();
}

RsaPublicKey RsaPublicKey::deserialize(BytesView data) {
  ByteReader r(data);
  RsaPublicKey key;
  key.n = BigInt::from_bytes_be(r.var_bytes());
  key.e = BigInt::from_bytes_be(r.var_bytes());
  return key;
}

Bytes RsaPublicKey::fingerprint() const { return sha256(serialize()); }

Bytes RsaKeyPair::serialize() const {
  ByteWriter w;
  w.var_bytes(pub.serialize());
  w.var_bytes(d.to_bytes_be());
  w.var_bytes(p.to_bytes_be());
  w.var_bytes(q.to_bytes_be());
  return w.take();
}

RsaKeyPair RsaKeyPair::deserialize(BytesView data) {
  ByteReader r(data);
  RsaKeyPair key;
  key.pub = RsaPublicKey::deserialize(r.var_bytes());
  key.d = BigInt::from_bytes_be(r.var_bytes());
  key.p = BigInt::from_bytes_be(r.var_bytes());
  key.q = BigInt::from_bytes_be(r.var_bytes());
  return key;
}

RsaKeyPair rsa_generate(Rng& rng, std::size_t bits) {
  if (bits < 128 || bits % 2 != 0) {
    throw std::invalid_argument("rsa_generate: bits must be even and >= 128");
  }
  const BigInt e(65537);
  for (;;) {
    const BigInt p = BigInt::generate_prime(rng, bits / 2);
    const BigInt q = BigInt::generate_prime(rng, bits / 2);
    if (p == q) continue;
    const BigInt n = p * q;
    if (n.bit_length() != bits) continue;
    const BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
    if (BigInt::gcd(e, phi) != BigInt(1)) continue;
    RsaKeyPair key;
    key.pub = {n, e};
    key.d = BigInt::mod_inverse(e, phi);
    key.p = p;
    key.q = q;
    return key;
  }
}

Bytes rsa_oaep_encrypt(const RsaPublicKey& key, Rng& rng, BytesView message) {
  const std::size_t k = key.modulus_bytes();
  const std::size_t h_len = kSha1DigestSize;
  if (message.size() + 2 * h_len + 2 > k) throw CryptoError("oaep: message too long");

  // EM = 0x00 || maskedSeed || maskedDB
  const Bytes l_hash = sha1(BytesView());
  Bytes db = l_hash;
  db.insert(db.end(), k - message.size() - 2 * h_len - 2, 0x00);
  db.push_back(0x01);
  db.insert(db.end(), message.begin(), message.end());

  const Bytes seed = rng.next_bytes(h_len);
  const Bytes db_mask = mgf1_sha1(seed, db.size());
  const Bytes masked_db = xor_bytes(db, db_mask);
  const Bytes seed_mask = mgf1_sha1(masked_db, h_len);
  const Bytes masked_seed = xor_bytes(seed, seed_mask);

  Bytes em{0x00};
  em.insert(em.end(), masked_seed.begin(), masked_seed.end());
  em.insert(em.end(), masked_db.begin(), masked_db.end());
  return rsa_public_op(key, em);
}

Bytes rsa_oaep_decrypt(const RsaKeyPair& key, BytesView ciphertext) {
  const std::size_t k = key.pub.modulus_bytes();
  const std::size_t h_len = kSha1DigestSize;
  if (ciphertext.size() != k || k < 2 * h_len + 2) throw CryptoError("oaep: bad ciphertext size");

  const Bytes em = rsa_private_op(key, ciphertext);
  if (em[0] != 0x00) throw CryptoError("oaep: decryption failure");

  const BytesView masked_seed(em.data() + 1, h_len);
  const BytesView masked_db(em.data() + 1 + h_len, k - 1 - h_len);
  const Bytes seed = xor_bytes(masked_seed, mgf1_sha1(masked_db, h_len));
  const Bytes db = xor_bytes(masked_db, mgf1_sha1(seed, masked_db.size()));

  const Bytes l_hash = sha1(BytesView());
  if (!constant_time_equal(BytesView(db.data(), h_len), l_hash)) {
    throw CryptoError("oaep: decryption failure");
  }
  std::size_t i = h_len;
  while (i < db.size() && db[i] == 0x00) ++i;
  if (i == db.size() || db[i] != 0x01) throw CryptoError("oaep: decryption failure");
  return Bytes(db.begin() + static_cast<std::ptrdiff_t>(i + 1), db.end());
}

Bytes rsa_pkcs1_sign(const RsaKeyPair& key, BytesView message) {
  const std::size_t k = key.pub.modulus_bytes();
  const Bytes digest = sha256(message);
  const std::size_t t_len = kSha256DigestInfoPrefix.size() + digest.size();
  if (k < t_len + 11) throw CryptoError("pkcs1: modulus too small");

  Bytes em{0x00, 0x01};
  em.insert(em.end(), k - t_len - 3, 0xff);
  em.push_back(0x00);
  em.insert(em.end(), kSha256DigestInfoPrefix.begin(), kSha256DigestInfoPrefix.end());
  em.insert(em.end(), digest.begin(), digest.end());
  return rsa_private_op(key, em);
}

bool rsa_pkcs1_verify(const RsaPublicKey& key, BytesView message, BytesView signature) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  Bytes em;
  try {
    em = rsa_public_op(key, signature);
  } catch (const CryptoError&) {
    return false;
  }
  const Bytes digest = sha256(message);
  Bytes expected{0x00, 0x01};
  expected.insert(expected.end(), k - kSha256DigestInfoPrefix.size() - digest.size() - 3, 0xff);
  expected.push_back(0x00);
  expected.insert(expected.end(), kSha256DigestInfoPrefix.begin(), kSha256DigestInfoPrefix.end());
  expected.insert(expected.end(), digest.begin(), digest.end());
  return constant_time_equal(em, expected);
}

namespace {

// Preferred salt length; shrunk when the modulus is too small to fit it
// (RFC 8017 permits any sLen <= emLen - hLen - 2).
constexpr std::size_t kPssMaxSaltLen = 32;

std::size_t pss_salt_len(std::size_t em_bits) {
  const std::size_t em_len = (em_bits + 7) / 8;
  const std::size_t room = em_len - kSha256DigestSize - 2;
  return std::min(kPssMaxSaltLen, room);
}

// EMSA-PSS encoding/verification (RFC 8017 §9.1) with SHA-256.
Bytes pss_encode(BytesView m_hash, BytesView salt, std::size_t em_bits) {
  const std::size_t em_len = (em_bits + 7) / 8;
  const std::size_t h_len = kSha256DigestSize;
  if (em_len < h_len + salt.size() + 2) throw CryptoError("pss: encoding error");

  Bytes m_prime(8, 0x00);
  m_prime.insert(m_prime.end(), m_hash.begin(), m_hash.end());
  m_prime.insert(m_prime.end(), salt.begin(), salt.end());
  const Bytes h = sha256(m_prime);

  Bytes db(em_len - h_len - 1 - salt.size() - 1, 0x00);
  db.push_back(0x01);
  db.insert(db.end(), salt.begin(), salt.end());

  Bytes masked_db = xor_bytes(db, mgf1_sha256(h, db.size()));
  // Clear leftmost 8*emLen - emBits bits.
  masked_db[0] &= static_cast<std::uint8_t>(0xff >> (8 * em_len - em_bits));

  Bytes em = masked_db;
  em.insert(em.end(), h.begin(), h.end());
  em.push_back(0xbc);
  return em;
}

bool pss_verify_encoding(BytesView m_hash, BytesView em, std::size_t em_bits) {
  const std::size_t em_len = (em_bits + 7) / 8;
  const std::size_t h_len = kSha256DigestSize;
  if (em.size() != em_len || em_len < h_len + 2) return false;
  if (em.back() != 0xbc) return false;

  const std::size_t db_len = em_len - h_len - 1;
  Bytes masked_db(em.begin(), em.begin() + static_cast<std::ptrdiff_t>(db_len));
  const BytesView h(em.data() + db_len, h_len);
  if (masked_db[0] & static_cast<std::uint8_t>(0xff << (8 - (8 * em_len - em_bits) % 8)) &&
      (8 * em_len - em_bits) != 0) {
    return false;
  }

  Bytes db = xor_bytes(masked_db, mgf1_sha256(h, db_len));
  db[0] &= static_cast<std::uint8_t>(0xff >> (8 * em_len - em_bits));

  // Recover the salt length from the 0x00..0x00 0x01 padding structure.
  std::size_t pad_len = 0;
  while (pad_len < db_len && db[pad_len] == 0x00) ++pad_len;
  if (pad_len == db_len || db[pad_len] != 0x01) return false;
  const BytesView salt(db.data() + pad_len + 1, db_len - pad_len - 1);
  if (salt.size() != pss_salt_len(em_bits)) return false;

  Bytes m_prime(8, 0x00);
  m_prime.insert(m_prime.end(), m_hash.begin(), m_hash.end());
  m_prime.insert(m_prime.end(), salt.begin(), salt.end());
  return constant_time_equal(sha256(m_prime), h);
}

}  // namespace

Bytes rsa_pss_sign(const RsaKeyPair& key, Rng& rng, BytesView message) {
  const std::size_t em_bits = key.pub.n.bit_length() - 1;
  const Bytes salt = rng.next_bytes(pss_salt_len(em_bits));
  Bytes em = pss_encode(sha256(message), salt, em_bits);
  // Left-pad to modulus size for the integer conversion.
  if (em.size() < key.pub.modulus_bytes()) {
    em.insert(em.begin(), key.pub.modulus_bytes() - em.size(), 0x00);
  }
  return rsa_private_op(key, em);
}

bool rsa_pss_verify(const RsaPublicKey& key, BytesView message, BytesView signature) {
  if (signature.size() != key.modulus_bytes()) return false;
  Bytes em;
  try {
    em = rsa_public_op(key, signature);
  } catch (const CryptoError&) {
    return false;
  }
  const std::size_t em_bits = key.n.bit_length() - 1;
  const std::size_t em_len = (em_bits + 7) / 8;
  // Strip the potential leading zero byte from the fixed-size conversion.
  if (em.size() > em_len) {
    for (std::size_t i = 0; i < em.size() - em_len; ++i) {
      if (em[i] != 0x00) return false;
    }
    em.erase(em.begin(), em.begin() + static_cast<std::ptrdiff_t>(em.size() - em_len));
  }
  return pss_verify_encoding(sha256(message), em, em_bits);
}

}  // namespace wideleak::crypto
