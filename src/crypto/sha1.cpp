#include "crypto/sha1.hpp"

#include <cstring>

namespace wideleak::crypto {

namespace {

std::uint32_t rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

}  // namespace

Sha1::Sha1() { state_ = {0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0}; }

void Sha1::process_block(const std::uint8_t block[kSha1BlockSize]) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = static_cast<std::uint32_t>(block[4 * i]) << 24 |
           static_cast<std::uint32_t>(block[4 * i + 1]) << 16 |
           static_cast<std::uint32_t>(block[4 * i + 2]) << 8 |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3], e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdc;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6;
    }
    const std::uint32_t temp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(BytesView data) {
  total_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
  absorb(data);
}

void Sha1::absorb(BytesView data) {
  std::size_t pos = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), kSha1BlockSize - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    pos = take;
    if (buffered_ == kSha1BlockSize) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (pos + kSha1BlockSize <= data.size()) {
    process_block(data.data() + pos);
    pos += kSha1BlockSize;
  }
  if (pos < data.size()) {
    std::memcpy(buffer_.data(), data.data() + pos, data.size() - pos);
    buffered_ = data.size() - pos;
  }
}

Bytes Sha1::finish() {
  const std::uint64_t bits = total_bits_;
  Bytes pad{0x80};
  while ((buffered_ + pad.size()) % kSha1BlockSize != 56) pad.push_back(0x00);
  for (int i = 0; i < 8; ++i) pad.push_back(static_cast<std::uint8_t>(bits >> (56 - 8 * i)));
  absorb(pad);
  Bytes digest(kSha1DigestSize);
  for (int i = 0; i < 5; ++i) {
    digest[4 * i] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)]);
  }
  return digest;
}

Bytes sha1(BytesView data) {
  Sha1 h;
  h.update(data);
  return h.finish();
}

}  // namespace wideleak::crypto
