// HMAC-SHA256 (RFC 2104). License responses and TLS records are
// authenticated with it, exactly as in the real Widevine protocol where the
// derived mac_keys feed HMAC-SHA256 over license messages.
#pragma once

#include "support/bytes.hpp"

namespace wideleak::crypto {

/// HMAC-SHA256 of `data` under `key` (any key length).
Bytes hmac_sha256(BytesView key, BytesView data);

/// Constant-time verification of an HMAC-SHA256 tag.
bool hmac_sha256_verify(BytesView key, BytesView data, BytesView tag);

}  // namespace wideleak::crypto
