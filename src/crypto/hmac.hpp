// HMAC-SHA256 (RFC 2104). License responses and TLS records are
// authenticated with it, exactly as in the real Widevine protocol where the
// derived mac_keys feed HMAC-SHA256 over license messages.
#pragma once

#include "support/bytes.hpp"
#include "support/secret.hpp"

namespace wideleak::crypto {

/// HMAC-SHA256 of `data` under `key` (any key length).
Bytes hmac_sha256(BytesView key, BytesView data);
inline Bytes hmac_sha256(const SecretBytes& key, BytesView data) {
  return hmac_sha256(key.reveal(), data);
}

/// Constant-time verification of an HMAC-SHA256 tag.
bool hmac_sha256_verify(BytesView key, BytesView data, BytesView tag);
inline bool hmac_sha256_verify(const SecretBytes& key, BytesView data, BytesView tag) {
  return hmac_sha256_verify(key.reveal(), data, tag);
}

}  // namespace wideleak::crypto
