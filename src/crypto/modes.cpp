#include "crypto/modes.hpp"

#include <cstring>
#include <stdexcept>

#include "support/errors.hpp"

namespace wideleak::crypto {

namespace {

AesBlock load_iv(BytesView iv) {
  if (iv.size() != kAesBlockSize) throw std::invalid_argument("iv must be 16 bytes");
  AesBlock block;
  std::memcpy(block.data(), iv.data(), kAesBlockSize);
  return block;
}

void increment_counter(AesBlock& counter) {
  // Big-endian increment of the low 8 bytes (CENC-style counter).
  for (int i = 15; i >= 8; --i) {
    if (++counter[static_cast<std::size_t>(i)] != 0) break;
  }
}

void xor_bytes(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

// Keystream run length per encrypt_blocks call. Large enough to amortize the
// AES-NI round-key setup, small enough to live on the stack.
constexpr std::size_t kCtrBatchBlocks = 64;

Bytes cbc_encrypt_blocks(const Aes& key, BytesView iv, BytesView padded) {
  AesBlock chain = load_iv(iv);
  Bytes out(padded.size());
  for (std::size_t off = 0; off < padded.size(); off += kAesBlockSize) {
    AesBlock block;
    for (std::size_t i = 0; i < kAesBlockSize; ++i) block[i] = padded[off + i] ^ chain[i];
    key.encrypt_block(block.data(), out.data() + off);
    std::memcpy(chain.data(), out.data() + off, kAesBlockSize);
  }
  return out;
}

Bytes cbc_decrypt_blocks(const Aes& key, BytesView iv, BytesView ciphertext) {
  if (ciphertext.size() % kAesBlockSize != 0) {
    throw CryptoError("cbc decrypt: ciphertext not block-aligned");
  }
  AesBlock chain = load_iv(iv);
  Bytes out(ciphertext.size());
  for (std::size_t off = 0; off < ciphertext.size(); off += kAesBlockSize) {
    AesBlock block;
    key.decrypt_block(ciphertext.data() + off, block.data());
    for (std::size_t i = 0; i < kAesBlockSize; ++i) out[off + i] = block[i] ^ chain[i];
    std::memcpy(chain.data(), ciphertext.data() + off, kAesBlockSize);
  }
  return out;
}

}  // namespace

Bytes aes_cbc_encrypt(const Aes& key, BytesView iv, BytesView plaintext) {
  const std::size_t pad = kAesBlockSize - plaintext.size() % kAesBlockSize;
  Bytes padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));
  return cbc_encrypt_blocks(key, iv, padded);
}

Bytes aes_cbc_decrypt(const Aes& key, BytesView iv, BytesView ciphertext) {
  if (ciphertext.empty()) throw CryptoError("cbc decrypt: empty ciphertext");
  Bytes padded = cbc_decrypt_blocks(key, iv, ciphertext);
  const std::uint8_t pad = padded.back();
  if (pad == 0 || pad > kAesBlockSize || pad > padded.size()) {
    throw CryptoError("cbc decrypt: bad padding");
  }
  for (std::size_t i = padded.size() - pad; i < padded.size(); ++i) {
    if (padded[i] != pad) throw CryptoError("cbc decrypt: bad padding");
  }
  padded.resize(padded.size() - pad);
  return padded;
}

Bytes aes_cbc_encrypt_nopad(const Aes& key, BytesView iv, BytesView plaintext) {
  if (plaintext.size() % kAesBlockSize != 0) {
    throw std::invalid_argument("cbc nopad: input not block-aligned");
  }
  return cbc_encrypt_blocks(key, iv, plaintext);
}

Bytes aes_cbc_decrypt_nopad(const Aes& key, BytesView iv, BytesView ciphertext) {
  return cbc_decrypt_blocks(key, iv, ciphertext);
}

Bytes aes_ctr_crypt(const Aes& key, BytesView iv, BytesView data) {
  AesCtrStream stream(key, iv);
  return stream.process(data);
}

void aes_ctr_crypt_in_place(const Aes& key, BytesView iv, std::span<std::uint8_t> data) {
  AesCtrStream stream(key, iv);
  stream.xor_in_place(data);
}

AesCtrStream::AesCtrStream(const Aes& key, BytesView iv) : key_(key), counter_(load_iv(iv)) {}

void AesCtrStream::refill() {
  keystream_ = key_.encrypt_block(counter_);
  increment_counter(counter_);
  used_ = 0;
}

Bytes AesCtrStream::process(BytesView data) {
  Bytes out(data.begin(), data.end());
  xor_in_place(out.data(), out.size());
  return out;
}

void AesCtrStream::xor_in_place(std::uint8_t* data, std::size_t n) {
  // Drain whatever is left of the current keystream block.
  if (used_ < kAesBlockSize) {
    const std::size_t take = std::min(n, kAesBlockSize - used_);
    xor_bytes(data, keystream_.data() + used_, take);
    used_ += take;
    data += take;
    n -= take;
  }
  // Batched middle: whole blocks come straight off the counter, encrypted
  // in multi-block runs, never touching keystream_.
  std::uint8_t counters[kCtrBatchBlocks * kAesBlockSize];
  while (n >= kAesBlockSize) {
    const std::size_t blocks = std::min(n / kAesBlockSize, kCtrBatchBlocks);
    for (std::size_t b = 0; b < blocks; ++b) {
      std::memcpy(counters + b * kAesBlockSize, counter_.data(), kAesBlockSize);
      increment_counter(counter_);
    }
    key_.encrypt_blocks(counters, counters, blocks);
    xor_bytes(data, counters, blocks * kAesBlockSize);
    data += blocks * kAesBlockSize;
    n -= blocks * kAesBlockSize;
  }
  // Partial tail starts a fresh keystream block.
  if (n > 0) {
    refill();
    xor_bytes(data, keystream_.data(), n);
    used_ = n;
  }
}

void AesCtrStream::skip(std::size_t n) {
  if (used_ < kAesBlockSize) {
    const std::size_t take = std::min(n, kAesBlockSize - used_);
    used_ += take;
    n -= take;
  }
  // Whole skipped blocks never need their keystream — just advance the
  // counter.
  for (std::size_t b = n / kAesBlockSize; b > 0; --b) increment_counter(counter_);
  const std::size_t rem = n % kAesBlockSize;
  if (rem > 0) {
    refill();
    used_ = rem;
  }
}

}  // namespace wideleak::crypto
