#include "core/asset_auditor.hpp"

#include "media/cenc.hpp"
#include "media/codec.hpp"
#include "support/errors.hpp"

namespace wideleak::core {

std::string to_string(ProtectionStatus status) {
  switch (status) {
    case ProtectionStatus::Encrypted: return "Encrypted";
    case ProtectionStatus::Clear: return "Clear";
    case ProtectionStatus::Unknown: return "-";
  }
  return "?";
}

AssetAuditor::AssetAuditor(const net::Network& network, net::TrustStore trust, Rng rng)
    : client_(network, std::move(trust), std::move(rng)) {}

std::optional<Bytes> AssetAuditor::download(const std::string& host, const std::string& path) {
  net::HttpRequest req;
  req.path = path;
  const auto result = client_.request(host, req);
  if (!result.ok()) return std::nullopt;
  return result.response->body;
}

ProtectionStatus AssetAuditor::classify_file(BytesView file) {
  media::PackagedTrack track;
  try {
    track = media::PackagedTrack::from_file(file);
  } catch (const Error&) {
    return ProtectionStatus::Unknown;
  }
  if (track.encrypted) {
    // Confirm the claim: the raw samples must NOT play in a stock player.
    return media::try_play(BytesView(media::raw_sample_stream(track))).playable
               ? ProtectionStatus::Clear  // mislabeled — treat as clear
               : ProtectionStatus::Encrypted;
  }
  return media::try_play(BytesView(media::raw_sample_stream(track))).playable
             ? ProtectionStatus::Clear
             : ProtectionStatus::Unknown;
}

AssetProtectionReport AssetAuditor::audit(const HarvestedManifest& manifest) {
  AssetProtectionReport report;
  if (!manifest.mpd) return report;

  auto audit_class = [&](media::TrackType type) -> ProtectionStatus {
    ProtectionStatus verdict = ProtectionStatus::Unknown;
    for (const media::MpdRepresentation* rep : manifest.mpd->of_type(type)) {
      const auto file = download(manifest.cdn_host, rep->base_url);
      if (!file) continue;
      ++report.assets_checked;
      const ProtectionStatus status = classify_file(BytesView(*file));
      if (status == ProtectionStatus::Unknown) continue;
      // Any clear asset in the class marks the class clear (the finding is
      // about the weakest link, not the average).
      if (verdict == ProtectionStatus::Unknown || status == ProtectionStatus::Clear) {
        verdict = status;
      }
      if (type == media::TrackType::Subtitle && status == ProtectionStatus::Clear) {
        const auto track = media::PackagedTrack::from_file(BytesView(*file));
        // Concatenate payloads and apply the paper's ascii check.
        Bytes text;
        std::size_t pos = 0;
        const Bytes stream = media::raw_sample_stream(track);
        while (pos < stream.size()) {
          const auto parsed = media::Frame::parse(BytesView(stream).subspan(pos));
          if (!parsed) break;
          text.insert(text.end(), parsed->frame.payload.begin(), parsed->frame.payload.end());
          pos += parsed->consumed;
        }
        report.subtitles_ascii_readable = is_printable_ascii(BytesView(text));
      }
      if (type == media::TrackType::Audio && status == ProtectionStatus::Clear) {
        // The practical impact check: the downloaded audio plays as-is,
        // outside any app, with no account.
        const auto track = media::PackagedTrack::from_file(BytesView(*file));
        report.clear_audio_plays_without_account =
            media::try_play(BytesView(media::raw_sample_stream(track))).playable;
      }
    }
    return verdict;
  };

  report.video = audit_class(media::TrackType::Video);
  report.audio = audit_class(media::TrackType::Audio);
  report.subtitles = audit_class(media::TrackType::Subtitle);
  return report;
}

}  // namespace wideleak::core
