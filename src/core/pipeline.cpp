#include "core/pipeline.hpp"

#include <algorithm>
#include <thread>

#include "support/wall_clock.hpp"

namespace wideleak::core {

namespace {

/// Worker identity for telemetry attribution; relief workers get ids
/// >= workers_ so traces can tell them apart from the base pool.
thread_local std::size_t t_worker_index = 0;

/// Cap on injected relief workers per queue. A parked wait occupies its
/// thread for the full wall obligation, so the queue injects one relief
/// thread per concurrent park to keep ~workers_ threads schedulable; the
/// cap only bounds pathological matrices (a relief thread beyond it is
/// never needed for correctness — a parked wait always wakes itself).
constexpr std::size_t kMaxReliefWorkers = 256;

/// Concurrent on-CPU task budget. Worker threads are *parking capacity*
/// (each can hold one cell's in-flight wait); actual compute concurrency
/// beyond the hardware adds zero throughput and stretches every running
/// stage's wall latency by the time-slice factor — which is exactly what
/// pushes a wait-heavy cell's later waits past the point where any CPU
/// remains to hide them. So task *pickup* (pop or help) is gated on a
/// soft token count; a matured wait resumes without a token (liveness
/// first — the budget may briefly overshoot while a resumer drains).
std::size_t cpu_token_limit(std::size_t workers) {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min(workers, static_cast<std::size_t>(hw == 0 ? 1 : hw));
}

}  // namespace

std::size_t TaskQueue::current_worker() { return t_worker_index; }

TaskQueue::TaskQueue(std::size_t workers, support::PacingPolicy pacing, bool record_trace)
    : workers_(std::max<std::size_t>(1, workers)),
      pacing_(pacing),
      record_trace_(record_trace),
      pacer_(pacing),
      cpu_tokens_(cpu_token_limit(std::max<std::size_t>(1, workers))) {
  run_queues_.resize(workers_);
}

FenceId TaskQueue::make_fence(std::size_t producers) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const FenceId id{fences_.size()};
  fences_.push_back(Fence{producers, producers == 0, {}});
  return id;
}

TaskId TaskQueue::submit(std::function<void()> job, std::optional<FenceId> after,
                         std::optional<FenceId> signals, std::size_t cell,
                         std::string label) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const TaskId id = tasks_.size();
  tasks_.push_back(Task{std::move(job), signals, cell, std::move(label)});
  if (after && !fences_[after->value].signaled) {
    fences_[after->value].waiters.push_back(id);
    ++stats_.fence_stalls;
  } else {
    push_ready_locked(id);
    cv_.notify_one();
  }
  return id;
}

void TaskQueue::push_ready_locked(TaskId id) WL_REQUIRES(mutex_) {
  Task& task = tasks_[id];
  task.debt = task.cell < wait_debt_.size() ? wait_debt_[task.cell] : 0;
  // The profile hint rides on the priority key only — cell_wait_debt() and
  // the debt histogram never see it.
  const std::uint64_t hint = task.cell < wait_hint_.size() ? wait_hint_[task.cell] : 0;
  run_queues_[task.cell % workers_].insert(ReadyEntry{task.debt + hint, id});
  ++ready_count_;
}

void TaskQueue::set_cell_wait_hint(std::size_t cell, std::uint64_t ticks) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (cell >= wait_hint_.size()) wait_hint_.resize(cell + 1, 0);
  wait_hint_[cell] = ticks;
}

std::optional<TaskId> TaskQueue::pop_ready_locked(std::size_t me,
                                                  bool* stole) WL_REQUIRES(mutex_) {
  if (ready_count_ == 0) return std::nullopt;
  // Select the globally best entry across every run queue. The scan starts
  // at the caller's own queue and visits victims in fixed index order
  // (me+1, me+2, ... mod W): with a strict global comparison the winner is
  // a pure function of the queue contents, so the pop sequence — and
  // therefore the steal accounting — is deterministic however the threads
  // are timed.
  const std::set<ReadyEntry>* best_queue = nullptr;
  std::set<ReadyEntry>::const_iterator best;
  std::size_t best_owner = me;
  for (std::size_t k = 0; k < workers_; ++k) {
    const std::size_t owner = (me + k) % workers_;
    const std::set<ReadyEntry>& queue = run_queues_[owner];
    if (queue.empty()) continue;
    const auto candidate = queue.begin();
    if (best_queue == nullptr || *candidate < *best) {
      best_queue = &queue;
      best = candidate;
      best_owner = owner;
    }
  }
  if (best_queue == nullptr) return std::nullopt;
  const TaskId id = best->id;
  run_queues_[best_owner].erase(best);
  --ready_count_;
  if (stole != nullptr) *stole = best_owner != me;
  return id;
}

void TaskQueue::record_locked(TraceEvent::Kind kind, std::size_t cell, std::string label,
                              std::uint64_t ticks) WL_REQUIRES(mutex_) {
  trace_.push_back(TraceEvent{kind, event_seq_++, t_worker_index, cell, std::move(label),
                              ticks, pacing_.enabled() ? pacer_.elapsed_ticks() : 0});
}

void TaskQueue::signal_fence_locked(FenceId fence) WL_REQUIRES(mutex_) {
  Fence& f = fences_[fence.value];
  if (f.pending > 0) --f.pending;
  if (f.pending != 0 || f.signaled) return;
  f.signaled = true;
  // The set re-orders the released waiters by (wait debt, submission id):
  // the release order out of a fence is deterministic for equal debts
  // however its producers raced.
  for (const TaskId id : f.waiters) push_ready_locked(id);
  f.waiters.clear();
  if (target_ && target_->value == fence.value) done_ = true;
  cv_.notify_all();
}

void TaskQueue::run_task(TaskId id, bool helping) {
  std::function<void()> job;
  std::optional<FenceId> signals;
  std::size_t cell = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    Task& task = tasks_[id];
    job = std::move(task.job);
    signals = task.signals;
    cell = task.cell;
    ++cpu_active_;
    if (record_trace_) record_locked(TraceEvent::Kind::TaskBegin, cell, task.label, 0);
  }
  support::WallTimer timer;
  job();
  const double busy_ms = timer.elapsed_ms();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    --cpu_active_;
    ++stats_.tasks_executed;
    if (helping) ++stats_.helped_tasks;
    StageOccupancy& occ = stats_.stage_occupancy[tasks_[id].label];
    ++occ.tasks;
    occ.busy_ms += busy_ms;
    if (record_trace_) record_locked(TraceEvent::Kind::TaskEnd, cell, tasks_[id].label, 0);
    if (signals) signal_fence_locked(*signals);
    cv_.notify_one();  // a CPU token came free
  }
}

void TaskQueue::worker_loop(std::size_t me) {
  t_worker_index = me;
  const bool relief = me >= workers_;   // injected while a wait was parked
  const std::size_t home = me % workers_;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock,
             [&] { return done_ || (ready_count_ > 0 && cpu_active_ < cpu_tokens_); });
    if (ready_count_ == 0) {
      if (done_) return;
      continue;
    }
    // Once the target fence has signaled, drain stragglers unthrottled.
    if (!done_ && cpu_active_ >= cpu_tokens_) continue;
    bool stole = false;
    const std::optional<TaskId> id = pop_ready_locked(home, &stole);
    if (!id) continue;
    if (stole) {
      ++stats_.steals;
      if (record_trace_) record_locked(TraceEvent::Kind::Note, tasks_[*id].cell, "steal", 0);
    }
    lock.unlock();
    run_task(*id, relief);
    lock.lock();
  }
}

void TaskQueue::maybe_spawn_relief_locked() WL_REQUIRES(mutex_) {
  // One relief worker per concurrent park keeps ~workers_ threads
  // schedulable however many waits are in flight. Idle relief workers
  // sleep on the cv like any pool thread and exit with done_; after the
  // target fence has signaled, straggler parks spawn nothing (drain() is
  // already joining).
  if (done_ || relief_.size() >= parked_ || relief_.size() >= kMaxReliefWorkers) return;
  relief_.emplace_back(&TaskQueue::worker_loop, this, workers_ + relief_.size());
}

void TaskQueue::drain(FenceId until) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    target_ = until;
    done_ = fences_[until.value].signaled;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w) {
    pool.emplace_back(&TaskQueue::worker_loop, this, w);
  }
  worker_loop(0);
  for (std::thread& thread : pool) thread.join();
  // Relief workers exit on the same done_ condition; swap-and-join until
  // none remain (a straggler task finishing on a relief thread cannot
  // spawn more once done_ is set, so this terminates).
  for (;;) {
    std::vector<std::thread> relief;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      relief.swap(relief_);
    }
    if (relief.empty()) break;
    for (std::thread& thread : relief) thread.join();
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  target_.reset();
  done_ = false;
}

void TaskQueue::cancel_cell_waits(std::size_t cell) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (cell >= cancelled_.size()) cancelled_.resize(cell + 1, 0);
  if (cancelled_[cell]) return;
  cancelled_[cell] = 1;
  if (cell < wait_hint_.size()) wait_hint_[cell] = 0;
  ++stats_.cells_cancelled;
  if (record_trace_) record_locked(TraceEvent::Kind::Note, cell, "cancelled", 0);
  // Wake every parked wait so the cancelled cell's waiters release early
  // instead of sleeping out their wall deadlines.
  cv_.notify_all();
}

bool TaskQueue::cell_cancelled(std::size_t cell) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cell < cancelled_.size() && cancelled_[cell] != 0;
}

void TaskQueue::wait_ticks(std::size_t cell, std::uint64_t ticks) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.waits;
  stats_.wait_ticks += ticks;
  if (record_trace_) record_locked(TraceEvent::Kind::WaitBegin, cell, {}, ticks);
  if (cell < cancelled_.size() && cancelled_[cell] != 0) {
    // A cancelled cell's waits are virtual-only no matter the pacing mode:
    // the SimClock advance (determinism) already happened, but no wall
    // obligation is parked — the cell is being torn down, not played out.
    // Nothing is charged to the debt ledger either: debt prioritizes cells
    // that still owe wall time, and a cancelled cell owes none, so letting
    // it keep accruing would steal front-of-queue slots from live cells.
    ++stats_.waits_cancelled;
    if (record_trace_) record_locked(TraceEvent::Kind::WaitEnd, cell, {}, 0);
    return;
  }
  // Charge the wait to the cell's debt before parking: any stage that
  // becomes ready from here on sees it, so wait-prone chains are
  // front-loaded while CPU-bound chains fill the windows they open.
  if (cell >= wait_debt_.size()) wait_debt_.resize(cell + 1, 0);
  wait_debt_[cell] += ticks;
  if (!pacing_.enabled()) {
    // Unpaced waits cost nothing on the wall clock (the historical
    // behaviour): the virtual advance already happened in SimClock.
    if (record_trace_) record_locked(TraceEvent::Kind::WaitEnd, cell, {}, 0);
    return;
  }

  // Park the wall obligation on the shared wheel (keyed on the pacer's
  // monotone campaign tick axis — cell-private SimClock timelines are not
  // comparable across cells) and sleep until it matures. The injected
  // relief worker keeps the CPU token fed in the meantime: this thread
  // never runs nested work, so nothing can bury the deadline — the resume
  // lag of a parked wait is bounded by the cv timeout precision, not by
  // whatever another cell's wait happened to cost.
  const support::WallDeadline deadline = pacer_.after_ticks(ticks);
  const std::uint64_t due = pacer_.elapsed_ticks() + ticks;
  const std::uint64_t entry = wheel_.schedule(due, cell);
  ++parked_;
  stats_.max_parked = std::max(stats_.max_parked, parked_);
  --cpu_active_;       // off-CPU for the duration of the park
  maybe_spawn_relief_locked();
  cv_.notify_one();    // the freed token may unblock a pop

  bool cancelled_while_parked = false;
  for (;;) {
    if (cell < cancelled_.size() && cancelled_[cell] != 0) {
      // The cell was cancelled while this wait was parked: release it
      // immediately instead of sleeping out the wall deadline. The wheel
      // entry is cancelled below, so the wait is charged exactly once —
      // as a cancelled wait, never also as a timer wakeup.
      cancelled_while_parked = true;
      break;
    }
    wheel_.advance_to(pacer_.elapsed_ticks());
    if (pacer_.reached(deadline)) break;
    // The predicate includes the cancellation flag so the notify_all in
    // cancel_cell_waits() actually wakes this waiter through the wait.
    cv_.wait_until(lock, deadline.at,
                   [&] { return cell < cancelled_.size() && cancelled_[cell] != 0; });
  }
  if (cancelled_while_parked) {
    // Pull the tombstone off the wheel before it can expire: a cancelled
    // wait must never also count as a timer wakeup (single-charge rule).
    wheel_.cancel(entry);
    ++stats_.waits_cancelled;
  } else {
    // Our own deadline matured: expire it through the wheel (keeping the
    // expiry counter honest) and fall back to cancel if another waiter's
    // advance already served it.
    wheel_.advance_to(pacer_.elapsed_ticks());
    wheel_.cancel(entry);
  }
  // Resuming takes no token — the budget is a pickup gate, never a block
  // on finishing work already in flight.
  ++cpu_active_;
  --parked_;
  if (record_trace_) record_locked(TraceEvent::Kind::WaitEnd, cell, {}, 0);
}

void TaskQueue::trace_note(std::size_t cell, std::string label) {
  if (!record_trace_) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  record_locked(TraceEvent::Kind::Note, cell, std::move(label), 0);
}

PipelineStats TaskQueue::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  PipelineStats out = stats_;
  out.timer_wakeups = wheel_.expired_total();
  out.cpu_tokens = cpu_tokens_;
  // Log2 histogram of per-cell accumulated debt: bucket 0 = no debt,
  // bucket k >= 1 = debt in [2^(k-1), 2^k), last bucket open-ended.
  constexpr std::size_t kBuckets = 16;
  out.debt_histogram.assign(kBuckets, 0);
  for (const std::uint64_t debt : wait_debt_) {
    std::size_t bucket = 0;
    for (std::uint64_t d = debt; d != 0; d >>= 1) ++bucket;
    ++out.debt_histogram[std::min(bucket, kBuckets - 1)];
  }
  return out;
}

std::uint64_t TaskQueue::cell_wait_debt(std::size_t cell) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cell < wait_debt_.size() ? wait_debt_[cell] : 0;
}

std::vector<TraceEvent> TaskQueue::trace() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return trace_;
}

std::size_t TaskQueue::task_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

}  // namespace wideleak::core
