#include "core/pipeline.hpp"

#include <algorithm>
#include <thread>

namespace wideleak::core {

namespace {

/// Worker identity for telemetry attribution; helpers keep their own id
/// while running another cell's task.
thread_local std::size_t t_worker_index = 0;

/// Nesting bound for work-helping: a parked wait may run other tasks on
/// its own stack, and those tasks may park and help in turn. Every level
/// of nesting is a burial risk — the outer wait cannot resume until the
/// whole stack above it unwinds, so a nested park stretches the outer
/// cell's wall wait past its nominal obligation. One helped level keeps
/// workers busy through long waits; deeper stacks cost more than they
/// fill. A maxed-out waiter just sleeps out its deadline.
constexpr int kMaxHelpDepth = 2;
thread_local int t_help_depth = 0;

/// Helping is also gated on how much of the deadline is left: picking up
/// a task with only a tick or two remaining converts a precise timer
/// wakeup into an open-ended burial (the helped task finishes when it
/// finishes). Below this remainder the waiter sleeps — the fill value of
/// such a short window is at most the window itself.
constexpr std::uint64_t kMinHelpRemainingTicks = 3;

/// Concurrent on-CPU task budget. Worker threads are *parking capacity*
/// (each can hold one cell's in-flight wait); actual compute concurrency
/// beyond the hardware adds zero throughput and stretches every running
/// stage's wall latency by the time-slice factor — which is exactly what
/// pushes a wait-heavy cell's later waits past the point where any CPU
/// remains to hide them. So task *pickup* (pop or help) is gated on a
/// soft token count; a matured wait resumes without a token (liveness
/// first — the budget may briefly overshoot while a resumer drains).
std::size_t cpu_token_limit(std::size_t workers) {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min(workers, static_cast<std::size_t>(hw == 0 ? 1 : hw));
}

}  // namespace

std::size_t TaskQueue::current_worker() { return t_worker_index; }

TaskQueue::TaskQueue(std::size_t workers, support::PacingPolicy pacing, bool record_trace)
    : workers_(std::max<std::size_t>(1, workers)),
      pacing_(pacing),
      record_trace_(record_trace),
      pacer_(pacing),
      cpu_tokens_(cpu_token_limit(std::max<std::size_t>(1, workers))) {}

FenceId TaskQueue::make_fence(std::size_t producers) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const FenceId id{fences_.size()};
  fences_.push_back(Fence{producers, producers == 0, {}});
  return id;
}

TaskId TaskQueue::submit(std::function<void()> job, std::optional<FenceId> after,
                         std::optional<FenceId> signals, std::size_t cell,
                         std::string label) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const TaskId id = tasks_.size();
  tasks_.push_back(Task{std::move(job), signals, cell, std::move(label)});
  if (after && !fences_[after->value].signaled) {
    fences_[after->value].waiters.push_back(id);
    ++stats_.fence_stalls;
  } else {
    push_ready_locked(id);
    cv_.notify_one();
  }
  return id;
}

void TaskQueue::push_ready_locked(TaskId id) WL_REQUIRES(mutex_) {
  Task& task = tasks_[id];
  if (task.cell < wait_debt_.size()) task.debt = wait_debt_[task.cell];
  ready_.insert(ReadyEntry{task.debt, id});
}

void TaskQueue::record_locked(TraceEvent::Kind kind, std::size_t cell, std::string label,
                              std::uint64_t ticks) WL_REQUIRES(mutex_) {
  trace_.push_back(TraceEvent{kind, event_seq_++, t_worker_index, cell, std::move(label),
                              ticks, pacing_.enabled() ? pacer_.elapsed_ticks() : 0});
}

void TaskQueue::signal_fence_locked(FenceId fence) WL_REQUIRES(mutex_) {
  Fence& f = fences_[fence.value];
  if (f.pending > 0) --f.pending;
  if (f.pending != 0 || f.signaled) return;
  f.signaled = true;
  // The set re-orders the released waiters by (wait debt, submission id):
  // the release order out of a fence is deterministic for equal debts
  // however its producers raced.
  for (const TaskId id : f.waiters) push_ready_locked(id);
  f.waiters.clear();
  if (target_ && target_->value == fence.value) done_ = true;
  cv_.notify_all();
}

void TaskQueue::run_task(TaskId id, bool helping) {
  std::function<void()> job;
  std::optional<FenceId> signals;
  std::size_t cell = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    Task& task = tasks_[id];
    job = std::move(task.job);
    signals = task.signals;
    cell = task.cell;
    ++cpu_active_;
    if (record_trace_) record_locked(TraceEvent::Kind::TaskBegin, cell, task.label, 0);
  }
  ++t_help_depth;
  job();
  --t_help_depth;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    --cpu_active_;
    ++stats_.tasks_executed;
    if (helping) ++stats_.helped_tasks;
    if (record_trace_) record_locked(TraceEvent::Kind::TaskEnd, cell, tasks_[id].label, 0);
    if (signals) signal_fence_locked(*signals);
    cv_.notify_one();  // a CPU token came free
  }
}

void TaskQueue::worker_loop(std::size_t me) {
  t_worker_index = me;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock,
             [&] { return done_ || (!ready_.empty() && cpu_active_ < cpu_tokens_); });
    if (ready_.empty()) {
      if (done_) return;
      continue;
    }
    // Once the target fence has signaled, drain stragglers unthrottled.
    if (!done_ && cpu_active_ >= cpu_tokens_) continue;
    const TaskId id = ready_.begin()->id;
    ready_.erase(ready_.begin());
    lock.unlock();
    run_task(id, false);
    lock.lock();
  }
}

void TaskQueue::drain(FenceId until) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    target_ = until;
    done_ = fences_[until.value].signaled;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w) {
    pool.emplace_back(&TaskQueue::worker_loop, this, w);
  }
  worker_loop(0);
  for (std::thread& thread : pool) thread.join();
  const std::lock_guard<std::mutex> lock(mutex_);
  target_.reset();
  done_ = false;
}

void TaskQueue::cancel_cell_waits(std::size_t cell) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (cell >= cancelled_.size()) cancelled_.resize(cell + 1, 0);
  if (cancelled_[cell]) return;
  cancelled_[cell] = 1;
  ++stats_.cells_cancelled;
  if (record_trace_) record_locked(TraceEvent::Kind::Note, cell, "cancelled", 0);
}

bool TaskQueue::cell_cancelled(std::size_t cell) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cell < cancelled_.size() && cancelled_[cell] != 0;
}

void TaskQueue::wait_ticks(std::size_t cell, std::uint64_t ticks) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.waits;
  stats_.wait_ticks += ticks;
  // Charge the wait to the cell's debt before parking: any stage that
  // becomes ready from here on sees it, so wait-prone chains are
  // front-loaded while CPU-bound chains fill the windows they open.
  if (cell >= wait_debt_.size()) wait_debt_.resize(cell + 1, 0);
  wait_debt_[cell] += ticks;
  if (record_trace_) record_locked(TraceEvent::Kind::WaitBegin, cell, {}, ticks);
  if (cell < cancelled_.size() && cancelled_[cell] != 0) {
    // A cancelled cell's waits are virtual-only no matter the pacing mode:
    // the SimClock advance (determinism) already happened, but no wall
    // obligation is parked — the cell is being torn down, not played out.
    ++stats_.waits_cancelled;
    if (record_trace_) record_locked(TraceEvent::Kind::WaitEnd, cell, {}, 0);
    return;
  }
  if (!pacing_.enabled()) {
    // Unpaced waits cost nothing on the wall clock (the historical
    // behaviour): the virtual advance already happened in SimClock.
    if (record_trace_) record_locked(TraceEvent::Kind::WaitEnd, cell, {}, 0);
    return;
  }

  // Park the wall obligation on the shared wheel (keyed on the pacer's
  // monotone campaign tick axis — cell-private SimClock timelines are not
  // comparable across cells) and help with other work until it matures.
  const support::WallDeadline deadline = pacer_.after_ticks(ticks);
  const std::uint64_t due = pacer_.elapsed_ticks() + ticks;
  const std::uint64_t entry = wheel_.schedule(due, cell);
  ++parked_;
  stats_.max_parked = std::max(stats_.max_parked, parked_);
  --cpu_active_;       // off-CPU for the duration of the park
  cv_.notify_one();    // the freed token may unblock a pop

  for (;;) {
    const std::uint64_t now = pacer_.elapsed_ticks();
    wheel_.advance_to(now);
    if (pacer_.reached(deadline)) break;
    const bool can_help =
        t_help_depth < kMaxHelpDepth && due - now >= kMinHelpRemainingTicks;
    if (can_help && !ready_.empty() && cpu_active_ < cpu_tokens_) {
      // Help from the BACK of the debt-ordered set: the lowest-debt cell
      // is the least likely to park nested on this stack and bury our
      // matured deadline under its own wait. Free workers take the front.
      const auto last = std::prev(ready_.end());
      const TaskId id = last->id;
      ready_.erase(last);
      lock.unlock();
      run_task(id, true);
      lock.lock();
      continue;
    }
    if (can_help) {
      cv_.wait_until(lock, deadline.at,
                     [&] { return !ready_.empty() && cpu_active_ < cpu_tokens_; });
    } else {
      cv_.wait_until(lock, deadline.at);
    }
  }
  // Our own deadline matured: expire it through the wheel (keeping the
  // expiry counter honest) and fall back to cancel if another waiter's
  // advance already served it. Resuming takes no token — the budget is a
  // pickup gate, never a block on finishing work already in flight.
  wheel_.advance_to(pacer_.elapsed_ticks());
  wheel_.cancel(entry);
  ++cpu_active_;
  --parked_;
  if (record_trace_) record_locked(TraceEvent::Kind::WaitEnd, cell, {}, 0);
}

void TaskQueue::trace_note(std::size_t cell, std::string label) {
  if (!record_trace_) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  record_locked(TraceEvent::Kind::Note, cell, std::move(label), 0);
}

PipelineStats TaskQueue::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  PipelineStats out = stats_;
  out.timer_wakeups = wheel_.expired_total();
  return out;
}

std::vector<TraceEvent> TaskQueue::trace() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return trace_;
}

std::size_t TaskQueue::task_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

}  // namespace wideleak::core
