// The attack's independent re-implementation of the Widevine key ladder
// (§IV-D): given a recovered keybox and the message buffers intercepted at
// the HAL boundary, walk root-of-trust → Device RSA Key → session keys →
// content keys, exactly as the paper's PoC does.
//
// Note this code never touches the CDM's internals: all inputs are the
// keybox bytes plus traffic an attacker observes (MediaDrm request/response
// dumps from the hook trace).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "core/monitor.hpp"
#include "crypto/rsa.hpp"
#include "widevine/keybox.hpp"
#include "widevine/protocol.hpp"

namespace wideleak::core {

/// Recovered kid -> 16-byte content key.
using RecoveredKeys = std::map<std::string, Bytes>;

/// The §IV-D ladder walk, clean-room. Input: a recovered keybox plus
/// request/response buffers from the hook trace. Output: the Device RSA
/// key and kid→content-key map (never HD — the server withheld those).
/// Thread safety: owns all its state (keybox copy, recovered RSA key);
/// one instance per attacking thread, no sharing, no locks needed.
class KeyLadderAttack {
 public:
  explicit KeyLadderAttack(widevine::Keybox keybox) : keybox_(std::move(keybox)) {}

  /// Step 1: replay the provisioning exchange captured in `trace` to unwrap
  /// the Device RSA Key (needs only the keybox device key).
  std::optional<crypto::RsaKeyPair> recover_device_rsa_key(const hooking::CallTrace& trace);

  /// Step 2: replay a license exchange to unwrap content keys. Uses the
  /// recovered RSA key for the provisioned path, or the keybox directly
  /// for the legacy CMAC path. HD keys never appear: the server did not
  /// send them to this L3 client in the first place.
  RecoveredKeys recover_content_keys(const hooking::CallTrace& trace);

  /// §V-C extension (the netflix-1080p exploit adapted to this ladder):
  /// with the recovered credentials the attacker no longer needs the app —
  /// it can *forge* license requests itself, claiming any security level.
  /// A server that trusts the claim (browser-CDM behaviour) then hands an
  /// L3 device HD keys.
  widevine::LicenseRequest forge_license_request(const widevine::ClientIdentity& identity,
                                                 const std::vector<media::KeyId>& key_ids,
                                                 Rng& rng);

  /// Unwrap the keys of a response to a request whose body we know (either
  /// forged by us or intercepted).
  RecoveredKeys decrypt_license_response(const widevine::LicenseRequest& request,
                                         const widevine::LicenseResponse& response);

  const std::optional<crypto::RsaKeyPair>& device_rsa_key() const { return device_rsa_key_; }

  /// Seed the ladder with an RSA key recovered in an earlier session.
  void set_device_rsa_key(crypto::RsaKeyPair key) { device_rsa_key_ = std::move(key); }

 private:
  /// Independent copy of the CMAC-counter KDF (what the paper reverse
  /// engineered from liboemcrypto's obfuscated code).
  struct DerivedTriple {
    Bytes enc_key;
    Bytes mac_key_server;
    Bytes mac_key_client;
  };
  static DerivedTriple derive_triple(BytesView root_key, BytesView context);

  widevine::Keybox keybox_;
  std::optional<crypto::RsaKeyPair> device_rsa_key_;
};

}  // namespace wideleak::core
