#include "core/legacy_prober.hpp"

#include "core/monitor.hpp"

namespace wideleak::core {

std::string to_string(LegacyPlaybackVerdict verdict) {
  switch (verdict) {
    case LegacyPlaybackVerdict::Plays: return "plays";
    case LegacyPlaybackVerdict::ProvisioningFailed: return "provisioning failed";
    case LegacyPlaybackVerdict::PlaysViaCustomDrm: return "plays (custom DRM)";
    case LegacyPlaybackVerdict::Failed: return "failed";
  }
  return "?";
}

LegacyProbeReport classify_playback(const ott::PlaybackOutcome& outcome) {
  LegacyProbeReport report;

  if (outcome.used_custom_drm && outcome.played) {
    report.verdict = LegacyPlaybackVerdict::PlaysViaCustomDrm;
    report.detail = "embedded DRM served sub-HD keys";
    report.best_resolution = outcome.video_resolution;
    report.hd_denied = outcome.video_resolution.height <= 540;
    return report;
  }
  if (outcome.provisioning_attempted && !outcome.provisioning_ok) {
    report.verdict = LegacyPlaybackVerdict::ProvisioningFailed;
    report.detail = outcome.provisioning_error;
    return report;
  }
  if (outcome.played) {
    report.verdict = LegacyPlaybackVerdict::Plays;
    report.best_resolution = outcome.video_resolution;
    report.hd_denied = outcome.video_resolution.height <= 540;
    report.detail = "best quality " + outcome.video_resolution.label();
    return report;
  }
  report.detail = !outcome.license_ok ? outcome.license_error : outcome.failure;
  return report;
}

LegacyProbeReport probe_legacy_playback(const ott::OttAppProfile& profile,
                                        ott::StreamingEcosystem& ecosystem,
                                        android::Device& legacy_device) {
  DrmApiMonitor monitor(legacy_device);
  ott::OttApp app(profile, ecosystem, legacy_device);
  return classify_playback(app.play_title());
}

}  // namespace wideleak::core
