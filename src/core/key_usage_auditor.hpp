// Q3 auditor: classify the app's key usage against the Widevine
// recommendations — distinct keys per video quality, and a separate key for
// audio ("Recommended") versus clear audio or audio sharing a video key
// ("Minimum").
//
// Evidence comes from two places, as in the paper: the key-id metadata of
// the harvested MPD, and the Q2 downloads (which tell apart "audio really
// is clear" from "audio is encrypted but the key-id metadata is redacted in
// our region" — the Hulu/HBO Max case that stays inconclusive).
#pragma once

#include <optional>
#include <string>

#include "core/asset_auditor.hpp"
#include "core/network_monitor.hpp"

namespace wideleak::core {

enum class KeyUsageVerdict {
  Minimum,      // audio clear, or audio reuses a video key
  Recommended,  // distinct keys everywhere
  Unknown,      // metadata unavailable (regional restriction) — Table I "-"
};

std::string to_string(KeyUsageVerdict verdict);

struct KeyUsageReport {
  KeyUsageVerdict verdict = KeyUsageVerdict::Unknown;
  bool video_keys_distinct_per_resolution = false;
  bool audio_encrypted = false;
  bool audio_shares_video_key = false;
  std::size_t distinct_video_kids = 0;
  std::size_t video_representations = 0;
};

/// Pure analysis over the harvested manifest + the Q2 download evidence
/// (§IV-C Q3). Input: the MPD key-id metadata and the protection report.
/// Output: the KeyUsageReport behind Table I's "Key Usage" column.
/// Thread safety: pure function of its arguments.
KeyUsageReport audit_key_usage(const HarvestedManifest& manifest,
                               const AssetProtectionReport& assets);

}  // namespace wideleak::core
