// Q4 prober: attempt playback on the discontinued device (Nexus 5 profile —
// Android 6.0.1, Widevine L3, CDM 3.1.0) with the DRM monitor attached, and
// classify the service's stance on revoked devices.
#pragma once

#include <string>

#include "android/device.hpp"
#include "ott/ecosystem.hpp"
#include "ott/playback.hpp"

namespace wideleak::core {

/// Table I's last column.
enum class LegacyPlaybackVerdict {
  Plays,               // full circle: content displays on the legacy device
  ProvisioningFailed,  // half circle: Widevine fails during provisioning
  PlaysViaCustomDrm,   // dagger: plays, but with the embedded DRM, not Widevine
  Failed,              // anything else
};

std::string to_string(LegacyPlaybackVerdict verdict);

struct LegacyProbeReport {
  LegacyPlaybackVerdict verdict = LegacyPlaybackVerdict::Failed;
  std::string detail;
  media::Resolution best_resolution;  // quality cap observed (no HD on L3)
  bool hd_denied = false;             // license withheld HD keys
};

/// Pure classification of one observed playback into the Table I verdict.
/// Although named for the Q4 column, the mapping applies to any device
/// profile — the campaign runner uses it to label every matrix cell.
/// Thread safety: pure function of its argument.
LegacyProbeReport classify_playback(const ott::PlaybackOutcome& outcome);

/// Run the probe for one app on the provided legacy device: attach the DRM
/// monitor, drive one playback, classify. Thread safety: mutates the device
/// and ecosystem; both must be owned by the calling thread.
LegacyProbeReport probe_legacy_playback(const ott::OttAppProfile& profile,
                                        ott::StreamingEcosystem& ecosystem,
                                        android::Device& legacy_device);

}  // namespace wideleak::core
