#include "core/key_usage_auditor.hpp"

#include <set>

namespace wideleak::core {

std::string to_string(KeyUsageVerdict verdict) {
  switch (verdict) {
    case KeyUsageVerdict::Minimum: return "Minimum";
    case KeyUsageVerdict::Recommended: return "Recommended";
    case KeyUsageVerdict::Unknown: return "-";
  }
  return "?";
}

KeyUsageReport audit_key_usage(const HarvestedManifest& manifest,
                               const AssetProtectionReport& assets) {
  KeyUsageReport report;
  if (!manifest.mpd) return report;

  std::set<std::string> video_kids;
  bool every_video_has_kid = true;
  for (const auto* rep : manifest.mpd->of_type(media::TrackType::Video)) {
    ++report.video_representations;
    if (rep->default_kid) {
      video_kids.insert(hex_encode(*rep->default_kid));
    } else {
      every_video_has_kid = false;
    }
  }
  report.distinct_video_kids = video_kids.size();
  report.video_keys_distinct_per_resolution =
      every_video_has_kid && video_kids.size() == report.video_representations;

  // Audio in clear (confirmed by actually downloading and playing it): the
  // Widevine "minimal" setting regardless of key metadata.
  if (assets.audio == ProtectionStatus::Clear) {
    report.audio_encrypted = false;
    report.verdict = KeyUsageVerdict::Minimum;
    return report;
  }
  report.audio_encrypted = assets.audio == ProtectionStatus::Encrypted;

  bool any_audio_kid = false;
  bool shares = false;
  for (const auto* rep : manifest.mpd->of_type(media::TrackType::Audio)) {
    if (!rep->default_kid) continue;
    any_audio_kid = true;
    if (video_kids.contains(hex_encode(*rep->default_kid))) shares = true;
  }

  if (report.audio_encrypted && !any_audio_kid) {
    // Encrypted audio but no key-id metadata visible from our vantage
    // point: the regional-restriction case the paper could not conclude.
    report.verdict = KeyUsageVerdict::Unknown;
    return report;
  }
  if (!report.audio_encrypted && !any_audio_kid) {
    // No audio evidence at all.
    report.verdict = KeyUsageVerdict::Unknown;
    return report;
  }

  report.audio_shares_video_key = shares;
  report.verdict = shares ? KeyUsageVerdict::Minimum : KeyUsageVerdict::Recommended;
  return report;
}

}  // namespace wideleak::core
