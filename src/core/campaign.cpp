#include "core/campaign.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "core/keybox_recovery.hpp"
#include "core/network_monitor.hpp"
#include "core/ripper.hpp"
#include "ott/catalog.hpp"
#include "ott/playback.hpp"
#include "support/annotations.hpp"
#include "support/errors.hpp"
#include "support/wall_clock.hpp"

namespace wideleak::core {

std::string to_string(DeviceClass device_class) {
  switch (device_class) {
    case DeviceClass::ModernL1: return "modern-l1";
    case DeviceClass::ModernL3: return "modern-l3";
    case DeviceClass::LegacyNexus5: return "legacy-nexus5";
  }
  return "?";
}

std::string to_string(CellOutcome outcome) {
  switch (outcome) {
    case CellOutcome::Full: return "full";
    case CellOutcome::Degraded: return "degraded";
    case CellOutcome::Partial: return "partial";
  }
  return "?";
}

std::string to_string(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::Synchronous: return "synchronous";
    case ExecutionMode::Pipelined: return "pipelined";
  }
  return "?";
}

std::vector<CampaignDeviceProfile> study_device_profiles() {
  return {
      {.name = "modern-l1", .device_class = DeviceClass::ModernL1, .cdm_override = {}},
      {.name = "modern-l3", .device_class = DeviceClass::ModernL3, .cdm_override = {}},
      {.name = "legacy-nexus5", .device_class = DeviceClass::LegacyNexus5, .cdm_override = {}},
  };
}

namespace {

std::string to_string(const widevine::CdmVersion& version) {
  return std::to_string(version.major) + "." + std::to_string(version.minor);
}

widevine::CdmVersion default_cdm_for(DeviceClass device_class) {
  return device_class == DeviceClass::LegacyNexus5 ? widevine::kLegacyCdm
                                                   : widevine::kCurrentCdm;
}

android::DeviceSpec device_spec_for(const CampaignDeviceProfile& profile, std::uint64_t seed) {
  android::DeviceSpec spec;
  switch (profile.device_class) {
    case DeviceClass::ModernL1: spec = android::modern_l1_spec(seed); break;
    case DeviceClass::ModernL3: spec = android::modern_l3_only_spec(seed); break;
    case DeviceClass::LegacyNexus5: spec = android::legacy_nexus5_spec(seed); break;
  }
  if (profile.cdm_override) spec.cdm_version = *profile.cdm_override;
  return spec;
}

/// The label a cell's seed is derived from: everything identifying the cell,
/// nothing identifying the schedule.
std::string cell_label(const ott::OttAppProfile& app, const CampaignDeviceProfile& profile) {
  std::string label = app.name;
  label += '|';
  label += profile.name;
  label += '|';
  label += to_string(profile.cdm_override ? *profile.cdm_override
                                          : default_cdm_for(profile.device_class));
  return label;
}

/// Synchronous-mode pacing: a cell's simulated waits stall the worker
/// inline for the full wall obligation — the honest baseline the pipelined
/// scheduler's overlap is measured against.
class InlineWaitGate final : public support::SimClock::WaitObserver {
 public:
  explicit InlineWaitGate(const support::Pacer& pacer) : pacer_(pacer) {}
  void on_wait(std::uint64_t, std::uint64_t ticks) override {
    pacer_.stall_until(pacer_.after_ticks(ticks));
  }

 private:
  const support::Pacer& pacer_;
};

/// The fault summary a deadline-cancelled cell lands with. Shared by both
/// schedulers so the diffed report is mode-independent by construction.
std::string deadline_summary(std::uint64_t now, std::uint64_t budget, const char* stage) {
  return "deadline_exceeded: budget " + std::to_string(budget) +
         " ticks spent at tick " + std::to_string(now) + " before stage " + stage;
}

/// One cell, end to end, against a private ecosystem. This is the whole
/// WideLeak pipeline of report.cpp compressed to a single device vantage.
/// The synchronous runner's unit of work; the pipelined runner executes
/// the same sequence split across CellExecution's stage tasks — including
/// the deadline checks, which sit at the same stage boundaries in both
/// modes (they read the cell's private SimClock, so whether a cell is
/// cancelled is a pure function of its virtual timeline, never of the
/// schedule).
CellResult run_cell(const ott::OttAppProfile& app_profile,
                    const CampaignDeviceProfile& device_profile, std::uint64_t cell_seed,
                    const CampaignSpec& spec, const net::FaultPlan& fault_plan,
                    const support::Pacer* pacer) {
  // Presentation-only timing (stats lines, never diffed): the one approved
  // wall-clock doorway. Simulated time stays on the ecosystem's SimClock.
  const support::WallTimer timer;

  CellResult cell;
  cell.app = app_profile;
  cell.profile_name = device_profile.name;
  cell.device_class = device_profile.device_class;

  // The cell's private world: nothing in here outlives the cell or is
  // visible to any other worker. The chaos profile shapes the network but
  // not the seed: under FaultProfile::None the cell is bit-identical to a
  // campaign that predates fault injection.
  ott::EcosystemConfig config;
  config.seed = cell_seed;
  config.fault_plan = fault_plan;
  config.service_chaos = spec.service_chaos;
  config.breaker = spec.breaker;
  config.deadline_tick = spec.cell_deadline_ticks;
  ott::StreamingEcosystem ecosystem(config);
  ecosystem.install_app(app_profile);
  auto device = ecosystem.make_device(
      device_spec_for(device_profile, derive_stream_seed(cell_seed, "device")));
  cell.cdm = device->spec().cdm_version;

  std::optional<InlineWaitGate> gate;
  if (pacer != nullptr && pacer->policy().enabled()) {
    gate.emplace(*pacer);
    ecosystem.clock().set_wait_observer(&*gate);
  }

  // Deadline budget: identical check points to the pipelined scheduler's
  // stage-entry checks. Once expired the cell stays cancelled; the first
  // firing writes the fault summary and the flag, later calls just report.
  const std::uint64_t deadline = spec.cell_deadline_ticks;
  bool cancelled = false;
  auto past_deadline = [&](const char* stage) {
    if (cancelled) return true;
    if (deadline == 0) return false;
    const std::uint64_t now = ecosystem.clock().now();
    if (now < deadline) return false;
    cancelled = true;
    cell.outcome = CellOutcome::Partial;
    cell.fault_summary = deadline_summary(now, deadline, stage);
    cell.stats.deadline_cancelled = 1;
    return true;
  };

  try {
    // --- Instrumented playback: Q1 usage, Q2/Q3 audits off the harvest.
    // The session is stepped explicitly (not via play_title) so the
    // deadline is checked at the same per-stage boundaries as the
    // pipelined runner's play tasks; with no deadline set the loop is
    // exactly play_title.
    {
      DrmApiMonitor drm_monitor(*device);
      NetworkMonitor net_monitor(ecosystem.network(), ecosystem.fork_rng());
      ott::OttApp app(app_profile, ecosystem, *device);
      net_monitor.attach(app);
      ott::PlaybackSession playback(app, ott::PlaybackRequest{});
      while (!playback.done() && !past_deadline("play")) playback.step();

      if (!past_deadline("audit")) {
        const ott::PlaybackOutcome outcome = playback.take_outcome();

        cell.usage = drm_monitor.usage_report();
        cell.custom_drm_used =
            outcome.used_custom_drm && outcome.played && !cell.usage.widevine_used;
        cell.playback = classify_playback(outcome);

        // Degraded-mode classification: a network-attributed abort makes the
        // cell Partial; a below-request success makes it Degraded. Organic
        // failures (denials, revocation) stay Full — the audit itself ran.
        if (!outcome.played && outcome.net_error != ErrorCode::None) {
          cell.outcome = CellOutcome::Partial;
          cell.fault_summary = std::string(to_string(outcome.net_error)) + ": " +
                               (outcome.net_error_detail.empty() ? outcome.failure
                                                                 : outcome.net_error_detail);
        } else if (outcome.degraded) {
          cell.outcome = CellOutcome::Degraded;
          cell.fault_summary = outcome.degradation;
        }

        const HarvestedManifest manifest = net_monitor.harvest_manifest(&drm_monitor);
        if (manifest.mpd) {
          net::TrustStore analyst_trust;
          analyst_trust.add(ecosystem.root_ca());
          AssetAuditor auditor(ecosystem.network(), std::move(analyst_trust),
                               ecosystem.fork_rng());
          cell.assets = auditor.audit(manifest);
          cell.key_usage = audit_key_usage(manifest, cell.assets);
        }

        cell.stats.calls_hooked = drm_monitor.trace().size();
        for (const hooking::CallRecord* record :
             drm_monitor.trace().by_function("_oecc22_DecryptCENC")) {
          cell.stats.bytes_decrypted += record->input.size();
        }
        cell.stats.pin_bypasses = net_monitor.pin_bypasses();
      }
    }

    // --- Keybox recovery (CVE-2021-0639) from this cell's vantage: succeeds
    // exactly on CDMs with insecure keybox storage outside a TEE.
    if (!past_deadline("keybox")) {
      cell.keybox_recovered = recover_keybox(*device).success();
    }

    // --- The §IV-D rip. Runs (and fails honestly) on every profile; only the
    // legacy rows are expected to yield media.
    if (spec.attempt_rip && !past_deadline("rip")) {
      ContentRipper ripper(ecosystem, *device);
      RipSession rip(ripper, app_profile);
      while (!rip.done() && !past_deadline("rip")) rip.step();
      if (rip.done()) {
        RipResult result = rip.take_result();
        cell.rip_success = result.success;
        cell.content_keys_recovered = result.content_keys_recovered;
        cell.rip_resolution = result.best_video_resolution;
        cell.stats.bytes_ripped = result.drm_free_media.size();
      }
    }
  } catch (const Error& e) {
    // An injected fault surfaced as an exception past the retry layer (e.g.
    // a corrupted blob deep inside the rip). Record the truncated cell
    // instead of losing the worker; the flush below still runs exactly once.
    cell.outcome = CellOutcome::Partial;
    cell.fault_summary = e.what();
  }

  // Counter flush — after the try block so a Partial cell's license,
  // provisioning, retry and fault counters land in the campaign stats
  // exactly once, same as a Full cell's.
  ecosystem.clock().set_wait_observer(nullptr);
  const widevine::LicenseServerStats& license = ecosystem.license_server().stats();
  cell.stats.licenses_granted = license.granted;
  cell.stats.licenses_denied = license.denied;
  cell.stats.keys_issued = license.keys_issued;
  cell.stats.keys_withheld = license.keys_withheld;
  const widevine::ProvisioningServerStats& provisioning =
      ecosystem.provisioning_server().stats();
  cell.stats.provisionings_granted = provisioning.granted;
  cell.stats.provisionings_denied = provisioning.denied;
  const widevine::DrmServiceStats service = ecosystem.drm_service().stats();
  cell.stats.drm_sessions = static_cast<std::size_t>(service.sessions_opened);
  cell.stats.drm_evictions = static_cast<std::size_t>(service.sessions_evicted);
  cell.stats.drm_sessions_dropped = static_cast<std::size_t>(service.chaos.sessions_dropped);
  cell.stats.drm_shard_refusals = static_cast<std::size_t>(service.chaos.shard_refusals);
  cell.stats.drm_load_shed = static_cast<std::size_t>(service.chaos.load_shed);
  cell.stats.drm_brownout_denied = static_cast<std::size_t>(service.chaos.brownout_denied);
  cell.stats.drm_recovery_ticks = static_cast<std::size_t>(service.chaos.recovery_ticks);
  const net::RetryStats& retry = ecosystem.retry_stats();
  cell.stats.net_attempts = static_cast<std::size_t>(retry.attempts);
  cell.stats.net_retries = static_cast<std::size_t>(retry.retries);
  cell.stats.net_giveups = static_cast<std::size_t>(retry.giveups);
  cell.stats.net_reopens = static_cast<std::size_t>(retry.reopens);
  const net::CircuitBreakerStats breaker = ecosystem.breaker().stats();
  cell.stats.breaker_opens = static_cast<std::size_t>(breaker.opens);
  cell.stats.breaker_fast_fails = static_cast<std::size_t>(breaker.fast_fails);
  cell.stats.faults_injected = static_cast<std::size_t>(ecosystem.fault_stats().total_faults());
  cell.stats.sim_waits = static_cast<std::size_t>(ecosystem.clock().waits());
  cell.stats.sim_wait_ticks = static_cast<std::size_t>(ecosystem.clock().wait_ticks());

  cell.stats.wall_ms = timer.elapsed_ms();
  return cell;
}

/// One worker's end of the synchronous scheduler: a mutex-backed deque. The
/// owner pops LIFO from the back (cache-warm), thieves steal FIFO from the
/// front (oldest, largest-granularity work) — the classic work-stealing
/// shape. The mutex is fine here: cells run hundreds of milliseconds, queue
/// ops run nanoseconds, so the lock is never on the hot path.
class WorkQueue {
 public:
  void push(std::size_t index) {
    // Only called before the pool starts, but the queue's contract is "every
    // touch of items_ holds mutex_" — uncontended locks are nanoseconds.
    const std::lock_guard<std::mutex> lock(mutex_);
    items_.push_back(index);
  }

  std::optional<std::size_t> pop_back() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    const std::size_t index = items_.back();
    items_.pop_back();
    return index;
  }

  std::optional<std::size_t> steal_front() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    const std::size_t index = items_.front();
    items_.pop_front();
    return index;
  }

 private:
  std::mutex mutex_;
  std::deque<std::size_t> items_ WL_GUARDED_BY(mutex_);
};

/// Scheduler telemetry shared by the whole pool: workers record completions
/// and steals under one mutex; the runner snapshots after the join. Feeds
/// render_campaign_stats only — never the campaign report, so locking order
/// and contention here cannot perturb any diffed output. (The pipelined
/// scheduler's equivalent counters live in core::TaskQueue, under the same
/// WL_GUARDED_BY discipline.)
class ScheduleStats {
 public:
  explicit ScheduleStats(std::size_t workers) : cells_per_worker_(workers, 0) {}

  void record_cell(std::size_t worker) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++cells_per_worker_[worker];
  }

  void record_steal() {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++steals_;
  }

  std::vector<std::size_t> cells_per_worker() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return cells_per_worker_;
  }

  std::size_t steals() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return steals_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::size_t> cells_per_worker_ WL_GUARDED_BY(mutex_);
  std::size_t steals_ WL_GUARDED_BY(mutex_) = 0;
};

/// The matrix in app-major order; a cell's position (and seed) never
/// depends on the schedule, so the result vector is directly comparable
/// across worker counts.
struct PlannedCell {
  const ott::OttAppProfile* app;
  const CampaignDeviceProfile* profile;
  std::uint64_t seed;
};

/// One cell's staged execution on the pipelined scheduler: the exact
/// run_cell sequence, split at the natural await points into fence-chained
/// tasks. All state lives here; only the worker holding the cell's current
/// stage task ever touches it (the fence chain serializes the stages), so
/// the cell itself needs no locks — same ownership story as the
/// synchronous runner, at stage granularity.
///
/// The cell's SimClock routes waits to TaskQueue::wait_ticks via this
/// object (it is the clock's WaitObserver), which is how the worker gets
/// to run other cells' stages during this cell's injected latency.
struct CellExecution final : public support::SimClock::WaitObserver {
  // Immutable cell identity.
  const PlannedCell* plan = nullptr;
  std::size_t index = 0;
  const CampaignSpec* spec = nullptr;
  const net::FaultPlan* fault_plan = nullptr;
  TaskQueue* queue = nullptr;

  // Stage-built state, torn down at flush.
  CellResult cell;
  bool failed = false;      // a stage threw: skip the rest, still flush
  double busy_ms = 0.0;     // stage execution time (queue gaps excluded)
  std::size_t flush_worker = 0;

  std::unique_ptr<ott::StreamingEcosystem> ecosystem;
  std::unique_ptr<android::Device> device;
  std::unique_ptr<DrmApiMonitor> drm_monitor;
  std::unique_ptr<NetworkMonitor> net_monitor;
  std::unique_ptr<ott::OttApp> app;
  std::unique_ptr<ott::PlaybackSession> playback;
  ott::PlaybackOutcome outcome;
  std::unique_ptr<ContentRipper> ripper;
  std::unique_ptr<RipSession> rip;
  bool rip_collected = false;

  void on_wait(std::uint64_t, std::uint64_t ticks) override {
    queue->wait_ticks(index, ticks);
  }

  /// Stage wrapper: replicates run_cell's try/catch — the first Error makes
  /// the cell Partial and skips every later stage except the flush.
  template <typename Stage>
  void guarded(Stage&& stage) {
    if (failed) return;
    const support::WallTimer timer;
    try {
      stage();
    } catch (const Error& e) {
      cell.outcome = CellOutcome::Partial;
      cell.fault_summary = e.what();
      failed = true;
    }
    busy_ms += timer.elapsed_ms();
  }

  /// Stage-entry deadline check — the pipelined twin of run_cell's
  /// past_deadline lambda, at the same boundaries. On expiry the cell is
  /// cancelled: `failed` makes every later guarded stage a no-op (the
  /// unconditional flush still runs) and the queue releases any timer-wheel
  /// obligation the cell would otherwise park.
  bool check_deadline(const char* stage) {
    const std::uint64_t deadline = spec->cell_deadline_ticks;
    if (deadline == 0) return false;
    const std::uint64_t now = ecosystem->clock().now();
    if (now < deadline) return false;
    cell.outcome = CellOutcome::Partial;
    cell.fault_summary = deadline_summary(now, deadline, stage);
    cell.stats.deadline_cancelled = 1;
    failed = true;
    queue->cancel_cell_waits(index);
    return true;
  }

  void setup() {
    cell.app = *plan->app;
    cell.profile_name = plan->profile->name;
    cell.device_class = plan->profile->device_class;

    ott::EcosystemConfig config;
    config.seed = plan->seed;
    config.fault_plan = *fault_plan;
    config.service_chaos = spec->service_chaos;
    config.breaker = spec->breaker;
    config.deadline_tick = spec->cell_deadline_ticks;
    ecosystem = std::make_unique<ott::StreamingEcosystem>(config);
    ecosystem->install_app(*plan->app);
    device = ecosystem->make_device(
        device_spec_for(*plan->profile, derive_stream_seed(plan->seed, "device")));
    cell.cdm = device->spec().cdm_version;
    ecosystem->clock().set_wait_observer(this);
  }

  void attach() {
    drm_monitor = std::make_unique<DrmApiMonitor>(*device);
    net_monitor = std::make_unique<NetworkMonitor>(ecosystem->network(), ecosystem->fork_rng());
    app = std::make_unique<ott::OttApp>(*plan->app, *ecosystem, *device);
    net_monitor->attach(*app);
    playback = std::make_unique<ott::PlaybackSession>(*app, ott::PlaybackRequest{});
  }

  void play_step() {
    if (playback->done()) return;
    if (check_deadline("play")) return;
    queue->trace_note(index, playback->stage_name());
    playback->step();
  }

  void audit() {
    // The planned play tasks nearly always complete the session; if the
    // segment-step planning bound underestimated, finish it here under the
    // same per-step deadline discipline the play tasks apply — so whether a
    // cell's deadline fires is a pure function of its virtual timeline,
    // exactly matching the synchronous runner's play loop.
    while (!playback->done()) {
      if (check_deadline("play")) return;
      playback->step();
    }
    if (check_deadline("audit")) return;
    outcome = playback->take_outcome();

    cell.usage = drm_monitor->usage_report();
    cell.custom_drm_used =
        outcome.used_custom_drm && outcome.played && !cell.usage.widevine_used;
    cell.playback = classify_playback(outcome);

    if (!outcome.played && outcome.net_error != ErrorCode::None) {
      cell.outcome = CellOutcome::Partial;
      cell.fault_summary = std::string(to_string(outcome.net_error)) + ": " +
                           (outcome.net_error_detail.empty() ? outcome.failure
                                                             : outcome.net_error_detail);
    } else if (outcome.degraded) {
      cell.outcome = CellOutcome::Degraded;
      cell.fault_summary = outcome.degradation;
    }

    const HarvestedManifest manifest = net_monitor->harvest_manifest(drm_monitor.get());
    if (manifest.mpd) {
      net::TrustStore analyst_trust;
      analyst_trust.add(ecosystem->root_ca());
      AssetAuditor auditor(ecosystem->network(), std::move(analyst_trust),
                           ecosystem->fork_rng());
      cell.assets = auditor.audit(manifest);
      cell.key_usage = audit_key_usage(manifest, cell.assets);
    }

    cell.stats.calls_hooked = drm_monitor->trace().size();
    for (const hooking::CallRecord* record :
         drm_monitor->trace().by_function("_oecc22_DecryptCENC")) {
      cell.stats.bytes_decrypted += record->input.size();
    }
    cell.stats.pin_bypasses = net_monitor->pin_bypasses();

    // Same teardown order as the synchronous block end: app first, then
    // the monitors (session first of all — it borrows the app).
    playback.reset();
    app.reset();
    net_monitor.reset();
    drm_monitor.reset();
  }

  void keybox() {
    if (check_deadline("keybox")) return;
    cell.keybox_recovered = recover_keybox(*device).success();
  }

  void rip_step() {
    if (!spec->attempt_rip) return;
    if (!ripper) {
      if (check_deadline("rip")) return;
      ripper = std::make_unique<ContentRipper>(*ecosystem, *device);
      rip = std::make_unique<RipSession>(*ripper, *plan->app);
    }
    if (!rip->done()) {
      if (check_deadline("rip")) return;
      queue->trace_note(index, rip->phase_name());
      rip->step();
    }
    // Collect on the step that finishes the session — inside the guard, so
    // a throwing phase leaves the rip fields at their defaults, exactly
    // like the synchronous catch does.
    collect_rip();
  }

  /// The rip chain's completion guarantee: unlike the playback chain (whose
  /// audit stage loops to done), rip_step has no finishing stage of its
  /// own, so if the segment-step planning bound underestimated the phase
  /// count the session would silently stay unfinished and the cell's rip
  /// fields would diverge from the synchronous run. This task steps to
  /// done under the same per-step deadline discipline, then collects.
  void rip_finish() {
    if (!spec->attempt_rip || !rip) return;
    while (!rip->done()) {
      if (check_deadline("rip")) return;
      queue->trace_note(index, rip->phase_name());
      rip->step();
    }
    collect_rip();
  }

  void collect_rip() {
    if (!rip->done() || rip_collected) return;
    rip_collected = true;
    RipResult result = rip->take_result();
    cell.rip_success = result.success;
    cell.content_keys_recovered = result.content_keys_recovered;
    cell.rip_resolution = result.best_video_resolution;
    cell.stats.bytes_ripped = result.drm_free_media.size();
  }

  /// Unconditional (not guarded): a Partial cell's counters land in the
  /// campaign stats exactly once, same as a Full cell's.
  void flush() {
    const support::WallTimer timer;
    ecosystem->clock().set_wait_observer(nullptr);
    const widevine::LicenseServerStats& license = ecosystem->license_server().stats();
    cell.stats.licenses_granted = license.granted;
    cell.stats.licenses_denied = license.denied;
    cell.stats.keys_issued = license.keys_issued;
    cell.stats.keys_withheld = license.keys_withheld;
    const widevine::ProvisioningServerStats& provisioning =
        ecosystem->provisioning_server().stats();
    cell.stats.provisionings_granted = provisioning.granted;
    cell.stats.provisionings_denied = provisioning.denied;
    const widevine::DrmServiceStats service = ecosystem->drm_service().stats();
    cell.stats.drm_sessions = static_cast<std::size_t>(service.sessions_opened);
    cell.stats.drm_evictions = static_cast<std::size_t>(service.sessions_evicted);
    cell.stats.drm_sessions_dropped = static_cast<std::size_t>(service.chaos.sessions_dropped);
    cell.stats.drm_shard_refusals = static_cast<std::size_t>(service.chaos.shard_refusals);
    cell.stats.drm_load_shed = static_cast<std::size_t>(service.chaos.load_shed);
    cell.stats.drm_brownout_denied = static_cast<std::size_t>(service.chaos.brownout_denied);
    cell.stats.drm_recovery_ticks = static_cast<std::size_t>(service.chaos.recovery_ticks);
    const net::RetryStats& retry = ecosystem->retry_stats();
    cell.stats.net_attempts = static_cast<std::size_t>(retry.attempts);
    cell.stats.net_retries = static_cast<std::size_t>(retry.retries);
    cell.stats.net_giveups = static_cast<std::size_t>(retry.giveups);
    cell.stats.net_reopens = static_cast<std::size_t>(retry.reopens);
    const net::CircuitBreakerStats breaker = ecosystem->breaker().stats();
    cell.stats.breaker_opens = static_cast<std::size_t>(breaker.opens);
    cell.stats.breaker_fast_fails = static_cast<std::size_t>(breaker.fast_fails);
    cell.stats.faults_injected =
        static_cast<std::size_t>(ecosystem->fault_stats().total_faults());
    cell.stats.sim_waits = static_cast<std::size_t>(ecosystem->clock().waits());
    cell.stats.sim_wait_ticks = static_cast<std::size_t>(ecosystem->clock().wait_ticks());
    flush_worker = TaskQueue::current_worker();

    // Tear the private world down now (not at campaign end) so peak memory
    // tracks in-flight cells, not matrix size. A cell cancelled mid-play
    // skipped audit's teardown, so the playback chain may still be alive
    // here — it borrows the app, which borrows device and ecosystem, so
    // the borrowers go strictly first.
    playback.reset();
    app.reset();
    net_monitor.reset();
    drm_monitor.reset();
    rip.reset();
    ripper.reset();
    device.reset();
    ecosystem.reset();

    cell.stats.wall_ms = busy_ms + timer.elapsed_ms();
  }
};

void accumulate(CellStats& total, const CellStats& cell) {
  total.wall_ms += cell.wall_ms;
  total.calls_hooked += cell.calls_hooked;
  total.bytes_decrypted += cell.bytes_decrypted;
  total.bytes_ripped += cell.bytes_ripped;
  total.pin_bypasses += cell.pin_bypasses;
  total.licenses_granted += cell.licenses_granted;
  total.licenses_denied += cell.licenses_denied;
  total.keys_issued += cell.keys_issued;
  total.keys_withheld += cell.keys_withheld;
  total.provisionings_granted += cell.provisionings_granted;
  total.provisionings_denied += cell.provisionings_denied;
  total.drm_sessions += cell.drm_sessions;
  total.drm_evictions += cell.drm_evictions;
  total.net_attempts += cell.net_attempts;
  total.net_retries += cell.net_retries;
  total.net_giveups += cell.net_giveups;
  total.net_reopens += cell.net_reopens;
  total.faults_injected += cell.faults_injected;
  total.sim_waits += cell.sim_waits;
  total.sim_wait_ticks += cell.sim_wait_ticks;
  total.breaker_opens += cell.breaker_opens;
  total.breaker_fast_fails += cell.breaker_fast_fails;
  total.drm_sessions_dropped += cell.drm_sessions_dropped;
  total.drm_shard_refusals += cell.drm_shard_refusals;
  total.drm_load_shed += cell.drm_load_shed;
  total.drm_brownout_denied += cell.drm_brownout_denied;
  total.drm_recovery_ticks += cell.drm_recovery_ticks;
  total.deadline_cancelled += cell.deadline_cancelled;
}

using Stage = std::pair<const char*, std::function<void()>>;

/// One cell's fence-chained task list: the exact run_cell sequence split at
/// segment-stage granularity. The play and rip chains are sized by the
/// profile's planning bounds (one segment fetch per task); the audit and
/// rip-finish tasks are the step-to-done guarantees those bounds rely on.
std::vector<Stage> build_cell_chain(CellExecution* cell) {
  std::vector<Stage> chain;
  chain.emplace_back("setup", [cell] { cell->guarded([&] { cell->setup(); }); });
  chain.emplace_back("attach", [cell] { cell->guarded([&] { cell->attach(); }); });
  const int play_steps = ott::PlaybackSession::max_steps_for(*cell->plan->app);
  for (int s = 0; s < play_steps; ++s) {
    chain.emplace_back("play", [cell] { cell->guarded([&] { cell->play_step(); }); });
  }
  chain.emplace_back("audit", [cell] { cell->guarded([&] { cell->audit(); }); });
  chain.emplace_back("keybox", [cell] { cell->guarded([&] { cell->keybox(); }); });
  if (cell->spec->attempt_rip) {
    const int rip_steps = RipSession::max_steps_for(*cell->plan->app);
    for (int s = 0; s < rip_steps; ++s) {
      chain.emplace_back("rip", [cell] { cell->guarded([&] { cell->rip_step(); }); });
    }
    chain.emplace_back("rip-finish",
                       [cell] { cell->guarded([&] { cell->rip_finish(); }); });
  }
  chain.emplace_back("flush", [cell] { cell->flush(); });
  return chain;
}

std::string pad(const std::string& s, std::size_t width) {
  std::string out = s;
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

}  // namespace

CampaignRunner::CampaignRunner(CampaignSpec spec) : spec_(std::move(spec)) {
  if (spec_.apps.empty()) spec_.apps = ott::study_catalog();
  if (spec_.profiles.empty()) spec_.profiles = study_device_profiles();
  if (spec_.workers == 0) spec_.workers = 1;
}

std::size_t CampaignRunner::cell_count() const {
  return spec_.apps.size() * spec_.profiles.size();
}

CampaignResult CampaignRunner::run() {
  if (spec_.mode == ExecutionMode::Pipelined) {
    // The pipelined runner IS the shared-queue runner with one spec: one
    // code path builds chains, submits slot-major and keeps the accounting.
    SharedCampaignConfig config;
    config.workers = spec_.workers;
    config.pacing = spec_.pacing;
    config.record_schedule_trace = spec_.record_schedule_trace;
    return std::move(run_campaigns_shared({spec_}, config).front());
  }

  const support::WallTimer timer;

  std::vector<PlannedCell> planned;
  planned.reserve(cell_count());
  for (const ott::OttAppProfile& app : spec_.apps) {
    for (const CampaignDeviceProfile& profile : spec_.profiles) {
      planned.push_back(
          {&app, &profile, derive_stream_seed(spec_.seed, cell_label(app, profile))});
    }
  }

  const net::FaultPlan fault_plan =
      spec_.fault_plan ? *spec_.fault_plan : net::fault_plan_for(spec_.chaos);

  CampaignResult result;
  result.spec = spec_;
  result.cells.resize(planned.size());

  const std::size_t workers =
      std::max<std::size_t>(1, std::min(spec_.workers, planned.size()));
  result.stats.workers = workers;
  result.stats.cells = planned.size();
  result.stats.cells_per_worker.assign(workers, 0);

  if (workers == 1) {
    const support::Pacer pacer(spec_.pacing);
    for (std::size_t i = 0; i < planned.size(); ++i) {
      result.cells[i] = run_cell(*planned[i].app, *planned[i].profile, planned[i].seed,
                                 spec_, fault_plan, &pacer);
    }
    result.stats.cells_per_worker[0] = planned.size();
  } else {
    // Stripe the matrix over per-worker deques so neighbours start far
    // apart, then let the pool rebalance by stealing.
    std::vector<WorkQueue> queues(workers);
    for (std::size_t i = 0; i < planned.size(); ++i) queues[i % workers].push(i);

    const support::Pacer pacer(spec_.pacing);
    ScheduleStats schedule(workers);
    auto worker_main = [&](std::size_t me) {
      for (;;) {
        std::optional<std::size_t> index = queues[me].pop_back();
        if (!index) {
          for (std::size_t offset = 1; offset < workers && !index; ++offset) {
            index = queues[(me + offset) % workers].steal_front();
          }
          if (!index) return;  // every queue drained: no work is ever re-queued
          schedule.record_steal();
        }
        const PlannedCell& cell = planned[*index];
        // Cell results still go into per-index pre-sized slots — no lock on
        // the payload path; only the telemetry counters share state.
        result.cells[*index] = run_cell(*cell.app, *cell.profile, cell.seed,
                                        spec_, fault_plan, &pacer);
        schedule.record_cell(me);
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker_main, w);
    for (std::thread& thread : pool) thread.join();

    result.stats.cells_per_worker = schedule.cells_per_worker();
    result.stats.steals = schedule.steals();
  }

  for (const CellResult& cell : result.cells) accumulate(result.stats.totals, cell.stats);
  result.stats.wall_ms = timer.elapsed_ms();
  return result;
}

std::vector<CampaignResult> run_campaigns_shared(const std::vector<CampaignSpec>& specs,
                                                 const SharedCampaignConfig& config) {
  const support::WallTimer timer;

  // Resolve defaults per spec (the CampaignRunner constructor's rules) into
  // the result slots first: `results` is never resized after this, so the
  // app/profile pointers the planned cells take below stay stable.
  std::vector<CampaignResult> results(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    CampaignSpec spec = specs[s];
    if (spec.apps.empty()) spec.apps = ott::study_catalog();
    if (spec.profiles.empty()) spec.profiles = study_device_profiles();
    if (spec.workers == 0) spec.workers = 1;
    results[s].spec = std::move(spec);
  }

  struct GlobalCell {
    std::size_t spec_index = 0;   // which results[] slot the cell reports to
    std::size_t local_index = 0;  // position in that result's matrix order
    PlannedCell plan;
  };
  std::vector<net::FaultPlan> fault_plans(results.size());
  std::vector<GlobalCell> planned;
  for (std::size_t s = 0; s < results.size(); ++s) {
    const CampaignSpec& spec = results[s].spec;
    fault_plans[s] =
        spec.fault_plan ? *spec.fault_plan : net::fault_plan_for(spec.chaos);
    std::size_t local = 0;
    for (const ott::OttAppProfile& app : spec.apps) {
      for (const CampaignDeviceProfile& profile : spec.profiles) {
        planned.push_back(GlobalCell{
            s, local++,
            PlannedCell{&app, &profile,
                        derive_stream_seed(spec.seed, cell_label(app, profile))}});
      }
    }
    results[s].cells.resize(local);
    results[s].stats.cells = local;
  }

  const std::size_t workers =
      std::max<std::size_t>(1, std::min(config.workers, planned.size()));

  // Every cell — across every spec — becomes a fence-chained task graph on
  // ONE queue. Stages are submitted chain-major (all of cell 0's stages,
  // then all of cell 1's, ...) and the ready order runs lowest submission id
  // first among equal debts, so the base schedule is depth-first: each cell
  // races through its CPU stages to its next simulated wait and parks there,
  // staggering the wait windows across cells instead of marching every cell
  // through the same stage in lock-step. (Slot-major submission is
  // breadth-first: all cells do stage k's CPU back-to-back, then all hit
  // stage k's waits together — the waits overlap each other but almost no
  // CPU runs under them, which measurably caps the paced overlap ratio.)
  // Debt priority layers on top: once a cell has eaten real wait ticks its
  // next stage preempts fresh chains, so long-wait cells stay hot. Fences
  // keep each cell's chain strictly ordered, so no cell-private state is
  // ever touched concurrently — which is also why per-spec results cannot
  // observe the shared schedule.
  TaskQueue queue(workers, config.pacing, config.record_schedule_trace);
  const FenceId campaign_done = queue.make_fence(planned.size());

  std::vector<std::unique_ptr<CellExecution>> cells;
  cells.reserve(planned.size());
  std::vector<std::vector<Stage>> chains;
  chains.reserve(planned.size());
  for (std::size_t i = 0; i < planned.size(); ++i) {
    cells.push_back(std::make_unique<CellExecution>());
    CellExecution* cell = cells.back().get();
    cell->plan = &planned[i].plan;
    cell->index = i;
    cell->spec = &results[planned[i].spec_index].spec;
    cell->fault_plan = &fault_plans[planned[i].spec_index];
    cell->queue = &queue;
    chains.push_back(build_cell_chain(cell));
  }

  // Chains have different lengths (segment-step planning is per-profile, and
  // rip chains only exist where the spec rips): each chain signs
  // campaign_done from its own last stage, whatever its depth.
  //
  // Profile-guided order: when a spec carries schedule_wait_hints (per-cell
  // expected waits measured by a prior run of the same deterministic
  // matrix), chains are submitted expected-longest-wait first and the hint
  // seeds the cell's ready priority. The paced makespan is set by max over
  // cells of (start delay + the cell's own serial time), so the chains
  // that will wait longest must open their first wait windows earliest —
  // longest-processing-time order over a measured profile. Unhinted cells
  // keep matrix order. The order is a pure function of spec inputs, never
  // of timing, and reports cannot observe it.
  std::vector<std::uint64_t> hints(planned.size(), 0);
  for (std::size_t i = 0; i < planned.size(); ++i) {
    const std::vector<std::uint64_t>& spec_hints =
        specs[planned[i].spec_index].schedule_wait_hints;
    const std::size_t local = planned[i].local_index;
    if (local < spec_hints.size()) hints[i] = spec_hints[local];
    if (hints[i] > 0) queue.set_cell_wait_hint(i, hints[i]);
  }
  std::vector<std::size_t> order(planned.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return hints[a] > hints[b];
  });
  for (const std::size_t i : order) {
    std::optional<FenceId> prev;
    for (std::size_t slot = 0; slot < chains[i].size(); ++slot) {
      const bool last = slot + 1 == chains[i].size();
      const std::optional<FenceId> signals =
          last ? std::optional<FenceId>(campaign_done)
               : std::optional<FenceId>(queue.make_fence(1));
      queue.submit(std::move(chains[i][slot].second), prev, signals, i,
                   chains[i][slot].first);
      prev = last ? std::nullopt : signals;
    }
  }

  queue.drain(campaign_done);

  // Per-spec accounting off the shared run: cells land in their own spec's
  // matrix order; schedule-wide telemetry (pipeline stats, wall) is shared
  // verbatim; trace events are split per spec with cell ids rebased to
  // spec-local indices so each result reads like a solo run's.
  const PipelineStats pipeline = queue.stats();
  for (CampaignResult& result : results) {
    result.stats.workers = workers;
    result.stats.cells_per_worker.assign(workers, 0);
    result.stats.pipeline = pipeline;
  }
  for (std::size_t i = 0; i < planned.size(); ++i) {
    CampaignResult& result = results[planned[i].spec_index];
    result.stats.cells_per_worker[cells[i]->flush_worker % workers] += 1;
    result.cells[planned[i].local_index] = std::move(cells[i]->cell);
  }
  if (config.record_schedule_trace) {
    for (const TraceEvent& event : queue.trace()) {
      if (event.cell >= planned.size()) continue;
      TraceEvent local = event;
      local.cell = planned[event.cell].local_index;
      results[planned[event.cell].spec_index].trace.push_back(std::move(local));
    }
  }
  const double wall_ms = timer.elapsed_ms();  // one reading: the shared wall
  for (CampaignResult& result : results) {
    for (const CellResult& cell : result.cells) {
      accumulate(result.stats.totals, cell.stats);
    }
    result.stats.wall_ms = wall_ms;
  }
  return results;
}

std::vector<AppAudit> campaign_to_audits(const CampaignResult& result) {
  std::vector<AppAudit> audits;
  audits.reserve(result.spec.apps.size());
  for (const ott::OttAppProfile& app : result.spec.apps) {
    // The canonical cell for a class runs that class's stock CDM.
    auto canonical_cell = [&](DeviceClass device_class) -> const CellResult& {
      for (const CellResult& cell : result.cells) {
        if (cell.app.name == app.name && cell.device_class == device_class &&
            cell.cdm == default_cdm_for(device_class)) {
          return cell;
        }
      }
      throw StateError("campaign: no canonical " + to_string(device_class) +
                       " cell for app " + app.name);
    };
    const CellResult& l1 = canonical_cell(DeviceClass::ModernL1);
    const CellResult& l3 = canonical_cell(DeviceClass::ModernL3);
    const CellResult& legacy = canonical_cell(DeviceClass::LegacyNexus5);

    AppAudit audit;
    audit.profile = app;
    audit.usage_l1 = l1.usage;
    audit.assets = l1.assets;       // the study harvests from the L1 vantage
    audit.key_usage = l1.key_usage;
    audit.usage_l3 = l3.usage;
    audit.custom_drm_on_l3 = l3.custom_drm_used;
    audit.legacy = legacy.playback;
    audits.push_back(std::move(audit));
  }
  return audits;
}

std::string render_campaign_report(const CampaignResult& result) {
  std::ostringstream out;
  out << "CAMPAIGN REPORT: " << result.spec.apps.size() << " apps x "
      << result.spec.profiles.size() << " profiles = " << result.cells.size()
      << " cells (seed " << std::hex << result.spec.seed << std::dec << ", chaos "
      << net::to_string(result.spec.chaos) << ")\n";
  out << pad("OTT", 20) << pad("Profile", 15) << pad("CDM", 6) << pad("Widevine", 10)
      << pad("Video", 11) << pad("Audio", 11) << pad("Key Usage", 13) << pad("Keybox", 8)
      << pad("Keys", 6) << pad("Rip", 9) << pad("Cell", 10) << "Playback\n";
  out << std::string(140, '-') << "\n";
  for (const CellResult& cell : result.cells) {
    std::string widevine_cell = "no";
    if (cell.usage.widevine_used && cell.usage.observed_level) {
      widevine_cell = widevine::to_string(*cell.usage.observed_level);
    } else if (cell.custom_drm_used) {
      widevine_cell = "custom";
    }
    out << pad(cell.app.name, 20) << pad(cell.profile_name, 15)
        << pad(to_string(cell.cdm), 6) << pad(widevine_cell, 10)
        << pad(to_string(cell.assets.video), 11) << pad(to_string(cell.assets.audio), 11)
        << pad(to_string(cell.key_usage.verdict), 13)
        << pad(cell.keybox_recovered ? "leaked" : "safe", 8)
        // A key *count*, not key material. wl-lint: log-ok
        << pad(std::to_string(cell.content_keys_recovered), 6)
        << pad(cell.rip_success ? cell.rip_resolution.label() : "-", 9)
        << pad(to_string(cell.outcome), 10) << to_string(cell.playback.verdict) << "\n";
    if (cell.outcome != CellOutcome::Full) {
      out << "    [" << to_string(cell.outcome) << "] " << cell.fault_summary << "\n";
    }
  }
  out << std::string(140, '-') << "\n";
  const CellStats& totals = result.stats.totals;
  out << "net: " << totals.net_attempts << " attempts, " << totals.net_retries
      << " retries, " << totals.net_giveups << " giveups; faults injected "
      << totals.faults_injected << "\n";
  // Resilience counters are part of the diffed report on purpose: the
  // worker-sweep CRC equality the benches assert therefore covers breaker
  // trips, session reopens and chaos recovery, not just cell verdicts.
  out << "resilience: " << totals.net_reopens << " reopens, breaker "
      << totals.breaker_opens << " opens / " << totals.breaker_fast_fails
      << " fast-fails; service chaos " << totals.drm_sessions_dropped
      << " sessions dropped, " << totals.drm_shard_refusals << " shard refusals, "
      << totals.drm_load_shed << " shed, " << totals.drm_brownout_denied
      << " brownout denials, recovery " << totals.drm_recovery_ticks << " ticks; "
      << totals.deadline_cancelled << " cells past deadline\n";
  return out.str();
}

std::string render_campaign_stats(const CampaignResult& result) {
  std::ostringstream out;
  const CellStats& totals = result.stats.totals;
  out << "CAMPAIGN STATS: " << result.stats.cells << " cells on " << result.stats.workers
      << " worker(s): " << result.stats.wall_ms << " ms wall, " << totals.wall_ms
      << " ms of cell work (speedup " << (totals.wall_ms / std::max(1.0, result.stats.wall_ms))
      << "x)\n";
  out << "  hooked calls " << totals.calls_hooked << ", bytes decrypted "
      << totals.bytes_decrypted << ", bytes ripped " << totals.bytes_ripped
      << ", pin bypasses " << totals.pin_bypasses << "\n";
  out << "  licenses " << totals.licenses_granted << " granted / " << totals.licenses_denied
      << " denied, keys " << totals.keys_issued << " issued / " << totals.keys_withheld
      << " withheld (HD-to-L3), provisioning " << totals.provisionings_granted
      << " granted / " << totals.provisionings_denied << " denied\n";
  out << "  drm service: " << totals.drm_sessions << " sessions opened, "
      << totals.drm_evictions << " LRU-reclaimed\n";
  out << "  network: " << totals.net_attempts << " attempts, " << totals.net_retries
      << " retries, " << totals.net_giveups << " giveups, " << totals.faults_injected
      << " faults injected (chaos " << net::to_string(result.spec.chaos) << ")\n";
  out << "  sim waits: " << totals.sim_waits << " totalling " << totals.sim_wait_ticks
      << " ticks (pacing " << result.spec.pacing.wall_us_per_tick << " us/tick)\n";
  out << "  schedule (" << to_string(result.spec.mode) << "): ";
  for (std::size_t w = 0; w < result.stats.cells_per_worker.size(); ++w) {
    out << (w == 0 ? "" : ", ") << "w" << w << "=" << result.stats.cells_per_worker[w];
  }
  out << " cells; " << result.stats.steals << " steals\n";
  if (result.spec.mode == ExecutionMode::Pipelined) {
    const PipelineStats& pipeline = result.stats.pipeline;
    out << "  pipeline: " << pipeline.tasks_executed << " tasks (" << pipeline.helped_tasks
        << " helped, " << pipeline.steals << " stolen), " << pipeline.fence_stalls
        << " fence stalls, " << pipeline.waits << " waits parked ("
        << pipeline.wait_ticks << " ticks, max " << pipeline.max_parked
        << " concurrent), " << pipeline.timer_wakeups << " timer wakeups, "
        << pipeline.cells_cancelled << " cells cancelled (" << pipeline.waits_cancelled
        << " waits released), " << pipeline.cpu_tokens << " cpu tokens\n";
    if (!pipeline.stage_occupancy.empty()) {
      out << "  stage occupancy:";
      for (const auto& [label, occ] : pipeline.stage_occupancy) {
        out << " " << label << "=" << occ.tasks << "/" << occ.busy_ms << "ms";
      }
      out << "\n";
    }
    if (!pipeline.debt_histogram.empty()) {
      out << "  wait-debt histogram (log2 ticks):";
      for (std::size_t b = 0; b < pipeline.debt_histogram.size(); ++b) {
        if (pipeline.debt_histogram[b] == 0) continue;
        out << " [" << b << "]=" << pipeline.debt_histogram[b];
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace wideleak::core
