// core::CampaignRunner — the fleet-scale harness behind the paper's "easily
// automated" claim (§IV-B, §IV-D): fan the full WideLeak pipeline (Q1–Q4
// audits, keybox recovery, content rip) out over an
// `apps × device-profiles × CDM-versions` matrix on a work-stealing thread
// pool, and aggregate the per-cell measurements back into Table I.
//
// Ownership model (the contract every layer below honours, see
// docs/ARCHITECTURE.md):
//   - each matrix cell gets a *private* ott::StreamingEcosystem — network
//     registry, CA, license/provisioning servers, device, hook bus and RNG
//     streams are all constructed inside the cell and die with it;
//   - the worker executing a cell is the only thread that ever touches that
//     ecosystem, so the pipeline runs lock-free end to end;
//   - the only cross-thread traffic is the work queue (coarse, mutex-backed,
//     off the hot path) and each worker writing its own pre-sized result
//     slots.
//
// Determinism: a cell's seed is derive_stream_seed(campaign seed, cell
// label) — a pure function of *what* the cell is, never of *when* or *where*
// it runs. Reports are therefore bit-identical at every worker count
// (asserted by core_campaign_test and bench_campaign).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "net/circuit_breaker.hpp"
#include "net/fault.hpp"
#include "support/timer_wheel.hpp"
#include "widevine/chaos.hpp"

namespace wideleak::core {

/// Which of the study's device archetypes a campaign cell runs on (§IV-A).
enum class DeviceClass {
  ModernL1,      // TEE phone, current CDM — the paper's primary vantage
  ModernL3,      // TEE-less but current CDM — triggers Amazon's custom DRM
  LegacyNexus5,  // discontinued Nexus 5: Android 6.0.1, CDM 3.1.0 (Q4/§IV-D)
};

std::string to_string(DeviceClass device_class);

/// One row of the device axis: an archetype plus an optional CDM override
/// (the third matrix dimension — e.g. a legacy CDM on modern hardware to
/// isolate CWE-922 from the device profile).
struct CampaignDeviceProfile {
  std::string name;  // unique within the campaign; part of the cell label
  DeviceClass device_class = DeviceClass::ModernL1;
  std::optional<widevine::CdmVersion> cdm_override;
};

/// The three canonical study profiles (no CDM overrides), in Table I order
/// of use: modern L1, modern L3-only, legacy Nexus 5.
std::vector<CampaignDeviceProfile> study_device_profiles();

/// How the runner schedules cells.
///
/// Synchronous: the historical work-stealing pool — a worker runs one cell
/// start to finish and pays every simulated wait inline (stalled, when
/// pacing is enabled). The bench baseline.
///
/// Pipelined: each cell becomes a fence-chained task graph on a
/// core::TaskQueue; simulated waits park on the timer wheel and the worker
/// runs other cells' stages meanwhile. Reports are bit-identical between
/// the two modes at every worker count (cells are fully independent — any
/// interleaving preserves each cell's private draw sequences).
enum class ExecutionMode {
  Synchronous,
  Pipelined,
};

std::string to_string(ExecutionMode mode);

/// Full campaign description. Defaults reproduce the paper's study matrix.
struct CampaignSpec {
  std::vector<ott::OttAppProfile> apps;            // empty -> study_catalog()
  std::vector<CampaignDeviceProfile> profiles;     // empty -> study_device_profiles()
  std::uint64_t seed = 0x57494445;                 // "WIDE"
  std::size_t workers = 1;                         // 1 = run inline, no threads
  bool attempt_rip = true;  // run keybox recovery + §IV-D rip in every cell

  /// Chaos axis: the fault-injection profile applied to every cell's private
  /// network. Deliberately NOT part of the cell label — a cell's seed (and
  /// therefore every rng stream below it) is the same under every profile,
  /// so `None` reproduces the pre-fault report bit for bit and the other
  /// profiles differ only where an injected fault actually fired.
  net::FaultProfile chaos = net::FaultProfile::None;

  /// Custom fault plan; overrides the `chaos` profile when set (tests use
  /// this to shape faults per host, e.g. latency on one cell only).
  std::optional<net::FaultPlan> fault_plan;

  /// Server-side chaos axis: the DrmService fault plan applied inside every
  /// cell's private service (shard crash/restart windows, license-server
  /// brownouts, overload shedding). Same contract as the network axis: NOT
  /// part of the cell label, so the default empty plan reproduces the
  /// pre-chaos report bit for bit and a plan differs only where a fault
  /// actually fired.
  widevine::ChaosPlan service_chaos;

  /// Client-side circuit breaker wrapped around every cell's retry layer.
  /// Default threshold 0 leaves it disabled (no state machine, no draws).
  net::CircuitBreakerConfig breaker;

  /// Per-cell deadline budget in simulated ticks (0 = none). A cell whose
  /// private SimClock reaches this tick is cancelled at the next stage
  /// boundary: remaining stages are skipped, pending timer-wheel waits are
  /// released, and the cell lands as Partial with a deadline_exceeded fault
  /// summary — its counters still flush exactly once. The budget also
  /// propagates into the retry layer, which abandons a backoff that would
  /// land past the deadline.
  std::uint64_t cell_deadline_ticks = 0;

  /// Scheduling strategy; Pipelined is the default (and is bit-identical
  /// to Synchronous on every diffed output).
  ExecutionMode mode = ExecutionMode::Pipelined;

  /// Tick→wall mapping for simulated waits. Disabled (0) by default: waits
  /// cost nothing on the wall clock, as they always did. The benches enable
  /// pacing so overlap is measurable; virtual time — and thus every report —
  /// is unaffected either way.
  support::PacingPolicy pacing;

  /// Record a scheduler TraceEvent stream into CampaignResult::trace
  /// (Pipelined mode only; for tests and diagnostics).
  bool record_schedule_trace = false;

  /// Profile-guided scheduling (Pipelined/shared mode only): expected total
  /// simulated wait ticks per cell, indexed in matrix order — typically
  /// CellStats::sim_wait_ticks from a previous run of this same
  /// deterministic spec (the paced benches feed the synchronous baseline's
  /// measurements forward). Hinted cells are submitted and prioritized
  /// expected-longest-wait first, so the chains that dominate the paced
  /// makespan open their wait windows immediately instead of after the
  /// scheduler rediscovers their debt one park at a time. Pure scheduling
  /// input: reports cannot observe it. Empty (the default) = unhinted;
  /// shorter-than-matrix vectors treat missing entries as 0.
  std::vector<std::uint64_t> schedule_wait_hints;
};

/// How completely a cell's audit pipeline ran under fault injection.
enum class CellOutcome {
  Full,      // every stage reached its organic result
  Degraded,  // playback succeeded but below the requested experience
  Partial,   // a stage was lost to faults; stats were still flushed exactly once
};

std::string to_string(CellOutcome outcome);

/// Per-cell measurements that feed the campaign stats sink. `wall_ms` is the
/// only scheduling-dependent field and is excluded from the deterministic
/// report (it appears in render_campaign_stats instead).
struct CellStats {
  double wall_ms = 0.0;
  std::size_t calls_hooked = 0;      // CDM trace records on the audit pass
  std::size_t bytes_decrypted = 0;   // ciphertext through _oecc22_DecryptCENC
  std::size_t bytes_ripped = 0;      // DRM-free output recovered by the rip
  std::size_t pin_bypasses = 0;      // repinning-hook interventions
  std::size_t licenses_granted = 0;  // cell license server grant count
  std::size_t licenses_denied = 0;
  std::size_t keys_issued = 0;
  std::size_t keys_withheld = 0;     // HD keys refused to sub-L1 clients
  std::size_t provisionings_granted = 0;
  std::size_t provisionings_denied = 0;
  std::size_t drm_sessions = 0;      // sessions opened in the cell's DRM service
  std::size_t drm_evictions = 0;     // LRU reclaims (0 under the default capacity)
  std::size_t net_attempts = 0;      // transport attempts through the retry layer
  std::size_t net_retries = 0;       // re-sends after a retryable failure
  std::size_t net_giveups = 0;       // retry budgets exhausted without success
  std::size_t net_reopens = 0;       // retries that re-established service state
  std::size_t faults_injected = 0;   // faults the cell's network actually fired
  std::size_t sim_waits = 0;         // SimClock waits (latency, backoff) in the cell
  std::size_t sim_wait_ticks = 0;    // simulated ticks spent in those waits

  // Resilience accounting (all zero unless the spec arms the matching
  // feature — server chaos, the breaker, or a deadline budget).
  std::size_t breaker_opens = 0;        // circuit transitions into Open
  std::size_t breaker_fast_fails = 0;   // requests refused while Open
  std::size_t drm_sessions_dropped = 0; // sessions lost to shard crash windows
  std::size_t drm_shard_refusals = 0;   // requests refused by a down shard
  std::size_t drm_load_shed = 0;        // requests shed by overload protection
  std::size_t drm_brownout_denied = 0;  // brownout-window license denials
  std::size_t drm_recovery_ticks = 0;   // first-proceed latency after crash windows
  std::size_t deadline_cancelled = 0;   // 1 when the cell's deadline budget expired
};

/// Everything measured for one (app, device profile, CDM version) cell.
struct CellResult {
  ott::OttAppProfile app;            // the audited app's full profile
  std::string profile_name;          // CampaignDeviceProfile::name
  DeviceClass device_class = DeviceClass::ModernL1;
  widevine::CdmVersion cdm;          // the version that actually ran

  WidevineUsageReport usage;         // Q1 on this cell's device
  bool custom_drm_used = false;      // played via embedded DRM, no Widevine
  AssetProtectionReport assets;      // Q2 (empty when no manifest harvested)
  KeyUsageReport key_usage;          // Q3
  LegacyProbeReport playback;        // playback verdict (Q4 on the legacy row)

  bool keybox_recovered = false;     // CVE-2021-0639 scan on this cell
  bool rip_success = false;          // §IV-D end-to-end rip
  std::size_t content_keys_recovered = 0;
  media::Resolution rip_resolution;  // best quality of the ripped media

  /// Degraded-mode accounting: Full unless injected faults cost the cell
  /// quality (Degraded) or a pipeline stage outright (Partial).
  CellOutcome outcome = CellOutcome::Full;
  std::string fault_summary;         // why, when outcome != Full

  CellStats stats;
};

/// Pool-level accounting for one run.
struct CampaignStats {
  double wall_ms = 0.0;              // whole campaign, including pool setup
  std::size_t workers = 0;
  std::size_t cells = 0;
  std::size_t steals = 0;            // cells executed off a foreign queue (Synchronous)
  std::vector<std::size_t> cells_per_worker;
  CellStats totals;                  // summed over all cells (wall_ms = sum)
  PipelineStats pipeline;            // task/fence/wait telemetry (Pipelined)
};

struct CampaignResult {
  CampaignSpec spec;                 // the (defaults-resolved) matrix that ran
  std::vector<CellResult> cells;     // app-major matrix order, scheduling-independent
  CampaignStats stats;
  std::vector<TraceEvent> trace;     // when spec.record_schedule_trace (Pipelined)
};

/// The campaign harness. Thread safety: run() may be called repeatedly but
/// not concurrently on one instance; distinct instances are fully
/// independent (nothing below them is shared, see the ownership model above).
class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignSpec spec);

  /// Execute the matrix on `spec.workers` workers and return all cells in
  /// matrix order plus the stats sink contents.
  CampaignResult run();

  /// The resolved matrix size (after defaulting empty axes).
  std::size_t cell_count() const;

 private:
  CampaignSpec spec_;
};

/// Cross-matrix shared scheduling: how run_campaigns_shared() drives the
/// one TaskQueue every spec's cells are submitted into.
struct SharedCampaignConfig {
  std::size_t workers = 1;
  /// Tick→wall mapping shared by every cell (the per-spec pacing fields are
  /// ignored in shared mode: wall pacing is a property of the queue).
  support::PacingPolicy pacing;
  bool record_schedule_trace = false;
};

/// Run several campaign matrices through ONE shared pipelined TaskQueue, so
/// one spec's simulated-wait tail (e.g. flaky-license backoff) drains under
/// another spec's CPU work (e.g. flaky-cdn decrypts). Per-spec accounting
/// stays fully separate: each result's cells, totals and report are
/// bit-identical to running that spec alone in any mode at any worker
/// count — cell seeds derive from each spec's own seed and cell label,
/// never from the shared schedule. Shared-schedule telemetry (the pipeline
/// stats snapshot, wall_ms) is identical across the returned results; each
/// result's trace holds its own cells' events with spec-local cell ids.
/// Specs' `mode`, `workers`, `pacing` and `record_schedule_trace` fields
/// are ignored (the config governs the queue); everything else applies
/// per spec as usual.
std::vector<CampaignResult> run_campaigns_shared(const std::vector<CampaignSpec>& specs,
                                                 const SharedCampaignConfig& config);

/// Merge a campaign run over the three canonical study profiles back into
/// per-app audits (the shape render_table_one consumes). Requires every app
/// to have one cell per canonical DeviceClass without CDM override; throws
/// StateError otherwise.
std::vector<AppAudit> campaign_to_audits(const CampaignResult& result);

/// Deterministic per-cell report: one line per cell, no timings. Campaigns
/// with equal specs render byte-identically at any worker count — this is
/// the string the determinism test and bench diff.
std::string render_campaign_report(const CampaignResult& result);

/// Scheduling-dependent side of the stats sink: wall times, speedup-relevant
/// totals, per-worker cell counts and steal count. Never diffed.
std::string render_campaign_stats(const CampaignResult& result);

}  // namespace wideleak::core
