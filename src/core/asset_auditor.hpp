// Q2 auditor: for every harvested asset URI, download the file with a plain
// client (no app, no pinning) and classify its protection status exactly as
// the paper does — does a stock player read it (clear), does it parse as
// CENC-protected (encrypted), and are subtitles readable ascii text?
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/network_monitor.hpp"
#include "media/track.hpp"
#include "net/network.hpp"

namespace wideleak::core {

enum class ProtectionStatus {
  Encrypted,
  Clear,
  Unknown,  // URI not found / undownloadable — Table I's "-"
};

std::string to_string(ProtectionStatus status);

/// Per-asset-class verdicts for one app (Table I, "Content Protection").
struct AssetProtectionReport {
  ProtectionStatus video = ProtectionStatus::Unknown;
  ProtectionStatus audio = ProtectionStatus::Unknown;
  ProtectionStatus subtitles = ProtectionStatus::Unknown;
  bool subtitles_ascii_readable = false;  // the English-text check
  std::size_t assets_checked = 0;
  /// Clear audio is playable "anywhere without any OTT account" — verified
  /// by actually playing the downloaded file outside the app.
  bool clear_audio_plays_without_account = false;
};

/// The Q2 measurement client (§IV-C): an analyst machine, not an app.
/// Input: a HarvestedManifest (asset URIs + CDN host). Output: the
/// AssetProtectionReport feeding Table I's three protection columns.
/// Thread safety: instance-scoped — holds its own TLS client; downloads
/// read the (borrowed) network, so keep it on the owning cell's thread.
class AssetAuditor {
 public:
  /// `trust` is the analyst machine's CA set (no pinning, no app).
  AssetAuditor(const net::Network& network, net::TrustStore trust, Rng rng);

  AssetProtectionReport audit(const HarvestedManifest& manifest);

  /// Classify one downloaded asset file.
  static ProtectionStatus classify_file(BytesView file);

 private:
  std::optional<Bytes> download(const std::string& host, const std::string& path);

  net::TlsClient client_;
};

}  // namespace wideleak::core
