// Keybox recovery via memory scanning — the CVE-2021-0639 exploit.
//
// "By dynamically monitoring memory regions that are used during obfuscated
// cryptographic operations within libwvdrmengine.so, we searched for
// specific keybox structure (e.g., magic number). Thus, we succeeded in
// recovering the L3 keybox on our deprecated Nexus 5 due to an insecure
// storage of sensitive information (CWE-922)."
//
// The scanner walks the DRM process's mapped regions looking for the
// keybox magic at its fixed offset and confirms candidates by CRC. It
// succeeds exactly when the CDM maps a raw keybox: legacy L3. On L1 the
// keybox lives in the TEE; on patched L3 only an XOR-masked copy exists.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "android/device.hpp"
#include "hooking/memory.hpp"
#include "widevine/keybox.hpp"

namespace wideleak::core {

struct KeyboxRecoveryResult {
  std::optional<widevine::Keybox> keybox;
  std::size_t magic_hits = 0;       // candidates found by magic alone
  std::size_t crc_validated = 0;    // candidates surviving the CRC check
  std::size_t regions_scanned = 0;
  std::size_t bytes_scanned = 0;
  std::string source_region;        // where the keybox was found

  bool success() const { return keybox.has_value(); }
};

/// Scan one process memory map for keyboxes (§IV-D / CVE-2021-0639).
/// Input: a snapshot of the mapped regions. Output: the recovered keybox
/// (if any) plus scan statistics for the A1 ablation.
/// Thread safety: read-only over the given memory; safe as long as the
/// owning cell's thread is the only mutator.
KeyboxRecoveryResult scan_for_keybox(const hooking::ProcessMemory& memory);

/// Convenience: scan the device's DRM-hosting process (requires root).
/// Thread safety: same contract as scan_for_keybox.
KeyboxRecoveryResult recover_keybox(const android::Device& device);

}  // namespace wideleak::core
