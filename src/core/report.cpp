#include "core/report.hpp"

#include <iomanip>
#include <sstream>

#include "core/network_monitor.hpp"
#include "ott/catalog.hpp"
#include "ott/playback.hpp"

namespace wideleak::core {

WideleakStudy::WideleakStudy(ott::StreamingEcosystem& ecosystem) : ecosystem_(ecosystem) {
  modern_l1_ = ecosystem_.make_device(android::modern_l1_spec(0xA001));
  modern_l3_ = ecosystem_.make_device(android::modern_l3_only_spec(0xA003));
  legacy_ = ecosystem_.make_device(android::legacy_nexus5_spec(0xA005));
}

AppAudit WideleakStudy::audit_app(const ott::OttAppProfile& profile) {
  ecosystem_.install_app(profile);
  AppAudit audit;
  audit.profile = profile;

  // --- Pass 1: modern L1 device with full instrumentation; harvest the
  // manifest and audit Q1/Q2/Q3 from this vantage point.
  {
    DrmApiMonitor drm_monitor(*modern_l1_);
    NetworkMonitor net_monitor(ecosystem_.network(), ecosystem_.fork_rng());
    ott::OttApp app(profile, ecosystem_, *modern_l1_);
    net_monitor.attach(app);
    (void)app.play_title();
    audit.usage_l1 = drm_monitor.usage_report();

    const HarvestedManifest manifest = net_monitor.harvest_manifest(&drm_monitor);
    net::TrustStore analyst_trust;
    analyst_trust.add(ecosystem_.root_ca());
    AssetAuditor auditor(ecosystem_.network(), analyst_trust, ecosystem_.fork_rng());
    audit.assets = auditor.audit(manifest);
    audit.key_usage = audit_key_usage(manifest, audit.assets);
  }

  // --- Pass 2: modern TEE-less device — does the app stay on Widevine L3
  // or switch to an embedded DRM?
  {
    DrmApiMonitor drm_monitor(*modern_l3_);
    ott::OttApp app(profile, ecosystem_, *modern_l3_);
    const ott::PlaybackOutcome outcome = app.play_title();
    audit.usage_l3 = drm_monitor.usage_report();
    audit.custom_drm_on_l3 =
        outcome.used_custom_drm && outcome.played && !audit.usage_l3.widevine_used;
  }

  // --- Pass 3: the discontinued device (Q4).
  audit.legacy = probe_legacy_playback(profile, ecosystem_, *legacy_);

  return audit;
}

std::vector<AppAudit> WideleakStudy::run_catalog() {
  std::vector<AppAudit> audits;
  for (const ott::OttAppProfile& profile : ott::study_catalog()) {
    audits.push_back(audit_app(profile));
  }
  return audits;
}

namespace {

std::string pad(const std::string& s, std::size_t width) {
  std::string out = s;
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string usage_cell(const AppAudit& audit) {
  if (!audit.usage_l1.widevine_used && !audit.usage_l3.widevine_used) return "no";
  return audit.custom_drm_on_l3 ? "yes (1)" : "yes";
}

std::string legacy_cell(const AppAudit& audit) {
  switch (audit.legacy.verdict) {
    case LegacyPlaybackVerdict::Plays: return "plays";
    case LegacyPlaybackVerdict::ProvisioningFailed: return "prov. fails (2)";
    case LegacyPlaybackVerdict::PlaysViaCustomDrm: return "plays (1)";
    case LegacyPlaybackVerdict::Failed: return "fails";
  }
  return "?";
}

}  // namespace

std::string render_table_one(const std::vector<AppAudit>& audits) {
  std::ostringstream out;
  out << "TABLE I: WIDEVINE USAGE AND ASSET PROTECTIONS BY OTTS\n";
  out << pad("OTT", 20) << pad("Widevine", 10) << pad("Video", 11) << pad("Audio", 11)
      << pad("Subtitles", 11) << pad("Key Usage", 13) << "Playback on L3\n";
  out << pad("", 20) << pad("used (Q1)", 10) << pad("(Q2)", 11) << pad("(Q2)", 11)
      << pad("(Q2)", 11) << pad("(Q3)", 13) << "discontinued (Q4)\n";
  out << std::string(95, '-') << "\n";
  for (const AppAudit& audit : audits) {
    out << pad(audit.profile.name, 20) << pad(usage_cell(audit), 10)
        << pad(to_string(audit.assets.video), 11) << pad(to_string(audit.assets.audio), 11)
        << pad(to_string(audit.assets.subtitles), 11)
        << pad(to_string(audit.key_usage.verdict), 13) << legacy_cell(audit) << "\n";
  }
  out << std::string(95, '-') << "\n";
  out << "(1) using custom DRM if only Widevine L3 is available.\n";
  out << "(2) Widevine fails during provisioning phase.\n";
  out << "Minimum: audio in clear or using the same encryption key as the video.\n";
  out << "Recommended: audio and video are encrypted with different keys.\n";
  return out.str();
}

std::string render_rip_summary(const std::vector<RipResult>& results) {
  std::ostringstream out;
  out << "PRACTICAL IMPACT: DRM-FREE CONTENT RECOVERY ON THE DISCONTINUED DEVICE\n";
  out << pad("OTT", 20) << pad("Keybox", 8) << pad("RSA key", 9) << pad("Keys", 6)
      << pad("Best quality", 14) << pad("Plays w/o account", 19) << "Outcome\n";
  out << std::string(95, '-') << "\n";
  std::size_t successes = 0;
  for (const RipResult& result : results) {
    out << pad(result.app, 20) << pad(result.keybox_recovered ? "yes" : "no", 8)
        << pad(result.device_rsa_recovered ? "yes" : "no", 9)
        << pad(std::to_string(result.content_keys_recovered), 6)  // wl-lint: log-ok (a count, not key material)
        << pad(result.success ? result.best_video_resolution.label() : "-", 14)
        << pad(result.plays_without_account ? "yes" : "no", 19)
        << (result.success ? "RIPPED" : result.failure) << "\n";
    if (result.success) ++successes;
  }
  out << std::string(95, '-') << "\n";
  out << successes << " of " << results.size()
      << " apps yielded DRM-free media (paper: 6, incl. Netflix, Hulu, Showtime).\n";
  return out.str();
}

}  // namespace wideleak::core
