// Study orchestration and reporting: run the full WideLeak pipeline for
// every app and render Table I exactly as the paper lays it out. The table
// cells are *measured* by the monitors/auditors, never copied from the
// catalog's policy knobs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "android/device.hpp"
#include "core/asset_auditor.hpp"
#include "core/key_usage_auditor.hpp"
#include "core/legacy_prober.hpp"
#include "core/monitor.hpp"
#include "core/ripper.hpp"
#include "ott/ecosystem.hpp"

namespace wideleak::core {

/// Everything measured for one app.
struct AppAudit {
  ott::OttAppProfile profile;

  WidevineUsageReport usage_l1;  // observed on the modern TEE device
  WidevineUsageReport usage_l3;  // observed on the modern TEE-less device
  bool custom_drm_on_l3 = false; // played on L3 with no Widevine activity

  AssetProtectionReport assets;
  KeyUsageReport key_usage;
  LegacyProbeReport legacy;
};

/// The serial study driver (§IV-B/§IV-C): audits each app on the three
/// paper devices inside ONE shared ecosystem. Input: an ecosystem with
/// the catalog installed. Output: per-app AppAudit bundles for Table I.
/// Thread safety: single-threaded — it mutates its ecosystem throughout;
/// for parallel matrices use core::CampaignRunner (campaign.hpp), which
/// reproduces this study's results with per-cell private ecosystems.
class WideleakStudy {
 public:
  /// Creates the three study devices (modern L1, modern L3-only, legacy
  /// Nexus 5) inside the given ecosystem.
  explicit WideleakStudy(ott::StreamingEcosystem& ecosystem);

  AppAudit audit_app(const ott::OttAppProfile& profile);
  std::vector<AppAudit> run_catalog();

  android::Device& modern_l1_device() { return *modern_l1_; }
  android::Device& modern_l3_device() { return *modern_l3_; }
  android::Device& legacy_device() { return *legacy_; }

  ott::StreamingEcosystem& ecosystem() { return ecosystem_; }

 private:
  ott::StreamingEcosystem& ecosystem_;
  std::unique_ptr<android::Device> modern_l1_;
  std::unique_ptr<android::Device> modern_l3_;
  std::unique_ptr<android::Device> legacy_;
};

/// Render Table I ("Widevine usage and asset protections by OTTs").
/// Thread safety: pure function of its argument.
std::string render_table_one(const std::vector<AppAudit>& audits);

/// Render the §IV-D practical-impact summary.
/// Thread safety: pure function of its argument.
std::string render_rip_summary(const std::vector<RipResult>& results);

}  // namespace wideleak::core
