#include "core/trace_export.hpp"

#include <sstream>

namespace wideleak::core {

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

std::string buffer_field(const Bytes& buffer, std::size_t cap) {
  const std::size_t take = std::min(buffer.size(), cap);
  std::ostringstream out;
  out << "{\"size\":" << buffer.size() << ",\"hex\":\""
      << hex_encode(BytesView(buffer.data(), take)) << "\""
      << (buffer.size() > cap ? ",\"truncated\":true" : "") << "}";
  return out.str();
}

}  // namespace

std::string trace_record_to_json(const hooking::CallRecord& record,
                                 std::size_t max_buffer_bytes) {
  std::ostringstream out;
  out << "{\"seq\":" << record.sequence << ",\"process\":\"" << json_escape(record.process)
      << "\",\"module\":\"" << json_escape(record.module) << "\",\"function\":\""
      << json_escape(record.function) << "\",\"in\":" << buffer_field(record.input, max_buffer_bytes)
      << ",\"out\":" << buffer_field(record.output, max_buffer_bytes) << "}";
  return out.str();
}

std::string trace_to_json(const hooking::CallTrace& trace, std::size_t max_buffer_bytes) {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const hooking::CallRecord& record : trace.records()) {
    if (!first) out << ",";
    first = false;
    out << "\n  " << trace_record_to_json(record, max_buffer_bytes);
  }
  out << "\n]";
  return out.str();
}

std::string usage_report_to_json(const WidevineUsageReport& report) {
  std::ostringstream out;
  out << "{\"widevine_used\":" << (report.widevine_used ? "true" : "false")
      << ",\"observed_level\":";
  if (report.observed_level) {
    out << "\"" << widevine::to_string(*report.observed_level) << "\"";
  } else {
    out << "null";
  }
  out << ",\"oecc_calls\":" << report.oecc_calls
      << ",\"media_drm_calls\":" << report.media_drm_calls << "}";
  return out.str();
}

std::string app_audit_to_json(const AppAuditJson& audit) {
  std::ostringstream out;
  out << "{\"app\":\"" << json_escape(audit.app) << "\""
      << ",\"q1\":" << usage_report_to_json(audit.usage)
      << ",\"q2\":{\"video\":\"" << to_string(audit.assets.video) << "\",\"audio\":\""
      << to_string(audit.assets.audio) << "\",\"subtitles\":\""
      << to_string(audit.assets.subtitles) << "\",\"subtitles_ascii\":"
      << (audit.assets.subtitles_ascii_readable ? "true" : "false")
      << ",\"clear_audio_plays_without_account\":"
      << (audit.assets.clear_audio_plays_without_account ? "true" : "false") << "}"
      << ",\"q3\":{\"verdict\":\"" << to_string(audit.key_usage.verdict)
      << "\",\"distinct_video_kids\":" << audit.key_usage.distinct_video_kids
      << ",\"audio_shares_video_key\":"
      << (audit.key_usage.audio_shares_video_key ? "true" : "false") << "}"
      << ",\"q4\":{\"verdict\":\"" << to_string(audit.legacy.verdict)
      << "\",\"best_resolution\":\"" << audit.legacy.best_resolution.label()
      << "\",\"detail\":\"" << json_escape(audit.legacy.detail) << "\"}}";
  return out.str();
}

namespace {

const char* trace_kind_name(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::TaskBegin: return "task-begin";
    case TraceEvent::Kind::TaskEnd: return "task-end";
    case TraceEvent::Kind::WaitBegin: return "wait-begin";
    case TraceEvent::Kind::WaitEnd: return "wait-end";
    case TraceEvent::Kind::Note: return "note";
  }
  return "?";
}

}  // namespace

std::string schedule_trace_to_json(const std::vector<TraceEvent>& events,
                                   const PipelineStats& stats) {
  std::ostringstream out;
  out << "{\"stats\":{"
      << "\"tasks_executed\":" << stats.tasks_executed
      << ",\"helped_tasks\":" << stats.helped_tasks
      << ",\"steals\":" << stats.steals
      << ",\"fence_stalls\":" << stats.fence_stalls
      << ",\"waits\":" << stats.waits
      << ",\"wait_ticks\":" << stats.wait_ticks
      << ",\"timer_wakeups\":" << stats.timer_wakeups
      << ",\"max_parked\":" << stats.max_parked
      << ",\"cells_cancelled\":" << stats.cells_cancelled
      << ",\"waits_cancelled\":" << stats.waits_cancelled
      << ",\"cpu_tokens\":" << stats.cpu_tokens
      << ",\"stage_occupancy\":{";
  bool first = true;
  for (const auto& [label, occ] : stats.stage_occupancy) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(label) << "\":{\"tasks\":" << occ.tasks
        << ",\"busy_ms\":" << occ.busy_ms << "}";
  }
  out << "},\"debt_histogram\":[";
  for (std::size_t i = 0; i < stats.debt_histogram.size(); ++i) {
    if (i != 0) out << ",";
    out << stats.debt_histogram[i];
  }
  out << "]},\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (i != 0) out << ",";
    out << "\n {\"kind\":\"" << trace_kind_name(event.kind) << "\",\"seq\":" << event.seq
        << ",\"worker\":" << event.worker << ",\"cell\":" << event.cell
        << ",\"label\":\"" << json_escape(event.label) << "\",\"ticks\":" << event.ticks
        << ",\"at\":" << event.at << "}";
  }
  out << "\n]}";
  return out.str();
}

}  // namespace wideleak::core
