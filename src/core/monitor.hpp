// WideLeak's DRM API monitor (the paper's Frida script, §IV-B).
//
// Attaches to the process hosting the Widevine HAL plugin and records every
// call crossing the Media DRM framework: the `_oeccXX` CDM functions plus
// the MediaDrm/MediaCrypto JNI layer. From the trace it answers Q1: is
// Widevine used at all, and at which security level (L1 iff control flow
// reaches liboemcrypto.so).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "android/device.hpp"
#include "hooking/hook_bus.hpp"
#include "widevine/protocol.hpp"

namespace wideleak::core {

/// Q1 verdict for one observation window.
struct WidevineUsageReport {
  bool widevine_used = false;  // any CDM (_oecc) activity observed
  std::optional<widevine::SecurityLevel> observed_level;
  std::size_t oecc_calls = 0;
  std::size_t media_drm_calls = 0;
};

/// The paper's Frida vantage (§IV-B), one instance per observed device.
/// Input: the device's DRM-hosting process (hook bus subscription).
/// Output: the raw call trace, the Q1 WidevineUsageReport, and dumped
/// argument/result buffers per hooked function.
/// Thread safety: instance-scoped — borrows the device and must stay on
/// the thread that owns it; distinct monitors on distinct devices are
/// fully independent (campaign cells rely on this).
class DrmApiMonitor {
 public:
  /// Attach to the device's DRM-hosting process (requires root, which the
  /// DRM threat model grants the attacker).
  explicit DrmApiMonitor(android::Device& device);

  const hooking::CallTrace& trace() const { return session_->trace(); }
  void clear() { session_->trace().clear(); }

  WidevineUsageReport usage_report() const;

  /// All output buffers dumped for a function (e.g. the plaintext that
  /// _oecc42_GenericDecrypt returned — Netflix's "protected" URIs).
  std::vector<Bytes> dumped_outputs(std::string_view function) const;
  std::vector<Bytes> dumped_inputs(std::string_view function) const;

  /// The observed call sequence, for Figure-1 style flow reconstruction.
  std::vector<std::string> call_sequence() const { return trace().function_sequence(); }

 private:
  std::unique_ptr<hooking::TraceSession> session_;
};

}  // namespace wideleak::core
