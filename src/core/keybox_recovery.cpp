#include "core/keybox_recovery.hpp"

namespace wideleak::core {

KeyboxRecoveryResult scan_for_keybox(const hooking::ProcessMemory& memory) {
  KeyboxRecoveryResult result;
  const Bytes magic(widevine::kKeyboxMagic, widevine::kKeyboxMagic + 4);

  const auto snapshot = memory.snapshot();
  result.regions_scanned = snapshot.size();
  for (const hooking::MemoryRegion& region : snapshot) {
    result.bytes_scanned += region.data.size();
  }

  for (const hooking::ScanHit& hit : memory.scan(BytesView(magic))) {
    // The magic sits at offset 120 of a 128-byte structure; reject hits
    // whose surrounding window falls outside the region.
    if (hit.offset < widevine::kKeyboxMagicOffset) continue;
    const Bytes& data = memory.read_region(hit.region);
    const std::size_t start = hit.offset - widevine::kKeyboxMagicOffset;
    if (start + widevine::kKeyboxSize > data.size()) continue;
    ++result.magic_hits;

    const BytesView candidate(data.data() + start, widevine::kKeyboxSize);
    const auto parsed = widevine::Keybox::parse(candidate);
    if (!parsed) continue;
    ++result.crc_validated;
    if (!result.keybox) {
      result.keybox = parsed;
      result.source_region = hit.region_name;
    }
  }
  return result;
}

KeyboxRecoveryResult recover_keybox(const android::Device& device) {
  return scan_for_keybox(device.drm_process().memory());
}

}  // namespace wideleak::core
