#include "core/keybox_recovery.hpp"

namespace wideleak::core {

KeyboxRecoveryResult scan_for_keybox(const hooking::ProcessMemory& memory) {
  KeyboxRecoveryResult result;
  const Bytes magic(widevine::kKeyboxMagic, widevine::kKeyboxMagic + 4);

  // Stats come straight off the region table — no deep copy of every
  // region's bytes just to count them.
  result.regions_scanned = memory.region_count();
  result.bytes_scanned = memory.total_bytes();

  for (const hooking::ScanHit& hit : memory.scan(BytesView(magic))) {
    // The magic sits at offset 120 of a 128-byte structure; reject hits
    // whose surrounding window falls outside the region.
    if (hit.offset < widevine::kKeyboxMagicOffset) continue;
    const Bytes& data = memory.read_region(hit.region);
    const std::size_t start = hit.offset - widevine::kKeyboxMagicOffset;
    if (start + widevine::kKeyboxSize > data.size()) continue;
    ++result.magic_hits;

    // CRC before structure: candidates are checksum-filtered in place and
    // only the winner pays for a parse (SecretBytes copy of the key field).
    const BytesView candidate(data.data() + start, widevine::kKeyboxSize);
    if (!widevine::Keybox::validate(candidate)) continue;
    ++result.crc_validated;
    if (!result.keybox) {
      result.keybox = widevine::Keybox::parse(candidate);
      result.source_region = hit.region_name;
    }
  }
  return result;
}

KeyboxRecoveryResult recover_keybox(const android::Device& device) {
  return scan_for_keybox(device.drm_process().memory());
}

}  // namespace wideleak::core
