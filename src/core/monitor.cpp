#include "core/monitor.hpp"

#include "android/media_drm.hpp"
#include "widevine/oemcrypto.hpp"

namespace wideleak::core {

DrmApiMonitor::DrmApiMonitor(android::Device& device)
    : session_(std::make_unique<hooking::TraceSession>(device.drm_process().bus())) {}

WidevineUsageReport DrmApiMonitor::usage_report() const {
  WidevineUsageReport report;
  for (const hooking::CallRecord& record : trace().records()) {
    if (record.function.rfind("_oecc", 0) == 0) {
      report.widevine_used = true;
      ++report.oecc_calls;
    }
    if (record.module == android::kMediaJniModule) ++report.media_drm_calls;
  }
  if (report.widevine_used) {
    // The paper's classifier: L1 is confirmed when the control flow reaches
    // liboemcrypto.so; L3 keeps all calls inside libwvdrmengine.so.
    report.observed_level = trace().touched_module(widevine::kOemCryptoModule)
                                ? widevine::SecurityLevel::L1
                                : widevine::SecurityLevel::L3;
  }
  return report;
}

std::vector<Bytes> DrmApiMonitor::dumped_outputs(std::string_view function) const {
  std::vector<Bytes> out;
  for (const hooking::CallRecord* record : trace().by_function(function)) {
    out.push_back(record->output);
  }
  return out;
}

std::vector<Bytes> DrmApiMonitor::dumped_inputs(std::string_view function) const {
  std::vector<Bytes> out;
  for (const hooking::CallRecord* record : trace().by_function(function)) {
    out.push_back(record->input);
  }
  return out;
}

}  // namespace wideleak::core
