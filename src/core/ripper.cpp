#include "core/ripper.hpp"

#include "core/network_monitor.hpp"
#include "media/cenc.hpp"
#include "ott/catalog.hpp"
#include "ott/playback.hpp"
#include "support/errors.hpp"
#include "support/log.hpp"

namespace wideleak::core {

namespace {

net::TrustStore analyst_trust(const ott::StreamingEcosystem& ecosystem) {
  net::TrustStore trust;
  trust.add(ecosystem.root_ca());
  return trust;
}

}  // namespace

ContentRipper::ContentRipper(ott::StreamingEcosystem& ecosystem, android::Device& legacy_device)
    : ecosystem_(ecosystem),
      device_(legacy_device),
      analyst_client_(ecosystem.network(), analyst_trust(ecosystem),
                      ecosystem.fork_rng()) {}

std::optional<Bytes> ContentRipper::download(const std::string& host, const std::string& path) {
  net::HttpRequest req;
  req.path = path;
  const auto result = analyst_client_.request(host, req);
  if (!result.ok()) return std::nullopt;
  return result.response->body;
}

RipResult ContentRipper::rip_app(const ott::OttAppProfile& profile) {
  RipResult result;
  result.app = profile.name;

  // --- 1. Instrument and drive one playback.
  DrmApiMonitor drm_monitor(device_);
  NetworkMonitor net_monitor(ecosystem_.network(), ecosystem_.fork_rng());
  ott::OttApp app(profile, ecosystem_, device_);
  net_monitor.attach(app);
  const ott::PlaybackOutcome outcome = app.play_title();

  if (outcome.used_custom_drm) {
    result.failure = "app used its embedded DRM on L3: no Widevine traffic to exploit";
    return result;
  }
  if (outcome.provisioning_attempted && !outcome.provisioning_ok) {
    result.failure = "service refused the discontinued device at provisioning: " +
                     outcome.provisioning_error;
    return result;
  }
  if (!outcome.license_ok) {
    result.failure = "no license was delivered: " + outcome.license_error;
    return result;
  }

  // --- 2. Keybox recovery (CVE-2021-0639).
  const KeyboxRecoveryResult keybox = recover_keybox(device_);
  if (!keybox.success()) {
    result.failure = "keybox not found in CDM process memory (patched or L1 device)";
    return result;
  }
  result.keybox_recovered = true;

  // --- 3. Key ladder reconstruction from the intercepted buffers.
  KeyLadderAttack ladder(*keybox.keybox);
  if (ladder.recover_device_rsa_key(drm_monitor.trace())) {
    result.device_rsa_recovered = true;
  }
  const RecoveredKeys keys = ladder.recover_content_keys(drm_monitor.trace());
  result.content_keys_recovered = keys.size();
  if (keys.empty()) {
    result.failure = "no content keys recovered from the intercepted exchanges";
    return result;
  }

  // --- 4. Harvest URIs, download and MPEG-CENC-decrypt everything we have
  //        keys (or no keys needed) for.
  const HarvestedManifest manifest = net_monitor.harvest_manifest(&drm_monitor);
  if (!manifest.mpd) {
    result.failure = "manifest could not be harvested";
    return result;
  }

  Bytes reconstruction;
  auto append_track = [&](const media::MpdRepresentation& rep) -> bool {
    const auto file = download(manifest.cdn_host, rep.base_url);
    if (!file) return false;
    media::PackagedTrack track;
    try {
      track = media::PackagedTrack::from_file(BytesView(*file));
    } catch (const Error&) {
      return false;
    }
    // Decrypt straight into the reconstruction buffer — no per-track
    // intermediate copy.
    if (track.encrypted) {
      const auto key = keys.find(hex_encode(track.key_id));
      if (key == keys.end()) return false;  // e.g. an HD key we never got
      media::cenc_decrypt_track_append(track, key->second, reconstruction);
    } else {
      media::raw_sample_stream_append(track, reconstruction);
    }
    return true;
  };

  // Best video we hold a key for (qHD on L3, per the license policy).
  const media::MpdRepresentation* best_video = nullptr;
  for (const auto* rep : manifest.mpd->of_type(media::TrackType::Video)) {
    const bool have_key =
        !rep->default_kid || keys.contains(hex_encode(*rep->default_kid));
    if (!have_key) continue;
    if (best_video == nullptr || rep->resolution.height > best_video->resolution.height) {
      best_video = rep;
    }
  }
  if (best_video == nullptr || !append_track(*best_video)) {
    result.failure = "no video track could be decrypted";
    return result;
  }
  result.best_video_resolution = best_video->resolution;

  // Every audio language ("audio in any language can be played anywhere").
  for (const auto* rep : manifest.mpd->of_type(media::TrackType::Audio)) {
    if (append_track(*rep)) ++result.audio_tracks;
  }
  // Subtitles, when their URIs were discoverable.
  for (const auto* rep : manifest.mpd->of_type(media::TrackType::Subtitle)) {
    if (append_track(*rep)) ++result.subtitle_tracks;
  }

  // --- 5. Play it on the "PC": stock player, no app, no account, no DRM.
  const media::PlaybackReport playback = media::try_play(BytesView(reconstruction));
  result.plays_without_account = playback.playable;
  result.frames = playback.frames;
  result.drm_free_media = std::move(reconstruction);
  result.success = playback.playable && result.audio_tracks > 0;
  if (!result.success && result.failure.empty()) {
    result.failure = "reconstructed media failed the stock-player check";
  }
  WL_LOG(Info) << profile.name << ": rip " << (result.success ? "succeeded" : "failed")
               << " at " << result.best_video_resolution.label();
  return result;
}

std::vector<RipResult> ContentRipper::rip_catalog() {
  std::vector<RipResult> results;
  for (const ott::OttAppProfile& profile : ott::study_catalog()) {
    results.push_back(rip_app(profile));
  }
  return results;
}

}  // namespace wideleak::core
