#include "core/ripper.hpp"

#include "media/cenc.hpp"
#include "ott/catalog.hpp"
#include "support/errors.hpp"
#include "support/log.hpp"

namespace wideleak::core {

namespace {

net::TrustStore analyst_trust(const ott::StreamingEcosystem& ecosystem) {
  net::TrustStore trust;
  trust.add(ecosystem.root_ca());
  return trust;
}

}  // namespace

ContentRipper::ContentRipper(ott::StreamingEcosystem& ecosystem, android::Device& legacy_device)
    : ecosystem_(ecosystem),
      device_(legacy_device),
      analyst_client_(ecosystem.network(), analyst_trust(ecosystem),
                      ecosystem.fork_rng()) {}

std::optional<Bytes> ContentRipper::download(const std::string& host, const std::string& path) {
  net::HttpRequest req;
  req.path = path;
  const auto result = analyst_client_.request(host, req);
  if (!result.ok()) return std::nullopt;
  return result.response->body;
}

RipResult ContentRipper::rip_app(const ott::OttAppProfile& profile) {
  RipSession session(*this, profile);
  while (!session.done()) session.step();
  return session.take_result();
}

std::vector<RipResult> ContentRipper::rip_catalog() {
  std::vector<RipResult> results;
  for (const ott::OttAppProfile& profile : ott::study_catalog()) {
    results.push_back(rip_app(profile));
  }
  return results;
}

// ---------------------------------------------------------------------------
// RipSession: the §IV-D pipeline, one phase per step()
// ---------------------------------------------------------------------------

RipSession::RipSession(ContentRipper& ripper, const ott::OttAppProfile& profile)
    : ripper_(ripper), profile_(profile) {
  result_.app = profile_.name;
}

int RipSession::max_steps_for(const ott::OttAppProfile& profile) {
  // Instrument, recover keys, reconstruct (manifest harvest + video);
  // one audio representation per step, one subtitle per step (each phase
  // spends one extra step discovering it has no work left); verify.
  const int audio = static_cast<int>(profile.audio_languages.size());
  const int subs = static_cast<int>(profile.subtitle_languages.size());
  return 3 + (audio + 1) + (subs + 1) + 1;
}

const char* RipSession::phase_name() const {
  switch (phase_) {
    case Phase::Instrument: return "rip/instrument";
    case Phase::RecoverKeys: return "rip/recover-keys";
    case Phase::Reconstruct: return "rip/reconstruct";
    case Phase::ReconstructAudio: return "rip/reconstruct-audio";
    case Phase::ReconstructSubtitles: return "rip/reconstruct-subtitles";
    case Phase::Verify: return "rip/verify";
    case Phase::Done: return "done";
  }
  return "?";
}

void RipSession::step() {
  switch (phase_) {
    case Phase::Instrument: step_instrument(); return;
    case Phase::RecoverKeys: step_recover_keys(); return;
    case Phase::Reconstruct: step_reconstruct(); return;
    case Phase::ReconstructAudio: step_reconstruct_audio(); return;
    case Phase::ReconstructSubtitles: step_reconstruct_subtitles(); return;
    case Phase::Verify: step_verify(); return;
    case Phase::Done: return;
  }
}

void RipSession::step_instrument() {
  // --- 1. Instrument and drive one playback.
  drm_monitor_ = std::make_unique<DrmApiMonitor>(ripper_.device_);
  net_monitor_ =
      std::make_unique<NetworkMonitor>(ripper_.ecosystem_.network(), ripper_.ecosystem_.fork_rng());
  app_ = std::make_unique<ott::OttApp>(profile_, ripper_.ecosystem_, ripper_.device_);
  net_monitor_->attach(*app_);
  outcome_ = app_->play_title();

  if (outcome_.used_custom_drm) {
    result_.failure = "app used its embedded DRM on L3: no Widevine traffic to exploit";
    phase_ = Phase::Done;
    return;
  }
  if (outcome_.provisioning_attempted && !outcome_.provisioning_ok) {
    result_.failure = "service refused the discontinued device at provisioning: " +
                      outcome_.provisioning_error;
    phase_ = Phase::Done;
    return;
  }
  if (!outcome_.license_ok) {
    result_.failure = "no license was delivered: " + outcome_.license_error;
    phase_ = Phase::Done;
    return;
  }
  phase_ = Phase::RecoverKeys;
}

void RipSession::step_recover_keys() {
  // --- 2. Keybox recovery (CVE-2021-0639).
  const KeyboxRecoveryResult keybox = recover_keybox(ripper_.device_);
  if (!keybox.success()) {
    result_.failure = "keybox not found in CDM process memory (patched or L1 device)";
    phase_ = Phase::Done;
    return;
  }
  result_.keybox_recovered = true;

  // --- 3. Key ladder reconstruction from the intercepted buffers.
  KeyLadderAttack ladder(*keybox.keybox);
  if (ladder.recover_device_rsa_key(drm_monitor_->trace())) {
    result_.device_rsa_recovered = true;
  }
  keys_ = ladder.recover_content_keys(drm_monitor_->trace());
  result_.content_keys_recovered = keys_.size();
  if (keys_.empty()) {
    result_.failure = "no content keys recovered from the intercepted exchanges";
    phase_ = Phase::Done;
    return;
  }
  phase_ = Phase::Reconstruct;
}

bool RipSession::append_track(const media::MpdRepresentation& rep) {
  const auto file = ripper_.download(manifest_.cdn_host, rep.base_url);
  if (!file) return false;
  media::PackagedTrack track;
  try {
    track = media::PackagedTrack::from_file(BytesView(*file));
  } catch (const Error&) {
    return false;
  }
  // Decrypt straight into the reconstruction buffer — no per-track
  // intermediate copy.
  if (track.encrypted) {
    const auto key = keys_.find(hex_encode(track.key_id));
    if (key == keys_.end()) return false;  // e.g. an HD key we never got
    media::cenc_decrypt_track_append(track, key->second, reconstruction_);
  } else {
    media::raw_sample_stream_append(track, reconstruction_);
  }
  return true;
}

void RipSession::step_reconstruct() {
  // --- 4. Harvest URIs, download and MPEG-CENC-decrypt everything we have
  //        keys (or no keys needed) for.
  manifest_ = net_monitor_->harvest_manifest(drm_monitor_.get());
  if (!manifest_.mpd) {
    result_.failure = "manifest could not be harvested";
    phase_ = Phase::Done;
    return;
  }

  // Best video we hold a key for (qHD on L3, per the license policy).
  const media::MpdRepresentation* best_video = nullptr;
  for (const auto* rep : manifest_.mpd->of_type(media::TrackType::Video)) {
    const bool have_key =
        !rep->default_kid || keys_.contains(hex_encode(*rep->default_kid));
    if (!have_key) continue;
    if (best_video == nullptr || rep->resolution.height > best_video->resolution.height) {
      best_video = rep;
    }
  }
  if (best_video == nullptr || !append_track(*best_video)) {
    result_.failure = "no video track could be decrypted";
    phase_ = Phase::Done;
    return;
  }
  result_.best_video_resolution = best_video->resolution;
  phase_ = Phase::ReconstructAudio;
}

void RipSession::step_reconstruct_audio() {
  // Every audio language ("audio in any language can be played anywhere").
  // Segment-granular: one representation's download+decrypt per step.
  const auto reps = manifest_.mpd->of_type(media::TrackType::Audio);
  while (audio_index_ < reps.size()) {
    if (append_track(*reps[audio_index_++])) ++result_.audio_tracks;
    if (audio_index_ < reps.size()) return;  // one download per step
  }
  phase_ = Phase::ReconstructSubtitles;
}

void RipSession::step_reconstruct_subtitles() {
  // Subtitles, when their URIs were discoverable. One per step.
  const auto reps = manifest_.mpd->of_type(media::TrackType::Subtitle);
  while (subtitle_index_ < reps.size()) {
    if (append_track(*reps[subtitle_index_++])) ++result_.subtitle_tracks;
    if (subtitle_index_ < reps.size()) return;
  }
  phase_ = Phase::Verify;
}

void RipSession::step_verify() {
  // --- 5. Play it on the "PC": stock player, no app, no account, no DRM.
  const media::PlaybackReport playback = media::try_play(BytesView(reconstruction_));
  result_.plays_without_account = playback.playable;
  result_.frames = playback.frames;
  result_.drm_free_media = std::move(reconstruction_);
  result_.success = playback.playable && result_.audio_tracks > 0;
  if (!result_.success && result_.failure.empty()) {
    result_.failure = "reconstructed media failed the stock-player check";
  }
  WL_LOG(Info) << profile_.name << ": rip " << (result_.success ? "succeeded" : "failed")
               << " at " << result_.best_video_resolution.label();
  phase_ = Phase::Done;
}

}  // namespace wideleak::core
