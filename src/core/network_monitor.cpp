#include "core/network_monitor.hpp"

#include "support/errors.hpp"
#include "support/log.hpp"

namespace wideleak::core {

NetworkMonitor::NetworkMonitor(net::Network& network, Rng rng)
    : proxy_(network, std::move(rng)) {}

void NetworkMonitor::attach(ott::OttApp& app) {
  // Step 1: user-install the proxy CA on the (rooted) device, as Burp setup
  // instructs. Certificate *chain* validation now passes for forged certs.
  app.device().system_trust().add(proxy_.ca());
  // The app's TLS client snapshots the trust store at construction, so add
  // the CA there too (equivalent to restarting the app after CA install).
  app.tls().trust().add(proxy_.ca());

  // Step 2: route the app through the proxy.
  app.tls().set_proxy(&proxy_);

  // Step 3: the Frida repinning bypass — override the pin verdict.
  app.tls().set_pin_check_override(
      [this](const std::string& host, const net::Certificate&, bool stock_verdict) {
        if (!stock_verdict) {
          ++pin_bypasses_;
          WL_LOG(Debug) << "pin bypass engaged for " << host;
        }
        return true;  // always pass
      });
}

HarvestedManifest NetworkMonitor::harvest_manifest(const DrmApiMonitor* cdm_monitor) const {
  HarvestedManifest out;

  for (const net::CapturedFlow& flow : flows()) {
    if (flow.request.path != "/manifest" || !flow.response.ok()) continue;
    const auto content_type = flow.response.headers.find("content-type");
    const bool secure_envelope = content_type != flow.response.headers.end() &&
                                 content_type->second == "application/x-secure-manifest";
    if (const auto cdn = flow.response.headers.find("x-cdn-host");
        cdn != flow.response.headers.end()) {
      out.cdn_host = cdn->second;
    }
    if (const auto tokens = flow.response.headers.find("x-subtitle-tokens");
        tokens != flow.response.headers.end()) {
      std::size_t start = 0;
      const std::string& value = tokens->second;
      while (start < value.size()) {
        const std::size_t comma = value.find(',', start);
        const std::size_t end = comma == std::string::npos ? value.size() : comma;
        out.opaque_subtitle_tokens.push_back(value.substr(start, end - start));
        start = end + 1;
      }
    }
    if (!secure_envelope) {
      try {
        out.mpd = media::Mpd::parse(to_string(BytesView(flow.response.body)));
        out.source = "mitm";
        return out;
      } catch (const ParseError&) {
        continue;
      }
    }
  }

  // Secure channel: recover the manifest from the CDM's generic-decrypt
  // output buffers instead.
  if (cdm_monitor != nullptr) {
    for (const Bytes& plain : cdm_monitor->dumped_outputs("_oecc42_GenericDecrypt")) {
      try {
        out.mpd = media::Mpd::parse(to_string(BytesView(plain)));
        out.source = "cdm-generic-decrypt";
        return out;
      } catch (const ParseError&) {
        continue;
      }
    }
  }
  return out;
}

}  // namespace wideleak::core
