#include "core/key_ladder_attack.hpp"

#include "crypto/cmac.hpp"
#include "crypto/hmac.hpp"
#include "crypto/modes.hpp"
#include "support/byte_io.hpp"
#include "support/errors.hpp"
#include "support/log.hpp"

namespace wideleak::core {

// Deliberately NOT calling widevine::derive_session_keys: this is the
// attacker's clean-room reconstruction of the KDF, and a regression test
// cross-checks the two implementations against each other.
KeyLadderAttack::DerivedTriple KeyLadderAttack::derive_triple(BytesView root_key,
                                                              BytesView context) {
  auto kdf_context = [&](std::string_view label) {
    ByteWriter w;
    w.raw(label);
    w.u8(0x00);
    w.raw(context);
    w.u32(static_cast<std::uint32_t>(context.size() * 8));
    return w.take();
  };

  DerivedTriple triple;
  triple.enc_key = crypto::cmac_counter_kdf(root_key, kdf_context("ENCRYPTION"), 0x01, 16);
  const Bytes mac_block =
      crypto::cmac_counter_kdf(root_key, kdf_context("AUTHENTICATION"), 0x01, 64);
  triple.mac_key_server.assign(mac_block.begin(), mac_block.begin() + 32);
  triple.mac_key_client.assign(mac_block.begin() + 32, mac_block.end());
  return triple;
}

std::optional<crypto::RsaKeyPair> KeyLadderAttack::recover_device_rsa_key(
    const hooking::CallTrace& trace) {
  // The provisioning request crosses the JNI boundary in the clear (it is
  // protection for the *response* that matters); grab it from the
  // getProvisionRequest dump, and the response from provideProvisionResponse.
  const hooking::CallRecord* request_record = trace.first("MediaDrm.getProvisionRequest");
  const hooking::CallRecord* response_record = trace.first("MediaDrm.provideProvisionResponse");
  if (request_record == nullptr || response_record == nullptr) return std::nullopt;

  try {
    const auto request =
        widevine::ProvisioningRequest::deserialize(BytesView(request_record->output));
    const auto response =
        widevine::ProvisioningResponse::deserialize(BytesView(response_record->input));
    if (!response.granted) return std::nullopt;

    // Re-derive the session triple from the recovered keybox device key and
    // the request body (which is the KDF context by construction).
    const Bytes context = request.body();
    const DerivedTriple triple = derive_triple(keybox_.device_key().reveal(), context);

    // Sanity: the response MAC must verify under our derived key, proving
    // the ladder reconstruction is right.
    if (!crypto::hmac_sha256_verify(triple.mac_key_server, response.body(), response.mac)) {
      WL_LOG(Warn) << "key ladder: provisioning MAC mismatch — wrong keybox?";
      return std::nullopt;
    }

    const crypto::Aes enc(triple.enc_key);
    const Bytes serialized =
        crypto::aes_cbc_decrypt(enc, response.wrapping_iv, response.wrapped_rsa_key);
    device_rsa_key_ = crypto::RsaKeyPair::deserialize(serialized);
    // Logs only the modulus bit length, never key bytes. wl-lint: taint-ok
    WL_LOG(Info) << "key ladder: Device RSA Key recovered ("
                 << device_rsa_key_->pub.n.bit_length() << " bits)";
    return device_rsa_key_;
  } catch (const Error&) {
    return std::nullopt;
  }
}

RecoveredKeys KeyLadderAttack::decrypt_license_response(
    const widevine::LicenseRequest& request, const widevine::LicenseResponse& response) {
  RecoveredKeys recovered;
  if (!response.granted) return recovered;

  const Bytes context = request.body();
  DerivedTriple triple;
  if (request.scheme == widevine::SignatureScheme::DeviceRsa) {
    if (!device_rsa_key_) return recovered;  // need step 1 first
    const Bytes session_key =
        crypto::rsa_oaep_decrypt(*device_rsa_key_, response.session_key_wrapped);
    triple = derive_triple(session_key, context);
  } else {
    triple = derive_triple(keybox_.device_key().reveal(), context);
  }

  if (!crypto::hmac_sha256_verify(triple.mac_key_server, response.body(), response.mac)) {
    WL_LOG(Warn) << "key ladder: license MAC mismatch — skipping exchange";
    return recovered;
  }

  const crypto::Aes enc(triple.enc_key);
  for (const widevine::KeyContainer& container : response.keys) {
    const Bytes key = crypto::aes_cbc_decrypt_nopad(enc, container.iv, container.wrapped_key);
    recovered[hex_encode(container.kid)] = key;
  }
  return recovered;
}

RecoveredKeys KeyLadderAttack::recover_content_keys(const hooking::CallTrace& trace) {
  RecoveredKeys recovered;

  const auto requests = trace.by_function("MediaDrm.getKeyRequest");
  const auto responses = trace.by_function("MediaDrm.provideKeyResponse");
  const std::size_t exchanges = std::min(requests.size(), responses.size());

  for (std::size_t i = 0; i < exchanges; ++i) {
    try {
      const auto request = widevine::LicenseRequest::deserialize(BytesView(requests[i]->output));
      const auto response =
          widevine::LicenseResponse::deserialize(BytesView(responses[i]->input));
      for (auto& [kid, key] : decrypt_license_response(request, response)) {
        recovered[kid] = key;
      }
    } catch (const Error&) {
      continue;  // unrelated or malformed exchange
    }
  }

  WL_LOG(Info) << "key ladder: recovered " << recovered.size() << " content keys";
  return recovered;
}

widevine::LicenseRequest KeyLadderAttack::forge_license_request(
    const widevine::ClientIdentity& identity, const std::vector<media::KeyId>& key_ids,
    Rng& rng) {
  widevine::LicenseRequest request;
  request.client = identity;
  request.nonce = rng.next_bytes(16);
  request.key_ids = key_ids;

  if (device_rsa_key_) {
    request.scheme = widevine::SignatureScheme::DeviceRsa;
    request.device_rsa_public = device_rsa_key_->pub.serialize();
    request.signature = crypto::rsa_pss_sign(*device_rsa_key_, rng, request.body());
  } else {
    request.scheme = widevine::SignatureScheme::KeyboxCmac;
    const Bytes body = request.body();
    const DerivedTriple triple = derive_triple(keybox_.device_key().reveal(), body);
    request.signature = crypto::hmac_sha256(triple.mac_key_client, body);
  }
  return request;
}

}  // namespace wideleak::core
