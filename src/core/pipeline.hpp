// core::TaskQueue — the campaign's pipelined task-graph scheduler.
//
// Each campaign cell is a linear chain of segment-stage tasks (provision,
// license, per-segment fetch, decrypt/audit, rip phases) linked by
// dependency fences. Ready tasks live on per-worker run queues (a task's
// home queue is cell % workers); each queue is ordered by the owning
// cell's accumulated *simulated wait debt* (descending), tying by
// submission id — so before any cell has waited, the ready order is plain
// submission order. A worker pops the globally best entry, scanning its
// own queue first and then stealing from victims in fixed worker-index
// order — the steal order is deterministic by construction, never a
// function of thread timing. Cells that keep hitting injected latency and
// backoff float to the front: their next wait starts as early as
// possible, which is what leaves wall time for the CPU-heavy cells to
// fill. Report bit-identity does not depend on this order at all — each
// cell computes from its own derive_stream_seed'd SimClock and shares
// nothing, so cross-cell interleaving can only move wall time, never
// bytes.
//
// The perf half is the wait machinery: when a task's simulated network
// wait carries a real wall-time obligation (pacing enabled), the worker
// parks the deadline on a shared support::TimerWheel and sleeps — and the
// queue *injects a relief worker* to keep the CPU token fed, so runnable
// work never stalls behind a parked thread. (An earlier design had parked
// workers run other tasks nested on their own stack; a nested task that
// parked its own long wait then buried the outer, already-matured deadline
// under it — priority inversion worth whole seconds of resume lag per
// paced campaign. Relief threads resume every wait the moment it matures.)
// Cell B's decrypt executes inside cell A's injected latency window; the
// wall clock, not the virtual one, is the only thing that overlaps.
// helped_tasks counts stages run by relief workers inside those windows.
//
// With pacing disabled (the default everywhere but the benches), waits are
// free and wait_ticks() is telemetry only — behaviour and wall cost match
// the historical synchronous runner.
//
// Thread safety: one mutex guards the whole scheduler (tasks run unlocked;
// queue ops are nanoseconds against millisecond tasks). submit()/make_fence
// are typically called before drain() but are safe during it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "support/annotations.hpp"
#include "support/timer_wheel.hpp"

namespace wideleak::core {

using TaskId = std::size_t;

/// A dependency fence: created with a producer count, signals when that
/// many tasks naming it in `signals` have completed. Tasks submitted with
/// `after` park until the fence signals, then enter the ready set in
/// submission order.
struct FenceId {
  std::size_t value = 0;
};

/// Per-task-label occupancy: how many tasks carried the label and how much
/// wall time they spent on CPU. Wall-clock derived, so telemetry only.
struct StageOccupancy {
  std::uint64_t tasks = 0;
  double busy_ms = 0.0;
};

/// Scheduler telemetry (WL008-guarded inside the queue; snapshot with
/// stats()). Feeds render_campaign_stats only — never a diffed report, so
/// nothing here may influence scheduling decisions.
struct PipelineStats {
  std::uint64_t tasks_executed = 0;
  std::uint64_t helped_tasks = 0;   // tasks run by injected relief workers while
                                    // other tasks' waits were parked
  std::uint64_t steals = 0;         // tasks executed off a foreign worker's run queue
  std::uint64_t fence_stalls = 0;   // submissions parked on an unsignaled fence
  std::uint64_t waits = 0;          // SimClock waits surfaced to the scheduler
  std::uint64_t wait_ticks = 0;     // total simulated ticks across those waits
  std::uint64_t timer_wakeups = 0;  // timer-wheel deadline expirations served
  std::size_t max_parked = 0;       // high-water mark of concurrently parked waits
  std::uint64_t cells_cancelled = 0;  // cancel_cell_waits() calls (deadline expiry)
  std::uint64_t waits_cancelled = 0;  // waits skipped or released because the cell
                                      // was cancelled (never also a timer wakeup)
  std::size_t cpu_tokens = 0;       // resolved on-CPU pickup budget for the run
  /// Per-stage occupancy, keyed by task label ("play", "rip", "flush"...).
  std::map<std::string, StageOccupancy> stage_occupancy;
  /// Histogram of per-cell accumulated wait debt: bucket 0 = no debt,
  /// bucket k = debt in [2^(k-1), 2^k) ticks, last bucket open-ended.
  std::vector<std::uint64_t> debt_histogram;
};

/// One scheduler event, recorded when the spec asks for a trace. The global
/// `seq` totally orders events; nesting (a cell-B TaskBegin between a
/// cell-A WaitBegin/WaitEnd pair on one worker) is the overlap proof the
/// pipeline test asserts on.
struct TraceEvent {
  enum class Kind { TaskBegin, TaskEnd, WaitBegin, WaitEnd, Note };
  Kind kind = Kind::TaskBegin;
  std::uint64_t seq = 0;     // global event order
  std::size_t worker = 0;    // executing worker (relief workers get ids >= workers)
  std::size_t cell = 0;      // owning cell / task token
  std::string label;         // task label, or a Note payload
  std::uint64_t ticks = 0;   // wait span (WaitBegin only)
  std::uint64_t at = 0;      // pacer tick when recorded (0 when pacing is off)
};

class TaskQueue {
 public:
  /// `workers` is the pool size drain() runs (the caller's thread plus
  /// workers-1 spawned ones). Tracing is off unless requested — recording
  /// is mutex-serialized and for tests/diagnostics, not the hot path.
  TaskQueue(std::size_t workers, support::PacingPolicy pacing, bool record_trace = false);

  /// A fence that signals after `producers` completions. producers == 0
  /// makes it pre-signaled.
  FenceId make_fence(std::size_t producers);

  /// Enqueue a task. `after`: fence that must signal before the task can
  /// run. `signals`: fence decremented when it completes. `cell` and
  /// `label` identify the task in traces and telemetry. Jobs must not
  /// throw — wrap fallible work (campaign stages catch into the cell
  /// result).
  TaskId submit(std::function<void()> job, std::optional<FenceId> after,
                std::optional<FenceId> signals, std::size_t cell, std::string label);

  /// Run tasks until `until` signals. The calling thread is worker 0;
  /// workers-1 threads are spawned for the duration, plus any relief
  /// workers injected while waits were parked; all are joined before
  /// returning. May be called again after it returns (e.g. a second
  /// campaign wave on one queue).
  void drain(FenceId until);

  /// A running task's simulated wait of `ticks` (routed here from
  /// SimClock::sleep via the cell's WaitObserver). Telemetry-only when
  /// pacing is off. When pacing is on, parks the wall deadline on the
  /// timer wheel and sleeps; a relief worker is injected (up to a cap) so
  /// the pool never loses CPU capacity to a parked thread, and the wait
  /// resumes the moment its deadline matures.
  void wait_ticks(std::size_t cell, std::uint64_t ticks);

  /// Mark a cell cancelled (its deadline budget expired). Subsequent
  /// wait_ticks() calls from that cell stop parking on the timer wheel —
  /// the virtual advance already happened in SimClock, but a cancelled
  /// cell owes the wall clock nothing, so its remaining stages drain as
  /// fast as the workers can skip them. A wait already parked on the wheel
  /// is released immediately (its wheel entry is cancelled, so it is
  /// charged once as a cancelled wait, never again as a timer wakeup), and
  /// cancelled waits stop accruing to the cell's debt ledger. Idempotent.
  void cancel_cell_waits(std::size_t cell);

  /// Whether cancel_cell_waits() was called for `cell`.
  bool cell_cancelled(std::size_t cell) const;

  /// Drop a Note event into the trace (no-op unless tracing). Stages use
  /// this to mark dynamic sub-stage labels ("video", "rip/recover"...).
  void trace_note(std::size_t cell, std::string label);

  /// The worker index of the calling thread (0 when called outside a
  /// drain, e.g. from the submitting thread).
  static std::size_t current_worker();

  PipelineStats stats() const;
  std::vector<TraceEvent> trace() const;
  std::size_t task_count() const;

  /// The cell's accumulated simulated wait debt (the scheduler's priority
  /// signal). Cancelled cells stop accruing — the accounting the debt-ledger
  /// regression test pins down.
  std::uint64_t cell_wait_debt(std::size_t cell) const;

  /// Profile-guided priority: declare the cell's *expected* total simulated
  /// wait (e.g. measured by a prior run of the same deterministic matrix).
  /// The hint is folded into the cell's ready-order priority exactly like
  /// accrued debt — so a chain known to wait long opens its first window
  /// immediately instead of after its debt is rediscovered the hard way —
  /// but never into the debt ledger, telemetry, or any report. Cleared if
  /// the cell is cancelled (a dead cell must never outrank live ones).
  /// Call before drain(); typically set from CampaignSpec::
  /// schedule_wait_hints.
  void set_cell_wait_hint(std::size_t cell, std::uint64_t ticks);

 private:
  struct Task {
    std::function<void()> job;
    std::optional<FenceId> signals;
    std::size_t cell = 0;
    std::string label;
    std::uint64_t debt = 0;  // owning cell's wait debt, stamped at ready-insert
  };
  struct Fence {
    std::size_t pending = 0;
    bool signaled = false;
    std::vector<TaskId> waiters;
  };
  /// Ready-set key, two classes:
  ///  1. Zero-debt cells first, in submission-id order. A cell with no
  ///     recorded wait is an *undiscovered* chain — its first injected
  ///     fault could be anywhere, and until it parks something the
  ///     scheduler has no window to hide other work in. Driving every
  ///     chain to its first wait as early as possible bounds each chain's
  ///     start delay, which adds one-for-one to its finish time — and the
  ///     longest chain sets the paced makespan. (Under pure debt order
  ///     every resumed stage starves these, and the last-submitted cells
  ///     open their first wait hundreds of ticks late.)
  ///  2. Then highest wait debt first: among discovered chains, the one
  ///     that has waited most is the best predictor of waits still to
  ///     come, so its next wait should open soonest. Submission id breaks
  ///     ties.
  /// Keys are snapshotted when the task becomes ready (set keys must not
  /// mutate in place); a cell that waits while its successor is already
  /// queued gets the boost on the stage after that.
  struct ReadyEntry {
    std::uint64_t debt = 0;
    TaskId id = 0;
    bool operator<(const ReadyEntry& other) const {
      if ((debt == 0) != (other.debt == 0)) return debt == 0;
      if (debt != other.debt) return debt > other.debt;
      return id < other.id;
    }
  };

  /// The loop base workers AND injected relief workers run. `me` is the
  /// worker id; relief workers get ids >= workers_ (their run-queue home is
  /// me % workers_).
  void worker_loop(std::size_t me);
  /// Pop + execute one task (job runs unlocked). `helping` marks execution
  /// by an injected relief worker.
  void run_task(TaskId id, bool helping);
  /// Insert a task into its home run queue (cell % workers), stamping its
  /// cell's current wait debt as the priority key.
  void push_ready_locked(TaskId id) WL_REQUIRES(mutex_);
  /// Pop the globally best ready entry (highest debt, lowest id) scanning
  /// the caller's own run queue first, then victims in fixed worker-index
  /// order — a deterministic steal order, never a timing-dependent one.
  /// Sets `*stole` when the task came off a foreign queue. Returns nullopt
  /// when every queue is empty.
  std::optional<TaskId> pop_ready_locked(std::size_t me, bool* stole)
      WL_REQUIRES(mutex_);
  /// Inject one relief worker if parked waits outnumber the relief pool
  /// (keeping ~workers_ schedulable threads) and the cap allows it.
  void maybe_spawn_relief_locked() WL_REQUIRES(mutex_);
  /// Decrement the fence; on signal, release waiters into the ready set
  /// (debt-then-id order — deterministic for equal debts however the
  /// producers raced) and flip done_ if this was drain()'s target fence.
  void signal_fence_locked(FenceId fence) WL_REQUIRES(mutex_);
  void record_locked(TraceEvent::Kind kind, std::size_t cell, std::string label,
                     std::uint64_t ticks) WL_REQUIRES(mutex_);

  const std::size_t workers_;
  const support::PacingPolicy pacing_;
  const bool record_trace_;
  const support::Pacer pacer_;      // immutable; safe unlocked
  const std::size_t cpu_tokens_;    // concurrent on-CPU task budget (<= workers_)

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Task> tasks_ WL_GUARDED_BY(mutex_);
  std::vector<Fence> fences_ WL_GUARDED_BY(mutex_);
  /// Per-worker run queues (task home = cell % workers), each ordered
  /// most-waiting cell first. Workers pop their own queue and steal from
  /// victims in fixed index order, so the pop sequence is a pure function
  /// of the (debt, id) keys — never of thread timing.
  std::vector<std::set<ReadyEntry>> run_queues_ WL_GUARDED_BY(mutex_);
  std::size_t ready_count_ WL_GUARDED_BY(mutex_) = 0;  // total across run queues
  std::vector<std::uint64_t> wait_debt_ WL_GUARDED_BY(mutex_);  // per-cell sim ticks waited
  std::vector<std::uint64_t> wait_hint_ WL_GUARDED_BY(mutex_);  // per-cell expected waits
                                                                // (priority only, no ledger)
  std::vector<char> cancelled_ WL_GUARDED_BY(mutex_);  // per-cell cancellation flags
  support::TimerWheel wheel_ WL_GUARDED_BY(mutex_);
  PipelineStats stats_ WL_GUARDED_BY(mutex_);
  std::vector<TraceEvent> trace_ WL_GUARDED_BY(mutex_);
  std::uint64_t event_seq_ WL_GUARDED_BY(mutex_) = 0;
  std::size_t parked_ WL_GUARDED_BY(mutex_) = 0;
  /// Injected relief workers (run worker_loop with ids >= workers_); they
  /// exit with the base pool and drain() joins them last.
  std::vector<std::thread> relief_ WL_GUARDED_BY(mutex_);
  std::optional<FenceId> target_ WL_GUARDED_BY(mutex_);
  bool done_ WL_GUARDED_BY(mutex_) = false;
  std::size_t cpu_active_ WL_GUARDED_BY(mutex_) = 0;  // tasks on CPU (not parked)
};

}  // namespace wideleak::core
