// core::TaskQueue — the campaign's pipelined task-graph scheduler.
//
// Each campaign cell is a linear chain of stage tasks (provision, license,
// per-track fetch, decrypt/audit, rip phases) linked by dependency fences.
// The queue schedules ready tasks over a fixed worker pool ordered by the
// owning cell's accumulated *simulated wait debt* (descending), tying by
// submission id — so before any cell has waited, the ready order is plain
// submission order. Cells that keep hitting injected latency and backoff
// float to the front: their next wait starts as early as possible, which
// is what leaves wall time for the CPU-heavy cells to fill. Report
// bit-identity does not depend on this order at all — each cell computes
// from its own derive_stream_seed'd SimClock and shares nothing, so
// cross-cell interleaving can only move wall time, never bytes.
//
// The perf half is the wait machinery (the mesa util_queue_fence_wait
// idiom, minus fibers): when a task's simulated network wait carries a real
// wall-time obligation (pacing enabled), the worker does not stall. It
// parks the deadline on a shared support::TimerWheel and *helps* — runs
// other ready tasks nested on its own stack until the deadline matures.
// Cell B's decrypt executes inside cell A's injected latency window; the
// wall clock, not the virtual one, is the only thing that overlaps.
//
// With pacing disabled (the default everywhere but the benches), waits are
// free and wait_ticks() is telemetry only — behaviour and wall cost match
// the historical synchronous runner.
//
// Thread safety: one mutex guards the whole scheduler (tasks run unlocked;
// queue ops are nanoseconds against millisecond tasks). submit()/make_fence
// are typically called before drain() but are safe during it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "support/annotations.hpp"
#include "support/timer_wheel.hpp"

namespace wideleak::core {

using TaskId = std::size_t;

/// A dependency fence: created with a producer count, signals when that
/// many tasks naming it in `signals` have completed. Tasks submitted with
/// `after` park until the fence signals, then enter the ready set in
/// submission order.
struct FenceId {
  std::size_t value = 0;
};

/// Scheduler telemetry (WL008-guarded inside the queue; snapshot with
/// stats()). Feeds render_campaign_stats only — never a diffed report, so
/// nothing here may influence scheduling decisions.
struct PipelineStats {
  std::uint64_t tasks_executed = 0;
  std::uint64_t helped_tasks = 0;   // tasks run nested inside another task's wait
  std::uint64_t fence_stalls = 0;   // submissions parked on an unsignaled fence
  std::uint64_t waits = 0;          // SimClock waits surfaced to the scheduler
  std::uint64_t wait_ticks = 0;     // total simulated ticks across those waits
  std::uint64_t timer_wakeups = 0;  // timer-wheel deadline expirations served
  std::size_t max_parked = 0;       // high-water mark of concurrently parked waits
  std::uint64_t cells_cancelled = 0;  // cancel_cell_waits() calls (deadline expiry)
  std::uint64_t waits_cancelled = 0;  // waits skipped because the cell was cancelled
};

/// One scheduler event, recorded when the spec asks for a trace. The global
/// `seq` totally orders events; nesting (a cell-B TaskBegin between a
/// cell-A WaitBegin/WaitEnd pair on one worker) is the overlap proof the
/// pipeline test asserts on.
struct TraceEvent {
  enum class Kind { TaskBegin, TaskEnd, WaitBegin, WaitEnd, Note };
  Kind kind = Kind::TaskBegin;
  std::uint64_t seq = 0;     // global event order
  std::size_t worker = 0;    // executing worker (helpers keep their own id)
  std::size_t cell = 0;      // owning cell / task token
  std::string label;         // task label, or a Note payload
  std::uint64_t ticks = 0;   // wait span (WaitBegin only)
  std::uint64_t at = 0;      // pacer tick when recorded (0 when pacing is off)
};

class TaskQueue {
 public:
  /// `workers` is the pool size drain() runs (the caller's thread plus
  /// workers-1 spawned ones). Tracing is off unless requested — recording
  /// is mutex-serialized and for tests/diagnostics, not the hot path.
  TaskQueue(std::size_t workers, support::PacingPolicy pacing, bool record_trace = false);

  /// A fence that signals after `producers` completions. producers == 0
  /// makes it pre-signaled.
  FenceId make_fence(std::size_t producers);

  /// Enqueue a task. `after`: fence that must signal before the task can
  /// run. `signals`: fence decremented when it completes. `cell` and
  /// `label` identify the task in traces and telemetry. Jobs must not
  /// throw — wrap fallible work (campaign stages catch into the cell
  /// result).
  TaskId submit(std::function<void()> job, std::optional<FenceId> after,
                std::optional<FenceId> signals, std::size_t cell, std::string label);

  /// Run tasks until `until` signals. The calling thread is worker 0;
  /// workers-1 threads are spawned for the duration and joined before
  /// returning. May be called again after it returns (e.g. a second
  /// campaign wave on one queue).
  void drain(FenceId until);

  /// A running task's simulated wait of `ticks` (routed here from
  /// SimClock::sleep via the cell's WaitObserver). Telemetry-only when
  /// pacing is off. When pacing is on, parks the wall deadline on the
  /// timer wheel and runs other ready tasks (bounded nesting) until it
  /// matures — the worker never idles while runnable work exists.
  void wait_ticks(std::size_t cell, std::uint64_t ticks);

  /// Mark a cell cancelled (its deadline budget expired). Subsequent
  /// wait_ticks() calls from that cell stop parking on the timer wheel —
  /// the virtual advance already happened in SimClock, but a cancelled
  /// cell owes the wall clock nothing, so its remaining stages drain as
  /// fast as the workers can skip them. Idempotent.
  void cancel_cell_waits(std::size_t cell);

  /// Whether cancel_cell_waits() was called for `cell`.
  bool cell_cancelled(std::size_t cell) const;

  /// Drop a Note event into the trace (no-op unless tracing). Stages use
  /// this to mark dynamic sub-stage labels ("video", "rip/recover"...).
  void trace_note(std::size_t cell, std::string label);

  /// The worker index of the calling thread (0 when called outside a
  /// drain, e.g. from the submitting thread).
  static std::size_t current_worker();

  PipelineStats stats() const;
  std::vector<TraceEvent> trace() const;
  std::size_t task_count() const;

 private:
  struct Task {
    std::function<void()> job;
    std::optional<FenceId> signals;
    std::size_t cell = 0;
    std::string label;
    std::uint64_t debt = 0;  // owning cell's wait debt, stamped at ready-insert
  };
  struct Fence {
    std::size_t pending = 0;
    bool signaled = false;
    std::vector<TaskId> waiters;
  };
  /// Ready-set key: highest wait debt first, submission id breaks ties.
  /// The debt is snapshotted when the task becomes ready (set keys must
  /// not mutate in place); a cell that waits while its successor is
  /// already queued gets the boost on the stage after that.
  struct ReadyEntry {
    std::uint64_t debt = 0;
    TaskId id = 0;
    bool operator<(const ReadyEntry& other) const {
      if (debt != other.debt) return debt > other.debt;
      return id < other.id;
    }
  };

  void worker_loop(std::size_t me);
  /// Pop + execute one task (job runs unlocked). `helping` marks nested
  /// execution from inside a parked wait.
  void run_task(TaskId id, bool helping);
  /// Insert a task into the ready set, stamping its cell's current wait
  /// debt as the priority key.
  void push_ready_locked(TaskId id) WL_REQUIRES(mutex_);
  /// Decrement the fence; on signal, release waiters into the ready set
  /// (debt-then-id order — deterministic for equal debts however the
  /// producers raced) and flip done_ if this was drain()'s target fence.
  void signal_fence_locked(FenceId fence) WL_REQUIRES(mutex_);
  void record_locked(TraceEvent::Kind kind, std::size_t cell, std::string label,
                     std::uint64_t ticks) WL_REQUIRES(mutex_);

  const std::size_t workers_;
  const support::PacingPolicy pacing_;
  const bool record_trace_;
  const support::Pacer pacer_;      // immutable; safe unlocked
  const std::size_t cpu_tokens_;    // concurrent on-CPU task budget (<= workers_)

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Task> tasks_ WL_GUARDED_BY(mutex_);
  std::vector<Fence> fences_ WL_GUARDED_BY(mutex_);
  std::set<ReadyEntry> ready_ WL_GUARDED_BY(mutex_);  // ordered: most-waiting cell first
  std::vector<std::uint64_t> wait_debt_ WL_GUARDED_BY(mutex_);  // per-cell sim ticks waited
  std::vector<char> cancelled_ WL_GUARDED_BY(mutex_);  // per-cell cancellation flags
  support::TimerWheel wheel_ WL_GUARDED_BY(mutex_);
  PipelineStats stats_ WL_GUARDED_BY(mutex_);
  std::vector<TraceEvent> trace_ WL_GUARDED_BY(mutex_);
  std::uint64_t event_seq_ WL_GUARDED_BY(mutex_) = 0;
  std::size_t parked_ WL_GUARDED_BY(mutex_) = 0;
  std::optional<FenceId> target_ WL_GUARDED_BY(mutex_);
  bool done_ WL_GUARDED_BY(mutex_) = false;
  std::size_t cpu_active_ WL_GUARDED_BY(mutex_) = 0;  // tasks on CPU (not parked)
};

}  // namespace wideleak::core
