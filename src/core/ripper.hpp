// The end-to-end PoC (§IV-D "Practical Impact"): obtain DRM-free content
// from an OTT app on a discontinued device.
//
// Pipeline per app:
//   1. attach the DRM monitor + MITM/repinning monitor, drive one playback;
//   2. recover the keybox by scanning the CDM process memory (CVE-2021-0639);
//   3. re-run the key ladder over the intercepted provisioning and license
//      exchanges to unwrap the Device RSA Key and all content keys;
//   4. harvest the asset URIs, download every track with a plain client,
//      MPEG-CENC-decrypt them, and reconstruct the media;
//   5. verify the reconstruction plays on a "personal computer" — a stock
//      player with no app, no account, no DRM.
//
// Expected outcomes (the paper's): succeeds for every app that serves the
// legacy device via Widevine; fails for Amazon (embedded DRM) and for the
// revocation-enforcing apps (nothing to intercept); recovered quality tops
// out at 960x540 because L3 never received HD keys.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "android/device.hpp"
#include "core/key_ladder_attack.hpp"
#include "core/keybox_recovery.hpp"
#include "core/monitor.hpp"
#include "core/network_monitor.hpp"
#include "ott/ecosystem.hpp"
#include "ott/playback.hpp"

namespace wideleak::core {

struct RipResult {
  std::string app;
  bool success = false;
  std::string failure;  // why the rip failed, when it did

  bool keybox_recovered = false;
  bool device_rsa_recovered = false;
  std::size_t content_keys_recovered = 0;

  media::Resolution best_video_resolution;  // of the reconstructed file
  std::uint32_t frames = 0;
  std::size_t audio_tracks = 0;
  std::size_t subtitle_tracks = 0;
  bool plays_without_account = false;  // stock-player check on the output

  /// The reconstructed DRM-free media (elementary stream), for inspection.
  Bytes drm_free_media;
};

class RipSession;

/// The §IV-D end-to-end PoC driver. Input: an ecosystem with installed
/// apps and a rooted legacy device. Output: one RipResult per app,
/// including the reconstructed DRM-free bytes.
/// Thread safety: instance-scoped — borrows (and mutates, via playbacks)
/// the ecosystem and device, so it must run on the thread that owns them;
/// campaign cells each construct their own ripper over a private world.
class ContentRipper {
 public:
  /// The ripper owns the attacker vantage: a rooted legacy device and the
  /// analyst machine's network position.
  ContentRipper(ott::StreamingEcosystem& ecosystem, android::Device& legacy_device);

  /// Run the full pipeline against one app (steps a RipSession).
  RipResult rip_app(const ott::OttAppProfile& profile);

  /// Run against every catalog app; returns one result per app.
  std::vector<RipResult> rip_catalog();

 private:
  friend class RipSession;

  std::optional<Bytes> download(const std::string& host, const std::string& path);

  ott::StreamingEcosystem& ecosystem_;
  android::Device& device_;
  net::TlsClient analyst_client_;  // plain client: root CAs, no pins
};

/// One rip, resumable *segment-granularly*: each step() performs at most
/// one CDN re-download, so a scheduler that maps steps to tasks can drain
/// one track's fetch latency under another cell's CENC work. The
/// reconstruction phase is split per track class (video, then one audio
/// representation per step, then one subtitle per step) with per-phase
/// cursors. rip_app() steps a session to completion; a failed phase
/// records its reason and completes the session early — exactly the
/// monolith's early returns. Borrows the ripper; one session at a time.
class RipSession {
 public:
  RipSession(ContentRipper& ripper, const ott::OttAppProfile& profile);

  /// Planning bound on step() calls for this profile (one task per step in
  /// the pipelined campaign): instrument, recover keys, reconstruct video,
  /// one step per audio/subtitle language, verify. An *underestimate* is
  /// harmless to correctness — schedulers must follow their planned steps
  /// with a step-to-done guarantee loop.
  static int max_steps_for(const ott::OttAppProfile& profile);

  bool done() const { return phase_ == Phase::Done; }
  /// Advance one phase; no-op once done.
  void step();
  /// Label of the *next* phase (for scheduler traces), "done" when done.
  const char* phase_name() const;

  RipResult take_result() { return std::move(result_); }

 private:
  enum class Phase {
    Instrument,
    RecoverKeys,
    Reconstruct,            // harvest the manifest + best decryptable video
    ReconstructAudio,       // one audio representation per step
    ReconstructSubtitles,   // one subtitle representation per step
    Verify,
    Done,
  };

  void step_instrument();
  void step_recover_keys();
  void step_reconstruct();
  void step_reconstruct_audio();
  void step_reconstruct_subtitles();
  void step_verify();
  bool append_track(const media::MpdRepresentation& rep);

  ContentRipper& ripper_;
  ott::OttAppProfile profile_;
  RipResult result_;
  Phase phase_ = Phase::Instrument;

  // Cross-phase state (the monolith's locals).
  std::unique_ptr<DrmApiMonitor> drm_monitor_;
  std::unique_ptr<NetworkMonitor> net_monitor_;
  std::unique_ptr<ott::OttApp> app_;
  ott::PlaybackOutcome outcome_;
  RecoveredKeys keys_;
  HarvestedManifest manifest_;
  Bytes reconstruction_;

  // Segment cursors: the per-track-class reconstruction phases resume
  // mid-list so each step() performs at most one CDN download.
  std::size_t audio_index_ = 0;
  std::size_t subtitle_index_ = 0;
};

}  // namespace wideleak::core
