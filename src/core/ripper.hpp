// The end-to-end PoC (§IV-D "Practical Impact"): obtain DRM-free content
// from an OTT app on a discontinued device.
//
// Pipeline per app:
//   1. attach the DRM monitor + MITM/repinning monitor, drive one playback;
//   2. recover the keybox by scanning the CDM process memory (CVE-2021-0639);
//   3. re-run the key ladder over the intercepted provisioning and license
//      exchanges to unwrap the Device RSA Key and all content keys;
//   4. harvest the asset URIs, download every track with a plain client,
//      MPEG-CENC-decrypt them, and reconstruct the media;
//   5. verify the reconstruction plays on a "personal computer" — a stock
//      player with no app, no account, no DRM.
//
// Expected outcomes (the paper's): succeeds for every app that serves the
// legacy device via Widevine; fails for Amazon (embedded DRM) and for the
// revocation-enforcing apps (nothing to intercept); recovered quality tops
// out at 960x540 because L3 never received HD keys.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "android/device.hpp"
#include "core/key_ladder_attack.hpp"
#include "core/keybox_recovery.hpp"
#include "ott/ecosystem.hpp"

namespace wideleak::core {

struct RipResult {
  std::string app;
  bool success = false;
  std::string failure;  // why the rip failed, when it did

  bool keybox_recovered = false;
  bool device_rsa_recovered = false;
  std::size_t content_keys_recovered = 0;

  media::Resolution best_video_resolution;  // of the reconstructed file
  std::uint32_t frames = 0;
  std::size_t audio_tracks = 0;
  std::size_t subtitle_tracks = 0;
  bool plays_without_account = false;  // stock-player check on the output

  /// The reconstructed DRM-free media (elementary stream), for inspection.
  Bytes drm_free_media;
};

/// The §IV-D end-to-end PoC driver. Input: an ecosystem with installed
/// apps and a rooted legacy device. Output: one RipResult per app,
/// including the reconstructed DRM-free bytes.
/// Thread safety: instance-scoped — borrows (and mutates, via playbacks)
/// the ecosystem and device, so it must run on the thread that owns them;
/// campaign cells each construct their own ripper over a private world.
class ContentRipper {
 public:
  /// The ripper owns the attacker vantage: a rooted legacy device and the
  /// analyst machine's network position.
  ContentRipper(ott::StreamingEcosystem& ecosystem, android::Device& legacy_device);

  /// Run the full pipeline against one app.
  RipResult rip_app(const ott::OttAppProfile& profile);

  /// Run against every catalog app; returns one result per app.
  std::vector<RipResult> rip_catalog();

 private:
  std::optional<Bytes> download(const std::string& host, const std::string& path);

  ott::StreamingEcosystem& ecosystem_;
  android::Device& device_;
  net::TlsClient analyst_client_;  // plain client: root CAs, no pins
};

}  // namespace wideleak::core
