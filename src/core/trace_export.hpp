// Machine-readable export of monitoring results — the equivalent of the
// paper's Frida script dumping its interception log for offline analysis.
// Plain JSON, no external dependencies; buffers are hex-encoded and
// truncated at a configurable cap so traces stay tractable.
//
// Thread safety: everything here is a pure function of its arguments —
// callable from any campaign worker on its own cell's data.
#pragma once

#include <string>

#include <vector>

#include "core/asset_auditor.hpp"
#include "core/key_usage_auditor.hpp"
#include "core/legacy_prober.hpp"
#include "core/monitor.hpp"
#include "core/pipeline.hpp"
#include "hooking/trace.hpp"

namespace wideleak::core {

/// Escape a string for inclusion in a JSON document.
std::string json_escape(std::string_view raw);

/// One call record as a JSON object.
std::string trace_record_to_json(const hooking::CallRecord& record,
                                 std::size_t max_buffer_bytes = 64);

/// A whole trace as a JSON array (one object per intercepted call).
std::string trace_to_json(const hooking::CallTrace& trace, std::size_t max_buffer_bytes = 64);

/// The Q1 usage verdict as a JSON object.
std::string usage_report_to_json(const WidevineUsageReport& report);

/// The per-app audit bundle (Q1-Q4) as a JSON object.
struct AppAuditJson {
  std::string app;
  WidevineUsageReport usage;
  AssetProtectionReport assets;
  KeyUsageReport key_usage;
  LegacyProbeReport legacy;
};
std::string app_audit_to_json(const AppAuditJson& audit);

/// A scheduler run — the PipelineStats snapshot plus the full TraceEvent
/// stream — as one JSON object ({"stats": {...}, "events": [...]}). This is
/// the CI schedule-trace artifact format: wall-clock-derived fields
/// (occupancy busy_ms, steals) ride along for inspection but must never be
/// diffed against a baseline.
std::string schedule_trace_to_json(const std::vector<TraceEvent>& events,
                                   const PipelineStats& stats);

}  // namespace wideleak::core
