// WideLeak's network interception (§IV-B "Content Protection"): a Burp-style
// MITM proxy plus the Frida SSL-repinning bypass. Once attached to an app,
// every backend/CDN exchange is captured in plaintext, from which the
// monitor harvests the MPD and all asset URIs.
//
// For Netflix's generic-crypto manifest channel the MITM only yields
// ciphertext; the harvest falls back to the CDM trace, where
// _oecc42_GenericDecrypt dumps the decrypted manifest.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "media/mpd.hpp"
#include "net/proxy.hpp"
#include "ott/playback.hpp"

namespace wideleak::core {

/// What URI harvesting produced for one app.
struct HarvestedManifest {
  std::optional<media::Mpd> mpd;
  std::string cdn_host;
  std::string source;  // "mitm" or "cdm-generic-decrypt"
  /// Opaque subtitle tokens seen in backend headers (Hulu/Starz channel);
  /// opaque by construction — the study could not resolve these to URIs.
  std::vector<std::string> opaque_subtitle_tokens;
};

/// The Burp + repinning-bypass vantage (§IV-B "Content Protection").
/// Input: the ecosystem's network (MITM registration) and the apps it is
/// attached to. Output: captured plaintext flows, the pin-bypass count,
/// and the HarvestedManifest for Q2/Q3.
/// Thread safety: instance-scoped — borrows the network and must stay on
/// the thread that owns the enclosing ecosystem.
class NetworkMonitor {
 public:
  explicit NetworkMonitor(net::Network& network, Rng rng);

  /// Instrument one app: user-install the proxy CA on its device, route its
  /// TLS through the MITM and hook out the pin check (the repinning bypass
  /// that "shows how ineffective such a security mechanism is").
  void attach(ott::OttApp& app);

  const std::vector<net::CapturedFlow>& flows() const { return proxy_.flows(); }
  void clear() { proxy_.clear_flows(); }

  /// Did any pinned handshake get waved through by the bypass hook?
  std::size_t pin_bypasses() const { return pin_bypasses_; }

  /// Reconstruct the manifest from captured flows (and, when the backend
  /// used the secure channel, from the CDM monitor's generic-decrypt dump).
  HarvestedManifest harvest_manifest(const DrmApiMonitor* cdm_monitor) const;

 private:
  net::MitmProxy proxy_;
  std::size_t pin_bypasses_ = 0;
};

}  // namespace wideleak::core
