// Simulated process memory.
//
// The keybox-recovery attack (CVE-2021-0639) works by "dynamically
// monitoring memory regions that are used during obfuscated cryptographic
// operations" and scanning them for the keybox structure. To reproduce
// that, the CDM registers its working buffers as named regions in its
// process's memory map; an attacker with root can snapshot and scan them.
// TEE memory is a *separate* ProcessMemory instance that is never exposed
// through the REE process — the exact isolation property that makes L1
// resist this attack.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/bytes.hpp"

namespace wideleak::hooking {

/// Handle to one mapped region.
using RegionId = std::uint64_t;

/// One region in a memory snapshot.
struct MemoryRegion {
  RegionId id = 0;
  std::string name;  // e.g. "libwvdrmengine:keybox_workbuf"
  Bytes data;
};

/// Byte-offset hit of a pattern scan.
struct ScanHit {
  RegionId region = 0;
  std::string region_name;
  std::size_t offset = 0;
};

class ProcessMemory {
 public:
  /// Map a region; contents are copied in.
  RegionId map_region(std::string name, BytesView initial);

  /// Overwrite a mapped region (size may change, like realloc).
  void write_region(RegionId id, BytesView data);

  /// Zeroise and unmap — what a *careful* CDM does with key material.
  void unmap_region(RegionId id);

  /// Read back a region (debugger-style access). Throws on bad id.
  const Bytes& read_region(RegionId id) const;

  /// Copy of all current regions (ptrace-style memory dump).
  std::vector<MemoryRegion> snapshot() const;

  /// Find every occurrence of `pattern` across all regions.
  std::vector<ScanHit> scan(BytesView pattern) const;

  std::size_t region_count() const { return regions_.size(); }
  std::size_t total_bytes() const;

 private:
  RegionId next_id_ = 1;
  std::map<RegionId, MemoryRegion> regions_;
};

}  // namespace wideleak::hooking
