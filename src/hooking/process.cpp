#include "hooking/process.hpp"

// Header-only today; the translation unit anchors the library target.
