#include "hooking/trace.hpp"

namespace wideleak::hooking {

void CallTrace::append(CallRecord record) { records_.push_back(std::move(record)); }

std::vector<const CallRecord*> CallTrace::by_module(std::string_view module) const {
  std::vector<const CallRecord*> out;
  for (const CallRecord& r : records_) {
    if (r.module == module) out.push_back(&r);
  }
  return out;
}

std::vector<const CallRecord*> CallTrace::by_function(std::string_view function) const {
  std::vector<const CallRecord*> out;
  for (const CallRecord& r : records_) {
    if (r.function == function) out.push_back(&r);
  }
  return out;
}

const CallRecord* CallTrace::first(std::string_view function) const {
  for (const CallRecord& r : records_) {
    if (r.function == function) return &r;
  }
  return nullptr;
}

bool CallTrace::touched_module(std::string_view module) const {
  for (const CallRecord& r : records_) {
    if (r.module == module) return true;
  }
  return false;
}

std::vector<std::string> CallTrace::function_sequence() const {
  std::vector<std::string> out;
  out.reserve(records_.size());
  for (const CallRecord& r : records_) out.push_back(r.function);
  return out;
}

}  // namespace wideleak::hooking
