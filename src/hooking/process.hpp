// A simulated OS process: a name, a hookable call bus and a memory map.
//
// The Android side instantiates one of these per system process the paper
// cares about (mediadrmserver hosting the Widevine plugin, the OTT app
// process). An attacker with a rooted device can attach to any of them; the
// TEE is *not* a SimProcess reachable this way.
#pragma once

#include <string>

#include "hooking/hook_bus.hpp"
#include "hooking/memory.hpp"

namespace wideleak::hooking {

class SimProcess {
 public:
  explicit SimProcess(std::string name) : name_(std::move(name)), bus_(name_) {}

  const std::string& name() const { return name_; }
  HookBus& bus() { return bus_; }
  ProcessMemory& memory() { return memory_; }
  const ProcessMemory& memory() const { return memory_; }

 private:
  std::string name_;
  HookBus bus_;
  ProcessMemory memory_;
};

}  // namespace wideleak::hooking
