// Call-trace records: what an instrumentation session collects.
//
// One record per intercepted function call, with snapshots of the input and
// output buffers — mirroring how the paper "dumped input and output buffers
// related to various functions" of the Widevine CDM.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/bytes.hpp"

namespace wideleak::hooking {

/// One intercepted call.
struct CallRecord {
  std::uint64_t sequence = 0;   // global order within the trace
  std::string process;          // e.g. "mediadrmserver"
  std::string module;           // e.g. "libwvdrmengine.so", "liboemcrypto.so"
  std::string function;         // e.g. "_oecc21_GenerateDerivedKeys"
  Bytes input;                  // snapshot of the call's input buffer
  Bytes output;                 // snapshot of the call's output buffer
};

/// An append-only sequence of intercepted calls with query helpers.
class CallTrace {
 public:
  void append(CallRecord record);
  void clear() { records_.clear(); }

  const std::vector<CallRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  /// All calls into a given module.
  std::vector<const CallRecord*> by_module(std::string_view module) const;

  /// All calls to a given function (any module).
  std::vector<const CallRecord*> by_function(std::string_view function) const;

  /// First call to `function`, if any.
  const CallRecord* first(std::string_view function) const;

  /// Did the control flow ever reach `module`? (The paper's L1-vs-L3
  /// classifier: L1 iff liboemcrypto.so is reached.)
  bool touched_module(std::string_view module) const;

  /// Ordered list of function names, for sequence/Figure-1 checks.
  std::vector<std::string> function_sequence() const;

 private:
  std::vector<CallRecord> records_;
};

}  // namespace wideleak::hooking
