#include "hooking/hook_bus.hpp"

namespace wideleak::hooking {

std::uint64_t HookBus::attach(HookListener listener) {
  const std::uint64_t token = next_token_++;
  listeners_[token] = std::move(listener);
  return token;
}

void HookBus::detach(std::uint64_t token) { listeners_.erase(token); }

void HookBus::emit(std::string_view module, std::string_view function, BytesView input,
                   BytesView output) {
  if (listeners_.empty()) return;
  CallRecord record;
  record.sequence = next_sequence_++;
  record.process = process_;
  record.module = std::string(module);
  record.function = std::string(function);
  record.input.assign(input.begin(), input.end());
  record.output.assign(output.begin(), output.end());
  for (const auto& [token, listener] : listeners_) listener(record);
}

TraceSession::TraceSession(HookBus& bus)
    : bus_(bus), token_(bus.attach([this](const CallRecord& r) { trace_.append(r); })) {}

TraceSession::~TraceSession() { bus_.detach(token_); }

}  // namespace wideleak::hooking
