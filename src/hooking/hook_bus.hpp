// The interposition seam: every instrumentable function in the simulated
// Android/Widevine stack announces its calls on its process's HookBus.
//
// Attaching a listener is the equivalent of `frida -n mediadrmserver` plus
// an Interceptor.attach() script: the listener sees module, function and
// buffer snapshots for every call, without the traced code cooperating.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "hooking/trace.hpp"
#include "support/bytes.hpp"

namespace wideleak::hooking {

/// Callback invoked for each intercepted call.
using HookListener = std::function<void(const CallRecord&)>;

class HookBus {
 public:
  explicit HookBus(std::string process_name) : process_(std::move(process_name)) {}

  /// Attach an instrumentation listener; returns a detach token.
  std::uint64_t attach(HookListener listener);
  void detach(std::uint64_t token);
  bool has_listeners() const { return !listeners_.empty(); }

  /// Called by instrumented code at each hookable entry point.
  void emit(std::string_view module, std::string_view function, BytesView input,
            BytesView output);

  const std::string& process_name() const { return process_; }

 private:
  std::string process_;
  std::uint64_t next_token_ = 1;
  std::uint64_t next_sequence_ = 0;
  std::map<std::uint64_t, HookListener> listeners_;
};

/// RAII attachment that also accumulates a CallTrace — the common usage.
class TraceSession {
 public:
  explicit TraceSession(HookBus& bus);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  const CallTrace& trace() const { return trace_; }
  CallTrace& trace() { return trace_; }

 private:
  HookBus& bus_;
  std::uint64_t token_;
  CallTrace trace_;
};

}  // namespace wideleak::hooking
