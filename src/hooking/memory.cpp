#include "hooking/memory.hpp"

#include <algorithm>
#include <cstring>

#include "support/errors.hpp"

namespace wideleak::hooking {

RegionId ProcessMemory::map_region(std::string name, BytesView initial) {
  const RegionId id = next_id_++;
  regions_[id] = MemoryRegion{id, std::move(name), Bytes(initial.begin(), initial.end())};
  return id;
}

void ProcessMemory::write_region(RegionId id, BytesView data) {
  const auto it = regions_.find(id);
  if (it == regions_.end()) throw StateError("ProcessMemory: write to unmapped region");
  it->second.data.assign(data.begin(), data.end());
}

void ProcessMemory::unmap_region(RegionId id) {
  const auto it = regions_.find(id);
  if (it == regions_.end()) throw StateError("ProcessMemory: unmap of unmapped region");
  std::fill(it->second.data.begin(), it->second.data.end(), std::uint8_t{0});
  regions_.erase(it);
}

const Bytes& ProcessMemory::read_region(RegionId id) const {
  const auto it = regions_.find(id);
  if (it == regions_.end()) throw StateError("ProcessMemory: read of unmapped region");
  return it->second.data;
}

std::vector<MemoryRegion> ProcessMemory::snapshot() const {
  std::vector<MemoryRegion> out;
  out.reserve(regions_.size());
  for (const auto& [id, region] : regions_) out.push_back(region);
  return out;
}

std::vector<ScanHit> ProcessMemory::scan(BytesView pattern) const {
  std::vector<ScanHit> hits;
  if (pattern.empty()) return hits;
  // memchr-hop: let libc's vectorized memchr race to each candidate first
  // byte, then confirm the remainder with one memcmp. Overlapping matches
  // are kept (the cursor advances one byte past each hit, like the old
  // std::search loop did).
  const std::uint8_t first = pattern[0];
  const std::size_t rest_len = pattern.size() - 1;
  for (const auto& [id, region] : regions_) {
    const Bytes& data = region.data;
    if (data.size() < pattern.size()) continue;
    const std::uint8_t* base = data.data();
    const std::uint8_t* cursor = base;
    const std::uint8_t* last_start = base + (data.size() - pattern.size());
    while (cursor <= last_start) {
      const auto* hit = static_cast<const std::uint8_t*>(
          std::memchr(cursor, first, static_cast<std::size_t>(last_start - cursor) + 1));
      if (hit == nullptr) break;
      if (rest_len == 0 || std::memcmp(hit + 1, pattern.data() + 1, rest_len) == 0) {
        hits.push_back(ScanHit{id, region.name, static_cast<std::size_t>(hit - base)});
      }
      cursor = hit + 1;
    }
  }
  return hits;
}

std::size_t ProcessMemory::total_bytes() const {
  std::size_t total = 0;
  for (const auto& [id, region] : regions_) total += region.data.size();
  return total;
}

}  // namespace wideleak::hooking
