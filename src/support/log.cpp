#include "support/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

#include "support/annotations.hpp"

namespace wideleak {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

/// The serialized emission end of the logger: every write to the stream
/// happens under mutex_, so concurrent lines never interleave mid-line.
class Sink {
 public:
  void write(const char* tag, const std::string& message) {
    const std::lock_guard<std::mutex> lock(mutex_);
    *out_ << "[" << tag << "] " << message << "\n";
  }

 private:
  std::mutex mutex_;
  std::ostream* out_ WL_GUARDED_BY(mutex_) = &std::cerr;
};

Sink& sink() {
  static Sink instance;
  return instance;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  sink().write(level_tag(level), message);
}

}  // namespace wideleak
