#include "support/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace wideleak {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_sink_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::cerr << "[" << level_tag(level) << "] " << message << "\n";
}

}  // namespace wideleak
