// Bump allocator for per-session scratch buffers.
//
// The media data plane needs short-lived byte buffers (gathered subsample
// runs, staging for a decrypted sample) on every sample it touches.
// Allocating a fresh `Bytes` each time puts the allocator on the hot path;
// a ScratchArena hands out spans from reusable chunks instead and recycles
// them wholesale at `reset()`.
//
// Lifetime rules:
//   - Spans stay valid until the next `reset()` — chunks are never resized
//     or moved once created, so earlier allocations survive later ones.
//   - `reset()` invalidates every outstanding span and keeps the largest
//     chunk for reuse, so a steady-state session stops allocating entirely.
//   - Not thread-safe: one arena per session/worker, by design.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/bytes.hpp"

namespace wideleak::support {

class ScratchArena {
 public:
  explicit ScratchArena(std::size_t initial_capacity = 4096);

  /// Uninitialized scratch space of `n` bytes, valid until `reset()`.
  std::span<std::uint8_t> alloc(std::size_t n);

  /// `data` copied into the arena.
  std::span<std::uint8_t> copy(BytesView data);

  /// Recycle all allocations. Keeps the single largest chunk so the arena
  /// converges to zero heap traffic under a steady workload.
  void reset();

  std::size_t bytes_in_use() const;
  std::size_t capacity() const;

 private:
  struct Chunk {
    Bytes storage;          // fixed-size backing; never resized after creation
    std::size_t used = 0;
  };

  std::vector<Chunk> chunks_;
  std::size_t next_chunk_size_;
};

}  // namespace wideleak::support
