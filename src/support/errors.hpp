// Project error hierarchy. Failures that a caller is expected to handle in
// the normal flow of the simulation (a denied license, a failed pin check)
// are represented by status enums on the relevant APIs; these exception
// types cover contract violations and protocol-level corruption.
#pragma once

#include <stdexcept>
#include <string>

namespace wideleak {

/// Base class for all wideleak-specific errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed serialized data (truncated message, bad magic, bad CRC...).
class ParseError : public Error {
 public:
  using Error::Error;
};

/// A cryptographic check failed (bad MAC, bad padding, bad signature).
class CryptoError : public Error {
 public:
  using Error::Error;
};

/// An API was driven through an illegal state transition
/// (e.g. MediaCrypto used before a session is opened).
class StateError : public Error {
 public:
  using Error::Error;
};

/// A simulated network-level failure (unknown host, connection refused,
/// TLS handshake aborted by pinning).
class NetworkError : public Error {
 public:
  using Error::Error;
};

}  // namespace wideleak
