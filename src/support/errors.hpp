// Project error hierarchy. Failures that a caller is expected to handle in
// the normal flow of the simulation (a denied license, a failed pin check)
// are represented by status enums on the relevant APIs; these exception
// types cover contract violations and protocol-level corruption.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace wideleak {

/// Base class for all wideleak-specific errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed serialized data (truncated message, bad magic, bad CRC...).
class ParseError : public Error {
 public:
  using Error::Error;
};

/// A cryptographic check failed (bad MAC, bad padding, bad signature).
class CryptoError : public Error {
 public:
  using Error::Error;
};

/// An API was driven through an illegal state transition
/// (e.g. MediaCrypto used before a session is opened).
class StateError : public Error {
 public:
  using Error::Error;
};

/// A simulated network-level failure (unknown host, connection refused,
/// TLS handshake aborted by pinning).
class NetworkError : public Error {
 public:
  using Error::Error;
};

/// Non-exceptional failure classification for the request/retry path.
/// Faults injected by net::FaultyEndpoint surface as codes on
/// net::TlsExchangeResult, never as new throw sites, so callers can decide
/// between retrying and giving up without unwinding the audit pipeline.
enum class ErrorCode {
  None = 0,
  HostUnreachable,    // no such host registered on the Network
  ConnectionDropped,  // endpoint dropped the connection mid-exchange
  TransportCorrupt,   // sealed record truncated or failed to authenticate
  HandshakeFailed,    // certificate rejected (trust, hostname, or pin)
  HttpServerError,    // 5xx from the origin
  HttpClientError,    // 4xx from the origin
  MalformedPayload,   // transport fine, application payload unparseable
  Denied,             // well-formed, authoritative refusal (no retry)
  SessionInvalid,     // service dropped the session (shard crash/restart);
                      // retryable — the content-derived id reopens transparently
  RateLimited,        // service shed the request (rate limit, overload,
                      // brownout); retryable after backoff
  CircuitOpen,        // client-side fast-fail: breaker open for this host;
                      // terminal for this request, saves the retry budget
  Internal,           // bug-shaped failure; terminal
};

const char* to_string(ErrorCode code);

/// Whether a failed exchange is worth retrying. Transient transport
/// trouble and server-side errors are; authoritative refusals, client
/// errors, and handshake failures (the certificate will not change on the
/// next attempt) are not. MalformedPayload is retryable because the fault
/// model corrupts payloads per-exchange, not per-host. SessionInvalid and
/// RateLimited are service refusals that clear on their own — the session
/// reopens under its content-derived id, the shed/brownout window passes —
/// so the retry loop treats them as retryable-after-reopen. CircuitOpen is
/// the one deliberate exception among transient failures: the breaker
/// exists precisely to stop the retry loop, so it is terminal.
inline bool is_retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::ConnectionDropped:
    case ErrorCode::TransportCorrupt:
    case ErrorCode::HttpServerError:
    case ErrorCode::MalformedPayload:
    case ErrorCode::SessionInvalid:
    case ErrorCode::RateLimited:
      return true;
    default:
      return false;
  }
}

/// Whether a retry that follows this failure is a *reopen cycle*: the
/// service invalidated or refused state the client thought it held, and the
/// next attempt transparently re-provisions/reopens rather than merely
/// re-sending bytes. Counted separately in RetryStats::reopens.
inline bool is_reopen_cycle(ErrorCode code) {
  return code == ErrorCode::SessionInvalid || code == ErrorCode::RateLimited;
}

/// A value-or-error-code result for the non-exceptional failure path.
/// Deliberately minimal: exactly one of value/error is set, and the error
/// side carries a human-readable detail string for fault summaries.
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(ErrorCode code, std::string detail)
      : state_(Failure{code, std::move(detail)}) {}

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  T& value() { return std::get<T>(state_); }
  const T& value() const { return std::get<T>(state_); }

  ErrorCode error() const {
    return ok() ? ErrorCode::None : std::get<Failure>(state_).code;
  }
  const std::string& error_detail() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : std::get<Failure>(state_).detail;
  }

 private:
  struct Failure {
    ErrorCode code;
    std::string detail;
  };
  std::variant<T, Failure> state_;
};

}  // namespace wideleak
