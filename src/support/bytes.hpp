// Byte-buffer utilities shared by every module.
//
// `Bytes` is the project-wide owning byte buffer; functions here cover the
// conversions (hex, base64, ascii) and comparisons the DRM stack needs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace wideleak {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Build a buffer from a string's raw characters.
Bytes to_bytes(std::string_view s);

/// Interpret a buffer as text (lossy for non-ascii content).
std::string to_string(BytesView b);

/// Lower-case hex encoding, e.g. {0xde, 0xad} -> "dead".
std::string hex_encode(BytesView b);

/// Inverse of hex_encode. Throws std::invalid_argument on odd length or
/// non-hex characters.
Bytes hex_decode(std::string_view hex);

/// Standard base64 (RFC 4648, with padding).
std::string base64_encode(BytesView b);

/// Inverse of base64_encode. Throws std::invalid_argument on malformed input.
Bytes base64_decode(std::string_view text);

/// XOR two equal-length buffers. Throws std::invalid_argument on mismatch.
Bytes xor_bytes(BytesView a, BytesView b);

/// Constant-time equality; mismatched lengths compare unequal (length is not
/// secret in any of our protocols).
bool constant_time_equal(BytesView a, BytesView b);

/// Concatenate any number of buffers.
Bytes concat(std::initializer_list<BytesView> parts);

/// True when every byte is printable ascii or common whitespace — the check
/// the paper applies to downloaded English subtitles.
bool is_printable_ascii(BytesView b);

}  // namespace wideleak
