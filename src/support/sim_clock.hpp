// Simulated monotonic clock for deterministic latency modelling. The fault
// injector advances it when a fault plan injects latency, and retry
// backoff advances it while "sleeping" — so timing-dependent behaviour is
// a pure function of the seed, never of the host scheduler.
#pragma once

#include <cstdint>

namespace wideleak::support {

/// Tick-based virtual clock. One tick is an abstract unit (think
/// milliseconds of simulated time); nothing in the simulation maps ticks
/// to wall time. Thread safety: none — each ecosystem owns its own clock
/// and is driven by one worker at a time (the campaign's fence chains
/// serialize every touch of one cell's clock).
class SimClock {
 public:
  /// A simulated *wait* routed through sleep() notifies the observer —
  /// this is how the campaign's pipelined scheduler learns that the cell
  /// owning this clock is parked on a latency/backoff deadline and can
  /// hand the worker other runnable work. Observers must not touch the
  /// clock re-entrantly.
  class WaitObserver {
   public:
    virtual ~WaitObserver() = default;
    /// `start_tick` is the clock value when the wait began; the deadline
    /// is `start_tick + ticks` on this clock's (cell-private) timeline.
    virtual void on_wait(std::uint64_t start_tick, std::uint64_t ticks) = 0;
  };

  std::uint64_t now() const { return now_ticks_; }

  /// Move virtual time forward without waiting (bookkeeping advances).
  void advance(std::uint64_t ticks) { now_ticks_ += ticks; }

  /// Spend `ticks` of simulated time *waiting* (injected latency, retry
  /// backoff). Virtual semantics are identical to advance() — the rng
  /// draw sequences and every report stay bit-identical — but the wait is
  /// surfaced to the observer so a scheduler can discharge the
  /// corresponding wall-time obligation off the critical path instead of
  /// stalling a worker inline. This is the one approved doorway for
  /// simulated waits (wideleak-lint rule WL010 bans inline sleeps and
  /// busy-waits in src/core, src/net and src/ott).
  void sleep(std::uint64_t ticks) {
    const std::uint64_t start = now_ticks_;
    now_ticks_ += ticks;
    ++waits_;
    wait_ticks_ += ticks;
    if (observer_ != nullptr && ticks != 0) observer_->on_wait(start, ticks);
  }

  /// Install (or clear, with nullptr) the wait observer. The default —
  /// no observer — reproduces the historical behaviour: sleeps are free
  /// in wall time and only move the virtual clock.
  void set_wait_observer(WaitObserver* observer) { observer_ = observer; }

  /// Telemetry: how often and how long this clock "slept". Deterministic
  /// for a fixed seed (a pure function of the cell's fault/backoff draws).
  std::uint64_t waits() const { return waits_; }
  std::uint64_t wait_ticks() const { return wait_ticks_; }

 private:
  std::uint64_t now_ticks_ = 0;
  std::uint64_t waits_ = 0;
  std::uint64_t wait_ticks_ = 0;
  WaitObserver* observer_ = nullptr;
};

}  // namespace wideleak::support
