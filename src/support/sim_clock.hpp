// Simulated monotonic clock for deterministic latency modelling. The fault
// injector advances it when a fault plan injects latency, and retry
// backoff advances it while "sleeping" — so timing-dependent behaviour is
// a pure function of the seed, never of the host scheduler.
#pragma once

#include <cstdint>

namespace wideleak::support {

/// Tick-based virtual clock. One tick is an abstract unit (think
/// milliseconds of simulated time); nothing in the simulation maps ticks
/// to wall time. Thread safety: none — each ecosystem owns its own clock
/// and is driven by a single worker thread.
class SimClock {
 public:
  std::uint64_t now() const { return now_ticks_; }
  void advance(std::uint64_t ticks) { now_ticks_ += ticks; }

 private:
  std::uint64_t now_ticks_ = 0;
};

}  // namespace wideleak::support
