#include "support/crc32.hpp"

#include <array>
#include <cstring>

namespace wideleak {

namespace {

// Slice-by-8: eight compile-time tables let the loop fold 8 input bytes per
// iteration instead of 1. table[0] is the classic byte-at-a-time table;
// table[t][i] extends each entry by one more zero byte. constexpr kills the
// first-use init cost and any lazy-init thread-safety question.
struct Crc32Tables {
  std::uint32_t t[8][256]{};
};

constexpr Crc32Tables make_tables() {
  Crc32Tables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    tables.t[0][i] = c;
  }
  for (int t = 1; t < 8; ++t) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables.t[t - 1][i];
      tables.t[t][i] = tables.t[0][prev & 0xff] ^ (prev >> 8);
    }
  }
  return tables;
}

constexpr Crc32Tables kCrc = make_tables();

}  // namespace

std::uint32_t crc32(BytesView data) {
  std::uint32_t c = 0xffffffffu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    // Byte-assembled word loads keep this endianness-agnostic.
    const std::uint32_t lo = c ^ (static_cast<std::uint32_t>(p[0]) |
                                  static_cast<std::uint32_t>(p[1]) << 8 |
                                  static_cast<std::uint32_t>(p[2]) << 16 |
                                  static_cast<std::uint32_t>(p[3]) << 24);
    c = kCrc.t[7][lo & 0xff] ^ kCrc.t[6][(lo >> 8) & 0xff] ^ kCrc.t[5][(lo >> 16) & 0xff] ^
        kCrc.t[4][lo >> 24] ^ kCrc.t[3][p[4]] ^ kCrc.t[2][p[5]] ^ kCrc.t[1][p[6]] ^
        kCrc.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) c = kCrc.t[0][(c ^ *p++) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

}  // namespace wideleak
