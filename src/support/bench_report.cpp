#include "support/bench_report.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/errors.hpp"

namespace wideleak::support {

namespace {

std::string hex32(std::uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

void BenchReport::add(const std::string& op, std::uint64_t bytes, std::uint64_t ns,
                      std::uint32_t checksum) {
  BenchEntry e;
  e.op = op;
  e.bytes = bytes;
  e.ns = ns;
  // bytes/ns is GB/s; scale to MB/s. Guard ns==0 (timer granularity on a
  // trivially small op) rather than emit inf.
  e.mb_per_s = ns == 0 ? 0.0 : static_cast<double>(bytes) * 1000.0 / static_cast<double>(ns);
  e.checksum = hex32(checksum);
  entries_.push_back(std::move(e));
}

std::string BenchReport::to_json() const {
  std::ostringstream out;
  out << "{\n  \"name\": \"" << json_escape(name_) << "\",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const BenchEntry& e = entries_[i];
    char mbps[32];
    std::snprintf(mbps, sizeof(mbps), "%.3f", e.mb_per_s);
    out << "    {\"op\": \"" << json_escape(e.op) << "\", \"bytes\": " << e.bytes
        << ", \"ns\": " << e.ns << ", \"mb_per_s\": " << mbps << ", \"checksum\": \""
        << e.checksum << "\"}";
    out << (i + 1 < entries_.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

void BenchReport::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw StateError("BenchReport: cannot open " + path);
  out << to_json();
  if (!out) throw StateError("BenchReport: write failed for " + path);
}

}  // namespace wideleak::support
