#include "support/secret.hpp"

#include <atomic>

namespace wideleak {

namespace {
std::atomic<std::size_t> g_wipe_count{0};
}  // namespace

void secure_wipe(void* data, std::size_t size) {
  // Volatile qualification forces the stores to happen even when the
  // surrounding object is destroyed right after (dead-store elimination
  // would otherwise legally drop a plain memset here).
  volatile std::uint8_t* p = static_cast<std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) p[i] = 0;
  g_wipe_count.fetch_add(1, std::memory_order_relaxed);
}

void secure_wipe(Bytes& buffer) {
  if (!buffer.empty()) secure_wipe(buffer.data(), buffer.size());
  buffer.clear();
  buffer.shrink_to_fit();
}

namespace detail {
std::size_t secure_wipe_count() { return g_wipe_count.load(std::memory_order_relaxed); }
}  // namespace detail

}  // namespace wideleak
