#include "support/bytes.hpp"

#include <array>
#include <cctype>
#include <stdexcept>

namespace wideleak {

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_string(BytesView b) { return std::string(b.begin(), b.end()); }

std::string hex_encode(BytesView b) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(digits[byte >> 4]);
    out.push_back(digits[byte & 0x0f]);
  }
  return out;
}

namespace {

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("hex_decode: invalid character");
}

constexpr char kBase64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int base64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  throw std::invalid_argument("base64_decode: invalid character");
}

}  // namespace

Bytes hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("hex_decode: odd length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(hex_value(hex[i]) << 4 | hex_value(hex[i + 1])));
  }
  return out;
}

std::string base64_encode(BytesView b) {
  std::string out;
  out.reserve((b.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= b.size(); i += 3) {
    std::uint32_t n = (b[i] << 16) | (b[i + 1] << 8) | b[i + 2];
    out.push_back(kBase64Alphabet[(n >> 18) & 63]);
    out.push_back(kBase64Alphabet[(n >> 12) & 63]);
    out.push_back(kBase64Alphabet[(n >> 6) & 63]);
    out.push_back(kBase64Alphabet[n & 63]);
  }
  const std::size_t rest = b.size() - i;
  if (rest == 1) {
    std::uint32_t n = b[i] << 16;
    out.push_back(kBase64Alphabet[(n >> 18) & 63]);
    out.push_back(kBase64Alphabet[(n >> 12) & 63]);
    out.append("==");
  } else if (rest == 2) {
    std::uint32_t n = (b[i] << 16) | (b[i + 1] << 8);
    out.push_back(kBase64Alphabet[(n >> 18) & 63]);
    out.push_back(kBase64Alphabet[(n >> 12) & 63]);
    out.push_back(kBase64Alphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Bytes base64_decode(std::string_view text) {
  if (text.size() % 4 != 0) throw std::invalid_argument("base64_decode: bad length");
  Bytes out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    const bool pad1 = text[i + 2] == '=';
    const bool pad2 = text[i + 3] == '=';
    if (pad1 && !pad2) throw std::invalid_argument("base64_decode: bad padding");
    std::uint32_t n = static_cast<std::uint32_t>(base64_value(text[i])) << 18 |
                      static_cast<std::uint32_t>(base64_value(text[i + 1])) << 12;
    if (!pad1) n |= static_cast<std::uint32_t>(base64_value(text[i + 2])) << 6;
    if (!pad2) n |= static_cast<std::uint32_t>(base64_value(text[i + 3]));
    out.push_back(static_cast<std::uint8_t>(n >> 16));
    if (!pad1) out.push_back(static_cast<std::uint8_t>(n >> 8));
    if (!pad2) out.push_back(static_cast<std::uint8_t>(n));
  }
  return out;
}

Bytes xor_bytes(BytesView a, BytesView b) {
  if (a.size() != b.size()) throw std::invalid_argument("xor_bytes: length mismatch");
  Bytes out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

bool constant_time_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

Bytes concat(std::initializer_list<BytesView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

bool is_printable_ascii(BytesView b) {
  for (std::uint8_t c : b) {
    if (c == '\n' || c == '\r' || c == '\t') continue;
    if (c < 0x20 || c > 0x7e) return false;
  }
  return true;
}

}  // namespace wideleak
