#include "support/errors.hpp"

namespace wideleak {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::None:
      return "none";
    case ErrorCode::HostUnreachable:
      return "host-unreachable";
    case ErrorCode::ConnectionDropped:
      return "connection-dropped";
    case ErrorCode::TransportCorrupt:
      return "transport-corrupt";
    case ErrorCode::HandshakeFailed:
      return "handshake-failed";
    case ErrorCode::HttpServerError:
      return "http-server-error";
    case ErrorCode::HttpClientError:
      return "http-client-error";
    case ErrorCode::MalformedPayload:
      return "malformed-payload";
    case ErrorCode::Denied:
      return "denied";
    case ErrorCode::SessionInvalid:
      return "session-invalid";
    case ErrorCode::RateLimited:
      return "rate-limited";
    case ErrorCode::CircuitOpen:
      return "circuit-open";
    case ErrorCode::Internal:
      return "internal";
  }
  return "unknown";
}

}  // namespace wideleak
