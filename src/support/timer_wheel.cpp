#include "support/timer_wheel.hpp"

#include <algorithm>
#include <thread>

namespace wideleak::support {

void Pacer::stall_until(const WallDeadline& deadline) const {
  // The synchronous baseline's inline wait. sleep_until is fine here:
  // src/support is outside the WL010 scope precisely so this file can be
  // the single approved sleeping doorway.
  std::this_thread::sleep_until(deadline.at);
}

TimerWheel::TimerWheel() = default;

std::uint64_t TimerWheel::schedule(std::uint64_t deadline_tick, std::uint64_t token) {
  const std::uint64_t seq = next_seq_++;
  live_.insert(seq);
  ++pending_;
  place(Entry{deadline_tick, seq, token});
  return seq;
}

void TimerWheel::place(Entry entry) {
  if (entry.deadline <= now_) {
    due_.push_back(entry);
    return;
  }
  const std::uint64_t delta = entry.deadline - now_;
  for (std::uint32_t level = 0; level < kLevels; ++level) {
    const std::uint64_t span = 1ull << (kLevelBits * (level + 1));
    if (delta < span) {
      const std::uint32_t slot =
          static_cast<std::uint32_t>(entry.deadline >> (kLevelBits * level)) & (kSlots - 1);
      slots_[level][slot].push_back(entry);
      return;
    }
  }
  overflow_.push_back(entry);
}

void TimerWheel::cascade(std::uint32_t level, std::uint32_t slot) {
  std::vector<Entry> pulled;
  pulled.swap(slots_[level][slot]);
  for (Entry& entry : pulled) {
    if (!live_.contains(entry.seq)) continue;  // cancelled while parked
    place(entry);
  }
}

std::vector<TimerWheel::Expired> TimerWheel::advance_to(std::uint64_t now_tick) {
  std::vector<Expired> out;
  while (now_ < now_tick) {
    ++now_;
    if ((now_ & (kSlots - 1)) == 0) {
      // Entering a new level-0 epoch: pull the matching slots down, top
      // level first so every entry settles into its finest resolution.
      const std::uint32_t e1 = static_cast<std::uint32_t>(now_ >> kLevelBits) & (kSlots - 1);
      const std::uint32_t e2 =
          static_cast<std::uint32_t>(now_ >> (2 * kLevelBits)) & (kSlots - 1);
      const std::uint32_t e3 =
          static_cast<std::uint32_t>(now_ >> (3 * kLevelBits)) & (kSlots - 1);
      if (e1 == 0 && e2 == 0 && e3 == 0) {
        std::vector<Entry> far;
        far.swap(overflow_);
        for (Entry& entry : far) {
          if (!live_.contains(entry.seq)) continue;
          place(entry);
        }
      }
      if (e1 == 0 && e2 == 0) cascade(3, e3);
      if (e1 == 0) cascade(2, e2);
      cascade(1, e1);
    }
    const std::uint32_t s0 = static_cast<std::uint32_t>(now_) & (kSlots - 1);
    if (slots_[0][s0].empty()) continue;
    std::vector<Entry> fired;
    fired.swap(slots_[0][s0]);
    for (const Entry& entry : fired) {
      if (entry.deadline > now_) {
        // A future wrap of this slot: not due yet, put it back — unless it
        // was cancelled, in which case re-queueing it would retain a
        // tombstone that a later cascade into the same tick could re-walk.
        // Dropping it here keeps the cancellation charge single: cancel()
        // already decremented pending_, so the entry must never be counted
        // again by any path.
        if (live_.contains(entry.seq)) slots_[0][s0].push_back(entry);
        continue;
      }
      if (live_.erase(entry.seq) == 0) continue;  // cancelled
      --pending_;
      ++expired_total_;
      out.push_back(Expired{entry.deadline, entry.seq, entry.token});
    }
  }
  // Placements that were already due when scheduled expire on the next
  // advance, ahead of later deadlines (the sort below orders them first).
  if (!due_.empty()) {
    std::vector<Entry> ready;
    ready.swap(due_);
    for (const Entry& entry : ready) {
      if (live_.erase(entry.seq) == 0) continue;
      --pending_;
      ++expired_total_;
      out.push_back(Expired{entry.deadline, entry.seq, entry.token});
    }
  }
  std::sort(out.begin(), out.end(), [](const Expired& a, const Expired& b) {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    return a.seq < b.seq;
  });
  return out;
}

bool TimerWheel::cancel(std::uint64_t seq) {
  if (live_.erase(seq) == 0) return false;
  --pending_;
  return true;
}

std::optional<std::uint64_t> TimerWheel::next_deadline() const {
  std::optional<std::uint64_t> best;
  const auto consider = [&](const Entry& entry) {
    if (!live_.contains(entry.seq)) return;
    if (!best || entry.deadline < *best) best = entry.deadline;
  };
  for (const Entry& entry : due_) consider(entry);
  for (const auto& level : slots_) {
    for (const auto& slot : level) {
      for (const Entry& entry : slot) consider(entry);
    }
  }
  for (const Entry& entry : overflow_) consider(entry);
  return best;
}

}  // namespace wideleak::support
