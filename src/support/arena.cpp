#include "support/arena.hpp"

#include <algorithm>
#include <cstring>

namespace wideleak::support {

ScratchArena::ScratchArena(std::size_t initial_capacity)
    : next_chunk_size_(std::max<std::size_t>(initial_capacity, 64)) {}

std::span<std::uint8_t> ScratchArena::alloc(std::size_t n) {
  if (chunks_.empty() || chunks_.back().storage.size() - chunks_.back().used < n) {
    const std::size_t size = std::max(next_chunk_size_, n);
    next_chunk_size_ = size * 2;  // geometric growth keeps chunk count O(log)
    chunks_.push_back(Chunk{Bytes(size), 0});
  }
  Chunk& chunk = chunks_.back();
  std::span<std::uint8_t> out(chunk.storage.data() + chunk.used, n);
  chunk.used += n;
  return out;
}

std::span<std::uint8_t> ScratchArena::copy(BytesView data) {
  std::span<std::uint8_t> out = alloc(data.size());
  if (!data.empty()) std::memcpy(out.data(), data.data(), data.size());
  return out;
}

void ScratchArena::reset() {
  if (chunks_.size() > 1) {
    auto largest = std::max_element(
        chunks_.begin(), chunks_.end(),
        [](const Chunk& a, const Chunk& b) { return a.storage.size() < b.storage.size(); });
    Chunk keep = std::move(*largest);
    chunks_.clear();
    chunks_.push_back(std::move(keep));
  }
  for (Chunk& chunk : chunks_) chunk.used = 0;
}

std::size_t ScratchArena::bytes_in_use() const {
  std::size_t total = 0;
  for (const Chunk& chunk : chunks_) total += chunk.used;
  return total;
}

std::size_t ScratchArena::capacity() const {
  std::size_t total = 0;
  for (const Chunk& chunk : chunks_) total += chunk.storage.size();
  return total;
}

}  // namespace wideleak::support
