#include "support/rng.hpp"

#include <stdexcept>

namespace wideleak {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& word : s_) word = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: zero bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

Bytes Rng::next_bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t v = next_u64();
    for (int k = 0; k < 8 && i < n; ++k, ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * k));
    }
  }
  return out;
}

Rng Rng::fork() { return Rng(next_u64()); }

std::uint64_t derive_stream_seed(std::uint64_t base, std::string_view label) {
  // FNV-1a over the label, offset by the base seed...
  std::uint64_t h = 14695981039346656037ull ^ base;
  for (const char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  // ...then one splitmix64 round so near-identical labels land far apart.
  return splitmix64(h);
}

}  // namespace wideleak
