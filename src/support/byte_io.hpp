// Big-endian byte serialization helpers used by every wire format in the
// project (keybox, license protocol, ISO-BMFF boxes, TLS records).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/bytes.hpp"

namespace wideleak {

/// Append-only big-endian writer.
class ByteWriter {
 public:
  /// Pre-size the backing buffer when the total is known up front.
  void reserve(std::size_t total);

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void raw(BytesView b);
  void raw(std::string_view s);
  /// Length-prefixed (u32) buffer — the project's standard variable field.
  void var_bytes(BytesView b);
  void var_string(std::string_view s);

  const Bytes& data() const { return data_; }
  Bytes take() { return std::move(data_); }

 private:
  Bytes data_;
};

/// Bounds-checked big-endian reader. Throws ParseError past the end.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes raw(std::size_t n);
  Bytes var_bytes();
  std::string var_string();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace wideleak
