#include "support/byte_io.hpp"

#include "support/errors.hpp"

namespace wideleak {

void ByteWriter::reserve(std::size_t total) { data_.reserve(total); }

void ByteWriter::u8(std::uint8_t v) { data_.push_back(v); }

// Scalars append as one insert of a stack-assembled array rather than N
// push_backs — one capacity check instead of one per byte.
void ByteWriter::u16(std::uint16_t v) {
  const std::uint8_t be[2] = {static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
  data_.insert(data_.end(), be, be + sizeof(be));
}

void ByteWriter::u32(std::uint32_t v) {
  const std::uint8_t be[4] = {
      static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
      static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
  data_.insert(data_.end(), be, be + sizeof(be));
}

void ByteWriter::u64(std::uint64_t v) {
  std::uint8_t be[8];
  for (int i = 0; i < 8; ++i) be[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
  data_.insert(data_.end(), be, be + sizeof(be));
}

void ByteWriter::raw(BytesView b) { data_.insert(data_.end(), b.begin(), b.end()); }

void ByteWriter::raw(std::string_view s) { data_.insert(data_.end(), s.begin(), s.end()); }

void ByteWriter::var_bytes(BytesView b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b);
}

void ByteWriter::var_string(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(s);
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) throw ParseError("ByteReader: truncated input");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = v << 8 | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | data_[pos_ + i];
  pos_ += 8;
  return v;
}

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes ByteReader::var_bytes() {
  const std::uint32_t n = u32();
  return raw(n);
}

std::string ByteReader::var_string() {
  const Bytes b = var_bytes();
  return std::string(b.begin(), b.end());
}

}  // namespace wideleak
