// Deterministic hierarchical timer wheel + the wall-time pacer.
//
// The campaign's pipelined scheduler turns every simulated network wait
// (SimClock::sleep from fault latency or retry backoff) into a *deadline*
// parked here instead of a stalled worker. Two pieces:
//
//   TimerWheel — the classic hashed hierarchical wheel (the kernel /
//   mesa-u_queue lineage): four levels of 64 slots, entries cascade down
//   as time advances, O(1) schedule, amortized O(1) expiry. It is a pure
//   data structure over an abstract tick axis with a hard ordering
//   contract: entries due at the same tick are released in schedule()
//   order (the (deadline, seq) order), so a release schedule is a pure
//   function of the set of deadlines — never of host timing.
//
//   PacingPolicy / Pacer — the optional mapping from simulated ticks to
//   wall time. With pacing off (the default everywhere but the benches)
//   waits stay free in wall time and the wheel is bookkeeping only. With
//   pacing on, a wait of N ticks must not complete before N *
//   wall_us_per_tick microseconds of host time — the honest emulation the
//   worker-sweep benches overlap CPU work against. The Pacer owns the one
//   std::chrono doorway; src/core|net|ott never name a host clock
//   (wideleak-lint WL009/WL010).
//
// Thread safety: TimerWheel is externally synchronized (the TaskQueue
// holds its mutex around every call). Pacer is immutable after
// construction and safe to share.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

namespace wideleak::support {

/// How simulated ticks map to host time. Zero (default) = waits are free:
/// the simulation runs as fast as the hardware allows and the wheel only
/// records telemetry.
struct PacingPolicy {
  std::uint64_t wall_us_per_tick = 0;
  bool enabled() const { return wall_us_per_tick != 0; }
};

/// An opaque host-time deadline. Core code passes these around and hands
/// them back to the Pacer (or to condition_variable::wait_until via the
/// public member) without ever naming a chrono clock.
struct WallDeadline {
  std::chrono::steady_clock::time_point at;
};

/// The wall half of the wait machinery: converts tick spans to host-time
/// deadlines and answers "has this deadline passed?". Construction
/// anchors tick 0 at "now", so elapsed_ticks() gives a monotone shared
/// tick axis every parked deadline can be compared on.
class Pacer {
 public:
  explicit Pacer(PacingPolicy policy)
      : policy_(policy), start_(std::chrono::steady_clock::now()) {}

  const PacingPolicy& policy() const { return policy_; }

  /// Host-time deadline `ticks` simulated ticks from now. With pacing
  /// disabled the deadline is already due.
  WallDeadline after_ticks(std::uint64_t ticks) const {
    return WallDeadline{std::chrono::steady_clock::now() +
                        std::chrono::microseconds(ticks * policy_.wall_us_per_tick)};
  }

  bool reached(const WallDeadline& deadline) const {
    return std::chrono::steady_clock::now() >= deadline.at;
  }

  /// Whole pacing ticks elapsed since the pacer was built — the shared
  /// monotone axis the campaign's TimerWheel is keyed on. 0 when pacing
  /// is disabled.
  std::uint64_t elapsed_ticks() const {
    if (!policy_.enabled()) return 0;
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    return static_cast<std::uint64_t>(us) / policy_.wall_us_per_tick;
  }

  /// Stall the calling thread until the deadline (the synchronous-mode
  /// baseline: the wait is paid inline, the worker idles). Outside the
  /// WL010 scope by construction — this file is the approved doorway.
  void stall_until(const WallDeadline& deadline) const;

 private:
  PacingPolicy policy_;
  std::chrono::steady_clock::time_point start_;
};

/// Hierarchical timer wheel over an abstract tick axis.
///
/// Determinism contract: advance_to(t) expires every entry with
/// deadline <= t, ordered by (deadline, schedule-sequence). Entries
/// scheduled in the past expire on the next advance, ahead of anything
/// later. cancel() removes an entry before it fires (lazily — the slot
/// entry is tombstoned and skipped at cascade/expiry).
class TimerWheel {
 public:
  struct Expired {
    std::uint64_t deadline = 0;
    std::uint64_t seq = 0;    // schedule() order, the same-tick tiebreak
    std::uint64_t token = 0;  // caller's payload (e.g. campaign cell index)
  };

  TimerWheel();

  /// Register a deadline; returns the entry's sequence id (unique,
  /// monotone — the deterministic same-tick release order).
  std::uint64_t schedule(std::uint64_t deadline_tick, std::uint64_t token);

  /// Advance the wheel to `now_tick` (monotone; earlier values are
  /// clamped) and return every expired entry in (deadline, seq) order.
  std::vector<Expired> advance_to(std::uint64_t now_tick);

  /// Remove a scheduled entry before it fires. Returns false if the seq
  /// is unknown or already expired/cancelled.
  bool cancel(std::uint64_t seq);

  /// Earliest live deadline, or nullopt when the wheel is empty.
  std::optional<std::uint64_t> next_deadline() const;

  std::size_t pending() const { return pending_; }
  std::uint64_t now() const { return now_; }

  /// Lifetime telemetry for the scheduler's stats sink.
  std::uint64_t scheduled_total() const { return next_seq_; }
  std::uint64_t expired_total() const { return expired_total_; }

 private:
  // 4 levels x 64 slots: level L slot spans 64^L ticks; horizon 64^4.
  // Entries past the horizon park in overflow_ and re-enter on the next
  // top-level cascade.
  static constexpr std::uint32_t kLevelBits = 6;
  static constexpr std::uint32_t kSlots = 1u << kLevelBits;  // 64
  static constexpr std::uint32_t kLevels = 4;

  struct Entry {
    std::uint64_t deadline = 0;
    std::uint64_t seq = 0;
    std::uint64_t token = 0;
  };

  /// Place a live entry into the finest slot that can hold it (or `due_`
  /// when the deadline is not in the future).
  void place(Entry entry);
  /// Pull every entry out of level `level`, slot `slot`, and re-place it
  /// one level down (or into `due_`).
  void cascade(std::uint32_t level, std::uint32_t slot);

  std::vector<Entry> slots_[kLevels][kSlots];
  std::vector<Entry> overflow_;  // deadlines past the wheel horizon
  std::vector<Entry> due_;       // expired placements awaiting the next advance
  std::unordered_set<std::uint64_t> live_;  // scheduled, not yet expired/cancelled
  std::uint64_t now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t expired_total_ = 0;
  std::size_t pending_ = 0;
};

}  // namespace wideleak::support
