// Key-material hygiene: the one owning container secrets are allowed to
// live in (WideLeak §IV / CWE-922, CWE-312).
//
// `SecretBytes` is what `tools/wideleak-lint` rule WL003 pushes every
// key / keybox / whitebox-secret buffer in src/crypto, src/widevine and
// src/ott/custom_drm towards:
//
//   - memory is zeroized before release (destructor, move-from, assign),
//     so a process-memory scan after teardown finds nothing — the exact
//     scan the paper's keybox recovery (CVE-2021-0639) performs;
//   - raw bytes only escape through an explicit `reveal()` call, which the
//     linter can audit (WL001 flags reveal() flowing into log sinks);
//   - stream insertion is deleted, so `WL_LOG(...) << secret` and
//     `std::cout << secret` fail to compile instead of leaking;
//   - equality is constant-time, so comparing two SecretBytes can never
//     become a timing oracle (WL002's companion guarantee).
#pragma once

#include <cstddef>
#include <utility>

#include "support/bytes.hpp"

namespace wideleak {

/// Overwrite `size` bytes at `data` with zeros through a volatile pointer,
/// which the optimizer must not elide even though the buffer is about to be
/// freed (the classic memset_s / OPENSSL_cleanse contract).
void secure_wipe(void* data, std::size_t size);

/// Wipe a buffer in place, then clear it.
void secure_wipe(Bytes& buffer);

namespace detail {
/// Number of secure_wipe invocations so far. Lets tests observe that
/// destruction really wipes, without reading freed memory (which ASan —
/// rightly — would reject).
std::size_t secure_wipe_count();
}  // namespace detail

/// An owning byte buffer for key material.
class SecretBytes {
 public:
  SecretBytes() = default;

  /// Take ownership of an existing buffer. Explicit: wrapping a buffer in
  /// SecretBytes is a statement that it holds key material.
  explicit SecretBytes(Bytes data) : data_(std::move(data)) {}

  /// Deep-copy a view into a fresh secret (the explicit spelling of "this
  /// non-secret-typed buffer is actually a key").
  static SecretBytes copy_of(BytesView data) {
    return SecretBytes(Bytes(data.begin(), data.end()));
  }

  SecretBytes(const SecretBytes& other) = default;
  SecretBytes& operator=(const SecretBytes& other) {
    if (this != &other) {
      wipe();
      data_ = other.data_;
    }
    return *this;
  }

  /// Moves wipe the source so a key never lingers in a moved-from vector.
  SecretBytes(SecretBytes&& other) noexcept : data_(std::move(other.data_)) {
    other.wipe();
  }
  SecretBytes& operator=(SecretBytes&& other) noexcept {
    if (this != &other) {
      wipe();
      data_ = std::move(other.data_);
      other.wipe();
    }
    return *this;
  }

  ~SecretBytes() { wipe(); }

  /// Explicit, auditable access to the raw bytes. Call sites are what
  /// wideleak-lint inspects: a reveal() feeding a cipher is fine, a
  /// reveal() feeding hex_encode / WL_LOG is a WL001 violation.
  BytesView reveal() const { return BytesView(data_); }

  /// Explicit owning copy of the raw bytes, for sinks that must outlive
  /// this object (e.g. serializing a keybox to flash).
  Bytes reveal_copy() const { return data_; }  // wl-lint: reveal-ok

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Zeroize now (also runs on destruction / move-from / assign-over).
  void wipe() {
    secure_wipe(data_);
  }

  /// Constant-time equality; mismatched lengths compare unequal.
  friend bool operator==(const SecretBytes& a, const SecretBytes& b) {
    return constant_time_equal(a.reveal(), b.reveal());
  }
  friend bool operator==(const SecretBytes& a, BytesView b) {
    return constant_time_equal(a.reveal(), b);
  }
  friend bool operator==(BytesView a, const SecretBytes& b) {
    return constant_time_equal(a, b.reveal());
  }

  /// Secrets never hit a stream. This also breaks WL_LOG(...) << secret at
  /// compile time (LogStream forwards to ostream insertion).
  template <typename Stream>
  friend Stream& operator<<(Stream&, const SecretBytes&) = delete;

 private:
  Bytes data_;
};

/// Deleted encoders: make the obvious leak spellings compile errors, not
/// just lint findings.
std::string to_string(const SecretBytes&) = delete;
std::string hex_encode(const SecretBytes&) = delete;
std::string base64_encode(const SecretBytes&) = delete;

inline bool constant_time_equal(const SecretBytes& a, const SecretBytes& b) {
  return constant_time_equal(a.reveal(), b.reveal());
}
inline bool constant_time_equal(const SecretBytes& a, BytesView b) {
  return constant_time_equal(a.reveal(), b);
}
inline bool constant_time_equal(BytesView a, const SecretBytes& b) {
  return constant_time_equal(a, b.reveal());
}

}  // namespace wideleak
