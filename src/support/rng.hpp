// Deterministic random number generation.
//
// The whole simulation must be reproducible run-to-run (the benches print
// paper tables), so every component draws randomness from an explicitly
// seeded xoshiro256** generator instead of std::random_device.
#pragma once

#include <cstdint>
#include <string_view>

#include "support/bytes.hpp"

namespace wideleak {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, 256-bit state.
/// Not cryptographically secure; fine for a simulation where "secret" keys
/// only need to be unpredictable to the simulated adversary code paths.
class Rng {
 public:
  /// Seeds the four 64-bit words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform value in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// `n` fresh bytes.
  Bytes next_bytes(std::size_t n);

  /// Fork a child generator whose stream is independent of this one's
  /// subsequent output (used to give each simulated party its own stream).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

/// Label-derived substream seed: mixes `label` into `base` (FNV-1a over the
/// label bytes, then a splitmix64 finalization round).
///
/// Unlike Rng::fork(), the result depends only on (base, label) — not on how
/// many values were drawn before, or in which order other substreams were
/// derived. The campaign runner uses this to give every matrix cell a seed
/// that is identical no matter which worker picks the cell up or when, which
/// is what makes parallel campaigns bit-identical to serial ones.
std::uint64_t derive_stream_seed(std::uint64_t base, std::string_view label);

}  // namespace wideleak
