// Wall-clock timing for operator-facing statistics.
//
// The deterministic subtrees (src/core, src/net, src/ott) are forbidden from
// touching std::chrono clocks directly — wideleak-lint rule WL009 enforces
// that simulated time comes from support::SimClock so campaign and chaos
// reports replay bit-identically. But the campaign runner still wants to
// print how long a run took in real seconds, which is presentation, not
// simulation: it never feeds back into scheduling, seeding, or any value a
// report diffs on.
//
// WallTimer is the one blessed doorway. It lives in src/support (outside the
// WL009 scope), so production code expresses intent by construction: SimClock
// for anything the simulation observes, WallTimer for throughput lines in
// human-readable output.
#pragma once

#include <chrono>

namespace wideleak::support {

/// Measures elapsed host time from construction. Monotonic; safe across
/// system clock adjustments.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  /// Milliseconds elapsed since construction (or the last reset()).
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }

  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace wideleak::support
