// Minimal leveled logger. Quiet by default so tests and benches stay clean;
// examples flip the level to Info to narrate the playback / attack flow.
//
// Thread safety: the logger is the one process-wide facility in the tree
// (everything else is instance-scoped — see docs/ARCHITECTURE.md). The level
// is an atomic, so campaign workers can check it wait-free on the hot path,
// and emission serializes on an internal mutex so concurrent lines never
// interleave mid-line.
#pragma once

#include <sstream>
#include <string>

namespace wideleak {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

/// Global minimum level; messages below it are dropped. Safe to call from
/// any thread, though usually set once before workers start.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr with a level tag. Prefer the WL_LOG macro.
/// Serialized internally; safe to call concurrently.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace wideleak

#define WL_LOG(level)                                       \
  if (::wideleak::log_level() > ::wideleak::LogLevel::level) \
    ;                                                       \
  else                                                      \
    ::wideleak::detail::LogStream(::wideleak::LogLevel::level)
