// Benchmark result emitter with a fixed JSON schema, so CI can diff runs.
//
// Every entry records: op (name), bytes (payload size), ns (wall time),
// mb_per_s (derived), checksum (hex CRC32 of the operation's output — the
// bit-identity witness that makes a perf number trustworthy).
//
//   {
//     "name": "dataplane",
//     "entries": [
//       {"op": "aes_ctr/batched", "bytes": 1048576, "ns": 730000,
//        "mb_per_s": 1436.4, "checksum": "cbf43926"},
//       ...
//     ]
//   }
//
// `tools/bench_diff.py` consumes two of these files and gates on +-10%
// throughput drift and exact checksum equality.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wideleak::support {

struct BenchEntry {
  std::string op;
  std::uint64_t bytes = 0;
  std::uint64_t ns = 0;
  double mb_per_s = 0.0;
  std::string checksum;  // 8 hex chars (CRC32 of the operation's output)
};

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Record one measurement; throughput is derived from bytes/ns.
  /// `checksum` is the CRC32 of whatever the operation produced.
  void add(const std::string& op, std::uint64_t bytes, std::uint64_t ns, std::uint32_t checksum);

  const std::vector<BenchEntry>& entries() const { return entries_; }
  const std::string& name() const { return name_; }

  /// Serialize in the fixed schema above.
  std::string to_json() const;

  /// Write `to_json()` to `path`. Throws StateError on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::string name_;
  std::vector<BenchEntry> entries_;
};

}  // namespace wideleak::support
