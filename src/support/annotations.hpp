// Lock-discipline annotations checked by wideleak-lint (rule WL008).
//
// These expand to nothing: they exist so declarations can carry their locking
// contract in a form both human readers and the analyzer parse. The idiom
// mirrors Clang's thread-safety attributes, minus the compiler dependency —
// `wideleak-lint --project` builds a cross-translation-unit symbol index of
// every annotated field and method and flags accesses made without the named
// mutex held (via lock_guard / unique_lock / scoped_lock in scope, or from a
// method itself annotated WL_REQUIRES).
//
//   class Counter {
//    public:
//     void bump() {
//       const std::lock_guard<std::mutex> lock(mutex_);
//       ++value_;                       // ok: mutex_ held
//     }
//     int unsafe() { return value_; }   // WL008: value_ accessed without mutex_
//
//    private:
//     std::mutex mutex_;
//     int value_ WL_GUARDED_BY(mutex_) = 0;
//   };
//
// WL_REQUIRES(m) on a method asserts the caller already holds m; the method
// body may then touch fields guarded by m, and every call site is checked for
// the lock instead.
//
// Constructors and destructors are exempt (no concurrent access before the
// object is shared or after it is torn down). Single-threaded components need
// no annotations at all — annotate state that is actually shared across
// threads. See docs/LINTING.md.
#pragma once

#define WL_GUARDED_BY(mutex)
#define WL_REQUIRES(mutex)
