// CRC-32 (IEEE 802.3 polynomial) — the checksum Widevine keyboxes carry in
// their final four bytes and the one our synthetic media frames embed.
#pragma once

#include <cstdint>

#include "support/bytes.hpp"

namespace wideleak {

/// CRC-32 of `data` (reflected, init 0xffffffff, final xor 0xffffffff).
std::uint32_t crc32(BytesView data);

}  // namespace wideleak
