// Minimal ISO-BMFF (MP4) box model — just enough structure for DASH/CENC:
// a generic size|fourcc box tree plus the specific boxes the DRM flow reads:
//
//   ftyp            file type
//   moov.trak       track header (type, resolution, language)
//   moov.pssh       protection system specific header (Widevine system id,
//                   list of key IDs) — what MediaDrm's getKeyRequest consumes
//   moof.tenc       default key ID + IV size for the fragment
//   moof.senc       per-sample IVs and subsample ranges
//   mdat            sample data
//
// Real files carry far more; everything the audit pipeline and the ripper
// touch is faithful in layout spirit (length-prefixed big-endian boxes).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "media/track.hpp"
#include "support/byte_io.hpp"
#include "support/bytes.hpp"

namespace wideleak::media {

/// The Widevine DRM system UUID, as found in real pssh boxes.
inline constexpr char kWidevineSystemId[] = "edef8ba979d64acea3c827dcd51d21ed";

/// Generic MP4 box: either a container of children or a leaf with payload.
struct Box {
  std::string fourcc;        // exactly 4 characters
  Bytes payload;             // leaf content (empty for containers)
  std::vector<Box> children; // container content

  Bytes serialize() const;

  /// Exact size `serialize()` will produce; lets callers reserve once.
  std::size_t serialized_size() const;

  /// Serialize into an existing writer (no intermediate body buffers —
  /// container children stream straight into `w`).
  void serialize_into(ByteWriter& w) const;

  /// Parse a sequence of sibling boxes covering `data` exactly.
  static std::vector<Box> parse_sequence(BytesView data);

  /// First direct child with the given fourcc, or nullptr.
  const Box* child(std::string_view fourcc) const;

  /// Depth-first search for the first box with the given fourcc.
  const Box* find(std::string_view fourcc) const;
};

/// Whether this fourcc is one of the container types we nest into.
bool is_container_fourcc(std::string_view fourcc);

// --- Specific box payloads -------------------------------------------------

/// pssh: DRM system id + key IDs the license request must cover.
struct PsshBox {
  std::string system_id = kWidevineSystemId;
  std::vector<KeyId> key_ids;

  Box to_box() const;
  static PsshBox from_box(const Box& box);
};

/// tenc: default encryption parameters of a fragment.
struct TencBox {
  bool protected_scheme = true;
  std::uint8_t iv_size = 16;
  KeyId default_key_id;

  Box to_box() const;
  static TencBox from_box(const Box& box);
};

/// One sample's encryption metadata inside senc.
struct SampleEncryptionEntry {
  Bytes iv;  // iv_size bytes
  struct Subsample {
    std::uint16_t clear_bytes = 0;
    std::uint32_t protected_bytes = 0;
  };
  std::vector<Subsample> subsamples;
};

/// senc: per-sample IVs + subsample maps.
struct SencBox {
  std::vector<SampleEncryptionEntry> entries;

  Box to_box() const;
  static SencBox from_box(const Box& box);
};

/// trak: track-level metadata (our compact stand-in for tkhd/mdia/...).
struct TrakBox {
  TrackType type = TrackType::Video;
  Resolution resolution;
  std::string language = "en";

  Box to_box() const;
  static TrakBox from_box(const Box& box);
};

}  // namespace wideleak::media
