#include "media/content.hpp"

#include <stdexcept>

namespace wideleak::media {

std::string to_string(KeyUsagePolicy policy) {
  switch (policy) {
    case KeyUsagePolicy::Minimum: return "Minimum";
    case KeyUsagePolicy::Recommended: return "Recommended";
  }
  return "?";
}

const ContentKey* PackagedTitle::key_for(const KeyId& kid) const {
  for (const ContentKey& key : keys) {
    if (key.kid == kid) return &key;
  }
  return nullptr;
}

namespace {

std::string sanitize(const std::string& s) {
  std::string out;
  for (char c : s) out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  return out;
}

}  // namespace

PackagedTitle package_title(std::uint64_t content_id, const std::string& title,
                            const std::vector<std::string>& audio_languages,
                            const std::vector<std::string>& subtitle_languages,
                            const ContentPolicy& policy) {
  PackagedTitle out;
  out.content_id = content_id;
  out.title = title;
  out.mpd.title = title;

  Rng key_rng(content_id * 0x9e3779b97f4a7c15ull + 1);
  Rng iv_rng(content_id * 0x9e3779b97f4a7c15ull + 2);
  const std::string prefix = "/content/" + sanitize(title) + "/";

  // --- Video: one representation per quality, each with its own key
  // (every studied app did this right — it is why breaking L3 only ever
  // yields sub-HD media).
  // Index (not pointer: out.keys reallocates) of the lowest-quality video
  // key, reused by audio under the Minimum policy.
  std::size_t sd_video_key_idx = SIZE_MAX;
  for (const Resolution& resolution : standard_quality_ladder()) {
    const std::string id = "video_" + std::to_string(resolution.height) + "p";
    TrakBox trak{.type = TrackType::Video, .resolution = resolution, .language = "und"};
    const auto frames =
        generate_track_frames(content_id, TrackType::Video, resolution, kFramesPerTrack);

    MpdRepresentation rep;
    rep.id = id;
    rep.type = TrackType::Video;
    rep.resolution = resolution;
    rep.language = "und";
    rep.base_url = prefix + id + ".mp4";

    if (policy.encrypt_video) {
      ContentKey key;
      key.kid = key_rng.next_bytes(16);
      key.key = key_rng.next_bytes(16);
      key.type = TrackType::Video;
      key.resolution = resolution;
      out.keys.push_back(key);
      if (sd_video_key_idx == SIZE_MAX) sd_video_key_idx = out.keys.size() - 1;
      rep.default_kid = key.kid;
      out.files[rep.base_url] =
          package_encrypted(trak, frames, key.key, key.kid, iv_rng).to_file();
    } else {
      out.files[rep.base_url] = package_clear(trak, frames).to_file();
    }
    out.mpd.representations.push_back(std::move(rep));
  }

  // --- Audio: one representation per language.
  for (const std::string& lang : audio_languages) {
    const std::string id = "audio_" + lang;
    TrakBox trak{.type = TrackType::Audio, .resolution = {}, .language = lang};
    const auto frames =
        generate_track_frames(content_id ^ std::hash<std::string>{}(lang), TrackType::Audio,
                              {}, kFramesPerTrack);

    MpdRepresentation rep;
    rep.id = id;
    rep.type = TrackType::Audio;
    rep.language = lang;
    rep.base_url = prefix + id + ".mp4";

    if (policy.encrypt_audio) {
      if (policy.key_usage == KeyUsagePolicy::Recommended) {
        ContentKey key;
        key.kid = key_rng.next_bytes(16);
        key.key = key_rng.next_bytes(16);
        key.type = TrackType::Audio;
        out.keys.push_back(key);
        rep.default_kid = key.kid;
        out.files[rep.base_url] =
            package_encrypted(trak, frames, key.key, key.kid, iv_rng).to_file();
      } else {
        // Minimum: reuse the SD video key — the practice Table I flags.
        if (sd_video_key_idx == SIZE_MAX) {
          throw std::logic_error("package_title: audio key reuse requires encrypted video");
        }
        const ContentKey& shared = out.keys[sd_video_key_idx];
        rep.default_kid = shared.kid;
        out.files[rep.base_url] =
            package_encrypted(trak, frames, shared.key, shared.kid, iv_rng).to_file();
      }
    } else {
      out.files[rep.base_url] = package_clear(trak, frames).to_file();
    }
    out.mpd.representations.push_back(std::move(rep));
  }

  // --- Subtitles: one per language; every studied app ships them clear,
  // but the policy knob exists so tests can exercise the encrypted path.
  for (const std::string& lang : subtitle_languages) {
    const std::string id = "sub_" + lang;
    TrakBox trak{.type = TrackType::Subtitle, .resolution = {}, .language = lang};
    const auto frames =
        generate_track_frames(content_id ^ (std::hash<std::string>{}(lang) << 1),
                              TrackType::Subtitle, {}, kFramesPerTrack);

    MpdRepresentation rep;
    rep.id = id;
    rep.type = TrackType::Subtitle;
    rep.language = lang;
    rep.base_url = prefix + id + ".wvtt";

    if (policy.encrypt_subtitles) {
      ContentKey key;
      key.kid = key_rng.next_bytes(16);
      key.key = key_rng.next_bytes(16);
      key.type = TrackType::Subtitle;
      out.keys.push_back(key);
      rep.default_kid = key.kid;
      out.files[rep.base_url] =
          package_encrypted(trak, frames, key.key, key.kid, iv_rng).to_file();
    } else {
      out.files[rep.base_url] = package_clear(trak, frames).to_file();
    }
    out.mpd.representations.push_back(std::move(rep));
  }

  return out;
}

}  // namespace wideleak::media
