// A deliberately small XML subset — elements, attributes, text — enough to
// write and parse DASH MPD manifests. No namespaces resolution, entities
// limited to the five predefined ones, no DTDs.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace wideleak::media {

/// One XML element.
struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::string text;  // concatenated character data directly inside this node
  std::vector<XmlNode> children;

  /// Serialize with 2-space indentation.
  std::string serialize(int indent = 0) const;

  const XmlNode* child(std::string_view name) const;
  std::vector<const XmlNode*> children_named(std::string_view name) const;
  std::string attribute(std::string_view name, std::string fallback = "") const;
  bool has_attribute(std::string_view name) const;
};

/// Parse a document with a single root element. Throws ParseError.
XmlNode xml_parse(std::string_view text);

/// Escape the five predefined entities.
std::string xml_escape(std::string_view raw);

}  // namespace wideleak::media
