#include "media/mp4.hpp"

#include <array>

#include "support/byte_io.hpp"
#include "support/errors.hpp"

namespace wideleak::media {

namespace {

constexpr std::array<std::string_view, 4> kContainers = {"moov", "moof", "trak", "traf"};

}  // namespace

bool is_container_fourcc(std::string_view fourcc) {
  for (std::string_view c : kContainers) {
    if (c == fourcc) return true;
  }
  return false;
}

std::size_t Box::serialized_size() const {
  std::size_t size = 8;
  if (is_container_fourcc(fourcc)) {
    for (const Box& c : children) size += c.serialized_size();
  } else {
    size += payload.size();
  }
  return size;
}

void Box::serialize_into(ByteWriter& w) const {
  if (fourcc.size() != 4) throw ParseError("Box: fourcc must be 4 chars");
  w.u32(static_cast<std::uint32_t>(serialized_size()));
  w.raw(fourcc);
  if (is_container_fourcc(fourcc)) {
    for (const Box& c : children) c.serialize_into(w);
  } else {
    w.raw(payload);
  }
}

Bytes Box::serialize() const {
  ByteWriter w;
  w.reserve(serialized_size());
  serialize_into(w);
  return w.take();
}

std::vector<Box> Box::parse_sequence(BytesView data) {
  std::vector<Box> boxes;
  std::size_t pos = 0;
  while (pos < data.size()) {
    if (data.size() - pos < 8) throw ParseError("mp4: truncated box header");
    ByteReader r(data.subspan(pos));
    const std::uint32_t size = r.u32();
    const Bytes fourcc_raw = r.raw(4);
    if (size < 8 || pos + size > data.size()) throw ParseError("mp4: bad box size");
    Box box;
    box.fourcc = wideleak::to_string(BytesView(fourcc_raw));
    const BytesView body = data.subspan(pos + 8, size - 8);
    if (is_container_fourcc(box.fourcc)) {
      box.children = parse_sequence(body);
    } else {
      box.payload.assign(body.begin(), body.end());
    }
    boxes.push_back(std::move(box));
    pos += size;
  }
  return boxes;
}

const Box* Box::child(std::string_view target) const {
  for (const Box& c : children) {
    if (c.fourcc == target) return &c;
  }
  return nullptr;
}

const Box* Box::find(std::string_view target) const {
  if (fourcc == target) return this;
  for (const Box& c : children) {
    if (const Box* hit = c.find(target)) return hit;
  }
  return nullptr;
}

Box PsshBox::to_box() const {
  ByteWriter w;
  w.var_string(system_id);
  w.u32(static_cast<std::uint32_t>(key_ids.size()));
  for (const KeyId& kid : key_ids) w.var_bytes(kid);
  return Box{.fourcc = "pssh", .payload = w.take(), .children = {}};
}

PsshBox PsshBox::from_box(const Box& box) {
  if (box.fourcc != "pssh") throw ParseError("expected pssh box");
  ByteReader r(BytesView(box.payload));
  PsshBox out;
  out.system_id = r.var_string();
  const std::uint32_t count = r.u32();
  // Every key id needs at least its 4-byte length prefix; a count beyond
  // that is a corrupted header, not a big box.
  if (count > r.remaining() / 4) throw ParseError("pssh: key id count exceeds payload");
  out.key_ids.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.key_ids.push_back(r.var_bytes());
  return out;
}

Box TencBox::to_box() const {
  ByteWriter w;
  w.u8(protected_scheme ? 1 : 0);
  w.u8(iv_size);
  w.var_bytes(default_key_id);
  return Box{.fourcc = "tenc", .payload = w.take(), .children = {}};
}

TencBox TencBox::from_box(const Box& box) {
  if (box.fourcc != "tenc") throw ParseError("expected tenc box");
  ByteReader r(BytesView(box.payload));
  TencBox out;
  out.protected_scheme = r.u8() != 0;
  out.iv_size = r.u8();
  if (out.iv_size > 16) throw ParseError("tenc: iv_size exceeds a cipher block");
  out.default_key_id = r.var_bytes();
  return out;
}

Box SencBox::to_box() const {
  std::size_t total = 4;
  for (const SampleEncryptionEntry& e : entries) {
    total += 4 + e.iv.size() + 2 + 6 * e.subsamples.size();
  }
  ByteWriter w;
  w.reserve(total);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const SampleEncryptionEntry& e : entries) {
    w.var_bytes(e.iv);
    w.u16(static_cast<std::uint16_t>(e.subsamples.size()));
    for (const auto& s : e.subsamples) {
      w.u16(s.clear_bytes);
      w.u32(s.protected_bytes);
    }
  }
  return Box{.fourcc = "senc", .payload = w.take(), .children = {}};
}

SencBox SencBox::from_box(const Box& box) {
  if (box.fourcc != "senc") throw ParseError("expected senc box");
  ByteReader r(BytesView(box.payload));
  SencBox out;
  const std::uint32_t count = r.u32();
  // Each entry needs at least an iv length prefix plus a subsample count.
  if (count > r.remaining() / 6) throw ParseError("senc: entry count exceeds payload");
  out.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    SampleEncryptionEntry e;
    e.iv = r.var_bytes();
    const std::uint16_t n_sub = r.u16();
    if (n_sub > r.remaining() / 6) throw ParseError("senc: subsample count exceeds payload");
    e.subsamples.reserve(n_sub);
    for (std::uint16_t s = 0; s < n_sub; ++s) {
      SampleEncryptionEntry::Subsample sub;
      sub.clear_bytes = r.u16();
      sub.protected_bytes = r.u32();
      e.subsamples.push_back(sub);
    }
    out.entries.push_back(std::move(e));
  }
  return out;
}

Box TrakBox::to_box() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(resolution.width);
  w.u16(resolution.height);
  w.var_string(language);
  return Box{.fourcc = "tkhd", .payload = w.take(), .children = {}};
}

TrakBox TrakBox::from_box(const Box& box) {
  const Box* tkhd = box.fourcc == "tkhd" ? &box : box.find("tkhd");
  if (tkhd == nullptr) throw ParseError("expected tkhd box");
  ByteReader r(BytesView(tkhd->payload));
  TrakBox out;
  const std::uint8_t raw_type = r.u8();
  if (raw_type < static_cast<std::uint8_t>(TrackType::Video) ||
      raw_type > static_cast<std::uint8_t>(TrackType::Subtitle)) {
    throw ParseError("tkhd: invalid track type " + std::to_string(raw_type));
  }
  out.type = static_cast<TrackType>(raw_type);
  out.resolution.width = r.u16();
  out.resolution.height = r.u16();
  out.language = r.var_string();
  return out;
}

}  // namespace wideleak::media
