// Synthetic "codec": deterministic frame records standing in for real
// compressed media.
//
// The paper's audit checks one property of a downloaded asset: does it play
// in a stock player (clear) or not (encrypted)? Our frames carry a magic and
// a CRC so that exact check is mechanical — a stream is "playable" iff every
// frame parses and its CRC matches, which fails for ciphertext.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "media/track.hpp"
#include "support/bytes.hpp"

namespace wideleak::media {

inline constexpr std::uint32_t kFrameMagic = 0x574c4652;  // "WLFR"

struct ParsedFrame;

/// One elementary-stream frame.
struct Frame {
  std::uint32_t index = 0;
  TrackType type = TrackType::Video;
  Resolution resolution;  // zero for audio/subtitle frames
  Bytes payload;

  /// Serialize to the on-wire record (header, payload, trailing CRC).
  Bytes serialize() const;

  /// Parse one record. Returns the frame and the bytes consumed, or nullopt
  /// when the data does not start with a valid, CRC-correct record.
  static std::optional<ParsedFrame> parse(BytesView data);

  /// Size of the fixed header before the payload (the part CENC subsample
  /// encryption leaves in the clear, as real codecs' NAL headers are).
  static constexpr std::size_t header_size() { return 17; }
};

/// Result of Frame::parse.
struct ParsedFrame {
  Frame frame;
  std::size_t consumed;
};

/// Deterministically generate the frames of one track of a title.
/// `content_id` seeds the payloads, so the same title always produces the
/// same bytes — the property the rip-verification step relies on.
std::vector<Frame> generate_track_frames(std::uint64_t content_id, TrackType type,
                                         Resolution resolution, std::uint32_t frame_count);

/// Result of attempting to play a byte stream.
struct PlaybackReport {
  bool playable = false;
  std::uint32_t frames = 0;
  Resolution resolution;       // of the first video frame, if any
  std::string failure_reason;  // empty when playable
};

/// The "stock player" check: parse records back-to-back, verify CRCs.
PlaybackReport try_play(BytesView stream);

/// Concatenate frames into a raw elementary stream.
Bytes serialize_frames(const std::vector<Frame>& frames);

}  // namespace wideleak::media
