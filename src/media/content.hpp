// Title packaging: turn a content id + protection policy into the DASH
// artifacts a CDN serves (MPD + per-track files) and the content keys the
// license server must hold.
//
// Policies encode the per-app choices the paper measured: whether audio and
// subtitles are encrypted at all (Q2) and whether audio reuses the video
// key or gets its own (Q3, Widevine "minimum" vs "recommended").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "media/cenc.hpp"
#include "media/mpd.hpp"
#include "media/track.hpp"
#include "support/rng.hpp"

namespace wideleak::media {

/// Q3 classification, named after Table I's legend.
enum class KeyUsagePolicy {
  Minimum,      ///< audio clear, or audio shares the video key
  Recommended,  ///< audio and video always use distinct keys
};

std::string to_string(KeyUsagePolicy policy);

/// Per-title protection choices (one per OTT app in the catalog).
struct ContentPolicy {
  bool encrypt_video = true;      // every studied app encrypts video
  bool encrypt_audio = true;      // Netflix/myCanal/Salto do not
  bool encrypt_subtitles = false; // no studied app does
  KeyUsagePolicy key_usage = KeyUsagePolicy::Minimum;
};

/// A content key as the license server stores it.
struct ContentKey {
  KeyId kid;
  Bytes key;                     // 16-byte AES key
  TrackType type = TrackType::Video;
  Resolution resolution;         // the video quality this key unlocks
};

/// Everything the CDN + license server need to serve one title.
struct PackagedTitle {
  std::uint64_t content_id = 0;
  std::string title;
  Mpd mpd;
  std::map<std::string, Bytes> files;  // url path -> mp4-lite file
  std::vector<ContentKey> keys;

  const ContentKey* key_for(const KeyId& kid) const;
};

inline constexpr std::uint32_t kFramesPerTrack = 24;

/// Deterministically package a title. Same (content_id, policy) always
/// yields identical bytes and keys — matching the paper's observation that
/// a given media's keys are shared across all subscribers.
PackagedTitle package_title(std::uint64_t content_id, const std::string& title,
                            const std::vector<std::string>& audio_languages,
                            const std::vector<std::string>& subtitle_languages,
                            const ContentPolicy& policy);

}  // namespace wideleak::media
