// Track and quality-ladder model for DASH content.
//
// An OTT title is delivered as separate video, audio and subtitle tracks
// (the separation that makes per-asset protection decisions possible — the
// core observation behind the paper's Q2/Q3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bytes.hpp"

namespace wideleak::media {

enum class TrackType : std::uint8_t { Video = 1, Audio = 2, Subtitle = 3 };

std::string to_string(TrackType type);

/// Video resolution; audio/subtitle tracks use {0, 0}.
struct Resolution {
  std::uint16_t width = 0;
  std::uint16_t height = 0;

  friend auto operator<=>(const Resolution&, const Resolution&) = default;

  std::string label() const;  ///< e.g. "960x540"
  bool is_hd() const { return height > 540; }
};

/// The ladder the simulated services encode: 234p..1080p, matching the
/// sub-HD boundary the paper reports (qHD 960x540 is the best L3 quality).
std::vector<Resolution> standard_quality_ladder();

inline constexpr Resolution kQhd{960, 540};   // best quality granted to L3
inline constexpr Resolution kHd{1920, 1080};  // requires L1

/// 16-byte CENC key identifier.
using KeyId = Bytes;

/// Description of one downloadable track of a title.
struct TrackInfo {
  TrackType type = TrackType::Video;
  Resolution resolution;       // video only
  std::string language = "en"; // audio/subtitles only
  bool encrypted = false;
  KeyId key_id;                // empty when clear
  std::string url;             // CDN path of the track file
};

}  // namespace wideleak::media
