#include "media/mpd.hpp"

#include "media/mp4.hpp"
#include "media/xml.hpp"
#include "support/errors.hpp"

namespace wideleak::media {

namespace {

std::string content_type_label(TrackType type) { return to_string(type); }

TrackType content_type_from_label(std::string_view label) {
  if (label == "video") return TrackType::Video;
  if (label == "audio") return TrackType::Audio;
  if (label == "subtitle" || label == "text") return TrackType::Subtitle;
  throw ParseError("mpd: unknown contentType " + std::string(label));
}

std::uint16_t parse_dimension(const std::string& value) {
  try {
    const unsigned long parsed = std::stoul(value);
    if (parsed > 0xffff) throw ParseError("mpd: dimension out of range");
    return static_cast<std::uint16_t>(parsed);
  } catch (const std::logic_error&) {  // stoul's invalid_argument/out_of_range
    throw ParseError("mpd: non-numeric dimension '" + value + "'");
  }
}

}  // namespace

std::string Mpd::serialize() const {
  XmlNode root;
  root.name = "MPD";
  root.attributes["xmlns"] = "urn:mpeg:dash:schema:mpd:2011";
  root.attributes["type"] = "static";

  XmlNode period;
  period.name = "Period";

  // Group representations into adaptation sets by (type, language).
  for (const MpdRepresentation& rep : representations) {
    XmlNode set;
    set.name = "AdaptationSet";
    set.attributes["contentType"] = content_type_label(rep.type);
    set.attributes["lang"] = rep.language;

    if (rep.default_kid) {
      XmlNode protection;
      protection.name = "ContentProtection";
      protection.attributes["schemeIdUri"] =
          std::string("urn:uuid:") + kWidevineSystemId;
      protection.attributes["cenc:default_KID"] = hex_encode(*rep.default_kid);
      set.children.push_back(std::move(protection));
    }

    XmlNode representation;
    representation.name = "Representation";
    representation.attributes["id"] = rep.id;
    if (rep.type == TrackType::Video) {
      representation.attributes["width"] = std::to_string(rep.resolution.width);
      representation.attributes["height"] = std::to_string(rep.resolution.height);
    }
    XmlNode base_url;
    base_url.name = "BaseURL";
    base_url.text = rep.base_url;
    representation.children.push_back(std::move(base_url));
    set.children.push_back(std::move(representation));
    period.children.push_back(std::move(set));
  }

  root.attributes["wl:title"] = title;
  root.children.push_back(std::move(period));
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" + root.serialize();
}

Mpd Mpd::parse(std::string_view xml_text) {
  const XmlNode root = xml_parse(xml_text);
  if (root.name != "MPD") throw ParseError("mpd: root element is not MPD");
  Mpd out;
  out.title = root.attribute("wl:title");
  const XmlNode* period = root.child("Period");
  if (period == nullptr) throw ParseError("mpd: missing Period");
  for (const XmlNode* set : period->children_named("AdaptationSet")) {
    const TrackType type = content_type_from_label(set->attribute("contentType"));
    std::optional<KeyId> kid;
    if (const XmlNode* protection = set->child("ContentProtection")) {
      const std::string kid_hex = protection->attribute("cenc:default_KID");
      try {
        kid = hex_decode(kid_hex);
      } catch (const std::invalid_argument&) {
        throw ParseError("mpd: malformed default_KID '" + kid_hex + "'");
      }
    }
    for (const XmlNode* representation : set->children_named("Representation")) {
      MpdRepresentation rep;
      rep.id = representation->attribute("id");
      rep.type = type;
      rep.language = set->attribute("lang", "en");
      if (type == TrackType::Video) {
        rep.resolution.width = parse_dimension(representation->attribute("width", "0"));
        rep.resolution.height = parse_dimension(representation->attribute("height", "0"));
      }
      if (const XmlNode* base_url = representation->child("BaseURL")) {
        rep.base_url = base_url->text;
      }
      rep.default_kid = kid;
      out.representations.push_back(std::move(rep));
    }
  }
  return out;
}

Result<Mpd> Mpd::try_parse(std::string_view xml_text) {
  try {
    return parse(xml_text);
  } catch (const ParseError& e) {
    return {ErrorCode::MalformedPayload, e.what()};
  }
}

std::vector<const MpdRepresentation*> Mpd::of_type(TrackType type) const {
  std::vector<const MpdRepresentation*> out;
  for (const MpdRepresentation& rep : representations) {
    if (rep.type == type) out.push_back(&rep);
  }
  return out;
}

}  // namespace wideleak::media
