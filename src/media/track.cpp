#include "media/track.hpp"

namespace wideleak::media {

std::string to_string(TrackType type) {
  switch (type) {
    case TrackType::Video: return "video";
    case TrackType::Audio: return "audio";
    case TrackType::Subtitle: return "subtitle";
  }
  return "unknown";
}

std::string Resolution::label() const {
  return std::to_string(width) + "x" + std::to_string(height);
}

std::vector<Resolution> standard_quality_ladder() {
  return {{416, 234}, {640, 360}, {854, 480}, {960, 540}, {1280, 720}, {1920, 1080}};
}

}  // namespace wideleak::media
