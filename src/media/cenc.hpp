// MPEG Common Encryption (ISO/IEC 23001-7), 'cenc' scheme: AES-CTR with
// per-sample IVs and subsample maps (clear header bytes + protected payload).
//
// This is both how the simulated CDN packages content and what the paper's
// final step does in reverse: "we use MPEG-CENC to decrypt all protected
// contents" once the content key is recovered.
#pragma once

#include <cstdint>
#include <vector>

#include "media/codec.hpp"
#include "media/mp4.hpp"
#include "media/track.hpp"
#include "support/bytes.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"

namespace wideleak::media {

/// A packaged (possibly encrypted) DASH track file: init info + samples.
struct PackagedTrack {
  TrakBox track;
  bool encrypted = false;
  KeyId key_id;                 // empty when clear
  SencBox senc;                 // per-sample crypto metadata (encrypted only)
  std::vector<Bytes> samples;   // sample data (ciphertext when encrypted)

  /// Serialize to an mp4-lite file (moov + moof + mdat boxes).
  Bytes to_file() const;
  /// Throws ParseError on malformed input.
  static PackagedTrack from_file(BytesView file);
  /// Non-throwing variant for callers fed by the fault injector.
  static Result<PackagedTrack> try_from_file(BytesView file);
};

/// Package clear frames without encryption.
PackagedTrack package_clear(const TrakBox& track, const std::vector<Frame>& frames);

/// Package frames CENC-encrypted under (key, key_id). Frame headers stay in
/// the clear as subsample "clear bytes" — the standard pattern for NAL
/// headers — so track metadata remains parseable without the key.
PackagedTrack package_encrypted(const TrakBox& track, const std::vector<Frame>& frames,
                                BytesView key, const KeyId& key_id, Rng& rng);

/// Decrypt a CENC-packaged track back to the raw elementary stream.
/// Throws CryptoError if the track is not encrypted-form consistent.
Bytes cenc_decrypt_track(const PackagedTrack& track, BytesView key);

/// Append form of `cenc_decrypt_track`: decrypted stream lands at the end
/// of `out` with no intermediate per-subsample buffers — each sample is
/// copied into `out` once, protected ranges are XORed in place, and
/// contiguous protected runs (zero clear bytes between subsamples) collapse
/// into single CTR calls. Subsample bounds are validated before `out` is
/// touched, so on throw `out` is unchanged.
void cenc_decrypt_track_append(const PackagedTrack& track, BytesView key, Bytes& out);

/// Extract the concatenated sample bytes (for clear tracks this is the
/// playable elementary stream; for encrypted ones it is ciphertext).
Bytes raw_sample_stream(const PackagedTrack& track);

/// Append form of `raw_sample_stream`.
void raw_sample_stream_append(const PackagedTrack& track, Bytes& out);

}  // namespace wideleak::media
