#include "media/cenc.hpp"

#include "crypto/modes.hpp"
#include "support/byte_io.hpp"
#include "support/errors.hpp"

namespace wideleak::media {

namespace {

Bytes sixteen_byte_iv(BytesView iv) {
  Bytes full(iv.begin(), iv.end());
  full.resize(crypto::kAesBlockSize, 0x00);
  return full;
}

}  // namespace

Bytes PackagedTrack::to_file() const {
  Box moov{.fourcc = "moov", .payload = {}, .children = {}};
  Box trak_box{.fourcc = "trak", .payload = {}, .children = {track.to_box()}};
  moov.children.push_back(std::move(trak_box));
  if (encrypted) {
    PsshBox pssh;
    pssh.key_ids.push_back(key_id);
    moov.children.push_back(pssh.to_box());
  }

  Box moof{.fourcc = "moof", .payload = {}, .children = {}};
  TencBox tenc;
  tenc.protected_scheme = encrypted;
  tenc.default_key_id = key_id;
  moof.children.push_back(tenc.to_box());
  if (encrypted) moof.children.push_back(senc.to_box());

  ByteWriter sample_writer;
  sample_writer.u32(static_cast<std::uint32_t>(samples.size()));
  for (const Bytes& s : samples) sample_writer.var_bytes(s);
  Box mdat{.fourcc = "mdat", .payload = sample_writer.take(), .children = {}};

  Bytes out;
  Box ftyp{.fourcc = "ftyp", .payload = to_bytes("wl10"), .children = {}};
  for (const Box* box : {&ftyp, &moov, &moof, &mdat}) {
    const Bytes b = box->serialize();
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

PackagedTrack PackagedTrack::from_file(BytesView file) {
  const std::vector<Box> boxes = Box::parse_sequence(file);
  PackagedTrack out;
  const Box* moof = nullptr;
  const Box* mdat = nullptr;
  for (const Box& box : boxes) {
    if (box.fourcc == "moov") {
      out.track = TrakBox::from_box(box);
    } else if (box.fourcc == "moof") {
      moof = &box;
    } else if (box.fourcc == "mdat") {
      mdat = &box;
    }
  }
  if (moof == nullptr || mdat == nullptr) throw ParseError("cenc: missing moof/mdat");

  const Box* tenc = moof->find("tenc");
  if (tenc == nullptr) throw ParseError("cenc: missing tenc");
  const TencBox tenc_parsed = TencBox::from_box(*tenc);
  out.encrypted = tenc_parsed.protected_scheme;
  out.key_id = tenc_parsed.default_key_id;
  if (out.encrypted) {
    const Box* senc = moof->find("senc");
    if (senc == nullptr) throw ParseError("cenc: encrypted track missing senc");
    out.senc = SencBox::from_box(*senc);
  }

  ByteReader r(BytesView(mdat->payload));
  const std::uint32_t count = r.u32();
  // Each sample needs at least its 4-byte length prefix.
  if (count > r.remaining() / 4) throw ParseError("cenc: sample count exceeds mdat");
  for (std::uint32_t i = 0; i < count; ++i) out.samples.push_back(r.var_bytes());
  return out;
}

Result<PackagedTrack> PackagedTrack::try_from_file(BytesView file) {
  try {
    return from_file(file);
  } catch (const ParseError& e) {
    return {ErrorCode::MalformedPayload, e.what()};
  }
}

PackagedTrack package_clear(const TrakBox& track, const std::vector<Frame>& frames) {
  PackagedTrack out;
  out.track = track;
  out.encrypted = false;
  for (const Frame& frame : frames) out.samples.push_back(frame.serialize());
  return out;
}

PackagedTrack package_encrypted(const TrakBox& track, const std::vector<Frame>& frames,
                                BytesView key, const KeyId& key_id, Rng& rng) {
  const crypto::Aes aes(key);
  PackagedTrack out;
  out.track = track;
  out.encrypted = true;
  out.key_id = key_id;
  for (const Frame& frame : frames) {
    const Bytes record = frame.serialize();
    SampleEncryptionEntry entry;
    entry.iv = rng.next_bytes(8);  // 8-byte IVs, as common in cenc content
    // One subsample: frame header clear, payload + CRC protected.
    SampleEncryptionEntry::Subsample sub;
    sub.clear_bytes = static_cast<std::uint16_t>(Frame::header_size());
    sub.protected_bytes = static_cast<std::uint32_t>(record.size() - Frame::header_size());
    entry.subsamples.push_back(sub);

    Bytes sample(record.begin(), record.begin() + static_cast<std::ptrdiff_t>(sub.clear_bytes));
    crypto::AesCtrStream stream(aes, BytesView(sixteen_byte_iv(entry.iv)));
    const Bytes ciphertext = stream.process(
        BytesView(record.data() + sub.clear_bytes, sub.protected_bytes));
    sample.insert(sample.end(), ciphertext.begin(), ciphertext.end());

    out.senc.entries.push_back(std::move(entry));
    out.samples.push_back(std::move(sample));
  }
  return out;
}

Bytes cenc_decrypt_track(const PackagedTrack& track, BytesView key) {
  if (!track.encrypted) throw CryptoError("cenc_decrypt_track: track is clear");
  if (track.senc.entries.size() != track.samples.size()) {
    throw ParseError("cenc_decrypt_track: senc/sample count mismatch");
  }
  const crypto::Aes aes(key);
  Bytes out;
  for (std::size_t i = 0; i < track.samples.size(); ++i) {
    const Bytes& sample = track.samples[i];
    const SampleEncryptionEntry& entry = track.senc.entries[i];
    crypto::AesCtrStream stream(aes, BytesView(sixteen_byte_iv(entry.iv)));
    std::size_t pos = 0;
    for (const auto& sub : entry.subsamples) {
      if (pos + sub.clear_bytes + sub.protected_bytes > sample.size()) {
        throw ParseError("cenc_decrypt_track: subsample overruns sample");
      }
      out.insert(out.end(), sample.begin() + static_cast<std::ptrdiff_t>(pos),
                 sample.begin() + static_cast<std::ptrdiff_t>(pos + sub.clear_bytes));
      pos += sub.clear_bytes;
      const Bytes clear = stream.process(BytesView(sample.data() + pos, sub.protected_bytes));
      out.insert(out.end(), clear.begin(), clear.end());
      pos += sub.protected_bytes;
    }
    // Trailing unprotected bytes, if any.
    out.insert(out.end(), sample.begin() + static_cast<std::ptrdiff_t>(pos), sample.end());
  }
  return out;
}

Bytes raw_sample_stream(const PackagedTrack& track) {
  Bytes out;
  for (const Bytes& s : track.samples) out.insert(out.end(), s.begin(), s.end());
  return out;
}

}  // namespace wideleak::media
