#include "media/cenc.hpp"

#include <algorithm>
#include <cstring>

#include "crypto/modes.hpp"
#include "support/byte_io.hpp"
#include "support/errors.hpp"

namespace wideleak::media {

namespace {

crypto::AesBlock sixteen_byte_iv(BytesView iv) {
  crypto::AesBlock full{};
  std::memcpy(full.data(), iv.data(), std::min(iv.size(), crypto::kAesBlockSize));
  return full;
}

}  // namespace

Bytes PackagedTrack::to_file() const {
  Box moov{.fourcc = "moov", .payload = {}, .children = {}};
  Box trak_box{.fourcc = "trak", .payload = {}, .children = {track.to_box()}};
  moov.children.push_back(std::move(trak_box));
  if (encrypted) {
    PsshBox pssh;
    pssh.key_ids.push_back(key_id);
    moov.children.push_back(pssh.to_box());
  }

  Box moof{.fourcc = "moof", .payload = {}, .children = {}};
  TencBox tenc;
  tenc.protected_scheme = encrypted;
  tenc.default_key_id = key_id;
  moof.children.push_back(tenc.to_box());
  if (encrypted) moof.children.push_back(senc.to_box());

  std::size_t mdat_size = 4;
  for (const Bytes& s : samples) mdat_size += 4 + s.size();
  ByteWriter sample_writer;
  sample_writer.reserve(mdat_size);
  sample_writer.u32(static_cast<std::uint32_t>(samples.size()));
  for (const Bytes& s : samples) sample_writer.var_bytes(s);
  Box mdat{.fourcc = "mdat", .payload = sample_writer.take(), .children = {}};

  Box ftyp{.fourcc = "ftyp", .payload = to_bytes("wl10"), .children = {}};
  ByteWriter file_writer;
  std::size_t file_size = 0;
  for (const Box* box : {&ftyp, &moov, &moof, &mdat}) file_size += box->serialized_size();
  file_writer.reserve(file_size);
  for (const Box* box : {&ftyp, &moov, &moof, &mdat}) box->serialize_into(file_writer);
  return file_writer.take();
}

PackagedTrack PackagedTrack::from_file(BytesView file) {
  const std::vector<Box> boxes = Box::parse_sequence(file);
  PackagedTrack out;
  const Box* moof = nullptr;
  const Box* mdat = nullptr;
  for (const Box& box : boxes) {
    if (box.fourcc == "moov") {
      out.track = TrakBox::from_box(box);
    } else if (box.fourcc == "moof") {
      moof = &box;
    } else if (box.fourcc == "mdat") {
      mdat = &box;
    }
  }
  if (moof == nullptr || mdat == nullptr) throw ParseError("cenc: missing moof/mdat");

  const Box* tenc = moof->find("tenc");
  if (tenc == nullptr) throw ParseError("cenc: missing tenc");
  const TencBox tenc_parsed = TencBox::from_box(*tenc);
  out.encrypted = tenc_parsed.protected_scheme;
  out.key_id = tenc_parsed.default_key_id;
  if (out.encrypted) {
    const Box* senc = moof->find("senc");
    if (senc == nullptr) throw ParseError("cenc: encrypted track missing senc");
    out.senc = SencBox::from_box(*senc);
  }

  ByteReader r(BytesView(mdat->payload));
  const std::uint32_t count = r.u32();
  // Each sample needs at least its 4-byte length prefix.
  if (count > r.remaining() / 4) throw ParseError("cenc: sample count exceeds mdat");
  out.samples.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.samples.push_back(r.var_bytes());
  return out;
}

Result<PackagedTrack> PackagedTrack::try_from_file(BytesView file) {
  try {
    return from_file(file);
  } catch (const ParseError& e) {
    return {ErrorCode::MalformedPayload, e.what()};
  }
}

PackagedTrack package_clear(const TrakBox& track, const std::vector<Frame>& frames) {
  PackagedTrack out;
  out.track = track;
  out.encrypted = false;
  out.samples.reserve(frames.size());
  for (const Frame& frame : frames) out.samples.push_back(frame.serialize());
  return out;
}

PackagedTrack package_encrypted(const TrakBox& track, const std::vector<Frame>& frames,
                                BytesView key, const KeyId& key_id, Rng& rng) {
  const crypto::Aes aes(key);
  PackagedTrack out;
  out.track = track;
  out.encrypted = true;
  out.key_id = key_id;
  out.senc.entries.reserve(frames.size());
  out.samples.reserve(frames.size());
  for (const Frame& frame : frames) {
    // Encrypt in place: the serialized record becomes the sample, with the
    // protected range XORed where it sits.
    Bytes sample = frame.serialize();
    SampleEncryptionEntry entry;
    entry.iv = rng.next_bytes(8);  // 8-byte IVs, as common in cenc content
    // One subsample: frame header clear, payload + CRC protected.
    SampleEncryptionEntry::Subsample sub;
    sub.clear_bytes = static_cast<std::uint16_t>(Frame::header_size());
    sub.protected_bytes = static_cast<std::uint32_t>(sample.size() - Frame::header_size());
    entry.subsamples.push_back(sub);

    crypto::AesCtrStream stream(aes, BytesView(sixteen_byte_iv(entry.iv)));
    stream.xor_in_place(sample.data() + sub.clear_bytes, sub.protected_bytes);

    out.senc.entries.push_back(std::move(entry));
    out.samples.push_back(std::move(sample));
  }
  return out;
}

Bytes cenc_decrypt_track(const PackagedTrack& track, BytesView key) {
  Bytes out;
  cenc_decrypt_track_append(track, key, out);
  return out;
}

void cenc_decrypt_track_append(const PackagedTrack& track, BytesView key, Bytes& out) {
  if (!track.encrypted) throw CryptoError("cenc_decrypt_track: track is clear");
  if (track.senc.entries.size() != track.samples.size()) {
    throw ParseError("cenc_decrypt_track: senc/sample count mismatch");
  }
  // Validate every subsample map before touching `out` so a malformed
  // track (fault-injected or hostile) leaves the caller's buffer intact.
  std::size_t total = 0;
  for (std::size_t i = 0; i < track.samples.size(); ++i) {
    std::size_t pos = 0;
    for (const auto& sub : track.senc.entries[i].subsamples) {
      if (pos + sub.clear_bytes + sub.protected_bytes > track.samples[i].size()) {
        throw ParseError("cenc_decrypt_track: subsample overruns sample");
      }
      pos += sub.clear_bytes + sub.protected_bytes;
    }
    total += track.samples[i].size();
  }

  const crypto::Aes aes(key);
  out.reserve(out.size() + total);
  for (std::size_t i = 0; i < track.samples.size(); ++i) {
    const Bytes& sample = track.samples[i];
    const SampleEncryptionEntry& entry = track.senc.entries[i];
    // One copy of the whole sample (clear bytes land for free), then XOR
    // the protected ranges where they sit. Keystream is continuous across
    // a sample's protected ranges, so runs separated by zero clear bytes
    // are contiguous in both output and keystream — merge them into one
    // CTR call.
    const std::size_t base = out.size();
    out.insert(out.end(), sample.begin(), sample.end());
    crypto::AesCtrStream stream(aes, BytesView(sixteen_byte_iv(entry.iv)));
    std::size_t pos = 0;
    std::size_t run_begin = 0;
    std::size_t run_len = 0;
    for (const auto& sub : entry.subsamples) {
      if (sub.clear_bytes != 0 && run_len != 0) {
        stream.xor_in_place(out.data() + base + run_begin, run_len);
        run_len = 0;
      }
      pos += sub.clear_bytes;
      if (sub.protected_bytes != 0) {
        if (run_len == 0) run_begin = pos;
        run_len += sub.protected_bytes;
      }
      pos += sub.protected_bytes;
    }
    if (run_len != 0) stream.xor_in_place(out.data() + base + run_begin, run_len);
  }
}

Bytes raw_sample_stream(const PackagedTrack& track) {
  Bytes out;
  raw_sample_stream_append(track, out);
  return out;
}

void raw_sample_stream_append(const PackagedTrack& track, Bytes& out) {
  std::size_t total = 0;
  for (const Bytes& s : track.samples) total += s.size();
  out.reserve(out.size() + total);
  for (const Bytes& s : track.samples) out.insert(out.end(), s.begin(), s.end());
}

}  // namespace wideleak::media
