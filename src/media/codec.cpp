#include "media/codec.hpp"

#include "support/byte_io.hpp"
#include "support/crc32.hpp"
#include "support/rng.hpp"

namespace wideleak::media {

Bytes Frame::serialize() const {
  ByteWriter w;
  w.u32(kFrameMagic);
  w.u32(index);
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(resolution.width);
  w.u16(resolution.height);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  Bytes record = w.take();
  const std::uint32_t crc = crc32(record);
  ByteWriter tail;
  tail.u32(crc);
  const Bytes crc_bytes = tail.take();
  record.insert(record.end(), crc_bytes.begin(), crc_bytes.end());
  return record;
}

std::optional<ParsedFrame> Frame::parse(BytesView data) {
  if (data.size() < header_size() + 4) return std::nullopt;
  ByteReader r(data);
  if (r.u32() != kFrameMagic) return std::nullopt;
  Frame frame;
  frame.index = r.u32();
  const std::uint8_t type_raw = r.u8();
  if (type_raw < 1 || type_raw > 3) return std::nullopt;
  frame.type = static_cast<TrackType>(type_raw);
  frame.resolution.width = r.u16();
  frame.resolution.height = r.u16();
  const std::uint32_t payload_len = r.u32();
  if (r.remaining() < payload_len + 4) return std::nullopt;
  frame.payload = r.raw(payload_len);
  const std::uint32_t stored_crc = r.u32();
  const std::size_t consumed = r.position();
  if (crc32(BytesView(data.data(), consumed - 4)) != stored_crc) return std::nullopt;
  return ParsedFrame{std::move(frame), consumed};
}

std::vector<Frame> generate_track_frames(std::uint64_t content_id, TrackType type,
                                         Resolution resolution, std::uint32_t frame_count) {
  std::vector<Frame> frames;
  frames.reserve(frame_count);
  // Payload size scales with resolution so higher qualities produce bigger
  // files, as a bitrate ladder would.
  std::size_t payload_size = 0;
  switch (type) {
    case TrackType::Video:
      payload_size = 64 + static_cast<std::size_t>(resolution.width) *
                              static_cast<std::size_t>(resolution.height) / 2048;
      break;
    case TrackType::Audio:
      payload_size = 96;
      break;
    case TrackType::Subtitle:
      payload_size = 48;
      break;
  }
  for (std::uint32_t i = 0; i < frame_count; ++i) {
    Rng frame_rng(content_id ^ (static_cast<std::uint64_t>(type) << 56) ^
                  (static_cast<std::uint64_t>(resolution.height) << 40) ^ i);
    Frame frame;
    frame.index = i;
    frame.type = type;
    frame.resolution = type == TrackType::Video ? resolution : Resolution{};
    if (type == TrackType::Subtitle) {
      // Subtitles are ascii text — the property the paper's subtitle check
      // (is the downloaded file readable English?) keys on.
      std::string line = "subtitle cue " + std::to_string(i) + ": ";
      while (line.size() < payload_size) {
        line.push_back(static_cast<char>('a' + frame_rng.next_below(26)));
      }
      line.resize(payload_size);
      frame.payload = to_bytes(line);
    } else {
      frame.payload = frame_rng.next_bytes(payload_size);
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

Bytes serialize_frames(const std::vector<Frame>& frames) {
  Bytes out;
  for (const Frame& frame : frames) {
    const Bytes record = frame.serialize();
    out.insert(out.end(), record.begin(), record.end());
  }
  return out;
}

PlaybackReport try_play(BytesView stream) {
  PlaybackReport report;
  std::size_t pos = 0;
  bool saw_video = false;
  while (pos < stream.size()) {
    const auto parsed = Frame::parse(stream.subspan(pos));
    if (!parsed) {
      report.playable = false;
      report.failure_reason =
          "undecodable data at offset " + std::to_string(pos) + " (corrupt or encrypted)";
      return report;
    }
    ++report.frames;
    if (parsed->frame.type == TrackType::Video && !saw_video) {
      report.resolution = parsed->frame.resolution;
      saw_video = true;
    }
    pos += parsed->consumed;
  }
  if (report.frames == 0) {
    report.failure_reason = "empty stream";
    return report;
  }
  report.playable = true;
  return report;
}

}  // namespace wideleak::media
