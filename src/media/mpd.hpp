// DASH Media Presentation Description (MPD) manifests.
//
// The audit pipeline parses intercepted MPDs to learn the URI of every
// asset and, for Q3, the default_KID announced per representation — the
// "metadata indicating the identifier for every decryption key" the paper
// analyses.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "media/track.hpp"
#include "support/errors.hpp"

namespace wideleak::media {

/// One downloadable representation (a video quality, an audio language...).
struct MpdRepresentation {
  std::string id;
  TrackType type = TrackType::Video;
  Resolution resolution;       // video only
  std::string language = "en";
  std::string base_url;
  std::optional<KeyId> default_kid;  // present iff ContentProtection declared
};

/// A whole manifest for one title.
struct Mpd {
  std::string title;
  std::vector<MpdRepresentation> representations;

  std::string serialize() const;
  /// Throws ParseError on malformed input (all failure modes, including a
  /// corrupted default_KID attribute — never a non-wideleak exception).
  static Mpd parse(std::string_view xml_text);
  /// Non-throwing variant for callers fed by the fault injector.
  static Result<Mpd> try_parse(std::string_view xml_text);

  std::vector<const MpdRepresentation*> of_type(TrackType type) const;
};

}  // namespace wideleak::media
