#include "media/xml.hpp"

#include <cctype>

#include "support/errors.hpp"

namespace wideleak::media {

std::string xml_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

std::string xml_unescape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '&') {
      out.push_back(raw[i]);
      continue;
    }
    const std::size_t end = raw.find(';', i);
    if (end == std::string_view::npos) throw ParseError("xml: unterminated entity");
    const std::string_view entity = raw.substr(i + 1, end - i - 1);
    if (entity == "amp") out.push_back('&');
    else if (entity == "lt") out.push_back('<');
    else if (entity == "gt") out.push_back('>');
    else if (entity == "quot") out.push_back('"');
    else if (entity == "apos") out.push_back('\'');
    else throw ParseError("xml: unknown entity &" + std::string(entity) + ";");
    i = end;
  }
  return out;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  XmlNode parse_document() {
    skip_whitespace();
    if (lookahead("<?")) skip_past("?>");
    skip_whitespace();
    XmlNode root = parse_element();
    skip_whitespace();
    if (pos_ != text_.size()) throw ParseError("xml: trailing content after root");
    return root;
  }

 private:
  bool lookahead(std::string_view s) const { return text_.substr(pos_, s.size()) == s; }

  void skip_past(std::string_view s) {
    const std::size_t at = text_.find(s, pos_);
    if (at == std::string_view::npos) throw ParseError("xml: unterminated construct");
    pos_ = at + s.size();
  }

  void skip_whitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() const {
    if (pos_ >= text_.size()) throw ParseError("xml: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) throw ParseError(std::string("xml: expected '") + c + "'");
    ++pos_;
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == ':' ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) throw ParseError("xml: expected name");
    return std::string(text_.substr(start, pos_ - start));
  }

  XmlNode parse_element() {
    expect('<');
    XmlNode node;
    node.name = parse_name();
    for (;;) {
      skip_whitespace();
      if (lookahead("/>")) {
        pos_ += 2;
        return node;
      }
      if (peek() == '>') {
        ++pos_;
        break;
      }
      const std::string attr = parse_name();
      skip_whitespace();
      expect('=');
      skip_whitespace();
      const char quote = peek();
      if (quote != '"' && quote != '\'') throw ParseError("xml: expected quoted attribute");
      ++pos_;
      const std::size_t end = text_.find(quote, pos_);
      if (end == std::string_view::npos) throw ParseError("xml: unterminated attribute");
      node.attributes[attr] = xml_unescape(text_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }
    // Content until the matching close tag.
    for (;;) {
      const std::size_t lt = text_.find('<', pos_);
      if (lt == std::string_view::npos) throw ParseError("xml: unterminated element " + node.name);
      node.text += xml_unescape(text_.substr(pos_, lt - pos_));
      pos_ = lt;
      if (lookahead("<!--")) {
        skip_past("-->");
        continue;
      }
      if (lookahead("</")) {
        pos_ += 2;
        const std::string close = parse_name();
        if (close != node.name) throw ParseError("xml: mismatched close tag " + close);
        skip_whitespace();
        expect('>');
        // Trim pure-whitespace text content.
        if (node.text.find_first_not_of(" \t\r\n") == std::string::npos) node.text.clear();
        return node;
      }
      node.children.push_back(parse_element());
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string XmlNode::serialize(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out = pad + "<" + name;
  for (const auto& [key, value] : attributes) {
    out += " " + key + "=\"" + xml_escape(value) + "\"";
  }
  if (children.empty() && text.empty()) {
    out += "/>\n";
    return out;
  }
  out += ">";
  if (!text.empty()) out += xml_escape(text);
  if (!children.empty()) {
    out += "\n";
    for (const XmlNode& c : children) out += c.serialize(indent + 1);
    out += pad;
  }
  out += "</" + name + ">\n";
  return out;
}

const XmlNode* XmlNode::child(std::string_view target) const {
  for (const XmlNode& c : children) {
    if (c.name == target) return &c;
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(std::string_view target) const {
  std::vector<const XmlNode*> out;
  for (const XmlNode& c : children) {
    if (c.name == target) out.push_back(&c);
  }
  return out;
}

std::string XmlNode::attribute(std::string_view target, std::string fallback) const {
  const auto it = attributes.find(std::string(target));
  return it == attributes.end() ? fallback : it->second;
}

bool XmlNode::has_attribute(std::string_view target) const {
  return attributes.contains(std::string(target));
}

XmlNode xml_parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace wideleak::media
