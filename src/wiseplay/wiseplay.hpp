// WisePlay-style alternative DRM — the paper's stated main future
// direction ("Huawei's devices offer their custom DRM solution, called
// WisePlay. Studying similarities and differences among these different
// implementations constitutes the main future direction of this work").
//
// This is a deliberately *different* design from the Widevine model, so the
// study toolchain can demonstrate what generalizes and what does not:
//   - root of trust: a bare 32-byte device secret, no keybox structure at
//     all (so the CVE-2021-0639 magic+CRC scanner has nothing to find —
//     each CDM needs its own recovery technique),
//   - key ladder: HMAC-SHA256 label KDF instead of AES-CMAC counters,
//   - one round trip, no separate provisioning step.
// What *does* carry over: the HAL hook seam (calls are visible on the same
// process bus, under a different module name) and the CENC content format.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "hooking/process.hpp"
#include "media/content.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"
#include "widevine/tee.hpp"

namespace wideleak::wiseplay {

/// The real WisePlay DRM scheme UUID.
inline constexpr char kWisePlayUuid[] = "3d5e6d35-9b9a-41e8-b843-dd3c6e72c42c";
inline constexpr char kWisePlayModule[] = "libwiseplaydrm.so";

enum class WisePlayResult {
  Success,
  SignatureFailure,
  KeyNotLoaded,
  Denied,
  InvalidSession,
};

std::string to_string(WisePlayResult result);

/// One license exchange's wire messages (compact, self-contained format).
struct WisePlayRequest {
  Bytes device_id;  // 16 bytes, public
  Bytes nonce;      // 16 bytes, fresh per request
  std::vector<media::KeyId> key_ids;

  Bytes body() const;
  Bytes mac;  // HMAC-SHA256(device secret, body)

  Bytes serialize() const;
  static WisePlayRequest deserialize(BytesView data);
};

struct WisePlayResponse {
  bool granted = false;
  std::string deny_reason;
  struct WrappedKey {
    media::KeyId kid;
    Bytes iv;
    Bytes wrapped;  // AES-CBC under the nonce-derived enc key
  };
  std::vector<WrappedKey> keys;

  Bytes body() const;
  Bytes mac;  // HMAC-SHA256(nonce-derived mac key, body)

  Bytes serialize() const;
  static WisePlayResponse deserialize(BytesView data);
};

/// Derive the per-exchange key pair from the device secret and nonce.
struct WisePlaySessionKeys {
  Bytes enc_key;  // 16 bytes
  Bytes mac_key;  // 32 bytes
};
WisePlaySessionKeys derive_wiseplay_keys(BytesView device_secret, BytesView nonce);

/// The client-side CDM. Key material lives in the TEE when one is present,
/// in (scannable) process memory otherwise — the same isolation model as
/// the Widevine CDM, expressed over a different root of trust.
class WisePlayCdm {
 public:
  using SessionId = std::uint32_t;

  WisePlayCdm(hooking::SimProcess* host, widevine::Tee* tee, Bytes device_id,
              Bytes device_secret, std::uint64_t seed);

  SessionId open_session();
  void close_session(SessionId session);

  Bytes create_license_request(SessionId session, const std::vector<media::KeyId>& key_ids);
  WisePlayResult process_license_response(SessionId session, BytesView response);

  WisePlayResult decrypt_sample(SessionId session, const media::KeyId& kid, BytesView iv,
                                BytesView ciphertext, Bytes& plaintext);

  std::vector<media::KeyId> loaded_key_ids(SessionId session) const;
  const Bytes& device_id() const { return device_id_; }

 private:
  struct Session {
    Bytes nonce;
    std::map<std::string, hooking::RegionId> keys;  // hex(kid) -> region
  };

  hooking::ProcessMemory& key_store();
  void emit(std::string_view function, BytesView input, BytesView output) const;
  Session& session_for(SessionId id);

  hooking::SimProcess* host_;
  widevine::Tee* tee_;
  Bytes device_id_;
  Bytes device_secret_;
  Rng rng_;
  std::map<SessionId, Session> sessions_;
  SessionId next_session_ = 1;
};

/// The server side: device registry + content keys.
class WisePlayLicenseServer {
 public:
  explicit WisePlayLicenseServer(std::uint64_t seed) : rng_(seed) {}

  void register_device(BytesView device_id, BytesView device_secret);
  void add_title(const media::PackagedTitle& title);

  Bytes handle(BytesView request_bytes);

 private:
  Rng rng_;
  std::map<std::string, Bytes> device_secrets_;  // hex(id) -> secret
  std::map<std::string, Bytes> keys_;            // hex(kid) -> key
  std::set<std::string> seen_nonces_;
};

/// Factory provisioning: mint the (id, secret) pair for a device serial.
struct WisePlayIdentity {
  Bytes device_id;
  Bytes device_secret;
};
WisePlayIdentity make_wiseplay_identity(const std::string& serial, std::uint64_t seed);

}  // namespace wideleak::wiseplay
