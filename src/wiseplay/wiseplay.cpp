#include "wiseplay/wiseplay.hpp"

#include "crypto/hmac.hpp"
#include "crypto/modes.hpp"
#include "support/byte_io.hpp"
#include "support/errors.hpp"

namespace wideleak::wiseplay {

std::string to_string(WisePlayResult result) {
  switch (result) {
    case WisePlayResult::Success: return "success";
    case WisePlayResult::SignatureFailure: return "signature failure";
    case WisePlayResult::KeyNotLoaded: return "key not loaded";
    case WisePlayResult::Denied: return "denied";
    case WisePlayResult::InvalidSession: return "invalid session";
  }
  return "?";
}

WisePlaySessionKeys derive_wiseplay_keys(BytesView device_secret, BytesView nonce) {
  WisePlaySessionKeys keys;
  keys.enc_key = crypto::hmac_sha256(device_secret, concat({to_bytes("wp-enc"), nonce}));
  keys.enc_key.resize(16);
  keys.mac_key = crypto::hmac_sha256(device_secret, concat({to_bytes("wp-mac"), nonce}));
  return keys;
}

Bytes WisePlayRequest::body() const {
  ByteWriter w;
  w.raw("wiseplay_req_v1");
  w.var_bytes(device_id);
  w.var_bytes(nonce);
  w.u32(static_cast<std::uint32_t>(key_ids.size()));
  for (const media::KeyId& kid : key_ids) w.var_bytes(kid);
  return w.take();
}

Bytes WisePlayRequest::serialize() const {
  ByteWriter w;
  w.var_bytes(body());
  w.var_bytes(mac);
  return w.take();
}

WisePlayRequest WisePlayRequest::deserialize(BytesView data) {
  ByteReader outer(data);
  const Bytes body_raw = outer.var_bytes();
  WisePlayRequest out;
  out.mac = outer.var_bytes();
  ByteReader r{BytesView(body_raw)};
  r.raw(15);  // label
  out.device_id = r.var_bytes();
  out.nonce = r.var_bytes();
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) out.key_ids.push_back(r.var_bytes());
  return out;
}

Bytes WisePlayResponse::body() const {
  ByteWriter w;
  w.raw("wiseplay_res_v1");
  w.u8(granted ? 1 : 0);
  w.var_string(deny_reason);
  w.u32(static_cast<std::uint32_t>(keys.size()));
  for (const WrappedKey& key : keys) {
    w.var_bytes(key.kid);
    w.var_bytes(key.iv);
    w.var_bytes(key.wrapped);
  }
  return w.take();
}

Bytes WisePlayResponse::serialize() const {
  ByteWriter w;
  w.var_bytes(body());
  w.var_bytes(mac);
  return w.take();
}

WisePlayResponse WisePlayResponse::deserialize(BytesView data) {
  ByteReader outer(data);
  const Bytes body_raw = outer.var_bytes();
  WisePlayResponse out;
  out.mac = outer.var_bytes();
  ByteReader r{BytesView(body_raw)};
  r.raw(15);  // label
  out.granted = r.u8() != 0;
  out.deny_reason = r.var_string();
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    WrappedKey key;
    key.kid = r.var_bytes();
    key.iv = r.var_bytes();
    key.wrapped = r.var_bytes();
    out.keys.push_back(std::move(key));
  }
  return out;
}

WisePlayCdm::WisePlayCdm(hooking::SimProcess* host, widevine::Tee* tee, Bytes device_id,
                         Bytes device_secret, std::uint64_t seed)
    : host_(host),
      tee_(tee),
      device_id_(std::move(device_id)),
      device_secret_(std::move(device_secret)),
      rng_(seed) {
  if (host_ == nullptr) throw std::invalid_argument("WisePlayCdm: host process required");
}

hooking::ProcessMemory& WisePlayCdm::key_store() {
  return tee_ != nullptr ? tee_->secure_memory() : host_->memory();
}

void WisePlayCdm::emit(std::string_view function, BytesView input, BytesView output) const {
  host_->bus().emit(kWisePlayModule, function, input, output);
}

WisePlayCdm::Session& WisePlayCdm::session_for(SessionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) throw StateError("WisePlayCdm: unknown session");
  return it->second;
}

WisePlayCdm::SessionId WisePlayCdm::open_session() {
  const SessionId id = next_session_++;
  sessions_[id] = Session{};
  emit("wp_open_session", BytesView(), BytesView());
  return id;
}

void WisePlayCdm::close_session(SessionId session) {
  Session& s = session_for(session);
  for (const auto& [kid, region] : s.keys) key_store().unmap_region(region);
  sessions_.erase(session);
  emit("wp_close_session", BytesView(), BytesView());
}

Bytes WisePlayCdm::create_license_request(SessionId session,
                                          const std::vector<media::KeyId>& key_ids) {
  Session& s = session_for(session);
  WisePlayRequest request;
  request.device_id = device_id_;
  request.nonce = rng_.next_bytes(16);
  request.key_ids = key_ids;
  request.mac = crypto::hmac_sha256(device_secret_, request.body());
  s.nonce = request.nonce;
  const Bytes serialized = request.serialize();
  emit("wp_create_license_request", BytesView(), serialized);
  return serialized;
}

WisePlayResult WisePlayCdm::process_license_response(SessionId session, BytesView response_bytes) {
  Session& s = session_for(session);
  emit("wp_process_license_response", response_bytes, BytesView());
  WisePlayResponse response;
  try {
    response = WisePlayResponse::deserialize(response_bytes);
  } catch (const Error&) {
    return WisePlayResult::SignatureFailure;
  }
  if (!response.granted) return WisePlayResult::Denied;

  const WisePlaySessionKeys keys = derive_wiseplay_keys(device_secret_, s.nonce);
  if (!crypto::hmac_sha256_verify(keys.mac_key, response.body(), response.mac)) {
    return WisePlayResult::SignatureFailure;
  }
  const crypto::Aes enc(keys.enc_key);
  for (const WisePlayResponse::WrappedKey& wrapped : response.keys) {
    Bytes key;
    try {
      key = crypto::aes_cbc_decrypt_nopad(enc, wrapped.iv, wrapped.wrapped);
    } catch (const Error&) {
      return WisePlayResult::SignatureFailure;
    }
    const std::string kid_hex = hex_encode(wrapped.kid);
    const auto existing = s.keys.find(kid_hex);
    if (existing != s.keys.end()) {
      key_store().write_region(existing->second, key);
    } else {
      s.keys[kid_hex] =
          key_store().map_region(std::string(kWisePlayModule) + ":key:" + kid_hex, key);
    }
  }
  return WisePlayResult::Success;
}

WisePlayResult WisePlayCdm::decrypt_sample(SessionId session, const media::KeyId& kid,
                                           BytesView iv, BytesView ciphertext,
                                           Bytes& plaintext) {
  Session& s = session_for(session);
  emit("wp_decrypt", ciphertext, BytesView());
  const auto it = s.keys.find(hex_encode(kid));
  if (it == s.keys.end()) return WisePlayResult::KeyNotLoaded;
  const crypto::Aes aes(key_store().read_region(it->second));
  Bytes full_iv(iv.begin(), iv.end());
  full_iv.resize(crypto::kAesBlockSize, 0x00);
  // One ciphertext copy into the caller's buffer, then XOR in place — the
  // caller's capacity is reused across samples.
  plaintext.assign(ciphertext.begin(), ciphertext.end());
  crypto::aes_ctr_crypt_in_place(aes, full_iv, plaintext);
  return WisePlayResult::Success;
}

std::vector<media::KeyId> WisePlayCdm::loaded_key_ids(SessionId session) const {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) throw StateError("WisePlayCdm: unknown session");
  std::vector<media::KeyId> out;
  for (const auto& [kid_hex, region] : it->second.keys) out.push_back(hex_decode(kid_hex));
  return out;
}

void WisePlayLicenseServer::register_device(BytesView device_id, BytesView device_secret) {
  device_secrets_[hex_encode(device_id)] = Bytes(device_secret.begin(), device_secret.end());
}

void WisePlayLicenseServer::add_title(const media::PackagedTitle& title) {
  for (const media::ContentKey& key : title.keys) {
    keys_[hex_encode(key.kid)] = key.key;
  }
}

Bytes WisePlayLicenseServer::handle(BytesView request_bytes) {
  WisePlayResponse response;
  WisePlayRequest request;
  try {
    request = WisePlayRequest::deserialize(request_bytes);
  } catch (const Error&) {
    response.deny_reason = "malformed request";
    return response.serialize();
  }

  const auto secret = device_secrets_.find(hex_encode(request.device_id));
  if (secret == device_secrets_.end()) {
    response.deny_reason = "unknown device";
    return response.serialize();
  }
  if (!crypto::hmac_sha256_verify(secret->second, request.body(), request.mac)) {
    response.deny_reason = "bad request signature";
    return response.serialize();
  }
  const std::string nonce_key = hex_encode(request.device_id) + ":" + hex_encode(request.nonce);
  if (!seen_nonces_.insert(nonce_key).second) {
    response.deny_reason = "replayed nonce";
    return response.serialize();
  }

  const WisePlaySessionKeys keys = derive_wiseplay_keys(secret->second, request.nonce);
  const crypto::Aes enc(keys.enc_key);
  for (const media::KeyId& kid : request.key_ids) {
    const auto it = keys_.find(hex_encode(kid));
    if (it == keys_.end()) continue;
    WisePlayResponse::WrappedKey wrapped;
    wrapped.kid = kid;
    wrapped.iv = rng_.next_bytes(16);
    wrapped.wrapped = crypto::aes_cbc_encrypt_nopad(enc, wrapped.iv, it->second);
    response.keys.push_back(std::move(wrapped));
  }
  response.granted = true;
  response.mac = crypto::hmac_sha256(keys.mac_key, response.body());
  return response.serialize();
}

WisePlayIdentity make_wiseplay_identity(const std::string& serial, std::uint64_t seed) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : serial) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  Rng rng(seed ^ h ^ 0x57495345ull);  // "WISE"
  WisePlayIdentity identity;
  identity.device_id = rng.next_bytes(16);
  identity.device_secret = rng.next_bytes(32);
  return identity;
}

}  // namespace wideleak::wiseplay
