// Client-side retry with exponential backoff and seeded jitter. Backoff
// "sleeps" advance the ecosystem's SimClock, so retry timing is simulated
// deterministically instead of stalling the host thread.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/circuit_breaker.hpp"
#include "net/http.hpp"
#include "net/network.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"
#include "support/sim_clock.hpp"

namespace wideleak::net {

/// Attempt budget and backoff shape for one logical request.
struct RetryPolicy {
  int max_attempts = 4;                   // total tries, including the first
  std::uint64_t base_backoff_ticks = 8;   // backoff before retry n: base * 2^(n-1)
  std::uint64_t max_backoff_ticks = 128;  // cap on the exponential term
  /// Absolute SimClock deadline (0 = none). A retry whose backoff would
  /// land at or past the deadline is abandoned instead of slept: the
  /// remaining budget belongs to the cell, not to this request.
  std::uint64_t deadline_tick = 0;

  /// Backoff (before jitter) preceding retry number `retry` (1-based).
  std::uint64_t backoff_for(int retry) const;
};

/// Counters for the retry layer, flushed into campaign stats alongside the
/// license/provisioning server sinks.
struct RetryStats {
  std::uint64_t attempts = 0;  // exchanges issued (first tries + retries)
  std::uint64_t retries = 0;   // re-issues after a retryable failure
  std::uint64_t giveups = 0;   // budgets exhausted with no success
  std::uint64_t reopens = 0;   // retries that are reopen cycles: the service
                               // invalidated/refused held state (SessionInvalid,
                               // RateLimited) and the retry re-establishes it
};

/// Optional application-payload check run on transport-successful 2xx
/// responses: return ErrorCode::None to accept, or a code (typically
/// MalformedPayload) to classify the attempt as failed — a corrupted
/// license body is as retryable as a dropped connection, and only the
/// caller can tell the two response shapes apart.
using ResponseValidator = std::function<ErrorCode(const HttpResponse&)>;

/// Issue `req` against `host` through `client`, retrying failures whose
/// ErrorCode classifies as retryable (is_retryable) until the attempt
/// budget runs out. Backoff advances `clock` (if non-null) by
/// exponential-plus-jitter ticks, with jitter drawn from `rng` — one draw
/// per retry, so the rng stream position is a pure function of the retry
/// count (the draw happens even when the deadline then abandons the retry,
/// keeping the stream aligned across deadline configurations). An enabled
/// `breaker` gates every attempt: an open host fast-fails the whole request
/// with CircuitOpen before any attempt or draw. Returns the last exchange
/// result (successful or not).
TlsExchangeResult request_with_retry(TlsClient& client, const std::string& host,
                                     const HttpRequest& req, const RetryPolicy& policy,
                                     Rng& rng, support::SimClock* clock, RetryStats& stats,
                                     const ResponseValidator& validate = {},
                                     CircuitBreaker* breaker = nullptr);

}  // namespace wideleak::net
