#include "net/proxy.hpp"

#include "crypto/rsa.hpp"
#include "support/errors.hpp"

namespace wideleak::net {

MitmProxy::MitmProxy(const Network& network, Rng rng)
    : network_(network), rng_(std::move(rng)), ca_("wideleak-mitm-ca", rng_) {}

ServerIdentity& MitmProxy::forged_identity(const std::string& host) {
  const auto it = identities_.find(host);
  if (it != identities_.end()) return it->second;
  // Small keys keep per-host forgery cheap; strength is irrelevant here.
  auto [inserted, _] = identities_.emplace(host, make_server_identity(host, ca_, rng_, 512));
  return inserted->second;
}

ServerHello MitmProxy::hello(const std::string& host, BytesView /*client_random*/) {
  return ServerHello{.server_random = rng_.next_bytes(32),
                     .certificate = forged_identity(host).certificate};
}

Bytes MitmProxy::finish(const std::string& host, BytesView client_random,
                        BytesView server_random, BytesView encrypted_pre_master,
                        BytesView sealed_request) {
  // Terminate the victim's TLS with the forged identity.
  ServerIdentity& identity = forged_identity(host);
  const Bytes pre_master = crypto::rsa_oaep_decrypt(identity.keys, encrypted_pre_master);
  const SessionKeys keys = derive_session_keys(pre_master, client_random, server_random);
  TlsSession victim_session(keys.enc_key, keys.mac_key, keys.iv_seed);
  TlsSession victim_reply_session(keys.enc_key, keys.mac_key, keys.iv_seed);
  const HttpRequest request =
      HttpRequest::deserialize(victim_session.open(sealed_request));

  // Forward upstream with a fresh exchange. The proxy is an attacker tool:
  // it does not validate the upstream certificate, it just talks to it.
  TlsEndpoint& upstream = network_.find(host);
  const Bytes up_client_random = rng_.next_bytes(32);
  const ServerHello up_hello = upstream.hello(host, up_client_random);
  const Bytes up_pre_master = rng_.next_bytes(16);
  const Bytes up_encrypted =
      crypto::rsa_oaep_encrypt(up_hello.certificate.public_key, rng_, up_pre_master);
  const SessionKeys up_keys =
      derive_session_keys(up_pre_master, up_client_random, up_hello.server_random);
  TlsSession up_send(up_keys.enc_key, up_keys.mac_key, up_keys.iv_seed);
  TlsSession up_recv(up_keys.enc_key, up_keys.mac_key, up_keys.iv_seed);
  const Bytes up_sealed = up_send.seal(request.serialize());
  const Bytes up_response_sealed = upstream.finish(host, up_client_random,
                                                   up_hello.server_random, up_encrypted,
                                                   up_sealed);
  const HttpResponse response =
      HttpResponse::deserialize(up_recv.open(up_response_sealed));

  flows_.push_back(CapturedFlow{host, request, response});
  return victim_reply_session.seal(response.serialize());
}

}  // namespace wideleak::net
