#include "net/circuit_breaker.hpp"

namespace wideleak::net {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::Closed:
      return "closed";
    case BreakerState::Open:
      return "open";
    case BreakerState::HalfOpen:
      return "half-open";
  }
  return "unknown";
}

bool CircuitBreaker::allow(const std::string& host) {
  if (!config_.enabled()) return true;
  const std::lock_guard<std::mutex> lock(mutex_);
  Host& entry = hosts_[host];
  switch (entry.state) {
    case BreakerState::Closed:
      return true;
    case BreakerState::Open:
      if (now() >= entry.opened_at + config_.open_ticks) {
        entry.state = BreakerState::HalfOpen;
        entry.probe_successes = 0;
        ++stats_.probes;
        return true;
      }
      ++stats_.fast_fails;
      return false;
    case BreakerState::HalfOpen:
      ++stats_.probes;
      return true;
  }
  return true;
}

void CircuitBreaker::record(const std::string& host, bool success) {
  if (!config_.enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  Host& entry = hosts_[host];
  if (success) {
    entry.consecutive_failures = 0;
    if (entry.state == BreakerState::HalfOpen &&
        ++entry.probe_successes >= config_.close_successes) {
      entry.state = BreakerState::Closed;
      entry.probe_successes = 0;
      ++stats_.closes;
    }
    return;
  }
  if (entry.state == BreakerState::HalfOpen) {
    // A failed probe re-opens immediately: the host is still down, restart
    // the cool-off from now.
    entry.state = BreakerState::Open;
    entry.opened_at = now();
    entry.consecutive_failures = 0;
    ++stats_.opens;
    return;
  }
  if (entry.state == BreakerState::Closed &&
      ++entry.consecutive_failures >= config_.failure_threshold) {
    entry.state = BreakerState::Open;
    entry.opened_at = now();
    entry.consecutive_failures = 0;
    ++stats_.opens;
  }
}

BreakerState CircuitBreaker::state_of(const std::string& host) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = hosts_.find(host);
  return it == hosts_.end() ? BreakerState::Closed : it->second.state;
}

CircuitBreakerStats CircuitBreaker::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace wideleak::net
