#include "net/fault.hpp"

#include <algorithm>

#include "crypto/rsa.hpp"
#include "net/http.hpp"
#include "support/errors.hpp"

namespace wideleak::net {

const char* to_string(RequestClass klass) {
  switch (klass) {
    case RequestClass::Provisioning:
      return "provisioning";
    case RequestClass::License:
      return "license";
    case RequestClass::Manifest:
      return "manifest";
    case RequestClass::Auth:
      return "auth";
    case RequestClass::Segment:
      return "segment";
  }
  return "unknown";
}

RequestClass classify_path(const std::string& path) {
  if (path == "/provision") return RequestClass::Provisioning;
  if (path == "/license" || path == "/custom_license") return RequestClass::License;
  if (path == "/manifest") return RequestClass::Manifest;
  if (path == "/login") return RequestClass::Auth;
  return RequestClass::Segment;
}

namespace {

FaultRates max_merge(FaultRates a, const FaultRates& b) {
  a.drop_pm = std::max(a.drop_pm, b.drop_pm);
  a.truncate_pm = std::max(a.truncate_pm, b.truncate_pm);
  a.http_5xx_pm = std::max(a.http_5xx_pm, b.http_5xx_pm);
  a.corrupt_pm = std::max(a.corrupt_pm, b.corrupt_pm);
  a.cert_swap_pm = std::max(a.cert_swap_pm, b.cert_swap_pm);
  if (b.latency_pm > a.latency_pm) {
    a.latency_pm = b.latency_pm;
    a.latency_ticks = b.latency_ticks;
  }
  return a;
}

}  // namespace

bool FaultPlan::applies_to(const std::string& host) const {
  for (const FaultRule& rule : rules) {
    if (host.starts_with(rule.host_prefix) && rule.rates.any()) return true;
  }
  return false;
}

FaultRates FaultPlan::rates_for(const std::string& host, RequestClass klass) const {
  FaultRates out;
  for (const FaultRule& rule : rules) {
    if (!host.starts_with(rule.host_prefix)) continue;
    if (rule.request_class && *rule.request_class != klass) continue;
    out = max_merge(out, rule.rates);
  }
  return out;
}

FaultRates FaultPlan::host_rates(const std::string& host) const {
  FaultRates out;
  for (const FaultRule& rule : rules) {
    if (!host.starts_with(rule.host_prefix)) continue;
    out = max_merge(out, rule.rates);
  }
  return out;
}

const char* to_string(FaultProfile profile) {
  switch (profile) {
    case FaultProfile::None:
      return "none";
    case FaultProfile::FlakyCdn:
      return "flaky-cdn";
    case FaultProfile::FlakyLicense:
      return "flaky-license";
    case FaultProfile::ByzantineLicense:
      return "byzantine-license";
  }
  return "unknown";
}

std::optional<FaultProfile> fault_profile_from_string(const std::string& name) {
  if (name == "none") return FaultProfile::None;
  if (name == "flaky-cdn") return FaultProfile::FlakyCdn;
  if (name == "flaky-license") return FaultProfile::FlakyLicense;
  if (name == "byzantine-license") return FaultProfile::ByzantineLicense;
  return std::nullopt;
}

FaultPlan fault_plan_for(FaultProfile profile) {
  FaultPlan plan;
  plan.name = to_string(profile);
  switch (profile) {
    case FaultProfile::None:
      break;
    case FaultProfile::FlakyCdn:
      // Segment fetches stall, drop and truncate; the control plane is fine.
      plan.rules.push_back(FaultRule{
          .host_prefix = "cdn.",
          .request_class = RequestClass::Segment,
          .rates = {.drop_pm = 280, .truncate_pm = 280, .latency_pm = 200, .latency_ticks = 15}});
      break;
    case FaultProfile::FlakyLicense:
      // License/provisioning answer 5xx or drop often enough that the retry
      // budget occasionally runs out (Partial cells), but mostly recovers.
      plan.rules.push_back(FaultRule{.host_prefix = "api.",
                                     .request_class = RequestClass::License,
                                     .rates = {.drop_pm = 400, .http_5xx_pm = 400}});
      plan.rules.push_back(FaultRule{.host_prefix = "api.",
                                     .request_class = RequestClass::Provisioning,
                                     .rates = {.drop_pm = 300, .http_5xx_pm = 350}});
      break;
    case FaultProfile::ByzantineLicense:
      // The license server actively misbehaves: scrambled payloads plus the
      // occasional rogue certificate in the hello (terminal, no retry).
      plan.rules.push_back(FaultRule{.host_prefix = "api.",
                                     .request_class = RequestClass::License,
                                     .rates = {.http_5xx_pm = 80, .corrupt_pm = 200}});
      plan.rules.push_back(
          FaultRule{.host_prefix = "api.", .request_class = std::nullopt,
                    .rates = {.cert_swap_pm = 50}});
      break;
  }
  return plan;
}

FaultyEndpoint::FaultyEndpoint(std::shared_ptr<TlsEndpoint> inner, ServerIdentity identity,
                               FaultPlan plan, std::string host, std::uint64_t seed,
                               support::SimClock* clock)
    : inner_(std::move(inner)),
      identity_(std::move(identity)),
      plan_(std::move(plan)),
      host_(std::move(host)),
      rng_(seed),
      rogue_rng_(derive_stream_seed(seed, "rogue-identity")),
      clock_(clock) {}

const ServerIdentity& FaultyEndpoint::rogue_identity() {
  if (!rogue_) {
    // Self-made CA nobody trusts: the swap surfaces client-side as
    // UntrustedCertificate, exactly like a MITM with an unknown root.
    CertificateAuthority rogue_ca("rogue-ca", rogue_rng_, 512);
    rogue_ = make_server_identity(host_, rogue_ca, rogue_rng_, 512);
  }
  return *rogue_;
}

ServerHello FaultyEndpoint::hello(const std::string& host, BytesView client_random) {
  // Always forward first so the inner server's rng stream position stays a
  // pure function of the hello count, whatever faults fire.
  ServerHello genuine = inner_->hello(host, client_random);
  const std::uint64_t d_swap = rng_.next_u64() % 1000;
  // The request path is unknown at hello time, so cert swap keys off the
  // host-level maximum across classes.
  if (d_swap < plan_.host_rates(host_).cert_swap_pm) {
    stats_.cert_swaps++;
    genuine.certificate = rogue_identity().certificate;
  }
  return genuine;
}

Bytes FaultyEndpoint::finish(const std::string& host, BytesView client_random,
                             BytesView server_random, BytesView encrypted_pre_master,
                             BytesView sealed_request) {
  stats_.exchanges++;

  // Terminate TLS with our copy of the server identity (the MitmProxy
  // idiom) so the request path — and thus the request class — is visible.
  const Bytes pre_master = crypto::rsa_oaep_decrypt(identity_.keys, encrypted_pre_master);
  const SessionKeys keys = derive_session_keys(pre_master, client_random, server_random);
  TlsSession request_session(keys.enc_key, keys.mac_key, keys.iv_seed);
  const HttpRequest request = HttpRequest::deserialize(request_session.open(sealed_request));
  const FaultRates rates = plan_.rates_for(host_, classify_path(request.path));

  // Fixed draw discipline: exactly five draws per finish, in this order,
  // regardless of which faults fire — the stream position stays a pure
  // function of the request sequence.
  const std::uint64_t d_latency = rng_.next_u64() % 1000;
  const std::uint64_t d_drop = rng_.next_u64() % 1000;
  const std::uint64_t d_5xx = rng_.next_u64() % 1000;
  const std::uint64_t d_truncate = rng_.next_u64() % 1000;
  const std::uint64_t d_corrupt = rng_.next_u64() % 1000;

  if (d_latency < rates.latency_pm) {
    stats_.latency_injections++;
    // Injected latency is a *wait*: sleep() surfaces the deadline to the
    // campaign's timer wheel so the stall can overlap other cells' work.
    if (clock_ != nullptr) clock_->sleep(rates.latency_ticks);
  }
  if (d_drop < rates.drop_pm) {
    stats_.drops++;
    // Stringifies the path *class* (an enum), not request content. wl-lint: taint-ok
    throw NetworkError("fault: connection to " + host_ + " dropped (" +
                       to_string(classify_path(request.path)) + " request)");
  }
  if (d_5xx < rates.http_5xx_pm) {
    stats_.http_5xx++;
    TlsSession reply_session(keys.enc_key, keys.mac_key, keys.iv_seed);
    return reply_session.seal(http_error(503, "fault: injected server error").serialize());
  }

  Bytes sealed_response = inner_->finish(host, client_random, server_random,
                                         encrypted_pre_master, sealed_request);
  if (d_truncate < rates.truncate_pm) {
    stats_.truncations++;
    sealed_response.resize(sealed_response.size() / 2);
    return sealed_response;
  }
  if (d_corrupt < rates.corrupt_pm) {
    stats_.corruptions++;
    // Scramble the application payload but re-seal correctly: the transport
    // authenticates, the app-level deserializer chokes.
    TlsSession open_session(keys.enc_key, keys.mac_key, keys.iv_seed);
    TlsSession reseal_session(keys.enc_key, keys.mac_key, keys.iv_seed);
    HttpResponse response = HttpResponse::deserialize(open_session.open(sealed_response));
    for (auto& byte : response.body) byte ^= 0x5A;
    return reseal_session.seal(response.serialize());
  }
  return sealed_response;
}

}  // namespace wideleak::net
