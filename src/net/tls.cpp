#include "net/tls.hpp"

#include "crypto/hmac.hpp"
#include "crypto/modes.hpp"
#include "crypto/sha256.hpp"
#include "support/byte_io.hpp"
#include "support/errors.hpp"

namespace wideleak::net {

Bytes Certificate::signed_payload() const {
  ByteWriter w;
  w.var_string(subject);
  w.var_string(issuer);
  w.var_bytes(public_key.serialize());
  return w.take();
}

Bytes Certificate::serialize() const {
  ByteWriter w;
  w.var_string(subject);
  w.var_string(issuer);
  w.var_bytes(public_key.serialize());
  w.var_bytes(signature);
  return w.take();
}

Certificate Certificate::deserialize(BytesView data) {
  ByteReader r(data);
  Certificate cert;
  cert.subject = r.var_string();
  cert.issuer = r.var_string();
  cert.public_key = crypto::RsaPublicKey::deserialize(r.var_bytes());
  cert.signature = r.var_bytes();
  return cert;
}

CertificateAuthority::CertificateAuthority(std::string name, Rng& rng, std::size_t key_bits)
    : name_(std::move(name)), keys_(crypto::rsa_generate(rng, key_bits)), rng_(rng.fork()) {}

Certificate CertificateAuthority::issue(const std::string& subject,
                                        const crypto::RsaPublicKey& key) const {
  Certificate cert;
  cert.subject = subject;
  cert.issuer = name_;
  cert.public_key = key;
  cert.signature = crypto::rsa_pkcs1_sign(keys_, cert.signed_payload());
  return cert;
}

void TrustStore::add(const CertificateAuthority& ca) { roots_[ca.name()] = ca.public_key(); }

void TrustStore::add(std::string issuer, crypto::RsaPublicKey key) {
  roots_[std::move(issuer)] = std::move(key);
}

bool TrustStore::validate(const Certificate& cert) const {
  const auto it = roots_.find(cert.issuer);
  if (it == roots_.end()) return false;
  return crypto::rsa_pkcs1_verify(it->second, cert.signed_payload(), cert.signature);
}

void PinStore::pin(const std::string& host, Bytes fingerprint) {
  pins_[host] = std::move(fingerprint);
}

bool PinStore::has_pin(const std::string& host) const { return pins_.contains(host); }

bool PinStore::check(const std::string& host, const Certificate& cert) const {
  const auto it = pins_.find(host);
  if (it == pins_.end()) return true;  // unpinned host: trust store decides
  return constant_time_equal(it->second, cert.pin_value());
}

ServerIdentity make_server_identity(const std::string& host, const CertificateAuthority& ca,
                                    Rng& rng, std::size_t key_bits) {
  ServerIdentity identity;
  identity.keys = crypto::rsa_generate(rng, key_bits);
  identity.certificate = ca.issue(host, identity.keys.pub);
  return identity;
}

SessionKeys derive_session_keys(BytesView pre_master, BytesView client_random,
                                BytesView server_random) {
  const Bytes transcript = concat({client_random, server_random});
  SessionKeys keys;
  keys.enc_key = crypto::hmac_sha256(pre_master, concat({to_bytes("enc"), BytesView(transcript)}));
  keys.enc_key.resize(16);
  keys.mac_key = crypto::hmac_sha256(pre_master, concat({to_bytes("mac"), BytesView(transcript)}));
  keys.iv_seed = crypto::hmac_sha256(pre_master, concat({to_bytes("iv"), BytesView(transcript)}));
  keys.iv_seed.resize(8);
  return keys;
}

TlsSession::TlsSession(Bytes enc_key, Bytes mac_key, Bytes iv_seed)
    : enc_key_(std::move(enc_key)), mac_key_(std::move(mac_key)), iv_seed_(std::move(iv_seed)) {}

namespace {

Bytes record_iv(BytesView seed, std::uint64_t seq) {
  ByteWriter w;
  w.raw(seed);
  w.u64(seq);
  return w.take();
}

}  // namespace

Bytes TlsSession::seal(BytesView plaintext) {
  const crypto::Aes aes(enc_key_);
  const Bytes iv = record_iv(iv_seed_, send_seq_);
  const Bytes ciphertext = crypto::aes_ctr_crypt(aes, iv, plaintext);
  ByteWriter w;
  w.u64(send_seq_);
  w.var_bytes(ciphertext);
  Bytes record = w.take();
  const Bytes tag = crypto::hmac_sha256(mac_key_, record);
  record.insert(record.end(), tag.begin(), tag.end());
  ++send_seq_;
  return record;
}

Bytes TlsSession::open(BytesView record) {
  if (record.size() < crypto::kSha256DigestSize + 12) {
    throw CryptoError("tls: record too short");
  }
  const std::size_t body_len = record.size() - crypto::kSha256DigestSize;
  const BytesView body(record.data(), body_len);
  const BytesView tag(record.data() + body_len, crypto::kSha256DigestSize);
  if (!crypto::hmac_sha256_verify(mac_key_, body, tag)) {
    throw CryptoError("tls: record MAC failure");
  }
  ByteReader r(body);
  const std::uint64_t seq = r.u64();
  if (seq != recv_seq_) throw CryptoError("tls: record replay/reorder");
  ++recv_seq_;
  const Bytes ciphertext = r.var_bytes();
  const crypto::Aes aes(enc_key_);
  return crypto::aes_ctr_crypt(aes, record_iv(iv_seed_, seq), ciphertext);
}

std::string to_string(HandshakeResult result) {
  switch (result) {
    case HandshakeResult::Ok: return "ok";
    case HandshakeResult::UntrustedCertificate: return "untrusted certificate";
    case HandshakeResult::HostnameMismatch: return "hostname mismatch";
    case HandshakeResult::PinMismatch: return "certificate pin mismatch";
  }
  return "?";
}

}  // namespace wideleak::net
