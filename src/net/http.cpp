#include "net/http.hpp"

#include "support/byte_io.hpp"

namespace wideleak::net {

namespace {

void write_headers(ByteWriter& w, const std::map<std::string, std::string>& headers) {
  w.u32(static_cast<std::uint32_t>(headers.size()));
  for (const auto& [key, value] : headers) {
    w.var_string(key);
    w.var_string(value);
  }
}

std::size_t headers_size(const std::map<std::string, std::string>& headers) {
  std::size_t total = 4;
  for (const auto& [key, value] : headers) total += 4 + key.size() + 4 + value.size();
  return total;
}

std::map<std::string, std::string> read_headers(ByteReader& r) {
  std::map<std::string, std::string> headers;
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string key = r.var_string();
    headers[std::move(key)] = r.var_string();
  }
  return headers;
}

}  // namespace

Bytes HttpRequest::serialize() const {
  ByteWriter w;
  // One up-front reserve instead of geometric realloc churn while appending.
  w.reserve(4 + method.size() + 4 + path.size() + headers_size(headers) + 4 + body.size());
  w.var_string(method);
  w.var_string(path);
  write_headers(w, headers);
  w.var_bytes(body);
  return w.take();
}

HttpRequest HttpRequest::deserialize(BytesView data) {
  ByteReader r(data);
  HttpRequest req;
  req.method = r.var_string();
  req.path = r.var_string();
  req.headers = read_headers(r);
  req.body = r.var_bytes();
  return req;
}

Bytes HttpResponse::serialize() const {
  ByteWriter w;
  w.reserve(4 + headers_size(headers) + 4 + body.size());
  w.u32(static_cast<std::uint32_t>(status));
  write_headers(w, headers);
  w.var_bytes(body);
  return w.take();
}

HttpResponse HttpResponse::deserialize(BytesView data) {
  ByteReader r(data);
  HttpResponse res;
  res.status = static_cast<int>(r.u32());
  res.headers = read_headers(r);
  res.body = r.var_bytes();
  return res;
}

HttpResponse http_ok(Bytes body) { return HttpResponse{.status = 200, .headers = {}, .body = std::move(body)}; }

HttpResponse http_ok_text(const std::string& body) { return http_ok(to_bytes(body)); }

HttpResponse http_error(int status, const std::string& reason) {
  return HttpResponse{.status = status, .headers = {{"reason", reason}}, .body = {}};
}

}  // namespace wideleak::net
