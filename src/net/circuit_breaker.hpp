// Per-host circuit breaker for the client request path. When a host fails
// `failure_threshold` times in a row the breaker opens and subsequent
// requests fast-fail with ErrorCode::CircuitOpen instead of burning the
// retry budget against a crashed shard. After `open_ticks` of SimClock time
// the breaker admits one probe (half-open); `close_successes` consecutive
// probe successes close it again, any probe failure re-opens it.
//
// Determinism: state transitions are a pure function of the request/result
// sequence and SimClock timestamps — no rng, no wall clock — so a campaign
// cell's breaker behaves identically at any worker count and in either
// scheduler mode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "support/annotations.hpp"
#include "support/sim_clock.hpp"

namespace wideleak::net {

enum class BreakerState { Closed, Open, HalfOpen };

const char* to_string(BreakerState state);

struct CircuitBreakerConfig {
  /// Consecutive failures on one host that trip the breaker. 0 disables the
  /// breaker entirely (the default — behaviour-neutral wiring).
  std::size_t failure_threshold = 0;
  /// SimClock ticks the breaker stays open before admitting a probe.
  std::uint64_t open_ticks = 64;
  /// Consecutive half-open successes required to close again.
  std::size_t close_successes = 1;

  bool enabled() const { return failure_threshold != 0; }
};

/// Cumulative transition counters across all hosts (snapshot).
struct CircuitBreakerStats {
  std::uint64_t opens = 0;       // Closed/HalfOpen -> Open transitions
  std::uint64_t closes = 0;      // HalfOpen -> Closed transitions
  std::uint64_t fast_fails = 0;  // requests refused while Open
  std::uint64_t probes = 0;      // requests admitted in HalfOpen
};

/// Thread-safe per-host breaker bank. One instance per ecosystem; the lock
/// is uncontended in campaign use (each cell owns a private ecosystem) but
/// the annotations keep the cross-cell sharing option honest.
class CircuitBreaker {
 public:
  CircuitBreaker(const CircuitBreakerConfig& config, const support::SimClock* clock)
      : config_(config), clock_(clock) {}

  bool enabled() const { return config_.enabled(); }

  /// Gate one request. True = issue it (Closed, or admitted as a probe);
  /// false = fast-fail with CircuitOpen. May transition Open -> HalfOpen
  /// when the probe timer has elapsed.
  bool allow(const std::string& host);

  /// Report the outcome of an issued request (transport + validation).
  void record(const std::string& host, bool success);

  BreakerState state_of(const std::string& host) const;
  CircuitBreakerStats stats() const;

 private:
  struct Host {
    BreakerState state = BreakerState::Closed;
    std::size_t consecutive_failures = 0;
    std::size_t probe_successes = 0;
    std::uint64_t opened_at = 0;
  };

  std::uint64_t now() const { return clock_ != nullptr ? clock_->now() : 0; }

  CircuitBreakerConfig config_;
  const support::SimClock* clock_ = nullptr;

  mutable std::mutex mutex_;
  // std::map, not unordered_map: stats iteration order (if ever rendered
  // per-host) stays deterministic.
  std::map<std::string, Host> hosts_ WL_GUARDED_BY(mutex_);
  CircuitBreakerStats stats_ WL_GUARDED_BY(mutex_);
};

}  // namespace wideleak::net
