// Simulated TLS: certificates, a one-round-trip handshake and authenticated
// record protection. Structured like the real thing where the study needs
// it to be:
//
//   - servers present CA-signed certificates bound to a hostname,
//   - clients validate against a trust store, then apply certificate
//     pinning (pin = SHA-256 of the server public key),
//   - a MITM with a user-installed CA passes trust-store validation but
//     fails pinning — unless the pin check is hooked out, which is exactly
//     the "SSL repinning with Frida" step of the paper's methodology.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "crypto/rsa.hpp"
#include "net/http.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace wideleak::net {

/// An X.509-like certificate: subject hostname + public key + CA signature.
struct Certificate {
  std::string subject;
  crypto::RsaPublicKey public_key;
  std::string issuer;
  Bytes signature;  // CA's PKCS#1 signature over (subject || issuer || key)

  Bytes signed_payload() const;
  Bytes serialize() const;
  static Certificate deserialize(BytesView data);

  /// SHA-256 of the public key — the value pin stores hold.
  Bytes pin_value() const { return public_key.fingerprint(); }
};

/// A certificate authority that can issue host certificates.
class CertificateAuthority {
 public:
  CertificateAuthority(std::string name, Rng& rng, std::size_t key_bits = 1024);

  Certificate issue(const std::string& subject, const crypto::RsaPublicKey& key) const;

  const std::string& name() const { return name_; }
  const crypto::RsaPublicKey& public_key() const { return keys_.pub; }

 private:
  std::string name_;
  crypto::RsaKeyPair keys_;
  mutable Rng rng_;
};

/// Client-side set of trusted CAs (system roots + user-installed ones).
class TrustStore {
 public:
  void add(const CertificateAuthority& ca);
  void add(std::string issuer, crypto::RsaPublicKey key);
  bool validate(const Certificate& cert) const;

 private:
  std::map<std::string, crypto::RsaPublicKey> roots_;
};

/// Pin store: hostname -> expected public-key fingerprint.
class PinStore {
 public:
  void pin(const std::string& host, Bytes fingerprint);
  bool has_pin(const std::string& host) const;
  bool check(const std::string& host, const Certificate& cert) const;

 private:
  std::map<std::string, Bytes> pins_;
};

/// A server identity: host certificate + matching private key.
struct ServerIdentity {
  Certificate certificate;
  crypto::RsaKeyPair keys;
};

/// Create a fresh identity signed by `ca`.
ServerIdentity make_server_identity(const std::string& host, const CertificateAuthority& ca,
                                    Rng& rng, std::size_t key_bits = 1024);

/// An established, symmetric-key protected channel.
class TlsSession {
 public:
  TlsSession(Bytes enc_key, Bytes mac_key, Bytes iv_seed);

  Bytes seal(BytesView plaintext);
  Bytes open(BytesView record);  ///< Throws CryptoError on MAC failure.

 private:
  Bytes enc_key_;
  Bytes mac_key_;
  Bytes iv_seed_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
};

/// Outcome of a client handshake attempt.
enum class HandshakeResult {
  Ok,
  UntrustedCertificate,  // chain does not anchor in the trust store
  HostnameMismatch,
  PinMismatch,           // certificate valid but violates a stored pin
};

std::string to_string(HandshakeResult result);

/// Derive the two session halves (client and server run this on the same
/// inputs). Exposed for the proxy, which terminates TLS on both sides.
struct SessionKeys {
  Bytes enc_key;
  Bytes mac_key;
  Bytes iv_seed;
};
SessionKeys derive_session_keys(BytesView pre_master, BytesView client_random,
                                BytesView server_random);

}  // namespace wideleak::net
