#include "net/network.hpp"

#include "crypto/rsa.hpp"
#include "support/errors.hpp"

namespace wideleak::net {

TlsServer::TlsServer(ServerIdentity identity, HttpHandler handler, std::uint64_t seed)
    : identity_(std::move(identity)), handler_(std::move(handler)), rng_(seed) {}

ServerHello TlsServer::hello(const std::string& /*host*/, BytesView /*client_random*/) {
  return ServerHello{.server_random = rng_.next_bytes(32),
                     .certificate = identity_.certificate};
}

Bytes TlsServer::finish(const std::string& /*host*/, BytesView client_random,
                        BytesView server_random, BytesView encrypted_pre_master,
                        BytesView sealed_request) {
  const Bytes pre_master = crypto::rsa_oaep_decrypt(identity_.keys, encrypted_pre_master);
  const SessionKeys keys = derive_session_keys(pre_master, client_random, server_random);
  TlsSession session(keys.enc_key, keys.mac_key, keys.iv_seed);
  const Bytes request_plain = session.open(sealed_request);
  const HttpResponse response = handler_(HttpRequest::deserialize(request_plain));
  return session.seal(response.serialize());
}

void Network::add_server(const std::string& host, std::shared_ptr<TlsServer> server) {
  servers_[host] = std::move(server);
}

TlsServer& Network::find(const std::string& host) const {
  const auto it = servers_.find(host);
  if (it == servers_.end()) throw NetworkError("network: unknown host " + host);
  return *it->second;
}

bool Network::has_host(const std::string& host) const { return servers_.contains(host); }

TlsClient::TlsClient(const Network& network, TrustStore trust, Rng rng)
    : network_(network), trust_(std::move(trust)), rng_(std::move(rng)) {}

void TlsClient::set_pin_check_override(PinCheckOverride override_fn) {
  pin_override_ = std::move(override_fn);
}

TlsExchangeResult TlsClient::request(const std::string& host, const HttpRequest& req) {
  TlsEndpoint& endpoint = proxy_ != nullptr ? *proxy_ : static_cast<TlsEndpoint&>(network_.find(host));

  const Bytes client_random = rng_.next_bytes(32);
  const ServerHello hello = endpoint.hello(host, client_random);

  if (!trust_.validate(hello.certificate)) {
    return {.handshake = HandshakeResult::UntrustedCertificate, .response = std::nullopt};
  }
  if (hello.certificate.subject != host) {
    return {.handshake = HandshakeResult::HostnameMismatch, .response = std::nullopt};
  }
  bool pin_ok = pins_.check(host, hello.certificate);
  if (pin_override_) pin_ok = pin_override_(host, hello.certificate, pin_ok);
  if (!pin_ok) {
    return {.handshake = HandshakeResult::PinMismatch, .response = std::nullopt};
  }

  const Bytes pre_master = rng_.next_bytes(16);
  const Bytes encrypted_pre_master =
      crypto::rsa_oaep_encrypt(hello.certificate.public_key, rng_, pre_master);
  const SessionKeys keys = derive_session_keys(pre_master, client_random, hello.server_random);
  TlsSession send_session(keys.enc_key, keys.mac_key, keys.iv_seed);
  TlsSession recv_session(keys.enc_key, keys.mac_key, keys.iv_seed);

  const Bytes sealed_request = send_session.seal(req.serialize());
  const Bytes sealed_response = endpoint.finish(host, client_random, hello.server_random,
                                                encrypted_pre_master, sealed_request);
  const Bytes response_plain = recv_session.open(sealed_response);
  return {.handshake = HandshakeResult::Ok,
          .response = HttpResponse::deserialize(response_plain)};
}

}  // namespace wideleak::net
