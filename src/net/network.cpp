#include "net/network.hpp"

#include "crypto/rsa.hpp"
#include "support/errors.hpp"

namespace wideleak::net {

TlsServer::TlsServer(ServerIdentity identity, HttpHandler handler, std::uint64_t seed)
    : identity_(std::move(identity)), handler_(std::move(handler)), rng_(seed) {}

ServerHello TlsServer::hello(const std::string& /*host*/, BytesView /*client_random*/) {
  return ServerHello{.server_random = rng_.next_bytes(32),
                     .certificate = identity_.certificate};
}

Bytes TlsServer::finish(const std::string& /*host*/, BytesView client_random,
                        BytesView server_random, BytesView encrypted_pre_master,
                        BytesView sealed_request) {
  const Bytes pre_master = crypto::rsa_oaep_decrypt(identity_.keys, encrypted_pre_master);
  const SessionKeys keys = derive_session_keys(pre_master, client_random, server_random);
  TlsSession session(keys.enc_key, keys.mac_key, keys.iv_seed);
  const Bytes request_plain = session.open(sealed_request);
  const HttpResponse response = handler_(HttpRequest::deserialize(request_plain));
  return session.seal(response.serialize());
}

void Network::add_server(const std::string& host, std::shared_ptr<TlsServer> server) {
  Certificate certificate = server->certificate();
  servers_[host] = Entry{std::move(server), std::move(certificate)};
}

void Network::add_endpoint(const std::string& host, std::shared_ptr<TlsEndpoint> endpoint,
                           Certificate certificate) {
  servers_[host] = Entry{std::move(endpoint), std::move(certificate)};
}

TlsEndpoint& Network::find(const std::string& host) const {
  const auto it = servers_.find(host);
  if (it == servers_.end()) throw NetworkError("network: unknown host " + host);
  return *it->second.endpoint;
}

const Certificate& Network::certificate_of(const std::string& host) const {
  const auto it = servers_.find(host);
  if (it == servers_.end()) throw NetworkError("network: unknown host " + host);
  return it->second.certificate;
}

bool Network::has_host(const std::string& host) const { return servers_.contains(host); }

TlsClient::TlsClient(const Network& network, TrustStore trust, Rng rng)
    : network_(network), trust_(std::move(trust)), rng_(std::move(rng)) {}

void TlsClient::set_pin_check_override(PinCheckOverride override_fn) {
  pin_override_ = std::move(override_fn);
}

namespace {

TlsExchangeResult handshake_failure(HandshakeResult verdict, const std::string& host) {
  return {.handshake = verdict,
          .response = std::nullopt,
          .error = ErrorCode::HandshakeFailed,
          .error_detail = to_string(verdict) + " for " + host};
}

}  // namespace

TlsExchangeResult TlsClient::request(const std::string& host, const HttpRequest& req) {
  if (proxy_ == nullptr && !network_.has_host(host)) {
    return {.handshake = HandshakeResult::Ok,
            .response = std::nullopt,
            .error = ErrorCode::HostUnreachable,
            .error_detail = "network: unknown host " + host};
  }
  TlsEndpoint& endpoint = proxy_ != nullptr ? *proxy_ : network_.find(host);

  try {
    const Bytes client_random = rng_.next_bytes(32);
    const ServerHello hello = endpoint.hello(host, client_random);

    if (!trust_.validate(hello.certificate)) {
      return handshake_failure(HandshakeResult::UntrustedCertificate, host);
    }
    if (hello.certificate.subject != host) {
      return handshake_failure(HandshakeResult::HostnameMismatch, host);
    }
    bool pin_ok = pins_.check(host, hello.certificate);
    if (pin_override_) pin_ok = pin_override_(host, hello.certificate, pin_ok);
    if (!pin_ok) {
      return handshake_failure(HandshakeResult::PinMismatch, host);
    }

    const Bytes pre_master = rng_.next_bytes(16);
    const Bytes encrypted_pre_master =
        crypto::rsa_oaep_encrypt(hello.certificate.public_key, rng_, pre_master);
    const SessionKeys keys = derive_session_keys(pre_master, client_random, hello.server_random);
    TlsSession send_session(keys.enc_key, keys.mac_key, keys.iv_seed);
    TlsSession recv_session(keys.enc_key, keys.mac_key, keys.iv_seed);

    const Bytes sealed_request = send_session.seal(req.serialize());
    const Bytes sealed_response = endpoint.finish(host, client_random, hello.server_random,
                                                  encrypted_pre_master, sealed_request);
    const Bytes response_plain = recv_session.open(sealed_response);

    TlsExchangeResult result;
    result.response = HttpResponse::deserialize(response_plain);
    if (result.response->status >= 500) {
      result.error = ErrorCode::HttpServerError;
      result.error_detail = "http " + std::to_string(result.response->status) + " from " + host;
    } else if (result.response->status >= 400) {
      result.error = ErrorCode::HttpClientError;
      result.error_detail = "http " + std::to_string(result.response->status) + " from " + host;
    }
    return result;
  } catch (const NetworkError& e) {
    return {.handshake = HandshakeResult::Ok,
            .response = std::nullopt,
            .error = ErrorCode::ConnectionDropped,
            .error_detail = e.what()};
  } catch (const CryptoError& e) {
    return {.handshake = HandshakeResult::Ok,
            .response = std::nullopt,
            .error = ErrorCode::TransportCorrupt,
            .error_detail = e.what()};
  } catch (const ParseError& e) {
    return {.handshake = HandshakeResult::Ok,
            .response = std::nullopt,
            .error = ErrorCode::TransportCorrupt,
            .error_detail = e.what()};
  }
}

}  // namespace wideleak::net
