// HTTP-like request/response messages. Transport is the simulated TLS layer;
// these are just the structured payloads OTT backends, CDNs and license
// servers exchange.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "support/bytes.hpp"

namespace wideleak::net {

struct HttpRequest {
  std::string method = "GET";
  std::string path = "/";
  std::map<std::string, std::string> headers;
  Bytes body;

  Bytes serialize() const;
  static HttpRequest deserialize(BytesView data);
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  Bytes body;

  bool ok() const { return status >= 200 && status < 300; }

  Bytes serialize() const;
  static HttpResponse deserialize(BytesView data);
};

/// Application-layer request handler a server mounts.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Convenience constructors.
HttpResponse http_ok(Bytes body);
HttpResponse http_ok_text(const std::string& body);
HttpResponse http_error(int status, const std::string& reason);

}  // namespace wideleak::net
