// Deterministic fault injection for the in-process internet.
//
// A FaultyEndpoint wraps a real TlsEndpoint and, driven by a FaultPlan,
// injects the failure modes real OTT backends exhibit (WideLeak §IV ran
// repeated captures precisely because production endpoints stall, drop
// TLS sessions and return malformed payloads): connection drops,
// truncated records, HTTP 5xx, added latency, corrupted application
// payloads and swapped certificates. All randomness comes from a seed
// derived with derive_stream_seed, and every exchange consumes a fixed
// number of draws, so a given (seed, plan) replays bit-identically at any
// worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/tls.hpp"
#include "support/rng.hpp"
#include "support/sim_clock.hpp"

namespace wideleak::net {

/// Coarse request taxonomy the fault plan rates key off. Classification is
/// by path, after the injector terminates TLS on the client's exchange.
enum class RequestClass {
  Provisioning,  // /provision
  License,       // /license, /custom_license
  Manifest,      // /manifest
  Auth,          // /login
  Segment,       // CDN file fetches (everything else)
};

const char* to_string(RequestClass klass);
RequestClass classify_path(const std::string& path);

/// Per-mille probabilities for each fault kind. 0 = never, 1000 = always.
struct FaultRates {
  std::uint32_t drop_pm = 0;       // connection dropped mid-exchange
  std::uint32_t truncate_pm = 0;   // sealed response truncated on the wire
  std::uint32_t http_5xx_pm = 0;   // origin answers 503
  std::uint32_t corrupt_pm = 0;    // response body scrambled (transport intact)
  std::uint32_t cert_swap_pm = 0;  // rogue certificate presented in the hello
  std::uint32_t latency_pm = 0;    // SimClock advanced by latency_ticks
  std::uint64_t latency_ticks = 0;

  bool any() const {
    return drop_pm || truncate_pm || http_5xx_pm || corrupt_pm || cert_swap_pm || latency_pm;
  }
};

/// One plan entry: hosts whose name starts with `host_prefix`, optionally
/// narrowed to a single request class (nullopt = all classes).
struct FaultRule {
  std::string host_prefix;
  std::optional<RequestClass> request_class;
  FaultRates rates;
};

/// A named set of fault rules. Rules are additive per field: for a given
/// (host, class) the effective rate of each fault kind is the maximum over
/// matching rules.
struct FaultPlan {
  std::string name = "none";
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }
  bool applies_to(const std::string& host) const;
  FaultRates rates_for(const std::string& host, RequestClass klass) const;
  /// Host-level rates usable before the request path is known (the hello):
  /// maximum over every class-matching rule for the host.
  FaultRates host_rates(const std::string& host) const;
};

/// Canned chaos profiles for the campaign runner's chaos axis.
enum class FaultProfile {
  None,              // perfect network (byte-identical to the pre-fault world)
  FlakyCdn,          // segment fetches drop/stall/truncate
  FlakyLicense,      // license + provisioning 5xx and drops
  ByzantineLicense,  // license server corrupts payloads and swaps certs
};

const char* to_string(FaultProfile profile);
std::optional<FaultProfile> fault_profile_from_string(const std::string& name);

/// Materialize a profile into a plan, given the ecosystem's host naming
/// convention (backend hosts carry the app's API host name, CDN hosts the
/// CDN name). Prefix "" matches every host.
FaultPlan fault_plan_for(FaultProfile profile);

/// Counters the injector keeps; flushed into campaign stats like the
/// license-server sinks. Thread safety: none — one injector per ecosystem,
/// driven by a single worker thread.
struct FaultInjectorStats {
  std::uint64_t exchanges = 0;
  std::uint64_t drops = 0;
  std::uint64_t truncations = 0;
  std::uint64_t http_5xx = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t cert_swaps = 0;
  std::uint64_t latency_injections = 0;

  std::uint64_t total_faults() const {
    return drops + truncations + http_5xx + corruptions + cert_swaps + latency_injections;
  }
};

/// TlsEndpoint decorator that injects plan-driven faults into exchanges
/// with one host. Holds a copy of the server's identity so it can
/// terminate TLS exactly like MitmProxy does — that is what lets it
/// classify the request path and re-seal corrupted responses that still
/// authenticate at the transport layer.
///
/// Determinism contract: hello() draws exactly 1 value and finish() draws
/// exactly 5 from the fault stream regardless of which faults fire, so the
/// stream position is a pure function of the request sequence.
class FaultyEndpoint : public TlsEndpoint {
 public:
  FaultyEndpoint(std::shared_ptr<TlsEndpoint> inner, ServerIdentity identity, FaultPlan plan,
                 std::string host, std::uint64_t seed, support::SimClock* clock);

  ServerHello hello(const std::string& host, BytesView client_random) override;
  Bytes finish(const std::string& host, BytesView client_random, BytesView server_random,
               BytesView encrypted_pre_master, BytesView sealed_request) override;

  const FaultInjectorStats& stats() const { return stats_; }
  const std::string& host() const { return host_; }

 private:
  const ServerIdentity& rogue_identity();

  std::shared_ptr<TlsEndpoint> inner_;
  ServerIdentity identity_;
  FaultPlan plan_;
  std::string host_;
  Rng rng_;
  Rng rogue_rng_;
  support::SimClock* clock_;
  FaultInjectorStats stats_;
  std::optional<ServerIdentity> rogue_;
};

}  // namespace wideleak::net
