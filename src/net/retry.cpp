#include "net/retry.hpp"

#include <algorithm>

namespace wideleak::net {

std::uint64_t RetryPolicy::backoff_for(int retry) const {
  std::uint64_t backoff = base_backoff_ticks;
  for (int i = 1; i < retry && backoff < max_backoff_ticks; ++i) backoff *= 2;
  return std::min(backoff, max_backoff_ticks);
}

TlsExchangeResult request_with_retry(TlsClient& client, const std::string& host,
                                     const HttpRequest& req, const RetryPolicy& policy,
                                     Rng& rng, support::SimClock* clock, RetryStats& stats,
                                     const ResponseValidator& validate,
                                     CircuitBreaker* breaker) {
  TlsExchangeResult result;
  const int budget = std::max(1, policy.max_attempts);
  for (int attempt = 1; attempt <= budget; ++attempt) {
    if (breaker != nullptr && !breaker->allow(host)) {
      // Fast-fail: the breaker tripped on this host. CircuitOpen is
      // deliberately terminal, so the caller lands in the same degraded
      // accounting as an exhausted budget — without issuing the attempt,
      // drawing jitter, or sleeping.
      result = TlsExchangeResult{};
      result.error = ErrorCode::CircuitOpen;
      result.error_detail = "circuit open for " + host;
      return result;
    }
    stats.attempts++;
    result = client.request(host, req);
    if (result.error == ErrorCode::None && validate && result.response &&
        result.response->ok()) {
      if (const ErrorCode code = validate(*result.response); code != ErrorCode::None) {
        result.error = code;
        result.error_detail = "payload from " + host + " failed validation (" +
                              std::string(to_string(code)) + ")";
      }
    }
    if (breaker != nullptr) breaker->record(host, result.error == ErrorCode::None);
    if (result.error == ErrorCode::None || !is_retryable(result.error)) return result;
    if (attempt == budget) break;
    const std::uint64_t backoff = policy.backoff_for(attempt);
    const std::uint64_t jitter = rng.next_u64() % std::max<std::uint64_t>(1, policy.base_backoff_ticks);
    if (policy.deadline_tick != 0 && clock != nullptr &&
        clock->now() + backoff + jitter >= policy.deadline_tick) {
      // The backoff would sleep past the cell's deadline: abandon the
      // request now (counted as a giveup) and leave the clock where it is,
      // so the cell cancels at its next stage boundary instead of burning
      // ticks it no longer has. The jitter draw above still happened —
      // the rng stream position stays a pure function of the retry count.
      break;
    }
    stats.retries++;
    if (is_reopen_cycle(result.error)) stats.reopens++;
    // A *wait*, not a bookkeeping advance: sleep() routes the deadline to
    // the scheduler's timer wheel (when one is attached) so a pipelined
    // campaign worker can run other cells' CPU stages instead of stalling.
    if (clock != nullptr) clock->sleep(backoff + jitter);
  }
  stats.giveups++;
  return result;
}

}  // namespace wideleak::net
