#include "net/retry.hpp"

#include <algorithm>

namespace wideleak::net {

std::uint64_t RetryPolicy::backoff_for(int retry) const {
  std::uint64_t backoff = base_backoff_ticks;
  for (int i = 1; i < retry && backoff < max_backoff_ticks; ++i) backoff *= 2;
  return std::min(backoff, max_backoff_ticks);
}

TlsExchangeResult request_with_retry(TlsClient& client, const std::string& host,
                                     const HttpRequest& req, const RetryPolicy& policy,
                                     Rng& rng, support::SimClock* clock, RetryStats& stats,
                                     const ResponseValidator& validate) {
  TlsExchangeResult result;
  const int budget = std::max(1, policy.max_attempts);
  for (int attempt = 1; attempt <= budget; ++attempt) {
    stats.attempts++;
    result = client.request(host, req);
    if (result.error == ErrorCode::None && validate && result.response &&
        result.response->ok()) {
      if (const ErrorCode code = validate(*result.response); code != ErrorCode::None) {
        result.error = code;
        result.error_detail = "payload from " + host + " failed validation (" +
                              std::string(to_string(code)) + ")";
      }
    }
    if (result.error == ErrorCode::None || !is_retryable(result.error)) return result;
    if (attempt == budget) break;
    stats.retries++;
    const std::uint64_t backoff = policy.backoff_for(attempt);
    const std::uint64_t jitter = rng.next_u64() % std::max<std::uint64_t>(1, policy.base_backoff_ticks);
    // A *wait*, not a bookkeeping advance: sleep() routes the deadline to
    // the scheduler's timer wheel (when one is attached) so a pipelined
    // campaign worker can run other cells' CPU stages instead of stalling.
    if (clock != nullptr) clock->sleep(backoff + jitter);
  }
  stats.giveups++;
  return result;
}

}  // namespace wideleak::net
