// Burp-style intercepting proxy.
//
// The proxy owns its own CA. A client that (a) has that CA user-installed
// in its trust store and (b) either does not pin the target host or has had
// its pin check hooked out will complete the handshake against a forged
// certificate; the proxy then sees all plaintext and forwards the exchange
// to the real host. Captured flows feed the paper's URI/MPD harvesting.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/tls.hpp"

namespace wideleak::net {

/// One intercepted plaintext exchange.
struct CapturedFlow {
  std::string host;
  HttpRequest request;
  HttpResponse response;
};

class MitmProxy : public TlsEndpoint {
 public:
  MitmProxy(const Network& network, Rng rng);

  /// The CA a victim must trust for interception to work (Burp's CA cert).
  const CertificateAuthority& ca() const { return ca_; }

  ServerHello hello(const std::string& host, BytesView client_random) override;
  Bytes finish(const std::string& host, BytesView client_random, BytesView server_random,
               BytesView encrypted_pre_master, BytesView sealed_request) override;

  const std::vector<CapturedFlow>& flows() const { return flows_; }
  void clear_flows() { flows_.clear(); }

 private:
  ServerIdentity& forged_identity(const std::string& host);

  const Network& network_;
  Rng rng_;
  CertificateAuthority ca_;
  std::map<std::string, ServerIdentity> identities_;
  std::vector<CapturedFlow> flows_;
};

}  // namespace wideleak::net
