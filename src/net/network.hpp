// The in-process "internet": a registry of TLS servers by hostname, plus the
// client that performs handshakes and authenticated HTTP exchanges against
// them (optionally through a MITM proxy).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "net/http.hpp"
#include "net/tls.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"

namespace wideleak::net {

/// First flight from the server: its random and certificate.
struct ServerHello {
  Bytes server_random;
  Certificate certificate;
};

/// Anything a client can complete a TLS exchange with: a real server or a
/// MITM proxy impersonating one.
class TlsEndpoint {
 public:
  virtual ~TlsEndpoint() = default;

  /// Respond to a ClientHello for `host`.
  virtual ServerHello hello(const std::string& host, BytesView client_random) = 0;

  /// Complete the handshake and answer one sealed request with one sealed
  /// response. The randoms are echoed so the exchange can stay stateless.
  virtual Bytes finish(const std::string& host, BytesView client_random,
                       BytesView server_random, BytesView encrypted_pre_master,
                       BytesView sealed_request) = 0;
};

/// A TLS server terminating connections with its own identity.
class TlsServer : public TlsEndpoint {
 public:
  TlsServer(ServerIdentity identity, HttpHandler handler, std::uint64_t seed);

  ServerHello hello(const std::string& host, BytesView client_random) override;
  Bytes finish(const std::string& host, BytesView client_random, BytesView server_random,
               BytesView encrypted_pre_master, BytesView sealed_request) override;

  const Certificate& certificate() const { return identity_.certificate; }

 private:
  ServerIdentity identity_;
  HttpHandler handler_;
  Rng rng_;
};

/// Hostname -> endpoint registry. Entries keep the host's genuine
/// certificate alongside the endpoint, so callers that need the legitimate
/// pin value (app pin setup) never have to perform a handshake — which
/// matters once endpoints can lie in their hello (net/fault.hpp).
class Network {
 public:
  /// Register a plain TLS server; the entry's certificate is the server's.
  void add_server(const std::string& host, std::shared_ptr<TlsServer> server);
  /// Register any endpoint (e.g. a FaultyEndpoint decorator) together with
  /// the genuine certificate of the host it fronts.
  void add_endpoint(const std::string& host, std::shared_ptr<TlsEndpoint> endpoint,
                    Certificate certificate);
  /// Throws NetworkError for unknown hosts.
  TlsEndpoint& find(const std::string& host) const;
  /// The genuine certificate registered for `host` (throws NetworkError if
  /// unknown) — the source of truth for pinning, independent of what the
  /// endpoint presents on the wire.
  const Certificate& certificate_of(const std::string& host) const;
  bool has_host(const std::string& host) const;

 private:
  struct Entry {
    std::shared_ptr<TlsEndpoint> endpoint;
    Certificate certificate;
  };
  std::map<std::string, Entry> servers_;
};

/// Override point for the pin check — the seam a Frida-style hook grabs.
/// Receives (host, presented certificate, verdict the stock check reached)
/// and returns the verdict to use instead.
using PinCheckOverride = std::function<bool(const std::string&, const Certificate&, bool)>;

/// Result of one HTTPS exchange. Failures — injected or organic — surface
/// here as error codes (support/errors.hpp) rather than exceptions, so the
/// retry layer can classify retryable-vs-terminal without unwinding.
struct TlsExchangeResult {
  HandshakeResult handshake = HandshakeResult::Ok;
  std::optional<HttpResponse> response;  // set iff the exchange completed
  ErrorCode error = ErrorCode::None;
  std::string error_detail;

  bool ok() const {
    return handshake == HandshakeResult::Ok && error == ErrorCode::None && response &&
           response->ok();
  }
};

/// HTTPS client with a trust store, pin store and optional proxy.
class TlsClient {
 public:
  TlsClient(const Network& network, TrustStore trust, Rng rng);

  PinStore& pins() { return pins_; }
  TrustStore& trust() { return trust_; }

  /// Route every connection through `proxy` instead of the real host.
  void set_proxy(TlsEndpoint* proxy) { proxy_ = proxy; }
  TlsEndpoint* proxy() const { return proxy_; }

  /// Install/remove the pin-check override (attacker instrumentation).
  void set_pin_check_override(PinCheckOverride override_fn);

  TlsExchangeResult request(const std::string& host, const HttpRequest& req);

 private:
  const Network& network_;
  TrustStore trust_;
  PinStore pins_;
  Rng rng_;
  TlsEndpoint* proxy_ = nullptr;
  PinCheckOverride pin_override_;
};

}  // namespace wideleak::net
