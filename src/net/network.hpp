// The in-process "internet": a registry of TLS servers by hostname, plus the
// client that performs handshakes and authenticated HTTP exchanges against
// them (optionally through a MITM proxy).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "net/http.hpp"
#include "net/tls.hpp"
#include "support/rng.hpp"

namespace wideleak::net {

/// First flight from the server: its random and certificate.
struct ServerHello {
  Bytes server_random;
  Certificate certificate;
};

/// Anything a client can complete a TLS exchange with: a real server or a
/// MITM proxy impersonating one.
class TlsEndpoint {
 public:
  virtual ~TlsEndpoint() = default;

  /// Respond to a ClientHello for `host`.
  virtual ServerHello hello(const std::string& host, BytesView client_random) = 0;

  /// Complete the handshake and answer one sealed request with one sealed
  /// response. The randoms are echoed so the exchange can stay stateless.
  virtual Bytes finish(const std::string& host, BytesView client_random,
                       BytesView server_random, BytesView encrypted_pre_master,
                       BytesView sealed_request) = 0;
};

/// A TLS server terminating connections with its own identity.
class TlsServer : public TlsEndpoint {
 public:
  TlsServer(ServerIdentity identity, HttpHandler handler, std::uint64_t seed);

  ServerHello hello(const std::string& host, BytesView client_random) override;
  Bytes finish(const std::string& host, BytesView client_random, BytesView server_random,
               BytesView encrypted_pre_master, BytesView sealed_request) override;

  const Certificate& certificate() const { return identity_.certificate; }

 private:
  ServerIdentity identity_;
  HttpHandler handler_;
  Rng rng_;
};

/// Hostname -> server registry.
class Network {
 public:
  void add_server(const std::string& host, std::shared_ptr<TlsServer> server);
  /// Throws NetworkError for unknown hosts.
  TlsServer& find(const std::string& host) const;
  bool has_host(const std::string& host) const;

 private:
  std::map<std::string, std::shared_ptr<TlsServer>> servers_;
};

/// Override point for the pin check — the seam a Frida-style hook grabs.
/// Receives (host, presented certificate, verdict the stock check reached)
/// and returns the verdict to use instead.
using PinCheckOverride = std::function<bool(const std::string&, const Certificate&, bool)>;

/// Result of one HTTPS exchange.
struct TlsExchangeResult {
  HandshakeResult handshake = HandshakeResult::Ok;
  std::optional<HttpResponse> response;  // set iff handshake == Ok

  bool ok() const { return handshake == HandshakeResult::Ok && response && response->ok(); }
};

/// HTTPS client with a trust store, pin store and optional proxy.
class TlsClient {
 public:
  TlsClient(const Network& network, TrustStore trust, Rng rng);

  PinStore& pins() { return pins_; }
  TrustStore& trust() { return trust_; }

  /// Route every connection through `proxy` instead of the real host.
  void set_proxy(TlsEndpoint* proxy) { proxy_ = proxy; }
  TlsEndpoint* proxy() const { return proxy_; }

  /// Install/remove the pin-check override (attacker instrumentation).
  void set_pin_check_override(PinCheckOverride override_fn);

  TlsExchangeResult request(const std::string& host, const HttpRequest& req);

 private:
  const Network& network_;
  TrustStore trust_;
  PinStore pins_;
  Rng rng_;
  TlsEndpoint* proxy_ = nullptr;
  PinCheckOverride pin_override_;
};

}  // namespace wideleak::net
