#include "android/device.hpp"

namespace wideleak::android {

std::string DeviceSpec::drm_process_name() const {
  // Numeric-major comparison is enough for our two-era model.
  const int major = std::stoi(android_version);
  return major >= 7 ? "mediadrmserver" : "mediaserver";
}

Device::Device(DeviceSpec spec, const widevine::Keybox& keybox)
    : spec_(std::move(spec)),
      rng_(spec_.seed),
      drm_process_(spec_.drm_process_name()),
      app_process_("ott_app") {
  if (spec_.has_tee) tee_ = std::make_unique<widevine::Tee>();
  widevine::OemCryptoConfig config;
  config.level = spec_.has_tee ? widevine::SecurityLevel::L1 : widevine::SecurityLevel::L3;
  config.version = spec_.cdm_version;
  config.host = &drm_process_;
  config.tee = tee_.get();
  config.seed = rng_.next_u64();
  cdm_ = std::make_unique<widevine::WidevineCdm>(config);
  cdm_->install_keybox(keybox);
}

widevine::SecurityLevel Device::security_level() const { return cdm_->security_level(); }

widevine::ClientIdentity Device::identity() const {
  widevine::ClientIdentity id;
  id.stable_id = cdm_->oemcrypto().stable_id();
  id.device_model = spec_.model;
  id.cdm_version = spec_.cdm_version;
  id.level = cdm_->security_level();
  return id;
}

DeviceSpec modern_l1_spec(std::uint64_t seed) {
  return DeviceSpec{.model = "Pixel 5",
                    .serial = "pixel5-0042",
                    .android_version = "12",
                    .cdm_version = widevine::kCurrentCdm,
                    .has_tee = true,
                    .seed = seed};
}

DeviceSpec legacy_nexus5_spec(std::uint64_t seed) {
  // Released 2013; last update Android 6.0.1; Widevine L3, CDM 3.1.0.
  return DeviceSpec{.model = "Nexus 5",
                    .serial = "nexus5-1337",
                    .android_version = "6",
                    .cdm_version = widevine::kLegacyCdm,
                    .has_tee = false,
                    .seed = seed};
}

DeviceSpec modern_l3_only_spec(std::uint64_t seed) {
  return DeviceSpec{.model = "Tablet X (no TEE)",
                    .serial = "tabx-0007",
                    .android_version = "11",
                    .cdm_version = widevine::kCurrentCdm,
                    .has_tee = false,
                    .seed = seed};
}

}  // namespace wideleak::android
