// android.media.MediaDrm — the Java API surface, as seen by OTT apps.
//
// Calls route through the Media DRM Server (HAL) into the Widevine plugin;
// each call is announced on the DRM-hosting process's hook bus under the
// libmedia_jni.so module, matching the call path of Figure 1.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "android/device.hpp"
#include "media/mp4.hpp"
#include "widevine/protocol.hpp"

namespace wideleak::android {

/// The UUID apps pass to select Widevine.
inline constexpr char kWidevineUuid[] = "edef8ba9-79d6-4ace-a3c8-27dcd51d21ed";

inline constexpr char kMediaJniModule[] = "libmedia_jni.so";

class MediaDrm {
 public:
  using SessionId = widevine::WidevineCdm::SessionId;

  /// Throws StateError for a UUID naming a DRM scheme the device lacks.
  MediaDrm(Device& device, const std::string& uuid);

  // --- Provisioning -----------------------------------------------------------
  /// Serialized provisioning request for the Provisioning Server.
  Bytes get_provision_request();
  /// Returns false when provisioning was denied or failed verification.
  bool provide_provision_response(BytesView response);
  bool is_provisioned() const { return device_.cdm().is_provisioned(); }

  // --- Sessions & licenses -----------------------------------------------------
  SessionId open_session();
  void close_session(SessionId session);

  /// Build the opaque key request from pssh init data (Figure 1's
  /// getKeyRequest). The returned bytes go to the License Server verbatim.
  Bytes get_key_request(SessionId session, BytesView pssh_init_data);

  /// Ingest the License Server's response (Figure 1's provideKeyResponse).
  widevine::OemCryptoResult provide_key_response(SessionId session, BytesView response);

  std::vector<media::KeyId> loaded_key_ids(SessionId session) const;

  // --- Crypto session (MediaDrm.getCryptoSession): the "non-DASH mode" ---
  /// Decrypt arbitrary data with a loaded key — the generic channel Netflix
  /// uses to protect its URI manifests.
  widevine::OemCryptoResult crypto_session_decrypt(SessionId session, const media::KeyId& kid,
                                                   BytesView iv, BytesView ciphertext,
                                                   Bytes& plaintext);
  widevine::OemCryptoResult crypto_session_encrypt(SessionId session, const media::KeyId& kid,
                                                   BytesView iv, BytesView plaintext,
                                                   Bytes& ciphertext);
  widevine::OemCryptoResult crypto_session_sign(SessionId session, const media::KeyId& kid,
                                                BytesView message, Bytes& tag);
  widevine::OemCryptoResult crypto_session_verify(SessionId session, const media::KeyId& kid,
                                                  BytesView message, BytesView tag);

  Device& device() { return device_; }

 private:
  void emit(std::string_view function, BytesView input, BytesView output);

  Device& device_;
};

}  // namespace wideleak::android
