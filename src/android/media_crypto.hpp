// android.media.MediaCrypto — bound to a MediaDrm session; performs sample
// decryption on behalf of a MediaCodec. Apps never receive decrypted bytes
// from it, which is why buffer-stealing attacks (MovieStealer) fail against
// this pipeline.
#pragma once

#include "android/media_drm.hpp"
#include "media/mp4.hpp"
#include "support/arena.hpp"

namespace wideleak::android {

class MediaCrypto {
 public:
  MediaCrypto(MediaDrm& drm, MediaDrm::SessionId session);

  /// Decrypt one CENC sample (clear/protected subsample map). Intended to
  /// be called only by MediaCodec; returns the clear sample.
  Bytes decrypt_sample(const media::KeyId& kid, BytesView sample,
                       const media::SampleEncryptionEntry& entry);

  MediaDrm::SessionId session() const { return session_; }
  MediaDrm& drm() { return drm_; }

 private:
  MediaDrm& drm_;
  MediaDrm::SessionId session_;
  // Per-session scratch: gather buffers for subsample concatenation and the
  // CDM's decrypted output, recycled across samples.
  support::ScratchArena arena_;
  Bytes decrypted_;
};

}  // namespace wideleak::android
