// A simulated Android device: system processes, optional TEE, the Widevine
// CDM plugged into the DRM HAL, and the system trust store apps use for TLS.
//
// Two device profiles matter to the study:
//   - a modern TEE phone (Widevine L1, current CDM),
//   - the discontinued Nexus 5 (Android 6.0.1, software-only Widevine L3,
//     legacy CDM 3.1.0 with insecure keybox storage — CVE-2021-0639).
#pragma once

#include <memory>
#include <string>

#include "hooking/process.hpp"
#include "net/tls.hpp"
#include "widevine/cdm.hpp"
#include "widevine/keybox.hpp"
#include "widevine/tee.hpp"

namespace wideleak::android {

struct DeviceSpec {
  std::string model;
  std::string serial;
  std::string android_version = "12";
  widevine::CdmVersion cdm_version = widevine::kCurrentCdm;
  bool has_tee = true;  ///< TEE present -> Widevine runs at L1
  std::uint64_t seed = 0;

  /// Android >= 7 hosts the CDM in mediadrmserver; older in mediaserver —
  /// the distinction the paper's Frida script handles explicitly.
  std::string drm_process_name() const;
};

class Device {
 public:
  /// Builds the device and installs its factory keybox.
  Device(DeviceSpec spec, const widevine::Keybox& keybox);

  const DeviceSpec& spec() const { return spec_; }
  widevine::SecurityLevel security_level() const;

  /// The process hosting the Widevine HAL plugin — what an attacker with a
  /// rooted device attaches Frida to.
  hooking::SimProcess& drm_process() { return drm_process_; }
  const hooking::SimProcess& drm_process() const { return drm_process_; }

  /// The OTT app's own process (anti-debug checks etc. live here; the
  /// paper's methodology avoids it entirely).
  hooking::SimProcess& app_process() { return app_process_; }

  widevine::WidevineCdm& cdm() { return *cdm_; }
  const widevine::WidevineCdm& cdm() const { return *cdm_; }

  /// The identity block the CDM sends in every request.
  widevine::ClientIdentity identity() const;

  /// System CA roots (plus any user-installed CA, e.g. a MITM proxy's).
  net::TrustStore& system_trust() { return trust_; }

  /// Fresh per-connection randomness for apps on this device.
  Rng fork_rng() { return rng_.fork(); }

 private:
  DeviceSpec spec_;
  Rng rng_;
  hooking::SimProcess drm_process_;
  hooking::SimProcess app_process_;
  std::unique_ptr<widevine::Tee> tee_;  // null on TEE-less devices
  std::unique_ptr<widevine::WidevineCdm> cdm_;
  net::TrustStore trust_;
};

/// Profile factories for the two devices of the study.
DeviceSpec modern_l1_spec(std::uint64_t seed);
DeviceSpec legacy_nexus5_spec(std::uint64_t seed);
/// A modern TEE-less device: current CDM, but only L3 available (the
/// profile that triggers Amazon's embedded custom DRM).
DeviceSpec modern_l3_only_spec(std::uint64_t seed);

}  // namespace wideleak::android
