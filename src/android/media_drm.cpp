#include "android/media_drm.hpp"

#include "support/errors.hpp"

namespace wideleak::android {

MediaDrm::MediaDrm(Device& device, const std::string& uuid) : device_(device) {
  if (uuid != kWidevineUuid) {
    throw StateError("MediaDrm: unsupported DRM scheme uuid " + uuid);
  }
  emit("MediaDrm(UUID)", to_bytes(uuid), BytesView());
}

void MediaDrm::emit(std::string_view function, BytesView input, BytesView output) {
  device_.drm_process().bus().emit(kMediaJniModule, function, input, output);
}

Bytes MediaDrm::get_provision_request() {
  const widevine::ProvisioningRequest request =
      device_.cdm().create_provisioning_request(device_.identity());
  const Bytes serialized = request.serialize();
  emit("MediaDrm.getProvisionRequest", BytesView(), serialized);
  return serialized;
}

bool MediaDrm::provide_provision_response(BytesView response) {
  emit("MediaDrm.provideProvisionResponse", response, BytesView());
  const auto parsed = widevine::ProvisioningResponse::deserialize(response);
  return device_.cdm().process_provisioning_response(parsed) ==
         widevine::OemCryptoResult::Success;
}

MediaDrm::SessionId MediaDrm::open_session() {
  const SessionId session = device_.cdm().open_session();
  emit("MediaDrm.openSession", BytesView(), BytesView());
  return session;
}

void MediaDrm::close_session(SessionId session) {
  device_.cdm().close_session(session);
  emit("MediaDrm.closeSession", BytesView(), BytesView());
}

Bytes MediaDrm::get_key_request(SessionId session, BytesView pssh_init_data) {
  // Parse the pssh payload to learn which key ids to request.
  const auto boxes = media::Box::parse_sequence(pssh_init_data);
  if (boxes.size() != 1 || boxes[0].fourcc != "pssh") {
    throw ParseError("MediaDrm.getKeyRequest: init data must be one pssh box");
  }
  const media::PsshBox pssh = media::PsshBox::from_box(boxes[0]);
  const widevine::LicenseRequest request =
      device_.cdm().create_license_request(session, device_.identity(), pssh.key_ids);
  const Bytes serialized = request.serialize();
  emit("MediaDrm.getKeyRequest", pssh_init_data, serialized);
  return serialized;
}

widevine::OemCryptoResult MediaDrm::provide_key_response(SessionId session, BytesView response) {
  emit("MediaDrm.provideKeyResponse", response, BytesView());
  const auto parsed = widevine::LicenseResponse::deserialize(response);
  return device_.cdm().process_license_response(session, parsed);
}

std::vector<media::KeyId> MediaDrm::loaded_key_ids(SessionId session) const {
  return device_.cdm().oemcrypto().loaded_key_ids(session);
}

widevine::OemCryptoResult MediaDrm::crypto_session_decrypt(SessionId session,
                                                           const media::KeyId& kid, BytesView iv,
                                                           BytesView ciphertext,
                                                           Bytes& plaintext) {
  emit("CryptoSession.decrypt", ciphertext, BytesView());
  auto& oec = device_.cdm().oemcrypto();
  if (const auto r = oec.select_key(session, kid); r != widevine::OemCryptoResult::Success) {
    return r;
  }
  return oec.generic_decrypt(session, iv, ciphertext, plaintext);
}

widevine::OemCryptoResult MediaDrm::crypto_session_encrypt(SessionId session,
                                                           const media::KeyId& kid, BytesView iv,
                                                           BytesView plaintext,
                                                           Bytes& ciphertext) {
  emit("CryptoSession.encrypt", plaintext, BytesView());
  auto& oec = device_.cdm().oemcrypto();
  if (const auto r = oec.select_key(session, kid); r != widevine::OemCryptoResult::Success) {
    return r;
  }
  return oec.generic_encrypt(session, iv, plaintext, ciphertext);
}

widevine::OemCryptoResult MediaDrm::crypto_session_sign(SessionId session,
                                                        const media::KeyId& kid,
                                                        BytesView message, Bytes& tag) {
  emit("CryptoSession.sign", message, BytesView());
  auto& oec = device_.cdm().oemcrypto();
  if (const auto r = oec.select_key(session, kid); r != widevine::OemCryptoResult::Success) {
    return r;
  }
  return oec.generic_sign(session, message, tag);
}

widevine::OemCryptoResult MediaDrm::crypto_session_verify(SessionId session,
                                                          const media::KeyId& kid,
                                                          BytesView message, BytesView tag) {
  emit("CryptoSession.verify", message, tag);
  auto& oec = device_.cdm().oemcrypto();
  if (const auto r = oec.select_key(session, kid); r != widevine::OemCryptoResult::Success) {
    return r;
  }
  return oec.generic_verify(session, message, tag);
}

}  // namespace wideleak::android
