// android.media.MediaCodec — consumes (possibly encrypted) input buffers
// and renders decoded frames to a Surface the app cannot read back.
#pragma once

#include <optional>

#include "android/media_crypto.hpp"
#include "media/codec.hpp"

namespace wideleak::android {

/// The render target: accumulates decoded frames; apps can query playback
/// statistics but never the pixel/PCM data.
class Surface {
 public:
  void render(const media::Frame& frame);

  std::uint32_t frames_rendered() const { return frames_; }
  media::Resolution video_resolution() const { return resolution_; }

 private:
  std::uint32_t frames_ = 0;
  media::Resolution resolution_;
};

class MediaCodec {
 public:
  /// `crypto` may be null for clear playback.
  MediaCodec(MediaCrypto* crypto, Surface& surface);

  /// Figure 1's queueSecureInputBuffer: decrypt via MediaCrypto, decode,
  /// render. Returns false when the sample cannot be decoded.
  bool queue_secure_input_buffer(const media::KeyId& kid, BytesView sample,
                                 const media::SampleEncryptionEntry& entry);

  /// Clear input path.
  bool queue_input_buffer(BytesView sample);

 private:
  bool decode_and_render(BytesView clear_sample);

  MediaCrypto* crypto_;
  Surface& surface_;
};

}  // namespace wideleak::android
