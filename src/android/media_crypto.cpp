#include "android/media_crypto.hpp"

#include "support/errors.hpp"

namespace wideleak::android {

MediaCrypto::MediaCrypto(MediaDrm& drm, MediaDrm::SessionId session)
    : drm_(drm), session_(session) {
  drm_.device().drm_process().bus().emit(kMediaJniModule, "MediaCrypto(session)", BytesView(),
                                         BytesView());
}

Bytes MediaCrypto::decrypt_sample(const media::KeyId& kid, BytesView sample,
                                  const media::SampleEncryptionEntry& entry) {
  auto& cdm = drm_.device().cdm();
  if (cdm.select_key(session_, kid) != widevine::OemCryptoResult::Success) {
    throw StateError("MediaCrypto: key not loaded for sample");
  }

  // CENC semantics: within one sample the CTR keystream runs continuously
  // across protected ranges, so we decrypt their concatenation in one call
  // and then re-interleave with the clear ranges.
  Bytes protected_concat;
  std::size_t pos = 0;
  for (const auto& sub : entry.subsamples) {
    if (pos + sub.clear_bytes + sub.protected_bytes > sample.size()) {
      throw ParseError("MediaCrypto: subsample map overruns sample");
    }
    pos += sub.clear_bytes;
    protected_concat.insert(protected_concat.end(), sample.begin() + static_cast<std::ptrdiff_t>(pos),
                            sample.begin() + static_cast<std::ptrdiff_t>(pos + sub.protected_bytes));
    pos += sub.protected_bytes;
  }

  Bytes decrypted;
  const auto result = cdm.decrypt_sample(session_, entry.iv, protected_concat, decrypted);
  if (result != widevine::OemCryptoResult::Success) {
    throw StateError("MediaCrypto: decrypt failed: " + widevine::to_string(result));
  }

  Bytes out;
  out.reserve(sample.size());
  pos = 0;
  std::size_t dec_pos = 0;
  for (const auto& sub : entry.subsamples) {
    out.insert(out.end(), sample.begin() + static_cast<std::ptrdiff_t>(pos),
               sample.begin() + static_cast<std::ptrdiff_t>(pos + sub.clear_bytes));
    pos += sub.clear_bytes;
    out.insert(out.end(), decrypted.begin() + static_cast<std::ptrdiff_t>(dec_pos),
               decrypted.begin() + static_cast<std::ptrdiff_t>(dec_pos + sub.protected_bytes));
    dec_pos += sub.protected_bytes;
    pos += sub.protected_bytes;
  }
  // Trailing unmapped bytes pass through clear.
  out.insert(out.end(), sample.begin() + static_cast<std::ptrdiff_t>(pos), sample.end());
  return out;
}

}  // namespace wideleak::android
