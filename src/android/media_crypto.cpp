#include "android/media_crypto.hpp"

#include <cstring>

#include "support/errors.hpp"

namespace wideleak::android {

MediaCrypto::MediaCrypto(MediaDrm& drm, MediaDrm::SessionId session)
    : drm_(drm), session_(session) {
  drm_.device().drm_process().bus().emit(kMediaJniModule, "MediaCrypto(session)", BytesView(),
                                         BytesView());
}

Bytes MediaCrypto::decrypt_sample(const media::KeyId& kid, BytesView sample,
                                  const media::SampleEncryptionEntry& entry) {
  auto& cdm = drm_.device().cdm();
  if (cdm.select_key(session_, kid) != widevine::OemCryptoResult::Success) {
    throw StateError("MediaCrypto: key not loaded for sample");
  }

  // CENC semantics: within one sample the CTR keystream runs continuously
  // across protected ranges, so we decrypt their concatenation in one call
  // and then re-interleave with the clear ranges. The gather buffer comes
  // from the session's scratch arena — steady state allocates nothing.
  arena_.reset();
  std::size_t protected_total = 0;
  std::size_t pos = 0;
  for (const auto& sub : entry.subsamples) {
    if (pos + sub.clear_bytes + sub.protected_bytes > sample.size()) {
      throw ParseError("MediaCrypto: subsample map overruns sample");
    }
    pos += sub.clear_bytes + sub.protected_bytes;
    protected_total += sub.protected_bytes;
  }
  std::span<std::uint8_t> protected_concat = arena_.alloc(protected_total);
  pos = 0;
  std::size_t gather = 0;
  for (const auto& sub : entry.subsamples) {
    pos += sub.clear_bytes;
    if (sub.protected_bytes != 0) {
      std::memcpy(protected_concat.data() + gather, sample.data() + pos, sub.protected_bytes);
    }
    gather += sub.protected_bytes;
    pos += sub.protected_bytes;
  }

  decrypted_.clear();
  const auto result =
      cdm.decrypt_sample(session_, entry.iv, BytesView(protected_concat), decrypted_);
  if (result != widevine::OemCryptoResult::Success) {
    throw StateError("MediaCrypto: decrypt failed: " + widevine::to_string(result));
  }

  Bytes out;
  out.reserve(sample.size());
  pos = 0;
  std::size_t dec_pos = 0;
  for (const auto& sub : entry.subsamples) {
    out.insert(out.end(), sample.begin() + static_cast<std::ptrdiff_t>(pos),
               sample.begin() + static_cast<std::ptrdiff_t>(pos + sub.clear_bytes));
    pos += sub.clear_bytes;
    out.insert(out.end(), decrypted_.begin() + static_cast<std::ptrdiff_t>(dec_pos),
               decrypted_.begin() + static_cast<std::ptrdiff_t>(dec_pos + sub.protected_bytes));
    dec_pos += sub.protected_bytes;
    pos += sub.protected_bytes;
  }
  // Trailing unmapped bytes pass through clear.
  out.insert(out.end(), sample.begin() + static_cast<std::ptrdiff_t>(pos), sample.end());
  return out;
}

}  // namespace wideleak::android
