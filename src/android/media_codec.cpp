#include "android/media_codec.hpp"

#include "support/errors.hpp"

namespace wideleak::android {

void Surface::render(const media::Frame& frame) {
  ++frames_;
  if (frame.type == media::TrackType::Video && resolution_ == media::Resolution{}) {
    resolution_ = frame.resolution;
  }
}

MediaCodec::MediaCodec(MediaCrypto* crypto, Surface& surface)
    : crypto_(crypto), surface_(surface) {}

bool MediaCodec::decode_and_render(BytesView clear_sample) {
  const auto parsed = media::Frame::parse(clear_sample);
  if (!parsed || parsed->consumed != clear_sample.size()) return false;
  surface_.render(parsed->frame);
  return true;
}

bool MediaCodec::queue_secure_input_buffer(const media::KeyId& kid, BytesView sample,
                                           const media::SampleEncryptionEntry& entry) {
  if (crypto_ == nullptr) {
    throw StateError("MediaCodec: secure buffer queued without MediaCrypto");
  }
  crypto_->drm().device().drm_process().bus().emit(kMediaJniModule,
                                                   "MediaCodec.queueSecureInputBuffer", sample,
                                                   BytesView());
  const Bytes clear = crypto_->decrypt_sample(kid, sample, entry);
  return decode_and_render(clear);
}

bool MediaCodec::queue_input_buffer(BytesView sample) {
  return decode_and_render(sample);
}

}  // namespace wideleak::android
