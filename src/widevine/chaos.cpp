#include "widevine/chaos.hpp"

namespace wideleak::widevine {

namespace {

bool starts_with(const std::string& text, const char* prefix) {
  return text.rfind(prefix, 0) == 0;
}

}  // namespace

ChaosPlan chaos_plan_for(const std::string& name) {
  ChaosPlan plan;
  if (!chaos_plan_from_string(name, plan)) {
    throw Error("unknown chaos plan: " + name);
  }
  return plan;
}

bool chaos_plan_from_string(const std::string& name, ChaosPlan& out) {
  ChaosPlan plan;
  plan.name = name;
  if (name == "none" || name.empty()) {
    plan.name = "none";
  } else if (name == "shard-crash") {
    // Tuned against the campaign timeline: with 6 ticks of service latency a
    // cell's provisioning lands at tick 0..6 and its first license at ~6, so
    // a restart window opening at tick 8 catches sessions that already exist
    // (they get dropped and must reopen) while the backoff ladder of the
    // retry loop walks clients across the 18-tick outage.
    plan.service_latency_ticks = 6;
    plan.crashes.push_back(ShardCrashWindow{/*start=*/8, /*down_ticks=*/18, kAllShards});
  } else if (name == "brownout") {
    // Long window of degraded service: every request pays extra latency and
    // ~30% are refused, so clients churn through retry/reopen cycles without
    // the service ever going fully dark.
    plan.service_latency_ticks = 4;
    plan.brownouts.push_back(
        BrownoutWindow{/*start=*/0, /*ticks=*/1'000'000, /*deny_pm=*/300,
                       /*latency_ticks=*/12});
  } else if (name == "overload") {
    // Zero service latency keeps a cell's back-to-back requests on the same
    // tick, so the second same-shard request in one tick is shed and must
    // retry after backoff (by which point the tick has advanced).
    plan.overload.queue_depth_limit = 1;
  } else {
    return false;
  }
  out = std::move(plan);
  return true;
}

ErrorCode classify_service_refusal(const std::string& deny_reason) {
  if (starts_with(deny_reason, "session invalid")) return ErrorCode::SessionInvalid;
  if (starts_with(deny_reason, "rate limited") || starts_with(deny_reason, "overloaded") ||
      starts_with(deny_reason, "brownout")) {
    return ErrorCode::RateLimited;
  }
  return ErrorCode::None;
}

}  // namespace wideleak::widevine
