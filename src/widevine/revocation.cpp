#include "widevine/revocation.hpp"

namespace wideleak::widevine {

bool RevocationPolicy::is_revoked(const ClientIdentity& client) const {
  if (!min_cdm_version) return false;
  return client.cdm_version < *min_cdm_version;
}

std::string RevocationPolicy::describe() const {
  if (!min_cdm_version) return "serve all devices";
  return "require CDM >= " + min_cdm_version->label();
}

RevocationPolicy recommended_revocation_policy() {
  return RevocationPolicy{.min_cdm_version = CdmVersion{14, 0}};
}

RevocationPolicy permissive_revocation_policy() {
  return RevocationPolicy{.min_cdm_version = std::nullopt};
}

}  // namespace wideleak::widevine
