#include "widevine/oemcrypto.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"
#include "crypto/modes.hpp"
#include "support/errors.hpp"

namespace wideleak::widevine {

std::string to_string(OemCryptoResult result) {
  switch (result) {
    case OemCryptoResult::Success: return "success";
    case OemCryptoResult::NoKeybox: return "no keybox installed";
    case OemCryptoResult::NoDeviceRsaKey: return "no device RSA key";
    case OemCryptoResult::SignatureFailure: return "signature failure";
    case OemCryptoResult::KeyNotLoaded: return "key not loaded";
    case OemCryptoResult::KeyExpired: return "license expired";
    case OemCryptoResult::InsufficientSecurity: return "insufficient security level";
    case OemCryptoResult::InvalidSession: return "invalid session";
  }
  return "?";
}

OemCrypto::OemCrypto(const OemCryptoConfig& config) : config_(config), rng_(config.seed) {
  if (config_.host == nullptr) {
    throw std::invalid_argument("OemCrypto: host process required");
  }
  if (config_.level == SecurityLevel::L1 && config_.tee == nullptr) {
    throw std::invalid_argument("OemCrypto: L1 requires a TEE");
  }
}

OemCrypto::~OemCrypto() = default;

hooking::ProcessMemory& OemCrypto::key_store() {
  return config_.level == SecurityLevel::L1 ? config_.tee->secure_memory()
                                            : config_.host->memory();
}

const hooking::ProcessMemory& OemCrypto::key_store() const {
  return config_.level == SecurityLevel::L1 ? config_.tee->secure_memory()
                                            : config_.host->memory();
}

void OemCrypto::emit(std::string_view function, BytesView input, BytesView output) const {
  config_.host->bus().emit(module_name(), function, input, output);
}

void OemCrypto::install_keybox(const Keybox& keybox) {
  keybox_ = keybox;
  const Bytes raw = keybox.serialize();
  if (config_.level == SecurityLevel::L1) {
    // L1: the keybox never exists outside secure-world memory.
    keybox_region_ = config_.tee->secure_memory().map_region("trustlet:keybox", raw);
  } else if (config_.version.has_insecure_keybox_storage()) {
    // Legacy L3 (CWE-922): the raw keybox sits in process memory for the
    // CDM's whole lifetime — this is what the paper's scanner finds.
    keybox_region_ = config_.host->memory().map_region(
        std::string(kWvDrmEngineModule) + ":keybox_workbuf", raw);
  } else {
    // Patched L3: only an XOR-masked copy is ever mapped; the magic bytes
    // are not present in the clear anywhere scannable.
    keybox_mask_ = SecretBytes(rng_.next_bytes(raw.size()));
    keybox_region_ = config_.host->memory().map_region(
        std::string(kWvDrmEngineModule) + ":keybox_masked",
        xor_bytes(raw, keybox_mask_.reveal()));
  }
  emit("_oecc24_InstallKeybox", BytesView(), BytesView());
}

Bytes OemCrypto::get_key_data() const {
  if (!keybox_) throw StateError("OemCrypto: no keybox");
  const Bytes& out = keybox_->key_data();
  emit("_oecc27_GetKeyData", BytesView(), out);
  return out;
}

Bytes OemCrypto::stable_id() const {
  if (!keybox_) throw StateError("OemCrypto: no keybox");
  return keybox_->stable_id();
}

const SecretBytes& OemCrypto::device_key() const {
  if (!keybox_) throw StateError("OemCrypto: no keybox");
  return keybox_->device_key();
}

OemCrypto::SessionId OemCrypto::open_session() {
  const SessionId id = next_session_++;
  sessions_[id] = Session{};
  emit("_oecc04_OpenSession", BytesView(), BytesView());
  return id;
}

void OemCrypto::close_session(SessionId session) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) throw StateError("OemCrypto: close of unknown session");
  for (const auto& [kid, region] : it->second.content_keys) {
    key_store().unmap_region(region);
  }
  sessions_.erase(it);
  emit("_oecc05_CloseSession", BytesView(), BytesView());
}

OemCrypto::Session& OemCrypto::session_for(SessionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) throw StateError("OemCrypto: unknown session");
  return it->second;
}

Bytes OemCrypto::generate_nonce(SessionId session) {
  Session& s = session_for(session);
  s.nonce = rng_.next_bytes(16);
  emit("_oecc08_GenerateNonce", BytesView(), s.nonce);
  return s.nonce;
}

OemCryptoResult OemCrypto::generate_derived_keys(SessionId session, BytesView mac_context,
                                                 BytesView enc_context) {
  Session& s = session_for(session);
  if (!keybox_) return OemCryptoResult::NoKeybox;
  s.keys = derive_session_keys(device_key(), mac_context, enc_context);
  // The derivation contexts cross the HAL boundary and are visible to an
  // attached tracer — step one of the paper's key-ladder interception.
  emit("_oecc07_GenerateDerivedKeys", concat({mac_context, enc_context}), BytesView());
  return OemCryptoResult::Success;
}

OemCryptoResult OemCrypto::generate_signature(SessionId session, BytesView message,
                                              Bytes& signature) {
  Session& s = session_for(session);
  if (!s.keys) return OemCryptoResult::SignatureFailure;
  signature = crypto::hmac_sha256(s.keys->mac_key_client, message);
  emit("_oecc09_GenerateSignature", message, signature);
  return OemCryptoResult::Success;
}

OemCryptoResult OemCrypto::rewrap_device_rsa_key(SessionId session, BytesView response_body,
                                                 BytesView response_mac, BytesView wrapping_iv,
                                                 BytesView wrapped_rsa_key) {
  Session& s = session_for(session);
  if (!keybox_) return OemCryptoResult::NoKeybox;
  if (!s.keys) return OemCryptoResult::SignatureFailure;
  if (!crypto::hmac_sha256_verify(s.keys->mac_key_server, response_body, response_mac)) {
    emit("_oecc30_RewrapDeviceRSAKey", response_body, BytesView());
    return OemCryptoResult::SignatureFailure;
  }
  const crypto::Aes enc(s.keys->enc_key);
  Bytes rsa_serialized;
  try {
    rsa_serialized = crypto::aes_cbc_decrypt(enc, wrapping_iv, wrapped_rsa_key);
    (void)crypto::RsaKeyPair::deserialize(rsa_serialized);  // structural check
  } catch (const Error&) {
    return OemCryptoResult::SignatureFailure;
  }
  if (device_rsa_region_) key_store().unmap_region(*device_rsa_region_);
  device_rsa_region_ =
      key_store().map_region(std::string(module_name()) + ":device_rsa_key", rsa_serialized);
  emit("_oecc30_RewrapDeviceRSAKey", response_body, BytesView());
  return OemCryptoResult::Success;
}

bool OemCrypto::has_device_rsa_key() const { return device_rsa_region_.has_value(); }

std::optional<crypto::RsaPublicKey> OemCrypto::device_rsa_public() const {
  if (!device_rsa_region_) return std::nullopt;
  return crypto::RsaKeyPair::deserialize(key_store().read_region(*device_rsa_region_)).pub;
}

OemCryptoResult OemCrypto::generate_rsa_signature(SessionId session, BytesView message,
                                                  Bytes& signature) {
  session_for(session);
  if (!device_rsa_region_) return OemCryptoResult::NoDeviceRsaKey;
  const auto keys = crypto::RsaKeyPair::deserialize(key_store().read_region(*device_rsa_region_));
  signature = crypto::rsa_pss_sign(keys, rng_, message);
  emit("_oecc32_GenerateRSASignature", message, signature);
  return OemCryptoResult::Success;
}

OemCryptoResult OemCrypto::derive_keys_from_session_key(SessionId session,
                                                        BytesView wrapped_session_key,
                                                        BytesView mac_context,
                                                        BytesView enc_context) {
  Session& s = session_for(session);
  if (!device_rsa_region_) return OemCryptoResult::NoDeviceRsaKey;
  const auto keys = crypto::RsaKeyPair::deserialize(key_store().read_region(*device_rsa_region_));
  SecretBytes session_key;
  try {
    session_key = SecretBytes(crypto::rsa_oaep_decrypt(keys, wrapped_session_key));
  } catch (const CryptoError&) {
    return OemCryptoResult::SignatureFailure;
  }
  s.keys = derive_session_keys(session_key, mac_context, enc_context);
  emit("_oecc33_DeriveKeysFromSessionKey", concat({wrapped_session_key, mac_context, enc_context}),
       BytesView());
  return OemCryptoResult::Success;
}

OemCryptoResult OemCrypto::load_keys(SessionId session, BytesView response_body,
                                     BytesView response_mac,
                                     const std::vector<KeyContainer>& keys,
                                     std::uint64_t license_duration) {
  Session& s = session_for(session);
  if (!s.keys) return OemCryptoResult::SignatureFailure;
  emit("_oecc10_LoadKeys", response_body, BytesView());
  if (!crypto::hmac_sha256_verify(s.keys->mac_key_server, response_body, response_mac)) {
    return OemCryptoResult::SignatureFailure;
  }
  s.expiry_tick = license_duration == 0 ? 0 : clock_ + license_duration;
  const crypto::Aes enc(s.keys->enc_key);
  for (const KeyContainer& container : keys) {
    // Key control: a key whose control block demands L1 will not load on an
    // L3 CDM (defence in depth; the server should not have sent it).
    if (container.min_level == SecurityLevel::L1 &&
        config_.level != SecurityLevel::L1) {
      continue;
    }
    SecretBytes content_key;
    try {
      content_key =
          SecretBytes(crypto::aes_cbc_decrypt_nopad(enc, container.iv, container.wrapped_key));
    } catch (const Error&) {
      return OemCryptoResult::SignatureFailure;
    }
    const std::string kid_hex = hex_encode(container.kid);
    const auto existing = s.content_keys.find(kid_hex);
    // The key store *is* scannable process/TEE memory — mapping the clear
    // key there is the modelled behaviour.  wl-lint: reveal-ok
    if (existing != s.content_keys.end()) {
      key_store().write_region(existing->second, content_key.reveal());
    } else {
      s.content_keys[kid_hex] = key_store().map_region(
          std::string(module_name()) + ":content_key:" + kid_hex, content_key.reveal());
    }
  }
  return OemCryptoResult::Success;
}

OemCryptoResult OemCrypto::select_key(SessionId session, const media::KeyId& kid) {
  Session& s = session_for(session);
  emit("_oecc21_SelectKey", kid, BytesView());
  if (!s.content_keys.contains(hex_encode(kid))) return OemCryptoResult::KeyNotLoaded;
  s.selected = kid;
  return OemCryptoResult::Success;
}

SecretBytes OemCrypto::read_selected_key(const Session& session) const {
  const auto it = session.content_keys.find(hex_encode(*session.selected));
  return SecretBytes(key_store().read_region(it->second));
}

OemCryptoResult OemCrypto::decrypt_cenc(SessionId session, BytesView iv, BytesView ciphertext,
                                        Bytes& plaintext) {
  Session& s = session_for(session);
  // Output deliberately absent from the hook event: decrypted samples flow
  // to the codec/surface, not back through the API (see header comment).
  emit("_oecc22_DecryptCENC", ciphertext, BytesView());
  if (!s.selected) return OemCryptoResult::KeyNotLoaded;
  if (s.expiry_tick != 0 && clock_ > s.expiry_tick) return OemCryptoResult::KeyExpired;
  const crypto::Aes aes(read_selected_key(s));
  Bytes full_iv(iv.begin(), iv.end());
  full_iv.resize(crypto::kAesBlockSize, 0x00);
  // One ciphertext copy into the caller's buffer, then XOR in place — the
  // caller's capacity is reused across samples.
  plaintext.assign(ciphertext.begin(), ciphertext.end());
  crypto::aes_ctr_crypt_in_place(aes, full_iv, plaintext);
  return OemCryptoResult::Success;
}

std::vector<media::KeyId> OemCrypto::loaded_key_ids(SessionId session) const {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) throw StateError("OemCrypto: unknown session");
  std::vector<media::KeyId> out;
  for (const auto& [kid_hex, region] : it->second.content_keys) {
    out.push_back(hex_decode(kid_hex));
  }
  return out;
}

OemCryptoResult OemCrypto::generic_encrypt(SessionId session, BytesView iv, BytesView plaintext,
                                           Bytes& ciphertext) {
  Session& s = session_for(session);
  if (!s.selected) return OemCryptoResult::KeyNotLoaded;
  const crypto::Aes aes(read_selected_key(s));
  ciphertext = crypto::aes_cbc_encrypt(aes, iv, plaintext);
  emit("_oecc41_GenericEncrypt", plaintext, ciphertext);
  return OemCryptoResult::Success;
}

OemCryptoResult OemCrypto::generic_decrypt(SessionId session, BytesView iv, BytesView ciphertext,
                                           Bytes& plaintext) {
  Session& s = session_for(session);
  if (!s.selected) return OemCryptoResult::KeyNotLoaded;
  const crypto::Aes aes(read_selected_key(s));
  try {
    plaintext = crypto::aes_cbc_decrypt(aes, iv, ciphertext);
  } catch (const CryptoError&) {
    return OemCryptoResult::SignatureFailure;
  }
  // Unlike DecryptCENC, generic decrypt returns plaintext to the caller —
  // so a tracer sees it too. This is how the paper recovered Netflix's
  // "protected" URI manifests despite the non-DASH secure channel.
  emit("_oecc42_GenericDecrypt", ciphertext, plaintext);
  return OemCryptoResult::Success;
}

OemCryptoResult OemCrypto::generic_sign(SessionId session, BytesView message, Bytes& tag) {
  Session& s = session_for(session);
  if (!s.selected) return OemCryptoResult::KeyNotLoaded;
  tag = crypto::hmac_sha256(read_selected_key(s), message);
  emit("_oecc43_GenericSign", message, tag);
  return OemCryptoResult::Success;
}

OemCryptoResult OemCrypto::generic_verify(SessionId session, BytesView message, BytesView tag) {
  Session& s = session_for(session);
  if (!s.selected) return OemCryptoResult::KeyNotLoaded;
  emit("_oecc44_GenericVerify", message, tag);
  return crypto::hmac_sha256_verify(read_selected_key(s), message, tag)
             ? OemCryptoResult::Success
             : OemCryptoResult::SignatureFailure;
}

}  // namespace wideleak::widevine
