// The Widevine license server: authenticates clients (keybox or provisioned
// RSA path), applies per-service revocation policy, and issues wrapped
// content keys filtered by security level — an L3 client never receives a
// key whose control block demands L1, which is why the paper's PoC tops
// out at 960x540.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "media/content.hpp"
#include "support/annotations.hpp"
#include "widevine/protocol.hpp"
#include "widevine/provisioning_server.hpp"
#include "widevine/revocation.hpp"

namespace wideleak::widevine {

/// Security level a given content key requires, by the resolution it
/// unlocks: anything above qHD (540p) is HD-class and demands L1.
SecurityLevel required_level_for(const media::ContentKey& key);

/// How the server decides the client's effective security level.
///
/// Strict (Android): the claimed level is capped by the level the device
/// was certified for at factory registration. TrustClient (the behaviour
/// the netflix-1080p project demonstrated for browser CDMs, §V-C): the
/// request's claimed level is taken at face value — so an attacker who can
/// forge requests gets HD keys on an L3 device.
enum class LevelVerification { Strict, TrustClient };

/// Instance-scoped request counters, read by the campaign stats sink after a
/// cell completes. The server guards them with a mutex and hands out copies:
/// one ecosystem is normally driven by one worker at a time, but the counters
/// are the only server state an outside reader ever polls, so they carry the
/// WL_GUARDED_BY contract rather than relying on that convention.
struct LicenseServerStats {
  std::size_t requests = 0;
  std::size_t granted = 0;
  std::size_t denied = 0;
  std::size_t keys_issued = 0;    // key containers actually wrapped & sent
  std::size_t keys_withheld = 0;  // keys refused on security level (no HD to L3)
};

class LicenseServer {
 public:
  LicenseServer(std::shared_ptr<DeviceRootDatabase> roots, std::uint64_t seed);

  void set_level_verification(LevelVerification mode) { level_verification_ = mode; }
  LevelVerification level_verification() const { return level_verification_; }

  /// Limit issued licenses to `ticks` of the client's logical clock
  /// (0 = unlimited, the default).
  void set_license_duration(std::uint64_t ticks) { license_duration_ = ticks; }

  /// Register all content keys of a packaged title. Setup phase only: key
  /// registration (and the set_* knobs above) must finish before handle()
  /// runs concurrently — the key table is read lock-free on the hot path.
  void add_title(const media::PackagedTitle& title);

  /// Register a standalone key (e.g. an app's non-DASH secure-channel key).
  void add_generic_key(const media::KeyId& kid, SecretBytes key);

  /// Serve one license request under the given service policy.
  ///
  /// Thread-safe once setup is done: the crypto (KDF, signature check, key
  /// wrapping) runs lock-free against the frozen key table; only the stats
  /// counters and the iv/session-key rng take (separate, short) locks. A
  /// single-threaded caller sees exactly the historical draw order, so
  /// every seeded report stays bit-identical.
  LicenseResponse handle(const LicenseRequest& request, const RevocationPolicy& policy);

  std::size_t key_count() const { return keys_.size(); }

  /// Cumulative grant/deny/key counters since construction (snapshot).
  LicenseServerStats stats() const {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
  }

 private:
  struct StoredKey {
    SecretBytes key;
    SecurityLevel min_level = SecurityLevel::L3;
  };

  /// The lock-free part of handle(): authentication, policy and key
  /// wrapping. Level-withheld keys are counted into `keys_withheld` for the
  /// caller to fold into the stats under the stats lock.
  LicenseResponse handle_inner(const LicenseRequest& request, const RevocationPolicy& policy,
                               std::size_t& keys_withheld);

  std::shared_ptr<DeviceRootDatabase> roots_;
  mutable std::mutex rng_mutex_;
  Rng rng_ WL_GUARDED_BY(rng_mutex_);  // iv / session-key draws on the hot path
  LevelVerification level_verification_ = LevelVerification::Strict;
  std::uint64_t license_duration_ = 0;
  std::map<std::string, StoredKey> keys_;  // hex(kid) -> key; frozen after setup
  mutable std::mutex stats_mutex_;
  LicenseServerStats stats_ WL_GUARDED_BY(stats_mutex_);
};

}  // namespace wideleak::widevine
