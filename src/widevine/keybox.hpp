// The Widevine keybox: the factory-installed root of trust.
//
// Layout follows the publicly documented 128-byte structure:
//
//   offset   size  field
//   0        32    stable id (device identity, readable by the server)
//   32       16    device AES key  <-- the root-of-trust secret
//   48       72    key data (provisioning token & flags, server-opaque)
//   120      4     magic "kbox"
//   124      4     CRC-32 over bytes [0, 124)
//
// The magic + CRC pair is what makes the memory-scan recovery of the paper
// (CVE-2021-0639) practical: a scanner can find candidate structures by
// magic and confirm them by checksum with essentially no false positives.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "support/bytes.hpp"
#include "support/rng.hpp"
#include "support/secret.hpp"

namespace wideleak::widevine {

inline constexpr std::size_t kKeyboxSize = 128;
inline constexpr std::size_t kKeyboxStableIdSize = 32;
inline constexpr std::size_t kKeyboxDeviceKeySize = 16;
inline constexpr std::size_t kKeyboxKeyDataSize = 72;
inline constexpr std::size_t kKeyboxMagicOffset = 120;
inline constexpr char kKeyboxMagic[5] = "kbox";

class Keybox {
 public:
  Keybox() = default;
  Keybox(Bytes stable_id, SecretBytes device_key, Bytes key_data);

  const Bytes& stable_id() const { return stable_id_; }
  /// The root-of-trust secret; comparisons on it are constant-time and raw
  /// access requires an explicit reveal() at the call site.
  const SecretBytes& device_key() const { return device_key_; }
  const Bytes& key_data() const { return key_data_; }

  /// The 128-byte on-flash form (with magic and CRC). Deliberately exposes
  /// the device key in the clear: this *is* the CWE-922 artifact the
  /// paper's memory scanner hunts for.
  Bytes serialize() const;

  /// Validate a candidate blob without building anything: size, then magic,
  /// then CRC — cheapest test first, and no SecretBytes allocation for the
  /// losers. This is the scanner's candidate filter; `parse` the winner.
  static bool validate(BytesView raw);

  /// Parse + validate a 128-byte blob. Returns nullopt when the magic or
  /// CRC does not check out.
  static std::optional<Keybox> parse(BytesView raw);

  /// Constant-time on the device-key field (SecretBytes::operator==).
  friend bool operator==(const Keybox&, const Keybox&) = default;

 private:
  Bytes stable_id_;
  SecretBytes device_key_;
  Bytes key_data_;  // wl-lint: raw-bytes-ok (server-opaque token, not key material)
};

/// Mint the keybox a manufacturer installs for a given device serial.
/// Deterministic per (serial, provisioner seed) so the simulated device
/// root database and the device agree.
Keybox make_factory_keybox(const std::string& device_serial, std::uint64_t provisioner_seed);

}  // namespace wideleak::widevine
