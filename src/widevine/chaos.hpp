// Server-side chaos plans for widevine::DrmService. Where net::FaultyEndpoint
// injects failures at the network edge, a ChaosPlan makes the *service* itself
// misbehave: shards crash and restart (dropping every session they held),
// license traffic browns out (elevated deny rate plus latency), and overload
// sheds requests when a shard's same-tick queue depth exceeds a bound.
//
// Determinism contract: all windows are expressed in SimClock ticks and all
// probabilistic decisions draw from an rng seeded via
// derive_stream_seed(service seed, "chaos"), with a fixed draw discipline —
// exactly one u64 per serviced request whenever the plan carries brownout
// windows, zero otherwise. Because each campaign cell owns a private
// ecosystem (and therefore a private DrmService), (seed, plan) replays
// bit-identically at any worker count and in either scheduler mode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/errors.hpp"

namespace wideleak::widevine {

/// Sentinel shard index meaning "every shard" in a ShardCrashWindow.
inline constexpr std::size_t kAllShards = static_cast<std::size_t>(-1);

/// One crash/restart episode: at `start` the shard process dies, losing all
/// of its session state; for `down_ticks` the shard refuses traffic while it
/// restarts; afterwards it serves again (empty — clients reopen their
/// content-derived sessions transparently). The crash is applied lazily, at
/// the first request that touches the shard at or after `start`.
struct ShardCrashWindow {
  std::uint64_t start = 0;       // first tick of the outage
  std::uint64_t down_ticks = 0;  // refusal window length; serves again at start+down_ticks
  std::size_t shard = kAllShards;  // shard index, or kAllShards

  std::uint64_t end() const { return start + down_ticks; }
  bool covers(std::size_t shard_index) const {
    return shard == kAllShards || shard == shard_index;
  }
  bool down_at(std::uint64_t now) const { return now >= start && now < end(); }
};

/// A degraded-service window: every request pays `latency_ticks` of extra
/// service time and is denied with probability deny_pm/1000.
struct BrownoutWindow {
  std::uint64_t start = 0;
  std::uint64_t ticks = 0;  // window length
  std::uint32_t deny_pm = 0;  // per-mille deny probability inside the window
  std::uint64_t latency_ticks = 0;  // extra latency inside the window

  std::uint64_t end() const { return start + ticks; }
  bool active_at(std::uint64_t now) const { return now >= start && now < end(); }
};

/// Deterministic load shedding: if more than `queue_depth_limit` requests
/// land on one shard within a single tick, the excess is shed. 0 disables.
struct OverloadPolicy {
  std::size_t queue_depth_limit = 0;
};

/// A named, replayable schedule of service-level faults. An empty plan (the
/// default everywhere) is chaos-off: the service takes the exact same code
/// path, rng draws and lock pattern as before the chaos layer existed.
struct ChaosPlan {
  std::string name = "none";
  std::uint64_t service_latency_ticks = 0;  // baseline per-request service time
  std::vector<ShardCrashWindow> crashes;
  std::vector<BrownoutWindow> brownouts;
  OverloadPolicy overload;

  bool empty() const {
    return service_latency_ticks == 0 && crashes.empty() && brownouts.empty() &&
           overload.queue_depth_limit == 0;
  }
  bool has_brownout() const { return !brownouts.empty(); }
};

/// Aggregated chaos accounting, snapshotted into DrmServiceStats.
struct ChaosStats {
  std::uint64_t sessions_dropped = 0;    // sessions lost to shard crashes
  std::uint64_t shard_refusals = 0;      // requests refused while a shard was down
  std::uint64_t load_shed = 0;           // requests shed by the overload policy
  std::uint64_t brownout_denied = 0;     // requests denied inside brownout windows
  std::uint64_t latency_ticks = 0;       // total injected service latency
  std::uint64_t recovery_ticks = 0;      // sum over windows of (first grant tick - window end)
  std::uint64_t windows_recovered = 0;   // crash windows that saw post-restart traffic
};

/// Canned plans for the bench/campaign chaos axis. Recognized names:
/// "none" (empty), "shard-crash" (all-shard restart window placed between a
/// cell's first and second license exchanges), "brownout" (long elevated
/// deny/latency window), "overload" (tight per-shard queue bound).
/// Unknown names throw Error — callers validate via chaos_plan_from_string.
ChaosPlan chaos_plan_for(const std::string& name);

/// Parse-without-throwing variant for CLI arguments: returns false and
/// leaves `out` untouched when the name is not a known plan.
bool chaos_plan_from_string(const std::string& name, ChaosPlan& out);

/// Classify a LicenseResponse/ProvisioningResponse deny_reason: service
/// refusals minted by DrmService carry well-known prefixes and map onto the
/// retryable codes SessionInvalid / RateLimited; organic application
/// denials (revocation, policy, L3 downgrade) map to None and stay
/// authoritative. This is the client-side half of the reopen contract.
ErrorCode classify_service_refusal(const std::string& deny_reason);

}  // namespace wideleak::widevine
