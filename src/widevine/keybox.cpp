#include "widevine/keybox.hpp"

#include <stdexcept>

#include "support/byte_io.hpp"
#include "support/crc32.hpp"

namespace wideleak::widevine {

Keybox::Keybox(Bytes stable_id, SecretBytes device_key, Bytes key_data)
    : stable_id_(std::move(stable_id)),
      device_key_(std::move(device_key)),
      key_data_(std::move(key_data)) {
  if (stable_id_.size() != kKeyboxStableIdSize || device_key_.size() != kKeyboxDeviceKeySize ||
      key_data_.size() != kKeyboxKeyDataSize) {
    throw std::invalid_argument("Keybox: bad field sizes");
  }
}

Bytes Keybox::serialize() const {
  Bytes out;
  out.reserve(kKeyboxSize);
  out.insert(out.end(), stable_id_.begin(), stable_id_.end());
  // The on-flash form carries the device key in the clear — the simulated
  // CWE-922 flaw itself, so the reveal is the point.  wl-lint: reveal-ok
  const BytesView device_key = device_key_.reveal();
  out.insert(out.end(), device_key.begin(), device_key.end());
  out.insert(out.end(), key_data_.begin(), key_data_.end());
  out.insert(out.end(), kKeyboxMagic, kKeyboxMagic + 4);
  const std::uint32_t crc = crc32(BytesView(out.data(), kKeyboxMagicOffset + 4));
  ByteWriter w;
  w.u32(crc);
  const Bytes crc_bytes = w.take();
  out.insert(out.end(), crc_bytes.begin(), crc_bytes.end());
  return out;
}

bool Keybox::validate(BytesView raw) {
  if (raw.size() != kKeyboxSize) return false;
  for (int i = 0; i < 4; ++i) {
    if (raw[kKeyboxMagicOffset + static_cast<std::size_t>(i)] !=
        static_cast<std::uint8_t>(kKeyboxMagic[i])) {
      return false;
    }
  }
  ByteReader tail(raw.subspan(kKeyboxMagicOffset + 4));
  const std::uint32_t stored_crc = tail.u32();
  return crc32(raw.subspan(0, kKeyboxMagicOffset + 4)) == stored_crc;
}

std::optional<Keybox> Keybox::parse(BytesView raw) {
  if (!validate(raw)) return std::nullopt;

  Bytes stable_id(raw.begin(), raw.begin() + kKeyboxStableIdSize);
  SecretBytes device_key = SecretBytes::copy_of(
      raw.subspan(kKeyboxStableIdSize, kKeyboxDeviceKeySize));
  Bytes key_data(raw.begin() + kKeyboxStableIdSize + kKeyboxDeviceKeySize,
                 raw.begin() + kKeyboxMagicOffset);
  return Keybox(std::move(stable_id), std::move(device_key), std::move(key_data));
}

Keybox make_factory_keybox(const std::string& device_serial, std::uint64_t provisioner_seed) {
  std::uint64_t serial_hash = 1469598103934665603ull;  // FNV-1a
  for (char c : device_serial) {
    serial_hash ^= static_cast<std::uint8_t>(c);
    serial_hash *= 1099511628211ull;
  }
  Rng rng(provisioner_seed ^ serial_hash);
  Bytes stable_id = to_bytes(device_serial);
  stable_id.resize(kKeyboxStableIdSize, 0x00);
  return Keybox(std::move(stable_id), SecretBytes(rng.next_bytes(kKeyboxDeviceKeySize)),
                rng.next_bytes(kKeyboxKeyDataSize));
}

}  // namespace wideleak::widevine
