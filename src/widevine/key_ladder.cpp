#include "widevine/key_ladder.hpp"

#include "crypto/cmac.hpp"
#include "support/byte_io.hpp"

namespace wideleak::widevine {

namespace {

Bytes kdf_context(std::string_view label, BytesView context) {
  ByteWriter w;
  w.raw(label);
  w.u8(0x00);
  w.raw(context);
  w.u32(static_cast<std::uint32_t>(context.size() * 8));  // length suffix, SP 800-108 style
  return w.take();
}

}  // namespace

SessionKeys derive_session_keys(BytesView root_key, BytesView mac_context,
                                BytesView enc_context) {
  SessionKeys keys;
  const Bytes enc_ctx = kdf_context(kEncryptionLabel, enc_context);
  keys.enc_key = SecretBytes(crypto::cmac_counter_kdf(root_key, enc_ctx, 0x01, 16));

  const Bytes mac_ctx = kdf_context(kAuthenticationLabel, mac_context);
  // Counters 1..2 -> server MAC key, 3..4 -> client MAC key (64 bytes total).
  Bytes mac_block = crypto::cmac_counter_kdf(root_key, mac_ctx, 0x01, 64);
  keys.mac_key_server = SecretBytes::copy_of(BytesView(mac_block).subspan(0, 32));
  keys.mac_key_client = SecretBytes::copy_of(BytesView(mac_block).subspan(32));
  secure_wipe(mac_block);
  return keys;
}

}  // namespace wideleak::widevine
