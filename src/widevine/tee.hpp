// TrustZone TEE stand-in.
//
// The only property the study depends on is memory isolation: key material
// held by the Widevine trustlet is not reachable from any REE process an
// attacker (even root) can attach to. We model that by giving the TEE its
// own ProcessMemory that is simply never exposed through a SimProcess.
#pragma once

#include "hooking/memory.hpp"

namespace wideleak::widevine {

class Tee {
 public:
  /// Secure-world memory. Only the L1 CDM holds a reference; attacker
  /// tooling in src/core has no path to this object.
  hooking::ProcessMemory& secure_memory() { return memory_; }
  const hooking::ProcessMemory& secure_memory() const { return memory_; }

 private:
  hooking::ProcessMemory memory_;
};

}  // namespace wideleak::widevine
