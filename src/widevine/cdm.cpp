#include "widevine/cdm.hpp"

#include "support/errors.hpp"

namespace wideleak::widevine {

WidevineCdm::WidevineCdm(const OemCryptoConfig& config) : oemcrypto_(config) {}

void WidevineCdm::close_session(SessionId session) {
  last_request_body_.erase(session);
  request_scheme_.erase(session);
  oemcrypto_.close_session(session);
}

ProvisioningRequest WidevineCdm::create_provisioning_request(const ClientIdentity& identity) {
  const SessionId session = oemcrypto_.open_session();
  pending_provisioning_session_ = session;

  ProvisioningRequest request;
  request.client = identity;
  request.nonce = oemcrypto_.generate_nonce(session);
  const Bytes body = request.body();
  if (oemcrypto_.generate_derived_keys(session, body, body) != OemCryptoResult::Success) {
    throw StateError("cdm: provisioning requires an installed keybox");
  }
  if (oemcrypto_.generate_signature(session, body, request.signature) !=
      OemCryptoResult::Success) {
    throw StateError("cdm: provisioning request signing failed");
  }
  return request;
}

OemCryptoResult WidevineCdm::process_provisioning_response(
    const ProvisioningResponse& response) {
  if (!pending_provisioning_session_) return OemCryptoResult::InvalidSession;
  const SessionId session = *pending_provisioning_session_;
  pending_provisioning_session_.reset();

  if (!response.granted) {
    oemcrypto_.close_session(session);
    return OemCryptoResult::SignatureFailure;
  }
  const OemCryptoResult result =
      oemcrypto_.rewrap_device_rsa_key(session, response.body(), response.mac,
                                       response.wrapping_iv, response.wrapped_rsa_key);
  oemcrypto_.close_session(session);
  return result;
}

LicenseRequest WidevineCdm::create_license_request(SessionId session,
                                                   const ClientIdentity& identity,
                                                   const std::vector<media::KeyId>& key_ids) {
  LicenseRequest request;
  request.client = identity;
  request.nonce = oemcrypto_.generate_nonce(session);
  request.key_ids = key_ids;

  if (oemcrypto_.has_device_rsa_key()) {
    request.scheme = SignatureScheme::DeviceRsa;
    request.device_rsa_public = oemcrypto_.device_rsa_public()->serialize();
    const Bytes body = request.body();
    if (oemcrypto_.generate_rsa_signature(session, body, request.signature) !=
        OemCryptoResult::Success) {
      throw StateError("cdm: RSA request signing failed");
    }
    last_request_body_[session] = body;
  } else {
    request.scheme = SignatureScheme::KeyboxCmac;
    const Bytes body = request.body();
    if (oemcrypto_.generate_derived_keys(session, body, body) != OemCryptoResult::Success) {
      throw StateError("cdm: license request requires an installed keybox");
    }
    if (oemcrypto_.generate_signature(session, body, request.signature) !=
        OemCryptoResult::Success) {
      throw StateError("cdm: license request signing failed");
    }
    last_request_body_[session] = body;
  }
  request_scheme_[session] = request.scheme;
  return request;
}

OemCryptoResult WidevineCdm::process_license_response(SessionId session,
                                                      const LicenseResponse& response) {
  const auto body_it = last_request_body_.find(session);
  const auto scheme_it = request_scheme_.find(session);
  if (body_it == last_request_body_.end() || scheme_it == request_scheme_.end()) {
    return OemCryptoResult::InvalidSession;
  }
  if (!response.granted) return OemCryptoResult::SignatureFailure;

  if (scheme_it->second == SignatureScheme::DeviceRsa) {
    const Bytes& context = body_it->second;
    const OemCryptoResult derived = oemcrypto_.derive_keys_from_session_key(
        session, response.session_key_wrapped, context, context);
    if (derived != OemCryptoResult::Success) return derived;
  }
  return oemcrypto_.load_keys(session, response.body(), response.mac, response.keys,
                              response.license_duration);
}

}  // namespace wideleak::widevine
