// Device / CDM revocation policy.
//
// Widevine "may revoke devices due to non-compliance with their security
// rules, e.g. no longer receiving security updates" — but OTT services
// choose whether to enforce that when serving licenses (the paper's Q4).
#pragma once

#include <optional>
#include <string>

#include "widevine/protocol.hpp"

namespace wideleak::widevine {

/// The enforcement choice one service makes.
struct RevocationPolicy {
  /// Devices whose CDM is older than this are refused. nullopt = serve
  /// everyone (the "availability over security" choice most apps make).
  std::optional<CdmVersion> min_cdm_version;

  bool is_revoked(const ClientIdentity& client) const;
  std::string describe() const;
};

/// The Widevine-recommended policy at study time: refuse CDMs that predate
/// the secure keybox storage fix.
RevocationPolicy recommended_revocation_policy();

/// The permissive policy: serve every device, including discontinued ones.
RevocationPolicy permissive_revocation_policy();

}  // namespace wideleak::widevine
