#include "widevine/drm_service.hpp"

#include <string>

#include "support/errors.hpp"
#include "support/rng.hpp"

namespace wideleak::widevine {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  if (n < 2) return 1;
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// splitmix64 finalizer: full-avalanche, so consecutive stable ids spread
/// evenly across shards.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

// --- Shard (every method takes the shard's own striped lock) ----------------

bool DrmService::Shard::touch(ServiceSessionId id, std::uint64_t now, bool count_license) {
  const std::lock_guard<std::mutex> lock(mutex);
  const auto it = sessions.find(id);
  if (it == sessions.end()) return false;
  Session& session = it->second;
  session.last_used = now;
  if (count_license) {
    ++session.licenses;
    ++counters.license_requests;
  }
  lru.splice(lru.begin(), lru, session.lru_it);  // move to MRU position
  return true;
}

DrmService::InsertOutcome DrmService::Shard::insert(ServiceSessionId id, AppId app,
                                                    std::uint64_t now, std::size_t capacity,
                                                    bool count_license) {
  const std::lock_guard<std::mutex> lock(mutex);
  InsertOutcome outcome;

  const auto existing = sessions.find(id);
  if (existing != sessions.end()) {
    // A racing open won between our miss and this insert: fold into a touch.
    existing->second.last_used = now;
    if (count_license) {
      ++existing->second.licenses;
      ++counters.license_requests;
    }
    lru.splice(lru.begin(), lru, existing->second.lru_it);
    return outcome;
  }

  if (capacity != 0 && sessions.size() >= capacity) {
    // DrmSessionManager-style reclaim: the least-recently-used session in
    // this stripe makes room. The new session is inserted afterwards, so
    // it can never be its own victim.
    const ServiceSessionId lru_id = lru.back();
    const auto victim = sessions.find(lru_id);
    outcome.evicted = true;
    outcome.victim = lru_id;
    outcome.victim_app = victim->second.app;
    sessions.erase(victim);
    lru.pop_back();
    ++counters.evicted;
  }

  lru.push_front(id);
  Session session;
  session.app = app;
  session.last_used = now;
  session.licenses = count_license ? 1 : 0;
  session.lru_it = lru.begin();
  sessions.emplace(id, session);
  ++counters.opened;
  if (count_license) ++counters.license_requests;
  outcome.inserted = true;
  return outcome;
}

bool DrmService::Shard::erase(ServiceSessionId id, AppId& app_out) {
  const std::lock_guard<std::mutex> lock(mutex);
  const auto it = sessions.find(id);
  if (it == sessions.end()) return false;
  app_out = it->second.app;
  lru.erase(it->second.lru_it);
  sessions.erase(it);
  ++counters.closed;
  return true;
}

bool DrmService::Shard::contains(ServiceSessionId id) const {
  const std::lock_guard<std::mutex> lock(mutex);
  return sessions.find(id) != sessions.end();
}

std::size_t DrmService::Shard::drop_all(std::vector<AppId>& owners_out) {
  const std::lock_guard<std::mutex> lock(mutex);
  const std::size_t dropped = sessions.size();
  // Report owners in LRU order (a deterministic order, unlike map order)
  // so slot release is replayable.
  for (const ServiceSessionId id : lru) owners_out.push_back(sessions.at(id).app);
  sessions.clear();
  lru.clear();
  return dropped;
}

void DrmService::Shard::snapshot(ShardCounters& counters_out, std::uint64_t& live_out) const {
  const std::lock_guard<std::mutex> lock(mutex);
  counters_out = counters;
  live_out = sessions.size();
}

// --- AppState ----------------------------------------------------------------

bool DrmService::AppState::admit(std::size_t quota) {
  const std::lock_guard<std::mutex> lock(mutex);
  if (quota != 0 && live >= quota) {
    ++admission_rejected;
    return false;
  }
  ++live;
  ++opened;
  return true;
}

void DrmService::AppState::release() {
  const std::lock_guard<std::mutex> lock(mutex);
  if (live > 0) --live;
}

bool DrmService::AppState::take_token(std::uint64_t capacity, std::uint64_t per_tick,
                                      std::uint64_t now) {
  if (capacity == 0) return true;  // rate limiting off
  const std::lock_guard<std::mutex> lock(mutex);
  if (!bucket_primed) {
    // A fresh tenant starts with a full bucket: the classic token-bucket
    // burst allowance, and what the SimClock refill tests assume.
    tokens = capacity;
    bucket_primed = true;
    last_refill = now;
  }
  if (now > last_refill) {
    const std::uint64_t earned = (now - last_refill) * per_tick;
    tokens = earned > capacity - tokens ? capacity : tokens + earned;
    last_refill = now;
  }
  if (tokens == 0) {
    ++rate_limited;
    return false;
  }
  --tokens;
  return true;
}

void DrmService::AppState::count_provisioning() {
  const std::lock_guard<std::mutex> lock(mutex);
  ++provisioning_requests;
}

// --- DrmService --------------------------------------------------------------

DrmService::DrmService(std::shared_ptr<LicenseServer> license_server,
                       std::shared_ptr<ProvisioningServer> provisioning_server,
                       const DrmServiceConfig& config, support::SimClock* clock)
    : seed_(config.seed),
      config_(config),
      clock_(clock),
      chaos_rng_(derive_stream_seed(config.seed, "chaos")),
      license_server_(std::move(license_server)),
      provisioning_server_(std::move(provisioning_server)),
      shards_(round_up_pow2(config.shard_count)) {
  shard_mask_ = shards_.size() - 1;
  if (config_.max_sessions != 0) {
    // Split the global budget across stripes, rounding up so the sum is
    // never below the configured total.
    shard_capacity_ = (config_.max_sessions + shards_.size() - 1) / shards_.size();
    if (shard_capacity_ == 0) shard_capacity_ = 1;
  }
  chaos_windows_.resize(config_.chaos.crashes.size());
  for (ChaosWindowState& window : chaos_windows_) {
    window.applied.assign(shards_.size(), 0);
  }
  if (config_.chaos.overload.queue_depth_limit != 0) {
    shard_tick_load_.assign(shards_.size(), {0, 0});
  }
}

AppId DrmService::register_app(const std::string& name) {
  const auto it = app_ids_.find(name);
  if (it != app_ids_.end()) return it->second;
  const AppId id = apps_.size();
  apps_.emplace_back(name);
  app_ids_.emplace(name, id);
  return id;
}

std::optional<AppId> DrmService::find_app(std::string_view name) const {
  const auto it = app_ids_.find(std::string(name));
  if (it == app_ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& DrmService::app_name(AppId app) const {
  if (app >= apps_.size()) throw StateError("drm-service: unknown app id");
  return apps_[app].name;
}

ServiceSessionId DrmService::session_id_for(AppId app, BytesView stable_id) const {
  // Seeded FNV-1a over the stable id, tenant-salted, splitmix-finalized:
  // deterministic (no rng draw), allocation-free, and avalanched so the
  // low bits that pick the shard are uniform.
  std::uint64_t h = seed_ ^ mix64(static_cast<std::uint64_t>(app) + 1);
  for (const auto b : stable_id) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001B3ULL;
  }
  return mix64(h);
}

SessionAdmission DrmService::touch_or_open(AppId app, ServiceSessionId id, std::uint64_t now,
                                           bool count_license) {
  Shard& shard = shard_for(id);
  if (shard.touch(id, now, count_license)) return SessionAdmission::Existing;

  // Miss: claim a per-app slot first (admission control), then insert.
  // The two locks are never held together; a racing open of the same id
  // is folded into a touch by Shard::insert and the slot returned.
  if (!apps_[app].admit(config_.max_sessions_per_app)) return SessionAdmission::Rejected;

  const InsertOutcome outcome = shard.insert(id, app, now, shard_capacity_, count_license);
  if (!outcome.inserted) {
    apps_[app].release();  // lost the race; the winner holds the slot
    return SessionAdmission::Existing;
  }
  if (outcome.evicted) apps_[outcome.victim_app].release();
  return SessionAdmission::Opened;
}

SessionAdmission DrmService::open_session(AppId app, BytesView stable_id, std::uint64_t now) {
  return touch_or_open(app, session_id_for(app, stable_id), now, /*count_license=*/false);
}

bool DrmService::close_session(ServiceSessionId id) {
  AppId owner = 0;
  if (!shard_for(id).erase(id, owner)) return false;
  apps_[owner].release();
  return true;
}

bool DrmService::has_session(ServiceSessionId id) const {
  return shard_for(id).contains(id);
}

DrmService::ChaosDecision DrmService::chaos_decide(std::optional<std::size_t> shard_index,
                                                   std::uint64_t now) {
  ChaosDecision decision;
  const ChaosPlan& plan = config_.chaos;
  const std::lock_guard<std::mutex> lock(chaos_mutex_);

  // Fixed draw discipline: one u64 per request whenever the plan carries
  // brownout windows, even for requests that are refused for other reasons
  // — the chaos-rng stream position stays a pure function of the request
  // ordinal, never of the verdicts along the way.
  std::uint64_t draw = 0;
  if (plan.has_brownout()) draw = chaos_rng_.next_u64();

  decision.latency = plan.service_latency_ticks;

  bool down = false;
  if (shard_index) {
    for (std::size_t w = 0; w < plan.crashes.size(); ++w) {
      const ShardCrashWindow& window = plan.crashes[w];
      if (!window.covers(*shard_index) || now < window.start) continue;
      // Lazy crash application: the first request to touch this shard at or
      // after the crash instant finds the restarted (empty) process, so the
      // pre-crash sessions are dropped now even if the outage itself has
      // already ended.
      if (!chaos_windows_[w].applied[*shard_index]) {
        chaos_windows_[w].applied[*shard_index] = 1;
        decision.drop_shard = true;
      }
      if (window.down_at(now)) {
        down = true;
      } else if (!chaos_windows_[w].recovered) {
        // First request served after the restart window: time-to-recover is
        // how long the shard sat idle past its nominal restart instant.
        chaos_windows_[w].recovered = true;
        ++chaos_stats_.windows_recovered;
        chaos_stats_.recovery_ticks += now - window.end();
      }
    }
  }

  for (const BrownoutWindow& window : plan.brownouts) {
    if (!window.active_at(now)) continue;
    decision.latency += window.latency_ticks;
    if (window.deny_pm != 0 && draw % 1000 < window.deny_pm) {
      decision.kind = ChaosDecision::Kind::BrownoutDeny;
      decision.reason = "brownout: service degraded";
    }
  }

  if (down) {
    // A dead shard trumps everything (and pays no brownout latency — there
    // is no process to queue in).
    decision.kind = ChaosDecision::Kind::ShardDown;
    decision.reason = "session invalid: shard restarting";
    decision.latency = 0;
    ++chaos_stats_.shard_refusals;
  } else if (shard_index && plan.overload.queue_depth_limit != 0) {
    auto& [tick, count] = shard_tick_load_[*shard_index];
    if (tick == now) {
      ++count;
    } else {
      tick = now;
      count = 1;
    }
    if (count > plan.overload.queue_depth_limit &&
        decision.kind == ChaosDecision::Kind::Proceed) {
      decision.kind = ChaosDecision::Kind::Shed;
      decision.reason = "overloaded: shard queue full";
      ++chaos_stats_.load_shed;
    }
  }

  if (decision.kind == ChaosDecision::Kind::BrownoutDeny) ++chaos_stats_.brownout_denied;
  chaos_stats_.latency_ticks += decision.latency;
  return decision;
}

void DrmService::drop_crashed_shard(std::size_t shard_index) {
  std::vector<AppId> owners;
  const std::size_t dropped = shards_[shard_index].drop_all(owners);
  for (const AppId owner : owners) apps_[owner].release();
  if (dropped != 0) {
    const std::lock_guard<std::mutex> lock(chaos_mutex_);
    chaos_stats_.sessions_dropped += dropped;
  }
}

LicenseResponse DrmService::handle_license(AppId app, const LicenseRequest& request,
                                           const RevocationPolicy& policy, std::uint64_t now) {
  const ServiceSessionId id = session_id_for(app, request.client.stable_id);
  if (!config_.chaos.empty()) {
    const ChaosDecision chaos =
        chaos_decide(static_cast<std::size_t>(id & shard_mask_), now);
    if (chaos.drop_shard) drop_crashed_shard(id & shard_mask_);
    if (chaos.latency != 0 && clock_ != nullptr) {
      clock_->sleep(chaos.latency);
      now = clock_->now();
    }
    if (chaos.kind != ChaosDecision::Kind::Proceed) {
      LicenseResponse denied;
      denied.deny_reason = chaos.reason;
      return denied;
    }
  }
  if (!apps_[app].take_token(config_.bucket_capacity, config_.tokens_per_tick, now)) {
    LicenseResponse denied;
    denied.deny_reason = "rate limited";
    return denied;
  }
  if (touch_or_open(app, id, now, /*count_license=*/true) == SessionAdmission::Rejected) {
    LicenseResponse denied;
    denied.deny_reason = "session quota exceeded";
    return denied;
  }
  return license_server_->handle(request, policy);
}

LicenseResponse DrmService::handle_license(AppId app, const LicenseRequest& request,
                                           const RevocationPolicy& policy) {
  return handle_license(app, request, policy, clock_ != nullptr ? clock_->now() : 0);
}

ProvisioningResponse DrmService::handle_provision(AppId app, const ProvisioningRequest& request,
                                                  std::uint64_t now) {
  if (!config_.chaos.empty()) {
    // Provisioning has no session shard, so only brownout/latency apply.
    const ChaosDecision chaos = chaos_decide(std::nullopt, now);
    if (chaos.latency != 0 && clock_ != nullptr) {
      clock_->sleep(chaos.latency);
      now = clock_->now();
    }
    if (chaos.kind != ChaosDecision::Kind::Proceed) {
      ProvisioningResponse denied;
      denied.deny_reason = chaos.reason;
      return denied;
    }
  }
  if (!apps_[app].take_token(config_.bucket_capacity, config_.tokens_per_tick, now)) {
    ProvisioningResponse denied;
    denied.deny_reason = "rate limited";
    return denied;
  }
  apps_[app].count_provisioning();
  return provisioning_server_->handle(request);
}

ProvisioningResponse DrmService::handle_provision(AppId app,
                                                  const ProvisioningRequest& request) {
  return handle_provision(app, request, clock_ != nullptr ? clock_->now() : 0);
}

DrmServiceStats DrmService::stats() const {
  DrmServiceStats total;
  for (const Shard& shard : shards_) {
    ShardCounters counters;
    std::uint64_t live = 0;
    shard.snapshot(counters, live);
    total.sessions_opened += counters.opened;
    total.sessions_closed += counters.closed;
    total.sessions_evicted += counters.evicted;
    total.license_requests += counters.license_requests;
    total.live_sessions += live;
  }
  for (const AppState& app : apps_) {
    const std::lock_guard<std::mutex> lock(app.mutex);
    total.admission_rejected += app.admission_rejected;
    total.rate_limited += app.rate_limited;
    total.provisioning_requests += app.provisioning_requests;
  }
  {
    const std::lock_guard<std::mutex> lock(chaos_mutex_);
    total.chaos = chaos_stats_;
  }
  return total;
}

}  // namespace wideleak::widevine
