#include "widevine/tee.hpp"

// Header-only today; the translation unit anchors the library target.
