// Wire types of the (simulated) Widevine protocol: what travels between the
// CDM, the provisioning server and the license server. Every message body
// is also the KDF context its session keys are derived from, so the
// buffers an attacker dumps at the HAL boundary are exactly what the key
// ladder needs — the property the paper's PoC exploits.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "media/track.hpp"
#include "support/bytes.hpp"

namespace wideleak::widevine {

enum class SecurityLevel : std::uint8_t { L1 = 1, L3 = 3 };

std::string to_string(SecurityLevel level);

/// CDM release version. The paper's discontinued Nexus 5 runs 3.1; the
/// current release at study time was 15.0.
struct CdmVersion {
  std::uint16_t major = 15;
  std::uint16_t minor = 0;

  friend auto operator<=>(const CdmVersion&, const CdmVersion&) = default;

  /// Legacy CDMs (< 14) store the keybox insecurely (CWE-922) — the flaw
  /// behind CVE-2021-0639 in this simulation.
  bool has_insecure_keybox_storage() const { return major < 14; }

  std::string label() const;
};

inline constexpr CdmVersion kLegacyCdm{3, 1};
inline constexpr CdmVersion kCurrentCdm{15, 0};

/// How a license request is authenticated.
enum class SignatureScheme : std::uint8_t {
  KeyboxCmac = 1,  ///< legacy path: CMAC keys derived from the keybox
  DeviceRsa = 2,   ///< provisioned path: RSASSA-PSS with the Device RSA Key
};

/// Client identity block sent in every request.
struct ClientIdentity {
  Bytes stable_id;  // keybox stable id
  std::string device_model;
  CdmVersion cdm_version;
  SecurityLevel level = SecurityLevel::L3;

  Bytes serialize() const;
  static ClientIdentity deserialize(BytesView data);
};

// --- Provisioning ----------------------------------------------------------

struct ProvisioningRequest {
  ClientIdentity client;
  Bytes nonce;  // anti-replay, chosen by the CDM

  Bytes body() const;  ///< the signed / KDF-context portion
  Bytes signature;     ///< CMAC under keybox-derived client MAC key

  Bytes serialize() const;
  static ProvisioningRequest deserialize(BytesView data);
};

struct ProvisioningResponse {
  bool granted = false;
  std::string deny_reason;
  Bytes wrapping_iv;      // CBC IV for the RSA key wrap
  Bytes wrapped_rsa_key;  // AES-CBC(session enc key) of the serialized key pair

  Bytes body() const;
  Bytes mac;  ///< HMAC-SHA256 under keybox-derived server MAC key

  Bytes serialize() const;
  static ProvisioningResponse deserialize(BytesView data);
};

// --- Licensing --------------------------------------------------------------

struct LicenseRequest {
  ClientIdentity client;
  Bytes nonce;
  std::vector<media::KeyId> key_ids;  // from the pssh box / MPD
  SignatureScheme scheme = SignatureScheme::KeyboxCmac;
  Bytes device_rsa_public;  // serialized RsaPublicKey (DeviceRsa scheme only)

  Bytes body() const;  ///< signed portion; doubles as the KDF context
  Bytes signature;     ///< CMAC (keybox path) or RSA-PSS (provisioned path)

  Bytes serialize() const;
  static LicenseRequest deserialize(BytesView data);
};

/// One wrapped content key plus its control block.
struct KeyContainer {
  media::KeyId kid;
  Bytes iv;           // CBC IV for the content-key wrap
  Bytes wrapped_key;  // AES-CBC(session enc key) of the 16-byte content key
  SecurityLevel min_level = SecurityLevel::L3;  // key control: who may load it

  Bytes serialize() const;
  static KeyContainer deserialize(BytesView data);
};

struct LicenseResponse {
  bool granted = false;
  std::string deny_reason;
  Bytes session_key_wrapped;  // RSA path: RSA-OAEP(device pub, session key)
  std::vector<KeyContainer> keys;
  /// License policy: how many logical clock ticks the keys stay usable
  /// after loading (0 = unlimited). Enforced by OEMCrypto, like the real
  /// key-control duration field.
  std::uint64_t license_duration = 0;

  Bytes body() const;
  Bytes mac;  ///< HMAC-SHA256 under the derived server MAC key

  Bytes serialize() const;
  static LicenseResponse deserialize(BytesView data);
};

}  // namespace wideleak::widevine
