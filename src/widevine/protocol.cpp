#include "widevine/protocol.hpp"

#include "support/byte_io.hpp"

namespace wideleak::widevine {

std::string to_string(SecurityLevel level) {
  return level == SecurityLevel::L1 ? "L1" : "L3";
}

std::string CdmVersion::label() const {
  return std::to_string(major) + "." + std::to_string(minor) + ".0";
}

Bytes ClientIdentity::serialize() const {
  ByteWriter w;
  w.var_bytes(stable_id);
  w.var_string(device_model);
  w.u16(cdm_version.major);
  w.u16(cdm_version.minor);
  w.u8(static_cast<std::uint8_t>(level));
  return w.take();
}

ClientIdentity ClientIdentity::deserialize(BytesView data) {
  ByteReader r(data);
  ClientIdentity out;
  out.stable_id = r.var_bytes();
  out.device_model = r.var_string();
  out.cdm_version.major = r.u16();
  out.cdm_version.minor = r.u16();
  out.level = static_cast<SecurityLevel>(r.u8());
  return out;
}

Bytes ProvisioningRequest::body() const {
  ByteWriter w;
  w.raw("wv_prov_req_v1");
  w.var_bytes(client.serialize());
  w.var_bytes(nonce);
  return w.take();
}

Bytes ProvisioningRequest::serialize() const {
  ByteWriter w;
  w.var_bytes(body());
  w.var_bytes(signature);
  return w.take();
}

ProvisioningRequest ProvisioningRequest::deserialize(BytesView data) {
  ByteReader outer(data);
  const Bytes body_raw = outer.var_bytes();
  ProvisioningRequest out;
  out.signature = outer.var_bytes();
  ByteReader r{BytesView(body_raw)};
  r.raw(14);  // label
  out.client = ClientIdentity::deserialize(r.var_bytes());
  out.nonce = r.var_bytes();
  return out;
}

Bytes ProvisioningResponse::body() const {
  ByteWriter w;
  w.raw("wv_prov_res_v1");
  w.u8(granted ? 1 : 0);
  w.var_string(deny_reason);
  w.var_bytes(wrapping_iv);
  w.var_bytes(wrapped_rsa_key);
  return w.take();
}

Bytes ProvisioningResponse::serialize() const {
  ByteWriter w;
  w.var_bytes(body());
  w.var_bytes(mac);
  return w.take();
}

ProvisioningResponse ProvisioningResponse::deserialize(BytesView data) {
  ByteReader outer(data);
  const Bytes body_raw = outer.var_bytes();
  ProvisioningResponse out;
  out.mac = outer.var_bytes();
  ByteReader r{BytesView(body_raw)};
  r.raw(14);  // label
  out.granted = r.u8() != 0;
  out.deny_reason = r.var_string();
  out.wrapping_iv = r.var_bytes();
  out.wrapped_rsa_key = r.var_bytes();
  return out;
}

Bytes LicenseRequest::body() const {
  ByteWriter w;
  w.raw("wv_lic_req_v1");
  w.var_bytes(client.serialize());
  w.var_bytes(nonce);
  w.u32(static_cast<std::uint32_t>(key_ids.size()));
  for (const media::KeyId& kid : key_ids) w.var_bytes(kid);
  w.u8(static_cast<std::uint8_t>(scheme));
  w.var_bytes(device_rsa_public);
  return w.take();
}

Bytes LicenseRequest::serialize() const {
  ByteWriter w;
  w.var_bytes(body());
  w.var_bytes(signature);
  return w.take();
}

LicenseRequest LicenseRequest::deserialize(BytesView data) {
  ByteReader outer(data);
  const Bytes body_raw = outer.var_bytes();
  LicenseRequest out;
  out.signature = outer.var_bytes();
  ByteReader r{BytesView(body_raw)};
  r.raw(13);  // label
  out.client = ClientIdentity::deserialize(r.var_bytes());
  out.nonce = r.var_bytes();
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) out.key_ids.push_back(r.var_bytes());
  out.scheme = static_cast<SignatureScheme>(r.u8());
  out.device_rsa_public = r.var_bytes();
  return out;
}

Bytes KeyContainer::serialize() const {
  ByteWriter w;
  w.var_bytes(kid);
  w.var_bytes(iv);
  w.var_bytes(wrapped_key);
  w.u8(static_cast<std::uint8_t>(min_level));
  return w.take();
}

KeyContainer KeyContainer::deserialize(BytesView data) {
  ByteReader r(data);
  KeyContainer out;
  out.kid = r.var_bytes();
  out.iv = r.var_bytes();
  out.wrapped_key = r.var_bytes();
  out.min_level = static_cast<SecurityLevel>(r.u8());
  return out;
}

Bytes LicenseResponse::body() const {
  ByteWriter w;
  w.raw("wv_lic_res_v1");
  w.u8(granted ? 1 : 0);
  w.var_string(deny_reason);
  w.var_bytes(session_key_wrapped);
  w.u64(license_duration);
  w.u32(static_cast<std::uint32_t>(keys.size()));
  for (const KeyContainer& key : keys) w.var_bytes(key.serialize());
  return w.take();
}

Bytes LicenseResponse::serialize() const {
  ByteWriter w;
  w.var_bytes(body());
  w.var_bytes(mac);
  return w.take();
}

LicenseResponse LicenseResponse::deserialize(BytesView data) {
  ByteReader outer(data);
  const Bytes body_raw = outer.var_bytes();
  LicenseResponse out;
  out.mac = outer.var_bytes();
  ByteReader r{BytesView(body_raw)};
  r.raw(13);  // label
  out.granted = r.u8() != 0;
  out.deny_reason = r.var_string();
  out.session_key_wrapped = r.var_bytes();
  out.license_duration = r.u64();
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    out.keys.push_back(KeyContainer::deserialize(r.var_bytes()));
  }
  return out;
}

}  // namespace wideleak::widevine
