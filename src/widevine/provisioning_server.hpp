// Widevine provisioning: turns a keybox-authenticated device into one that
// holds a Device RSA Key (the middle rung of the key ladder).
//
// Also hosts the device-root database — the server-side copy of every
// factory keybox identity that both provisioning and licensing verify
// clients against.
#pragma once

#include <map>
#include <set>
#include <memory>
#include <mutex>
#include <optional>

#include "crypto/rsa.hpp"
#include "support/annotations.hpp"
#include "widevine/keybox.hpp"
#include "widevine/protocol.hpp"
#include "widevine/revocation.hpp"

namespace wideleak::widevine {

/// Server-side registry of factory device roots and provisioned RSA keys.
///
/// Thread safety: factory registration (register_device) is setup-phase —
/// it must finish before the servers serve concurrently, after which the
/// keybox/certification maps are read lock-free. The provisioned-RSA map
/// is the one table written on the serving path (provisioning inserts
/// while license requests look up), so it carries its own lock.
class DeviceRootDatabase {
 public:
  /// Record a keybox at factory-provisioning time, together with the
  /// security level the device model is certified for. Strict license
  /// servers cap the client's *claimed* level with this record — the
  /// verification whose absence the netflix-1080p exploit abuses (§V-C).
  void register_device(const Keybox& keybox,
                       SecurityLevel certified_level = SecurityLevel::L3);

  /// The device AES key for a stable id, if known.
  std::optional<SecretBytes> device_key_for(BytesView stable_id) const;

  /// The level the device was certified for (L3 when unknown).
  SecurityLevel certified_level_for(BytesView stable_id) const;

  /// Record / look up the RSA public key issued to a device.
  void record_provisioned_key(BytesView stable_id, const crypto::RsaPublicKey& key);
  std::optional<crypto::RsaPublicKey> provisioned_key_for(BytesView stable_id) const;

  std::size_t device_count() const { return device_keys_.size(); }

 private:
  std::map<std::string, SecretBytes> device_keys_;         // hex(stable_id) -> AES key
  std::map<std::string, SecurityLevel> certified_levels_;  // hex(stable_id) -> level
  mutable std::mutex rsa_mutex_;
  std::map<std::string, crypto::RsaPublicKey> rsa_keys_ WL_GUARDED_BY(rsa_mutex_);
};

/// Instance-scoped request counters (see LicenseServerStats: guarded by a
/// mutex inside the server, handed out as snapshots).
struct ProvisioningServerStats {
  std::size_t requests = 0;
  std::size_t granted = 0;
  std::size_t denied = 0;  // unknown device / bad signature / replay / revoked
};

class ProvisioningServer {
 public:
  ProvisioningServer(std::shared_ptr<DeviceRootDatabase> roots, std::uint64_t seed,
                     std::size_t rsa_bits = 1024);

  /// The Widevine-side revocation gate (distinct from per-OTT enforcement).
  void set_policy(RevocationPolicy policy) { policy_ = std::move(policy); }

  ProvisioningResponse handle(const ProvisioningRequest& request);

  /// Cumulative grant/deny counters since construction (snapshot).
  ProvisioningServerStats stats() const {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
  }

 private:
  /// Serialized on state_mutex_: provisioning mutates the nonce-replay set,
  /// the issued-key cache and the rng. Provisioning happens once per
  /// device, so full serialization costs nothing while license traffic
  /// (which only reads the root database) proceeds in parallel.
  ProvisioningResponse handle_inner(const ProvisioningRequest& request)
      WL_REQUIRES(state_mutex_);

  std::shared_ptr<DeviceRootDatabase> roots_;
  mutable std::mutex state_mutex_;
  Rng rng_ WL_GUARDED_BY(state_mutex_);
  std::size_t rsa_bits_;
  RevocationPolicy policy_ = permissive_revocation_policy();
  std::map<std::string, crypto::RsaKeyPair> issued_ WL_GUARDED_BY(state_mutex_);
  std::set<std::string> seen_nonces_ WL_GUARDED_BY(state_mutex_);
  mutable std::mutex stats_mutex_;
  ProvisioningServerStats stats_ WL_GUARDED_BY(stats_mutex_);
};

}  // namespace wideleak::widevine
