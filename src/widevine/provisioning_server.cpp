#include "widevine/provisioning_server.hpp"

#include "crypto/hmac.hpp"
#include "crypto/modes.hpp"
#include "widevine/key_ladder.hpp"

namespace wideleak::widevine {

void DeviceRootDatabase::register_device(const Keybox& keybox, SecurityLevel certified_level) {
  device_keys_[hex_encode(keybox.stable_id())] = keybox.device_key();
  certified_levels_[hex_encode(keybox.stable_id())] = certified_level;
}

SecurityLevel DeviceRootDatabase::certified_level_for(BytesView stable_id) const {
  const auto it = certified_levels_.find(hex_encode(stable_id));
  return it == certified_levels_.end() ? SecurityLevel::L3 : it->second;
}

std::optional<SecretBytes> DeviceRootDatabase::device_key_for(BytesView stable_id) const {
  const auto it = device_keys_.find(hex_encode(stable_id));
  if (it == device_keys_.end()) return std::nullopt;
  return it->second;
}

void DeviceRootDatabase::record_provisioned_key(BytesView stable_id,
                                                const crypto::RsaPublicKey& key) {
  const std::lock_guard<std::mutex> lock(rsa_mutex_);
  rsa_keys_[hex_encode(stable_id)] = key;
}

std::optional<crypto::RsaPublicKey> DeviceRootDatabase::provisioned_key_for(
    BytesView stable_id) const {
  const std::lock_guard<std::mutex> lock(rsa_mutex_);
  const auto it = rsa_keys_.find(hex_encode(stable_id));
  if (it == rsa_keys_.end()) return std::nullopt;
  return it->second;
}

ProvisioningServer::ProvisioningServer(std::shared_ptr<DeviceRootDatabase> roots,
                                       std::uint64_t seed, std::size_t rsa_bits)
    : roots_(std::move(roots)), rng_(seed), rsa_bits_(rsa_bits) {}

ProvisioningResponse ProvisioningServer::handle(const ProvisioningRequest& request) {
  ProvisioningResponse response;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    response = handle_inner(request);
  }
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.requests;
  ++(response.granted ? stats_.granted : stats_.denied);
  return response;
}

ProvisioningResponse ProvisioningServer::handle_inner(const ProvisioningRequest& request)
    WL_REQUIRES(state_mutex_) {
  ProvisioningResponse response;

  const auto device_key = roots_->device_key_for(request.client.stable_id);
  if (!device_key) {
    response.deny_reason = "unknown device";
    return response;
  }

  // Both ends derive the session triple from the request body.
  const Bytes body = request.body();
  const SessionKeys keys = derive_session_keys(*device_key, body, body);
  if (!crypto::hmac_sha256_verify(keys.mac_key_client, body, request.signature)) {
    response.deny_reason = "bad request signature";
    return response;
  }

  // Anti-replay: a (device, nonce) pair is honoured once. Checked after the
  // signature so unauthenticated traffic cannot burn nonces.
  const std::string nonce_key =
      hex_encode(request.client.stable_id) + ":" + hex_encode(request.nonce);
  if (!seen_nonces_.insert(nonce_key).second) {
    response.deny_reason = "replayed provisioning nonce";
    response.mac = crypto::hmac_sha256(keys.mac_key_server, response.body());
    return response;
  }

  if (policy_.is_revoked(request.client)) {
    response.deny_reason = "device revoked (" + policy_.describe() + ")";
    // Denials are still authenticated so clients can trust them.
    response.mac = crypto::hmac_sha256(keys.mac_key_server, response.body());
    return response;
  }

  // Issue (or re-issue) the Device RSA Key.
  const std::string id_hex = hex_encode(request.client.stable_id);
  auto it = issued_.find(id_hex);
  if (it == issued_.end()) {
    it = issued_.emplace(id_hex, crypto::rsa_generate(rng_, rsa_bits_)).first;
    roots_->record_provisioned_key(request.client.stable_id, it->second.pub);
  }

  response.granted = true;
  response.wrapping_iv = rng_.next_bytes(16);
  const crypto::Aes enc(keys.enc_key);
  response.wrapped_rsa_key =
      crypto::aes_cbc_encrypt(enc, response.wrapping_iv, it->second.serialize());
  response.mac = crypto::hmac_sha256(keys.mac_key_server, response.body());
  return response;
}

}  // namespace wideleak::widevine
