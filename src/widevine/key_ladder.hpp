// The Widevine key ladder: how every key below the root of trust is
// derived. Both legitimate endpoints (CDM, license server, provisioning
// server) share these functions; the attack in src/core re-implements them
// independently, as the paper did after reverse engineering.
//
// Ladder (as in OEMCrypto):
//
//   keybox device key ──CMAC KDF──► session {enc, mac_server, mac_client}
//        │                              ▲
//        └──(provisioning)──► Device RSA key
//                                       │ RSA-OAEP unwrap of session key
//                          session key ─┴─CMAC KDF─► same session triple
//
//   session enc key ──AES-CBC unwrap──► content keys ──CENC──► media
#pragma once

#include "support/bytes.hpp"
#include "support/secret.hpp"

namespace wideleak::widevine {

/// The triple of session keys both ends derive. SecretBytes: zeroized on
/// teardown, constant-time comparable, unloggable.
struct SessionKeys {
  SecretBytes enc_key;         // 16 bytes: AES key wrapping content keys
  SecretBytes mac_key_server;  // 32 bytes: HMAC key authenticating server->client
  SecretBytes mac_key_client;  // 32 bytes: HMAC key authenticating client->server
};

/// KDF labels, matching the spirit of OEMCrypto's context construction.
inline constexpr char kEncryptionLabel[] = "ENCRYPTION";
inline constexpr char kAuthenticationLabel[] = "AUTHENTICATION";

/// Derive the session triple from a 16-byte root (keybox device key or an
/// RSA-unwrapped session key) and the request-specific context buffers.
///
///   enc_key    = CMAC(root, 0x01 || "ENCRYPTION"     || 0x00 || enc_ctx || len)
///   mac_server = CMAC counters 1..2 over "AUTHENTICATION" || mac_ctx
///   mac_client = CMAC counters 3..4 over the same context
SessionKeys derive_session_keys(BytesView root_key, BytesView mac_context,
                                BytesView enc_context);
inline SessionKeys derive_session_keys(const SecretBytes& root_key, BytesView mac_context,
                                       BytesView enc_context) {
  return derive_session_keys(root_key.reveal(), mac_context, enc_context);
}

}  // namespace wideleak::widevine
