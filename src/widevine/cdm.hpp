// The Widevine CDM session layer ("libwvdrmengine"): protocol logic on top
// of the OEMCrypto core. This is the component the Android DRM HAL loads;
// MediaDrm calls land here.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "widevine/oemcrypto.hpp"
#include "widevine/protocol.hpp"

namespace wideleak::widevine {

class WidevineCdm {
 public:
  using SessionId = OemCrypto::SessionId;

  explicit WidevineCdm(const OemCryptoConfig& config);

  OemCrypto& oemcrypto() { return oemcrypto_; }
  const OemCrypto& oemcrypto() const { return oemcrypto_; }

  SecurityLevel security_level() const { return oemcrypto_.security_level(); }
  CdmVersion version() const { return oemcrypto_.version(); }

  void install_keybox(const Keybox& keybox) { oemcrypto_.install_keybox(keybox); }

  // --- Provisioning flow ----------------------------------------------------
  /// Build a signed provisioning request (opens an internal session that
  /// stays pending until the response arrives).
  ProvisioningRequest create_provisioning_request(const ClientIdentity& identity);

  /// Ingest the response; installs the Device RSA Key on success.
  OemCryptoResult process_provisioning_response(const ProvisioningResponse& response);

  bool is_provisioned() const { return oemcrypto_.has_device_rsa_key(); }

  // --- License flow -----------------------------------------------------------
  SessionId open_session() { return oemcrypto_.open_session(); }
  void close_session(SessionId session);

  /// Build a signed license request for the given key ids. Uses the
  /// provisioned RSA path when available, the keybox path otherwise
  /// (exactly the fallback order of the real CDM).
  LicenseRequest create_license_request(SessionId session, const ClientIdentity& identity,
                                        const std::vector<media::KeyId>& key_ids);

  /// Ingest a license response: derive session keys (RSA path), verify the
  /// MAC and load every permitted content key.
  OemCryptoResult process_license_response(SessionId session, const LicenseResponse& response);

  // --- Decryption (via Media Crypto) -----------------------------------------
  OemCryptoResult select_key(SessionId session, const media::KeyId& kid) {
    return oemcrypto_.select_key(session, kid);
  }
  OemCryptoResult decrypt_sample(SessionId session, BytesView iv, BytesView ciphertext,
                                 Bytes& plaintext) {
    return oemcrypto_.decrypt_cenc(session, iv, ciphertext, plaintext);
  }

 private:
  OemCrypto oemcrypto_;
  std::optional<SessionId> pending_provisioning_session_;
  std::map<SessionId, Bytes> last_request_body_;  // KDF context per session
  std::map<SessionId, SignatureScheme> request_scheme_;
};

}  // namespace wideleak::widevine
