// The multi-tenant DRM front door: one concurrent service instance owning
// the license and provisioning servers that N tenant apps share — the
// shape a real OTT deployment talks to, rather than the per-call server
// objects the audit toolchain started from.
//
// Structure (documented in depth in docs/SERVICE.md):
//
//   - a sharded session table: power-of-two shard count, shard selected by
//     a hash of the session id, one striped lock per shard. All session
//     state (table, LRU list, shard counters) is WL_GUARDED_BY the shard's
//     own mutex and only touched inside Shard member functions that take
//     it — the pattern the wl008_striped.cpp lint fixture proves the
//     analyzer understands.
//   - LRU eviction/reclaim in the style of Android's DrmSessionManager:
//     under a configured capacity, opening a session into a full shard
//     reclaims that shard's least-recently-used session.
//   - per-app admission control (a live-session quota per tenant) and a
//     per-app token bucket refilled from SimClock ticks. Both are off by
//     default, so ecosystem wiring is behaviour-neutral.
//   - snapshot-returning stats, same contract as LicenseServerStats.
//
// Locking discipline: the service never holds two locks at once. Every
// critical section touches exactly one mutex (one shard's, one app's, or
// one of the underlying servers'), so there is no lock order to violate.
//
// Determinism: the core service draws nothing from any rng. Session ids are
// a pure function of (service seed, app, client stable id); the seed is
// label-derived (`derive_stream_seed`) by the owning ecosystem, so wiring
// the service under campaign cells keeps every report bit-identical. The
// optional chaos layer (DrmServiceConfig::chaos) owns a private rng seeded
// via derive_stream_seed(seed, "chaos") with a fixed draw discipline — one
// u64 per request iff the plan has brownout windows — so chaos replays are
// equally bit-identical.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/annotations.hpp"
#include "support/rng.hpp"
#include "support/sim_clock.hpp"
#include "widevine/chaos.hpp"
#include "widevine/license_server.hpp"
#include "widevine/provisioning_server.hpp"

namespace wideleak::widevine {

/// Index of a registered tenant app (dense, assigned by register_app).
using AppId = std::size_t;

/// Service-level session handle. Content-derived (see session_id_for), so
/// replaying the same request sequence reproduces the same ids.
using ServiceSessionId = std::uint64_t;

struct DrmServiceConfig {
  /// Salt for session-id derivation. Owners derive it with
  /// `derive_stream_seed` so distinct service instances get distinct id
  /// spaces without consuming any rng draws.
  std::uint64_t seed = 0;
  /// Session-table stripe count; rounded up to the next power of two.
  std::size_t shard_count = 16;
  /// Total session capacity across all shards (0 = unlimited). When a
  /// shard is full, opening one more session reclaims that shard's LRU
  /// session — the DrmSessionManager behaviour.
  std::size_t max_sessions = 0;
  /// Per-app live-session quota (0 = unlimited). Opening a session for an
  /// app at its quota is rejected (admission control), not reclaimed.
  std::size_t max_sessions_per_app = 0;
  /// Token-bucket rate limiting, per app, refilled from the clock's tick
  /// stream: `tokens_per_tick` tokens per elapsed tick, capped at
  /// `bucket_capacity`. A capacity of 0 disables rate limiting.
  std::uint64_t bucket_capacity = 0;
  std::uint64_t tokens_per_tick = 0;
  /// Server-side fault schedule (shard crash/restart windows, brownouts,
  /// overload shedding — see widevine/chaos.hpp). The default empty plan is
  /// chaos-off: no extra rng draws, no latency, no refusals.
  ChaosPlan chaos;
};

/// Cumulative service counters since construction (snapshot; aggregated
/// across every shard and app under their respective locks).
struct DrmServiceStats {
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t sessions_evicted = 0;   // LRU reclaims under capacity pressure
  std::uint64_t live_sessions = 0;      // point-in-time table population
  std::uint64_t admission_rejected = 0; // opens refused by the per-app quota
  std::uint64_t rate_limited = 0;       // requests refused by the token bucket
  std::uint64_t license_requests = 0;
  std::uint64_t provisioning_requests = 0;
  /// Chaos-layer accounting (all zero when the plan is empty).
  ChaosStats chaos;
};

/// What happened to the session backing a request (see handle_license).
enum class SessionAdmission { Existing, Opened, Rejected };

class DrmService {
 public:
  /// The service shares (not owns exclusively) the two protocol servers:
  /// existing direct-access paths (tests, the campaign stats sink) keep
  /// working against the same instances.
  /// `clock` is non-const because the chaos layer injects service latency
  /// as SimClock sleeps; without a clock, latency is accounted but not slept.
  DrmService(std::shared_ptr<LicenseServer> license_server,
             std::shared_ptr<ProvisioningServer> provisioning_server,
             const DrmServiceConfig& config = {},
             support::SimClock* clock = nullptr);

  // --- tenancy (setup phase: not thread-safe, do before serving) -----------

  /// Register a tenant app and get its dense id. Idempotent per name.
  AppId register_app(const std::string& name);
  std::optional<AppId> find_app(std::string_view name) const;
  const std::string& app_name(AppId app) const;
  std::size_t app_count() const { return apps_.size(); }

  // --- session lifecycle ----------------------------------------------------

  /// Deterministic session id for (app, client): a seeded FNV/splitmix
  /// hash of the stable id — no rng draw, no allocation.
  ServiceSessionId session_id_for(AppId app, BytesView stable_id) const;

  /// Open (or touch) the session for (app, client) at `now`. Returns the
  /// admission outcome; on Rejected no session exists afterwards.
  SessionAdmission open_session(AppId app, BytesView stable_id, std::uint64_t now);

  /// Close a session explicitly. Returns false if it was not live (never
  /// opened, already closed, or reclaimed).
  bool close_session(ServiceSessionId id);

  bool has_session(ServiceSessionId id) const;

  // --- request path (thread-safe) -------------------------------------------

  /// Serve one license request for a tenant: rate-limit gate, session
  /// open-or-touch (requests for a reclaimed session transparently reopen
  /// it, so grant decisions never depend on eviction timing), then the
  /// shared LicenseServer. Denials minted by the service itself
  /// (rate-limit/admission) carry no MAC: they refuse before any session
  /// keys are established.
  LicenseResponse handle_license(AppId app, const LicenseRequest& request,
                                 const RevocationPolicy& policy, std::uint64_t now);
  /// Overload reading `now` from the wired SimClock (0 without one).
  LicenseResponse handle_license(AppId app, const LicenseRequest& request,
                                 const RevocationPolicy& policy);

  /// Serve one provisioning request (rate-limit gate, then the shared
  /// ProvisioningServer). Provisioning does not open service sessions.
  ProvisioningResponse handle_provision(AppId app, const ProvisioningRequest& request,
                                        std::uint64_t now);
  ProvisioningResponse handle_provision(AppId app, const ProvisioningRequest& request);

  // --- introspection --------------------------------------------------------

  DrmServiceStats stats() const;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_capacity() const { return shard_capacity_; }

  const std::shared_ptr<LicenseServer>& license_server() const { return license_server_; }
  const std::shared_ptr<ProvisioningServer>& provisioning_server() const {
    return provisioning_server_;
  }

 private:
  struct Session {
    AppId app = 0;
    std::uint64_t last_used = 0;
    std::uint64_t licenses = 0;
    std::list<ServiceSessionId>::iterator lru_it;  // position in Shard::lru
  };

  struct ShardCounters {
    std::uint64_t opened = 0;
    std::uint64_t closed = 0;
    std::uint64_t evicted = 0;
    std::uint64_t license_requests = 0;
  };

  /// What Shard::insert did, reported back so the service can settle the
  /// per-app accounting without holding the shard lock.
  struct InsertOutcome {
    bool inserted = false;          // false: the id was already present (touched)
    bool evicted = false;           // an LRU victim was reclaimed to make room
    ServiceSessionId victim = 0;
    AppId victim_app = 0;
  };

  /// One stripe of the session table. Every member function takes the
  /// shard's own mutex; all mutable state is guarded by it. Shards never
  /// call out while locked, so the striped locks cannot deadlock.
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<ServiceSessionId, Session> sessions WL_GUARDED_BY(mutex);
    std::list<ServiceSessionId> lru WL_GUARDED_BY(mutex);  // front = MRU, back = LRU
    ShardCounters counters WL_GUARDED_BY(mutex);

    /// Refresh an existing session (LRU front, last_used). False if absent.
    bool touch(ServiceSessionId id, std::uint64_t now, bool count_license);

    /// Insert a session, reclaiming the LRU entry when the shard is at
    /// `capacity` (0 = unlimited). If the id is already present (a racing
    /// open won), touches it instead and reports inserted=false.
    InsertOutcome insert(ServiceSessionId id, AppId app, std::uint64_t now,
                         std::size_t capacity, bool count_license);

    /// Remove a session; on success reports which app owned it.
    bool erase(ServiceSessionId id, AppId& app_out);

    bool contains(ServiceSessionId id) const;

    /// Crash: drop every session in the stripe, reporting each owner app
    /// (so the service can release per-app slots without holding this
    /// lock). Returns how many sessions were lost.
    std::size_t drop_all(std::vector<AppId>& owners_out);

    /// Counters + population snapshot for stats aggregation.
    void snapshot(ShardCounters& counters_out, std::uint64_t& live_out) const;
  };

  /// Per-tenant admission and rate-limit state; one mutex per app keeps
  /// tenants from contending with each other.
  struct AppState {
    explicit AppState(std::string app_name) : name(std::move(app_name)) {}

    std::string name;  // immutable after registration
    mutable std::mutex mutex;
    std::uint64_t live WL_GUARDED_BY(mutex) = 0;
    std::uint64_t tokens WL_GUARDED_BY(mutex) = 0;
    bool bucket_primed WL_GUARDED_BY(mutex) = false;  // bucket starts full on first use
    std::uint64_t last_refill WL_GUARDED_BY(mutex) = 0;
    std::uint64_t admission_rejected WL_GUARDED_BY(mutex) = 0;
    std::uint64_t rate_limited WL_GUARDED_BY(mutex) = 0;
    std::uint64_t opened WL_GUARDED_BY(mutex) = 0;
    std::uint64_t provisioning_requests WL_GUARDED_BY(mutex) = 0;

    /// Claim a live-session slot under `quota` (0 = unlimited).
    bool admit(std::size_t quota);
    /// Return a live-session slot (close or eviction), optionally counting
    /// the release as an eviction for this app.
    void release();
    /// Take one token from the bucket, refilling from elapsed ticks first.
    /// Always true when `capacity` is 0 (rate limiting off).
    bool take_token(std::uint64_t capacity, std::uint64_t per_tick, std::uint64_t now);
    void count_provisioning();
  };

  Shard& shard_for(ServiceSessionId id) { return shards_[id & shard_mask_]; }
  const Shard& shard_for(ServiceSessionId id) const { return shards_[id & shard_mask_]; }

  /// The open-or-touch core shared by open_session and handle_license.
  SessionAdmission touch_or_open(AppId app, ServiceSessionId id, std::uint64_t now,
                                 bool count_license);

  /// What the chaos layer decided for one request, resolved under
  /// chaos_mutex_ before any shard or app lock is taken.
  struct ChaosDecision {
    enum class Kind { Proceed, ShardDown, Shed, BrownoutDeny };
    Kind kind = Kind::Proceed;
    std::uint64_t latency = 0;   // service latency to sleep (clock) / account
    bool drop_shard = false;     // a crash window newly applied: drop the shard
    const char* reason = "";     // deny_reason prefix for refusals
  };

  /// Resolve the chaos plan for one request. `shard_index` is set for
  /// license traffic (crash + overload apply) and empty for provisioning
  /// (brownout/latency only). Draws exactly one chaos-rng u64 per call when
  /// the plan has brownout windows, zero otherwise.
  ChaosDecision chaos_decide(std::optional<std::size_t> shard_index, std::uint64_t now);

  /// Apply a crash to a shard: drop every session it holds and release the
  /// owners' per-app slots. Takes the shard lock, then each app lock, then
  /// chaos_mutex_ — strictly one at a time.
  void drop_crashed_shard(std::size_t shard_index);

  std::uint64_t seed_;
  std::size_t shard_capacity_ = 0;  // per-shard session budget (0 = unlimited)
  std::uint64_t shard_mask_ = 0;
  DrmServiceConfig config_;
  support::SimClock* clock_ = nullptr;

  /// Per-crash-window chaos bookkeeping: which shards the window has been
  /// applied to (lazily, at first touch >= start) and whether post-restart
  /// traffic has been served yet (time-to-recover accounting).
  struct ChaosWindowState {
    std::vector<char> applied;  // one flag per shard
    bool recovered = false;
  };

  mutable std::mutex chaos_mutex_;
  Rng chaos_rng_ WL_GUARDED_BY(chaos_mutex_);
  std::vector<ChaosWindowState> chaos_windows_ WL_GUARDED_BY(chaos_mutex_);
  /// Same-tick queue depth per shard for overload shedding: (tick, count).
  std::vector<std::pair<std::uint64_t, std::size_t>> shard_tick_load_
      WL_GUARDED_BY(chaos_mutex_);
  ChaosStats chaos_stats_ WL_GUARDED_BY(chaos_mutex_);

  std::shared_ptr<LicenseServer> license_server_;
  std::shared_ptr<ProvisioningServer> provisioning_server_;

  std::vector<Shard> shards_;    // sized once in the constructor, never resized
  std::deque<AppState> apps_;    // deque: AppState addresses stay stable
  std::unordered_map<std::string, AppId> app_ids_;  // setup-phase writes only
};

}  // namespace wideleak::widevine
