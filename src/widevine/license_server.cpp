#include "widevine/license_server.hpp"

#include "crypto/hmac.hpp"
#include "crypto/modes.hpp"
#include "crypto/rsa.hpp"
#include "widevine/key_ladder.hpp"

namespace wideleak::widevine {

SecurityLevel required_level_for(const media::ContentKey& key) {
  if (key.type == media::TrackType::Video && key.resolution.is_hd()) {
    return SecurityLevel::L1;
  }
  return SecurityLevel::L3;
}

LicenseServer::LicenseServer(std::shared_ptr<DeviceRootDatabase> roots, std::uint64_t seed)
    : roots_(std::move(roots)), rng_(seed) {}

void LicenseServer::add_title(const media::PackagedTitle& title) {
  for (const media::ContentKey& key : title.keys) {
    keys_[hex_encode(key.kid)] =
        StoredKey{SecretBytes::copy_of(key.key), required_level_for(key)};
  }
}

void LicenseServer::add_generic_key(const media::KeyId& kid, SecretBytes key) {
  keys_[hex_encode(kid)] = StoredKey{std::move(key), SecurityLevel::L3};
}

LicenseResponse LicenseServer::handle(const LicenseRequest& request,
                                      const RevocationPolicy& policy) {
  // The stats lock brackets the request instead of covering it: the DRM
  // service runs many tenants' requests through one server concurrently,
  // so the KDF/signature/wrap work in handle_inner must proceed in
  // parallel. Counter totals are unchanged for serial callers.
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }
  std::size_t keys_withheld = 0;
  LicenseResponse response = handle_inner(request, policy, keys_withheld);
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  ++(response.granted ? stats_.granted : stats_.denied);
  stats_.keys_issued += response.keys.size();
  stats_.keys_withheld += keys_withheld;
  return response;
}

LicenseResponse LicenseServer::handle_inner(const LicenseRequest& request,
                                            const RevocationPolicy& policy,
                                            std::size_t& keys_withheld) {
  LicenseResponse response;
  const Bytes body = request.body();

  // --- Authenticate the client and establish the session triple.
  SessionKeys keys;
  if (request.scheme == SignatureScheme::KeyboxCmac) {
    const auto device_key = roots_->device_key_for(request.client.stable_id);
    if (!device_key) {
      response.deny_reason = "unknown device";
      return response;
    }
    keys = derive_session_keys(*device_key, body, body);
    if (!crypto::hmac_sha256_verify(keys.mac_key_client, body, request.signature)) {
      response.deny_reason = "bad request signature";
      return response;
    }
  } else {
    const auto registered = roots_->provisioned_key_for(request.client.stable_id);
    if (!registered) {
      response.deny_reason = "device not provisioned";
      return response;
    }
    const auto supplied = crypto::RsaPublicKey::deserialize(request.device_rsa_public);
    // Constant-time over the serialized form: the comparison's early exit
    // would otherwise leak how much of the registered key a forgery got
    // right (the WL002 timing-oracle class).
    if (!constant_time_equal(supplied.serialize(), registered->serialize())) {
      response.deny_reason = "device key mismatch";
      return response;
    }
    if (!crypto::rsa_pss_verify(supplied, body, request.signature)) {
      response.deny_reason = "bad request signature";
      return response;
    }
    // RSA path: mint a fresh session key and wrap it to the device. Both
    // draws happen under one lock at the same sequence point as the
    // historical serial code, so single-threaded byte streams are
    // unchanged; concurrent callers interleave draws (their responses are
    // not replayed bit-for-bit, only counted).
    SecretBytes session_key;
    {
      const std::lock_guard<std::mutex> lock(rng_mutex_);
      session_key = SecretBytes(rng_.next_bytes(16));
      response.session_key_wrapped =
          crypto::rsa_oaep_encrypt(supplied, rng_, session_key.reveal());
    }
    keys = derive_session_keys(session_key, body, body);
  }

  // --- Service-level revocation enforcement (the Q4 choice).
  if (policy.is_revoked(request.client)) {
    response.deny_reason = "device revoked (" + policy.describe() + ")";
    response.session_key_wrapped.clear();
    response.mac = crypto::hmac_sha256(keys.mac_key_server, response.body());
    return response;
  }

  // --- Establish the client's effective security level. Under strict
  // verification the claim is capped by the factory certification record;
  // trusting the claim reproduces the browser-CDM weakness of §V-C.
  SecurityLevel effective_level = request.client.level;
  if (level_verification_ == LevelVerification::Strict &&
      roots_->certified_level_for(request.client.stable_id) != SecurityLevel::L1) {
    effective_level = SecurityLevel::L3;
  }

  // --- Issue the requested keys this security level may hold.
  const crypto::Aes enc(keys.enc_key);
  for (const media::KeyId& kid : request.key_ids) {
    const auto it = keys_.find(hex_encode(kid));
    if (it == keys_.end()) continue;  // not our key; apps request what the MPD lists
    const StoredKey& stored = it->second;
    if (stored.min_level == SecurityLevel::L1 &&
        effective_level != SecurityLevel::L1) {
      // HD-class key, sub-HD client: withhold, exactly as observed.
      ++keys_withheld;
      continue;
    }
    KeyContainer container;
    container.kid = kid;
    {
      const std::lock_guard<std::mutex> lock(rng_mutex_);
      container.iv = rng_.next_bytes(16);
    }
    container.wrapped_key = crypto::aes_cbc_encrypt_nopad(enc, container.iv, stored.key.reveal());
    container.min_level = stored.min_level;
    response.keys.push_back(std::move(container));
  }

  response.granted = true;
  response.license_duration = license_duration_;
  response.mac = crypto::hmac_sha256(keys.mac_key_server, response.body());
  return response;
}

}  // namespace wideleak::widevine
