// OEMCrypto-style CDM core: sessions, the key ladder, key control, content
// decryption and the generic ("non-DASH") crypto API.
//
// Every entry point announces itself on the hosting process's HookBus under
// an `_oeccXX_<Name>` symbol — the function family the paper's Frida script
// intercepts inside mediadrmserver. For L1 the module is liboemcrypto.so
// (and key material lives in TEE memory); for L3 everything stays inside
// libwvdrmengine.so and key material lives in scannable process memory.
//
// The CWE-922 flaw behind CVE-2021-0639 is modelled on version: CDMs with
// `has_insecure_keybox_storage()` keep the raw 128-byte keybox mapped in
// process memory; patched CDMs only ever map an XOR-masked copy.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hooking/process.hpp"
#include "widevine/keybox.hpp"
#include "widevine/key_ladder.hpp"
#include "widevine/protocol.hpp"
#include "widevine/tee.hpp"
#include "crypto/rsa.hpp"

namespace wideleak::widevine {

inline constexpr char kWvDrmEngineModule[] = "libwvdrmengine.so";
inline constexpr char kOemCryptoModule[] = "liboemcrypto.so";

/// Construction parameters for one CDM instance.
struct OemCryptoConfig {
  SecurityLevel level = SecurityLevel::L3;
  CdmVersion version = kCurrentCdm;
  hooking::SimProcess* host = nullptr;  ///< mediadrmserver (hooks + L3 storage)
  Tee* tee = nullptr;                   ///< required iff level == L1
  std::uint64_t seed = 0;
};

/// Status codes for operations a caller handles in normal flow.
enum class OemCryptoResult {
  Success,
  NoKeybox,
  NoDeviceRsaKey,
  SignatureFailure,   // a MAC / signature did not verify
  KeyNotLoaded,
  KeyExpired,         // the license duration elapsed
  InsufficientSecurity,  // key control demands a higher level than ours
  InvalidSession,
};

std::string to_string(OemCryptoResult result);

class OemCrypto {
 public:
  using SessionId = std::uint32_t;

  explicit OemCrypto(const OemCryptoConfig& config);
  ~OemCrypto();
  OemCrypto(const OemCrypto&) = delete;
  OemCrypto& operator=(const OemCrypto&) = delete;

  SecurityLevel security_level() const { return config_.level; }
  CdmVersion version() const { return config_.version; }

  // --- Keybox -------------------------------------------------------------
  void install_keybox(const Keybox& keybox);
  bool is_keybox_valid() const { return keybox_.has_value(); }
  /// The server-visible device identity (keybox stable id + key data).
  Bytes get_key_data() const;  // wl-lint: reveal-ok (server-opaque token, not key material)
  Bytes stable_id() const;

  // --- Sessions -----------------------------------------------------------
  SessionId open_session();
  void close_session(SessionId session);
  Bytes generate_nonce(SessionId session);

  // --- Keybox-derived key ladder (legacy / provisioning path) -------------
  OemCryptoResult generate_derived_keys(SessionId session, BytesView mac_context,
                                        BytesView enc_context);
  /// HMAC-SHA256 with the session's client MAC key (request signing).
  OemCryptoResult generate_signature(SessionId session, BytesView message, Bytes& signature);

  // --- Provisioning (Device RSA key install) ------------------------------
  OemCryptoResult rewrap_device_rsa_key(SessionId session, BytesView response_body,
                                        BytesView response_mac, BytesView wrapping_iv,
                                        BytesView wrapped_rsa_key);
  bool has_device_rsa_key() const;
  std::optional<crypto::RsaPublicKey> device_rsa_public() const;

  // --- RSA path (provisioned devices) --------------------------------------
  OemCryptoResult generate_rsa_signature(SessionId session, BytesView message,
                                         Bytes& signature);
  OemCryptoResult derive_keys_from_session_key(SessionId session,
                                               BytesView wrapped_session_key,
                                               BytesView mac_context, BytesView enc_context);

  // --- License ingestion & decryption --------------------------------------
  /// Verify the server MAC over `response_body` and unwrap every key the
  /// key-control block lets this security level load. `license_duration`
  /// bounds the session's key usage in logical clock ticks (0 = unlimited).
  OemCryptoResult load_keys(SessionId session, BytesView response_body, BytesView response_mac,
                            const std::vector<KeyContainer>& keys,
                            std::uint64_t license_duration = 0);
  OemCryptoResult select_key(SessionId session, const media::KeyId& kid);
  /// Decrypt one CENC-protected range with the selected key. The clear
  /// output goes to the caller (the simulated codec/surface) but is *not*
  /// echoed in the hook event — apps and hooks never see decrypted frames
  /// through this interface, which is why MovieStealer-style attacks fail.
  OemCryptoResult decrypt_cenc(SessionId session, BytesView iv, BytesView ciphertext,
                               Bytes& plaintext);

  /// Key ids currently loaded in a session.
  std::vector<media::KeyId> loaded_key_ids(SessionId session) const;

  // --- Logical clock (license-duration enforcement) -------------------------
  /// Advance the device's logical clock; loaded keys whose license duration
  /// has elapsed stop decrypting.
  void advance_clock(std::uint64_t ticks) { clock_ += ticks; }
  std::uint64_t clock() const { return clock_; }

  // --- Generic crypto (the "non-DASH mode" secure channel) -----------------
  OemCryptoResult generic_encrypt(SessionId session, BytesView iv, BytesView plaintext,
                                  Bytes& ciphertext);
  OemCryptoResult generic_decrypt(SessionId session, BytesView iv, BytesView ciphertext,
                                  Bytes& plaintext);
  OemCryptoResult generic_sign(SessionId session, BytesView message, Bytes& tag);
  OemCryptoResult generic_verify(SessionId session, BytesView message, BytesView tag);

 private:
  struct Session {
    Bytes nonce;
    std::optional<SessionKeys> keys;
    std::map<std::string, hooking::RegionId> content_keys;  // hex(kid) -> region
    std::optional<media::KeyId> selected;
    std::uint64_t expiry_tick = 0;  // absolute; 0 = unlimited
  };

  /// The memory key material lives in: TEE (L1) or host process (L3).
  hooking::ProcessMemory& key_store();
  const hooking::ProcessMemory& key_store() const;

  /// Emit a hook event for an intercepted entry point.
  void emit(std::string_view function, BytesView input, BytesView output) const;

  const char* module_name() const {
    return config_.level == SecurityLevel::L1 ? kOemCryptoModule : kWvDrmEngineModule;
  }

  Session& session_for(SessionId id);
  const SecretBytes& device_key() const;
  SecretBytes read_selected_key(const Session& session) const;

  OemCryptoConfig config_;
  Rng rng_;
  std::optional<Keybox> keybox_;
  std::optional<hooking::RegionId> keybox_region_;  // raw or masked, by version
  SecretBytes keybox_mask_;                         // patched CDMs only
  std::optional<hooking::RegionId> device_rsa_region_;
  std::map<SessionId, Session> sessions_;
  SessionId next_session_ = 1;
  std::uint64_t clock_ = 0;
};

}  // namespace wideleak::widevine
