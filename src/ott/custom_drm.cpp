#include "ott/custom_drm.hpp"

#include "crypto/hmac.hpp"
#include "crypto/modes.hpp"
#include "support/byte_io.hpp"

namespace wideleak::ott {

SecretBytes CustomDrm::app_secret(const std::string& app_name) {
  // Deterministic per app; stands in for a compiled-in whitebox key. The
  // full HMAC output is a key-derivation intermediate: truncate, then wipe.
  Bytes prk = crypto::hmac_sha256(to_bytes("wideleak-custom-drm-v1"), to_bytes(app_name));
  SecretBytes secret = SecretBytes::copy_of(BytesView(prk).subspan(0, 16));
  secure_wipe(prk);
  return secret;
}

namespace {

SecretBytes derive_wrap_key(const std::string& app_name, BytesView nonce) {
  Bytes prk = crypto::hmac_sha256(CustomDrm::app_secret(app_name), nonce);
  SecretBytes key = SecretBytes::copy_of(BytesView(prk).subspan(0, 16));
  secure_wipe(prk);
  return key;
}

}  // namespace

Bytes CustomDrm::wrap_key_map(const std::string& app_name, BytesView nonce,
                              const std::map<std::string, Bytes>& kid_to_key) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(kid_to_key.size()));
  for (const auto& [kid_hex, key] : kid_to_key) {
    w.var_string(kid_hex);
    w.var_bytes(key);
  }
  const crypto::Aes aes(derive_wrap_key(app_name, nonce));
  Bytes iv(16, 0x00);
  return crypto::aes_cbc_encrypt(aes, iv, w.data());
}

std::map<std::string, Bytes> CustomDrm::unwrap_key_map(const std::string& app_name,
                                                       BytesView nonce, BytesView wrapped) {
  const crypto::Aes aes(derive_wrap_key(app_name, nonce));
  Bytes iv(16, 0x00);
  const Bytes plain = crypto::aes_cbc_decrypt(aes, iv, wrapped);
  ByteReader r{BytesView(plain)};
  std::map<std::string, Bytes> out;
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string kid_hex = r.var_string();
    out[std::move(kid_hex)] = r.var_bytes();
  }
  return out;
}

Bytes CustomDrm::decrypt_track(const media::PackagedTrack& track, BytesView key) {
  return media::cenc_decrypt_track(track, key);
}

void CustomDrm::decrypt_track_append(const media::PackagedTrack& track, BytesView key,
                                     Bytes& out) {
  media::cenc_decrypt_track_append(track, key, out);
}

}  // namespace wideleak::ott
