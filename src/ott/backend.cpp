#include "ott/backend.hpp"

#include "crypto/modes.hpp"
#include "ott/custom_drm.hpp"
#include "support/byte_io.hpp"

namespace wideleak::ott {

Bytes SecureManifestEnvelope::serialize() const {
  ByteWriter w;
  w.var_bytes(kid);
  w.var_bytes(iv);
  w.var_bytes(ciphertext);
  return w.take();
}

SecureManifestEnvelope SecureManifestEnvelope::deserialize(BytesView data) {
  ByteReader r(data);
  SecureManifestEnvelope out;
  out.kid = r.var_bytes();
  out.iv = r.var_bytes();
  out.ciphertext = r.var_bytes();
  return out;
}

OttBackend::OttBackend(OttAppProfile profile, media::PackagedTitle title,
                       std::shared_ptr<widevine::DrmService> drm_service,
                       widevine::AppId app_id, std::uint64_t seed)
    : profile_(std::move(profile)),
      title_(std::move(title)),
      drm_service_(std::move(drm_service)),
      app_id_(app_id),
      rng_(seed) {
  if (profile_.secure_uri_channel) {
    uri_channel_kid_ = rng_.next_bytes(16);
    uri_channel_key_ = SecretBytes(rng_.next_bytes(16));
    drm_service_->license_server()->add_generic_key(uri_channel_kid_, uri_channel_key_);
  }
  if (profile_.subtitles_via_opaque_channel) {
    // Mint one opaque token per subtitle representation.
    for (const auto& rep : title_.mpd.representations) {
      if (rep.type != media::TrackType::Subtitle) continue;
      subtitle_tokens_[hex_encode(rng_.next_bytes(12))] = rep.base_url;
    }
  }
}

std::string OttBackend::subscriber_token() const {
  return "tok-" + profile_.backend_host() + "-subscriber";
}

bool OttBackend::authorized(const net::HttpRequest& req) const {
  const auto it = req.headers.find("authorization");
  // Constant-time: a std::string == would return at the first wrong byte,
  // letting a remote caller brute-force the bearer token position by
  // position (the WL002 timing-oracle class).
  return it != req.headers.end() &&
         constant_time_equal(to_bytes(it->second), to_bytes(subscriber_token()));
}

net::HttpHandler OttBackend::handler() {
  return [this](const net::HttpRequest& req) { return handle(req); };
}

net::HttpResponse OttBackend::handle(const net::HttpRequest& req) {
  if (req.path == "/login") {
    if (req.body.empty()) return net::http_error(400, "credentials required");
    return net::http_ok_text(subscriber_token());
  }
  if (req.path == "/manifest") return handle_manifest(req);
  if (req.path == "/license") return handle_license(req);
  if (req.path == "/provision") return handle_provision(req);
  if (req.path == "/custom_license") return handle_custom_license(req);
  if (req.path.rfind("/st/", 0) == 0) return handle_subtitle(req);
  return net::http_error(404, "unknown endpoint " + req.path);
}

std::string OttBackend::rendered_manifest() const {
  media::Mpd mpd = title_.mpd;
  if (profile_.subtitles_via_opaque_channel) {
    std::erase_if(mpd.representations, [](const media::MpdRepresentation& rep) {
      return rep.type == media::TrackType::Subtitle;
    });
  }
  if (profile_.restrict_audit_region) {
    // The vantage region only receives stripped metadata: no key ids on
    // audio adaptation sets.
    for (auto& rep : mpd.representations) {
      if (rep.type == media::TrackType::Audio) rep.default_kid.reset();
    }
  }
  return mpd.serialize();
}

net::HttpResponse OttBackend::handle_manifest(const net::HttpRequest& req) {
  if (!authorized(req)) return net::http_error(401, "subscription required");
  const std::string manifest = rendered_manifest();

  net::HttpResponse response;
  if (profile_.secure_uri_channel) {
    // Netflix path: the manifest only ever crosses the wire inside the
    // Widevine generic-crypto envelope.
    SecureManifestEnvelope envelope;
    envelope.kid = uri_channel_kid_;
    envelope.iv = rng_.next_bytes(16);
    const crypto::Aes aes(uri_channel_key_);
    envelope.ciphertext = crypto::aes_cbc_encrypt(aes, envelope.iv, to_bytes(manifest));
    response = net::http_ok(envelope.serialize());
    response.headers["content-type"] = "application/x-secure-manifest";
  } else {
    response = net::http_ok_text(manifest);
    response.headers["content-type"] = "application/dash+xml";
  }
  if (profile_.subtitles_via_opaque_channel) {
    std::string tokens;
    for (const auto& [token, path] : subtitle_tokens_) {
      if (!tokens.empty()) tokens.push_back(',');
      tokens += token;
    }
    response.headers["x-subtitle-tokens"] = tokens;
  }
  response.headers["x-cdn-host"] = profile_.cdn_host();
  return response;
}

net::HttpResponse OttBackend::handle_license(const net::HttpRequest& req) {
  if (!authorized(req)) return net::http_error(401, "subscription required");
  const auto request = widevine::LicenseRequest::deserialize(req.body);

  if (profile_.custom_drm_on_l3_only &&
      request.client.level != widevine::SecurityLevel::L1) {
    // Amazon: no Widevine licenses for software-only clients; the app is
    // expected to switch to its embedded DRM.
    widevine::LicenseResponse denied;
    denied.deny_reason = "Widevine L3 not served; use embedded DRM";
    return net::http_ok(denied.serialize());
  }

  // Through the shared service: rate-limit/admission gates, then the
  // session table (one implicit session per client stable id), then the
  // license server proper.
  const widevine::LicenseResponse response =
      drm_service_->handle_license(app_id_, request, profile_.license_policy());
  return net::http_ok(response.serialize());
}

net::HttpResponse OttBackend::handle_provision(const net::HttpRequest& req) {
  const auto request = widevine::ProvisioningRequest::deserialize(req.body);

  if (profile_.enforce_revocation &&
      profile_.license_policy().is_revoked(request.client)) {
    // The Q4 "G#" case: Widevine fails during the provisioning phase, so
    // no license (and no content key) ever reaches the device.
    widevine::ProvisioningResponse denied;
    denied.deny_reason = "device revoked: " + profile_.license_policy().describe();
    return net::http_ok(denied.serialize());
  }

  const widevine::ProvisioningResponse response =
      drm_service_->handle_provision(app_id_, request);
  return net::http_ok(response.serialize());
}

net::HttpResponse OttBackend::handle_custom_license(const net::HttpRequest& req) {
  if (!authorized(req)) return net::http_error(401, "subscription required");
  if (!profile_.custom_drm_on_l3_only) return net::http_error(404, "no custom DRM");

  // Body = client nonce. Deliver the sub-HD keys wrapped under the
  // app-embedded secret; HD stays exclusive to L1 Widevine even here.
  std::map<std::string, Bytes> kid_to_key;
  for (const media::ContentKey& key : title_.keys) {
    if (widevine::required_level_for(key) == widevine::SecurityLevel::L1) continue;
    kid_to_key[hex_encode(key.kid)] = key.key;
  }
  return net::http_ok(CustomDrm::wrap_key_map(profile_.name, req.body, kid_to_key));
}

net::HttpResponse OttBackend::handle_subtitle(const net::HttpRequest& req) {
  if (!authorized(req)) return net::http_error(401, "subscription required");
  const std::string token = req.path.substr(4);
  const auto it = subtitle_tokens_.find(token);
  if (it == subtitle_tokens_.end()) return net::http_error(404, "bad subtitle token");
  const auto file = title_.files.find(it->second);
  if (file == title_.files.end()) return net::http_error(404, "missing subtitle file");
  return net::http_ok(file->second);
}

}  // namespace wideleak::ott
