// OTT application profiles: the per-service implementation choices the
// paper measured. Table I is *produced* by running the audit pipeline
// against services configured with these policies — the report code never
// reads the expected verdicts directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "media/content.hpp"
#include "widevine/revocation.hpp"

namespace wideleak::ott {

struct OttAppProfile {
  std::string name;                    // e.g. "Netflix"
  std::uint64_t installs_millions = 0; // Play Store install count

  /// Q2/Q3: what the service encrypts and how it assigns keys.
  media::ContentPolicy content_policy;

  /// Q4: refuse devices whose CDM is revoked (Disney+/HBO Max/Starz do).
  bool enforce_revocation = false;

  /// Q1 exception: fall back to an embedded app-specific DRM when only
  /// Widevine L3 is available (Amazon Prime Video).
  bool custom_drm_on_l3_only = false;

  /// Q2 exception: deliver the manifest/URIs through the Widevine
  /// non-DASH generic-crypto channel instead of plain TLS (Netflix).
  bool secure_uri_channel = false;

  /// All studied apps pin their backend/CDN certificates.
  bool ssl_pinning = true;

  /// Subtitles delivered via an opaque tokenized endpoint rather than MPD
  /// representations — why the study could not locate Hulu/Starz subtitle
  /// URIs.
  bool subtitles_via_opaque_channel = false;

  /// Regional restriction hides key-id metadata from the audit vantage
  /// point — why Q3 is inconclusive for Hulu and HBO Max.
  bool restrict_audit_region = false;

  std::vector<std::string> audio_languages = {"en", "fr"};
  std::vector<std::string> subtitle_languages = {"en", "fr"};

  /// Stable synthetic hostnames.
  std::string backend_host() const;
  std::string cdn_host() const;

  /// Deterministic id of this app's demo title.
  std::uint64_t title_content_id() const;
  std::string title_name() const;

  /// The revocation policy this service's license proxy applies.
  widevine::RevocationPolicy license_policy() const;
};

}  // namespace wideleak::ott
