#include "ott/cdn.hpp"

namespace wideleak::ott {

void CdnService::host_title(const media::PackagedTitle& title) {
  for (const auto& [path, file] : title.files) files_[path] = file;
}

net::HttpHandler CdnService::handler() const {
  // Copy the file map into the closure: the service object may outlive or
  // predate the TLS server mounting it.
  auto files = files_;
  return [files = std::move(files)](const net::HttpRequest& req) -> net::HttpResponse {
    const auto it = files.find(req.path);
    if (it == files.end()) return net::http_error(404, "no such object: " + req.path);
    return net::http_ok(it->second);
  };
}

}  // namespace wideleak::ott
