// Ecosystem wiring: constructs the whole simulated world the study runs
// against — root CA and network, the Widevine provisioning and license
// servers, per-app backends and CDNs, and factory-provisioned devices.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "android/device.hpp"
#include "net/circuit_breaker.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"
#include "net/proxy.hpp"
#include "net/retry.hpp"
#include "support/sim_clock.hpp"
#include "ott/app.hpp"
#include "ott/backend.hpp"
#include "ott/cdn.hpp"
#include "widevine/drm_service.hpp"
#include "widevine/license_server.hpp"
#include "widevine/provisioning_server.hpp"

namespace wideleak::ott {

struct EcosystemConfig {
  std::uint64_t seed = 0x57494445;  // "WIDE"
  std::size_t tls_key_bits = 512;    // simulation-grade TLS identities
  std::size_t device_rsa_bits = 1024;  // Device RSA Key size (paper: 2048)
  /// Fault plan applied to matching hosts at install time. The default
  /// (empty) plan wraps nothing: the ecosystem is rng-draw-for-draw
  /// identical to one built before fault injection existed.
  net::FaultPlan fault_plan;
  /// Server-side chaos schedule for the shared DrmService. The default
  /// (empty) plan is chaos-off and draw-for-draw neutral.
  widevine::ChaosPlan service_chaos;
  /// Per-host circuit breaker for every client request routed through
  /// OttApp::exchange. Default-disabled (failure_threshold == 0).
  net::CircuitBreakerConfig breaker;
  /// Absolute SimClock deadline every retry loop in this ecosystem
  /// respects (0 = none). Campaign cells set this to their deadline budget
  /// so in-flight requests stop backing off once the cell is out of time.
  std::uint64_t deadline_tick = 0;
};

class StreamingEcosystem {
 public:
  explicit StreamingEcosystem(const EcosystemConfig& config = {});

  net::Network& network() { return network_; }
  const net::CertificateAuthority& root_ca() const { return *root_ca_; }

  std::shared_ptr<widevine::DeviceRootDatabase> device_roots() { return roots_; }
  widevine::LicenseServer& license_server() { return *license_server_; }
  widevine::ProvisioningServer& provisioning_server() { return *provisioning_server_; }

  /// The shared multi-tenant DRM front door every installed app's backend
  /// routes license/provisioning traffic through. Private to this
  /// ecosystem (one instance per campaign cell), seeded via
  /// derive_stream_seed so wiring it consumed no rng draws — campaign
  /// reports stayed bit-identical when it was introduced.
  widevine::DrmService& drm_service() { return *drm_service_; }

  /// Install one app's services (backend + CDN + packaged title). Idempotent
  /// per app name.
  void install_app(const OttAppProfile& profile);
  /// Install every app of the study catalog.
  void install_catalog();

  OttBackend& backend_for(const std::string& app_name);
  const media::PackagedTitle& title_for(const std::string& app_name);

  /// Create a device with a factory keybox registered in the root database,
  /// system CAs pre-trusted.
  std::unique_ptr<android::Device> make_device(const android::DeviceSpec& spec);

 private:
  /// Register `host` on the network, wrapped in a FaultyEndpoint when the
  /// configured fault plan applies to it.
  void mount_host(const std::string& host, net::ServerIdentity identity,
                  net::HttpHandler handler, std::uint64_t server_seed);

 public:

  Rng fork_rng() { return rng_.fork(); }

  /// Label-derived seed rooted at this ecosystem's seed. Unlike fork_rng()
  /// this consumes nothing from the main stream, so adding consumers keeps
  /// every existing draw sequence byte-identical.
  std::uint64_t derive_seed(std::string_view label) const {
    return derive_stream_seed(config_.seed, label);
  }

  /// The simulated clock fault latency and retry backoff advance.
  support::SimClock& clock() { return clock_; }

  /// Aggregated counters across every fault injector in this ecosystem.
  net::FaultInjectorStats fault_stats() const;

  /// Shared retry-counter sink every OttApp in this ecosystem reports into
  /// (one ecosystem per campaign cell, single-threaded — same contract as
  /// the license/provisioning server stats).
  net::RetryStats& retry_stats() { return retry_stats_; }

  /// Shared per-host circuit breaker (disabled unless configured).
  net::CircuitBreaker& breaker() { return breaker_; }

  /// The deadline every retry policy in this ecosystem inherits (0 = none).
  std::uint64_t deadline_tick() const { return config_.deadline_tick; }

 private:
  EcosystemConfig config_;
  Rng rng_;
  net::Network network_;
  support::SimClock clock_;
  std::unique_ptr<net::CertificateAuthority> root_ca_;
  std::shared_ptr<widevine::DeviceRootDatabase> roots_;
  std::shared_ptr<widevine::LicenseServer> license_server_;
  std::shared_ptr<widevine::ProvisioningServer> provisioning_server_;
  std::shared_ptr<widevine::DrmService> drm_service_;
  std::map<std::string, std::shared_ptr<OttBackend>> backends_;
  std::map<std::string, media::PackagedTitle> titles_;
  std::vector<std::shared_ptr<net::FaultyEndpoint>> injectors_;
  net::RetryStats retry_stats_;
  net::CircuitBreaker breaker_{net::CircuitBreakerConfig{}, nullptr};
};

}  // namespace wideleak::ott
