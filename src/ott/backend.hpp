// The per-app backend: login, manifest delivery, license/provisioning
// proxying (with the app's own revocation stance), and the app-specific
// exceptions the study documents — Netflix's generic-crypto manifest
// envelope, Amazon's custom-DRM key delivery, Hulu/Starz's opaque subtitle
// channel, regional metadata restrictions.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "media/content.hpp"
#include "net/http.hpp"
#include "ott/app.hpp"
#include "widevine/drm_service.hpp"
#include "widevine/license_server.hpp"
#include "widevine/provisioning_server.hpp"

namespace wideleak::ott {

/// Serialized envelope for a generic-crypto protected manifest.
struct SecureManifestEnvelope {
  media::KeyId kid;  // the non-DASH channel key's id
  Bytes iv;
  Bytes ciphertext;  // AES-CBC of the MPD XML under the channel key

  Bytes serialize() const;
  static SecureManifestEnvelope deserialize(BytesView data);
};

class OttBackend {
 public:
  /// The backend serves its tenant (`app_id`) through the ecosystem's
  /// shared DrmService — the multi-tenant front door that owns the
  /// license/provisioning servers, session table and admission policy.
  OttBackend(OttAppProfile profile, media::PackagedTitle title,
             std::shared_ptr<widevine::DrmService> drm_service, widevine::AppId app_id,
             std::uint64_t seed);

  net::HttpHandler handler();

  /// The account token /login issues (tests use it directly).
  std::string subscriber_token() const;

  /// Netflix-style apps: the non-DASH channel key id (registered with the
  /// license server at construction).
  const media::KeyId& uri_channel_kid() const { return uri_channel_kid_; }

  const OttAppProfile& profile() const { return profile_; }
  const media::PackagedTitle& title() const { return title_; }

 private:
  net::HttpResponse handle(const net::HttpRequest& req);
  net::HttpResponse handle_manifest(const net::HttpRequest& req);
  net::HttpResponse handle_license(const net::HttpRequest& req);
  net::HttpResponse handle_provision(const net::HttpRequest& req);
  net::HttpResponse handle_custom_license(const net::HttpRequest& req);
  net::HttpResponse handle_subtitle(const net::HttpRequest& req);
  bool authorized(const net::HttpRequest& req) const;

  /// The MPD this backend exposes, after policy redactions (subtitle
  /// representations stripped for opaque-channel apps; audio key ids
  /// stripped under regional restriction).
  std::string rendered_manifest() const;

  OttAppProfile profile_;
  media::PackagedTitle title_;
  std::shared_ptr<widevine::DrmService> drm_service_;
  widevine::AppId app_id_;
  Rng rng_;
  media::KeyId uri_channel_kid_;
  SecretBytes uri_channel_key_;
  std::map<std::string, std::string> subtitle_tokens_;  // opaque token -> file path
};

}  // namespace wideleak::ott
