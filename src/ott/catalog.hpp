// The ten premium OTT apps of the study (§IV-A), configured with the
// behaviours the paper measured (Table I).
#pragma once

#include <optional>
#include <vector>

#include "ott/app.hpp"

namespace wideleak::ott {

/// All ten evaluated apps, in Table I order.
std::vector<OttAppProfile> study_catalog();

/// Look up one app by name; nullopt when absent.
std::optional<OttAppProfile> find_app(const std::string& name);

}  // namespace wideleak::ott
