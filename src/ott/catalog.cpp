#include "ott/catalog.hpp"

namespace wideleak::ott {

std::vector<OttAppProfile> study_catalog() {
  using media::KeyUsagePolicy;
  std::vector<OttAppProfile> apps;

  // Netflix: audio and subtitles in clear; URIs protected via the non-DASH
  // Widevine channel; serves discontinued devices.
  {
    OttAppProfile app;
    app.name = "Netflix";
    app.installs_millions = 1000;
    app.content_policy = {.encrypt_video = true,
                          .encrypt_audio = false,
                          .encrypt_subtitles = false,
                          .key_usage = KeyUsagePolicy::Minimum};
    app.secure_uri_channel = true;
    apps.push_back(app);
  }

  // Disney+: audio encrypted (shared key), subtitles clear; enforces
  // revocation (provisioning fails on the Nexus 5).
  {
    OttAppProfile app;
    app.name = "Disney+";
    app.installs_millions = 100;
    app.content_policy = {.encrypt_video = true,
                          .encrypt_audio = true,
                          .encrypt_subtitles = false,
                          .key_usage = KeyUsagePolicy::Minimum};
    app.enforce_revocation = true;
    apps.push_back(app);
  }

  // Amazon Prime Video: the only app following the recommended key policy;
  // embedded custom DRM when just L3 is available.
  {
    OttAppProfile app;
    app.name = "Amazon Prime Video";
    app.installs_millions = 100;
    app.content_policy = {.encrypt_video = true,
                          .encrypt_audio = true,
                          .encrypt_subtitles = false,
                          .key_usage = KeyUsagePolicy::Recommended};
    app.custom_drm_on_l3_only = true;
    apps.push_back(app);
  }

  // Hulu: subtitle URIs undiscoverable; key-usage audit blocked by region.
  {
    OttAppProfile app;
    app.name = "Hulu";
    app.installs_millions = 50;
    app.content_policy = {.encrypt_video = true,
                          .encrypt_audio = true,
                          .encrypt_subtitles = false,
                          .key_usage = KeyUsagePolicy::Minimum};
    app.subtitles_via_opaque_channel = true;
    app.restrict_audit_region = true;
    apps.push_back(app);
  }

  // HBO Max: enforces revocation; key-usage audit blocked by region.
  {
    OttAppProfile app;
    app.name = "HBO Max";
    app.installs_millions = 10;
    app.content_policy = {.encrypt_video = true,
                          .encrypt_audio = true,
                          .encrypt_subtitles = false,
                          .key_usage = KeyUsagePolicy::Minimum};
    app.enforce_revocation = true;
    app.restrict_audit_region = true;
    apps.push_back(app);
  }

  // Starz: enforces revocation; subtitle URIs undiscoverable.
  {
    OttAppProfile app;
    app.name = "Starz";
    app.installs_millions = 10;
    app.content_policy = {.encrypt_video = true,
                          .encrypt_audio = true,
                          .encrypt_subtitles = false,
                          .key_usage = KeyUsagePolicy::Minimum};
    app.enforce_revocation = true;
    app.subtitles_via_opaque_channel = true;
    apps.push_back(app);
  }

  // myCANAL: audio in clear.
  {
    OttAppProfile app;
    app.name = "myCANAL";
    app.installs_millions = 10;
    app.content_policy = {.encrypt_video = true,
                          .encrypt_audio = false,
                          .encrypt_subtitles = false,
                          .key_usage = KeyUsagePolicy::Minimum};
    apps.push_back(app);
  }

  // Showtime.
  {
    OttAppProfile app;
    app.name = "Showtime";
    app.installs_millions = 5;
    app.content_policy = {.encrypt_video = true,
                          .encrypt_audio = true,
                          .encrypt_subtitles = false,
                          .key_usage = KeyUsagePolicy::Minimum};
    apps.push_back(app);
  }

  // OCS.
  {
    OttAppProfile app;
    app.name = "OCS";
    app.installs_millions = 1;
    app.content_policy = {.encrypt_video = true,
                          .encrypt_audio = true,
                          .encrypt_subtitles = false,
                          .key_usage = KeyUsagePolicy::Minimum};
    apps.push_back(app);
  }

  // Salto: audio in clear.
  {
    OttAppProfile app;
    app.name = "Salto";
    app.installs_millions = 1;
    app.content_policy = {.encrypt_video = true,
                          .encrypt_audio = false,
                          .encrypt_subtitles = false,
                          .key_usage = KeyUsagePolicy::Minimum};
    apps.push_back(app);
  }

  return apps;
}

std::optional<OttAppProfile> find_app(const std::string& name) {
  for (const OttAppProfile& app : study_catalog()) {
    if (app.name == name) return app;
  }
  return std::nullopt;
}

}  // namespace wideleak::ott
