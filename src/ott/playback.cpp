#include "ott/playback.hpp"

#include <algorithm>
#include <set>

#include "ott/custom_drm.hpp"
#include "support/log.hpp"

namespace wideleak::ott {

namespace {

/// Split a comma-separated header value.
std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    if (comma == std::string::npos) {
      if (start < value.size()) out.push_back(value.substr(start));
      break;
    }
    out.push_back(value.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

OttApp::OttApp(OttAppProfile profile, StreamingEcosystem& ecosystem, android::Device& device)
    : profile_(std::move(profile)),
      ecosystem_(ecosystem),
      device_(device),
      tls_(ecosystem.network(), device.system_trust(), device.fork_rng()),
      rng_(device.fork_rng()),
      // Label-derived, so adding the retry stream leaves the device rng's
      // draw sequence (and thus every pre-existing result) untouched.
      retry_rng_(ecosystem.derive_seed("retry|" + profile_.name + "|" + device.spec().serial)) {
  if (profile_.ssl_pinning) {
    // Apps ship pins for their own hosts: the genuine registered
    // certificate, not whatever a (possibly faulty) hello presents.
    for (const std::string& host : {profile_.backend_host(), profile_.cdn_host()}) {
      tls_.pins().pin(host, ecosystem_.network().certificate_of(host).pin_value());
    }
  }
}

net::TlsExchangeResult OttApp::exchange(const std::string& host, const net::HttpRequest& req,
                                        const net::ResponseValidator& validate) {
  const auto result = net::request_with_retry(tls_, host, req, retry_policy_, retry_rng_,
                                              &ecosystem_.clock(), ecosystem_.retry_stats(),
                                              validate);
  last_net_error_ = result.error;
  last_net_error_detail_ = result.error_detail;
  return result;
}

bool OttApp::login() {
  net::HttpRequest req;
  req.method = "POST";
  req.path = "/login";
  req.body = to_bytes("subscriber:hunter2");
  const auto result = exchange(profile_.backend_host(), req);
  if (!result.ok()) return false;
  auth_token_ = to_string(BytesView(result.response->body));
  return true;
}

std::optional<Bytes> OttApp::download(const std::string& host, const std::string& path) {
  net::HttpRequest req;
  req.path = path;
  req.headers["authorization"] = auth_token_;
  const auto result = exchange(host, req);
  if (!result.ok()) return std::nullopt;
  return result.response->body;
}

bool OttApp::ensure_provisioned(PlaybackOutcome& outcome) {
  android::MediaDrm drm(device_, android::kWidevineUuid);
  // Every service performs its own provisioning round-trip at playback
  // setup (re-issuing is idempotent): this is where revocation-enforcing
  // services turn discontinued devices away.
  outcome.provisioning_attempted = true;
  const Bytes request = drm.get_provision_request();
  net::HttpRequest http;
  http.method = "POST";
  http.path = "/provision";
  http.body = request;
  const auto result = exchange(profile_.backend_host(), http, [](const net::HttpResponse& r) {
    try {
      widevine::ProvisioningResponse::deserialize(r.body);
      return ErrorCode::None;
    } catch (const ParseError&) {
      return ErrorCode::MalformedPayload;
    }
  });
  if (!result.ok()) {
    outcome.provisioning_error = "provisioning transport failure (" + result.error_detail + ")";
    outcome.net_error = result.error;
    outcome.net_error_detail = result.error_detail;
    return false;
  }
  const auto response = widevine::ProvisioningResponse::deserialize(result.response->body);
  if (!response.granted) {
    outcome.provisioning_error = response.deny_reason;
    // Surface the denial to the CDM so its pending session is cleaned up.
    drm.provide_provision_response(result.response->body);
    return false;
  }
  if (!drm.provide_provision_response(result.response->body)) {
    outcome.provisioning_error = "provisioning response rejected by CDM";
    return false;
  }
  outcome.provisioning_ok = true;
  return true;
}

std::optional<media::Mpd> OttApp::fetch_manifest(PlaybackOutcome& outcome) {
  net::HttpRequest req;
  req.path = "/manifest";
  req.headers["authorization"] = auth_token_;
  const bool secure_channel = profile_.secure_uri_channel;
  const auto result =
      exchange(profile_.backend_host(), req, [secure_channel](const net::HttpResponse& r) {
        if (secure_channel) {
          try {
            SecureManifestEnvelope::deserialize(r.body);
            return ErrorCode::None;
          } catch (const ParseError&) {
            return ErrorCode::MalformedPayload;
          }
        }
        return media::Mpd::try_parse(to_string(BytesView(r.body))).ok()
                   ? ErrorCode::None
                   : ErrorCode::MalformedPayload;
      });
  if (!result.ok()) {
    outcome.failure = "manifest fetch failed (" +
                      (result.error != ErrorCode::None
                           ? std::string(to_string(result.error))
                           : (result.response ? std::to_string(result.response->status)
                                              : net::to_string(result.handshake))) +
                      ")";
    outcome.net_error = result.error;
    outcome.net_error_detail = result.error_detail;
    return std::nullopt;
  }
  if (const auto it = result.response->headers.find("x-subtitle-tokens");
      it != result.response->headers.end()) {
    subtitle_tokens_ = split_csv(it->second);
  }

  if (!profile_.secure_uri_channel) {
    auto parsed = media::Mpd::try_parse(to_string(BytesView(result.response->body)));
    if (!parsed.ok()) {
      outcome.failure = "manifest malformed (" + parsed.error_detail() + ")";
      return std::nullopt;
    }
    return std::move(parsed.value());
  }

  // Netflix path: the manifest arrives generic-crypto protected; unwrap it
  // through the Widevine non-DASH channel (license for the channel key id,
  // then CryptoSession.decrypt).
  const auto envelope = SecureManifestEnvelope::deserialize(result.response->body);
  android::MediaDrm drm(device_, android::kWidevineUuid);
  const auto session = drm.open_session();
  media::PsshBox pssh;
  pssh.key_ids.push_back(envelope.kid);
  const Bytes key_request = drm.get_key_request(session, pssh.to_box().serialize());

  net::HttpRequest lic;
  lic.method = "POST";
  lic.path = "/license";
  lic.headers["authorization"] = auth_token_;
  lic.body = key_request;
  const auto lic_result = exchange(profile_.backend_host(), lic, [](const net::HttpResponse& r) {
    try {
      widevine::LicenseResponse::deserialize(r.body);
      return ErrorCode::None;
    } catch (const ParseError&) {
      return ErrorCode::MalformedPayload;
    }
  });
  if (!lic_result.ok()) {
    outcome.failure = "secure-channel license fetch failed (" + lic_result.error_detail + ")";
    outcome.net_error = lic_result.error;
    outcome.net_error_detail = lic_result.error_detail;
    drm.close_session(session);
    return std::nullopt;
  }
  outcome.widevine_used = true;
  if (drm.provide_key_response(session, lic_result.response->body) !=
      widevine::OemCryptoResult::Success) {
    outcome.failure = "secure-channel license rejected";
    drm.close_session(session);
    return std::nullopt;
  }
  Bytes manifest_xml;
  const auto dec = drm.crypto_session_decrypt(session, envelope.kid, envelope.iv,
                                              envelope.ciphertext, manifest_xml);
  drm.close_session(session);
  if (dec != widevine::OemCryptoResult::Success) {
    outcome.failure = "secure-channel manifest decrypt failed";
    return std::nullopt;
  }
  auto parsed = media::Mpd::try_parse(to_string(BytesView(manifest_xml)));
  if (!parsed.ok()) {
    outcome.failure = "secure-channel manifest malformed (" + parsed.error_detail() + ")";
    return std::nullopt;
  }
  return std::move(parsed.value());
}

PlaybackOutcome OttApp::play_with_custom_drm(const PlaybackRequest& request) {
  PlaybackOutcome outcome;
  outcome.used_custom_drm = true;
  const net::RetryStats net_before = ecosystem_.retry_stats();
  const auto finish = [&]() -> PlaybackOutcome& {
    const net::RetryStats& now = ecosystem_.retry_stats();
    outcome.net_attempts = now.attempts - net_before.attempts;
    outcome.net_retries = now.retries - net_before.retries;
    outcome.net_giveups = now.giveups - net_before.giveups;
    return outcome;
  };

  const auto manifest = fetch_manifest(outcome);
  if (!manifest) return finish();

  // Fetch the custom license: sub-HD keys wrapped under the app secret.
  net::HttpRequest lic;
  lic.method = "POST";
  lic.path = "/custom_license";
  lic.headers["authorization"] = auth_token_;
  const Bytes nonce = rng_.next_bytes(16);
  lic.body = nonce;
  const std::string app_name = profile_.name;
  const auto lic_result =
      exchange(profile_.backend_host(), lic, [&app_name, &nonce](const net::HttpResponse& r) {
        try {
          CustomDrm::unwrap_key_map(app_name, nonce, r.body);
          return ErrorCode::None;
        } catch (const Error&) {  // ParseError or CryptoError on garbage
          return ErrorCode::MalformedPayload;
        }
      });
  if (!lic_result.ok()) {
    outcome.failure = "custom license fetch failed (" + lic_result.error_detail + ")";
    outcome.net_error = lic_result.error;
    outcome.net_error_detail = lic_result.error_detail;
    return finish();
  }
  const auto keys = CustomDrm::unwrap_key_map(profile_.name, nonce, lic_result.response->body);
  outcome.license_ok = true;

  // Pick the best video the custom license covers, plus audio.
  android::Surface surface;
  std::uint16_t chosen_height = 0;
  for (const auto* rep : manifest->of_type(media::TrackType::Video)) {
    if (request.video_height != 0 && rep->resolution.height != request.video_height) continue;
    if (rep->default_kid && !keys.contains(hex_encode(*rep->default_kid))) continue;
    chosen_height = std::max(chosen_height, rep->resolution.height);
  }
  Bytes clear;
  for (const auto& rep : manifest->representations) {
    const bool is_chosen_video =
        rep.type == media::TrackType::Video && rep.resolution.height == chosen_height;
    const bool is_audio =
        rep.type == media::TrackType::Audio && rep.language == request.audio_language;
    if (!is_chosen_video && !is_audio) continue;
    const auto file = download(profile_.cdn_host(), rep.base_url);
    if (!file) {
      outcome.failure = "download failed: " + rep.base_url;
      outcome.net_error = last_net_error_;
      outcome.net_error_detail = last_net_error_detail_;
      return finish();
    }
    auto parsed_track = media::PackagedTrack::try_from_file(BytesView(*file));
    if (!parsed_track.ok()) {
      outcome.failure = "unparseable track " + rep.base_url + " (" +
                        parsed_track.error_detail() + ")";
      outcome.net_error = ErrorCode::MalformedPayload;
      outcome.net_error_detail = parsed_track.error_detail();
      return finish();
    }
    const auto& track = parsed_track.value();
    // Reuse one stream buffer across tracks; the append forms decrypt in
    // place inside it.
    clear.clear();
    if (track.encrypted) {
      const auto key = keys.find(hex_encode(track.key_id));
      if (key == keys.end()) {
        outcome.failure = "custom key missing for " + rep.base_url;
        return finish();
      }
      CustomDrm::decrypt_track_append(track, key->second, clear);
    } else {
      media::raw_sample_stream_append(track, clear);
    }
    std::size_t pos = 0;
    while (pos < clear.size()) {
      const auto parsed = media::Frame::parse(BytesView(clear).subspan(pos));
      if (!parsed) {
        outcome.failure = "undecodable custom-DRM stream";
        return finish();
      }
      surface.render(parsed->frame);
      pos += parsed->consumed;
    }
  }

  outcome.played = surface.frames_rendered() > 0;
  outcome.frames_rendered = surface.frames_rendered();
  outcome.video_resolution = surface.video_resolution();
  return finish();
}

PlaybackOutcome OttApp::play_title(const PlaybackRequest& request) {
  const net::RetryStats net_before = ecosystem_.retry_stats();
  PlaybackOutcome outcome;
  const auto finish = [&]() -> PlaybackOutcome& {
    const net::RetryStats& now = ecosystem_.retry_stats();
    outcome.net_attempts = now.attempts - net_before.attempts;
    outcome.net_retries = now.retries - net_before.retries;
    outcome.net_giveups = now.giveups - net_before.giveups;
    return outcome;
  };
  const auto degrade = [&](const std::string& note) {
    outcome.degraded = true;
    if (!outcome.degradation.empty()) outcome.degradation += "; ";
    outcome.degradation += note;
  };

  if (auth_token_.empty() && !login()) {
    outcome.failure = "login failed";
    outcome.net_error = last_net_error_;
    outcome.net_error_detail = last_net_error_detail_;
    return finish();
  }

  // Amazon-style fallback: no Widevine exchange at all on L3-only devices.
  if (profile_.custom_drm_on_l3_only &&
      device_.security_level() != widevine::SecurityLevel::L1) {
    return play_with_custom_drm(request);
  }

  // Provisioning comes first: a CDM without its Device RSA Key cannot do a
  // (modern) license exchange, and revocation-enforcing services deny here.
  if (!ensure_provisioned(outcome)) return finish();

  const auto manifest = fetch_manifest(outcome);
  if (!manifest) return finish();
  outcome.widevine_used = true;

  // Collect the key ids to license: from the MPD, plus from any encrypted
  // track whose MPD metadata was redacted (regional restriction) — the
  // file's tenc box always names its key.
  std::set<std::string> kid_set;
  std::map<std::string, Bytes> audio_files;  // path -> bytes
  for (const auto& rep : manifest->representations) {
    if (rep.default_kid) kid_set.insert(hex_encode(*rep.default_kid));
    if (rep.type == media::TrackType::Audio && rep.language == request.audio_language) {
      if (const auto file = download(profile_.cdn_host(), rep.base_url)) {
        const auto track = media::PackagedTrack::try_from_file(BytesView(*file));
        if (!track.ok()) {
          degrade("audio segment " + rep.base_url + " unparseable");
          continue;
        }
        if (track.value().encrypted) kid_set.insert(hex_encode(track.value().key_id));
        audio_files[rep.base_url] = *file;
      } else {
        degrade("audio segment " + rep.base_url + " unavailable");
      }
    }
  }

  // License exchange (Figure 1: getKeyRequest -> server -> provideKeyResponse).
  android::MediaDrm drm(device_, android::kWidevineUuid);
  const auto session = drm.open_session();
  media::PsshBox pssh;
  for (const std::string& kid_hex : kid_set) pssh.key_ids.push_back(hex_decode(kid_hex));
  const Bytes key_request = drm.get_key_request(session, pssh.to_box().serialize());

  net::HttpRequest lic;
  lic.method = "POST";
  lic.path = "/license";
  lic.headers["authorization"] = auth_token_;
  lic.body = key_request;
  const auto lic_result = exchange(profile_.backend_host(), lic, [](const net::HttpResponse& r) {
    try {
      widevine::LicenseResponse::deserialize(r.body);
      return ErrorCode::None;
    } catch (const ParseError&) {
      return ErrorCode::MalformedPayload;
    }
  });
  if (!lic_result.ok()) {
    outcome.license_error = "license transport failure (" + lic_result.error_detail + ")";
    outcome.net_error = lic_result.error;
    outcome.net_error_detail = lic_result.error_detail;
    drm.close_session(session);
    return finish();
  }
  const auto response = widevine::LicenseResponse::deserialize(lic_result.response->body);
  if (!response.granted) {
    outcome.license_error = response.deny_reason;
    drm.close_session(session);
    return finish();
  }
  if (drm.provide_key_response(session, lic_result.response->body) !=
      widevine::OemCryptoResult::Success) {
    outcome.license_error = "license rejected by CDM";
    drm.close_session(session);
    return finish();
  }
  outcome.license_ok = true;

  // Which keys did we actually get? Rank the playable video qualities.
  std::set<std::string> loaded;
  for (const auto& kid : drm.loaded_key_ids(session)) loaded.insert(hex_encode(kid));

  std::vector<const media::MpdRepresentation*> video_candidates;
  for (const auto* rep : manifest->of_type(media::TrackType::Video)) {
    if (request.video_height != 0 && rep->resolution.height != request.video_height) continue;
    if (rep->default_kid && !loaded.contains(hex_encode(*rep->default_kid))) continue;
    video_candidates.push_back(rep);
  }
  std::sort(video_candidates.begin(), video_candidates.end(),
            [](const media::MpdRepresentation* a, const media::MpdRepresentation* b) {
              return a->resolution.height > b->resolution.height;
            });
  if (video_candidates.empty()) {
    outcome.license_error = "no playable video quality licensed";
    drm.close_session(session);
    return finish();
  }

  android::MediaCrypto crypto(drm, session);
  android::Surface surface;
  android::MediaCodec codec(&crypto, surface);

  auto play_file = [&](const Bytes& file) -> bool {
    const auto parsed = media::PackagedTrack::try_from_file(BytesView(file));
    if (!parsed.ok()) return false;
    const auto& track = parsed.value();
    if (track.encrypted) {
      for (std::size_t i = 0; i < track.samples.size(); ++i) {
        if (!codec.queue_secure_input_buffer(track.key_id, BytesView(track.samples[i]),
                                             track.senc.entries[i])) {
          return false;
        }
      }
    } else {
      for (const Bytes& sample : track.samples) {
        if (!codec.queue_input_buffer(sample)) return false;
      }
    }
    return true;
  };

  // Video: walk the ladder from the best licensed quality down, degrading
  // to the next rung when a segment cannot be fetched or decoded.
  const media::MpdRepresentation* rendered_video = nullptr;
  for (const auto* rep : video_candidates) {
    const auto file = download(profile_.cdn_host(), rep->base_url);
    if (file && play_file(*file)) {
      rendered_video = rep;
      break;
    }
    degrade("video " + rep->resolution.label() + " segment failed");
  }
  if (rendered_video == nullptr) {
    outcome.failure = "video playback failed";
    // Blame the most recent transport error if there was one; otherwise every
    // candidate arrived but was undecodable (corruption past the transport).
    outcome.net_error = last_net_error_ != ErrorCode::None ? last_net_error_
                                                           : ErrorCode::MalformedPayload;
    outcome.net_error_detail = last_net_error_ != ErrorCode::None
                                   ? last_net_error_detail_
                                   : "every candidate video segment undecodable";
    drm.close_session(session);
    return finish();
  }
  // Audio (already downloaded above); a failed track degrades instead of
  // aborting the session.
  for (const auto& [path, file] : audio_files) {
    if (!play_file(file)) degrade("audio track " + path + " skipped");
  }
  // Subtitles: MPD representations or the opaque token channel.
  if (profile_.subtitles_via_opaque_channel) {
    for (const std::string& token : subtitle_tokens_) {
      if (const auto file = download(profile_.backend_host(), "/st/" + token)) {
        play_file(*file);
      }
    }
  } else {
    for (const auto* rep : manifest->of_type(media::TrackType::Subtitle)) {
      if (rep->language != request.subtitle_language) continue;
      if (const auto file = download(profile_.cdn_host(), rep->base_url)) {
        play_file(*file);
      }
    }
  }

  drm.close_session(session);
  outcome.played = surface.frames_rendered() > 0;
  outcome.frames_rendered = surface.frames_rendered();
  outcome.video_resolution = surface.video_resolution();
  WL_LOG(Info) << profile_.name << ": played " << outcome.frames_rendered << " frames at "
               << outcome.video_resolution.label() << " on "
               << widevine::to_string(device_.security_level())
               << (outcome.degraded ? " (degraded: " + outcome.degradation + ")" : "");
  return finish();
}

}  // namespace wideleak::ott
