#include "ott/playback.hpp"

#include <algorithm>
#include <set>

#include "ott/custom_drm.hpp"
#include "support/log.hpp"

namespace wideleak::ott {

namespace {

/// Split a comma-separated header value.
std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    if (comma == std::string::npos) {
      if (start < value.size()) out.push_back(value.substr(start));
      break;
    }
    out.push_back(value.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

OttApp::OttApp(OttAppProfile profile, StreamingEcosystem& ecosystem, android::Device& device)
    : profile_(std::move(profile)),
      ecosystem_(ecosystem),
      device_(device),
      tls_(ecosystem.network(), device.system_trust(), device.fork_rng()),
      rng_(device.fork_rng()) {
  if (profile_.ssl_pinning) {
    // Apps ship pins for their own hosts.
    for (const std::string& host : {profile_.backend_host(), profile_.cdn_host()}) {
      tls_.pins().pin(host, ecosystem_.network().find(host).certificate().pin_value());
    }
  }
}

bool OttApp::login() {
  net::HttpRequest req;
  req.method = "POST";
  req.path = "/login";
  req.body = to_bytes("subscriber:hunter2");
  const auto result = tls_.request(profile_.backend_host(), req);
  if (!result.ok()) return false;
  auth_token_ = to_string(BytesView(result.response->body));
  return true;
}

std::optional<Bytes> OttApp::download(const std::string& host, const std::string& path) {
  net::HttpRequest req;
  req.path = path;
  req.headers["authorization"] = auth_token_;
  const auto result = tls_.request(host, req);
  if (!result.ok()) return std::nullopt;
  return result.response->body;
}

bool OttApp::ensure_provisioned(PlaybackOutcome& outcome) {
  android::MediaDrm drm(device_, android::kWidevineUuid);
  // Every service performs its own provisioning round-trip at playback
  // setup (re-issuing is idempotent): this is where revocation-enforcing
  // services turn discontinued devices away.
  outcome.provisioning_attempted = true;
  const Bytes request = drm.get_provision_request();
  net::HttpRequest http;
  http.method = "POST";
  http.path = "/provision";
  http.body = request;
  const auto result = tls_.request(profile_.backend_host(), http);
  if (!result.ok()) {
    outcome.provisioning_error = "provisioning transport failure";
    return false;
  }
  const auto response = widevine::ProvisioningResponse::deserialize(result.response->body);
  if (!response.granted) {
    outcome.provisioning_error = response.deny_reason;
    // Surface the denial to the CDM so its pending session is cleaned up.
    drm.provide_provision_response(result.response->body);
    return false;
  }
  if (!drm.provide_provision_response(result.response->body)) {
    outcome.provisioning_error = "provisioning response rejected by CDM";
    return false;
  }
  outcome.provisioning_ok = true;
  return true;
}

std::optional<media::Mpd> OttApp::fetch_manifest(PlaybackOutcome& outcome) {
  net::HttpRequest req;
  req.path = "/manifest";
  req.headers["authorization"] = auth_token_;
  const auto result = tls_.request(profile_.backend_host(), req);
  if (!result.ok()) {
    outcome.failure = "manifest fetch failed (" +
                      (result.response ? std::to_string(result.response->status)
                                       : net::to_string(result.handshake)) +
                      ")";
    return std::nullopt;
  }
  if (const auto it = result.response->headers.find("x-subtitle-tokens");
      it != result.response->headers.end()) {
    subtitle_tokens_ = split_csv(it->second);
  }

  if (!profile_.secure_uri_channel) {
    return media::Mpd::parse(to_string(BytesView(result.response->body)));
  }

  // Netflix path: the manifest arrives generic-crypto protected; unwrap it
  // through the Widevine non-DASH channel (license for the channel key id,
  // then CryptoSession.decrypt).
  const auto envelope = SecureManifestEnvelope::deserialize(result.response->body);
  android::MediaDrm drm(device_, android::kWidevineUuid);
  const auto session = drm.open_session();
  media::PsshBox pssh;
  pssh.key_ids.push_back(envelope.kid);
  const Bytes key_request = drm.get_key_request(session, pssh.to_box().serialize());

  net::HttpRequest lic;
  lic.method = "POST";
  lic.path = "/license";
  lic.headers["authorization"] = auth_token_;
  lic.body = key_request;
  const auto lic_result = tls_.request(profile_.backend_host(), lic);
  if (!lic_result.ok()) {
    outcome.failure = "secure-channel license fetch failed";
    drm.close_session(session);
    return std::nullopt;
  }
  outcome.widevine_used = true;
  if (drm.provide_key_response(session, lic_result.response->body) !=
      widevine::OemCryptoResult::Success) {
    outcome.failure = "secure-channel license rejected";
    drm.close_session(session);
    return std::nullopt;
  }
  Bytes manifest_xml;
  const auto dec = drm.crypto_session_decrypt(session, envelope.kid, envelope.iv,
                                              envelope.ciphertext, manifest_xml);
  drm.close_session(session);
  if (dec != widevine::OemCryptoResult::Success) {
    outcome.failure = "secure-channel manifest decrypt failed";
    return std::nullopt;
  }
  return media::Mpd::parse(to_string(BytesView(manifest_xml)));
}

PlaybackOutcome OttApp::play_with_custom_drm(const PlaybackRequest& request) {
  PlaybackOutcome outcome;
  outcome.used_custom_drm = true;

  const auto manifest = fetch_manifest(outcome);
  if (!manifest) return outcome;

  // Fetch the custom license: sub-HD keys wrapped under the app secret.
  net::HttpRequest lic;
  lic.method = "POST";
  lic.path = "/custom_license";
  lic.headers["authorization"] = auth_token_;
  const Bytes nonce = rng_.next_bytes(16);
  lic.body = nonce;
  const auto lic_result = tls_.request(profile_.backend_host(), lic);
  if (!lic_result.ok()) {
    outcome.failure = "custom license fetch failed";
    return outcome;
  }
  const auto keys = CustomDrm::unwrap_key_map(profile_.name, nonce, lic_result.response->body);
  outcome.license_ok = true;

  // Pick the best video the custom license covers, plus audio.
  android::Surface surface;
  std::uint16_t chosen_height = 0;
  for (const auto* rep : manifest->of_type(media::TrackType::Video)) {
    if (request.video_height != 0 && rep->resolution.height != request.video_height) continue;
    if (rep->default_kid && !keys.contains(hex_encode(*rep->default_kid))) continue;
    chosen_height = std::max(chosen_height, rep->resolution.height);
  }
  for (const auto& rep : manifest->representations) {
    const bool is_chosen_video =
        rep.type == media::TrackType::Video && rep.resolution.height == chosen_height;
    const bool is_audio =
        rep.type == media::TrackType::Audio && rep.language == request.audio_language;
    if (!is_chosen_video && !is_audio) continue;
    const auto file = download(profile_.cdn_host(), rep.base_url);
    if (!file) {
      outcome.failure = "download failed: " + rep.base_url;
      return outcome;
    }
    const auto track = media::PackagedTrack::from_file(BytesView(*file));
    Bytes clear;
    if (track.encrypted) {
      const auto key = keys.find(hex_encode(track.key_id));
      if (key == keys.end()) {
        outcome.failure = "custom key missing for " + rep.base_url;
        return outcome;
      }
      clear = CustomDrm::decrypt_track(track, key->second);
    } else {
      clear = media::raw_sample_stream(track);
    }
    std::size_t pos = 0;
    while (pos < clear.size()) {
      const auto parsed = media::Frame::parse(BytesView(clear).subspan(pos));
      if (!parsed) {
        outcome.failure = "undecodable custom-DRM stream";
        return outcome;
      }
      surface.render(parsed->frame);
      pos += parsed->consumed;
    }
  }

  outcome.played = surface.frames_rendered() > 0;
  outcome.frames_rendered = surface.frames_rendered();
  outcome.video_resolution = surface.video_resolution();
  return outcome;
}

PlaybackOutcome OttApp::play_title(const PlaybackRequest& request) {
  if (auth_token_.empty() && !login()) {
    PlaybackOutcome outcome;
    outcome.failure = "login failed";
    return outcome;
  }

  // Amazon-style fallback: no Widevine exchange at all on L3-only devices.
  if (profile_.custom_drm_on_l3_only &&
      device_.security_level() != widevine::SecurityLevel::L1) {
    return play_with_custom_drm(request);
  }

  PlaybackOutcome outcome;
  // Provisioning comes first: a CDM without its Device RSA Key cannot do a
  // (modern) license exchange, and revocation-enforcing services deny here.
  if (!ensure_provisioned(outcome)) return outcome;

  const auto manifest = fetch_manifest(outcome);
  if (!manifest) return outcome;
  outcome.widevine_used = true;

  // Collect the key ids to license: from the MPD, plus from any encrypted
  // track whose MPD metadata was redacted (regional restriction) — the
  // file's tenc box always names its key.
  std::set<std::string> kid_set;
  std::map<std::string, Bytes> audio_files;  // path -> bytes
  for (const auto& rep : manifest->representations) {
    if (rep.default_kid) kid_set.insert(hex_encode(*rep.default_kid));
    if (rep.type == media::TrackType::Audio && rep.language == request.audio_language) {
      if (const auto file = download(profile_.cdn_host(), rep.base_url)) {
        const auto track = media::PackagedTrack::from_file(BytesView(*file));
        if (track.encrypted) kid_set.insert(hex_encode(track.key_id));
        audio_files[rep.base_url] = *file;
      }
    }
  }

  // License exchange (Figure 1: getKeyRequest -> server -> provideKeyResponse).
  android::MediaDrm drm(device_, android::kWidevineUuid);
  const auto session = drm.open_session();
  media::PsshBox pssh;
  for (const std::string& kid_hex : kid_set) pssh.key_ids.push_back(hex_decode(kid_hex));
  const Bytes key_request = drm.get_key_request(session, pssh.to_box().serialize());

  net::HttpRequest lic;
  lic.method = "POST";
  lic.path = "/license";
  lic.headers["authorization"] = auth_token_;
  lic.body = key_request;
  const auto lic_result = tls_.request(profile_.backend_host(), lic);
  if (!lic_result.ok()) {
    outcome.license_error = "license transport failure";
    drm.close_session(session);
    return outcome;
  }
  const auto response = widevine::LicenseResponse::deserialize(lic_result.response->body);
  if (!response.granted) {
    outcome.license_error = response.deny_reason;
    drm.close_session(session);
    return outcome;
  }
  if (drm.provide_key_response(session, lic_result.response->body) !=
      widevine::OemCryptoResult::Success) {
    outcome.license_error = "license rejected by CDM";
    drm.close_session(session);
    return outcome;
  }
  outcome.license_ok = true;

  // Which keys did we actually get? Pick the best playable video quality.
  std::set<std::string> loaded;
  for (const auto& kid : drm.loaded_key_ids(session)) loaded.insert(hex_encode(kid));

  const media::MpdRepresentation* chosen_video = nullptr;
  for (const auto* rep : manifest->of_type(media::TrackType::Video)) {
    if (request.video_height != 0 && rep->resolution.height != request.video_height) continue;
    if (rep->default_kid && !loaded.contains(hex_encode(*rep->default_kid))) continue;
    if (chosen_video == nullptr || rep->resolution.height > chosen_video->resolution.height) {
      chosen_video = rep;
    }
  }
  if (chosen_video == nullptr) {
    outcome.license_error = "no playable video quality licensed";
    drm.close_session(session);
    return outcome;
  }

  android::MediaCrypto crypto(drm, session);
  android::Surface surface;
  android::MediaCodec codec(&crypto, surface);

  auto play_file = [&](const Bytes& file) -> bool {
    const auto track = media::PackagedTrack::from_file(BytesView(file));
    if (track.encrypted) {
      for (std::size_t i = 0; i < track.samples.size(); ++i) {
        if (!codec.queue_secure_input_buffer(track.key_id, BytesView(track.samples[i]),
                                             track.senc.entries[i])) {
          return false;
        }
      }
    } else {
      for (const Bytes& sample : track.samples) {
        if (!codec.queue_input_buffer(sample)) return false;
      }
    }
    return true;
  };

  // Video.
  if (const auto file = download(profile_.cdn_host(), chosen_video->base_url);
      !file || !play_file(*file)) {
    outcome.failure = "video playback failed";
    drm.close_session(session);
    return outcome;
  }
  // Audio (already downloaded above).
  for (const auto& [path, file] : audio_files) {
    if (!play_file(file)) {
      outcome.failure = "audio playback failed";
      drm.close_session(session);
      return outcome;
    }
  }
  // Subtitles: MPD representations or the opaque token channel.
  if (profile_.subtitles_via_opaque_channel) {
    for (const std::string& token : subtitle_tokens_) {
      if (const auto file = download(profile_.backend_host(), "/st/" + token)) {
        play_file(*file);
      }
    }
  } else {
    for (const auto* rep : manifest->of_type(media::TrackType::Subtitle)) {
      if (rep->language != request.subtitle_language) continue;
      if (const auto file = download(profile_.cdn_host(), rep->base_url)) {
        play_file(*file);
      }
    }
  }

  drm.close_session(session);
  outcome.played = surface.frames_rendered() > 0;
  outcome.frames_rendered = surface.frames_rendered();
  outcome.video_resolution = surface.video_resolution();
  WL_LOG(Info) << profile_.name << ": played " << outcome.frames_rendered << " frames at "
               << outcome.video_resolution.label() << " on "
               << widevine::to_string(device_.security_level());
  return outcome;
}

}  // namespace wideleak::ott
