#include "ott/playback.hpp"

#include <algorithm>

#include "ott/custom_drm.hpp"
#include "support/log.hpp"
#include "widevine/chaos.hpp"

namespace wideleak::ott {

namespace {

/// License-payload validator: malformed bodies are retryable corruption, and
/// denials minted by the DrmService itself (shard restarting, overload,
/// brownout) classify as retryable-after-reopen — the next attempt reopens
/// the content-derived session transparently. Organic denials (revocation,
/// policy) return None and flow to the caller as authoritative.
ErrorCode validate_license_payload(const net::HttpResponse& r) {
  try {
    const auto response = widevine::LicenseResponse::deserialize(r.body);
    if (!response.granted) return widevine::classify_service_refusal(response.deny_reason);
    return ErrorCode::None;
  } catch (const ParseError&) {
    return ErrorCode::MalformedPayload;
  }
}

/// Same contract for provisioning responses.
ErrorCode validate_provisioning_payload(const net::HttpResponse& r) {
  try {
    const auto response = widevine::ProvisioningResponse::deserialize(r.body);
    if (!response.granted) return widevine::classify_service_refusal(response.deny_reason);
    return ErrorCode::None;
  } catch (const ParseError&) {
    return ErrorCode::MalformedPayload;
  }
}

/// Split a comma-separated header value.
std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    if (comma == std::string::npos) {
      if (start < value.size()) out.push_back(value.substr(start));
      break;
    }
    out.push_back(value.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

OttApp::OttApp(OttAppProfile profile, StreamingEcosystem& ecosystem, android::Device& device)
    : profile_(std::move(profile)),
      ecosystem_(ecosystem),
      device_(device),
      tls_(ecosystem.network(), device.system_trust(), device.fork_rng()),
      rng_(device.fork_rng()),
      // Label-derived, so adding the retry stream leaves the device rng's
      // draw sequence (and thus every pre-existing result) untouched.
      retry_rng_(ecosystem.derive_seed("retry|" + profile_.name + "|" + device.spec().serial)) {
  if (profile_.ssl_pinning) {
    // Apps ship pins for their own hosts: the genuine registered
    // certificate, not whatever a (possibly faulty) hello presents.
    for (const std::string& host : {profile_.backend_host(), profile_.cdn_host()}) {
      tls_.pins().pin(host, ecosystem_.network().certificate_of(host).pin_value());
    }
  }
}

net::TlsExchangeResult OttApp::exchange(const std::string& host, const net::HttpRequest& req,
                                        const net::ResponseValidator& validate) {
  // Every request inherits the ecosystem's deadline (the cell's budget) and
  // breaker bank; both default off, leaving the policy byte-identical.
  net::RetryPolicy policy = retry_policy_;
  policy.deadline_tick = ecosystem_.deadline_tick();
  net::CircuitBreaker* breaker =
      ecosystem_.breaker().enabled() ? &ecosystem_.breaker() : nullptr;
  const auto result = net::request_with_retry(tls_, host, req, policy, retry_rng_,
                                              &ecosystem_.clock(), ecosystem_.retry_stats(),
                                              validate, breaker);
  last_net_error_ = result.error;
  last_net_error_detail_ = result.error_detail;
  return result;
}

bool OttApp::login() {
  net::HttpRequest req;
  req.method = "POST";
  req.path = "/login";
  req.body = to_bytes("subscriber:hunter2");
  const auto result = exchange(profile_.backend_host(), req);
  if (!result.ok()) return false;
  auth_token_ = to_string(BytesView(result.response->body));
  return true;
}

std::optional<Bytes> OttApp::download(const std::string& host, const std::string& path) {
  net::HttpRequest req;
  req.path = path;
  req.headers["authorization"] = auth_token_;
  const auto result = exchange(host, req);
  if (!result.ok()) return std::nullopt;
  return result.response->body;
}

bool OttApp::ensure_provisioned(PlaybackOutcome& outcome) {
  android::MediaDrm drm(device_, android::kWidevineUuid);
  // Every service performs its own provisioning round-trip at playback
  // setup (re-issuing is idempotent): this is where revocation-enforcing
  // services turn discontinued devices away.
  outcome.provisioning_attempted = true;
  const Bytes request = drm.get_provision_request();
  net::HttpRequest http;
  http.method = "POST";
  http.path = "/provision";
  http.body = request;
  const auto result = exchange(profile_.backend_host(), http, validate_provisioning_payload);
  if (!result.ok()) {
    outcome.provisioning_error = "provisioning transport failure (" + result.error_detail + ")";
    outcome.net_error = result.error;
    outcome.net_error_detail = result.error_detail;
    return false;
  }
  const auto response = widevine::ProvisioningResponse::deserialize(result.response->body);
  if (!response.granted) {
    outcome.provisioning_error = response.deny_reason;
    // Surface the denial to the CDM so its pending session is cleaned up.
    drm.provide_provision_response(result.response->body);
    return false;
  }
  if (!drm.provide_provision_response(result.response->body)) {
    outcome.provisioning_error = "provisioning response rejected by CDM";
    return false;
  }
  outcome.provisioning_ok = true;
  return true;
}

std::optional<media::Mpd> OttApp::fetch_manifest(PlaybackOutcome& outcome) {
  net::HttpRequest req;
  req.path = "/manifest";
  req.headers["authorization"] = auth_token_;
  const bool secure_channel = profile_.secure_uri_channel;
  const auto result =
      exchange(profile_.backend_host(), req, [secure_channel](const net::HttpResponse& r) {
        if (secure_channel) {
          try {
            SecureManifestEnvelope::deserialize(r.body);
            return ErrorCode::None;
          } catch (const ParseError&) {
            return ErrorCode::MalformedPayload;
          }
        }
        return media::Mpd::try_parse(to_string(BytesView(r.body))).ok()
                   ? ErrorCode::None
                   : ErrorCode::MalformedPayload;
      });
  if (!result.ok()) {
    outcome.failure = "manifest fetch failed (" +
                      (result.error != ErrorCode::None
                           ? std::string(to_string(result.error))
                           : (result.response ? std::to_string(result.response->status)
                                              : net::to_string(result.handshake))) +
                      ")";
    outcome.net_error = result.error;
    outcome.net_error_detail = result.error_detail;
    return std::nullopt;
  }
  if (const auto it = result.response->headers.find("x-subtitle-tokens");
      it != result.response->headers.end()) {
    subtitle_tokens_ = split_csv(it->second);
  }

  if (!profile_.secure_uri_channel) {
    auto parsed = media::Mpd::try_parse(to_string(BytesView(result.response->body)));
    if (!parsed.ok()) {
      outcome.failure = "manifest malformed (" + parsed.error_detail() + ")";
      return std::nullopt;
    }
    return std::move(parsed.value());
  }

  // Netflix path: the manifest arrives generic-crypto protected; unwrap it
  // through the Widevine non-DASH channel (license for the channel key id,
  // then CryptoSession.decrypt).
  const auto envelope = SecureManifestEnvelope::deserialize(result.response->body);
  android::MediaDrm drm(device_, android::kWidevineUuid);
  const auto session = drm.open_session();
  media::PsshBox pssh;
  pssh.key_ids.push_back(envelope.kid);
  const Bytes key_request = drm.get_key_request(session, pssh.to_box().serialize());

  net::HttpRequest lic;
  lic.method = "POST";
  lic.path = "/license";
  lic.headers["authorization"] = auth_token_;
  lic.body = key_request;
  const auto lic_result = exchange(profile_.backend_host(), lic, validate_license_payload);
  if (!lic_result.ok()) {
    outcome.failure = "secure-channel license fetch failed (" + lic_result.error_detail + ")";
    outcome.net_error = lic_result.error;
    outcome.net_error_detail = lic_result.error_detail;
    drm.close_session(session);
    return std::nullopt;
  }
  outcome.widevine_used = true;
  if (drm.provide_key_response(session, lic_result.response->body) !=
      widevine::OemCryptoResult::Success) {
    outcome.failure = "secure-channel license rejected";
    drm.close_session(session);
    return std::nullopt;
  }
  Bytes manifest_xml;
  const auto dec = drm.crypto_session_decrypt(session, envelope.kid, envelope.iv,
                                              envelope.ciphertext, manifest_xml);
  drm.close_session(session);
  if (dec != widevine::OemCryptoResult::Success) {
    outcome.failure = "secure-channel manifest decrypt failed";
    return std::nullopt;
  }
  auto parsed = media::Mpd::try_parse(to_string(BytesView(manifest_xml)));
  if (!parsed.ok()) {
    outcome.failure = "secure-channel manifest malformed (" + parsed.error_detail() + ")";
    return std::nullopt;
  }
  return std::move(parsed.value());
}

PlaybackOutcome OttApp::play_title(const PlaybackRequest& request) {
  PlaybackSession session(*this, request);
  while (!session.done()) session.step();
  return session.take_outcome();
}

// ---------------------------------------------------------------------------
// PlaybackSession: the Figure-1 flow, one stage per step()
// ---------------------------------------------------------------------------

PlaybackSession::PlaybackSession(OttApp& app, PlaybackRequest request)
    : app_(app), request_(std::move(request)), net_before_(app.ecosystem_.retry_stats()) {}

int PlaybackSession::max_steps_for(const OttAppProfile& profile) {
  const int audio = static_cast<int>(profile.audio_languages.size());
  const int subs = static_cast<int>(profile.subtitle_languages.size());
  const int rungs = static_cast<int>(media::standard_quality_ladder().size());
  // Widevine path: login, provision, manifest; track collection (one audio
  // segment fetch per step, plus the step that finds no work left); the
  // license exchange; the video ladder walk (one rung per step); audio
  // decode; subtitles (one per step, plus the finisher); finish.
  const int widevine = 3 + (audio + 1) + 1 + rungs + 1 + (subs + 1) + 1;
  // Custom-DRM fallback: login, custom manifest, custom license; one video
  // plus per-language audio segments (one per step, plus finisher); finish.
  const int custom = 3 + (1 + audio + 1) + 1;
  return profile.custom_drm_on_l3_only ? std::max(widevine, custom) : widevine;
}

const char* PlaybackSession::stage_name() const {
  switch (step_) {
    case Step::Login: return "login";
    case Step::Provision: return "provision";
    case Step::Manifest: return "manifest";
    case Step::CollectTracks: return "collect-tracks";
    case Step::License: return "license";
    case Step::Video: return "video";
    case Step::Audio: return "audio";
    case Step::Subtitles: return "subtitles";
    case Step::CustomManifest: return "custom-manifest";
    case Step::CustomLicense: return "custom-license";
    case Step::CustomTracks: return "custom-tracks";
    case Step::Finish: return "finish";
    case Step::Done: return "done";
  }
  return "?";
}

void PlaybackSession::step() {
  switch (step_) {
    case Step::Login: step_login(); return;
    case Step::Provision: step_provision(); return;
    case Step::Manifest: step_manifest(); return;
    case Step::CollectTracks: step_collect_tracks(); return;
    case Step::License: step_license(); return;
    case Step::Video: step_video(); return;
    case Step::Audio: step_audio(); return;
    case Step::Subtitles: step_subtitles(); return;
    case Step::CustomManifest: step_custom_manifest(); return;
    case Step::CustomLicense: step_custom_license(); return;
    case Step::CustomTracks: step_custom_tracks(); return;
    case Step::Finish: step_finish(); return;
    case Step::Done: return;
  }
}

void PlaybackSession::degrade(const std::string& note) {
  outcome_.degraded = true;
  if (!outcome_.degradation.empty()) outcome_.degradation += "; ";
  outcome_.degradation += note;
}

bool PlaybackSession::play_file(const Bytes& file) {
  const auto parsed = media::PackagedTrack::try_from_file(BytesView(file));
  if (!parsed.ok()) return false;
  const auto& track = parsed.value();
  if (track.encrypted) {
    for (std::size_t i = 0; i < track.samples.size(); ++i) {
      if (!codec_->queue_secure_input_buffer(track.key_id, BytesView(track.samples[i]),
                                             track.senc.entries[i])) {
        return false;
      }
    }
  } else {
    for (const Bytes& sample : track.samples) {
      if (!codec_->queue_input_buffer(sample)) return false;
    }
  }
  return true;
}

void PlaybackSession::step_login() {
  if (app_.auth_token_.empty() && !app_.login()) {
    outcome_.failure = "login failed";
    outcome_.net_error = app_.last_net_error_;
    outcome_.net_error_detail = app_.last_net_error_detail_;
    step_ = Step::Finish;
    return;
  }
  // Amazon-style fallback: no Widevine exchange at all on L3-only devices.
  // The embedded-DRM path keeps the monolith's accounting: a fresh outcome
  // and a retry snapshot taken *after* login, so login's attempts are not
  // billed to the custom playback.
  if (app_.profile_.custom_drm_on_l3_only &&
      app_.device_.security_level() != widevine::SecurityLevel::L1) {
    outcome_ = PlaybackOutcome{};
    outcome_.used_custom_drm = true;
    net_before_ = app_.ecosystem_.retry_stats();
    step_ = Step::CustomManifest;
    return;
  }
  step_ = Step::Provision;
}

void PlaybackSession::step_provision() {
  // Provisioning comes first: a CDM without its Device RSA Key cannot do a
  // (modern) license exchange, and revocation-enforcing services deny here.
  if (!app_.ensure_provisioned(outcome_)) {
    step_ = Step::Finish;
    return;
  }
  step_ = Step::Manifest;
}

void PlaybackSession::step_manifest() {
  manifest_ = app_.fetch_manifest(outcome_);
  if (!manifest_) {
    step_ = Step::Finish;
    return;
  }
  outcome_.widevine_used = true;
  step_ = Step::CollectTracks;
}

void PlaybackSession::step_collect_tracks() {
  // Collect the key ids to license: from the MPD, plus from any encrypted
  // track whose MPD metadata was redacted (regional restriction) — the
  // file's tenc box always names its key. Segment-granular: one audio
  // segment fetch per step (kid harvesting from metadata is free and rides
  // along); the cursor resumes the walk on the next step.
  const auto& reps = manifest_->representations;
  while (collect_index_ < reps.size()) {
    const auto& rep = reps[collect_index_++];
    if (rep.default_kid) kid_set_.insert(hex_encode(*rep.default_kid));
    if (rep.type == media::TrackType::Audio && rep.language == request_.audio_language) {
      if (const auto file = app_.download(app_.profile_.cdn_host(), rep.base_url)) {
        const auto track = media::PackagedTrack::try_from_file(BytesView(*file));
        if (!track.ok()) {
          degrade("audio segment " + rep.base_url + " unparseable");
        } else {
          if (track.value().encrypted) kid_set_.insert(hex_encode(track.value().key_id));
          audio_files_[rep.base_url] = *file;
        }
      } else {
        degrade("audio segment " + rep.base_url + " unavailable");
      }
      if (collect_index_ < reps.size()) return;  // one download per step
    }
  }
  step_ = Step::License;
}

void PlaybackSession::step_license() {
  // License exchange (Figure 1: getKeyRequest -> server -> provideKeyResponse).
  drm_ = std::make_unique<android::MediaDrm>(app_.device_, android::kWidevineUuid);
  session_ = drm_->open_session();
  media::PsshBox pssh;
  for (const std::string& kid_hex : kid_set_) pssh.key_ids.push_back(hex_decode(kid_hex));
  const Bytes key_request = drm_->get_key_request(session_, pssh.to_box().serialize());

  net::HttpRequest lic;
  lic.method = "POST";
  lic.path = "/license";
  lic.headers["authorization"] = app_.auth_token_;
  lic.body = key_request;
  const auto lic_result =
      app_.exchange(app_.profile_.backend_host(), lic, validate_license_payload);
  if (!lic_result.ok()) {
    outcome_.license_error = "license transport failure (" + lic_result.error_detail + ")";
    outcome_.net_error = lic_result.error;
    outcome_.net_error_detail = lic_result.error_detail;
    drm_->close_session(session_);
    step_ = Step::Finish;
    return;
  }
  const auto response = widevine::LicenseResponse::deserialize(lic_result.response->body);
  if (!response.granted) {
    outcome_.license_error = response.deny_reason;
    drm_->close_session(session_);
    step_ = Step::Finish;
    return;
  }
  if (drm_->provide_key_response(session_, lic_result.response->body) !=
      widevine::OemCryptoResult::Success) {
    outcome_.license_error = "license rejected by CDM";
    drm_->close_session(session_);
    step_ = Step::Finish;
    return;
  }
  outcome_.license_ok = true;

  // Which keys did we actually get? Rank the playable video qualities.
  std::set<std::string> loaded;
  for (const auto& kid : drm_->loaded_key_ids(session_)) loaded.insert(hex_encode(kid));

  for (const auto* rep : manifest_->of_type(media::TrackType::Video)) {
    if (request_.video_height != 0 && rep->resolution.height != request_.video_height) continue;
    if (rep->default_kid && !loaded.contains(hex_encode(*rep->default_kid))) continue;
    video_candidates_.push_back(rep);
  }
  std::sort(video_candidates_.begin(), video_candidates_.end(),
            [](const media::MpdRepresentation* a, const media::MpdRepresentation* b) {
              return a->resolution.height > b->resolution.height;
            });
  if (video_candidates_.empty()) {
    outcome_.license_error = "no playable video quality licensed";
    drm_->close_session(session_);
    step_ = Step::Finish;
    return;
  }

  crypto_ = std::make_unique<android::MediaCrypto>(*drm_, session_);
  surface_ = std::make_unique<android::Surface>();
  codec_ = std::make_unique<android::MediaCodec>(crypto_.get(), *surface_);
  step_ = Step::Video;
}

void PlaybackSession::step_video() {
  // Video: walk the ladder from the best licensed quality down, degrading
  // to the next rung when a segment cannot be fetched or decoded.
  // Segment-granular: one rung's fetch+decode attempt per step.
  if (video_index_ < video_candidates_.size()) {
    const auto* rep = video_candidates_[video_index_++];
    const auto file = app_.download(app_.profile_.cdn_host(), rep->base_url);
    if (file && play_file(*file)) {
      step_ = Step::Audio;
      return;
    }
    degrade("video " + rep->resolution.label() + " segment failed");
    if (video_index_ < video_candidates_.size()) return;  // next rung next step
  }
  // Ladder exhausted without a rendered rung.
  outcome_.failure = "video playback failed";
  // Blame the most recent transport error if there was one; otherwise every
  // candidate arrived but was undecodable (corruption past the transport).
  outcome_.net_error = app_.last_net_error_ != ErrorCode::None ? app_.last_net_error_
                                                               : ErrorCode::MalformedPayload;
  outcome_.net_error_detail = app_.last_net_error_ != ErrorCode::None
                                  ? app_.last_net_error_detail_
                                  : "every candidate video segment undecodable";
  drm_->close_session(session_);
  step_ = Step::Finish;
}

void PlaybackSession::step_audio() {
  // Audio (already downloaded at track collection); a failed track degrades
  // instead of aborting the session.
  for (const auto& [path, file] : audio_files_) {
    if (!play_file(file)) degrade("audio track " + path + " skipped");
  }
  step_ = Step::Subtitles;
}

void PlaybackSession::step_subtitles() {
  // Subtitles: MPD representations or the opaque token channel.
  // Segment-granular: one subtitle fetch per step via the shared cursor.
  if (app_.profile_.subtitles_via_opaque_channel) {
    while (subtitle_index_ < app_.subtitle_tokens_.size()) {
      const std::string& token = app_.subtitle_tokens_[subtitle_index_++];
      if (const auto file = app_.download(app_.profile_.backend_host(), "/st/" + token)) {
        play_file(*file);
      }
      if (subtitle_index_ < app_.subtitle_tokens_.size()) return;
    }
  } else {
    const auto reps = manifest_->of_type(media::TrackType::Subtitle);
    while (subtitle_index_ < reps.size()) {
      const auto* rep = reps[subtitle_index_++];
      if (rep->language != request_.subtitle_language) continue;
      if (const auto file = app_.download(app_.profile_.cdn_host(), rep->base_url)) {
        play_file(*file);
      }
      if (subtitle_index_ < reps.size()) return;
    }
  }

  drm_->close_session(session_);
  outcome_.played = surface_->frames_rendered() > 0;
  outcome_.frames_rendered = surface_->frames_rendered();
  outcome_.video_resolution = surface_->video_resolution();
  WL_LOG(Info) << app_.profile_.name << ": played " << outcome_.frames_rendered << " frames at "
               << outcome_.video_resolution.label() << " on "
               << widevine::to_string(app_.device_.security_level())
               << (outcome_.degraded ? " (degraded: " + outcome_.degradation + ")" : "");
  step_ = Step::Finish;
}

void PlaybackSession::step_custom_manifest() {
  manifest_ = app_.fetch_manifest(outcome_);
  if (!manifest_) {
    step_ = Step::Finish;
    return;
  }
  step_ = Step::CustomLicense;
}

void PlaybackSession::step_custom_license() {
  // Fetch the custom license: sub-HD keys wrapped under the app secret.
  net::HttpRequest lic;
  lic.method = "POST";
  lic.path = "/custom_license";
  lic.headers["authorization"] = app_.auth_token_;
  const Bytes nonce = app_.rng_.next_bytes(16);
  lic.body = nonce;
  const std::string app_name = app_.profile_.name;
  const auto lic_result = app_.exchange(
      app_.profile_.backend_host(), lic, [&app_name, &nonce](const net::HttpResponse& r) {
        try {
          CustomDrm::unwrap_key_map(app_name, nonce, r.body);
          return ErrorCode::None;
        } catch (const Error&) {  // ParseError or CryptoError on garbage
          return ErrorCode::MalformedPayload;
        }
      });
  if (!lic_result.ok()) {
    outcome_.failure = "custom license fetch failed (" + lic_result.error_detail + ")";
    outcome_.net_error = lic_result.error;
    outcome_.net_error_detail = lic_result.error_detail;
    step_ = Step::Finish;
    return;
  }
  custom_keys_ =
      CustomDrm::unwrap_key_map(app_.profile_.name, nonce, lic_result.response->body);
  outcome_.license_ok = true;
  step_ = Step::CustomTracks;
}

void PlaybackSession::step_custom_tracks() {
  // Pick the best video the custom license covers, plus audio. The pick
  // happens once, on first entry (surface_ doubles as the entry flag);
  // segment-granular resumption walks one representation fetch per step.
  if (!surface_) {
    surface_ = std::make_unique<android::Surface>();
    for (const auto* rep : manifest_->of_type(media::TrackType::Video)) {
      if (request_.video_height != 0 && rep->resolution.height != request_.video_height) continue;
      if (rep->default_kid && !custom_keys_.contains(hex_encode(*rep->default_kid))) continue;
      custom_chosen_height_ = std::max(custom_chosen_height_, rep->resolution.height);
    }
  }
  Bytes clear;
  const auto& all_reps = manifest_->representations;
  while (custom_index_ < all_reps.size()) {
    const auto& rep = all_reps[custom_index_++];
    const bool is_chosen_video =
        rep.type == media::TrackType::Video && rep.resolution.height == custom_chosen_height_;
    const bool is_audio =
        rep.type == media::TrackType::Audio && rep.language == request_.audio_language;
    if (!is_chosen_video && !is_audio) continue;
    const auto file = app_.download(app_.profile_.cdn_host(), rep.base_url);
    if (!file) {
      outcome_.failure = "download failed: " + rep.base_url;
      outcome_.net_error = app_.last_net_error_;
      outcome_.net_error_detail = app_.last_net_error_detail_;
      step_ = Step::Finish;
      return;
    }
    auto parsed_track = media::PackagedTrack::try_from_file(BytesView(*file));
    if (!parsed_track.ok()) {
      outcome_.failure = "unparseable track " + rep.base_url + " (" +
                         parsed_track.error_detail() + ")";
      outcome_.net_error = ErrorCode::MalformedPayload;
      outcome_.net_error_detail = parsed_track.error_detail();
      step_ = Step::Finish;
      return;
    }
    const auto& track = parsed_track.value();
    // Reuse one stream buffer across tracks; the append forms decrypt in
    // place inside it.
    clear.clear();
    if (track.encrypted) {
      const auto key = custom_keys_.find(hex_encode(track.key_id));
      if (key == custom_keys_.end()) {
        outcome_.failure = "custom key missing for " + rep.base_url;
        step_ = Step::Finish;
        return;
      }
      CustomDrm::decrypt_track_append(track, key->second, clear);
    } else {
      media::raw_sample_stream_append(track, clear);
    }
    std::size_t pos = 0;
    while (pos < clear.size()) {
      const auto parsed = media::Frame::parse(BytesView(clear).subspan(pos));
      if (!parsed) {
        outcome_.failure = "undecodable custom-DRM stream";
        step_ = Step::Finish;
        return;
      }
      surface_->render(parsed->frame);
      pos += parsed->consumed;
    }
    if (custom_index_ < all_reps.size()) return;  // one download per step
  }

  outcome_.played = surface_->frames_rendered() > 0;
  outcome_.frames_rendered = surface_->frames_rendered();
  outcome_.video_resolution = surface_->video_resolution();
  step_ = Step::Finish;
}

void PlaybackSession::step_finish() {
  const net::RetryStats& now = app_.ecosystem_.retry_stats();
  outcome_.net_attempts = now.attempts - net_before_.attempts;
  outcome_.net_retries = now.retries - net_before_.retries;
  outcome_.net_giveups = now.giveups - net_before_.giveups;
  outcome_.net_reopens = now.reopens - net_before_.reopens;
  step_ = Step::Done;
}

}  // namespace wideleak::ott
