// CDN service: serves the packaged track files of an app's titles.
// Stateless HTTP-over-TLS file hosting, as the study observes it.
#pragma once

#include <map>
#include <string>

#include "media/content.hpp"
#include "net/http.hpp"

namespace wideleak::ott {

class CdnService {
 public:
  void host_title(const media::PackagedTitle& title);

  /// The HttpHandler to mount on the CDN's TLS server.
  net::HttpHandler handler() const;

  std::size_t file_count() const { return files_.size(); }

 private:
  std::map<std::string, Bytes> files_;
};

}  // namespace wideleak::ott
