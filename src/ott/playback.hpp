// The OTT app's playback client: the full Figure-1 flow — manifest fetch
// over pinned TLS, provisioning, MediaDrm license exchange, CDN downloads,
// and secure decode through MediaCrypto/MediaCodec.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "android/media_codec.hpp"
#include "android/media_drm.hpp"
#include "ott/ecosystem.hpp"

namespace wideleak::ott {

struct PlaybackRequest {
  /// 0 = best quality the license allows; else an exact ladder height.
  std::uint16_t video_height = 0;
  std::string audio_language = "en";
  std::string subtitle_language = "en";
};

struct PlaybackOutcome {
  bool widevine_used = false;    // app ran the MediaDrm/Widevine exchange
  bool used_custom_drm = false;  // app fell back to its embedded DRM

  bool provisioning_attempted = false;
  bool provisioning_ok = false;
  std::string provisioning_error;

  bool license_ok = false;
  std::string license_error;

  bool played = false;
  std::string failure;
  media::Resolution video_resolution;  // what actually rendered
  std::uint32_t frames_rendered = 0;

  /// Graceful degradation: playback succeeded but below the requested
  /// experience (lower video quality, missing audio track...).
  bool degraded = false;
  std::string degradation;  // human-readable summary of what was lost

  /// Network effort spent on this playback (retry-layer counters).
  std::uint64_t net_attempts = 0;
  std::uint64_t net_retries = 0;
  std::uint64_t net_giveups = 0;

  /// Terminal transport/validation error that aborted playback — None when
  /// playback succeeded or failed for an application-level reason (license
  /// denial, device revocation). Campaign cells use this to tell
  /// fault-caused Partial outcomes from organic ones.
  ErrorCode net_error = ErrorCode::None;
  std::string net_error_detail;
};

class OttApp {
 public:
  OttApp(OttAppProfile profile, StreamingEcosystem& ecosystem, android::Device& device);

  /// Authenticate with the backend (any credentials work in the sim).
  bool login();

  /// Play the app's demo title end to end.
  PlaybackOutcome play_title(const PlaybackRequest& request = {});

  /// The app's TLS client — the object a Frida-style pin bypass hooks.
  net::TlsClient& tls() { return tls_; }

  const OttAppProfile& profile() const { return profile_; }
  android::Device& device() { return device_; }

  /// Retry budget/backoff used for every backend and CDN exchange.
  net::RetryPolicy& retry_policy() { return retry_policy_; }

 private:
  /// One logical request: transport + retry/backoff + optional payload
  /// validation, reporting into the ecosystem's shared retry sink.
  net::TlsExchangeResult exchange(const std::string& host, const net::HttpRequest& req,
                                  const net::ResponseValidator& validate = {});

  std::optional<media::Mpd> fetch_manifest(PlaybackOutcome& outcome);
  std::optional<Bytes> download(const std::string& host, const std::string& path);
  bool ensure_provisioned(PlaybackOutcome& outcome);
  PlaybackOutcome play_with_custom_drm(const PlaybackRequest& request);

  OttAppProfile profile_;
  StreamingEcosystem& ecosystem_;
  android::Device& device_;
  net::TlsClient tls_;
  std::string auth_token_;
  std::vector<std::string> subtitle_tokens_;  // opaque-channel apps
  Rng rng_;
  net::RetryPolicy retry_policy_;
  Rng retry_rng_;
  ErrorCode last_net_error_ = ErrorCode::None;  // from the most recent exchange
  std::string last_net_error_detail_;
};

}  // namespace wideleak::ott
