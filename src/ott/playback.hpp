// The OTT app's playback client: the full Figure-1 flow — manifest fetch
// over pinned TLS, provisioning, MediaDrm license exchange, CDN downloads,
// and secure decode through MediaCrypto/MediaCodec.
//
// The flow is factored as a resumable state machine (PlaybackSession) split
// at its natural await points — login, provisioning, manifest, track
// prefetch, license exchange, video/audio/subtitle decode. play_title()
// just steps a session to completion; the campaign scheduler instead steps
// it one stage per task so the simulated-network waits inside any stage can
// overlap other cells' CPU work. The split is behaviour-preserving: the
// sequence of exchanges, rng draws and clock advances is identical to the
// historical monolithic play_title.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "android/media_codec.hpp"
#include "android/media_crypto.hpp"
#include "android/media_drm.hpp"
#include "ott/ecosystem.hpp"

namespace wideleak::ott {

struct PlaybackRequest {
  /// 0 = best quality the license allows; else an exact ladder height.
  std::uint16_t video_height = 0;
  std::string audio_language = "en";
  std::string subtitle_language = "en";
};

struct PlaybackOutcome {
  bool widevine_used = false;    // app ran the MediaDrm/Widevine exchange
  bool used_custom_drm = false;  // app fell back to its embedded DRM

  bool provisioning_attempted = false;
  bool provisioning_ok = false;
  std::string provisioning_error;

  bool license_ok = false;
  std::string license_error;

  bool played = false;
  std::string failure;
  media::Resolution video_resolution;  // what actually rendered
  std::uint32_t frames_rendered = 0;

  /// Graceful degradation: playback succeeded but below the requested
  /// experience (lower video quality, missing audio track...).
  bool degraded = false;
  std::string degradation;  // human-readable summary of what was lost

  /// Network effort spent on this playback (retry-layer counters).
  std::uint64_t net_attempts = 0;
  std::uint64_t net_retries = 0;
  std::uint64_t net_giveups = 0;
  std::uint64_t net_reopens = 0;  // retries that re-established service state

  /// Terminal transport/validation error that aborted playback — None when
  /// playback succeeded or failed for an application-level reason (license
  /// denial, device revocation). Campaign cells use this to tell
  /// fault-caused Partial outcomes from organic ones.
  ErrorCode net_error = ErrorCode::None;
  std::string net_error_detail;
};

class PlaybackSession;

class OttApp {
 public:
  OttApp(OttAppProfile profile, StreamingEcosystem& ecosystem, android::Device& device);

  /// Authenticate with the backend (any credentials work in the sim).
  bool login();

  /// Play the app's demo title end to end (steps a PlaybackSession).
  PlaybackOutcome play_title(const PlaybackRequest& request = {});

  /// The app's TLS client — the object a Frida-style pin bypass hooks.
  net::TlsClient& tls() { return tls_; }

  const OttAppProfile& profile() const { return profile_; }
  android::Device& device() { return device_; }

  /// Retry budget/backoff used for every backend and CDN exchange.
  net::RetryPolicy& retry_policy() { return retry_policy_; }

 private:
  friend class PlaybackSession;

  /// One logical request: transport + retry/backoff + optional payload
  /// validation, reporting into the ecosystem's shared retry sink.
  net::TlsExchangeResult exchange(const std::string& host, const net::HttpRequest& req,
                                  const net::ResponseValidator& validate = {});

  std::optional<media::Mpd> fetch_manifest(PlaybackOutcome& outcome);
  std::optional<Bytes> download(const std::string& host, const std::string& path);
  bool ensure_provisioned(PlaybackOutcome& outcome);

  OttAppProfile profile_;
  StreamingEcosystem& ecosystem_;
  android::Device& device_;
  net::TlsClient tls_;
  std::string auth_token_;
  std::vector<std::string> subtitle_tokens_;  // opaque-channel apps
  Rng rng_;
  net::RetryPolicy retry_policy_;
  Rng retry_rng_;
  ErrorCode last_net_error_ = ErrorCode::None;  // from the most recent exchange
  std::string last_net_error_detail_;
};

/// One playback, resumable *segment-granularly*: each step() performs at
/// most one network download, so a scheduler that maps steps to tasks can
/// drain one segment's simulated fetch latency under another cell's CENC
/// work. Stages that fetch several segments (track collection, the video
/// ladder walk, subtitles, custom-DRM tracks) resume mid-loop via
/// per-stage cursors; after finitely many steps done() is true and
/// take_outcome() yields the same PlaybackOutcome the monolithic flow
/// produced — the sequence of exchanges, rng draws and clock advances is
/// identical. Sessions borrow the app and must not outlive it; one
/// session at a time per app.
class PlaybackSession {
 public:
  PlaybackSession(OttApp& app, PlaybackRequest request);

  /// Planning bound on step() calls for this profile (one task per step in
  /// the pipelined campaign). Sized from the profile's language lists and
  /// the standard quality ladder; an *underestimate* is harmless to
  /// correctness — schedulers must follow their planned steps with a
  /// step-to-done guarantee loop — but a good estimate keeps nearly all
  /// segment fetches on their own task.
  static int max_steps_for(const OttAppProfile& profile);

  bool done() const { return step_ == Step::Done; }
  /// Advance one stage; no-op once done.
  void step();
  /// Label of the *next* stage (for scheduler traces), "done" when done.
  const char* stage_name() const;

  PlaybackOutcome take_outcome() { return std::move(outcome_); }

 private:
  enum class Step {
    Login,
    Provision,
    Manifest,
    CollectTracks,
    License,
    Video,
    Audio,
    Subtitles,
    CustomManifest,
    CustomLicense,
    CustomTracks,
    Finish,
    Done,
  };

  void step_login();
  void step_provision();
  void step_manifest();
  void step_collect_tracks();
  void step_license();
  void step_video();
  void step_audio();
  void step_subtitles();
  void step_custom_manifest();
  void step_custom_license();
  void step_custom_tracks();
  void step_finish();

  void degrade(const std::string& note);
  bool play_file(const Bytes& file);

  OttApp& app_;
  PlaybackRequest request_;
  PlaybackOutcome outcome_;
  net::RetryStats net_before_;
  Step step_ = Step::Login;

  // Cross-stage playback state (the monolith's locals).
  std::optional<media::Mpd> manifest_;
  std::set<std::string> kid_set_;
  std::map<std::string, Bytes> audio_files_;  // path -> bytes
  std::unique_ptr<android::MediaDrm> drm_;
  android::MediaDrm::SessionId session_{};
  std::vector<const media::MpdRepresentation*> video_candidates_;
  std::unique_ptr<android::MediaCrypto> crypto_;
  std::unique_ptr<android::Surface> surface_;
  std::unique_ptr<android::MediaCodec> codec_;
  std::map<std::string, Bytes> custom_keys_;

  // Segment cursors: multi-download stages resume mid-loop so each step()
  // performs at most one network fetch.
  std::size_t collect_index_ = 0;   // next representation in CollectTracks
  std::size_t video_index_ = 0;     // next ladder candidate in Video
  std::size_t subtitle_index_ = 0;  // next token/representation in Subtitles
  std::size_t custom_index_ = 0;    // next representation in CustomTracks
  std::uint16_t custom_chosen_height_ = 0;  // picked on CustomTracks entry
};

}  // namespace wideleak::ott
