#include "ott/app.hpp"

#include <cctype>

namespace wideleak::ott {

namespace {

std::string slug(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  return out;
}

}  // namespace

std::string OttAppProfile::backend_host() const { return "api." + slug(name) + ".example"; }

std::string OttAppProfile::cdn_host() const { return "cdn." + slug(name) + ".example"; }

std::uint64_t OttAppProfile::title_content_id() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the slug
  for (char c : slug(name)) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string OttAppProfile::title_name() const { return name + " Original Feature"; }

widevine::RevocationPolicy OttAppProfile::license_policy() const {
  return enforce_revocation ? widevine::recommended_revocation_policy()
                            : widevine::permissive_revocation_policy();
}

}  // namespace wideleak::ott
