// Amazon-style embedded DRM: an app-private key ladder that bypasses
// Widevine entirely. The "whitebox" secret lives in the app binary; keys
// never transit the Widevine HAL, so the paper's CDM-side instrumentation
// sees nothing — and the WideLeak ripper cannot extract them (the one app
// the PoC does not defeat).
#pragma once

#include <map>
#include <string>

#include "media/cenc.hpp"
#include "media/track.hpp"
#include "support/bytes.hpp"
#include "support/secret.hpp"

namespace wideleak::ott {

class CustomDrm {
 public:
  /// The app-embedded secret (in a real app: a whitebox-obfuscated key).
  static SecretBytes app_secret(const std::string& app_name);

  /// Key wrapping between backend and app: AES-CBC under a key derived
  /// from the app secret and a nonce.
  static Bytes wrap_key_map(const std::string& app_name, BytesView nonce,
                            const std::map<std::string, Bytes>& kid_to_key);
  /// Returns clear content keys to the caller (the app-side endpoint of
  /// the custom channel).  wl-lint: reveal-ok
  static std::map<std::string, Bytes> unwrap_key_map(const std::string& app_name,
                                                     BytesView nonce, BytesView wrapped);

  /// Decrypt a CENC track with a custom-delivered key (same sample format;
  /// only the key transport differs from Widevine).
  static Bytes decrypt_track(const media::PackagedTrack& track, BytesView key);

  /// Append form: decrypted stream lands at the end of `out` with no
  /// intermediate buffer.
  static void decrypt_track_append(const media::PackagedTrack& track, BytesView key, Bytes& out);
};

}  // namespace wideleak::ott
