#include "ott/ecosystem.hpp"

#include "ott/catalog.hpp"

#include "support/errors.hpp"

namespace wideleak::ott {

StreamingEcosystem::StreamingEcosystem(const EcosystemConfig& config)
    : config_(config), rng_(config.seed), breaker_(config.breaker, &clock_) {
  root_ca_ = std::make_unique<net::CertificateAuthority>("wideleak-root-ca", rng_,
                                                         config_.tls_key_bits);
  roots_ = std::make_shared<widevine::DeviceRootDatabase>();
  license_server_ = std::make_shared<widevine::LicenseServer>(roots_, rng_.next_u64());
  provisioning_server_ = std::make_shared<widevine::ProvisioningServer>(
      roots_, rng_.next_u64(), config_.device_rsa_bits);
  // The shared front door over both servers. Its seed is label-derived
  // (consumes nothing from the main stream) and its default config is
  // permissive — no capacity, quota or rate limits — so the serving
  // behaviour and every rng draw sequence are unchanged by the wiring.
  // The chaos plan rides the same config; the default empty plan (and the
  // default-disabled breaker above) keep the wiring behaviour-neutral.
  widevine::DrmServiceConfig service_config;
  service_config.seed = derive_seed("drm-service");
  service_config.chaos = config_.service_chaos;
  drm_service_ = std::make_shared<widevine::DrmService>(license_server_, provisioning_server_,
                                                        service_config, &clock_);
}

void StreamingEcosystem::install_app(const OttAppProfile& profile) {
  if (backends_.contains(profile.name)) return;

  // Package the app's demo title under its protection policy.
  media::PackagedTitle title =
      media::package_title(profile.title_content_id(), profile.title_name(),
                           profile.audio_languages, profile.subtitle_languages,
                           profile.content_policy);
  license_server_->add_title(title);

  const widevine::AppId app_id = drm_service_->register_app(profile.name);
  auto backend =
      std::make_shared<OttBackend>(profile, title, drm_service_, app_id, rng_.next_u64());

  // Mount the backend on its TLS host.
  Rng id_rng = rng_.fork();
  auto backend_identity =
      net::make_server_identity(profile.backend_host(), *root_ca_, id_rng, config_.tls_key_bits);
  mount_host(profile.backend_host(), std::move(backend_identity), backend->handler(),
             rng_.next_u64());

  // Mount the CDN.
  CdnService cdn;
  cdn.host_title(title);
  auto cdn_identity =
      net::make_server_identity(profile.cdn_host(), *root_ca_, id_rng, config_.tls_key_bits);
  mount_host(profile.cdn_host(), std::move(cdn_identity), cdn.handler(), rng_.next_u64());

  backends_[profile.name] = std::move(backend);
  titles_[profile.name] = std::move(title);
}

void StreamingEcosystem::mount_host(const std::string& host, net::ServerIdentity identity,
                                    net::HttpHandler handler, std::uint64_t server_seed) {
  if (!config_.fault_plan.applies_to(host)) {
    network_.add_server(host, std::make_shared<net::TlsServer>(std::move(identity),
                                                               std::move(handler), server_seed));
    return;
  }
  // The injector keeps a copy of the identity so it can terminate TLS and
  // classify request paths; its fault stream is label-derived from the
  // ecosystem seed, so it consumes nothing from the main rng.
  net::ServerIdentity injector_identity = identity;
  net::Certificate certificate = identity.certificate;
  auto server =
      std::make_shared<net::TlsServer>(std::move(identity), std::move(handler), server_seed);
  auto injector = std::make_shared<net::FaultyEndpoint>(
      std::move(server), std::move(injector_identity), config_.fault_plan, host,
      derive_seed("fault|" + host), &clock_);
  injectors_.push_back(injector);
  network_.add_endpoint(host, std::move(injector), std::move(certificate));
}

net::FaultInjectorStats StreamingEcosystem::fault_stats() const {
  net::FaultInjectorStats total;
  for (const auto& injector : injectors_) {
    const net::FaultInjectorStats& s = injector->stats();
    total.exchanges += s.exchanges;
    total.drops += s.drops;
    total.truncations += s.truncations;
    total.http_5xx += s.http_5xx;
    total.corruptions += s.corruptions;
    total.cert_swaps += s.cert_swaps;
    total.latency_injections += s.latency_injections;
  }
  return total;
}

void StreamingEcosystem::install_catalog() {
  for (const OttAppProfile& profile : study_catalog()) install_app(profile);
}

OttBackend& StreamingEcosystem::backend_for(const std::string& app_name) {
  const auto it = backends_.find(app_name);
  if (it == backends_.end()) throw StateError("ecosystem: app not installed: " + app_name);
  return *it->second;
}

const media::PackagedTitle& StreamingEcosystem::title_for(const std::string& app_name) {
  const auto it = titles_.find(app_name);
  if (it == titles_.end()) throw StateError("ecosystem: app not installed: " + app_name);
  return it->second;
}

std::unique_ptr<android::Device> StreamingEcosystem::make_device(
    const android::DeviceSpec& spec) {
  const widevine::Keybox keybox = widevine::make_factory_keybox(spec.serial, config_.seed);
  roots_->register_device(keybox, spec.has_tee ? widevine::SecurityLevel::L1
                                               : widevine::SecurityLevel::L3);
  auto device = std::make_unique<android::Device>(spec, keybox);
  device->system_trust().add(*root_ca_);
  return device;
}

}  // namespace wideleak::ott
