#include "ott/ecosystem.hpp"

#include "ott/catalog.hpp"

#include "support/errors.hpp"

namespace wideleak::ott {

StreamingEcosystem::StreamingEcosystem(const EcosystemConfig& config)
    : config_(config), rng_(config.seed) {
  root_ca_ = std::make_unique<net::CertificateAuthority>("wideleak-root-ca", rng_,
                                                         config_.tls_key_bits);
  roots_ = std::make_shared<widevine::DeviceRootDatabase>();
  license_server_ = std::make_shared<widevine::LicenseServer>(roots_, rng_.next_u64());
  provisioning_server_ = std::make_shared<widevine::ProvisioningServer>(
      roots_, rng_.next_u64(), config_.device_rsa_bits);
}

void StreamingEcosystem::install_app(const OttAppProfile& profile) {
  if (backends_.contains(profile.name)) return;

  // Package the app's demo title under its protection policy.
  media::PackagedTitle title =
      media::package_title(profile.title_content_id(), profile.title_name(),
                           profile.audio_languages, profile.subtitle_languages,
                           profile.content_policy);
  license_server_->add_title(title);

  auto backend = std::make_shared<OttBackend>(profile, title, license_server_,
                                              provisioning_server_, rng_.next_u64());

  // Mount the backend on its TLS host.
  Rng id_rng = rng_.fork();
  auto backend_identity =
      net::make_server_identity(profile.backend_host(), *root_ca_, id_rng, config_.tls_key_bits);
  network_.add_server(profile.backend_host(),
                      std::make_shared<net::TlsServer>(std::move(backend_identity),
                                                       backend->handler(), rng_.next_u64()));

  // Mount the CDN.
  CdnService cdn;
  cdn.host_title(title);
  auto cdn_identity =
      net::make_server_identity(profile.cdn_host(), *root_ca_, id_rng, config_.tls_key_bits);
  network_.add_server(profile.cdn_host(),
                      std::make_shared<net::TlsServer>(std::move(cdn_identity), cdn.handler(),
                                                       rng_.next_u64()));

  backends_[profile.name] = std::move(backend);
  titles_[profile.name] = std::move(title);
}

void StreamingEcosystem::install_catalog() {
  for (const OttAppProfile& profile : study_catalog()) install_app(profile);
}

OttBackend& StreamingEcosystem::backend_for(const std::string& app_name) {
  const auto it = backends_.find(app_name);
  if (it == backends_.end()) throw StateError("ecosystem: app not installed: " + app_name);
  return *it->second;
}

const media::PackagedTitle& StreamingEcosystem::title_for(const std::string& app_name) {
  const auto it = titles_.find(app_name);
  if (it == titles_.end()) throw StateError("ecosystem: app not installed: " + app_name);
  return it->second;
}

std::unique_ptr<android::Device> StreamingEcosystem::make_device(
    const android::DeviceSpec& spec) {
  const widevine::Keybox keybox = widevine::make_factory_keybox(spec.serial, config_.seed);
  roots_->register_device(keybox, spec.has_tee ? widevine::SecurityLevel::L1
                                               : widevine::SecurityLevel::L3);
  auto device = std::make_unique<android::Device>(spec, keybox);
  device->system_trust().add(*root_ca_);
  return device;
}

}  // namespace wideleak::ott
