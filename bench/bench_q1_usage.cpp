// Experiment Q1 (§IV-C): how often do OTT apps rely on Widevine, and at
// which security level?
//
// Paper: all ten apps depend on Widevine; L1 is popular (every TEE device
// uses it); Amazon alone embeds a custom DRM when only L3 is available.
#include <iostream>

#include "core/monitor.hpp"
#include "ott/catalog.hpp"
#include "ott/ecosystem.hpp"
#include "ott/playback.hpp"

namespace {

std::string pad(const std::string& s, std::size_t n) {
  std::string out = s;
  out.resize(std::max(n, out.size()), ' ');
  return out;
}

}  // namespace

int main() {
  using namespace wideleak;

  ott::StreamingEcosystem ecosystem;
  ecosystem.install_catalog();
  auto l1_device = ecosystem.make_device(android::modern_l1_spec(0x1001));
  auto l3_device = ecosystem.make_device(android::modern_l3_only_spec(0x1003));

  std::cout << "Q1: WIDEVINE USAGE BY OTT APPS\n";
  std::cout << pad("OTT", 20) << pad("Installs", 10) << pad("TEE device", 22)
            << "TEE-less device\n";
  std::cout << std::string(75, '-') << "\n";

  std::size_t widevine_count = 0;
  std::size_t l1_count = 0;
  for (const auto& profile : ott::study_catalog()) {
    std::string l1_cell;
    {
      core::DrmApiMonitor monitor(*l1_device);
      ott::OttApp app(profile, ecosystem, *l1_device);
      const auto outcome = app.play_title();
      const auto usage = monitor.usage_report();
      if (usage.widevine_used) ++widevine_count;
      if (usage.observed_level == widevine::SecurityLevel::L1) ++l1_count;
      l1_cell = usage.widevine_used
                    ? "Widevine " + widevine::to_string(*usage.observed_level) + " (" +
                          std::to_string(usage.oecc_calls) + " calls)"
                    : (outcome.played ? "custom DRM" : "no playback");
    }
    std::string l3_cell;
    {
      core::DrmApiMonitor monitor(*l3_device);
      ott::OttApp app(profile, ecosystem, *l3_device);
      const auto outcome = app.play_title();
      const auto usage = monitor.usage_report();
      l3_cell = usage.widevine_used
                    ? "Widevine " + widevine::to_string(*usage.observed_level)
                    : (outcome.used_custom_drm && outcome.played ? "custom DRM (embedded)"
                                                                 : "no playback");
    }
    std::cout << pad(profile.name, 20) << pad(std::to_string(profile.installs_millions) + "M+", 10)
              << pad(l1_cell, 22) << l3_cell << "\n";
  }
  std::cout << std::string(75, '-') << "\n";
  std::cout << widevine_count << "/10 apps use Widevine on the TEE device; " << l1_count
            << "/10 run at L1 (paper: 10 and 10, Amazon falling back to its own DRM on L3-only"
               " hardware)\n";
  return 0;
}
