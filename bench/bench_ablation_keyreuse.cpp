// Experiment A2 (ablation of Q3's rationale): Widevine's multi-key
// recommendation exists "to minimize the impact of a content key recovery".
// Quantify that: under each key-usage policy, how many assets does the
// compromise of ONE content key unlock?
#include <iostream>

#include "media/cenc.hpp"
#include "media/content.hpp"

namespace {

std::string pad(const std::string& s, std::size_t n) {
  std::string out = s;
  out.resize(std::max(n, out.size()), ' ');
  return out;
}

}  // namespace

int main() {
  using namespace wideleak;

  struct Case {
    const char* label;
    media::ContentPolicy policy;
  };
  const std::vector<Case> cases = {
      {"Minimum (audio shares video key)",
       {.encrypt_video = true,
        .encrypt_audio = true,
        .encrypt_subtitles = false,
        .key_usage = media::KeyUsagePolicy::Minimum}},
      {"Minimum (audio in clear)",
       {.encrypt_video = true,
        .encrypt_audio = false,
        .encrypt_subtitles = false,
        .key_usage = media::KeyUsagePolicy::Minimum}},
      {"Recommended (distinct keys)",
       {.encrypt_video = true,
        .encrypt_audio = true,
        .encrypt_subtitles = false,
        .key_usage = media::KeyUsagePolicy::Recommended}},
  };

  std::cout << "A2: BLAST RADIUS OF A SINGLE CONTENT-KEY COMPROMISE\n";
  std::cout << "(per policy: assets decryptable with one key / assets needing no key)\n\n";
  std::cout << pad("policy", 36) << pad("keys", 6) << pad("max assets/key", 16)
            << pad("clear assets", 14) << "worst-case exposure\n";
  std::cout << std::string(95, '-') << "\n";

  for (const Case& c : cases) {
    const auto title = media::package_title(4242, "Blast Radius Movie", {"en", "fr", "de"},
                                            {"en"}, c.policy);
    // Count how many served files each single key decrypts.
    std::size_t max_assets_per_key = 0;
    for (const auto& key : title.keys) {
      std::size_t unlocked = 0;
      for (const auto& [path, file] : title.files) {
        const auto track = media::PackagedTrack::from_file(BytesView(file));
        if (track.encrypted && track.key_id == key.kid) ++unlocked;
      }
      max_assets_per_key = std::max(max_assets_per_key, unlocked);
    }
    std::size_t clear_assets = 0;
    for (const auto& [path, file] : title.files) {
      if (!media::PackagedTrack::from_file(BytesView(file)).encrypted) ++clear_assets;
    }
    const std::size_t total = title.files.size();
    const std::size_t exposure = max_assets_per_key + clear_assets;
    std::cout << pad(c.label, 36) << pad(std::to_string(title.keys.size()), 6)
              << pad(std::to_string(max_assets_per_key), 16)
              << pad(std::to_string(clear_assets), 14) << exposure << "/" << total
              << " assets from one compromise\n";
  }
  std::cout << std::string(95, '-') << "\n";
  std::cout << "[shape] the Recommended policy caps any single compromise at one asset;\n"
               "        Minimum policies expose audio+SD-video together (or audio for free).\n";
  return 0;
}
