// Experiment Q2 (§IV-C): do OTT apps encrypt their media assets?
//
// Paper: SSL repinning was bypassed on ALL apps; video always encrypted;
// subtitles always clear (Hulu/Starz URIs not found); audio clear for
// Netflix, myCANAL and Salto — playable anywhere without an account.
#include <iostream>

#include "core/asset_auditor.hpp"
#include "core/key_usage_auditor.hpp"
#include "core/monitor.hpp"
#include "core/network_monitor.hpp"
#include "ott/catalog.hpp"
#include "ott/ecosystem.hpp"
#include "ott/playback.hpp"

namespace {

std::string pad(const std::string& s, std::size_t n) {
  std::string out = s;
  out.resize(std::max(n, out.size()), ' ');
  return out;
}

}  // namespace

int main() {
  using namespace wideleak;

  ott::StreamingEcosystem ecosystem;
  ecosystem.install_catalog();
  auto device = ecosystem.make_device(android::modern_l1_spec(0x2001));

  std::cout << "Q2: CONTENT PROTECTION BY ASSET CLASS\n";
  std::cout << pad("OTT", 20) << pad("PinBypass", 11) << pad("Video", 11) << pad("Audio", 11)
            << pad("Subtitles", 11) << pad("SubsASCII", 11) << "ClearAudioPlaysNoAccount\n";
  std::cout << std::string(100, '-') << "\n";

  std::size_t clear_audio = 0;
  std::size_t bypassed = 0;
  for (const auto& profile : ott::study_catalog()) {
    core::DrmApiMonitor cdm_monitor(*device);
    core::NetworkMonitor net_monitor(ecosystem.network(), ecosystem.fork_rng());
    ott::OttApp app(profile, ecosystem, *device);
    net_monitor.attach(app);
    (void)app.play_title();

    const auto manifest = net_monitor.harvest_manifest(&cdm_monitor);
    net::TrustStore trust;
    trust.add(ecosystem.root_ca());
    core::AssetAuditor auditor(ecosystem.network(), trust, ecosystem.fork_rng());
    const auto assets = auditor.audit(manifest);

    if (net_monitor.pin_bypasses() > 0) ++bypassed;
    if (assets.audio == core::ProtectionStatus::Clear) ++clear_audio;

    std::cout << pad(profile.name, 20)
              << pad(std::to_string(net_monitor.pin_bypasses()) + " hits", 11)
              << pad(to_string(assets.video), 11) << pad(to_string(assets.audio), 11)
              << pad(to_string(assets.subtitles), 11)
              << pad(assets.subtitles_ascii_readable ? "yes" : "-", 11)
              << (assets.clear_audio_plays_without_account ? "yes" : "-") << "\n";
  }
  std::cout << std::string(100, '-') << "\n";
  std::cout << "pin bypass effective on " << bypassed << "/10 apps (paper: all); "
            << clear_audio << "/10 ship audio in clear (paper: 3 — Netflix, myCANAL, Salto)\n";
  return 0;
}
