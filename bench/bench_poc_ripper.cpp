// Experiment PI (§IV-D): the practical-impact PoC — DRM-free content
// recovery from the discontinued device.
//
// Paper: keybox recovered from CDM memory (CVE-2021-0639); Device RSA Key
// unwrapped; content keys recovered by re-implementing the key ladder over
// intercepted buffers; DRM-free media obtained from six apps (incl.
// Netflix, Hulu, Showtime) at 960x540 qHD, playable with no account.
#include <chrono>
#include <iostream>

#include "core/report.hpp"
#include "ott/catalog.hpp"
#include "support/bench_report.hpp"
#include "support/crc32.hpp"

int main() {
  using namespace wideleak;

  ott::StreamingEcosystem ecosystem;
  ecosystem.install_catalog();
  auto nexus5 = ecosystem.make_device(android::legacy_nexus5_spec(0x5001));

  const auto t0 = std::chrono::steady_clock::now();
  core::ContentRipper ripper(ecosystem, *nexus5);
  const auto results = ripper.rip_catalog();
  const auto t1 = std::chrono::steady_clock::now();

  std::cout << core::render_rip_summary(results);

  // Shape checks the paper reports.
  std::size_t ripped = 0;
  bool any_hd = false;
  for (const auto& result : results) {
    if (!result.success) continue;
    ++ripped;
    if (result.best_video_resolution.is_hd()) any_hd = true;
  }
  std::cout << "\n[shape] ripped apps: " << ripped << " (paper: 6)\n";
  std::cout << "[shape] best recovered quality is sub-HD everywhere: "
            << (any_hd ? "VIOLATED" : "yes, 960x540 qHD cap holds") << "\n";
  std::cout << "[bench] full 10-app rip campaign: "
            << std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0).count()
            << " ms\n";

  // Perf trajectory record: total media bytes ripped, wall time, and a
  // checksum over every app's recovered stream (order-stable) so runs can
  // be diffed for both speed and bit-identity.
  std::size_t media_bytes = 0;
  Bytes per_app_crcs;
  for (const auto& result : results) {
    media_bytes += result.drm_free_media.size();
    const std::uint32_t c = crc32(BytesView(result.drm_free_media));
    for (int shift = 24; shift >= 0; shift -= 8) {
      per_app_crcs.push_back(static_cast<std::uint8_t>(c >> shift));
    }
  }
  const std::uint32_t media_crc = crc32(BytesView(per_app_crcs));
  support::BenchReport report("poc_ripper");
  report.add("rip_catalog", media_bytes,
             static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()),
             media_crc);
  report.write_file("BENCH_poc_ripper.json");

  return ripped == 6 && !any_hd ? 0 : 1;
}
