// Experiment PI (§IV-D): the practical-impact PoC — DRM-free content
// recovery from the discontinued device.
//
// Paper: keybox recovered from CDM memory (CVE-2021-0639); Device RSA Key
// unwrapped; content keys recovered by re-implementing the key ladder over
// intercepted buffers; DRM-free media obtained from six apps (incl.
// Netflix, Hulu, Showtime) at 960x540 qHD, playable with no account.
#include <chrono>
#include <iostream>

#include "core/report.hpp"
#include "ott/catalog.hpp"

int main() {
  using namespace wideleak;

  ott::StreamingEcosystem ecosystem;
  ecosystem.install_catalog();
  auto nexus5 = ecosystem.make_device(android::legacy_nexus5_spec(0x5001));

  const auto t0 = std::chrono::steady_clock::now();
  core::ContentRipper ripper(ecosystem, *nexus5);
  const auto results = ripper.rip_catalog();
  const auto t1 = std::chrono::steady_clock::now();

  std::cout << core::render_rip_summary(results);

  // Shape checks the paper reports.
  std::size_t ripped = 0;
  bool any_hd = false;
  for (const auto& result : results) {
    if (!result.success) continue;
    ++ripped;
    if (result.best_video_resolution.is_hd()) any_hd = true;
  }
  std::cout << "\n[shape] ripped apps: " << ripped << " (paper: 6)\n";
  std::cout << "[shape] best recovered quality is sub-HD everywhere: "
            << (any_hd ? "VIOLATED" : "yes, 960x540 qHD cap holds") << "\n";
  std::cout << "[bench] full 10-app rip campaign: "
            << std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0).count()
            << " ms\n";
  return ripped == 6 && !any_hd ? 0 : 1;
}
