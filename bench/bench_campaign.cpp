// Experiment C1: the parallel audit campaign — the "easily automated" claim
// (§IV-B/§IV-D) at ecosystem scale.
//
// Runs the full study matrix (10 apps × 3 device profiles, Q1–Q4 + keybox
// recovery + rip per cell) on a work-stealing pool, sweeping worker counts
// 1 → hardware_concurrency (or argv[1]), and checks two things:
//   - throughput: wall time and speedup per worker count;
//   - determinism: the per-cell report AND the aggregated Table I must be
//     bit-identical at every worker count (exit code 1 otherwise).
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "core/campaign.hpp"

int main(int argc, char** argv) {
  using namespace wideleak;

  std::size_t max_workers = std::thread::hardware_concurrency();
  if (argc > 1) max_workers = std::strtoull(argv[1], nullptr, 10);
  if (max_workers == 0) max_workers = 1;

  // Power-of-two ladder up to (and always including) max_workers.
  std::vector<std::size_t> ladder;
  for (std::size_t w = 1; w < max_workers; w *= 2) ladder.push_back(w);
  ladder.push_back(max_workers);

  std::cout << "CAMPAIGN BENCH: full study matrix, worker sweep 1.." << max_workers
            << " (hardware_concurrency=" << std::thread::hardware_concurrency() << ")\n\n";

  int rc = 0;
  std::string baseline_report;
  std::string baseline_table;
  double baseline_ms = 0.0;

  for (const std::size_t workers : ladder) {
    core::CampaignSpec spec;
    spec.workers = workers;
    core::CampaignRunner runner(std::move(spec));
    const core::CampaignResult result = runner.run();

    const std::string report = core::render_campaign_report(result);
    const std::string table = core::render_table_one(core::campaign_to_audits(result));

    if (workers == ladder.front()) {
      baseline_report = report;
      baseline_table = table;
      baseline_ms = result.stats.wall_ms;
      std::cout << report << "\n" << table << "\n";
      std::cout << "workers  wall ms   speedup  reports\n";
    }
    const bool identical = report == baseline_report && table == baseline_table;
    if (!identical) rc = 1;
    std::cout.setf(std::ios::fixed);
    std::cout.precision(0);
    std::cout << workers << "\t " << result.stats.wall_ms << "\t   ";
    std::cout.precision(2);
    std::cout << (baseline_ms / std::max(result.stats.wall_ms, 1.0)) << "x    "
              << (identical ? "bit-identical" : "MISMATCH") << "\n";
    std::cout.unsetf(std::ios::fixed);
    std::cout << "  " << core::render_campaign_stats(result);
  }

  std::cout << "\n[bench] determinism across the sweep: " << (rc == 0 ? "OK" : "FAILED")
            << "\n";
  return rc;
}
