// Experiment C1: the parallel audit campaign — the "easily automated" claim
// (§IV-B/§IV-D) at ecosystem scale, now across both schedulers.
//
// Runs a fixed app × device-profile matrix (Q1–Q4 + keybox recovery + rip
// per cell) under the synchronous work-stealing pool and the pipelined
// task-graph scheduler at a sweep of worker counts, and checks two things:
//   - throughput: cells/sec per (mode, workers) configuration;
//   - determinism: the per-cell report AND the aggregated Table I must be
//     bit-identical across every configuration (exit code 1 otherwise).
//
// Every configuration lands in a fixed-schema support::BenchReport entry
// (op "campaign/<mode>/w<N>", mb_per_s == cells/sec, checksum = CRC32 of
// report+table), so tools/bench_diff.py can gate run-over-run drift and
// bit-identity the same way it gates the data plane.
//
// Usage: bench_campaign [--smoke] [--out BENCH_campaign.json]
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "ott/catalog.hpp"
#include "support/bench_report.hpp"
#include "support/bytes.hpp"
#include "support/crc32.hpp"

namespace {

using namespace wideleak;

std::uint32_t checksum_of(const std::string& s) {
  return crc32(
      BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

struct Config {
  core::ExecutionMode mode;
  std::size_t workers;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_campaign.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_campaign [--smoke] [--out FILE]\n";
      return 2;
    }
  }

  // A catalog subset keeps one full-mode run around twenty seconds on the
  // reference box while still covering all three device classes, the
  // custom-DRM path (Amazon) and the §IV-D rip. Smoke trims further for CI.
  std::vector<const char*> names = {"Netflix", "Amazon Prime Video"};
  if (!smoke) {
    names.push_back("Disney+");
    names.push_back("Hulu");
  }
  core::CampaignSpec base;
  for (const char* name : names) {
    const auto app = ott::find_app(name);
    if (!app) {
      std::cerr << "unknown catalog app: " << name << "\n";
      return 2;
    }
    base.apps.push_back(*app);
  }
  base.attempt_rip = !smoke;

  std::vector<Config> configs = {
      {core::ExecutionMode::Synchronous, 1},
      {core::ExecutionMode::Pipelined, 1},
      {core::ExecutionMode::Pipelined, 2},
  };
  if (!smoke) {
    configs.push_back({core::ExecutionMode::Pipelined, 4});
    configs.push_back({core::ExecutionMode::Pipelined, 8});
    configs.push_back({core::ExecutionMode::Synchronous, 8});
  }

  std::cout << "CAMPAIGN BENCH: " << base.apps.size() << " apps x 3 profiles, "
            << configs.size() << " scheduler configurations"
            << (smoke ? " (smoke)" : "") << "\n\n";

  support::BenchReport bench("campaign");
  int rc = 0;
  std::uint32_t baseline_crc = 0;
  double baseline_ms = 0.0;
  bool first = true;

  for (const Config& config : configs) {
    core::CampaignSpec spec = base;
    spec.mode = config.mode;
    spec.workers = config.workers;
    core::CampaignRunner runner(std::move(spec));
    const core::CampaignResult result = runner.run();

    const std::string report = core::render_campaign_report(result);
    const std::string table = core::render_table_one(core::campaign_to_audits(result));
    const std::uint32_t crc = checksum_of(report + table);

    if (first) {
      baseline_crc = crc;
      baseline_ms = result.stats.wall_ms;
      std::cout << report << "\n" << table << "\n";
      std::cout << "mode/workers       wall ms  speedup  cells/s  reports\n";
    }
    const bool identical = crc == baseline_crc;
    if (!identical) rc = 1;

    const std::string op = "campaign/" + core::to_string(config.mode) + "/w" +
                           std::to_string(config.workers);
    const double cells_per_sec =
        result.cells.size() / std::max(result.stats.wall_ms, 1.0) * 1000.0;
    bench.add(op, static_cast<std::uint64_t>(result.cells.size()) * 1'000'000,
              static_cast<std::uint64_t>(result.stats.wall_ms * 1e6), crc);

    std::cout.setf(std::ios::fixed);
    std::cout.precision(0);
    std::cout << core::to_string(config.mode) << "/w" << config.workers << "\t "
              << result.stats.wall_ms << "\t ";
    std::cout.precision(2);
    std::cout << (baseline_ms / std::max(result.stats.wall_ms, 1.0)) << "x    "
              << cells_per_sec << "     " << (identical ? "bit-identical" : "MISMATCH")
              << "\n";
    std::cout.unsetf(std::ios::fixed);
    std::cout << "  " << core::render_campaign_stats(result);
    first = false;
  }

  bench.write_file(out_path);
  std::cout << "\n[bench] report written to " << out_path << "\n";
  std::cout << "[bench] determinism across the sweep: " << (rc == 0 ? "OK" : "FAILED")
            << "\n";
  return rc;
}
