// Experiment Q4 (§IV-C): do OTT apps still serve discontinued L3 devices?
//
// Paper: on a Nexus 5 (Android 6.0.1, CDM 3.1.0), Disney+, HBO Max and
// Starz refuse to provision (device revoked); the remaining seven apps
// display content — capped at sub-HD because the device is L3.
#include <iostream>

#include "core/legacy_prober.hpp"
#include "ott/catalog.hpp"
#include "ott/ecosystem.hpp"

namespace {

std::string pad(const std::string& s, std::size_t n) {
  std::string out = s;
  out.resize(std::max(n, out.size()), ' ');
  return out;
}

}  // namespace

int main() {
  using namespace wideleak;

  ott::StreamingEcosystem ecosystem;
  ecosystem.install_catalog();
  auto nexus5 = ecosystem.make_device(android::legacy_nexus5_spec(0x4001));

  std::cout << "Q4: PLAYBACK ON A DISCONTINUED L3 DEVICE (Nexus 5, Android 6.0.1, CDM "
            << nexus5->spec().cdm_version.label() << ")\n";
  std::cout << pad("OTT", 20) << pad("Verdict", 22) << pad("Best quality", 14)
            << "Detail\n";
  std::cout << std::string(95, '-') << "\n";

  std::size_t plays = 0, refused = 0;
  for (const auto& profile : ott::study_catalog()) {
    const auto report = core::probe_legacy_playback(profile, ecosystem, *nexus5);
    if (report.verdict == core::LegacyPlaybackVerdict::Plays ||
        report.verdict == core::LegacyPlaybackVerdict::PlaysViaCustomDrm) {
      ++plays;
    }
    if (report.verdict == core::LegacyPlaybackVerdict::ProvisioningFailed) ++refused;
    std::cout << pad(profile.name, 20) << pad(to_string(report.verdict), 22)
              << pad(report.best_resolution.height != 0 ? report.best_resolution.label() : "-",
                     14)
              << report.detail << "\n";
  }
  std::cout << std::string(95, '-') << "\n";
  std::cout << plays << "/10 apps display content on the revoked device, " << refused
            << " refuse at provisioning (paper: 7 and 3); no playback exceeded 540p\n";
  return 0;
}
