// Experiment C2: the chaos campaign — the audit matrix under deterministic
// fault injection, and the pipelined scheduler's headline overlap gate.
//
// For each chaos profile this runs a fixed app × device-profile matrix and
// checks three things:
//   - determinism: the per-cell report (Partial cells, fault summaries and
//     retry counters included) must be bit-identical across every scheduler
//     configuration — synchronous or pipelined, any worker count, pacing on
//     or off — for a fixed (seed, profile); exit code 1 otherwise;
//   - robustness accounting: how many cells stayed Full / Degraded / went
//     Partial, and the retry/fault overhead the profile cost;
//   - overlap (full mode, flaky-cdn and flaky-license): with pacing enabled
//     so every simulated wait carries a real wall-time obligation, the
//     pipelined scheduler at 8 workers must clear >= 3x the cells/sec of
//     the synchronous single-worker baseline (the seed's default runner,
//     which pays every wait inline). The gate fails the run otherwise.
//
// Pacing is self-calibrated: an unpaced run measures the matrix's CPU cost
// and simulated-wait tick volume, then wall_us_per_tick is chosen so the
// total wait obligation is ~6x the CPU cost — the regime the paper's
// overnight audit campaigns live in (network-bound, CPU to spare), scaled
// to whatever box the bench runs on. The overlap legs run a wider app
// matrix than the determinism ladder: more concurrent cells means more
// de-phased wait windows for the scheduler to hide, which is the scale
// the pipelining is for (the residual un-hideable wait tail shrinks as a
// fraction of the total as the matrix grows). Pacing never touches
// virtual time, so the paced runs' reports are checksum-compared against
// the unpaced baseline of the same matrix.
//
// Every configuration lands in a fixed-schema support::BenchReport entry
// (op "chaos/<profile>/<mode>/w<N>", mb_per_s == cells/sec, checksum =
// CRC32 of the campaign report); the measured overlap ratio is recorded as
// the synthetic op "chaos/<profile>/overlap_x1000" (mb_per_s == ratio),
// so tools/bench_diff.py gates both bit-identity and the perf trajectory.
//
// Server-side chaos (experiment C6, docs/RESILIENCE.md): naming a DrmService
// chaos plan ("shard-crash", "brownout") instead of a network profile runs
// the recovery legs — the same matrix with the service itself misbehaving,
// the circuit breaker armed, and (brownout) a per-cell deadline budget. Each
// leg checks that every cell of the crashed shard completes as
// Full/Degraded/Partial (zero hung or lost cells), that sessions were
// actually dropped and reopened, and that the report — resilience counters
// included — replays bit-identically across the pipelined worker ladder.
// The counters themselves (reopens, breaker opens/fast-fails, sessions
// dropped, time-to-recover ticks) land as synthetic BenchReport rows so
// bench_diff gates the recovery trajectory, not just the wall clock.
//
// Usage: bench_chaos [--smoke] [--out BENCH_chaos.json] [profile|chaos-plan]
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "ott/catalog.hpp"
#include "support/bench_report.hpp"
#include "support/bytes.hpp"
#include "support/crc32.hpp"

namespace {

using namespace wideleak;

std::uint32_t checksum_of(const std::string& s) {
  return crc32(
      BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

/// Wait-wall target as a multiple of measured CPU: the calibrated pacing
/// makes the matrix spend ~6 units of wall-clock waiting per unit of CPU.
/// The synchronous baseline pays all of it inline (wall ~= (1 + ratio) x
/// CPU); the pipelined wall only grows with the residual tail of waits no
/// schedule could hide, so a deeper wait regime widens the measured gap —
/// and 6x is still comfortably inside the paper's overnight-campaign
/// network-bound regime.
constexpr double kWaitToCpuRatio = 6.0;
/// The acceptance floor for pipelined@8 vs synchronous@1 cells/sec.
constexpr double kOverlapGate = 3.0;

struct RunOutcome {
  core::CampaignResult result;
  std::string report;
  std::uint32_t crc = 0;
};

RunOutcome run_config(const core::CampaignSpec& base, core::ExecutionMode mode,
                      std::size_t workers, std::uint64_t wall_us_per_tick) {
  core::CampaignSpec spec = base;
  spec.mode = mode;
  spec.workers = workers;
  spec.pacing.wall_us_per_tick = wall_us_per_tick;
  core::CampaignRunner runner(std::move(spec));
  RunOutcome out{runner.run(), {}, 0};
  out.report = core::render_campaign_report(out.result);
  out.crc = checksum_of(out.report);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_chaos.json";
  std::vector<net::FaultProfile> profiles;
  std::vector<std::string> service_plans;
  bool selected = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    widevine::ChaosPlan probe;
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (const auto chosen = net::fault_profile_from_string(arg)) {
      profiles = {*chosen};
      selected = true;
    } else if (widevine::chaos_plan_from_string(arg, probe) && !probe.empty()) {
      // A DrmService chaos plan name selects the recovery legs only.
      service_plans = {arg};
      selected = true;
    } else {
      std::cerr << "usage: bench_chaos [--smoke] [--out FILE] [profile|chaos-plan]\n";
      return 2;
    }
  }
  if (!selected) {
    profiles = smoke ? std::vector<net::FaultProfile>{net::FaultProfile::FlakyCdn}
                     : std::vector<net::FaultProfile>{
                           net::FaultProfile::None, net::FaultProfile::FlakyCdn,
                           net::FaultProfile::FlakyLicense,
                           net::FaultProfile::ByzantineLicense};
    // Full mode also walks the service-side recovery legs; the smoke default
    // stays network-only (CI runs the recovery smoke as its own explicit
    // `bench_chaos --smoke shard-crash` step).
    if (!smoke) service_plans = {"shard-crash", "brownout"};
  }

  // Same sizing rationale as bench_campaign: a catalog subset covering all
  // three device classes; the audit pass is where faults (and waits) bite,
  // so the rip stays off. Smoke trims the app axis for CI.
  std::vector<const char*> names = {"Netflix", "Amazon Prime Video"};
  if (!smoke) {
    names.push_back("Disney+");
    names.push_back("Hulu");
  }
  core::CampaignSpec base;
  for (const char* name : names) {
    const auto app = ott::find_app(name);
    if (!app) {
      std::cerr << "unknown catalog app: " << name << "\n";
      return 2;
    }
    base.apps.push_back(*app);
  }
  base.attempt_rip = false;

  // The overlap matrix: every catalog app the ladder uses plus four more,
  // giving the paced legs 24 concurrent cells. The wait tail a scheduler
  // cannot hide is per-chain; spreading the same fault profile over twice
  // the chains halves the tail as a fraction of the total obligation.
  core::CampaignSpec overlap_base;
  if (!smoke) {
    for (const char* name : {"Netflix", "Amazon Prime Video", "Disney+", "Hulu",
                             "myCANAL", "Showtime", "OCS", "Salto"}) {
      const auto app = ott::find_app(name);
      if (!app) {
        std::cerr << "unknown catalog app: " << name << "\n";
        return 2;
      }
      overlap_base.apps.push_back(*app);
    }
    overlap_base.attempt_rip = false;
  }

  std::cout << "CHAOS BENCH: " << base.apps.size() << " apps x 3 profiles, "
            << profiles.size() << " chaos profile(s)" << (smoke ? " (smoke)" : "")
            << "\n\n";

  support::BenchReport bench("chaos");
  int rc = 0;

  for (const net::FaultProfile profile : profiles) {
    core::CampaignSpec spec = base;
    spec.chaos = profile;
    const std::string tag = "chaos/" + std::string(net::to_string(profile));

    std::cout << "=== chaos profile: " << net::to_string(profile) << " ===\n";

    // --- Unpaced baseline: the seed's synchronous single-worker runner.
    // Doubles as calibration: CPU cost and simulated-wait volume.
    const RunOutcome baseline =
        run_config(spec, core::ExecutionMode::Synchronous, 1, 0);
    const std::uint64_t wait_ticks = baseline.result.stats.totals.sim_wait_ticks;
    const std::size_t cells = baseline.result.cells.size();

    std::size_t full = 0, degraded = 0, partial = 0;
    for (const core::CellResult& cell : baseline.result.cells) {
      switch (cell.outcome) {
        case core::CellOutcome::Full: ++full; break;
        case core::CellOutcome::Degraded: ++degraded; break;
        case core::CellOutcome::Partial: ++partial; break;
      }
    }
    std::cout << "cells: " << full << " full, " << degraded << " degraded, " << partial
              << " partial; net " << baseline.result.stats.totals.net_attempts
              << " attempts / " << baseline.result.stats.totals.net_retries
              << " retries / " << baseline.result.stats.totals.net_giveups
              << " giveups; " << baseline.result.stats.totals.faults_injected
              << " faults injected; " << wait_ticks << " wait ticks\n";

    auto record = [&](const std::string& op, const RunOutcome& run,
                      std::uint32_t ref_crc, std::size_t ncells) {
      const bool identical = run.crc == ref_crc;
      if (!identical) rc = 1;
      const double cells_per_sec =
          ncells / std::max(run.result.stats.wall_ms, 1.0) * 1000.0;
      bench.add(op, static_cast<std::uint64_t>(ncells) * 1'000'000,
                static_cast<std::uint64_t>(run.result.stats.wall_ms * 1e6), run.crc);
      std::cout.setf(std::ios::fixed);
      std::cout.precision(0);
      std::cout << "  " << op << ": " << run.result.stats.wall_ms << " ms, ";
      std::cout.precision(2);
      std::cout << cells_per_sec << " cells/s, "
                << (identical ? "bit-identical" : "MISMATCH") << "\n";
      std::cout.unsetf(std::ios::fixed);
      return cells_per_sec;
    };

    record(tag + "/synchronous/w1", baseline, baseline.crc, cells);

    // --- Unpaced pipelined sweep: bit-identity at every worker count.
    const std::vector<std::size_t> ladder =
        smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};
    for (const std::size_t workers : ladder) {
      const RunOutcome run =
          run_config(spec, core::ExecutionMode::Pipelined, workers, 0);
      record(tag + "/pipelined/w" + std::to_string(workers), run, baseline.crc, cells);
    }

    // --- Paced overlap measurement: waits now cost wall time. Full mode
    // runs this on the wider overlap matrix with its own unpaced baseline
    // (for calibration and for the CRC the paced legs must match), then
    // calibrates so the matrix's total wait obligation is kWaitToCpuRatio
    // x its CPU cost. Smoke keeps the paced leg (timer wheel + checksum
    // path stay exercised in CI) but on the small matrix with a token
    // pacing instead of the full calibrated wall.
    const bool overlap_profile = profile == net::FaultProfile::FlakyCdn ||
                                 profile == net::FaultProfile::FlakyLicense;
    if (wait_ticks > 0 && overlap_profile) {
      core::CampaignSpec ospec = smoke ? spec : overlap_base;
      ospec.chaos = profile;
      RunOutcome obase_run;
      if (!smoke) {
        obase_run = run_config(ospec, core::ExecutionMode::Synchronous, 1, 0);
      }
      const RunOutcome& obase = smoke ? baseline : obase_run;
      const std::size_t ocells = obase.result.cells.size();
      const double ocpu_ms = obase.result.stats.wall_ms;
      const std::uint64_t owait_ticks = obase.result.stats.totals.sim_wait_ticks;
      if (!smoke) {
        record(tag + "/overlap-synchronous/w1", obase, obase.crc, ocells);
      }

      const std::uint64_t us_per_tick =
          smoke ? 500
                : std::max<std::uint64_t>(
                      1, static_cast<std::uint64_t>(
                             kWaitToCpuRatio * ocpu_ms * 1000.0 /
                             static_cast<double>(std::max<std::uint64_t>(
                                 1, owait_ticks))));
      std::cout << "  pacing: " << us_per_tick << " us/tick (" << owait_ticks
                << " ticks" << (smoke ? ", token smoke pacing" : " ~ 6x CPU")
                << ")\n";

      const RunOutcome paced_sync =
          run_config(ospec, core::ExecutionMode::Synchronous, 1, us_per_tick);
      const double sync_cps =
          record(tag + "/paced-synchronous/w1", paced_sync, obase.crc, ocells);
      const RunOutcome paced_pipe =
          run_config(ospec, core::ExecutionMode::Pipelined, 8, us_per_tick);
      const double pipe_cps =
          record(tag + "/paced-pipelined/w8", paced_pipe, obase.crc, ocells);

      const double ratio = pipe_cps / std::max(sync_cps, 1e-9);
      // mb_per_s == the measured overlap ratio (bytes/ns scaling: ratio
      // encoded so bench_diff's drop tolerance gates the trajectory).
      bench.add(tag + "/overlap_x1000",
                static_cast<std::uint64_t>(ratio * 1'000'000.0), 1'000'000'000,
                obase.crc);

      const bool gated = !smoke;
      std::cout.setf(std::ios::fixed);
      std::cout.precision(2);
      std::cout << "  overlap: pipelined@8 " << ratio
                << "x the synchronous baseline cells/sec";
      if (gated && ratio < kOverlapGate) {
        std::cout << " — BELOW the " << kOverlapGate << "x gate";
        rc = 1;
      } else if (gated) {
        std::cout << " (gate " << kOverlapGate << "x: OK)";
      }
      std::cout << "\n";
      std::cout.unsetf(std::ios::fixed);
    }
    std::cout << "\n";
  }

  // --- Server-side chaos recovery legs (C6) --------------------------------
  for (const std::string& plan_name : service_plans) {
    core::CampaignSpec spec = base;
    spec.service_chaos = widevine::chaos_plan_for(plan_name);
    // The breaker is armed on every recovery leg: part of what the legs
    // measure is how much retry budget fast-fails save during an outage.
    spec.breaker.failure_threshold = 3;
    spec.breaker.open_ticks = 24;
    // The brownout leg runs under a per-cell deadline budget, so the
    // graceful-degradation path (deadline_exceeded Partial cells, cancelled
    // timer-wheel waits) is exercised and diffed too.
    if (plan_name == "brownout") spec.cell_deadline_ticks = 48;
    const std::string tag = "chaos-svc/" + plan_name;

    std::cout << "=== service chaos plan: " << plan_name << " ===\n";

    const RunOutcome baseline =
        run_config(spec, core::ExecutionMode::Synchronous, 1, 0);
    const std::size_t cells = baseline.result.cells.size();
    const core::CellStats& totals = baseline.result.stats.totals;

    std::size_t full = 0, degraded = 0, partial = 0;
    for (const core::CellResult& cell : baseline.result.cells) {
      switch (cell.outcome) {
        case core::CellOutcome::Full: ++full; break;
        case core::CellOutcome::Degraded: ++degraded; break;
        case core::CellOutcome::Partial: ++partial; break;
      }
    }
    std::cout << "cells: " << full << " full, " << degraded << " degraded, " << partial
              << " partial; " << totals.drm_sessions_dropped << " sessions dropped, "
              << totals.drm_shard_refusals << " shard refusals, "
              << totals.drm_brownout_denied << " brownout denials, "
              << totals.net_reopens << " reopens; breaker " << totals.breaker_opens
              << " opens / " << totals.breaker_fast_fails << " fast-fails; recovery "
              << totals.drm_recovery_ticks << " ticks; " << totals.deadline_cancelled
              << " cells past deadline\n";

    // Zero hung or lost cells: every matrix cell completed on an outcome.
    if (full + degraded + partial != cells) {
      std::cout << "  LOST CELLS: " << (cells - full - degraded - partial)
                << " cells completed on no outcome\n";
      rc = 1;
    }
    // The crash leg must actually bite: dropped sessions forced reopen
    // cycles. A silent no-op "recovery" bench would gate nothing.
    if (plan_name == "shard-crash" &&
        (totals.drm_sessions_dropped == 0 || totals.net_reopens == 0)) {
      std::cout << "  NO RECOVERY TRAFFIC: the crash window never dropped a "
                   "session or forced a reopen\n";
      rc = 1;
    }

    auto record = [&](const std::string& op, const RunOutcome& run) {
      const bool identical = run.crc == baseline.crc;
      if (!identical) rc = 1;
      const double cells_per_sec =
          cells / std::max(run.result.stats.wall_ms, 1.0) * 1000.0;
      bench.add(op, static_cast<std::uint64_t>(cells) * 1'000'000,
                static_cast<std::uint64_t>(run.result.stats.wall_ms * 1e6), run.crc);
      std::cout.setf(std::ios::fixed);
      std::cout.precision(0);
      std::cout << "  " << op << ": " << run.result.stats.wall_ms << " ms, ";
      std::cout.precision(2);
      std::cout << cells_per_sec << " cells/s, "
                << (identical ? "bit-identical" : "MISMATCH") << "\n";
      std::cout.unsetf(std::ios::fixed);
    };

    record(tag + "/synchronous/w1", baseline);
    const std::vector<std::size_t> ladder =
        smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};
    for (const std::size_t workers : ladder) {
      record(tag + "/pipelined/w" + std::to_string(workers),
             run_config(spec, core::ExecutionMode::Pipelined, workers, 0));
    }

    // Counter rows: value * 1e6 bytes over 1e9 ns makes mb_per_s == the
    // counter itself, checksummed against the baseline report — bench_diff
    // gates the recovery trajectory alongside the wall clock.
    const auto counter_row = [&](const char* name, std::uint64_t value) {
      bench.add(tag + "/" + name, value * 1'000'000, 1'000'000'000, baseline.crc);
      std::cout << "  " << tag << "/" << name << ": " << value << "\n";
    };
    counter_row("reopens", totals.net_reopens);
    counter_row("breaker_opens", totals.breaker_opens);
    counter_row("breaker_fast_fails", totals.breaker_fast_fails);
    counter_row("sessions_dropped", totals.drm_sessions_dropped);
    counter_row("recovery_ticks", totals.drm_recovery_ticks);
    if (spec.cell_deadline_ticks != 0) {
      counter_row("deadline_cancelled", totals.deadline_cancelled);
    }
    std::cout << "\n";
  }

  bench.write_file(out_path);
  std::cout << "[bench] report written to " << out_path << "\n";
  std::cout << "[bench] determinism + overlap gates: " << (rc == 0 ? "OK" : "FAILED")
            << "\n";
  return rc;
}
