// Experiment C2: the chaos campaign — the audit matrix under deterministic
// fault injection.
//
// For each chaos profile (none, flaky-cdn, flaky-license, byzantine-license)
// this runs the full study matrix at a sweep of worker counts and checks:
//   - determinism: the per-cell report (Partial cells, fault summaries and
//     retry counters included) must be bit-identical at every worker count
//     for a fixed (seed, profile) — exit code 1 otherwise;
//   - robustness accounting: how many cells stayed Full, degraded, or went
//     Partial, and the retry/fault overhead the profile cost.
//
// argv[1] caps the worker sweep (default hardware_concurrency); argv[2]
// optionally restricts the run to a single profile by name.
#include <array>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hpp"

int main(int argc, char** argv) {
  using namespace wideleak;

  std::size_t max_workers = std::thread::hardware_concurrency();
  if (argc > 1) max_workers = std::strtoull(argv[1], nullptr, 10);
  if (max_workers == 0) max_workers = 1;

  std::vector<net::FaultProfile> profiles = {
      net::FaultProfile::None, net::FaultProfile::FlakyCdn, net::FaultProfile::FlakyLicense,
      net::FaultProfile::ByzantineLicense};
  if (argc > 2) {
    const auto chosen = net::fault_profile_from_string(argv[2]);
    if (!chosen) {
      std::cerr << "unknown chaos profile: " << argv[2] << "\n";
      return 2;
    }
    profiles = {*chosen};
  }

  // Power-of-two ladder up to (and always including) max_workers.
  std::vector<std::size_t> ladder;
  for (std::size_t w = 1; w < max_workers; w *= 2) ladder.push_back(w);
  ladder.push_back(max_workers);

  std::cout << "CHAOS BENCH: full study matrix x " << profiles.size()
            << " chaos profile(s), worker sweep 1.." << max_workers << "\n\n";

  int rc = 0;
  for (const net::FaultProfile profile : profiles) {
    std::string baseline_report;
    double baseline_ms = 0.0;
    std::size_t full = 0, degraded = 0, partial = 0;

    std::cout << "=== chaos profile: " << net::to_string(profile) << " ===\n";
    for (const std::size_t workers : ladder) {
      core::CampaignSpec spec;
      spec.workers = workers;
      spec.chaos = profile;
      core::CampaignRunner runner(std::move(spec));
      const core::CampaignResult result = runner.run();
      const std::string report = core::render_campaign_report(result);

      if (workers == ladder.front()) {
        baseline_report = report;
        baseline_ms = result.stats.wall_ms;
        for (const core::CellResult& cell : result.cells) {
          switch (cell.outcome) {
            case core::CellOutcome::Full: ++full; break;
            case core::CellOutcome::Degraded: ++degraded; break;
            case core::CellOutcome::Partial: ++partial; break;
          }
        }
        std::cout << "cells: " << full << " full, " << degraded << " degraded, " << partial
                  << " partial; net " << result.stats.totals.net_attempts << " attempts / "
                  << result.stats.totals.net_retries << " retries / "
                  << result.stats.totals.net_giveups << " giveups; "
                  << result.stats.totals.faults_injected << " faults injected\n";
        std::cout << "workers  wall ms   speedup  reports\n";
      }
      const bool identical = report == baseline_report;
      if (!identical) rc = 1;
      std::cout.setf(std::ios::fixed);
      std::cout.precision(0);
      std::cout << workers << "\t " << result.stats.wall_ms << "\t   ";
      std::cout.precision(2);
      std::cout << (baseline_ms / std::max(result.stats.wall_ms, 1.0)) << "x    "
                << (identical ? "bit-identical" : "MISMATCH") << "\n";
      std::cout.unsetf(std::ios::fixed);
    }
    std::cout << "\n";
  }

  std::cout << "[bench] determinism across the sweep: " << (rc == 0 ? "OK" : "FAILED") << "\n";
  return rc;
}
