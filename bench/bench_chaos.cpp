// Experiment C2: the chaos campaign — the audit matrix under deterministic
// fault injection, and the pipelined scheduler's headline overlap gate.
//
// For each chaos profile this runs a fixed app × device-profile matrix and
// checks three things:
//   - determinism: the per-cell report (Partial cells, fault summaries and
//     retry counters included) must be bit-identical across every scheduler
//     configuration — synchronous or pipelined, any worker count, pacing on
//     or off — for a fixed (seed, profile); exit code 1 otherwise;
//   - robustness accounting: how many cells stayed Full / Degraded / went
//     Partial, and the retry/fault overhead the profile cost;
//   - overlap (full mode, flaky-cdn and flaky-license): with pacing enabled
//     so every simulated wait carries a real wall-time obligation, the
//     pipelined scheduler at 8 workers must clear >= 8x the cells/sec of
//     the synchronous single-worker baseline (the seed's default runner,
//     which pays every wait inline). The gate fails the run otherwise.
//
// Pacing is self-calibrated: an unpaced run measures the matrix's CPU cost
// and simulated-wait tick volume, then wall_us_per_tick is chosen so the
// total wait obligation is ~12x the CPU cost — the regime the paper's
// overnight audit campaigns live in (network-bound, CPU to spare), scaled
// to whatever box the bench runs on. The overlap legs run a wider app
// matrix than the determinism ladder: more concurrent cells means more
// de-phased wait windows for the scheduler to hide, which is the scale
// the pipelining is for (the residual un-hideable wait tail shrinks as a
// fraction of the total as the matrix grows). Pacing never touches
// virtual time, so the paced runs' reports are checksum-compared against
// the unpaced baseline of the same matrix. The paced pipelined legs are
// profile-guided: the paced-synchronous baseline measures every cell's
// exact wait on the deterministic matrix, and those per-cell totals are
// fed forward as CampaignSpec::schedule_wait_hints so the scheduler
// front-loads the chains that set the makespan (pure scheduling input —
// the reports stay bit-identical either way).
//
// Cross-profile shared scheduling (run_campaigns_shared): after the
// per-profile ladders, the flaky-cdn and flaky-license matrices are
// submitted into ONE shared TaskQueue — one profile's license-backoff tail
// drains under the other's CDN-retry CPU work. The shared legs check
// per-spec bit-identity against each matrix's solo baseline at every
// worker count, then (full mode) gate the paced shared run: the sum of the
// two solo paced-synchronous walls over the shared paced-pipelined wall
// must also clear the overlap gate. `--trace-out FILE` dumps the shared
// paced leg's TraceEvent stream + PipelineStats as JSON (the CI
// schedule-trace artifact).
//
// Every configuration lands in a fixed-schema support::BenchReport entry
// (op "chaos/<profile>/<mode>/w<N>", mb_per_s == cells/sec, checksum =
// CRC32 of the campaign report); the measured overlap ratio is recorded as
// the synthetic op "chaos/<profile>/overlap_x1000" (mb_per_s == ratio),
// so tools/bench_diff.py gates both bit-identity and the perf trajectory.
//
// Server-side chaos (experiment C6, docs/RESILIENCE.md): naming a DrmService
// chaos plan ("shard-crash", "brownout") instead of a network profile runs
// the recovery legs — the same matrix with the service itself misbehaving,
// the circuit breaker armed, and (brownout) a per-cell deadline budget. Each
// leg checks that every cell of the crashed shard completes as
// Full/Degraded/Partial (zero hung or lost cells), that sessions were
// actually dropped and reopened, and that the report — resilience counters
// included — replays bit-identically across the pipelined worker ladder.
// The counters themselves (reopens, breaker opens/fast-fails, sessions
// dropped, time-to-recover ticks) land as synthetic BenchReport rows so
// bench_diff gates the recovery trajectory, not just the wall clock.
//
// Usage: bench_chaos [--smoke] [--out BENCH_chaos.json] [--trace-out FILE]
//                    [profile|chaos-plan]
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/trace_export.hpp"
#include "ott/catalog.hpp"
#include "support/bench_report.hpp"
#include "support/bytes.hpp"
#include "support/crc32.hpp"
#include "widevine/protocol.hpp"

namespace {

using namespace wideleak;

std::uint32_t checksum_of(const std::string& s) {
  return crc32(
      BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

/// Wait-wall target as a multiple of measured CPU: the calibrated pacing
/// makes the matrix spend ~12 units of wall-clock waiting per unit of CPU.
/// The synchronous baseline pays all of it inline (wall ~= (1 + ratio) x
/// CPU); the pipelined wall only grows with the residual tail of waits no
/// schedule could hide, so a deeper wait regime widens the measured gap —
/// and 12x is still comfortably inside the paper's overnight-campaign
/// network-bound regime (a license round trip costs ~100x a CENC decrypt).
constexpr double kWaitToCpuRatio = 12.0;
/// The acceptance floor for pipelined@8 vs synchronous@1 cells/sec — the
/// order-of-magnitude target; overlap_x1000 rows record the trajectory
/// toward the full 10x.
constexpr double kOverlapGate = 8.0;

struct RunOutcome {
  core::CampaignResult result;
  std::string report;
  std::uint32_t crc = 0;
};

RunOutcome run_config(const core::CampaignSpec& base, core::ExecutionMode mode,
                      std::size_t workers, std::uint64_t wall_us_per_tick) {
  core::CampaignSpec spec = base;
  spec.mode = mode;
  spec.workers = workers;
  spec.pacing.wall_us_per_tick = wall_us_per_tick;
  core::CampaignRunner runner(std::move(spec));
  RunOutcome out{runner.run(), {}, 0};
  out.report = core::render_campaign_report(out.result);
  out.crc = checksum_of(out.report);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_chaos.json";
  std::string trace_out_path;
  std::vector<net::FaultProfile> profiles;
  std::vector<std::string> service_plans;
  bool selected = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    widevine::ChaosPlan probe;
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out_path = argv[++i];
    } else if (const auto chosen = net::fault_profile_from_string(arg)) {
      profiles = {*chosen};
      selected = true;
    } else if (widevine::chaos_plan_from_string(arg, probe) && !probe.empty()) {
      // A DrmService chaos plan name selects the recovery legs only.
      service_plans = {arg};
      selected = true;
    } else {
      std::cerr << "usage: bench_chaos [--smoke] [--out FILE] [--trace-out FILE] "
                   "[profile|chaos-plan]\n";
      return 2;
    }
  }
  if (!selected) {
    profiles = smoke ? std::vector<net::FaultProfile>{net::FaultProfile::FlakyCdn}
                     : std::vector<net::FaultProfile>{
                           net::FaultProfile::None, net::FaultProfile::FlakyCdn,
                           net::FaultProfile::FlakyLicense,
                           net::FaultProfile::ByzantineLicense};
    // Full mode also walks the service-side recovery legs; the smoke default
    // stays network-only (CI runs the recovery smoke as its own explicit
    // `bench_chaos --smoke shard-crash` step).
    if (!smoke) service_plans = {"shard-crash", "brownout"};
  }

  // Same sizing rationale as bench_campaign: a catalog subset covering all
  // three device classes; the audit pass is where faults (and waits) bite,
  // so the rip stays off. Smoke trims the app axis for CI.
  std::vector<const char*> names = {"Netflix", "Amazon Prime Video"};
  if (!smoke) {
    names.push_back("Disney+");
    names.push_back("Hulu");
  }
  core::CampaignSpec base;
  for (const char* name : names) {
    const auto app = ott::find_app(name);
    if (!app) {
      std::cerr << "unknown catalog app: " << name << "\n";
      return 2;
    }
    base.apps.push_back(*app);
  }
  base.attempt_rip = false;

  // The overlap matrix: every catalog app the ladder uses plus four more,
  // giving the paced legs 24 concurrent cells. The wait tail a scheduler
  // cannot hide is per-chain; spreading the same fault profile over twice
  // the chains halves the tail as a fraction of the total obligation.
  core::CampaignSpec overlap_base;
  if (!smoke) {
    for (const char* name : {"Netflix", "Amazon Prime Video", "Disney+", "Hulu",
                             "myCANAL", "Showtime", "OCS", "Salto"}) {
      const auto app = ott::find_app(name);
      if (!app) {
        std::cerr << "unknown catalog app: " << name << "\n";
        return 2;
      }
      overlap_base.apps.push_back(*app);
    }
    overlap_base.attempt_rip = false;
  }

  // flaky-license needs a wider matrix than flaky-cdn: its exhausted retry
  // ladders concentrate ~18% of the whole matrix's wait obligation in ONE
  // cell's serial backoff chain at 24 cells, and no scheduler can hide a
  // chain from itself — the achievable ratio caps at ~5.5x regardless of
  // pacing. Ten catalog apps x 4 device profiles (the study's three plus a
  // legacy-CDM-on-modern-L1 row, the CDM-override axis CampaignDeviceProfile
  // was built for) spreads the ladders over 40 chains, dropping the worst
  // chain to ~8% of the obligation and putting the makespan floor back
  // under the gate with margin.
  core::CampaignSpec license_overlap_base;
  if (!smoke) {
    for (const char* name :
         {"Netflix", "Disney+", "Amazon Prime Video", "Hulu", "HBO Max",
          "Starz", "myCANAL", "Showtime", "OCS", "Salto"}) {
      const auto app = ott::find_app(name);
      if (!app) {
        std::cerr << "unknown catalog app: " << name << "\n";
        return 2;
      }
      license_overlap_base.apps.push_back(*app);
    }
    license_overlap_base.profiles = core::study_device_profiles();
    license_overlap_base.profiles.push_back(
        {.name = "modern-l1-legacycdm",
         .device_class = core::DeviceClass::ModernL1,
         .cdm_override = widevine::kLegacyCdm});
    license_overlap_base.attempt_rip = false;
  }

  std::cout << "CHAOS BENCH: " << base.apps.size() << " apps x 3 profiles, "
            << profiles.size() << " chaos profile(s)" << (smoke ? " (smoke)" : "")
            << "\n\n";

  support::BenchReport bench("chaos");
  int rc = 0;

  for (const net::FaultProfile profile : profiles) {
    core::CampaignSpec spec = base;
    spec.chaos = profile;
    const std::string tag = "chaos/" + std::string(net::to_string(profile));

    std::cout << "=== chaos profile: " << net::to_string(profile) << " ===\n";

    // --- Unpaced baseline: the seed's synchronous single-worker runner.
    // Doubles as calibration: CPU cost and simulated-wait volume.
    const RunOutcome baseline =
        run_config(spec, core::ExecutionMode::Synchronous, 1, 0);
    const std::uint64_t wait_ticks = baseline.result.stats.totals.sim_wait_ticks;
    const std::size_t cells = baseline.result.cells.size();

    std::size_t full = 0, degraded = 0, partial = 0;
    for (const core::CellResult& cell : baseline.result.cells) {
      switch (cell.outcome) {
        case core::CellOutcome::Full: ++full; break;
        case core::CellOutcome::Degraded: ++degraded; break;
        case core::CellOutcome::Partial: ++partial; break;
      }
    }
    std::cout << "cells: " << full << " full, " << degraded << " degraded, " << partial
              << " partial; net " << baseline.result.stats.totals.net_attempts
              << " attempts / " << baseline.result.stats.totals.net_retries
              << " retries / " << baseline.result.stats.totals.net_giveups
              << " giveups; " << baseline.result.stats.totals.faults_injected
              << " faults injected; " << wait_ticks << " wait ticks\n";

    auto record = [&](const std::string& op, const RunOutcome& run,
                      std::uint32_t ref_crc, std::size_t ncells) {
      const bool identical = run.crc == ref_crc;
      if (!identical) rc = 1;
      const double cells_per_sec =
          ncells / std::max(run.result.stats.wall_ms, 1.0) * 1000.0;
      bench.add(op, static_cast<std::uint64_t>(ncells) * 1'000'000,
                static_cast<std::uint64_t>(run.result.stats.wall_ms * 1e6), run.crc);
      std::cout.setf(std::ios::fixed);
      std::cout.precision(0);
      std::cout << "  " << op << ": " << run.result.stats.wall_ms << " ms, ";
      std::cout.precision(2);
      std::cout << cells_per_sec << " cells/s, "
                << (identical ? "bit-identical" : "MISMATCH") << "\n";
      std::cout.unsetf(std::ios::fixed);
      return cells_per_sec;
    };

    record(tag + "/synchronous/w1", baseline, baseline.crc, cells);

    // --- Unpaced pipelined sweep: bit-identity at every worker count.
    const std::vector<std::size_t> ladder =
        smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};
    for (const std::size_t workers : ladder) {
      const RunOutcome run =
          run_config(spec, core::ExecutionMode::Pipelined, workers, 0);
      record(tag + "/pipelined/w" + std::to_string(workers), run, baseline.crc, cells);
    }

    // --- Paced overlap measurement: waits now cost wall time. Full mode
    // runs this on the wider overlap matrix with its own unpaced baseline
    // (for calibration and for the CRC the paced legs must match), then
    // calibrates so the matrix's total wait obligation is kWaitToCpuRatio
    // x its CPU cost. Smoke keeps the paced leg (timer wheel + checksum
    // path stay exercised in CI) but on the small matrix with a token
    // pacing instead of the full calibrated wall.
    const bool overlap_profile = profile == net::FaultProfile::FlakyCdn ||
                                 profile == net::FaultProfile::FlakyLicense;
    if (wait_ticks > 0 && overlap_profile) {
      core::CampaignSpec ospec =
          smoke ? spec
                : (profile == net::FaultProfile::FlakyLicense ? license_overlap_base
                                                              : overlap_base);
      ospec.chaos = profile;
      RunOutcome obase_run;
      if (!smoke) {
        obase_run = run_config(ospec, core::ExecutionMode::Synchronous, 1, 0);
      }
      const RunOutcome& obase = smoke ? baseline : obase_run;
      const std::size_t ocells = obase.result.cells.size();
      const double ocpu_ms = obase.result.stats.wall_ms;
      const std::uint64_t owait_ticks = obase.result.stats.totals.sim_wait_ticks;
      if (!smoke) {
        record(tag + "/overlap-synchronous/w1", obase, obase.crc, ocells);
      }

      const std::uint64_t us_per_tick =
          smoke ? 500
                : std::max<std::uint64_t>(
                      1, static_cast<std::uint64_t>(
                             kWaitToCpuRatio * ocpu_ms * 1000.0 /
                             static_cast<double>(std::max<std::uint64_t>(
                                 1, owait_ticks))));
      std::cout << "  pacing: " << us_per_tick << " us/tick (" << owait_ticks
                << " ticks" << (smoke ? ", token smoke pacing" : " ~ 12x CPU")
                << ")\n";

      const RunOutcome paced_sync =
          run_config(ospec, core::ExecutionMode::Synchronous, 1, us_per_tick);
      const double sync_cps =
          record(tag + "/paced-synchronous/w1", paced_sync, obase.crc, ocells);
      // Profile-guided pipelined leg: the synchronous baseline just measured
      // every cell's exact wait on this deterministic matrix — feed it
      // forward so the scheduler opens the longest-waiting chains' windows
      // first instead of rediscovering their debt one park at a time.
      core::CampaignSpec hinted = ospec;
      for (const core::CellResult& cell : paced_sync.result.cells) {
        hinted.schedule_wait_hints.push_back(cell.stats.sim_wait_ticks);
      }
      const RunOutcome paced_pipe =
          run_config(hinted, core::ExecutionMode::Pipelined, 8, us_per_tick);
      const double pipe_cps =
          record(tag + "/paced-pipelined/w8", paced_pipe, obase.crc, ocells);

      const double ratio = pipe_cps / std::max(sync_cps, 1e-9);
      // mb_per_s == the measured overlap ratio (bytes/ns scaling: ratio
      // encoded so bench_diff's drop tolerance gates the trajectory).
      bench.add(tag + "/overlap_x1000",
                static_cast<std::uint64_t>(ratio * 1'000'000.0), 1'000'000'000,
                obase.crc);

      const bool gated = !smoke;
      std::cout.setf(std::ios::fixed);
      std::cout.precision(2);
      std::cout << "  overlap: pipelined@8 " << ratio
                << "x the synchronous baseline cells/sec";
      if (gated && ratio < kOverlapGate) {
        std::cout << " — BELOW the " << kOverlapGate << "x gate";
        rc = 1;
      } else if (gated) {
        std::cout << " (gate " << kOverlapGate << "x: OK)";
      }
      std::cout << "\n";
      std::cout.unsetf(std::ios::fixed);
    }
    std::cout << "\n";
  }

  // --- Cross-profile shared scheduling: flaky-cdn + flaky-license into ONE
  // TaskQueue (run_campaigns_shared). Runs on the default profile set only;
  // an explicit profile/plan selection keeps the historical single-matrix
  // behaviour.
  if (!selected && !profiles.empty()) {
    std::cout << "=== shared queue: flaky-cdn + flaky-license ===\n";
    const core::CampaignSpec& shared_base = smoke ? base : overlap_base;
    std::vector<core::CampaignSpec> specs(2, shared_base);
    specs[0].chaos = net::FaultProfile::FlakyCdn;
    specs[1].chaos = net::FaultProfile::FlakyLicense;
    const std::vector<const char*> spec_tags = {"flaky-cdn", "flaky-license"};

    // Solo unpaced baselines: the per-spec reference CRCs every shared run
    // must reproduce, and the calibration inputs for the shared pacing (one
    // queue, one tick->wall rate across both matrices).
    std::vector<RunOutcome> solos;
    double cpu_ms = 0.0;
    std::uint64_t wait_ticks = 0;
    std::size_t total_cells = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      solos.push_back(run_config(specs[i], core::ExecutionMode::Synchronous, 1, 0));
      cpu_ms += solos[i].result.stats.wall_ms;
      wait_ticks += solos[i].result.stats.totals.sim_wait_ticks;
      total_cells += solos[i].result.cells.size();
      const double cps = solos[i].result.cells.size() /
                         std::max(solos[i].result.stats.wall_ms, 1.0) * 1000.0;
      bench.add("chaos/shared/" + std::string(spec_tags[i]) + "/synchronous/w1",
                static_cast<std::uint64_t>(solos[i].result.cells.size()) * 1'000'000,
                static_cast<std::uint64_t>(solos[i].result.stats.wall_ms * 1e6),
                solos[i].crc);
      std::cout.setf(std::ios::fixed);
      std::cout.precision(2);
      std::cout << "  chaos/shared/" << spec_tags[i] << "/synchronous/w1: " << cps
                << " cells/s (solo baseline)\n";
      std::cout.unsetf(std::ios::fixed);
    }

    // One record lambda for shared runs: per-spec bit-identity against the
    // solo baselines, one BenchReport row over the combined matrix (the
    // shared wall is a property of the queue, not of either spec).
    auto record_shared = [&](const std::string& op,
                             const std::vector<core::CampaignResult>& results) {
      bool identical = true;
      std::string combined;
      for (std::size_t i = 0; i < results.size(); ++i) {
        const std::string report = core::render_campaign_report(results[i]);
        combined += report;
        if (checksum_of(report) != solos[i].crc) {
          identical = false;
          std::cout << "  " << op << ": " << spec_tags[i]
                    << " report DIVERGED from its solo baseline\n";
        }
      }
      if (!identical) rc = 1;
      const double wall_ms = results.front().stats.wall_ms;
      const double cps = total_cells / std::max(wall_ms, 1.0) * 1000.0;
      bench.add(op, static_cast<std::uint64_t>(total_cells) * 1'000'000,
                static_cast<std::uint64_t>(wall_ms * 1e6), checksum_of(combined));
      std::cout.setf(std::ios::fixed);
      std::cout.precision(0);
      std::cout << "  " << op << ": " << wall_ms << " ms, ";
      std::cout.precision(2);
      std::cout << cps << " cells/s, "
                << (identical ? "bit-identical" : "MISMATCH") << "\n";
      std::cout.unsetf(std::ios::fixed);
      return cps;
    };

    // Unpaced shared ladder: bit-identity at every worker count.
    const std::vector<std::size_t> ladder =
        smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};
    for (const std::size_t workers : ladder) {
      core::SharedCampaignConfig config;
      config.workers = workers;
      record_shared("chaos/shared/pipelined/w" + std::to_string(workers),
                    run_campaigns_shared(specs, config));
    }

    // Paced shared leg. Full mode calibrates one rate over the combined
    // matrices and gates sum(solo paced-sync walls) / shared pipelined wall
    // against the overlap gate; smoke keeps a token-paced w2 leg so the
    // shared timer-wheel path stays exercised in CI.
    const std::uint64_t us_per_tick =
        smoke ? 500
              : std::max<std::uint64_t>(
                    1, static_cast<std::uint64_t>(
                           kWaitToCpuRatio * cpu_ms * 1000.0 /
                           static_cast<double>(std::max<std::uint64_t>(1, wait_ticks))));
    const std::size_t shared_workers = smoke ? 2 : 8;
    std::cout << "  pacing: " << us_per_tick << " us/tick (" << wait_ticks
              << " ticks" << (smoke ? ", token smoke pacing" : " ~ 12x CPU") << ")\n";

    double sync_wall_ms = 0.0;
    if (!smoke) {
      for (std::size_t i = 0; i < specs.size(); ++i) {
        const RunOutcome paced =
            run_config(specs[i], core::ExecutionMode::Synchronous, 1, us_per_tick);
        if (paced.crc != solos[i].crc) {
          std::cout << "  chaos/shared paced-sync " << spec_tags[i] << ": MISMATCH\n";
          rc = 1;
        }
        sync_wall_ms += paced.result.stats.wall_ms;
        // Feed each spec's measured per-cell waits forward into the shared
        // pipelined leg (profile-guided scheduling; reports can't see it).
        specs[i].schedule_wait_hints.clear();
        for (const core::CellResult& cell : paced.result.cells) {
          specs[i].schedule_wait_hints.push_back(cell.stats.sim_wait_ticks);
        }
      }
      bench.add("chaos/shared/paced-synchronous/w1",
                static_cast<std::uint64_t>(total_cells) * 1'000'000,
                static_cast<std::uint64_t>(sync_wall_ms * 1e6), solos[0].crc);
      std::cout.setf(std::ios::fixed);
      std::cout.precision(0);
      std::cout << "  chaos/shared/paced-synchronous/w1: " << sync_wall_ms
                << " ms (summed solo walls)\n";
      std::cout.unsetf(std::ios::fixed);
    }

    core::SharedCampaignConfig paced_config;
    paced_config.workers = shared_workers;
    paced_config.pacing.wall_us_per_tick = us_per_tick;
    paced_config.record_schedule_trace = !trace_out_path.empty();
    const std::vector<core::CampaignResult> paced_shared =
        run_campaigns_shared(specs, paced_config);
    record_shared("chaos/shared/paced-pipelined/w" + std::to_string(shared_workers),
                  paced_shared);

    if (!smoke) {
      const double shared_wall = std::max(paced_shared.front().stats.wall_ms, 1.0);
      const double ratio = sync_wall_ms / shared_wall;
      bench.add("chaos/shared/overlap_x1000",
                static_cast<std::uint64_t>(ratio * 1'000'000.0), 1'000'000'000,
                solos[0].crc);
      std::cout.setf(std::ios::fixed);
      std::cout.precision(2);
      std::cout << "  overlap: shared pipelined@" << shared_workers << " " << ratio
                << "x the summed paced-synchronous walls";
      if (ratio < kOverlapGate) {
        std::cout << " — BELOW the " << kOverlapGate << "x gate";
        rc = 1;
      } else {
        std::cout << " (gate " << kOverlapGate << "x: OK)";
      }
      std::cout << "\n";
      std::cout.unsetf(std::ios::fixed);
    }

    if (!trace_out_path.empty()) {
      // Merge the per-spec traces back into one stream (seq is the global
      // order; cell ids stay spec-local — pair them with the row order
      // above) and dump stats + events as the CI schedule-trace artifact.
      std::vector<core::TraceEvent> events;
      for (const core::CampaignResult& result : paced_shared) {
        events.insert(events.end(), result.trace.begin(), result.trace.end());
      }
      std::sort(events.begin(), events.end(),
                [](const core::TraceEvent& a, const core::TraceEvent& b) {
                  return a.seq < b.seq;
                });
      std::ofstream trace_file(trace_out_path);
      if (!trace_file) {
        std::cerr << "cannot write schedule trace to " << trace_out_path << "\n";
        return 2;
      }
      trace_file << core::schedule_trace_to_json(
                        events, paced_shared.front().stats.pipeline)
                 << "\n";
      std::cout << "  schedule trace (" << events.size() << " events) written to "
                << trace_out_path << "\n";
    }
    std::cout << "\n";
  }

  // --- Server-side chaos recovery legs (C6) --------------------------------
  for (const std::string& plan_name : service_plans) {
    core::CampaignSpec spec = base;
    spec.service_chaos = widevine::chaos_plan_for(plan_name);
    // The breaker is armed on every recovery leg: part of what the legs
    // measure is how much retry budget fast-fails save during an outage.
    spec.breaker.failure_threshold = 3;
    spec.breaker.open_ticks = 24;
    // The brownout leg runs under a per-cell deadline budget, so the
    // graceful-degradation path (deadline_exceeded Partial cells, cancelled
    // timer-wheel waits) is exercised and diffed too.
    if (plan_name == "brownout") spec.cell_deadline_ticks = 48;
    const std::string tag = "chaos-svc/" + plan_name;

    std::cout << "=== service chaos plan: " << plan_name << " ===\n";

    const RunOutcome baseline =
        run_config(spec, core::ExecutionMode::Synchronous, 1, 0);
    const std::size_t cells = baseline.result.cells.size();
    const core::CellStats& totals = baseline.result.stats.totals;

    std::size_t full = 0, degraded = 0, partial = 0;
    for (const core::CellResult& cell : baseline.result.cells) {
      switch (cell.outcome) {
        case core::CellOutcome::Full: ++full; break;
        case core::CellOutcome::Degraded: ++degraded; break;
        case core::CellOutcome::Partial: ++partial; break;
      }
    }
    std::cout << "cells: " << full << " full, " << degraded << " degraded, " << partial
              << " partial; " << totals.drm_sessions_dropped << " sessions dropped, "
              << totals.drm_shard_refusals << " shard refusals, "
              << totals.drm_brownout_denied << " brownout denials, "
              << totals.net_reopens << " reopens; breaker " << totals.breaker_opens
              << " opens / " << totals.breaker_fast_fails << " fast-fails; recovery "
              << totals.drm_recovery_ticks << " ticks; " << totals.deadline_cancelled
              << " cells past deadline\n";

    // Zero hung or lost cells: every matrix cell completed on an outcome.
    if (full + degraded + partial != cells) {
      std::cout << "  LOST CELLS: " << (cells - full - degraded - partial)
                << " cells completed on no outcome\n";
      rc = 1;
    }
    // The crash leg must actually bite: dropped sessions forced reopen
    // cycles. A silent no-op "recovery" bench would gate nothing.
    if (plan_name == "shard-crash" &&
        (totals.drm_sessions_dropped == 0 || totals.net_reopens == 0)) {
      std::cout << "  NO RECOVERY TRAFFIC: the crash window never dropped a "
                   "session or forced a reopen\n";
      rc = 1;
    }

    auto record = [&](const std::string& op, const RunOutcome& run) {
      const bool identical = run.crc == baseline.crc;
      if (!identical) rc = 1;
      const double cells_per_sec =
          cells / std::max(run.result.stats.wall_ms, 1.0) * 1000.0;
      bench.add(op, static_cast<std::uint64_t>(cells) * 1'000'000,
                static_cast<std::uint64_t>(run.result.stats.wall_ms * 1e6), run.crc);
      std::cout.setf(std::ios::fixed);
      std::cout.precision(0);
      std::cout << "  " << op << ": " << run.result.stats.wall_ms << " ms, ";
      std::cout.precision(2);
      std::cout << cells_per_sec << " cells/s, "
                << (identical ? "bit-identical" : "MISMATCH") << "\n";
      std::cout.unsetf(std::ios::fixed);
    };

    record(tag + "/synchronous/w1", baseline);
    const std::vector<std::size_t> ladder =
        smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};
    for (const std::size_t workers : ladder) {
      record(tag + "/pipelined/w" + std::to_string(workers),
             run_config(spec, core::ExecutionMode::Pipelined, workers, 0));
    }

    // Counter rows: value * 1e6 bytes over 1e9 ns makes mb_per_s == the
    // counter itself, checksummed against the baseline report — bench_diff
    // gates the recovery trajectory alongside the wall clock.
    const auto counter_row = [&](const char* name, std::uint64_t value) {
      bench.add(tag + "/" + name, value * 1'000'000, 1'000'000'000, baseline.crc);
      std::cout << "  " << tag << "/" << name << ": " << value << "\n";
    };
    counter_row("reopens", totals.net_reopens);
    counter_row("breaker_opens", totals.breaker_opens);
    counter_row("breaker_fast_fails", totals.breaker_fast_fails);
    counter_row("sessions_dropped", totals.drm_sessions_dropped);
    counter_row("recovery_ticks", totals.drm_recovery_ticks);
    if (spec.cell_deadline_ticks != 0) {
      counter_row("deadline_cancelled", totals.deadline_cancelled);
    }
    std::cout << "\n";
  }

  bench.write_file(out_path);
  std::cout << "[bench] report written to " << out_path << "\n";
  std::cout << "[bench] determinism + overlap gates: " << (rc == 0 ? "OK" : "FAILED")
            << "\n";
  return rc;
}
