// Data-plane throughput benchmark + bit-identity gate.
//
// Measures every layer the zero-copy CENC rewrite touched, against private
// copies of the seed implementations (kept verbatim here so the baseline
// stays stable no matter how the library evolves):
//
//   aes_ctr/seed_single_block   byte-at-a-time CTR over byte-wise AES (seed)
//   aes_ctr/batched_portable    library CTR, T-table engine forced
//   aes_ctr/batched_aesni       library CTR, AES-NI engine (when the CPU has it)
//   crc32/seed_bytewise         1-byte-per-iteration CRC (seed)
//   crc32/slice8                library slice-by-8 CRC
//   scan/seed_std_search        std::search magic scan (seed)
//   scan/memchr_hop             library memchr-hop prefilter scan
//   cenc/decrypt_track          end-to-end subsample decrypt, library path
//
// Every fast path's output is checksum-compared against its seed reference;
// any mismatch is a hard failure. In full mode the portable batched CTR
// must clear 4x the seed path's MB/s (the PR's acceptance floor).
//
// Usage: bench_dataplane [--smoke] [--out BENCH_dataplane.json]
#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "crypto/modes.hpp"
#include "hooking/memory.hpp"
#include "media/cenc.hpp"
#include "media/track.hpp"
#include "support/bench_report.hpp"
#include "support/bytes.hpp"
#include "support/crc32.hpp"
#include "support/rng.hpp"

namespace {

using namespace wideleak;

// --- Seed reference implementations (frozen copies of the pre-PR code) ----

namespace seedref {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16};

std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

std::uint32_t sub_word(std::uint32_t w) {
  return static_cast<std::uint32_t>(kSbox[(w >> 24) & 0xff]) << 24 |
         static_cast<std::uint32_t>(kSbox[(w >> 16) & 0xff]) << 16 |
         static_cast<std::uint32_t>(kSbox[(w >> 8) & 0xff]) << 8 |
         static_cast<std::uint32_t>(kSbox[w & 0xff]);
}

std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

void add_round_key(std::uint8_t state[16], const std::uint32_t* rk) {
  for (int c = 0; c < 4; ++c) {
    state[4 * c + 0] ^= static_cast<std::uint8_t>(rk[c] >> 24);
    state[4 * c + 1] ^= static_cast<std::uint8_t>(rk[c] >> 16);
    state[4 * c + 2] ^= static_cast<std::uint8_t>(rk[c] >> 8);
    state[4 * c + 3] ^= static_cast<std::uint8_t>(rk[c]);
  }
}

void sub_bytes(std::uint8_t state[16]) {
  for (int i = 0; i < 16; ++i) state[i] = kSbox[state[i]];
}

void shift_rows(std::uint8_t state[16]) {
  std::uint8_t tmp[16];
  std::memcpy(tmp, state, 16);
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) state[4 * c + r] = tmp[4 * ((c + r) % 4) + r];
  }
}

void mix_columns(std::uint8_t state[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = state + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
    col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
  }
}

// Byte-wise AES-128 encryption, exactly as the seed did it.
class Aes {
 public:
  explicit Aes(BytesView key) {
    const std::size_t nk = key.size() / 4;
    rounds_ = static_cast<int>(nk) + 6;
    const std::size_t total_words = 4 * (static_cast<std::size_t>(rounds_) + 1);
    for (std::size_t i = 0; i < nk; ++i) {
      rk_[i] = static_cast<std::uint32_t>(key[4 * i]) << 24 |
               static_cast<std::uint32_t>(key[4 * i + 1]) << 16 |
               static_cast<std::uint32_t>(key[4 * i + 2]) << 8 | key[4 * i + 3];
    }
    std::uint32_t rcon = 0x01000000;
    for (std::size_t i = nk; i < total_words; ++i) {
      std::uint32_t temp = rk_[i - 1];
      if (i % nk == 0) {
        temp = sub_word(rot_word(temp)) ^ rcon;
        rcon = static_cast<std::uint32_t>(xtime(static_cast<std::uint8_t>(rcon >> 24))) << 24;
      } else if (nk == 8 && i % nk == 4) {
        temp = sub_word(temp);
      }
      rk_[i] = rk_[i - nk] ^ temp;
    }
  }

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
    std::uint8_t state[16];
    std::memcpy(state, in, 16);
    add_round_key(state, rk_.data());
    for (int round = 1; round < rounds_; ++round) {
      sub_bytes(state);
      shift_rows(state);
      mix_columns(state);
      add_round_key(state, rk_.data() + 4 * round);
    }
    sub_bytes(state);
    shift_rows(state);
    add_round_key(state, rk_.data() + 4 * rounds_);
    std::memcpy(out, state, 16);
  }

 private:
  std::array<std::uint32_t, 60> rk_{};
  int rounds_ = 0;
};

void increment_counter(std::array<std::uint8_t, 16>& counter) {
  for (int i = 15; i >= 8; --i) {
    if (++counter[static_cast<std::size_t>(i)] != 0) break;
  }
}

// Per-byte CTR stream, exactly as the seed AesCtrStream::process did it.
Bytes ctr_crypt(const Aes& aes, BytesView iv, BytesView data) {
  std::array<std::uint8_t, 16> counter{};
  std::memcpy(counter.data(), iv.data(), 16);
  std::array<std::uint8_t, 16> keystream{};
  std::size_t used = 16;
  Bytes out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (used == 16) {
      aes.encrypt_block(counter.data(), keystream.data());
      increment_counter(counter);
      used = 0;
    }
    out[i] = data[i] ^ keystream[used++];
  }
  return out;
}

// Byte-at-a-time CRC32, exactly as the seed crc32() did it.
std::uint32_t crc32_bytewise(BytesView data) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xffffffffu;
  for (std::uint8_t byte : data) c = table[(c ^ byte) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

// std::search scan with one-byte advance, exactly as the seed scan did it.
std::vector<std::size_t> scan_std_search(const Bytes& data, BytesView pattern) {
  std::vector<std::size_t> hits;
  auto it = data.begin();
  for (;;) {
    it = std::search(it, data.end(), pattern.begin(), pattern.end());
    if (it == data.end()) break;
    hits.push_back(static_cast<std::size_t>(std::distance(data.begin(), it)));
    ++it;
  }
  return hits;
}

}  // namespace seedref

// --- Harness --------------------------------------------------------------

std::uint64_t time_ns(const std::function<void()>& op, int reps) {
  std::uint64_t best = ~std::uint64_t{0};
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    op();
    const auto t1 = std::chrono::steady_clock::now();
    const auto ns =
        static_cast<std::uint64_t>(std::chrono::nanoseconds(t1 - t0).count());
    best = std::min(best, ns);
  }
  return best;
}

int g_failures = 0;

void require(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "FAIL: " << what << "\n";
    ++g_failures;
  }
}

double find_mbps(const support::BenchReport& report, const std::string& op) {
  for (const auto& e : report.entries()) {
    if (e.op == op) return e.mb_per_s;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_dataplane.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_dataplane [--smoke] [--out FILE]\n";
      return 2;
    }
  }

  const std::size_t ctr_bytes = smoke ? 256 * 1024 : 8 * 1024 * 1024;
  const std::size_t crc_bytes = smoke ? 1024 * 1024 : 32 * 1024 * 1024;
  const std::size_t scan_bytes = smoke ? 1024 * 1024 : 32 * 1024 * 1024;
  const int reps = smoke ? 2 : 3;

  Rng rng(0x7ea1);
  support::BenchReport report("dataplane");

  // --- AES-CTR: seed single-block vs batched portable vs AES-NI ----------
  const Bytes key = rng.next_bytes(16);
  const Bytes iv = rng.next_bytes(16);
  const Bytes payload = rng.next_bytes(ctr_bytes);

  const seedref::Aes seed_aes{BytesView(key)};
  Bytes seed_out;
  const std::uint64_t seed_ns = time_ns(
      [&] { seed_out = seedref::ctr_crypt(seed_aes, BytesView(iv), BytesView(payload)); }, reps);
  const std::uint32_t ctr_crc = crc32(BytesView(seed_out));
  report.add("aes_ctr/seed_single_block", payload.size(), seed_ns, ctr_crc);

  const crypto::Aes aes{BytesView(key)};
  crypto::set_aes_engine(crypto::AesEngine::Portable);
  Bytes portable_out;
  const std::uint64_t portable_ns = time_ns(
      [&] { portable_out = crypto::aes_ctr_crypt(aes, BytesView(iv), BytesView(payload)); },
      reps);
  report.add("aes_ctr/batched_portable", payload.size(), portable_ns,
             crc32(BytesView(portable_out)));
  require(portable_out == seed_out, "portable batched CTR output differs from seed path");

  crypto::set_aes_engine(crypto::AesEngine::Auto);
  if (crypto::aesni_available()) {
    Bytes aesni_out;
    const std::uint64_t aesni_ns = time_ns(
        [&] { aesni_out = crypto::aes_ctr_crypt(aes, BytesView(iv), BytesView(payload)); },
        reps);
    report.add("aes_ctr/batched_aesni", payload.size(), aesni_ns, crc32(BytesView(aesni_out)));
    require(aesni_out == seed_out, "AES-NI CTR output differs from seed path");
  }

  // --- CRC32: seed bytewise vs slice-by-8 --------------------------------
  const Bytes crc_payload = rng.next_bytes(crc_bytes);
  std::uint32_t crc_seed = 0;
  const std::uint64_t crc_seed_ns =
      time_ns([&] { crc_seed = seedref::crc32_bytewise(BytesView(crc_payload)); }, reps);
  report.add("crc32/seed_bytewise", crc_payload.size(), crc_seed_ns, crc_seed);

  std::uint32_t crc_fast = 0;
  const std::uint64_t crc_fast_ns =
      time_ns([&] { crc_fast = crc32(BytesView(crc_payload)); }, reps);
  report.add("crc32/slice8", crc_payload.size(), crc_fast_ns, crc_fast);
  require(crc_seed == crc_fast, "slice-by-8 CRC32 differs from seed bytewise CRC32");

  // --- Memory scan: std::search vs memchr-hop ----------------------------
  const Bytes magic = to_bytes("kbox");
  Bytes haystack = rng.next_bytes(scan_bytes);
  // Plant magics, including adjacent ones, at deterministic offsets.
  for (std::size_t off = 4096; off + magic.size() < haystack.size(); off += 65536) {
    std::memcpy(haystack.data() + off, magic.data(), magic.size());
  }
  std::vector<std::size_t> seed_hits;
  const std::uint64_t scan_seed_ns = time_ns(
      [&] { seed_hits = seedref::scan_std_search(haystack, BytesView(magic)); }, reps);
  const auto hits_crc = [](const std::vector<std::size_t>& hits) {
    Bytes buf;
    buf.reserve(hits.size() * 8);
    for (std::size_t h : hits) {
      for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(h >> (8 * i)));
    }
    return crc32(BytesView(buf));
  };
  report.add("scan/seed_std_search", haystack.size(), scan_seed_ns, hits_crc(seed_hits));

  hooking::ProcessMemory memory;
  memory.map_region("bench", BytesView(haystack));
  std::vector<std::size_t> fast_hits;
  const std::uint64_t scan_fast_ns = time_ns(
      [&] {
        fast_hits.clear();
        for (const hooking::ScanHit& hit : memory.scan(BytesView(magic))) {
          fast_hits.push_back(hit.offset);
        }
      },
      reps);
  report.add("scan/memchr_hop", haystack.size(), scan_fast_ns, hits_crc(fast_hits));
  require(fast_hits == seed_hits, "memchr-hop scan hits differ from std::search hits");

  // --- CENC end-to-end: package + decrypt a synthetic track --------------
  const std::size_t frame_count = smoke ? 64 : 512;
  const std::size_t frame_payload = 4096;
  std::vector<media::Frame> frames;
  frames.reserve(frame_count);
  for (std::size_t i = 0; i < frame_count; ++i) {
    media::Frame f;
    f.index = static_cast<std::uint32_t>(i);
    f.type = media::TrackType::Video;
    f.payload = rng.next_bytes(frame_payload);
    frames.push_back(std::move(f));
  }
  media::TrakBox trak;
  Rng pkg_rng(0xcafe);
  const media::KeyId kid = rng.next_bytes(16);
  const media::PackagedTrack track =
      media::package_encrypted(trak, frames, BytesView(key), kid, pkg_rng);

  Bytes clear;
  std::size_t track_bytes = 0;
  for (const Bytes& s : track.samples) track_bytes += s.size();
  const std::uint64_t cenc_ns =
      time_ns([&] { clear = media::cenc_decrypt_track(track, BytesView(key)); }, reps);
  report.add("cenc/decrypt_track", track_bytes, cenc_ns, crc32(BytesView(clear)));

  // Bit-identity against a seed-reference decrypt (per-subsample seed CTR).
  {
    Bytes ref;
    for (std::size_t i = 0; i < track.samples.size(); ++i) {
      const Bytes& sample = track.samples[i];
      const auto& entry = track.senc.entries[i];
      Bytes full_iv(entry.iv.begin(), entry.iv.end());
      full_iv.resize(16, 0x00);
      std::size_t pos = 0;
      Bytes protected_concat;
      for (const auto& sub : entry.subsamples) {
        pos += sub.clear_bytes;
        protected_concat.insert(protected_concat.end(), sample.begin() + static_cast<std::ptrdiff_t>(pos),
                                sample.begin() + static_cast<std::ptrdiff_t>(pos + sub.protected_bytes));
        pos += sub.protected_bytes;
      }
      const Bytes dec = seedref::ctr_crypt(seed_aes, BytesView(full_iv), BytesView(protected_concat));
      pos = 0;
      std::size_t dec_pos = 0;
      for (const auto& sub : entry.subsamples) {
        ref.insert(ref.end(), sample.begin() + static_cast<std::ptrdiff_t>(pos),
                   sample.begin() + static_cast<std::ptrdiff_t>(pos + sub.clear_bytes));
        pos += sub.clear_bytes;
        ref.insert(ref.end(), dec.begin() + static_cast<std::ptrdiff_t>(dec_pos),
                   dec.begin() + static_cast<std::ptrdiff_t>(dec_pos + sub.protected_bytes));
        dec_pos += sub.protected_bytes;
        pos += sub.protected_bytes;
      }
      ref.insert(ref.end(), sample.begin() + static_cast<std::ptrdiff_t>(pos), sample.end());
    }
    require(clear == ref, "cenc decrypt output differs from seed-reference decrypt");
  }

  // --- Report + gates -----------------------------------------------------
  report.write_file(out_path);
  std::cout << report.to_json();

  const double seed_mbps = find_mbps(report, "aes_ctr/seed_single_block");
  const double portable_mbps = find_mbps(report, "aes_ctr/batched_portable");
  const double speedup = seed_mbps > 0 ? portable_mbps / seed_mbps : 0.0;
  std::cout << "[gate] portable batched CTR speedup vs seed: " << speedup << "x\n";
  if (crypto::aesni_available()) {
    std::cout << "[info] AES-NI CTR: " << find_mbps(report, "aes_ctr/batched_aesni")
              << " MB/s\n";
  } else {
    std::cout << "[info] AES-NI not available on this CPU\n";
  }
  if (!smoke && speedup < 4.0) {
    std::cerr << "FAIL: portable batched CTR below the 4x acceptance floor\n";
    ++g_failures;
  }

  if (g_failures > 0) {
    std::cerr << "bench_dataplane: " << g_failures << " failure(s)\n";
    return 1;
  }
  std::cout << "bench_dataplane: all checksums bit-identical ("
            << (smoke ? "smoke" : "full") << " mode)\n";
  return 0;
}
