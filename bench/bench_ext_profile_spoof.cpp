// Experiment E1 (§V-C future work, implemented): the netflix-1080p exploit
// adapted to this ladder — does spoofing the security level in a forged
// license request yield HD keys on an L3 device?
//
// Paper context: "the Github project netflix-1080p explains how to get HD
// quality on L3 by just modifying the profiles to be sent to the CDN. This
// implies that there is no strong verification for web browsers."
//
// We sweep the server's level-verification mode:
//   Strict      (Android-style)  -> claim capped by factory certification,
//   TrustClient (browser-style)  -> HD keys granted to a forged L1 claim.
#include <iostream>

#include "core/key_ladder_attack.hpp"
#include "core/keybox_recovery.hpp"
#include "core/monitor.hpp"
#include "media/cenc.hpp"
#include "ott/catalog.hpp"
#include "ott/ecosystem.hpp"
#include "ott/playback.hpp"

namespace {

std::string pad(const std::string& s, std::size_t n) {
  std::string out = s;
  out.resize(std::max(n, out.size()), ' ');
  return out;
}

}  // namespace

int main() {
  using namespace wideleak;

  ott::StreamingEcosystem ecosystem;
  const auto profile = *ott::find_app("Showtime");
  ecosystem.install_app(profile);
  auto nexus5 = ecosystem.make_device(android::legacy_nexus5_spec(0x7001));

  // Step 1: the standard WideLeak credential theft on the legacy device.
  core::DrmApiMonitor monitor(*nexus5);
  ott::OttApp app(profile, ecosystem, *nexus5);
  if (!app.play_title().played) {
    std::cout << "setup playback failed\n";
    return 1;
  }
  const auto scan = core::recover_keybox(*nexus5);
  if (!scan.success()) {
    std::cout << "keybox recovery failed\n";
    return 1;
  }
  core::KeyLadderAttack ladder(*scan.keybox);
  const auto rsa = ladder.recover_device_rsa_key(monitor.trace());
  if (!rsa) {
    std::cout << "device RSA key recovery failed\n";
    return 1;
  }

  const auto& title = ecosystem.title_for(profile.name);
  std::vector<media::KeyId> kids;
  for (const auto& key : title.keys) kids.push_back(key.kid);

  std::cout << "E1: SECURITY-LEVEL SPOOFING vs LICENSE-SERVER VERIFICATION\n";
  std::cout << "(forged license requests from a recovered-credential L3 device, claiming L1)\n\n";
  std::cout << pad("server verification", 22) << pad("keys granted", 14)
            << pad("best quality", 14) << "HD leak?\n";
  std::cout << std::string(70, '-') << "\n";

  bool hd_leaked_when_trusting = false;
  for (const auto mode :
       {widevine::LevelVerification::Strict, widevine::LevelVerification::TrustClient}) {
    ecosystem.license_server().set_level_verification(mode);

    widevine::ClientIdentity spoofed = nexus5->identity();
    spoofed.level = widevine::SecurityLevel::L1;  // the lie
    Rng rng = ecosystem.fork_rng();
    const auto request = ladder.forge_license_request(spoofed, kids, rng);
    const auto response =
        ecosystem.license_server().handle(request, widevine::permissive_revocation_policy());
    const auto keys = ladder.decrypt_license_response(request, response);

    media::Resolution best;
    for (const auto& key : title.keys) {
      if (keys.contains(hex_encode(key.kid)) && key.resolution.height > best.height) {
        best = key.resolution;
      }
    }
    const bool hd = best.is_hd();
    if (mode == widevine::LevelVerification::TrustClient) hd_leaked_when_trusting = hd;
    std::cout << pad(mode == widevine::LevelVerification::Strict ? "Strict (Android)"
                                                                 : "TrustClient (browser)",
                     22)
              << pad(std::to_string(keys.size()) + "/" + std::to_string(title.keys.size()), 14)
              << pad(best.label(), 14) << (hd ? "YES - 1080p keys on an L3 device" : "no")
              << "\n";
  }
  ecosystem.license_server().set_level_verification(widevine::LevelVerification::Strict);

  std::cout << std::string(70, '-') << "\n";
  std::cout << "[shape] strict verification confines the attacker to sub-HD; trusting the\n"
               "        client's claim reproduces the browser-CDM HD leak of §V-C.\n";
  return hd_leaked_when_trusting ? 0 : 1;
}
