// Experiment C5: the multi-tenant DRM service under session-scale load.
//
// An open-loop multi-threaded load generator drives the shared
// widevine::DrmService with pre-signed license requests from N tenant
// apps' client fleets, across a shards x workers x tenants sweep:
//
//   - saturation legs (closed loop) measure sustained RPS per
//     configuration — the striped-lock payoff shows up as the s1 -> s64
//     delta at high worker counts;
//   - an open-loop leg replays a fixed arrival schedule at ~70% of the
//     measured saturation rate and reports p50/p99/p999 request latency;
//   - a serial leg exercises the deterministic policy machinery — LRU
//     eviction under a tight capacity, per-app admission quotas, and
//     token-bucket refill on a SimClock — twice, and fails (exit 1) if
//     the two outcome summaries are not bit-identical.
//
// Full mode drives >= 1M license requests total. Every leg lands in the
// fixed support::BenchReport schema (BENCH_license_service.json):
// throughput ops carry bytes = requests * 1000 so mb_per_s reads as
// kilo-requests/sec; latency and counter ops carry bytes = 0 (no
// throughput gating) with the leg's outcome CRC as the bit-identity
// witness for tools/bench_diff.py.
//
// Usage: bench_license_service [--smoke] [--out BENCH_license_service.json]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "crypto/hmac.hpp"
#include "support/bench_report.hpp"
#include "support/bytes.hpp"
#include "support/crc32.hpp"
#include "support/sim_clock.hpp"
#include "widevine/drm_service.hpp"
#include "widevine/key_ladder.hpp"
#include "widevine/keybox.hpp"

namespace {

using namespace wideleak;
using Clock = std::chrono::steady_clock;

std::uint32_t checksum_of(const std::string& s) {
  return crc32(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

std::uint64_t elapsed_ns(Clock::time_point start, Clock::time_point end) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count());
}

/// The tenant fleet: pre-registered devices and pre-signed license
/// requests, so the timed loops measure the service (KDF, signature
/// verification, key wrapping, session table), not client-side signing.
struct Fleet {
  std::shared_ptr<widevine::DeviceRootDatabase> roots;
  std::shared_ptr<widevine::LicenseServer> license;
  std::shared_ptr<widevine::ProvisioningServer> provisioning;
  widevine::RevocationPolicy policy = widevine::permissive_revocation_policy();
  std::size_t tenants = 0;
  std::size_t clients_per_tenant = 0;
  std::vector<widevine::LicenseRequest> requests;  // [tenant * clients + client]

  std::size_t tenant_of(std::size_t request_index) const {
    return request_index / clients_per_tenant;
  }
};

Fleet build_fleet(std::size_t tenants, std::size_t clients_per_tenant) {
  Fleet fleet;
  fleet.tenants = tenants;
  fleet.clients_per_tenant = clients_per_tenant;
  fleet.roots = std::make_shared<widevine::DeviceRootDatabase>();
  fleet.license = std::make_shared<widevine::LicenseServer>(fleet.roots, 0xC5BEEFULL);
  fleet.provisioning =
      std::make_shared<widevine::ProvisioningServer>(fleet.roots, 0xC5CAFEULL, 512);

  Rng rng(0xC5'5EED);
  for (std::size_t t = 0; t < tenants; ++t) {
    // Two content keys per tenant; every request asks for both.
    std::vector<media::KeyId> kids;
    for (std::size_t k = 0; k < 2; ++k) {
      media::KeyId kid = rng.next_bytes(16);
      fleet.license->add_generic_key(kid, SecretBytes(rng.next_bytes(16)));
      kids.push_back(std::move(kid));
    }
    for (std::size_t c = 0; c < clients_per_tenant; ++c) {
      const widevine::Keybox keybox = widevine::make_factory_keybox(
          "svc-t" + std::to_string(t) + "-c" + std::to_string(c), 0xC5);
      fleet.roots->register_device(keybox, widevine::SecurityLevel::L1);

      widevine::LicenseRequest request;
      request.client.stable_id = keybox.stable_id();
      request.client.device_model = "bench-device";
      request.client.cdm_version = widevine::kCurrentCdm;
      request.client.level = widevine::SecurityLevel::L1;
      request.nonce = rng.next_bytes(8);
      request.key_ids = kids;
      request.scheme = widevine::SignatureScheme::KeyboxCmac;
      const Bytes body = request.body();
      const widevine::SessionKeys keys =
          widevine::derive_session_keys(keybox.device_key(), body, body);
      request.signature = crypto::hmac_sha256(keys.mac_key_client, body);
      fleet.requests.push_back(std::move(request));
    }
  }
  return fleet;
}

/// Register every tenant on a service instance; AppId == tenant index.
void register_tenants(widevine::DrmService& service, const Fleet& fleet) {
  for (std::size_t t = 0; t < fleet.tenants; ++t) {
    service.register_app("svc-app-" + std::to_string(t));
  }
}

struct LoadResult {
  std::uint64_t requests = 0;
  std::uint64_t granted = 0;
  std::uint64_t ns = 0;
  std::vector<std::uint64_t> latencies_ns;  // open-loop legs only
};

/// Closed-loop saturation: `workers` threads replay the pool back to back.
LoadResult run_saturation(widevine::DrmService& service, const Fleet& fleet,
                          std::size_t workers, std::size_t tenants, std::uint64_t total) {
  const std::size_t pool = tenants * fleet.clients_per_tenant;
  std::vector<std::uint64_t> granted(workers, 0);
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      const std::uint64_t n = total / workers + (w < total % workers ? 1 : 0);
      std::uint64_t ok = 0;
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::size_t idx = (w + i * workers) % pool;
        const auto& request = fleet.requests[idx];
        const auto response = service.handle_license(
            static_cast<widevine::AppId>(fleet.tenant_of(idx)), request, fleet.policy, i);
        ok += response.granted ? 1 : 0;
      }
      granted[w] = ok;
    });
  }
  for (auto& t : threads) t.join();
  LoadResult result;
  result.requests = total;
  result.ns = elapsed_ns(start, Clock::now());
  for (const auto g : granted) result.granted += g;
  return result;
}

/// Open loop: each worker follows a fixed arrival schedule at `rps`
/// aggregate; per-request latency is measured from the *scheduled* arrival
/// (so queueing delay when the service falls behind counts, as it should).
LoadResult run_open_loop(widevine::DrmService& service, const Fleet& fleet,
                         std::size_t workers, double rps, std::uint64_t total) {
  const std::size_t pool = fleet.tenants * fleet.clients_per_tenant;
  const double per_worker_rps = rps / static_cast<double>(workers);
  const auto interarrival = std::chrono::nanoseconds(
      static_cast<std::uint64_t>(1e9 / std::max(per_worker_rps, 1.0)));
  std::vector<std::vector<std::uint64_t>> latencies(workers);
  std::vector<std::uint64_t> granted(workers, 0);
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      const std::uint64_t n = total / workers + (w < total % workers ? 1 : 0);
      latencies[w].reserve(n);
      std::uint64_t ok = 0;
      for (std::uint64_t i = 0; i < n; ++i) {
        const auto arrival = start + (i + 1) * interarrival;
        while (Clock::now() < arrival) {
          // Open-loop pacing: arrivals are independent of completions.
        }
        const std::size_t idx = (w + i * workers) % pool;
        const auto& request = fleet.requests[idx];
        const auto response = service.handle_license(
            static_cast<widevine::AppId>(fleet.tenant_of(idx)), request, fleet.policy, i);
        ok += response.granted ? 1 : 0;
        latencies[w].push_back(elapsed_ns(arrival, Clock::now()));
      }
      granted[w] = ok;
    });
  }
  for (auto& t : threads) t.join();
  LoadResult result;
  result.requests = total;
  result.ns = elapsed_ns(start, Clock::now());
  for (std::size_t w = 0; w < workers; ++w) {
    result.granted += granted[w];
    result.latencies_ns.insert(result.latencies_ns.end(), latencies[w].begin(),
                               latencies[w].end());
  }
  return result;
}

std::uint64_t percentile_ns(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// The deterministic serial leg: three fresh service instances exercising
/// (a) LRU reclaim under a tight capacity, (b) per-app admission quotas,
/// (c) token-bucket refill on a SimClock. Returns the outcome summary the
/// two runs must reproduce bit for bit.
struct SerialOutcome {
  std::string summary;
  std::uint64_t requests = 0;
  widevine::DrmServiceStats eviction_stats;
  widevine::DrmServiceStats admission_stats;
  widevine::DrmServiceStats bucket_stats;
};

SerialOutcome run_serial_policy_leg(const Fleet& fleet, std::size_t rounds) {
  SerialOutcome outcome;
  std::ostringstream summary;
  const std::size_t pool = fleet.tenants * fleet.clients_per_tenant;

  // (a) LRU eviction: capacity far below the client fleet.
  {
    widevine::DrmServiceConfig config;
    config.seed = 0xC5'0001;
    config.shard_count = 4;
    config.max_sessions = 24;
    widevine::DrmService service(fleet.license, fleet.provisioning, config);
    register_tenants(service, fleet);
    std::uint64_t granted = 0;
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t idx = 0; idx < pool; ++idx) {
        const auto response = service.handle_license(
            static_cast<widevine::AppId>(fleet.tenant_of(idx)), fleet.requests[idx],
            fleet.policy, r);
        granted += response.granted ? 1 : 0;
        ++outcome.requests;
      }
    }
    outcome.eviction_stats = service.stats();
    const auto& s = outcome.eviction_stats;
    summary << "evict: granted=" << granted << " opened=" << s.sessions_opened
            << " evicted=" << s.sessions_evicted << " live=" << s.live_sessions << "\n";
  }

  // (b) Admission control: one tenant, a quota of 6, every client knocking.
  {
    widevine::DrmServiceConfig config;
    config.seed = 0xC5'0002;
    config.max_sessions_per_app = 6;
    widevine::DrmService service(fleet.license, fleet.provisioning, config);
    register_tenants(service, fleet);
    std::uint64_t granted = 0;
    for (std::size_t c = 0; c < fleet.clients_per_tenant; ++c) {
      const auto response =
          service.handle_license(0, fleet.requests[c], fleet.policy, /*now=*/0);
      granted += response.granted ? 1 : 0;
      ++outcome.requests;
    }
    outcome.admission_stats = service.stats();
    const auto& s = outcome.admission_stats;
    summary << "admission: granted=" << granted << " rejected=" << s.admission_rejected
            << " live=" << s.live_sessions << "\n";
  }

  // (c) Token bucket on a SimClock: bursts against capacity 4, refill
  // 1/tick, with a tick advance between bursts.
  {
    widevine::DrmServiceConfig config;
    config.seed = 0xC5'0003;
    config.bucket_capacity = 4;
    config.tokens_per_tick = 1;
    support::SimClock clock;
    widevine::DrmService service(fleet.license, fleet.provisioning, config, &clock);
    register_tenants(service, fleet);
    std::uint64_t granted = 0;
    for (std::size_t burst = 0; burst < 4; ++burst) {
      for (std::size_t i = 0; i < 10; ++i) {
        const auto response = service.handle_license(0, fleet.requests[i % pool],
                                                     fleet.policy);  // now from the clock
        granted += response.granted ? 1 : 0;
        ++outcome.requests;
      }
      clock.advance(2);  // earns 2 tokens for the next burst
    }
    outcome.bucket_stats = service.stats();
    const auto& s = outcome.bucket_stats;
    summary << "bucket: granted=" << granted << " rate_limited=" << s.rate_limited << "\n";
  }

  outcome.summary = summary.str();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_license_service.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_license_service [--smoke] [--out FILE]\n";
      return 2;
    }
  }

  const std::size_t tenants = smoke ? 4 : 8;
  const std::size_t clients = smoke ? 16 : 64;
  const std::size_t wmax = std::clamp<std::size_t>(std::thread::hardware_concurrency(), 1, 8);
  const std::uint64_t sweep_requests = smoke ? 2'000 : 40'000;
  const std::uint64_t main_requests = smoke ? 6'000 : 600'000;
  const std::uint64_t open_loop_requests = smoke ? 4'000 : 280'000;
  const std::size_t serial_rounds = smoke ? 15 : 110;

  std::cout << "LICENSE SERVICE BENCH: " << tenants << " tenants x " << clients
            << " clients, up to " << wmax << " workers" << (smoke ? " (smoke)" : "")
            << "\n\n";

  const Fleet fleet = build_fleet(tenants, clients);
  support::BenchReport bench("license_service");
  int rc = 0;
  std::uint64_t total_requests = 0;

  // --- serial policy leg, twice: the determinism gate ------------------------
  const auto serial_start = Clock::now();
  const SerialOutcome serial_a = run_serial_policy_leg(fleet, serial_rounds);
  const std::uint64_t serial_ns = elapsed_ns(serial_start, Clock::now());
  const SerialOutcome serial_b = run_serial_policy_leg(fleet, serial_rounds);
  total_requests += serial_a.requests + serial_b.requests;
  const std::uint32_t serial_crc = checksum_of(serial_a.summary);
  const bool serial_identical = serial_a.summary == serial_b.summary;
  if (!serial_identical) rc = 1;
  std::cout << serial_a.summary << "serial policy leg: " << serial_a.requests
            << " requests x2, " << (serial_identical ? "bit-identical" : "MISMATCH")
            << "\n\n";
  bench.add("service/serial/policy", serial_a.requests * 1000, serial_ns, serial_crc);
  bench.add("service/serial/evicted", 0, serial_a.eviction_stats.sessions_evicted,
            serial_crc);
  bench.add("service/serial/admission_rejected", 0,
            serial_a.admission_stats.admission_rejected, serial_crc);
  bench.add("service/serial/rate_limited", 0, serial_a.bucket_stats.rate_limited,
            serial_crc);

  // --- shards x workers x tenants saturation sweep ---------------------------
  // Cells carry fixed labels (not s/w/t-derived) so the report's op set is
  // identical on every machine — bench_diff.py rejects duplicate ops, and
  // wmax collapses to 1 on a single-core runner.
  struct SweepCell {
    const char* label;
    std::size_t shards, workers, cell_tenants;
    std::uint64_t requests;
  };
  std::vector<SweepCell> cells = {
      {"service/sweep/shards1", 1, 1, tenants, sweep_requests},
      {"service/sweep/shards64", 64, 1, tenants, sweep_requests},
      {"service/sweep/parallel", 64, wmax, tenants, sweep_requests},
      {"service/sweep/one-tenant", 64, wmax, 1, sweep_requests},
      {"service/main", 64, wmax, tenants, main_requests},  // the headline configuration
  };

  std::cout << "shards x workers x tenants   requests      RPS    granted\n";
  double main_rps = 0.0;
  for (const SweepCell& cell : cells) {
    widevine::DrmServiceConfig config;
    config.seed = 0xC5'1000 + cell.shards;
    config.shard_count = cell.shards;
    widevine::DrmService service(fleet.license, fleet.provisioning, config);
    register_tenants(service, fleet);

    const LoadResult result =
        run_saturation(service, fleet, cell.workers, cell.cell_tenants, cell.requests);
    total_requests += result.requests;
    const double rps = static_cast<double>(result.requests) * 1e9 /
                       static_cast<double>(std::max<std::uint64_t>(result.ns, 1));
    // Every device is registered and no limit is configured, so the grant
    // count is a pure function of the request set — the bit-identity
    // witness for this leg.
    const bool all_granted = result.granted == result.requests;
    if (!all_granted) rc = 1;
    const std::string witness = "requests=" + std::to_string(result.requests) +
                                " granted=" + std::to_string(result.granted);
    bench.add(cell.label, result.requests * 1000, result.ns, checksum_of(witness));
    if (cell.requests == main_requests) main_rps = rps;

    std::cout.setf(std::ios::fixed);
    std::cout.precision(0);
    std::cout << "s" << cell.shards << "/w" << cell.workers << "/t" << cell.cell_tenants
              << "\t\t     " << result.requests << "\t  " << rps << "    "
              << (all_granted ? "all" : "MISSING") << "\n";
    std::cout.unsetf(std::ios::fixed);
  }

  // --- open-loop latency leg at ~70% of measured saturation ------------------
  {
    widevine::DrmServiceConfig config;
    config.seed = 0xC5'2000;
    config.shard_count = 64;
    widevine::DrmService service(fleet.license, fleet.provisioning, config);
    register_tenants(service, fleet);

    const double target_rps = std::max(main_rps * 0.7, 1000.0);
    LoadResult result =
        run_open_loop(service, fleet, wmax, target_rps, open_loop_requests);
    total_requests += result.requests;
    const bool all_granted = result.granted == result.requests;
    if (!all_granted) rc = 1;
    std::sort(result.latencies_ns.begin(), result.latencies_ns.end());
    const std::uint64_t p50 = percentile_ns(result.latencies_ns, 0.50);
    const std::uint64_t p99 = percentile_ns(result.latencies_ns, 0.99);
    const std::uint64_t p999 = percentile_ns(result.latencies_ns, 0.999);
    const double rps = static_cast<double>(result.requests) * 1e9 /
                       static_cast<double>(std::max<std::uint64_t>(result.ns, 1));
    const std::string witness = "requests=" + std::to_string(result.requests) +
                                " granted=" + std::to_string(result.granted);
    const std::uint32_t crc = checksum_of(witness);
    bench.add("service/openloop/rps", result.requests * 1000, result.ns, crc);
    bench.add("service/openloop/p50", 0, p50, crc);
    bench.add("service/openloop/p99", 0, p99, crc);
    bench.add("service/openloop/p999", 0, p999, crc);

    std::cout.setf(std::ios::fixed);
    std::cout.precision(0);
    std::cout << "\nopen loop @ " << target_rps << " RPS target: " << rps
              << " RPS sustained, latency p50 " << p50 / 1000 << " us, p99 "
              << p99 / 1000 << " us, p999 " << p999 / 1000 << " us\n";
    std::cout.unsetf(std::ios::fixed);
  }

  std::cout << "\ntotal license requests driven: " << total_requests << "\n";
  if (!smoke && total_requests < 1'000'000) {
    std::cerr << "[bench] FAIL: full mode must drive >= 1M requests\n";
    rc = 1;
  }

  bench.write_file(out_path);
  std::cout << "[bench] report written to " << out_path << "\n";
  std::cout << "[bench] gates: " << (rc == 0 ? "OK" : "FAILED") << "\n";
  return rc;
}
