// Experiment M1: microbenchmarks of the primitives the study's "easily
// automated" claim rests on — the whole attack pipeline is bounded by
// AES/CMAC/RSA/CENC throughput and the memory scan, all measured here with
// google-benchmark.
#include <benchmark/benchmark.h>

#include "crypto/aes.hpp"
#include "crypto/cmac.hpp"
#include "crypto/hmac.hpp"
#include "crypto/modes.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "core/keybox_recovery.hpp"
#include "media/cenc.hpp"
#include "media/content.hpp"
#include "widevine/key_ladder.hpp"
#include "widevine/keybox.hpp"

namespace {

using namespace wideleak;

void BM_AesEncryptBlock(benchmark::State& state) {
  Rng rng(1);
  const crypto::Aes aes(rng.next_bytes(16));
  crypto::AesBlock block{};
  for (auto _ : state) {
    block = aes.encrypt_block(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesEncryptBlock);

void BM_AesCtr(benchmark::State& state) {
  Rng rng(2);
  const crypto::Aes aes(rng.next_bytes(16));
  const Bytes iv = rng.next_bytes(16);
  const Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Bytes out = crypto::aes_ctr_crypt(aes, iv, data);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(1024)->Arg(16 * 1024)->Arg(256 * 1024);

void BM_Sha256(benchmark::State& state) {
  Rng rng(3);
  const Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Bytes digest = crypto::sha256(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1024)->Arg(64 * 1024);

void BM_AesCmac(benchmark::State& state) {
  Rng rng(4);
  const Bytes key = rng.next_bytes(16);
  const Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Bytes tag = crypto::aes_cmac(key, data);
    benchmark::DoNotOptimize(tag);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AesCmac)->Arg(256)->Arg(4096);

void BM_KeyLadderDerive(benchmark::State& state) {
  Rng rng(5);
  const Bytes root = rng.next_bytes(16);
  const Bytes context = rng.next_bytes(512);  // realistic request-body size
  for (auto _ : state) {
    auto keys = widevine::derive_session_keys(root, context, context);
    benchmark::DoNotOptimize(keys);
  }
}
BENCHMARK(BM_KeyLadderDerive);

void BM_RsaSignVerify(benchmark::State& state) {
  Rng rng(6);
  const auto key = crypto::rsa_generate(rng, static_cast<std::size_t>(state.range(0)));
  const Bytes message = rng.next_bytes(256);
  for (auto _ : state) {
    Bytes sig = crypto::rsa_pss_sign(key, rng, message);
    benchmark::DoNotOptimize(crypto::rsa_pss_verify(key.pub, message, sig));
  }
}
BENCHMARK(BM_RsaSignVerify)->Arg(1024)->Iterations(20)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RsaSignVerify)->Arg(2048)->Iterations(5)->Unit(benchmark::kMillisecond);

void BM_RsaOaepUnwrap(benchmark::State& state) {
  Rng rng(7);
  const auto key = crypto::rsa_generate(rng, 1024);
  const Bytes session_key = rng.next_bytes(16);
  const Bytes wrapped = crypto::rsa_oaep_encrypt(key.pub, rng, session_key);
  for (auto _ : state) {
    Bytes out = crypto::rsa_oaep_decrypt(key, wrapped);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("the per-license cost of the recovered-RSA-key attack path");
}
BENCHMARK(BM_RsaOaepUnwrap)->Unit(benchmark::kMicrosecond);

void BM_CencDecryptTrack(benchmark::State& state) {
  Rng rng(8);
  const auto frames = media::generate_track_frames(
      42, media::TrackType::Video, {960, 540}, static_cast<std::uint32_t>(state.range(0)));
  const Bytes key = rng.next_bytes(16);
  const media::KeyId kid = rng.next_bytes(16);
  media::TrakBox trak{.type = media::TrackType::Video, .resolution = {960, 540},
                      .language = "und"};
  const auto track = media::package_encrypted(trak, frames, key, kid, rng);
  for (auto _ : state) {
    Bytes clear = media::cenc_decrypt_track(track, key);
    benchmark::DoNotOptimize(clear);
  }
}
BENCHMARK(BM_CencDecryptTrack)->Arg(24)->Arg(240)->Unit(benchmark::kMicrosecond);

void BM_KeyboxScan(benchmark::State& state) {
  // Scan cost over growing process images — the attack's dominant step.
  Rng rng(9);
  hooking::ProcessMemory memory;
  const std::size_t total = static_cast<std::size_t>(state.range(0));
  for (std::size_t mapped = 0; mapped < total; mapped += 64 * 1024) {
    memory.map_region("heap" + std::to_string(mapped), rng.next_bytes(64 * 1024));
  }
  memory.map_region("keybox", widevine::make_factory_keybox("bench", 1).serialize());
  for (auto _ : state) {
    auto result = core::scan_for_keybox(memory);
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(memory.total_bytes()));
}
BENCHMARK(BM_KeyboxScan)->Arg(256 * 1024)->Arg(4 * 1024 * 1024)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
