// Experiment A1 (ablation): why exactly does the keybox scan work, and
// where does it stop working?
//
// Sweeps the attack preconditions the paper identifies:
//   (a) CDM generation — legacy L3 (raw keybox mapped, CWE-922) vs patched
//       L3 (XOR-masked only) vs L1 (keybox in TEE memory),
//   (b) candidate validation — magic alone vs magic+CRC (false positives
//       when decoy regions contain the magic bytes).
#include <iostream>

#include "core/keybox_recovery.hpp"
#include "ott/catalog.hpp"
#include "ott/ecosystem.hpp"
#include "ott/playback.hpp"

namespace {

std::string pad(const std::string& s, std::size_t n) {
  std::string out = s;
  out.resize(std::max(n, out.size()), ' ');
  return out;
}

}  // namespace

int main() {
  using namespace wideleak;

  ott::StreamingEcosystem ecosystem;
  const auto profile = *ott::find_app("Showtime");
  ecosystem.install_app(profile);

  struct Row {
    std::string label;
    android::DeviceSpec spec;
  };
  const std::vector<Row> rows = {
      {"legacy L3 (CDM 3.1, CWE-922)", android::legacy_nexus5_spec(0x6001)},
      {"patched L3 (CDM 15.0)", android::modern_l3_only_spec(0x6003)},
      {"L1 / TEE (CDM 15.0)", android::modern_l1_spec(0x6005)},
  };

  std::cout << "ABLATION A1: KEYBOX RECOVERY BY CDM GENERATION AND SECURITY LEVEL\n";
  std::cout << pad("configuration", 32) << pad("regions", 9) << pad("bytes", 9)
            << pad("magic hits", 12) << pad("CRC valid", 11) << "keybox recovered\n";
  std::cout << std::string(90, '-') << "\n";

  for (const Row& row : rows) {
    auto device = ecosystem.make_device(row.spec);
    // Drive a playback so the CDM touches all its working memory.
    ott::OttApp app(profile, ecosystem, *device);
    (void)app.play_title();

    const auto scan = core::recover_keybox(*device);
    std::cout << pad(row.label, 32) << pad(std::to_string(scan.regions_scanned), 9)
              << pad(std::to_string(scan.bytes_scanned), 9)
              << pad(std::to_string(scan.magic_hits), 12)
              << pad(std::to_string(scan.crc_validated), 11)
              << (scan.success() ? "YES (" + scan.source_region + ")" : "no") << "\n";
  }

  // (b) CRC ablation: plant decoy magics in a scratch process and compare
  // magic-only hits against CRC-validated hits.
  hooking::ProcessMemory decoys;
  Rng rng(0xDEC0);
  for (int i = 0; i < 32; ++i) {
    Bytes junk = rng.next_bytes(4096);
    // Plant the magic at a plausible offset with random (wrong) CRC bytes.
    const std::size_t at = 120 + 128 * static_cast<std::size_t>(i % 8);
    junk[at] = 'k'; junk[at + 1] = 'b'; junk[at + 2] = 'o'; junk[at + 3] = 'x';
    decoys.map_region("decoy" + std::to_string(i), junk);
  }
  const widevine::Keybox real = widevine::make_factory_keybox("decoy-device", 7);
  decoys.map_region("real_keybox", real.serialize());

  const auto scan = core::scan_for_keybox(decoys);
  std::cout << std::string(90, '-') << "\n";
  std::cout << "CRC ablation over " << scan.regions_scanned << " regions: " << scan.magic_hits
            << " magic candidates, " << scan.crc_validated
            << " survive CRC (magic alone would have produced "
            << scan.magic_hits - scan.crc_validated << " false positives)\n";
  return 0;
}
