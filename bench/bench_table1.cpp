// Experiment T1: regenerate Table I, the paper's central artifact.
//
// Paper (WideLeak, DSN'22, Table I):
//   - all 10 apps use Widevine (Amazon with a custom-DRM footnote),
//   - video always encrypted; subtitles always clear (unknown for
//     Hulu/Starz); audio clear for Netflix, myCANAL, Salto,
//   - key usage Minimum everywhere except Amazon (Recommended) and
//     Hulu/HBO Max (unknown),
//   - legacy playback: Disney+/HBO Max/Starz fail at provisioning, the
//     other seven play (Amazon via its custom DRM).
#include <chrono>
#include <iostream>

#include "core/report.hpp"
#include "ott/catalog.hpp"

int main() {
  using namespace wideleak;
  const auto t0 = std::chrono::steady_clock::now();

  ott::StreamingEcosystem ecosystem;
  ecosystem.install_catalog();
  core::WideleakStudy study(ecosystem);
  const auto audits = study.run_catalog();

  const auto t1 = std::chrono::steady_clock::now();
  std::cout << core::render_table_one(audits);
  std::cout << "\n[bench] full 10-app study wall time: "
            << std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0).count()
            << " ms\n";
  return 0;
}
