// Experiment F1: regenerate Figure 1 — "Encrypted Content Playback in
// Android" — as the observed message sequence, and time each stage.
//
// The paper's figure shows: MediaDrm(UUID) -> openSession -> getKeyRequest
// (opaque request to the License Server) -> provideKeyResponse -> media
// fetch -> queueSecureInputBuffer -> Decrypt. We print the hook trace of a
// real (simulated) playback and check that exact ordering.
#include <chrono>
#include <iostream>
#include <vector>

#include "core/monitor.hpp"
#include "ott/catalog.hpp"
#include "ott/ecosystem.hpp"
#include "ott/playback.hpp"

namespace {

// The Figure-1 milestones, in order.
const std::vector<std::string> kExpectedOrder = {
    "MediaDrm(UUID)",
    "MediaDrm.openSession",
    "MediaDrm.getKeyRequest",
    "MediaDrm.provideKeyResponse",
    "MediaCodec.queueSecureInputBuffer",
    "_oecc22_DecryptCENC",
};

}  // namespace

int main() {
  using namespace wideleak;

  ott::StreamingEcosystem ecosystem;
  const auto profile = *ott::find_app("Showtime");
  ecosystem.install_app(profile);
  auto device = ecosystem.make_device(android::modern_l1_spec(0xF161));

  core::DrmApiMonitor monitor(*device);
  ott::OttApp app(profile, ecosystem, *device);

  const auto t0 = std::chrono::steady_clock::now();
  const auto outcome = app.play_title();
  const auto t1 = std::chrono::steady_clock::now();

  std::cout << "FIGURE 1: ENCRYPTED CONTENT PLAYBACK IN ANDROID (observed sequence)\n";
  std::cout << "Application          Media DRM Server / CDM\n";
  std::cout << std::string(70, '-') << "\n";
  std::size_t shown = 0;
  for (const auto& name : monitor.call_sequence()) {
    const bool app_side = name.rfind("MediaDrm", 0) == 0 || name.rfind("MediaCrypto", 0) == 0 ||
                          name.rfind("MediaCodec", 0) == 0;
    if (name == "_oecc22_DecryptCENC" && ++shown > 1) continue;  // one Decrypt() row, as in the figure
    std::cout << (app_side ? "  " : "                       ") << name << "\n";
  }
  std::cout << std::string(70, '-') << "\n";

  // Verify the Figure-1 ordering.
  const auto sequence = monitor.call_sequence();
  std::size_t cursor = 0;
  for (const std::string& milestone : kExpectedOrder) {
    bool found = false;
    for (; cursor < sequence.size(); ++cursor) {
      if (sequence[cursor] == milestone) {
        found = true;
        ++cursor;
        break;
      }
    }
    if (!found) {
      std::cout << "ORDER VIOLATION: missing milestone " << milestone << "\n";
      return 1;
    }
  }
  std::cout << "Figure-1 milestone ordering: OK ("
            << (outcome.played ? "playback succeeded" : "playback FAILED") << ", "
            << outcome.frames_rendered << " frames, "
            << std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0).count()
            << " ms end-to-end)\n";
  return outcome.played ? 0 : 1;
}
