// Experiment Q3 (§IV-C): do OTT apps use multiple keys for content
// encryption, as Widevine recommends?
//
// Paper: every app uses distinct keys per video resolution (so breaking L3
// never yields HD); only Amazon gives audio its own key ("Recommended");
// Hulu and HBO Max stay inconclusive due to regional restrictions.
#include <iostream>

#include "core/asset_auditor.hpp"
#include "core/key_usage_auditor.hpp"
#include "core/monitor.hpp"
#include "core/network_monitor.hpp"
#include "ott/catalog.hpp"
#include "ott/ecosystem.hpp"
#include "ott/playback.hpp"

namespace {

std::string pad(const std::string& s, std::size_t n) {
  std::string out = s;
  out.resize(std::max(n, out.size()), ' ');
  return out;
}

}  // namespace

int main() {
  using namespace wideleak;

  ott::StreamingEcosystem ecosystem;
  ecosystem.install_catalog();
  auto device = ecosystem.make_device(android::modern_l1_spec(0x3001));

  std::cout << "Q3: WIDEVINE KEY USAGE\n";
  std::cout << pad("OTT", 20) << pad("VideoKids", 11) << pad("PerResolution", 15)
            << pad("AudioKey", 18) << "Verdict\n";
  std::cout << std::string(80, '-') << "\n";

  std::size_t minimum = 0, recommended = 0, unknown = 0;
  for (const auto& profile : ott::study_catalog()) {
    core::DrmApiMonitor cdm_monitor(*device);
    core::NetworkMonitor net_monitor(ecosystem.network(), ecosystem.fork_rng());
    ott::OttApp app(profile, ecosystem, *device);
    net_monitor.attach(app);
    (void)app.play_title();

    const auto manifest = net_monitor.harvest_manifest(&cdm_monitor);
    net::TrustStore trust;
    trust.add(ecosystem.root_ca());
    core::AssetAuditor auditor(ecosystem.network(), trust, ecosystem.fork_rng());
    const auto assets = auditor.audit(manifest);
    const auto usage = core::audit_key_usage(manifest, assets);

    switch (usage.verdict) {
      case core::KeyUsageVerdict::Minimum: ++minimum; break;
      case core::KeyUsageVerdict::Recommended: ++recommended; break;
      case core::KeyUsageVerdict::Unknown: ++unknown; break;
    }
    const std::string audio_cell = !usage.audio_encrypted
                                       ? "clear"
                                       : (usage.verdict == core::KeyUsageVerdict::Unknown
                                              ? "metadata hidden"
                                              : (usage.audio_shares_video_key ? "shares video key"
                                                                              : "distinct key"));
    std::cout << pad(profile.name, 20)
              << pad(std::to_string(usage.distinct_video_kids) + "/" +
                         std::to_string(usage.video_representations),
                     11)
              << pad(usage.video_keys_distinct_per_resolution ? "yes" : "no", 15)
              << pad(audio_cell, 18) << to_string(usage.verdict) << "\n";
  }
  std::cout << std::string(80, '-') << "\n";
  std::cout << "verdicts: " << minimum << " Minimum, " << recommended << " Recommended, "
            << unknown << " unknown (paper: 7 / 1 / 2)\n";
  return 0;
}
