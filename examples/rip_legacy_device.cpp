// The §IV-D PoC, narrated: recover the keybox from the discontinued
// device's CDM process (CVE-2021-0639), rebuild the key ladder from
// intercepted HAL traffic, and produce DRM-free media that plays on a PC
// with no app and no account.
#include <iostream>

#include "core/keybox_recovery.hpp"
#include "core/report.hpp"
#include "media/codec.hpp"
#include "ott/catalog.hpp"

int main() {
  using namespace wideleak;

  ott::StreamingEcosystem ecosystem;
  ecosystem.install_catalog();

  // The weakest link: a Nexus 5 stuck on Android 6.0.1 / Widevine L3
  // with CDM 3.1.0 — no more security updates, keybox stored insecurely.
  auto nexus5 = ecosystem.make_device(android::legacy_nexus5_spec(0xBADD));
  std::cout << "Target device: " << nexus5->spec().model << " (Android "
            << nexus5->spec().android_version << ", Widevine "
            << widevine::to_string(nexus5->security_level()) << ", CDM "
            << nexus5->spec().cdm_version.label() << ")\n\n";

  core::ContentRipper ripper(ecosystem, *nexus5);
  const std::vector<core::RipResult> results = ripper.rip_catalog();

  std::cout << core::render_rip_summary(results) << "\n";

  // Show that a successful rip really is DRM-free: decode it with the
  // stock player model and print what a "PC" would see.
  for (const core::RipResult& result : results) {
    if (!result.success) continue;
    const media::PlaybackReport playback = media::try_play(BytesView(result.drm_free_media));
    std::cout << result.app << ": reconstructed file = " << result.drm_free_media.size()
              << " bytes, " << playback.frames << " frames, video "
              << playback.resolution.label() << " (qHD cap: the license server never"
              << " sent HD keys to this L3 client)\n";
    break;  // one is enough for the demo
  }

  // And the contrast: the same scan against a modern patched device fails.
  auto pixel = ecosystem.make_device(android::modern_l1_spec(0xF00D));
  const auto scan = core::recover_keybox(*pixel);
  std::cout << "\nSame memory scan on a modern L1 device: "
            << (scan.success() ? "keybox FOUND (unexpected!)" : "no keybox found")
            << " (" << scan.regions_scanned << " regions, " << scan.bytes_scanned
            << " bytes scanned)\n";
  return 0;
}
