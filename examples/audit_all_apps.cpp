// Run the complete WideLeak study over the ten-app catalog and print
// Table I — the paper's main result — plus the per-question details.
#include <iostream>

#include "core/report.hpp"
#include "ott/catalog.hpp"

int main() {
  using namespace wideleak;

  std::cout << "Building the simulated OTT ecosystem (10 apps, 3 devices)...\n\n";
  ott::StreamingEcosystem ecosystem;
  ecosystem.install_catalog();

  core::WideleakStudy study(ecosystem);
  const std::vector<core::AppAudit> audits = study.run_catalog();

  std::cout << core::render_table_one(audits) << "\n";

  std::cout << "Q1 details (security level observed on each device class):\n";
  for (const core::AppAudit& audit : audits) {
    std::cout << "  " << audit.profile.name << ": TEE device -> "
              << (audit.usage_l1.observed_level
                      ? widevine::to_string(*audit.usage_l1.observed_level)
                      : "no Widevine")
              << " (" << audit.usage_l1.oecc_calls << " CDM calls), TEE-less device -> "
              << (audit.usage_l3.observed_level
                      ? widevine::to_string(*audit.usage_l3.observed_level)
                      : (audit.custom_drm_on_l3 ? "custom DRM" : "no Widevine"))
              << "\n";
  }

  std::cout << "\nQ3 details (key-id analysis):\n";
  for (const core::AppAudit& audit : audits) {
    std::cout << "  " << audit.profile.name << ": "
              << audit.key_usage.distinct_video_kids << " distinct video keys over "
              << audit.key_usage.video_representations << " qualities"
              << (audit.key_usage.video_keys_distinct_per_resolution ? " (distinct per resolution)"
                                                                     : "")
              << "; audio "
              << (audit.key_usage.audio_encrypted
                      ? (audit.key_usage.audio_shares_video_key ? "shares a video key"
                                                                : "has its own key")
                      : "in clear")
              << "\n";
  }

  std::cout << "\nQ4 details (discontinued Nexus 5, Android 6.0.1, CDM 3.1.0):\n";
  for (const core::AppAudit& audit : audits) {
    std::cout << "  " << audit.profile.name << ": " << core::to_string(audit.legacy.verdict)
              << (audit.legacy.detail.empty() ? "" : " — " + audit.legacy.detail) << "\n";
  }
  return 0;
}
