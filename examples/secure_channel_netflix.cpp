// Netflix's non-DASH "secure channel": the app never lets its URI manifest
// cross the network in the clear — it is AES-wrapped under a Widevine
// generic-crypto key. This example shows (a) why a plain MITM only sees
// ciphertext, and (b) how hooking _oecc42_GenericDecrypt's output buffer
// recovers the manifest anyway, exactly as the paper reports.
#include <iostream>

#include "core/monitor.hpp"
#include "core/network_monitor.hpp"
#include "ott/catalog.hpp"
#include "ott/playback.hpp"

int main() {
  using namespace wideleak;

  ott::StreamingEcosystem ecosystem;
  const auto netflix = *ott::find_app("Netflix");
  ecosystem.install_app(netflix);

  auto device = ecosystem.make_device(android::modern_l1_spec(0xCAFE));
  core::DrmApiMonitor cdm_monitor(*device);
  core::NetworkMonitor net_monitor(ecosystem.network(), ecosystem.fork_rng());

  ott::OttApp app(netflix, ecosystem, *device);
  net_monitor.attach(app);  // MITM + repinning bypass
  const auto outcome = app.play_title();
  std::cout << "playback: " << (outcome.played ? "ok" : "failed") << "\n";
  std::cout << "pin bypasses engaged: " << net_monitor.pin_bypasses() << "\n\n";

  // (a) What the wire shows for /manifest: an opaque envelope.
  for (const net::CapturedFlow& flow : net_monitor.flows()) {
    if (flow.request.path != "/manifest") continue;
    const auto type = flow.response.headers.count("content-type")
                          ? flow.response.headers.at("content-type")
                          : "?";
    std::cout << "MITM captured /manifest: " << flow.response.body.size()
              << " bytes, content-type=" << type << "\n";
    std::cout << "  body printable-ascii? "
              << (is_printable_ascii(BytesView(flow.response.body)) ? "yes" : "no (ciphertext)")
              << "\n";
  }

  // (b) What the CDM hook dumped: the decrypted manifest.
  const auto dumps = cdm_monitor.dumped_outputs("_oecc42_GenericDecrypt");
  std::cout << "\n_oecc42_GenericDecrypt output dumps: " << dumps.size() << "\n";
  const auto harvested = net_monitor.harvest_manifest(&cdm_monitor);
  if (harvested.mpd) {
    std::cout << "manifest recovered via " << harvested.source << ": title=\""
              << harvested.mpd->title << "\", " << harvested.mpd->representations.size()
              << " representations; first video URL: "
              << harvested.mpd->of_type(media::TrackType::Video).front()->base_url << "\n";
  } else {
    std::cout << "manifest NOT recovered\n";
  }
  return harvested.mpd ? 0 : 1;
}
