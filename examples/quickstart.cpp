// Quickstart: build the simulated streaming world, play one protected title
// on a modern Android device, and watch the Widevine activity the WideLeak
// monitor records — the Figure-1 flow, end to end, in ~40 lines of API use.
#include <iostream>

#include "core/monitor.hpp"
#include "ott/catalog.hpp"
#include "ott/ecosystem.hpp"
#include "ott/playback.hpp"

int main() {
  using namespace wideleak;

  // 1. The world: root CA, Widevine servers, one OTT service.
  ott::StreamingEcosystem ecosystem;
  const auto profile = *ott::find_app("Showtime");
  ecosystem.install_app(profile);

  // 2. A modern TEE phone with a factory keybox.
  auto device = ecosystem.make_device(android::modern_l1_spec(/*seed=*/42));

  // 3. Attach the WideLeak DRM API monitor (Frida-equivalent, needs root).
  core::DrmApiMonitor monitor(*device);

  // 4. The app logs in and plays a title: manifest over pinned TLS,
  //    provisioning, license exchange, secure decode.
  ott::OttApp app(profile, ecosystem, *device);
  const ott::PlaybackOutcome outcome = app.play_title();

  std::cout << "played: " << (outcome.played ? "yes" : "no") << " ("
            << outcome.frames_rendered << " frames at "
            << outcome.video_resolution.label() << ")\n";

  // 5. What the monitor saw.
  const core::WidevineUsageReport usage = monitor.usage_report();
  std::cout << "widevine used: " << (usage.widevine_used ? "yes" : "no")
            << ", level: "
            << (usage.observed_level ? widevine::to_string(*usage.observed_level) : "?")
            << ", CDM calls intercepted: " << usage.oecc_calls << "\n";

  std::cout << "\ncall sequence (first 12):\n";
  const auto sequence = monitor.call_sequence();
  for (std::size_t i = 0; i < sequence.size() && i < 12; ++i) {
    std::cout << "  " << i << ". " << sequence[i] << "\n";
  }
  return outcome.played && usage.widevine_used ? 0 : 1;
}
