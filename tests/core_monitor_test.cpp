// WideLeak monitor tests: DRM API tracing/classification and the network
// monitor (MITM + repinning bypass + manifest harvesting).
#include <gtest/gtest.h>

#include "core/monitor.hpp"
#include "core/network_monitor.hpp"
#include "ott/catalog.hpp"
#include "ott/ecosystem.hpp"
#include "ott/playback.hpp"

namespace wideleak::core {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecosystem_ = new ott::StreamingEcosystem();
    ecosystem_->install_catalog();
  }

  static ott::StreamingEcosystem& eco() { return *ecosystem_; }
  static ott::StreamingEcosystem* ecosystem_;
};

ott::StreamingEcosystem* MonitorTest::ecosystem_ = nullptr;

TEST_F(MonitorTest, ClassifiesL1ByOemCryptoModule) {
  auto device = eco().make_device(android::modern_l1_spec(0x1101));
  DrmApiMonitor monitor(*device);
  ott::OttApp app(*ott::find_app("Showtime"), eco(), *device);
  ASSERT_TRUE(app.play_title().played);
  const WidevineUsageReport report = monitor.usage_report();
  EXPECT_TRUE(report.widevine_used);
  EXPECT_EQ(report.observed_level, widevine::SecurityLevel::L1);
  EXPECT_GT(report.oecc_calls, 0u);
  EXPECT_GT(report.media_drm_calls, 0u);
}

TEST_F(MonitorTest, ClassifiesL3WhenCallsStayInWvDrmEngine) {
  auto device = eco().make_device(android::legacy_nexus5_spec(0x1102));
  DrmApiMonitor monitor(*device);
  ott::OttApp app(*ott::find_app("Showtime"), eco(), *device);
  ASSERT_TRUE(app.play_title().played);
  const WidevineUsageReport report = monitor.usage_report();
  EXPECT_TRUE(report.widevine_used);
  EXPECT_EQ(report.observed_level, widevine::SecurityLevel::L3);
  EXPECT_FALSE(monitor.trace().touched_module(widevine::kOemCryptoModule));
}

TEST_F(MonitorTest, NoWidevineActivityForCustomDrm) {
  auto device = eco().make_device(android::modern_l3_only_spec(0x1103));
  DrmApiMonitor monitor(*device);
  ott::OttApp app(*ott::find_app("Amazon Prime Video"), eco(), *device);
  ASSERT_TRUE(app.play_title().played);
  const WidevineUsageReport report = monitor.usage_report();
  EXPECT_FALSE(report.widevine_used);
  EXPECT_FALSE(report.observed_level.has_value());
}

TEST_F(MonitorTest, EmptyTraceReportsNoUsage) {
  auto device = eco().make_device(android::modern_l1_spec(0x1104));
  DrmApiMonitor monitor(*device);
  const WidevineUsageReport report = monitor.usage_report();
  EXPECT_FALSE(report.widevine_used);
  EXPECT_EQ(report.oecc_calls, 0u);
}

TEST_F(MonitorTest, ClearResetsTheTrace) {
  auto device = eco().make_device(android::modern_l1_spec(0x1105));
  DrmApiMonitor monitor(*device);
  ott::OttApp app(*ott::find_app("OCS"), eco(), *device);
  ASSERT_TRUE(app.play_title().played);
  EXPECT_GT(monitor.trace().size(), 0u);
  monitor.clear();
  EXPECT_EQ(monitor.trace().size(), 0u);
}

TEST_F(MonitorTest, DumpsGenericDecryptOutput) {
  auto device = eco().make_device(android::modern_l1_spec(0x1106));
  DrmApiMonitor monitor(*device);
  ott::OttApp app(*ott::find_app("Netflix"), eco(), *device);
  ASSERT_TRUE(app.play_title().played);
  const auto dumps = monitor.dumped_outputs("_oecc42_GenericDecrypt");
  ASSERT_FALSE(dumps.empty());
  // The dumped plaintext is Netflix's manifest.
  const media::Mpd mpd = media::Mpd::parse(to_string(BytesView(dumps[0])));
  EXPECT_FALSE(mpd.representations.empty());
}

TEST_F(MonitorTest, DecryptCencOutputIsNotDumped) {
  // The secure decode path must not leak frame plaintext into the trace
  // (MovieStealer's failure mode).
  auto device = eco().make_device(android::modern_l1_spec(0x1107));
  DrmApiMonitor monitor(*device);
  ott::OttApp app(*ott::find_app("Showtime"), eco(), *device);
  ASSERT_TRUE(app.play_title().played);
  const auto outputs = monitor.dumped_outputs("_oecc22_DecryptCENC");
  ASSERT_FALSE(outputs.empty());
  for (const Bytes& out : outputs) EXPECT_TRUE(out.empty());
}

// --- NetworkMonitor ---------------------------------------------------------

TEST_F(MonitorTest, BypassCountsPinnedHandshakes) {
  auto device = eco().make_device(android::modern_l1_spec(0x1108));
  NetworkMonitor net_monitor(eco().network(), eco().fork_rng());
  ott::OttApp app(*ott::find_app("Salto"), eco(), *device);
  net_monitor.attach(app);
  ASSERT_TRUE(app.play_title().played);
  EXPECT_GT(net_monitor.pin_bypasses(), 0u);
  EXPECT_FALSE(net_monitor.flows().empty());
}

TEST_F(MonitorTest, HarvestsPlainManifestFromMitm) {
  auto device = eco().make_device(android::modern_l1_spec(0x1109));
  NetworkMonitor net_monitor(eco().network(), eco().fork_rng());
  ott::OttApp app(*ott::find_app("myCANAL"), eco(), *device);
  net_monitor.attach(app);
  ASSERT_TRUE(app.play_title().played);
  const HarvestedManifest manifest = net_monitor.harvest_manifest(nullptr);
  ASSERT_TRUE(manifest.mpd.has_value());
  EXPECT_EQ(manifest.source, "mitm");
  EXPECT_EQ(manifest.cdn_host, "cdn.mycanal.example");
  EXPECT_FALSE(manifest.mpd->of_type(media::TrackType::Video).empty());
}

TEST_F(MonitorTest, NetflixManifestNeedsTheCdmTrace) {
  auto device = eco().make_device(android::modern_l1_spec(0x110A));
  DrmApiMonitor cdm_monitor(*device);
  NetworkMonitor net_monitor(eco().network(), eco().fork_rng());
  ott::OttApp app(*ott::find_app("Netflix"), eco(), *device);
  net_monitor.attach(app);
  ASSERT_TRUE(app.play_title().played);
  // MITM alone: ciphertext only.
  EXPECT_FALSE(net_monitor.harvest_manifest(nullptr).mpd.has_value());
  // With the CDM generic-decrypt dump: recovered.
  const HarvestedManifest manifest = net_monitor.harvest_manifest(&cdm_monitor);
  ASSERT_TRUE(manifest.mpd.has_value());
  EXPECT_EQ(manifest.source, "cdm-generic-decrypt");
}

TEST_F(MonitorTest, OpaqueSubtitleTokensAreCapturedButUnresolvable) {
  auto device = eco().make_device(android::modern_l1_spec(0x110B));
  NetworkMonitor net_monitor(eco().network(), eco().fork_rng());
  ott::OttApp app(*ott::find_app("Hulu"), eco(), *device);
  net_monitor.attach(app);
  ASSERT_TRUE(app.play_title().played);
  const HarvestedManifest manifest = net_monitor.harvest_manifest(nullptr);
  ASSERT_TRUE(manifest.mpd.has_value());
  EXPECT_FALSE(manifest.opaque_subtitle_tokens.empty());
  // The harvested MPD carries no subtitle URIs — Table I's "-".
  EXPECT_TRUE(manifest.mpd->of_type(media::TrackType::Subtitle).empty());
}

TEST_F(MonitorTest, CapturedLicenseFlowsCarryProtocolMessages) {
  auto device = eco().make_device(android::modern_l1_spec(0x110C));
  NetworkMonitor net_monitor(eco().network(), eco().fork_rng());
  ott::OttApp app(*ott::find_app("OCS"), eco(), *device);
  net_monitor.attach(app);
  ASSERT_TRUE(app.play_title().played);
  bool saw_license = false;
  for (const net::CapturedFlow& flow : net_monitor.flows()) {
    if (flow.request.path != "/license") continue;
    saw_license = true;
    const auto request = widevine::LicenseRequest::deserialize(flow.request.body);
    EXPECT_FALSE(request.key_ids.empty());
    const auto response = widevine::LicenseResponse::deserialize(flow.response.body);
    EXPECT_TRUE(response.granted);
  }
  EXPECT_TRUE(saw_license);
}

}  // namespace
}  // namespace wideleak::core
