// Property-based sweeps: randomized roundtrip/invariant checks across the
// stack, parameterized over seeds so each instance explores a different
// region of the input space.
#include <gtest/gtest.h>

#include "crypto/hmac.hpp"
#include "crypto/modes.hpp"
#include "media/cenc.hpp"
#include "media/codec.hpp"
#include "net/tls.hpp"
#include "support/byte_io.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"
#include "widevine/keybox.hpp"
#include "widevine/key_ladder.hpp"

namespace wideleak {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng_{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --- CENC: arbitrary frame mixes survive encrypt/decrypt --------------------

TEST_P(SeededProperty, CencRoundTripRandomTracks) {
  const auto type = static_cast<media::TrackType>(1 + rng_.next_below(3));
  const media::Resolution res =
      type == media::TrackType::Video
          ? media::standard_quality_ladder()[rng_.next_below(6)]
          : media::Resolution{};
  const auto frames = media::generate_track_frames(
      rng_.next_u64(), type, res, 1 + static_cast<std::uint32_t>(rng_.next_below(30)));
  const Bytes key = rng_.next_bytes(16);
  media::TrakBox trak{.type = type, .resolution = res, .language = "xx"};
  const auto track = media::package_encrypted(trak, frames, key, rng_.next_bytes(16), rng_);

  // Invariant 1: ciphertext never plays.
  EXPECT_FALSE(media::try_play(BytesView(media::raw_sample_stream(track))).playable);
  // Invariant 2: decryption is exact.
  EXPECT_EQ(media::cenc_decrypt_track(track, key), media::serialize_frames(frames));
  // Invariant 3: file roundtrip preserves everything.
  const auto restored = media::PackagedTrack::from_file(BytesView(track.to_file()));
  EXPECT_EQ(media::cenc_decrypt_track(restored, key), media::serialize_frames(frames));
}

// --- frame parser: never mis-parses corrupted records -------------------------

TEST_P(SeededProperty, FrameParserRejectsRandomCorruption) {
  const auto frames = media::generate_track_frames(rng_.next_u64(), media::TrackType::Video,
                                                   {640, 360}, 1);
  Bytes wire = frames[0].serialize();
  for (int trial = 0; trial < 20; ++trial) {
    Bytes corrupted = wire;
    const std::size_t flips = 1 + rng_.next_below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      corrupted[rng_.next_below(corrupted.size())] ^=
          static_cast<std::uint8_t>(1 + rng_.next_below(255));
    }
    if (corrupted == wire) continue;
    const auto parsed = media::Frame::parse(corrupted);
    // Either rejected, or the corruption did not touch the parsed record's
    // meaning (impossible here since CRC covers all bytes) — so: rejected.
    EXPECT_FALSE(parsed.has_value());
  }
}

// --- byte reader: fuzzing truncations never reads out of bounds ----------------

TEST_P(SeededProperty, ByteReaderSurvivesTruncationFuzz) {
  ByteWriter w;
  w.u32(rng_.next_below(1000));
  w.var_bytes(rng_.next_bytes(rng_.next_below(50)));
  w.u64(rng_.next_u64());
  w.var_string("hello");
  const Bytes full = w.take();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    ByteReader r(BytesView(full.data(), cut));
    try {
      r.u32();
      (void)r.var_bytes();
      r.u64();
      (void)r.var_string();
    } catch (const ParseError&) {
      // expected for most cuts; the point is: no crash, no UB
    }
  }
}

// --- keybox: bit flips never validate -------------------------------------------

TEST_P(SeededProperty, KeyboxBitFlipsNeverValidate) {
  const widevine::Keybox keybox =
      widevine::make_factory_keybox("prop-" + std::to_string(GetParam()), GetParam());
  const Bytes raw = keybox.serialize();
  for (int trial = 0; trial < 50; ++trial) {
    Bytes flipped = raw;
    flipped[rng_.next_below(flipped.size())] ^=
        static_cast<std::uint8_t>(1 << rng_.next_below(8));
    EXPECT_FALSE(widevine::Keybox::parse(flipped).has_value());
  }
}

// --- key ladder: derived keys are pairwise distinct across contexts -------------

TEST_P(SeededProperty, LadderKeysNeverCollideAcrossContexts) {
  const Bytes root = rng_.next_bytes(16);
  const Bytes ctx1 = rng_.next_bytes(64);
  Bytes ctx2 = ctx1;
  ctx2[rng_.next_below(ctx2.size())] ^= 0x01;
  const auto k1 = widevine::derive_session_keys(root, ctx1, ctx1);
  const auto k2 = widevine::derive_session_keys(root, ctx2, ctx2);
  EXPECT_NE(k1.enc_key, k2.enc_key);
  EXPECT_NE(k1.mac_key_server, k2.mac_key_server);
  EXPECT_NE(k1.mac_key_client, k2.mac_key_client);
}

// --- TLS records: random sizes roundtrip, any tamper is caught ------------------

TEST_P(SeededProperty, TlsRecordsRoundTripAndAuthenticate) {
  const Bytes enc = rng_.next_bytes(16);
  const Bytes mac = rng_.next_bytes(32);
  const Bytes iv = rng_.next_bytes(8);
  net::TlsSession sender(enc, mac, iv);
  net::TlsSession receiver(enc, mac, iv);
  for (int i = 0; i < 5; ++i) {
    const Bytes message = rng_.next_bytes(rng_.next_below(2000));
    const Bytes record = sender.seal(message);
    Bytes tampered = record;
    tampered[rng_.next_below(tampered.size())] ^= 0x80;
    net::TlsSession probe(enc, mac, iv);
    // Align the probe's sequence to this record before the tamper check.
    for (int j = 0; j < i; ++j) probe.seal({});
    EXPECT_EQ(receiver.open(record), message);
  }
}

TEST_P(SeededProperty, TlsTamperedRecordsAlwaysRejected) {
  const Bytes enc = rng_.next_bytes(16);
  const Bytes mac = rng_.next_bytes(32);
  const Bytes iv = rng_.next_bytes(8);
  net::TlsSession sender(enc, mac, iv);
  const Bytes record = sender.seal(rng_.next_bytes(100));
  for (int trial = 0; trial < 10; ++trial) {
    Bytes tampered = record;
    tampered[rng_.next_below(tampered.size())] ^=
        static_cast<std::uint8_t>(1 + rng_.next_below(255));
    if (tampered == record) continue;
    net::TlsSession receiver(enc, mac, iv);
    EXPECT_THROW(receiver.open(tampered), CryptoError);
  }
}

// --- HMAC/CMAC cross-checks -------------------------------------------------------

TEST_P(SeededProperty, MacForgeryAttemptsFail) {
  const Bytes key = rng_.next_bytes(32);
  const Bytes message = rng_.next_bytes(64);
  const Bytes tag = crypto::hmac_sha256(key, message);
  for (int trial = 0; trial < 20; ++trial) {
    Bytes forged_tag = rng_.next_bytes(32);
    // Collision filter on random forgeries, not an auth decision. wl-lint: ct-ok
    if (forged_tag == tag) continue;
    EXPECT_FALSE(crypto::hmac_sha256_verify(key, message, forged_tag));
  }
}

// --- CBC/CTR interplay: modes never agree ------------------------------------------

TEST_P(SeededProperty, CbcAndCtrProduceDifferentCiphertexts) {
  const crypto::Aes aes(rng_.next_bytes(16));
  const Bytes iv = rng_.next_bytes(16);
  const Bytes plain = rng_.next_bytes(64);
  EXPECT_NE(crypto::aes_cbc_encrypt_nopad(aes, iv, plain),
            crypto::aes_ctr_crypt(aes, iv, plain));
}

// --- subsample layout sweep ----------------------------------------------------------

class SubsampleLayout : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Layouts, SubsampleLayout, ::testing::Range(0, 8));

TEST_P(SubsampleLayout, ArbitraryClearProtectedSplitsDecrypt) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const Bytes key = rng.next_bytes(16);
  const crypto::Aes aes(key);
  const Bytes plaintext = rng.next_bytes(64 + rng.next_below(400));

  // Build a random multi-subsample sample.
  media::SampleEncryptionEntry entry;
  entry.iv = rng.next_bytes(8);
  Bytes full_iv = entry.iv;
  full_iv.resize(16, 0);
  crypto::AesCtrStream stream(aes, full_iv);
  Bytes sample;
  std::size_t pos = 0;
  while (pos < plaintext.size()) {
    const std::size_t clear = std::min<std::size_t>(rng.next_below(20), plaintext.size() - pos);
    const std::size_t protected_len =
        std::min<std::size_t>(1 + rng.next_below(100), plaintext.size() - pos - clear);
    sample.insert(sample.end(), plaintext.begin() + static_cast<std::ptrdiff_t>(pos),
                  plaintext.begin() + static_cast<std::ptrdiff_t>(pos + clear));
    const Bytes ct =
        stream.process(BytesView(plaintext.data() + pos + clear, protected_len));
    sample.insert(sample.end(), ct.begin(), ct.end());
    entry.subsamples.push_back({static_cast<std::uint16_t>(clear),
                                static_cast<std::uint32_t>(protected_len)});
    pos += clear + protected_len;
    if (protected_len == 0 && clear == 0) break;
  }

  // Decrypt with a fresh stream, as MediaCrypto does: concatenate protected
  // ranges, one continuous keystream.
  Bytes protected_concat;
  pos = 0;
  for (const auto& sub : entry.subsamples) {
    pos += sub.clear_bytes;
    protected_concat.insert(protected_concat.end(),
                            sample.begin() + static_cast<std::ptrdiff_t>(pos),
                            sample.begin() + static_cast<std::ptrdiff_t>(pos + sub.protected_bytes));
    pos += sub.protected_bytes;
  }
  crypto::AesCtrStream dec_stream(aes, full_iv);
  const Bytes decrypted = dec_stream.process(protected_concat);

  Bytes reconstructed;
  pos = 0;
  std::size_t dec_pos = 0;
  for (const auto& sub : entry.subsamples) {
    reconstructed.insert(reconstructed.end(),
                         sample.begin() + static_cast<std::ptrdiff_t>(pos),
                         sample.begin() + static_cast<std::ptrdiff_t>(pos + sub.clear_bytes));
    pos += sub.clear_bytes;
    reconstructed.insert(reconstructed.end(),
                         decrypted.begin() + static_cast<std::ptrdiff_t>(dec_pos),
                         decrypted.begin() + static_cast<std::ptrdiff_t>(dec_pos + sub.protected_bytes));
    dec_pos += sub.protected_bytes;
    pos += sub.protected_bytes;
  }
  EXPECT_EQ(reconstructed, plaintext);
}

}  // namespace
}  // namespace wideleak
