// Unit tests for the wideleak-lint analyzer library: the cross-TU symbol
// index, the WL007/WL008/WL009 dataflow rules, suppression handling, the
// report emitters (JSON / SARIF schema shape) and the baseline round-trip.
//
// The fixture corpus under tools/lint_fixtures exercises the rules
// end-to-end through the CLI self-test; these tests pin the library-level
// contracts the CLI builds on.
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"

namespace lint = wideleak::lint;

namespace {

std::vector<lint::Violation> rule_findings(const std::vector<lint::Violation>& all,
                                           const std::string& rule) {
  std::vector<lint::Violation> out;
  for (const lint::Violation& v : all) {
    if (v.rule == rule) out.push_back(v);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Symbol index
// ---------------------------------------------------------------------------

TEST(SymbolIndex, HarvestsGuardedFields) {
  const std::string src = R"(
    #include <mutex>
    class Counter {
     private:
      std::mutex mutex_;
      int value_ WL_GUARDED_BY(mutex_) = 0;
      long total_ WL_GUARDED_BY(other_mutex_);
      std::mutex other_mutex_;
    };
  )";
  const lint::SymbolIndex index = lint::build_symbol_index({{"counter.hpp", src}});
  ASSERT_EQ(index.guarded_fields.size(), 2u);

  const lint::GuardedField* value = index.find_field("Counter", "value_");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->mutex, "mutex_");
  EXPECT_EQ(value->file, "counter.hpp");

  const lint::GuardedField* total = index.find_field("Counter", "total_");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->mutex, "other_mutex_");

  EXPECT_EQ(index.find_field("Counter", "mutex_"), nullptr);
  EXPECT_EQ(index.find_field("Other", "value_"), nullptr);
}

TEST(SymbolIndex, HarvestsRequiredMethodsInClassAndOutOfLine) {
  const std::string header = R"(
    class Store {
     public:
      void put_locked(int v) WL_REQUIRES(mutex_);
     private:
      std::mutex mutex_;
    };
  )";
  const std::string impl = R"(
    void Store::take_locked(int v) WL_REQUIRES(mutex_) { use(v); }
  )";
  const lint::SymbolIndex index =
      lint::build_symbol_index({{"store.hpp", header}, {"store.cpp", impl}});

  const lint::RequiredMethod* put = index.find_method("Store", "put_locked");
  ASSERT_NE(put, nullptr);
  EXPECT_EQ(put->mutex, "mutex_");
  EXPECT_EQ(put->file, "store.hpp");

  const lint::RequiredMethod* take = index.find_method("Store", "take_locked");
  ASSERT_NE(take, nullptr);
  EXPECT_EQ(take->mutex, "mutex_");
  EXPECT_EQ(take->file, "store.cpp");
}

TEST(SymbolIndex, CrossTuIndexFlagsImplementationFile) {
  // The annotation lives in the header; the unlocked access lives in the
  // implementation file. Only a shared index connects the two.
  const std::string header = R"(
    class Gauge {
     public:
      void set(int v);
      int peek() const;
     private:
      std::mutex mutex_;
      int level_ WL_GUARDED_BY(mutex_);
    };
  )";
  const std::string impl = R"(
    void Gauge::set(int v) {
      const std::lock_guard<std::mutex> lock(mutex_);
      level_ = v;
    }
    int Gauge::peek() const { return level_; }
  )";
  const lint::SymbolIndex index =
      lint::build_symbol_index({{"gauge.hpp", header}, {"gauge.cpp", impl}});
  lint::Options options;
  options.index = &index;

  const auto header_findings = lint::lint_source("gauge.hpp", header, options);
  EXPECT_TRUE(rule_findings(header_findings, "WL008").empty());

  const auto impl_findings = lint::lint_source("gauge.cpp", impl, options);
  const auto wl008 = rule_findings(impl_findings, "WL008");
  ASSERT_EQ(wl008.size(), 1u);  // set() is clean, peek() is not
  EXPECT_NE(wl008[0].message.find("level_"), std::string::npos);
}

TEST(SymbolIndex, RequiresCallSiteChecked) {
  const std::string src = R"(
    class Q {
     public:
      void locked_op() WL_REQUIRES(m_) {}
      void good() {
        const std::scoped_lock lock(m_);
        locked_op();
      }
      void bad() { locked_op(); }
     private:
      std::mutex m_;
    };
  )";
  const auto findings = lint::lint_source("q.hpp", src);
  const auto wl008 = rule_findings(findings, "WL008");
  ASSERT_EQ(wl008.size(), 1u);
  EXPECT_NE(wl008[0].message.find("locked_op"), std::string::npos);
}

// ---------------------------------------------------------------------------
// WL007 taint dataflow
// ---------------------------------------------------------------------------

TEST(TaintFlow, ChainedAssignmentReachesSink) {
  const std::string src = R"(
    void leak(const SecretBytes& device_key) {
      Bytes a = device_key.reveal_copy();
      Bytes b = a;
      WL_LOG(Info) << hex_encode(b);
    }
  )";
  const auto wl007 = rule_findings(lint::lint_source("src/x.cpp", src), "WL007");
  ASSERT_EQ(wl007.size(), 1u);
  EXPECT_NE(wl007[0].message.find("'b'"), std::string::npos);
}

TEST(TaintFlow, OverwriteClearsTaint) {
  const std::string src = R"(
    void clean(const SecretBytes& device_key, const Bytes& nonce) {
      Bytes a = device_key.reveal_copy();
      a = nonce;
      WL_LOG(Info) << hex_encode(a);
    }
  )";
  EXPECT_TRUE(rule_findings(lint::lint_source("src/x.cpp", src), "WL007").empty());
}

TEST(TaintFlow, TaintDoesNotCrossFunctions) {
  const std::string src = R"(
    void first(const SecretBytes& k) { Bytes a = k.reveal_copy(); use(a); }
    void second(const Bytes& a) { WL_LOG(Info) << hex_encode(a); }
  )";
  EXPECT_TRUE(rule_findings(lint::lint_source("src/x.cpp", src), "WL007").empty());
}

// ---------------------------------------------------------------------------
// WL009 path scoping
// ---------------------------------------------------------------------------

TEST(Determinism, ScopedToDeterministicSubtrees) {
  const std::string src = R"(
    double now_ms() {
      return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                               .time_since_epoch())
          .count();
    }
  )";
  EXPECT_EQ(rule_findings(lint::lint_source("src/core/t.cpp", src), "WL009").size(), 1u);
  EXPECT_EQ(rule_findings(lint::lint_source("src/net/t.cpp", src), "WL009").size(), 1u);
  // Outside the deterministic subtrees the same code is allowed (this is
  // where support::WallTimer lives).
  EXPECT_TRUE(rule_findings(lint::lint_source("src/support/t.cpp", src), "WL009").empty());
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

TEST(Suppressions, MultipleKeysShareOneComment) {
  const std::string src = R"(
    bool check(const Bytes& mac_tag, const SecretBytes& enc_key) {
      // wl-lint: log-ok,ct-ok
      WL_LOG(Debug) << (mac_tag == enc_key) << hex_encode(enc_key);
      return true;
    }
  )";
  const auto findings = lint::lint_source("src/x.cpp", src);
  EXPECT_TRUE(rule_findings(findings, "WL001").empty());
  EXPECT_TRUE(rule_findings(findings, "WL002").empty());
}

TEST(Suppressions, KeyMatchesWholeTokensOnly) {
  // `strict-ok` must NOT satisfy a `ct-ok` lookup.
  const std::string src = R"(
    bool check(const Bytes& mac_tag, const Bytes& other_tag) {
      // wl-lint: strict-ok
      return mac_tag == other_tag;
    }
  )";
  EXPECT_EQ(rule_findings(lint::lint_source("src/x.cpp", src), "WL002").size(), 1u);
}

TEST(Suppressions, CommentAboveMultiLineDeclaration) {
  // The finding lands on the continuation line; the statement anchor must
  // connect it back to the comment above the declaration's first line.
  const std::string src = R"(
    // wl-lint: byval-ok
    void ingest(const std::string& label,
                Bytes block);
  )";
  lint::Options options;
  options.assume_scoped = true;
  EXPECT_TRUE(rule_findings(lint::lint_source("x.hpp", src, options), "WL006").empty());

  const std::string unsuppressed = R"(
    void ingest(const std::string& label,
                Bytes block);
  )";
  EXPECT_EQ(
      rule_findings(lint::lint_source("x.hpp", unsuppressed, options), "WL006").size(), 1u);
}

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

TEST(Options, DisabledRulesAreFiltered) {
  const std::string src = R"(
    void f(Bytes payload);
  )";
  lint::Options options;
  options.assume_scoped = true;
  EXPECT_EQ(rule_findings(lint::lint_source("x.hpp", src, options), "WL006").size(), 1u);
  options.disabled_rules.insert("WL006");
  EXPECT_TRUE(lint::lint_source("x.hpp", src, options).empty());
}

// ---------------------------------------------------------------------------
// Emitters
// ---------------------------------------------------------------------------

std::vector<lint::Violation> sample_findings() {
  return {
      {"src/a.cpp", 12, "WL001", "secret 'key' flows into hex_encode"},
      {"src/b.cpp", 40, "WL008", "field \"x\" accessed\nwithout lock"},
  };
}

TEST(Emitters, SarifSchemaShape) {
  const std::string sarif = lint::render_sarif(sample_findings());
  // Top-level SARIF 2.1.0 contract.
  EXPECT_NE(sarif.find("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"wideleak-lint\""), std::string::npos);
  // The driver advertises every rule.
  for (const std::string& rule : lint::all_rules()) {
    EXPECT_NE(sarif.find("\"id\": \"" + rule + "\""), std::string::npos) << rule;
    EXPECT_FALSE(lint::rule_description(rule).empty());
  }
  EXPECT_EQ(lint::all_rules().size(), 12u);
  // Results carry ruleId, level and a physical location.
  EXPECT_NE(sarif.find("\"ruleId\": \"WL001\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/a.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
  // JSON string escaping: the embedded quote and newline must be escaped.
  EXPECT_NE(sarif.find("field \\\"x\\\" accessed\\nwithout lock"), std::string::npos);
  EXPECT_EQ(sarif.find("accessed\nwithout"), std::string::npos);
}

TEST(Emitters, SarifEmptyRunStaysWellFormed) {
  const std::string sarif = lint::render_sarif({});
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
}

TEST(Emitters, JsonCarriesCountAndFindings) {
  const std::string json = lint::render_json(sample_findings());
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"WL008\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 12"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

TEST(Baseline, RoundTripThroughDisk) {
  const std::vector<lint::Violation> findings = sample_findings();
  const std::string path = testing::TempDir() + "/wl_lint_baseline_test.txt";
  {
    std::ofstream out(path);
    out << lint::render_baseline(findings);
  }
  const lint::Baseline baseline = lint::load_baseline(path);
  ASSERT_EQ(baseline.entries.size(), 2u);
  EXPECT_EQ(baseline.entries[0], "src/a.cpp|WL001|12");

  std::vector<std::string> stale;
  EXPECT_TRUE(lint::filter_baseline(findings, baseline, &stale).empty());
  EXPECT_TRUE(stale.empty());
}

TEST(Baseline, NewFindingsPassThroughAndStaleEntriesReported) {
  lint::Baseline baseline;
  baseline.entries = {"src/a.cpp|WL001|12", "src/gone.cpp|WL005|7"};

  std::vector<lint::Violation> findings = sample_findings();
  std::vector<std::string> stale;
  const auto fresh = lint::filter_baseline(findings, baseline, &stale);
  ASSERT_EQ(fresh.size(), 1u);  // the WL008 finding is not baselined
  EXPECT_EQ(fresh[0].rule, "WL008");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "src/gone.cpp|WL005|7");
}

TEST(Baseline, MissingFileIsEmpty) {
  EXPECT_TRUE(lint::load_baseline("/nonexistent/wideleak/baseline.txt").entries.empty());
}

TEST(Baseline, EachEntryAbsorbsOneFinding) {
  // Two findings with the same key need two entries.
  std::vector<lint::Violation> findings = {
      {"src/a.cpp", 12, "WL001", "first"},
      {"src/a.cpp", 12, "WL001", "second"},
  };
  lint::Baseline baseline;
  baseline.entries = {"src/a.cpp|WL001|12"};
  EXPECT_EQ(lint::filter_baseline(findings, baseline).size(), 1u);
}

}  // namespace
