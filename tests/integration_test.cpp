// Full-study integration tests: Table I cell-for-cell against the paper,
// the Figure-1 call ordering, and the §IV-D rip campaign shape.
#include <gtest/gtest.h>

#include <map>

#include "core/report.hpp"
#include "ott/catalog.hpp"
#include "ott/playback.hpp"

namespace wideleak::core {
namespace {

// One shared study run for the whole binary (it is the expensive part).
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecosystem_ = new ott::StreamingEcosystem();
    ecosystem_->install_catalog();
    study_ = new WideleakStudy(*ecosystem_);
    audits_ = new std::vector<AppAudit>(study_->run_catalog());
  }

  static const AppAudit& audit_for(const std::string& app) {
    for (const AppAudit& audit : *audits_) {
      if (audit.profile.name == app) return audit;
    }
    ADD_FAILURE() << "no audit for " << app;
    static AppAudit empty;
    return empty;
  }

  static ott::StreamingEcosystem* ecosystem_;
  static WideleakStudy* study_;
  static std::vector<AppAudit>* audits_;
};

ott::StreamingEcosystem* IntegrationTest::ecosystem_ = nullptr;
WideleakStudy* IntegrationTest::study_ = nullptr;
std::vector<AppAudit>* IntegrationTest::audits_ = nullptr;

// The paper's Table I, cell for cell.
struct ExpectedRow {
  ProtectionStatus video;
  ProtectionStatus audio;
  ProtectionStatus subtitles;
  KeyUsageVerdict key_usage;
  LegacyPlaybackVerdict legacy;
};

const std::map<std::string, ExpectedRow>& expected_table() {
  static const std::map<std::string, ExpectedRow> table = {
      {"Netflix",
       {ProtectionStatus::Encrypted, ProtectionStatus::Clear, ProtectionStatus::Clear,
        KeyUsageVerdict::Minimum, LegacyPlaybackVerdict::Plays}},
      {"Disney+",
       {ProtectionStatus::Encrypted, ProtectionStatus::Encrypted, ProtectionStatus::Clear,
        KeyUsageVerdict::Minimum, LegacyPlaybackVerdict::ProvisioningFailed}},
      {"Amazon Prime Video",
       {ProtectionStatus::Encrypted, ProtectionStatus::Encrypted, ProtectionStatus::Clear,
        KeyUsageVerdict::Recommended, LegacyPlaybackVerdict::PlaysViaCustomDrm}},
      {"Hulu",
       {ProtectionStatus::Encrypted, ProtectionStatus::Encrypted, ProtectionStatus::Unknown,
        KeyUsageVerdict::Unknown, LegacyPlaybackVerdict::Plays}},
      {"HBO Max",
       {ProtectionStatus::Encrypted, ProtectionStatus::Encrypted, ProtectionStatus::Clear,
        KeyUsageVerdict::Unknown, LegacyPlaybackVerdict::ProvisioningFailed}},
      {"Starz",
       {ProtectionStatus::Encrypted, ProtectionStatus::Encrypted, ProtectionStatus::Unknown,
        KeyUsageVerdict::Minimum, LegacyPlaybackVerdict::ProvisioningFailed}},
      {"myCANAL",
       {ProtectionStatus::Encrypted, ProtectionStatus::Clear, ProtectionStatus::Clear,
        KeyUsageVerdict::Minimum, LegacyPlaybackVerdict::Plays}},
      {"Showtime",
       {ProtectionStatus::Encrypted, ProtectionStatus::Encrypted, ProtectionStatus::Clear,
        KeyUsageVerdict::Minimum, LegacyPlaybackVerdict::Plays}},
      {"OCS",
       {ProtectionStatus::Encrypted, ProtectionStatus::Encrypted, ProtectionStatus::Clear,
        KeyUsageVerdict::Minimum, LegacyPlaybackVerdict::Plays}},
      {"Salto",
       {ProtectionStatus::Encrypted, ProtectionStatus::Clear, ProtectionStatus::Clear,
        KeyUsageVerdict::Minimum, LegacyPlaybackVerdict::Plays}},
  };
  return table;
}

TEST_F(IntegrationTest, TableOneMatchesThePaperCellForCell) {
  ASSERT_EQ(audits_->size(), 10u);
  for (const auto& [app, expected] : expected_table()) {
    const AppAudit& audit = audit_for(app);
    EXPECT_EQ(audit.assets.video, expected.video) << app << " video";
    EXPECT_EQ(audit.assets.audio, expected.audio) << app << " audio";
    EXPECT_EQ(audit.assets.subtitles, expected.subtitles) << app << " subtitles";
    EXPECT_EQ(audit.key_usage.verdict, expected.key_usage) << app << " key usage";
    EXPECT_EQ(audit.legacy.verdict, expected.legacy) << app << " legacy";
  }
}

TEST_F(IntegrationTest, Q1AllAppsUseWidevine) {
  for (const AppAudit& audit : *audits_) {
    EXPECT_TRUE(audit.usage_l1.widevine_used) << audit.profile.name;
    EXPECT_EQ(audit.usage_l1.observed_level, widevine::SecurityLevel::L1)
        << audit.profile.name;
  }
}

TEST_F(IntegrationTest, Q1OnlyAmazonEmbedsCustomDrm) {
  for (const AppAudit& audit : *audits_) {
    EXPECT_EQ(audit.custom_drm_on_l3, audit.profile.name == "Amazon Prime Video")
        << audit.profile.name;
  }
}

TEST_F(IntegrationTest, Q1NonAmazonAppsRunWidevineL3OnTeeLessDevices) {
  for (const AppAudit& audit : *audits_) {
    if (audit.profile.name == "Amazon Prime Video") continue;
    EXPECT_EQ(audit.usage_l3.observed_level, widevine::SecurityLevel::L3)
        << audit.profile.name;
  }
}

TEST_F(IntegrationTest, Q2SubtitlesNeverEncrypted) {
  for (const AppAudit& audit : *audits_) {
    EXPECT_NE(audit.assets.subtitles, ProtectionStatus::Encrypted) << audit.profile.name;
  }
}

TEST_F(IntegrationTest, Q2ClearAudioPlaysWithoutAccount) {
  for (const char* app : {"Netflix", "myCANAL", "Salto"}) {
    EXPECT_TRUE(audit_for(app).assets.clear_audio_plays_without_account) << app;
  }
}

TEST_F(IntegrationTest, Q3VideoKeysDistinctPerResolutionEverywhere) {
  for (const AppAudit& audit : *audits_) {
    EXPECT_TRUE(audit.key_usage.video_keys_distinct_per_resolution) << audit.profile.name;
  }
}

TEST_F(IntegrationTest, Q4SevenOfTenPlayOnTheDiscontinuedDevice) {
  std::size_t plays = 0, refused = 0;
  for (const AppAudit& audit : *audits_) {
    if (audit.legacy.verdict == LegacyPlaybackVerdict::Plays ||
        audit.legacy.verdict == LegacyPlaybackVerdict::PlaysViaCustomDrm) {
      ++plays;
      // No legacy playback ever exceeds qHD.
      EXPECT_LE(audit.legacy.best_resolution.height, 540) << audit.profile.name;
    }
    if (audit.legacy.verdict == LegacyPlaybackVerdict::ProvisioningFailed) ++refused;
  }
  EXPECT_EQ(plays, 7u);
  EXPECT_EQ(refused, 3u);
}

TEST_F(IntegrationTest, RenderedTableContainsEveryAppAndLegend) {
  const std::string table = render_table_one(*audits_);
  for (const AppAudit& audit : *audits_) {
    EXPECT_NE(table.find(audit.profile.name), std::string::npos);
  }
  EXPECT_NE(table.find("Recommended"), std::string::npos);
  EXPECT_NE(table.find("custom DRM"), std::string::npos);
  EXPECT_NE(table.find("provisioning phase"), std::string::npos);
}

TEST_F(IntegrationTest, RipCampaignMatchesThePaper) {
  ContentRipper ripper(*ecosystem_, study_->legacy_device());
  const std::vector<RipResult> results = ripper.rip_catalog();

  const std::set<std::string> expected_ripped = {"Netflix", "Hulu",     "myCANAL",
                                                 "Showtime", "OCS",      "Salto"};
  std::set<std::string> actually_ripped;
  for (const RipResult& result : results) {
    if (result.success) {
      actually_ripped.insert(result.app);
      EXPECT_EQ(result.best_video_resolution, (media::Resolution{960, 540})) << result.app;
      EXPECT_TRUE(result.plays_without_account) << result.app;
      EXPECT_TRUE(result.keybox_recovered) << result.app;
      EXPECT_TRUE(result.device_rsa_recovered) << result.app;
    }
  }
  EXPECT_EQ(actually_ripped, expected_ripped);

  const std::string summary = render_rip_summary(results);
  EXPECT_NE(summary.find("6 of 10"), std::string::npos);
}

TEST_F(IntegrationTest, Figure1MilestoneOrdering) {
  auto device = ecosystem_->make_device(android::modern_l1_spec(0x4601));
  DrmApiMonitor monitor(*device);
  ott::OttApp app(*ott::find_app("OCS"), *ecosystem_, *device);
  ASSERT_TRUE(app.play_title().played);

  const std::vector<std::string> milestones = {
      "MediaDrm(UUID)",          "MediaDrm.openSession",
      "MediaDrm.getKeyRequest",  "MediaDrm.provideKeyResponse",
      "MediaCodec.queueSecureInputBuffer", "_oecc22_DecryptCENC"};
  const auto sequence = monitor.call_sequence();
  std::size_t cursor = 0;
  for (const std::string& milestone : milestones) {
    bool found = false;
    while (cursor < sequence.size()) {
      if (sequence[cursor++] == milestone) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "milestone " << milestone << " missing or out of order";
  }
}

TEST_F(IntegrationTest, StudyIsDeterministicAcrossRuns) {
  // A second, separately-constructed world produces the identical table.
  ott::StreamingEcosystem second;
  second.install_catalog();
  WideleakStudy study(second);
  const auto audits = study.run_catalog();
  EXPECT_EQ(render_table_one(audits), render_table_one(*audits_));
}

}  // namespace
}  // namespace wideleak::core
