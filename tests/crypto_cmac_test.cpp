// AES-CMAC (RFC 4493) known-answer tests and CMAC-counter-KDF properties.
#include <gtest/gtest.h>

#include "crypto/cmac.hpp"
#include "support/rng.hpp"

namespace wideleak::crypto {
namespace {

const char* kRfcKey = "2b7e151628aed2a6abf7158809cf4f3c";

// --- RFC 4493 test vectors ---------------------------------------------

TEST(AesCmac, Rfc4493EmptyMessage) {
  EXPECT_EQ(hex_encode(aes_cmac(hex_decode(kRfcKey), BytesView())),
            "bb1d6929e95937287fa37d129b756746");
}

TEST(AesCmac, Rfc4493SixteenBytes) {
  EXPECT_EQ(hex_encode(aes_cmac(hex_decode(kRfcKey),
                                hex_decode("6bc1bee22e409f96e93d7e117393172a"))),
            "070a16b46b4d4144f79bdd9dd04a287c");
}

TEST(AesCmac, Rfc4493FortyBytes) {
  const Bytes msg = hex_decode(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411");
  EXPECT_EQ(hex_encode(aes_cmac(hex_decode(kRfcKey), msg)),
            "dfa66747de9ae63030ca32611497c827");
}

TEST(AesCmac, Rfc4493SixtyFourBytes) {
  const Bytes msg = hex_decode(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  EXPECT_EQ(hex_encode(aes_cmac(hex_decode(kRfcKey), msg)),
            "51f0bebf7e3b9d92fc49741779363cfe");
}

// --- properties -----------------------------------------------------------

TEST(AesCmac, TagAlwaysSixteenBytes) {
  Rng rng(1);
  const Bytes key = rng.next_bytes(16);
  for (const std::size_t size : {0, 1, 15, 16, 17, 31, 32, 33, 100}) {
    EXPECT_EQ(aes_cmac(key, rng.next_bytes(static_cast<std::size_t>(size))).size(), 16u);
  }
}

TEST(AesCmac, MessageSensitivity) {
  Rng rng(2);
  const Bytes key = rng.next_bytes(16);
  Bytes msg = rng.next_bytes(48);
  const Bytes tag = aes_cmac(key, msg);
  for (std::size_t i = 0; i < msg.size(); i += 5) {
    msg[i] ^= 1;
    EXPECT_NE(aes_cmac(key, msg), tag) << "flip at " << i;
    msg[i] ^= 1;
  }
}

TEST(AesCmac, KeySensitivity) {
  Rng rng(3);
  Bytes key = rng.next_bytes(16);
  const Bytes msg = rng.next_bytes(32);
  const Bytes tag = aes_cmac(key, msg);
  key[0] ^= 1;
  EXPECT_NE(aes_cmac(key, msg), tag);
}

TEST(AesCmac, PaddedAndCompleteBlocksDiffer) {
  // A 15-byte message and its 0x80-padded 16-byte form must not collide
  // (the k1/k2 subkey separation).
  Rng rng(4);
  const Bytes key = rng.next_bytes(16);
  Bytes short_msg = rng.next_bytes(15);
  Bytes padded = short_msg;
  padded.push_back(0x80);
  EXPECT_NE(aes_cmac(key, short_msg), aes_cmac(key, padded));
}

TEST(AesCmac, Aes256KeysAccepted) {
  Rng rng(5);
  const Bytes tag = aes_cmac(rng.next_bytes(32), to_bytes("hello"));
  EXPECT_EQ(tag.size(), 16u);
}

// --- counter KDF ----------------------------------------------------------

TEST(CmacCounterKdf, OutputLengths) {
  Rng rng(6);
  const Bytes key = rng.next_bytes(16);
  const Bytes context = rng.next_bytes(40);
  EXPECT_EQ(cmac_counter_kdf(key, context, 1, 16).size(), 16u);
  EXPECT_EQ(cmac_counter_kdf(key, context, 1, 32).size(), 32u);
  EXPECT_EQ(cmac_counter_kdf(key, context, 1, 64).size(), 64u);
  EXPECT_EQ(cmac_counter_kdf(key, context, 1, 5).size(), 5u);
}

TEST(CmacCounterKdf, PrefixConsistency) {
  // The first 16 bytes of a 64-byte expansion equal the 16-byte expansion.
  Rng rng(7);
  const Bytes key = rng.next_bytes(16);
  const Bytes context = rng.next_bytes(40);
  const Bytes long_out = cmac_counter_kdf(key, context, 1, 64);
  const Bytes short_out = cmac_counter_kdf(key, context, 1, 16);
  EXPECT_EQ(Bytes(long_out.begin(), long_out.begin() + 16), short_out);
}

TEST(CmacCounterKdf, CounterStartMatters) {
  Rng rng(8);
  const Bytes key = rng.next_bytes(16);
  const Bytes context = rng.next_bytes(40);
  EXPECT_NE(cmac_counter_kdf(key, context, 1, 32), cmac_counter_kdf(key, context, 3, 32));
}

TEST(CmacCounterKdf, FirstBlockIsCmacOfCounterPlusContext) {
  Rng rng(9);
  const Bytes key = rng.next_bytes(16);
  const Bytes context = rng.next_bytes(24);
  Bytes block{0x02};
  block.insert(block.end(), context.begin(), context.end());
  EXPECT_EQ(cmac_counter_kdf(key, context, 2, 16), aes_cmac(key, block));
}

TEST(CmacCounterKdf, ContextSensitivity) {
  Rng rng(10);
  const Bytes key = rng.next_bytes(16);
  Bytes context = rng.next_bytes(24);
  const Bytes out = cmac_counter_kdf(key, context, 1, 32);
  context[0] ^= 1;
  EXPECT_NE(cmac_counter_kdf(key, context, 1, 32), out);
}

}  // namespace
}  // namespace wideleak::crypto
