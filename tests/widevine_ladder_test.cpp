// Key-ladder derivation tests, plus the wire-protocol message roundtrips.
#include <gtest/gtest.h>

#include "crypto/cmac.hpp"
#include "support/byte_io.hpp"
#include "support/rng.hpp"
#include "widevine/key_ladder.hpp"
#include "widevine/protocol.hpp"

namespace wideleak::widevine {
namespace {

// --- derive_session_keys ---------------------------------------------------

TEST(KeyLadder, OutputSizes) {
  Rng rng(1);
  const Bytes root = rng.next_bytes(16);
  const SessionKeys keys = derive_session_keys(root, rng.next_bytes(50), rng.next_bytes(60));
  EXPECT_EQ(keys.enc_key.size(), 16u);
  EXPECT_EQ(keys.mac_key_server.size(), 32u);
  EXPECT_EQ(keys.mac_key_client.size(), 32u);
}

TEST(KeyLadder, Deterministic) {
  Rng rng(2);
  const Bytes root = rng.next_bytes(16);
  const Bytes mac_ctx = rng.next_bytes(40);
  const Bytes enc_ctx = rng.next_bytes(40);
  const SessionKeys a = derive_session_keys(root, mac_ctx, enc_ctx);
  const SessionKeys b = derive_session_keys(root, mac_ctx, enc_ctx);
  EXPECT_EQ(a.enc_key, b.enc_key);
  EXPECT_EQ(a.mac_key_server, b.mac_key_server);
  EXPECT_EQ(a.mac_key_client, b.mac_key_client);
}

TEST(KeyLadder, AllThreeKeysDistinct) {
  Rng rng(3);
  const SessionKeys keys =
      derive_session_keys(rng.next_bytes(16), rng.next_bytes(40), rng.next_bytes(40));
  EXPECT_NE(keys.mac_key_server, keys.mac_key_client);
  EXPECT_NE(SecretBytes::copy_of(keys.mac_key_server.reveal().subspan(0, 16)), keys.enc_key);
}

TEST(KeyLadder, RootKeySensitivity) {
  Rng rng(4);
  Bytes root = rng.next_bytes(16);
  const Bytes ctx = rng.next_bytes(40);
  const SessionKeys a = derive_session_keys(root, ctx, ctx);
  root[15] ^= 1;
  const SessionKeys b = derive_session_keys(root, ctx, ctx);
  EXPECT_NE(a.enc_key, b.enc_key);
  EXPECT_NE(a.mac_key_server, b.mac_key_server);
}

TEST(KeyLadder, ContextSeparation) {
  // mac context only affects MAC keys; enc context only the enc key.
  Rng rng(5);
  const Bytes root = rng.next_bytes(16);
  const Bytes ctx1 = rng.next_bytes(40);
  const Bytes ctx2 = rng.next_bytes(40);
  const SessionKeys base = derive_session_keys(root, ctx1, ctx1);
  const SessionKeys mac_changed = derive_session_keys(root, ctx2, ctx1);
  EXPECT_EQ(mac_changed.enc_key, base.enc_key);
  EXPECT_NE(mac_changed.mac_key_server, base.mac_key_server);
  const SessionKeys enc_changed = derive_session_keys(root, ctx1, ctx2);
  EXPECT_NE(enc_changed.enc_key, base.enc_key);
  EXPECT_EQ(enc_changed.mac_key_server, base.mac_key_server);
}

TEST(KeyLadder, MatchesManualCmacConstruction) {
  // Pin down the exact KDF wire format so the attack-side re-implementation
  // can never silently diverge.
  Rng rng(6);
  const Bytes root = rng.next_bytes(16);
  const Bytes ctx = rng.next_bytes(32);
  ByteWriter w;
  w.raw("ENCRYPTION");
  w.u8(0x00);
  w.raw(ctx);
  w.u32(static_cast<std::uint32_t>(ctx.size() * 8));
  const Bytes expected_enc = crypto::cmac_counter_kdf(root, w.data(), 0x01, 16);
  EXPECT_EQ(derive_session_keys(root, ctx, ctx).enc_key, expected_enc);
}

// --- protocol message roundtrips ------------------------------------------------

TEST(Protocol, ClientIdentityRoundTrip) {
  ClientIdentity id;
  id.stable_id = to_bytes("device-42");
  id.device_model = "Nexus 5";
  id.cdm_version = kLegacyCdm;
  id.level = SecurityLevel::L3;
  const ClientIdentity restored = ClientIdentity::deserialize(id.serialize());
  EXPECT_EQ(restored.stable_id, id.stable_id);
  EXPECT_EQ(restored.device_model, "Nexus 5");
  EXPECT_EQ(restored.cdm_version, kLegacyCdm);
  EXPECT_EQ(restored.level, SecurityLevel::L3);
}

TEST(Protocol, CdmVersionSemantics) {
  EXPECT_TRUE(kLegacyCdm.has_insecure_keybox_storage());
  EXPECT_FALSE(kCurrentCdm.has_insecure_keybox_storage());
  EXPECT_LT(kLegacyCdm, kCurrentCdm);
  EXPECT_EQ(kLegacyCdm.label(), "3.1.0");
  EXPECT_EQ(kCurrentCdm.label(), "15.0.0");
}

TEST(Protocol, ProvisioningRequestRoundTrip) {
  Rng rng(7);
  ProvisioningRequest req;
  req.client.stable_id = rng.next_bytes(32);
  req.client.device_model = "Pixel 5";
  req.nonce = rng.next_bytes(16);
  req.signature = rng.next_bytes(32);
  const ProvisioningRequest restored = ProvisioningRequest::deserialize(req.serialize());
  EXPECT_EQ(restored.client.stable_id, req.client.stable_id);
  EXPECT_EQ(restored.nonce, req.nonce);
  EXPECT_EQ(restored.signature, req.signature);
  EXPECT_EQ(restored.body(), req.body());
}

TEST(Protocol, ProvisioningResponseRoundTrip) {
  Rng rng(8);
  ProvisioningResponse res;
  res.granted = true;
  res.wrapping_iv = rng.next_bytes(16);
  res.wrapped_rsa_key = rng.next_bytes(300);
  res.mac = rng.next_bytes(32);
  const ProvisioningResponse restored = ProvisioningResponse::deserialize(res.serialize());
  EXPECT_TRUE(restored.granted);
  EXPECT_EQ(restored.wrapped_rsa_key, res.wrapped_rsa_key);
  EXPECT_EQ(restored.body(), res.body());
}

TEST(Protocol, LicenseRequestRoundTrip) {
  Rng rng(9);
  LicenseRequest req;
  req.client.stable_id = rng.next_bytes(32);
  req.nonce = rng.next_bytes(16);
  req.key_ids = {rng.next_bytes(16), rng.next_bytes(16), rng.next_bytes(16)};
  req.scheme = SignatureScheme::DeviceRsa;
  req.device_rsa_public = rng.next_bytes(140);
  req.signature = rng.next_bytes(128);
  const LicenseRequest restored = LicenseRequest::deserialize(req.serialize());
  EXPECT_EQ(restored.key_ids, req.key_ids);
  EXPECT_EQ(restored.scheme, SignatureScheme::DeviceRsa);
  EXPECT_EQ(restored.device_rsa_public, req.device_rsa_public);
  EXPECT_EQ(restored.body(), req.body());
}

TEST(Protocol, LicenseResponseRoundTrip) {
  Rng rng(10);
  LicenseResponse res;
  res.granted = true;
  res.session_key_wrapped = rng.next_bytes(128);
  for (int i = 0; i < 3; ++i) {
    KeyContainer container;
    container.kid = rng.next_bytes(16);
    container.iv = rng.next_bytes(16);
    container.wrapped_key = rng.next_bytes(16);
    container.min_level = i == 0 ? SecurityLevel::L1 : SecurityLevel::L3;
    res.keys.push_back(container);
  }
  res.mac = rng.next_bytes(32);
  const LicenseResponse restored = LicenseResponse::deserialize(res.serialize());
  ASSERT_EQ(restored.keys.size(), 3u);
  EXPECT_EQ(restored.keys[0].min_level, SecurityLevel::L1);
  EXPECT_EQ(restored.keys[2].kid, res.keys[2].kid);
  EXPECT_EQ(restored.session_key_wrapped, res.session_key_wrapped);
  EXPECT_EQ(restored.body(), res.body());
}

TEST(Protocol, DeniedResponsesCarryReason) {
  LicenseResponse res;
  res.granted = false;
  res.deny_reason = "device revoked";
  const LicenseResponse restored = LicenseResponse::deserialize(res.serialize());
  EXPECT_FALSE(restored.granted);
  EXPECT_EQ(restored.deny_reason, "device revoked");
}

TEST(Protocol, BodyExcludesSignature) {
  // The signed portion must be stable under signature changes.
  Rng rng(11);
  LicenseRequest req;
  req.client.stable_id = rng.next_bytes(32);
  req.nonce = rng.next_bytes(16);
  const Bytes body1 = req.body();
  req.signature = rng.next_bytes(64);
  EXPECT_EQ(req.body(), body1);
}

}  // namespace
}  // namespace wideleak::widevine
