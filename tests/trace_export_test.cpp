// JSON export of monitoring results: structure, escaping and truncation.
#include <gtest/gtest.h>

#include "core/trace_export.hpp"

namespace wideleak::core {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(TraceExport, RecordStructure) {
  hooking::CallRecord record;
  record.sequence = 7;
  record.process = "mediadrmserver";
  record.module = "libwvdrmengine.so";
  record.function = "_oecc10_LoadKeys";
  record.input = {0xde, 0xad};
  record.output = {};
  const std::string json = trace_record_to_json(record);
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(json.find("\"module\":\"libwvdrmengine.so\""), std::string::npos);
  EXPECT_NE(json.find("\"function\":\"_oecc10_LoadKeys\""), std::string::npos);
  EXPECT_NE(json.find("\"hex\":\"dead\""), std::string::npos);
  EXPECT_NE(json.find("\"size\":2"), std::string::npos);
}

TEST(TraceExport, TruncatesLargeBuffers) {
  hooking::CallRecord record;
  record.input = Bytes(1000, 0xab);
  const std::string json = trace_record_to_json(record, 4);
  EXPECT_NE(json.find("\"size\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"hex\":\"abababab\""), std::string::npos);
  EXPECT_NE(json.find("\"truncated\":true"), std::string::npos);
}

TEST(TraceExport, TraceArray) {
  hooking::CallTrace trace;
  trace.append({0, "p", "m", "f1", {}, {}});
  trace.append({1, "p", "m", "f2", {}, {}});
  const std::string json = trace_to_json(trace);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"f1\""), std::string::npos);
  EXPECT_NE(json.find("\"f2\""), std::string::npos);
  // Two objects -> exactly two opening braces at record level.
  EXPECT_EQ(std::count(json.begin(), json.end(), '\n'), 3);  // 2 records + closing bracket
}

TEST(TraceExport, EmptyTraceIsEmptyArray) {
  hooking::CallTrace trace;
  EXPECT_EQ(trace_to_json(trace), "[\n]");
}

TEST(TraceExport, UsageReport) {
  WidevineUsageReport report;
  report.widevine_used = true;
  report.observed_level = widevine::SecurityLevel::L1;
  report.oecc_calls = 42;
  const std::string json = usage_report_to_json(report);
  EXPECT_NE(json.find("\"widevine_used\":true"), std::string::npos);
  EXPECT_NE(json.find("\"observed_level\":\"L1\""), std::string::npos);
  EXPECT_NE(json.find("\"oecc_calls\":42"), std::string::npos);
}

TEST(TraceExport, UsageReportNullLevel) {
  WidevineUsageReport report;
  EXPECT_NE(usage_report_to_json(report).find("\"observed_level\":null"), std::string::npos);
}

TEST(TraceExport, AppAuditBundle) {
  AppAuditJson audit;
  audit.app = "Netflix";
  audit.assets.video = ProtectionStatus::Encrypted;
  audit.assets.audio = ProtectionStatus::Clear;
  audit.key_usage.verdict = KeyUsageVerdict::Minimum;
  audit.legacy.verdict = LegacyPlaybackVerdict::Plays;
  audit.legacy.best_resolution = {960, 540};
  const std::string json = app_audit_to_json(audit);
  EXPECT_NE(json.find("\"app\":\"Netflix\""), std::string::npos);
  EXPECT_NE(json.find("\"video\":\"Encrypted\""), std::string::npos);
  EXPECT_NE(json.find("\"audio\":\"Clear\""), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"Minimum\""), std::string::npos);
  EXPECT_NE(json.find("\"best_resolution\":\"960x540\""), std::string::npos);
}

}  // namespace
}  // namespace wideleak::core
