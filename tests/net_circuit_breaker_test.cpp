// net::CircuitBreaker + the retry layer's resilience plumbing — the
// closed/open/half-open state machine on SimClock, per-host isolation,
// transition counters, the retryability/reopen classification of the
// service-refusal error codes, and request_with_retry's breaker gate and
// deadline-abandonment semantics.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "net/circuit_breaker.hpp"
#include "net/fault.hpp"
#include "net/http.hpp"
#include "net/network.hpp"
#include "net/retry.hpp"
#include "net/tls.hpp"
#include "support/errors.hpp"
#include "support/sim_clock.hpp"

namespace wideleak::net {
namespace {

CircuitBreakerConfig config_with(std::size_t threshold, std::uint64_t open_ticks = 64,
                                 std::size_t close_successes = 1) {
  CircuitBreakerConfig config;
  config.failure_threshold = threshold;
  config.open_ticks = open_ticks;
  config.close_successes = close_successes;
  return config;
}

// --- state machine -----------------------------------------------------------

TEST(CircuitBreakerTest, ThresholdZeroDisablesTheBreakerEntirely) {
  support::SimClock clock;
  CircuitBreaker breaker(CircuitBreakerConfig{}, &clock);
  EXPECT_FALSE(breaker.enabled());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(breaker.allow("api.example"));
    breaker.record("api.example", false);
  }
  EXPECT_EQ(breaker.state_of("api.example"), BreakerState::Closed);
  const CircuitBreakerStats stats = breaker.stats();
  EXPECT_EQ(stats.opens, 0u);
  EXPECT_EQ(stats.fast_fails, 0u);
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresAndFastFails) {
  support::SimClock clock;
  CircuitBreaker breaker(config_with(2, /*open_ticks=*/10), &clock);
  EXPECT_TRUE(breaker.enabled());

  EXPECT_TRUE(breaker.allow("api.example"));
  breaker.record("api.example", false);
  EXPECT_EQ(breaker.state_of("api.example"), BreakerState::Closed);  // 1 < threshold
  breaker.record("api.example", false);
  EXPECT_EQ(breaker.state_of("api.example"), BreakerState::Open);

  // While open, requests fast-fail without touching the host.
  EXPECT_FALSE(breaker.allow("api.example"));
  EXPECT_FALSE(breaker.allow("api.example"));
  const CircuitBreakerStats stats = breaker.stats();
  EXPECT_EQ(stats.opens, 1u);
  EXPECT_EQ(stats.fast_fails, 2u);
}

TEST(CircuitBreakerTest, ProbeAfterOpenTicksClosesOnSuccess) {
  support::SimClock clock;
  CircuitBreaker breaker(config_with(1, /*open_ticks=*/10), &clock);
  breaker.record("api.example", false);
  ASSERT_EQ(breaker.state_of("api.example"), BreakerState::Open);

  clock.advance(9);
  EXPECT_FALSE(breaker.allow("api.example"));  // cool-off not elapsed
  clock.advance(1);
  EXPECT_TRUE(breaker.allow("api.example"));  // the probe is admitted
  EXPECT_EQ(breaker.state_of("api.example"), BreakerState::HalfOpen);
  breaker.record("api.example", true);
  EXPECT_EQ(breaker.state_of("api.example"), BreakerState::Closed);

  const CircuitBreakerStats stats = breaker.stats();
  EXPECT_EQ(stats.probes, 1u);
  EXPECT_EQ(stats.closes, 1u);
  EXPECT_EQ(stats.fast_fails, 1u);
}

TEST(CircuitBreakerTest, FailedProbeReopensAndRestartsTheCoolOff) {
  support::SimClock clock;
  CircuitBreaker breaker(config_with(1, /*open_ticks=*/10), &clock);
  breaker.record("api.example", false);  // open at tick 0

  clock.advance(10);
  EXPECT_TRUE(breaker.allow("api.example"));  // probe at tick 10
  breaker.record("api.example", false);       // the host is still down
  EXPECT_EQ(breaker.state_of("api.example"), BreakerState::Open);
  EXPECT_FALSE(breaker.allow("api.example"));  // cool-off restarted from tick 10
  clock.advance(10);
  EXPECT_TRUE(breaker.allow("api.example"));

  const CircuitBreakerStats stats = breaker.stats();
  EXPECT_EQ(stats.opens, 2u);
  EXPECT_EQ(stats.probes, 2u);
}

TEST(CircuitBreakerTest, ClosingCanRequireSeveralProbeSuccesses) {
  support::SimClock clock;
  CircuitBreaker breaker(config_with(1, /*open_ticks=*/4, /*close_successes=*/2), &clock);
  breaker.record("api.example", false);
  clock.advance(4);

  EXPECT_TRUE(breaker.allow("api.example"));
  breaker.record("api.example", true);
  EXPECT_EQ(breaker.state_of("api.example"), BreakerState::HalfOpen);  // 1 of 2
  EXPECT_TRUE(breaker.allow("api.example"));
  breaker.record("api.example", true);
  EXPECT_EQ(breaker.state_of("api.example"), BreakerState::Closed);
  EXPECT_EQ(breaker.stats().closes, 1u);
}

TEST(CircuitBreakerTest, HostsTripIndependently) {
  support::SimClock clock;
  CircuitBreaker breaker(config_with(1), &clock);
  breaker.record("license.example", false);
  EXPECT_EQ(breaker.state_of("license.example"), BreakerState::Open);
  EXPECT_TRUE(breaker.allow("cdn.example"));  // untouched host stays closed
  EXPECT_EQ(breaker.state_of("cdn.example"), BreakerState::Closed);
}

TEST(CircuitBreakerTest, SuccessResetsTheConsecutiveFailureCount) {
  support::SimClock clock;
  CircuitBreaker breaker(config_with(2), &clock);
  breaker.record("api.example", false);
  breaker.record("api.example", true);  // streak broken
  breaker.record("api.example", false);
  EXPECT_EQ(breaker.state_of("api.example"), BreakerState::Closed);
  breaker.record("api.example", false);
  EXPECT_EQ(breaker.state_of("api.example"), BreakerState::Open);
}

// --- error-code classification -----------------------------------------------

TEST(ResilienceErrorCodeTest, ServiceRefusalsAreRetryableButCircuitOpenIsTerminal) {
  EXPECT_TRUE(is_retryable(ErrorCode::SessionInvalid));
  EXPECT_TRUE(is_retryable(ErrorCode::RateLimited));
  EXPECT_FALSE(is_retryable(ErrorCode::CircuitOpen));
  EXPECT_FALSE(is_retryable(ErrorCode::Denied));

  EXPECT_TRUE(is_reopen_cycle(ErrorCode::SessionInvalid));
  EXPECT_TRUE(is_reopen_cycle(ErrorCode::RateLimited));
  EXPECT_FALSE(is_reopen_cycle(ErrorCode::ConnectionDropped));
  EXPECT_FALSE(is_reopen_cycle(ErrorCode::CircuitOpen));

  EXPECT_STREQ(to_string(ErrorCode::SessionInvalid), "session-invalid");
  EXPECT_STREQ(to_string(ErrorCode::RateLimited), "rate-limited");
  EXPECT_STREQ(to_string(ErrorCode::CircuitOpen), "circuit-open");
}

// --- retry-layer integration -------------------------------------------------

// Minimal world in the net_fault_test.cpp shape: CA + echo server + fault
// injector, so the retry loop sees real transport failures.
class BreakerRetryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(0xB4EA);
    ca_ = new CertificateAuthority("breaker-ca", *rng_, 512);
    identity_ = new ServerIdentity(make_server_identity("api.example", *ca_, *rng_, 512));
  }

  struct World {
    Network network;
    std::shared_ptr<FaultyEndpoint> injector;
    support::SimClock clock;
  };

  static std::unique_ptr<World> make_world(const FaultRates& rates, std::uint64_t seed) {
    auto world = std::make_unique<World>();
    FaultPlan plan;
    plan.name = "breaker-test";
    plan.rules.push_back(
        FaultRule{.host_prefix = "", .request_class = std::nullopt, .rates = rates});
    auto server = std::make_shared<TlsServer>(
        *identity_, [](const HttpRequest& req) { return http_ok(req.body); }, seed + 1);
    world->injector = std::make_shared<FaultyEndpoint>(server, *identity_, plan,
                                                       "api.example", seed, &world->clock);
    world->network.add_endpoint("api.example", world->injector, identity_->certificate);
    return world;
  }

  static TlsClient make_client(const Network& network, std::uint64_t seed) {
    TrustStore trust;
    trust.add(*ca_);
    return TlsClient(network, trust, Rng(seed));
  }

  static Rng* rng_;
  static CertificateAuthority* ca_;
  static ServerIdentity* identity_;
};

Rng* BreakerRetryTest::rng_ = nullptr;
CertificateAuthority* BreakerRetryTest::ca_ = nullptr;
ServerIdentity* BreakerRetryTest::identity_ = nullptr;

TEST_F(BreakerRetryTest, DeadlineAbandonsTheBackoffWithoutSleeping) {
  auto world = make_world({.drop_pm = 1000}, 0xD34D);
  TlsClient client = make_client(world->network, 3);
  RetryPolicy policy;
  policy.deadline_tick = 1;  // the first backoff (8+jitter) would blow it
  RetryStats stats;
  Rng jitter(0x21);
  const auto result =
      request_with_retry(client, "api.example", HttpRequest{}, policy, jitter, &world->clock, stats);
  EXPECT_EQ(result.error, ErrorCode::ConnectionDropped);
  EXPECT_EQ(stats.attempts, 1u);  // the failure happened, the retry did not
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.giveups, 1u);  // abandoned == given up, same accounting
  EXPECT_EQ(world->clock.now(), 0u);  // crucially: no backoff was slept
}

TEST_F(BreakerRetryTest, GenerousDeadlineLeavesTheRetryLadderAlone) {
  const auto run = [&](std::uint64_t deadline) {
    auto world = make_world({.drop_pm = 1000}, 0xD34E);
    TlsClient client = make_client(world->network, 4);
    RetryPolicy policy;
    policy.deadline_tick = deadline;
    RetryStats stats;
    Rng jitter(0x22);
    request_with_retry(client, "api.example", HttpRequest{}, policy, jitter, &world->clock, stats);
    return std::make_pair(stats, world->clock.now());
  };
  const auto [unlimited, unlimited_now] = run(0);
  const auto [generous, generous_now] = run(100'000);
  // Far-off deadline == no deadline: same attempts, same slept ticks (the
  // jitter streams are identical because the draw discipline is fixed).
  EXPECT_EQ(unlimited.attempts, 4u);
  EXPECT_EQ(generous.attempts, 4u);
  EXPECT_EQ(unlimited.retries, generous.retries);
  EXPECT_EQ(unlimited_now, generous_now);
  EXPECT_GT(generous_now, 0u);
}

TEST_F(BreakerRetryTest, OpenBreakerFastFailsTheWholeRequest) {
  auto world = make_world({.drop_pm = 1000}, 0xFA57);
  TlsClient client = make_client(world->network, 5);
  CircuitBreaker breaker(config_with(1, /*open_ticks=*/1000), &world->clock);
  RetryPolicy policy;
  RetryStats stats;
  Rng jitter(0x23);

  // First logical request: attempt 1 fails, the breaker opens, and the
  // retry loop's gate converts the remaining budget into a fast-fail.
  const auto first =
      request_with_retry(client, "api.example", HttpRequest{}, policy, jitter, &world->clock,
                         stats, {}, &breaker);
  EXPECT_EQ(first.error, ErrorCode::CircuitOpen);
  EXPECT_EQ(first.error_detail, "circuit open for api.example");
  EXPECT_EQ(stats.attempts, 1u);  // only the tripping attempt was issued
  EXPECT_EQ(breaker.state_of("api.example"), BreakerState::Open);

  // Second logical request: not a single attempt, draw, or sleep.
  const std::uint64_t before = world->clock.now();
  const auto second =
      request_with_retry(client, "api.example", HttpRequest{}, policy, jitter, &world->clock,
                         stats, {}, &breaker);
  EXPECT_EQ(second.error, ErrorCode::CircuitOpen);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(world->clock.now(), before);
  EXPECT_GE(breaker.stats().fast_fails, 2u);
}

TEST_F(BreakerRetryTest, HealthyTrafficNeverTouchesTheBreaker) {
  auto world = make_world({}, 0x600D);  // no faults
  TlsClient client = make_client(world->network, 6);
  CircuitBreaker breaker(config_with(2), &world->clock);
  RetryPolicy policy;
  RetryStats stats;
  Rng jitter(0x24);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(request_with_retry(client, "api.example", HttpRequest{}, policy, jitter,
                                   &world->clock, stats, {}, &breaker)
                    .ok());
  }
  EXPECT_EQ(breaker.state_of("api.example"), BreakerState::Closed);
  const CircuitBreakerStats breaker_stats = breaker.stats();
  EXPECT_EQ(breaker_stats.opens, 0u);
  EXPECT_EQ(breaker_stats.fast_fails, 0u);
  EXPECT_EQ(stats.attempts, 5u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST_F(BreakerRetryTest, ReopenCyclesAreCountedSeparatelyFromPlainRetries) {
  // A validator that classifies every response as a service refusal makes
  // each retry a reopen cycle; plain transport drops do not.
  auto world = make_world({}, 0x0DE0);
  TlsClient client = make_client(world->network, 7);
  RetryPolicy policy;
  RetryStats stats;
  Rng jitter(0x25);
  const auto result = request_with_retry(
      client, "api.example", HttpRequest{}, policy, jitter, &world->clock, stats,
      [](const HttpResponse&) { return ErrorCode::SessionInvalid; });
  EXPECT_EQ(result.error, ErrorCode::SessionInvalid);
  EXPECT_EQ(stats.attempts, 4u);
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.reopens, 3u);  // every retry re-established dropped state

  auto drop_world = make_world({.drop_pm = 1000}, 0x0DE1);
  TlsClient drop_client = make_client(drop_world->network, 8);
  RetryStats drop_stats;
  request_with_retry(drop_client, "api.example", HttpRequest{}, policy, jitter,
                     &drop_world->clock, drop_stats);
  EXPECT_EQ(drop_stats.retries, 3u);
  EXPECT_EQ(drop_stats.reopens, 0u);  // transport trouble is not a reopen
}

}  // namespace
}  // namespace wideleak::net
