// WisePlay alternative-DRM tests: the §V-C future-work module. Checks the
// end-to-end flow, the security properties, and — crucially for the study —
// what parts of the WideLeak toolchain carry over to a different CDM and
// what parts do not.
#include <gtest/gtest.h>

#include "core/keybox_recovery.hpp"
#include "hooking/hook_bus.hpp"
#include "media/cenc.hpp"
#include "wiseplay/wiseplay.hpp"

namespace wideleak::wiseplay {
namespace {

class WisePlayTest : public ::testing::Test {
 protected:
  WisePlayTest()
      : host_("mediadrmserver"),
        identity_(make_wiseplay_identity("huawei-p40-007", 3)),
        server_(42) {
    title_ = media::package_title(999, "WisePlay Movie", {"en"}, {"en"},
                                  media::ContentPolicy{});
    server_.register_device(identity_.device_id, identity_.device_secret);
    server_.add_title(title_);
  }

  WisePlayCdm make_cdm(bool with_tee) {
    return WisePlayCdm(&host_, with_tee ? &tee_ : nullptr, identity_.device_id,
                       identity_.device_secret, 7);
  }

  std::vector<media::KeyId> sub_hd_kids() const {
    std::vector<media::KeyId> kids;
    for (const auto& key : title_.keys) {
      if (!key.resolution.is_hd()) kids.push_back(key.kid);
    }
    return kids;
  }

  hooking::SimProcess host_;
  widevine::Tee tee_;
  WisePlayIdentity identity_;
  WisePlayLicenseServer server_;
  media::PackagedTitle title_;
};

TEST_F(WisePlayTest, EndToEndLicenseAndDecrypt) {
  WisePlayCdm cdm = make_cdm(true);
  const auto session = cdm.open_session();
  const Bytes request = cdm.create_license_request(session, sub_hd_kids());
  const Bytes response = server_.handle(request);
  ASSERT_EQ(cdm.process_license_response(session, response), WisePlayResult::Success);
  EXPECT_EQ(cdm.loaded_key_ids(session).size(), sub_hd_kids().size());

  // Decrypt a real CENC track with the loaded key.
  const auto* rep = title_.mpd.of_type(media::TrackType::Video)[0];
  const auto track = media::PackagedTrack::from_file(BytesView(title_.files.at(rep->base_url)));
  Bytes clear_stream;
  for (std::size_t i = 0; i < track.samples.size(); ++i) {
    const auto& entry = track.senc.entries[i];
    const auto& sub = entry.subsamples[0];
    clear_stream.insert(clear_stream.end(), track.samples[i].begin(),
                        track.samples[i].begin() + sub.clear_bytes);
    Bytes plain;
    ASSERT_EQ(cdm.decrypt_sample(session, track.key_id, BytesView(entry.iv),
                                 BytesView(track.samples[i].data() + sub.clear_bytes,
                                           sub.protected_bytes),
                                 plain),
              WisePlayResult::Success);
    clear_stream.insert(clear_stream.end(), plain.begin(), plain.end());
  }
  EXPECT_TRUE(media::try_play(BytesView(clear_stream)).playable);
}

TEST_F(WisePlayTest, UnknownDeviceRejected) {
  const auto other = make_wiseplay_identity("not-registered", 9);
  WisePlayCdm cdm(&host_, &tee_, other.device_id, other.device_secret, 7);
  const auto session = cdm.open_session();
  const Bytes response = server_.handle(cdm.create_license_request(session, sub_hd_kids()));
  EXPECT_EQ(cdm.process_license_response(session, response), WisePlayResult::Denied);
}

TEST_F(WisePlayTest, TamperedRequestRejected) {
  WisePlayCdm cdm = make_cdm(true);
  const auto session = cdm.open_session();
  Bytes request = cdm.create_license_request(session, sub_hd_kids());
  request[request.size() / 2] ^= 1;
  const auto response = WisePlayResponse::deserialize(server_.handle(request));
  EXPECT_FALSE(response.granted);
}

TEST_F(WisePlayTest, TamperedResponseRejectedByCdm) {
  WisePlayCdm cdm = make_cdm(true);
  const auto session = cdm.open_session();
  Bytes response = server_.handle(cdm.create_license_request(session, sub_hd_kids()));
  response.back() ^= 1;
  EXPECT_EQ(cdm.process_license_response(session, response),
            WisePlayResult::SignatureFailure);
}

TEST_F(WisePlayTest, NonceReplayRejectedByServer) {
  WisePlayCdm cdm = make_cdm(true);
  const auto session = cdm.open_session();
  const Bytes request = cdm.create_license_request(session, sub_hd_kids());
  ASSERT_TRUE(WisePlayResponse::deserialize(server_.handle(request)).granted);
  const auto replay = WisePlayResponse::deserialize(server_.handle(request));
  EXPECT_FALSE(replay.granted);
  EXPECT_EQ(replay.deny_reason, "replayed nonce");
}

TEST_F(WisePlayTest, DecryptWithoutLicenseFails) {
  WisePlayCdm cdm = make_cdm(true);
  const auto session = cdm.open_session();
  Bytes out;
  EXPECT_EQ(cdm.decrypt_sample(session, Bytes(16, 0), Bytes(8, 0), to_bytes("ct"), out),
            WisePlayResult::KeyNotLoaded);
}

// --- what carries over from the WideLeak toolchain ---------------------------

TEST_F(WisePlayTest, HalHookingSeamCarriesOver) {
  // The monitor's observation point works unchanged: WisePlay calls appear
  // on the same process bus, under their own module.
  hooking::TraceSession trace(host_.bus());
  WisePlayCdm cdm = make_cdm(true);
  const auto session = cdm.open_session();
  const Bytes request = cdm.create_license_request(session, sub_hd_kids());
  (void)cdm.process_license_response(session, server_.handle(request));
  EXPECT_TRUE(trace.trace().touched_module(kWisePlayModule));
  EXPECT_FALSE(trace.trace().touched_module("libwvdrmengine.so"));
  // The intercepted request is parseable by the analyst, like Widevine's.
  const auto* record = trace.trace().first("wp_create_license_request");
  ASSERT_NE(record, nullptr);
  const auto parsed = WisePlayRequest::deserialize(BytesView(record->output));
  EXPECT_EQ(parsed.device_id, identity_.device_id);
}

TEST_F(WisePlayTest, WidevineKeyboxScannerDoesNotCarryOver) {
  // The CVE-2021-0639 scanner keys on the Widevine keybox structure; a
  // WisePlay device (even TEE-less, with its secret in process memory)
  // yields nothing — each CDM needs its own recovery research.
  WisePlayCdm cdm = make_cdm(/*with_tee=*/false);
  const auto session = cdm.open_session();
  (void)cdm.process_license_response(
      session, server_.handle(cdm.create_license_request(session, sub_hd_kids())));
  const auto scan = core::scan_for_keybox(host_.memory());
  EXPECT_FALSE(scan.success());
  EXPECT_GT(host_.memory().region_count(), 0u);  // keys ARE there, unfound
}

TEST_F(WisePlayTest, TeePlacementMirrorsWidevine) {
  // With a TEE, loaded keys are invisible to the REE scan; without, they
  // are exposed — the same L1/L3 dichotomy, different DRM.
  {
    WisePlayCdm cdm = make_cdm(true);
    const auto session = cdm.open_session();
    (void)cdm.process_license_response(
        session, server_.handle(cdm.create_license_request(session, sub_hd_kids())));
    const Bytes& some_key = title_.keys[0].key;
    EXPECT_TRUE(host_.memory().scan(BytesView(some_key)).empty());
    EXPECT_FALSE(tee_.secure_memory().scan(BytesView(some_key)).empty());
  }
}

TEST(WisePlayIdentityTest, DeterministicPerSerial) {
  EXPECT_EQ(make_wiseplay_identity("a", 1).device_secret,
            make_wiseplay_identity("a", 1).device_secret);
  EXPECT_NE(make_wiseplay_identity("a", 1).device_secret,
            make_wiseplay_identity("b", 1).device_secret);
}

}  // namespace
}  // namespace wideleak::wiseplay
