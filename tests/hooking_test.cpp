// Hooking substrate tests: the hook bus, call traces and process memory.
#include <gtest/gtest.h>

#include "hooking/hook_bus.hpp"
#include "hooking/memory.hpp"
#include "hooking/process.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"

namespace wideleak::hooking {
namespace {

// --- HookBus -----------------------------------------------------------

TEST(HookBus, ListenersReceiveRecords) {
  HookBus bus("proc");
  std::vector<CallRecord> seen;
  const auto token = bus.attach([&](const CallRecord& r) { seen.push_back(r); });
  bus.emit("mod.so", "fn1", to_bytes("in"), to_bytes("out"));
  bus.emit("mod.so", "fn2", BytesView(), BytesView());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].process, "proc");
  EXPECT_EQ(seen[0].module, "mod.so");
  EXPECT_EQ(seen[0].function, "fn1");
  EXPECT_EQ(seen[0].input, to_bytes("in"));
  EXPECT_EQ(seen[0].output, to_bytes("out"));
  EXPECT_EQ(seen[0].sequence + 1, seen[1].sequence);
  bus.detach(token);
}

TEST(HookBus, DetachStopsDelivery) {
  HookBus bus("proc");
  int count = 0;
  const auto token = bus.attach([&](const CallRecord&) { ++count; });
  bus.emit("m", "f", BytesView(), BytesView());
  bus.detach(token);
  bus.emit("m", "f", BytesView(), BytesView());
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(bus.has_listeners());
}

TEST(HookBus, MultipleListenersAllReceive) {
  HookBus bus("proc");
  int a = 0, b = 0;
  bus.attach([&](const CallRecord&) { ++a; });
  bus.attach([&](const CallRecord&) { ++b; });
  bus.emit("m", "f", BytesView(), BytesView());
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(HookBus, NoListenersIsCheapNoop) {
  HookBus bus("proc");
  bus.emit("m", "f", BytesView(), BytesView());  // must not crash
  EXPECT_FALSE(bus.has_listeners());
}

TEST(TraceSessionTest, RaiiAttachDetach) {
  HookBus bus("proc");
  {
    TraceSession session(bus);
    bus.emit("m", "f", BytesView(), BytesView());
    EXPECT_EQ(session.trace().size(), 1u);
    EXPECT_TRUE(bus.has_listeners());
  }
  EXPECT_FALSE(bus.has_listeners());
}

// --- CallTrace ------------------------------------------------------------

TEST(CallTraceTest, Queries) {
  CallTrace trace;
  trace.append({0, "p", "libA.so", "f1", {}, {}});
  trace.append({1, "p", "libB.so", "f2", {}, {}});
  trace.append({2, "p", "libA.so", "f1", {}, {}});
  EXPECT_EQ(trace.by_module("libA.so").size(), 2u);
  EXPECT_EQ(trace.by_function("f1").size(), 2u);
  EXPECT_NE(trace.first("f2"), nullptr);
  EXPECT_EQ(trace.first("nope"), nullptr);
  EXPECT_TRUE(trace.touched_module("libB.so"));
  EXPECT_FALSE(trace.touched_module("libC.so"));
  EXPECT_EQ(trace.function_sequence(), (std::vector<std::string>{"f1", "f2", "f1"}));
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

// --- ProcessMemory -----------------------------------------------------------

TEST(ProcessMemoryTest, MapWriteReadUnmap) {
  ProcessMemory memory;
  const RegionId id = memory.map_region("buf", to_bytes("hello"));
  EXPECT_EQ(memory.read_region(id), to_bytes("hello"));
  memory.write_region(id, to_bytes("goodbye"));
  EXPECT_EQ(memory.read_region(id), to_bytes("goodbye"));
  EXPECT_EQ(memory.region_count(), 1u);
  memory.unmap_region(id);
  EXPECT_EQ(memory.region_count(), 0u);
  EXPECT_THROW(memory.read_region(id), StateError);
  EXPECT_THROW(memory.write_region(id, to_bytes("x")), StateError);
  EXPECT_THROW(memory.unmap_region(id), StateError);
}

TEST(ProcessMemoryTest, ScanFindsAllOccurrences) {
  ProcessMemory memory;
  memory.map_region("a", to_bytes("xxNEEDLExxNEEDLExx"));
  memory.map_region("b", to_bytes("NEEDLE"));
  memory.map_region("c", to_bytes("nothing here"));
  const auto hits = memory.scan(to_bytes("NEEDLE"));
  EXPECT_EQ(hits.size(), 3u);
}

TEST(ProcessMemoryTest, ScanOverlappingMatches) {
  ProcessMemory memory;
  memory.map_region("a", to_bytes("aaaa"));
  EXPECT_EQ(memory.scan(to_bytes("aa")).size(), 3u);
}

TEST(ProcessMemoryTest, ScanEmptyPatternYieldsNothing) {
  ProcessMemory memory;
  memory.map_region("a", to_bytes("abc"));
  EXPECT_TRUE(memory.scan(BytesView()).empty());
}

TEST(ProcessMemoryTest, SnapshotIsCopy) {
  ProcessMemory memory;
  const RegionId id = memory.map_region("a", to_bytes("orig"));
  auto snapshot = memory.snapshot();
  memory.write_region(id, to_bytes("new!"));
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].data, to_bytes("orig"));  // unchanged
}

TEST(ProcessMemoryTest, TotalBytes) {
  ProcessMemory memory;
  memory.map_region("a", Bytes(100, 0));
  memory.map_region("b", Bytes(28, 0));
  EXPECT_EQ(memory.total_bytes(), 128u);
}

// --- SimProcess --------------------------------------------------------------

TEST(SimProcessTest, OwnsNameBusAndMemory) {
  SimProcess process("mediadrmserver");
  EXPECT_EQ(process.name(), "mediadrmserver");
  EXPECT_EQ(process.bus().process_name(), "mediadrmserver");
  process.memory().map_region("x", to_bytes("data"));
  EXPECT_EQ(process.memory().region_count(), 1u);
}

}  // namespace
}  // namespace wideleak::hooking
