// SHA-256 / SHA-1 / HMAC-SHA256 known-answer and property tests.
#include <gtest/gtest.h>

#include "crypto/hmac.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "support/rng.hpp"

namespace wideleak::crypto {
namespace {

// --- SHA-256 (FIPS 180-4 / NIST CAVP vectors) ------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_encode(sha256(BytesView())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_encode(sha256(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_encode(sha256(to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Bytes data(1000000, 'a');
  EXPECT_EQ(hex_encode(sha256(data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64-byte input: padding spills into a second block.
  Bytes data(64, 0x61);
  Sha256 h;
  h.update(data);
  EXPECT_EQ(h.finish(), sha256(data));
  EXPECT_EQ(hex_encode(sha256(data)),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, IncrementalMatchesOneShotAllChunkings) {
  Rng rng(1);
  const Bytes data = rng.next_bytes(257);
  const Bytes expected = sha256(data);
  for (const std::size_t chunk : {1, 3, 63, 64, 65, 100, 256}) {
    Sha256 h;
    for (std::size_t pos = 0; pos < data.size(); pos += chunk) {
      const std::size_t take = std::min(chunk, data.size() - pos);
      h.update(BytesView(data.data() + pos, take));
    }
    EXPECT_EQ(h.finish(), expected) << "chunk=" << chunk;
  }
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  Rng rng(2);
  const Bytes a = rng.next_bytes(100);
  Bytes b = a;
  b[50] ^= 1;
  EXPECT_NE(sha256(a), sha256(b));
}

// --- SHA-1 -------------------------------------------------------------------

TEST(Sha1, EmptyString) {
  EXPECT_EQ(hex_encode(sha1(BytesView())), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(hex_encode(sha1(to_bytes("abc"))), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(hex_encode(sha1(to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  Rng rng(3);
  const Bytes data = rng.next_bytes(200);
  Sha1 h;
  h.update(BytesView(data.data(), 77));
  h.update(BytesView(data.data() + 77, data.size() - 77));
  EXPECT_EQ(h.finish(), sha1(data));
}

// --- HMAC-SHA256 (RFC 4231) --------------------------------------------------

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  // Published RFC 4231 test vector, not a real key. wl-lint: log-ok
  EXPECT_EQ(hex_encode(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(hex_encode(hmac_sha256(to_bytes("Jefe"), to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  // Published RFC 4231 test vector, not a real key. wl-lint: log-ok
  EXPECT_EQ(hex_encode(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  // Published RFC 4231 test vector, not a real key. wl-lint: log-ok
  EXPECT_EQ(hex_encode(hmac_sha256(key, to_bytes("Test Using Larger Than Block-Size Key - "
                                                 "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, VerifyAcceptsValidTag) {
  Rng rng(4);
  const Bytes key = rng.next_bytes(32);
  const Bytes data = rng.next_bytes(100);
  EXPECT_TRUE(hmac_sha256_verify(key, data, hmac_sha256(key, data)));
}

TEST(HmacSha256, VerifyRejectsTamperedTagOrData) {
  Rng rng(5);
  const Bytes key = rng.next_bytes(32);
  const Bytes data = rng.next_bytes(100);
  Bytes tag = hmac_sha256(key, data);
  tag[0] ^= 1;
  EXPECT_FALSE(hmac_sha256_verify(key, data, tag));
  tag[0] ^= 1;
  Bytes tampered = data;
  tampered[99] ^= 1;
  EXPECT_FALSE(hmac_sha256_verify(key, tampered, tag));
  EXPECT_FALSE(hmac_sha256_verify(key, data, BytesView(tag.data(), 31)));  // short tag
}

TEST(HmacSha256, KeySensitivity) {
  Rng rng(6);
  const Bytes data = rng.next_bytes(64);
  Bytes key = rng.next_bytes(32);
  const Bytes tag1 = hmac_sha256(key, data);
  key[31] ^= 1;
  EXPECT_NE(hmac_sha256(key, data), tag1);
}

}  // namespace
}  // namespace wideleak::crypto
