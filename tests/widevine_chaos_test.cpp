// widevine::ChaosPlan + the DrmService chaos layer — canned plan parsing,
// refusal classification, shard crash/restart semantics (lazy application,
// session drop, transparent reopen, time-to-recover accounting), brownout
// determinism under a fixed seed, overload shedding, and the provisioning
// path's brownout-only exposure.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "crypto/hmac.hpp"
#include "support/sim_clock.hpp"
#include "widevine/chaos.hpp"
#include "widevine/drm_service.hpp"
#include "widevine/key_ladder.hpp"
#include "widevine/keybox.hpp"

namespace wideleak::widevine {
namespace {

// Same shape as DrmServiceTest (widevine_service_test.cpp): shared servers,
// keybox-CMAC-signed requests; each test wires its own chaos plan.
class ChaosServiceTest : public ::testing::Test {
 protected:
  ChaosServiceTest()
      : roots_(std::make_shared<DeviceRootDatabase>()),
        license_(std::make_shared<LicenseServer>(roots_, 21)),
        provisioning_(std::make_shared<ProvisioningServer>(roots_, 22, 512)) {
    kid_ = Bytes(16, 0x4B);
    license_->add_generic_key(kid_, SecretBytes(Bytes(16, 0x33)));
  }

  std::unique_ptr<DrmService> make_service(const DrmServiceConfig& config,
                                           support::SimClock* clock = nullptr) {
    auto service = std::make_unique<DrmService>(license_, provisioning_, config, clock);
    EXPECT_EQ(service->register_app("chaos-app"), 0u);
    return service;
  }

  LicenseRequest request_for(const std::string& serial) {
    const Keybox keybox = make_factory_keybox(serial, 7);
    roots_->register_device(keybox, SecurityLevel::L1);
    LicenseRequest request;
    request.client.stable_id = keybox.stable_id();
    request.client.device_model = "chaos-test";
    request.client.cdm_version = kCurrentCdm;
    request.client.level = SecurityLevel::L1;
    request.nonce = Bytes(8, 0x5A);
    request.key_ids = {kid_};
    request.scheme = SignatureScheme::KeyboxCmac;
    const Bytes body = request.body();
    const SessionKeys keys = derive_session_keys(keybox.device_key(), body, body);
    request.signature = crypto::hmac_sha256(keys.mac_key_client, body);
    return request;
  }

  /// A single-shard config so every session lands in the crash blast radius.
  DrmServiceConfig config_with(ChaosPlan plan) {
    DrmServiceConfig config;
    config.seed = 0x5EED;
    config.shard_count = 1;
    config.chaos = std::move(plan);
    return config;
  }

  std::shared_ptr<DeviceRootDatabase> roots_;
  std::shared_ptr<LicenseServer> license_;
  std::shared_ptr<ProvisioningServer> provisioning_;
  RevocationPolicy policy_ = permissive_revocation_policy();
  media::KeyId kid_;
};

// --- plan parsing ------------------------------------------------------------

TEST(ChaosPlanTest, CannedPlansParseWithTheDocumentedShape) {
  ChaosPlan plan;
  ASSERT_TRUE(chaos_plan_from_string("none", plan));
  EXPECT_TRUE(plan.empty());
  ASSERT_TRUE(chaos_plan_from_string("", plan));
  EXPECT_EQ(plan.name, "none");
  EXPECT_TRUE(plan.empty());

  ASSERT_TRUE(chaos_plan_from_string("shard-crash", plan));
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.service_latency_ticks, 6u);
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].start, 8u);
  EXPECT_EQ(plan.crashes[0].down_ticks, 18u);
  EXPECT_EQ(plan.crashes[0].shard, kAllShards);
  EXPECT_FALSE(plan.has_brownout());

  ASSERT_TRUE(chaos_plan_from_string("brownout", plan));
  EXPECT_TRUE(plan.has_brownout());
  ASSERT_EQ(plan.brownouts.size(), 1u);
  EXPECT_EQ(plan.brownouts[0].deny_pm, 300u);

  ASSERT_TRUE(chaos_plan_from_string("overload", plan));
  EXPECT_EQ(plan.overload.queue_depth_limit, 1u);
  EXPECT_FALSE(plan.empty());
}

TEST(ChaosPlanTest, UnknownPlanNamesAreRejected) {
  ChaosPlan untouched;
  untouched.name = "sentinel";
  EXPECT_FALSE(chaos_plan_from_string("earthquake", untouched));
  EXPECT_EQ(untouched.name, "sentinel");  // parse failure leaves `out` alone
  EXPECT_THROW(chaos_plan_for("earthquake"), Error);
  EXPECT_NO_THROW(chaos_plan_for("shard-crash"));
}

TEST(ChaosPlanTest, WindowGeometryHelpers) {
  const ShardCrashWindow window{/*start=*/10, /*down_ticks=*/5, /*shard=*/2};
  EXPECT_EQ(window.end(), 15u);
  EXPECT_FALSE(window.down_at(9));
  EXPECT_TRUE(window.down_at(10));
  EXPECT_TRUE(window.down_at(14));
  EXPECT_FALSE(window.down_at(15));
  EXPECT_TRUE(window.covers(2));
  EXPECT_FALSE(window.covers(3));
  EXPECT_TRUE((ShardCrashWindow{0, 1, kAllShards}.covers(7)));

  const BrownoutWindow brownout{/*start=*/4, /*ticks=*/6, /*deny_pm=*/100, /*latency=*/1};
  EXPECT_FALSE(brownout.active_at(3));
  EXPECT_TRUE(brownout.active_at(4));
  EXPECT_FALSE(brownout.active_at(10));
}

// --- refusal classification --------------------------------------------------

TEST(ChaosPlanTest, ServiceRefusalsClassifyOntoReopenableCodes) {
  EXPECT_EQ(classify_service_refusal("session invalid: shard restarting"),
            ErrorCode::SessionInvalid);
  EXPECT_EQ(classify_service_refusal("rate limited"), ErrorCode::RateLimited);
  EXPECT_EQ(classify_service_refusal("overloaded: shard queue full"), ErrorCode::RateLimited);
  EXPECT_EQ(classify_service_refusal("brownout: service degraded"), ErrorCode::RateLimited);
  // Organic application denials stay authoritative.
  EXPECT_EQ(classify_service_refusal("device revoked"), ErrorCode::None);
  EXPECT_EQ(classify_service_refusal("session quota exceeded"), ErrorCode::None);
  EXPECT_EQ(classify_service_refusal(""), ErrorCode::None);
}

// --- shard crash / restart ---------------------------------------------------

TEST_F(ChaosServiceTest, ShardCrashDropsSessionsRefusesThenRecovers) {
  ChaosPlan plan;
  plan.name = "test-crash";
  plan.crashes.push_back(ShardCrashWindow{/*start=*/10, /*down_ticks=*/5, kAllShards});
  const auto service = make_service(config_with(std::move(plan)));
  const LicenseRequest request = request_for("crash-0");
  const ServiceSessionId id = service->session_id_for(0, request.client.stable_id);

  // Before the window: normal service, the session opens.
  EXPECT_TRUE(service->handle_license(0, request, policy_, 5).granted);
  EXPECT_TRUE(service->has_session(id));

  // Inside the window: the first touch applies the crash (the session is
  // gone) and the restarting shard refuses the request.
  const LicenseResponse refused = service->handle_license(0, request, policy_, 12);
  EXPECT_FALSE(refused.granted);
  EXPECT_EQ(refused.deny_reason, "session invalid: shard restarting");
  EXPECT_EQ(classify_service_refusal(refused.deny_reason), ErrorCode::SessionInvalid);
  EXPECT_FALSE(service->has_session(id));

  DrmServiceStats stats = service->stats();
  EXPECT_EQ(stats.chaos.sessions_dropped, 1u);
  EXPECT_EQ(stats.chaos.shard_refusals, 1u);
  EXPECT_EQ(stats.chaos.windows_recovered, 0u);

  // After the window: the content-derived id reopens transparently and the
  // first post-restart grant stamps time-to-recover (20 - window end 15).
  EXPECT_TRUE(service->handle_license(0, request, policy_, 20).granted);
  EXPECT_TRUE(service->has_session(id));
  stats = service->stats();
  EXPECT_EQ(stats.chaos.windows_recovered, 1u);
  EXPECT_EQ(stats.chaos.recovery_ticks, 5u);
  EXPECT_EQ(stats.chaos.shard_refusals, 1u);  // no further refusals
  EXPECT_EQ(stats.sessions_opened, 2u);       // the reopen is a real open
  EXPECT_EQ(stats.live_sessions, 1u);
}

TEST_F(ChaosServiceTest, CrashAppliesLazilyEvenAfterTheWindowEnded) {
  // No request lands during the outage; the first touch afterwards still
  // drops the pre-crash session (the shard did restart, its state is gone)
  // but serves the request against the fresh table.
  ChaosPlan plan;
  plan.name = "test-lazy";
  plan.crashes.push_back(ShardCrashWindow{/*start=*/10, /*down_ticks=*/5, kAllShards});
  const auto service = make_service(config_with(std::move(plan)));
  const LicenseRequest request = request_for("lazy-0");
  const ServiceSessionId id = service->session_id_for(0, request.client.stable_id);

  EXPECT_TRUE(service->handle_license(0, request, policy_, 5).granted);
  EXPECT_TRUE(service->handle_license(0, request, policy_, 40).granted);
  EXPECT_TRUE(service->has_session(id));  // reopened by the same request

  const DrmServiceStats stats = service->stats();
  EXPECT_EQ(stats.chaos.sessions_dropped, 1u);
  EXPECT_EQ(stats.chaos.shard_refusals, 0u);  // nobody hit the down window
  EXPECT_EQ(stats.chaos.windows_recovered, 1u);
  EXPECT_EQ(stats.chaos.recovery_ticks, 25u);  // 40 - window end 15
  EXPECT_EQ(stats.sessions_opened, 2u);
}

// --- brownout ----------------------------------------------------------------

TEST_F(ChaosServiceTest, BrownoutVerdictsReplayBitIdenticallyForOneSeed) {
  const auto plan = [] {
    ChaosPlan plan;
    plan.name = "test-brownout";
    plan.brownouts.push_back(
        BrownoutWindow{/*start=*/0, /*ticks=*/1000, /*deny_pm=*/300, /*latency_ticks=*/2});
    return plan;
  };
  const LicenseRequest request = request_for("brown-0");
  const auto run = [&](DrmService& service) {
    std::vector<bool> verdicts;
    for (std::uint64_t now = 0; now < 50; ++now) {
      verdicts.push_back(service.handle_license(0, request, policy_, now).granted);
    }
    return verdicts;
  };

  const auto a = make_service(config_with(plan()));
  const auto b = make_service(config_with(plan()));
  const auto verdicts_a = run(*a);
  const auto verdicts_b = run(*b);
  EXPECT_EQ(verdicts_a, verdicts_b);

  const DrmServiceStats stats_a = a->stats();
  const DrmServiceStats stats_b = b->stats();
  EXPECT_EQ(stats_a.chaos.brownout_denied, stats_b.chaos.brownout_denied);
  EXPECT_GT(stats_a.chaos.brownout_denied, 0u);   // ~30% of 50 requests
  EXPECT_LT(stats_a.chaos.brownout_denied, 50u);  // ...but nowhere near all
  // Every request pays the window latency, denied or not; without a wired
  // clock it is accounted, not slept.
  EXPECT_EQ(stats_a.chaos.latency_ticks, 100u);
}

// --- overload ----------------------------------------------------------------

TEST_F(ChaosServiceTest, OverloadShedsSameTickExcessAndRecoversNextTick) {
  ChaosPlan plan;
  plan.name = "test-overload";
  plan.overload.queue_depth_limit = 1;
  const auto service = make_service(config_with(std::move(plan)));
  const LicenseRequest first = request_for("ovl-0");
  const LicenseRequest second = request_for("ovl-1");

  EXPECT_TRUE(service->handle_license(0, first, policy_, 0).granted);
  const LicenseResponse shed = service->handle_license(0, second, policy_, 0);
  EXPECT_FALSE(shed.granted);
  EXPECT_EQ(shed.deny_reason, "overloaded: shard queue full");
  EXPECT_EQ(classify_service_refusal(shed.deny_reason), ErrorCode::RateLimited);

  // The tick advances, the queue drains, the retry lands.
  EXPECT_TRUE(service->handle_license(0, second, policy_, 1).granted);
  const DrmServiceStats stats = service->stats();
  EXPECT_EQ(stats.chaos.load_shed, 1u);
  EXPECT_EQ(stats.sessions_opened, 2u);
}

// --- provisioning exposure ---------------------------------------------------

TEST_F(ChaosServiceTest, ProvisioningSeesBrownoutsButNotShardCrashes) {
  // Brownout with a certain deny: provisioning is refused before reaching
  // the provisioning server.
  ChaosPlan brown;
  brown.name = "test-prov-brownout";
  brown.brownouts.push_back(
      BrownoutWindow{/*start=*/0, /*ticks=*/100, /*deny_pm=*/1000, /*latency_ticks=*/3});
  const auto brown_service = make_service(config_with(std::move(brown)));
  const ProvisioningResponse denied =
      brown_service->handle_provision(0, ProvisioningRequest{}, 0);
  EXPECT_FALSE(denied.granted);
  EXPECT_EQ(denied.deny_reason, "brownout: service degraded");
  EXPECT_EQ(classify_service_refusal(denied.deny_reason), ErrorCode::RateLimited);
  EXPECT_EQ(brown_service->stats().chaos.brownout_denied, 1u);
  EXPECT_EQ(brown_service->stats().chaos.latency_ticks, 3u);
  EXPECT_EQ(brown_service->stats().provisioning_requests, 0u);

  // A crash window refuses license traffic but provisioning has no session
  // shard: the request passes the chaos layer untouched.
  ChaosPlan crash;
  crash.name = "test-prov-crash";
  crash.crashes.push_back(ShardCrashWindow{/*start=*/0, /*down_ticks=*/100, kAllShards});
  const auto crash_service = make_service(config_with(std::move(crash)));
  const ProvisioningResponse through =
      crash_service->handle_provision(0, ProvisioningRequest{}, 5);
  EXPECT_NE(through.deny_reason, "session invalid: shard restarting");
  const DrmServiceStats stats = crash_service->stats();
  EXPECT_EQ(stats.chaos.shard_refusals, 0u);
  EXPECT_EQ(stats.chaos.sessions_dropped, 0u);
  EXPECT_EQ(stats.provisioning_requests, 1u);  // it reached the server
}

// --- service latency ---------------------------------------------------------

TEST_F(ChaosServiceTest, ServiceLatencySleepsTheWiredClock) {
  ChaosPlan plan;
  plan.name = "test-latency";
  plan.service_latency_ticks = 6;
  support::SimClock clock;
  const auto service = make_service(config_with(std::move(plan)), &clock);
  const LicenseRequest request = request_for("lat-0");

  EXPECT_TRUE(service->handle_license(0, request, policy_).granted);
  EXPECT_EQ(clock.now(), 6u);
  EXPECT_TRUE(service->handle_license(0, request, policy_).granted);
  EXPECT_EQ(clock.now(), 12u);
  EXPECT_EQ(service->stats().chaos.latency_ticks, 12u);
}

}  // namespace
}  // namespace wideleak::widevine
