// Network stack tests: HTTP messages, certificates/trust, TLS records and
// handshakes, pinning and the MITM proxy.
#include <gtest/gtest.h>

#include <memory>

#include "net/http.hpp"
#include "net/network.hpp"
#include "net/proxy.hpp"
#include "net/tls.hpp"
#include "support/errors.hpp"

namespace wideleak::net {
namespace {

// Shared fixture: CA + one echo server (key generation is the slow part).
class NetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(0x2e7);
    ca_ = new CertificateAuthority("test-ca", *rng_, 512);
    network_ = new Network();
    auto identity = make_server_identity("api.example", *ca_, *rng_, 512);
    server_cert_ = new Certificate(identity.certificate);
    network_->add_server("api.example",
                         std::make_shared<TlsServer>(
                             std::move(identity),
                             [](const HttpRequest& req) {
                               HttpResponse res = http_ok(req.body);
                               res.headers["echo-path"] = req.path;
                               return res;
                             },
                             1));
  }

  TlsClient make_client() {
    TrustStore trust;
    trust.add(*ca_);
    return TlsClient(*network_, trust, rng_->fork());
  }

  static Rng* rng_;
  static CertificateAuthority* ca_;
  static Network* network_;
  static Certificate* server_cert_;
};

Rng* NetTest::rng_ = nullptr;
CertificateAuthority* NetTest::ca_ = nullptr;
Network* NetTest::network_ = nullptr;
Certificate* NetTest::server_cert_ = nullptr;

// --- HTTP messages ------------------------------------------------------

TEST(Http, RequestRoundTrip) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/license";
  req.headers["authorization"] = "tok";
  req.body = Bytes{1, 2, 3};
  const HttpRequest restored = HttpRequest::deserialize(req.serialize());
  EXPECT_EQ(restored.method, "POST");
  EXPECT_EQ(restored.path, "/license");
  EXPECT_EQ(restored.headers.at("authorization"), "tok");
  EXPECT_EQ(restored.body, (Bytes{1, 2, 3}));
}

TEST(Http, ResponseRoundTripAndStatus) {
  HttpResponse res = http_error(404, "missing");
  EXPECT_FALSE(res.ok());
  const HttpResponse restored = HttpResponse::deserialize(res.serialize());
  EXPECT_EQ(restored.status, 404);
  EXPECT_EQ(restored.headers.at("reason"), "missing");
  EXPECT_TRUE(http_ok_text("x").ok());
}

// --- certificates & trust --------------------------------------------------

TEST_F(NetTest, CertificateValidatesAgainstIssuingCa) {
  TrustStore trust;
  trust.add(*ca_);
  EXPECT_TRUE(trust.validate(*server_cert_));
}

TEST_F(NetTest, CertificateRejectedByWrongCa) {
  Rng rng(77);
  CertificateAuthority other("other-ca", rng, 512);
  TrustStore trust;
  trust.add(other);
  EXPECT_FALSE(trust.validate(*server_cert_));
}

TEST_F(NetTest, TamperedCertificateRejected) {
  TrustStore trust;
  trust.add(*ca_);
  Certificate forged = *server_cert_;
  forged.subject = "evil.example";  // signature no longer covers this
  EXPECT_FALSE(trust.validate(forged));
}

TEST_F(NetTest, PinStoreChecksFingerprint) {
  PinStore pins;
  EXPECT_TRUE(pins.check("api.example", *server_cert_));  // unpinned: pass
  pins.pin("api.example", server_cert_->pin_value());
  EXPECT_TRUE(pins.check("api.example", *server_cert_));
  pins.pin("api.example", Bytes(32, 0x00));
  EXPECT_FALSE(pins.check("api.example", *server_cert_));
  EXPECT_TRUE(pins.has_pin("api.example"));
  EXPECT_FALSE(pins.has_pin("cdn.example"));
}

// --- TLS sessions --------------------------------------------------------------

TEST(TlsSession, SealOpenRoundTrip) {
  Rng rng(1);
  const Bytes enc = rng.next_bytes(16), mac = rng.next_bytes(32), iv = rng.next_bytes(8);
  TlsSession sender(enc, mac, iv);
  TlsSession receiver(enc, mac, iv);
  for (int i = 0; i < 5; ++i) {
    const Bytes msg = rng.next_bytes(100 + static_cast<std::size_t>(i));
    EXPECT_EQ(receiver.open(sender.seal(msg)), msg);
  }
}

TEST(TlsSession, TamperedRecordRejected) {
  Rng rng(2);
  const Bytes enc = rng.next_bytes(16), mac = rng.next_bytes(32), iv = rng.next_bytes(8);
  TlsSession sender(enc, mac, iv);
  TlsSession receiver(enc, mac, iv);
  Bytes record = sender.seal(to_bytes("secret"));
  record[record.size() / 2] ^= 1;
  EXPECT_THROW(receiver.open(record), CryptoError);
}

TEST(TlsSession, ReplayRejected) {
  Rng rng(3);
  const Bytes enc = rng.next_bytes(16), mac = rng.next_bytes(32), iv = rng.next_bytes(8);
  TlsSession sender(enc, mac, iv);
  TlsSession receiver(enc, mac, iv);
  const Bytes record = sender.seal(to_bytes("once"));
  EXPECT_EQ(receiver.open(record), to_bytes("once"));
  EXPECT_THROW(receiver.open(record), CryptoError);
}

TEST(TlsSession, KeyDerivationIsDeterministicAndSensitive) {
  Rng rng(4);
  const Bytes pm = rng.next_bytes(16), cr = rng.next_bytes(32), sr = rng.next_bytes(32);
  const SessionKeys a = derive_session_keys(pm, cr, sr);
  const SessionKeys b = derive_session_keys(pm, cr, sr);
  EXPECT_EQ(a.enc_key, b.enc_key);
  EXPECT_EQ(a.mac_key, b.mac_key);
  EXPECT_EQ(a.enc_key.size(), 16u);
  EXPECT_EQ(a.iv_seed.size(), 8u);
  const SessionKeys c = derive_session_keys(pm, sr, cr);  // swapped randoms
  EXPECT_NE(a.enc_key, c.enc_key);
}

// --- client/server exchanges ------------------------------------------------

TEST_F(NetTest, SuccessfulExchange) {
  TlsClient client = make_client();
  HttpRequest req;
  req.path = "/hello";
  req.body = to_bytes("ping");
  const TlsExchangeResult result = client.request("api.example", req);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.response->headers.at("echo-path"), "/hello");
  EXPECT_EQ(result.response->body, to_bytes("ping"));
}

TEST_F(NetTest, UnknownHostReportsHostUnreachable) {
  TlsClient client = make_client();
  const TlsExchangeResult result = client.request("nope.example", HttpRequest{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, ErrorCode::HostUnreachable);
  EXPECT_FALSE(is_retryable(result.error));
  EXPECT_NE(result.error_detail.find("nope.example"), std::string::npos);
}

TEST_F(NetTest, UntrustedCaFailsHandshake) {
  TrustStore empty;
  TlsClient client(*network_, empty, rng_->fork());
  const auto result = client.request("api.example", HttpRequest{});
  EXPECT_EQ(result.handshake, HandshakeResult::UntrustedCertificate);
  EXPECT_FALSE(result.response.has_value());
}

TEST_F(NetTest, PinnedClientAcceptsRealServer) {
  TlsClient client = make_client();
  client.pins().pin("api.example", server_cert_->pin_value());
  EXPECT_TRUE(client.request("api.example", HttpRequest{}).ok());
}

// --- MITM proxy ------------------------------------------------------------------

TEST_F(NetTest, ProxyInterceptsWhenCaTrustedAndUnpinned) {
  MitmProxy proxy(*network_, rng_->fork());
  TrustStore trust;
  trust.add(*ca_);
  trust.add(proxy.ca());  // victim installed the proxy CA
  TlsClient client(*network_, trust, rng_->fork());
  client.set_proxy(&proxy);

  HttpRequest req;
  req.path = "/peek";
  req.body = to_bytes("visible");
  ASSERT_TRUE(client.request("api.example", req).ok());
  ASSERT_EQ(proxy.flows().size(), 1u);
  EXPECT_EQ(proxy.flows()[0].host, "api.example");
  EXPECT_EQ(proxy.flows()[0].request.body, to_bytes("visible"));
  EXPECT_EQ(proxy.flows()[0].response.headers.at("echo-path"), "/peek");
}

TEST_F(NetTest, ProxyBlockedWithoutUserInstalledCa) {
  MitmProxy proxy(*network_, rng_->fork());
  TlsClient client = make_client();  // trusts only the real CA
  client.set_proxy(&proxy);
  const auto result = client.request("api.example", HttpRequest{});
  EXPECT_EQ(result.handshake, HandshakeResult::UntrustedCertificate);
}

TEST_F(NetTest, PinningDefeatsProxyDespiteTrustedCa) {
  MitmProxy proxy(*network_, rng_->fork());
  TrustStore trust;
  trust.add(*ca_);
  trust.add(proxy.ca());
  TlsClient client(*network_, trust, rng_->fork());
  client.pins().pin("api.example", server_cert_->pin_value());
  client.set_proxy(&proxy);
  const auto result = client.request("api.example", HttpRequest{});
  EXPECT_EQ(result.handshake, HandshakeResult::PinMismatch);
}

TEST_F(NetTest, RepinningBypassDefeatsPinning) {
  // The paper's step: Frida overrides the pin verdict, the MITM wins.
  MitmProxy proxy(*network_, rng_->fork());
  TrustStore trust;
  trust.add(*ca_);
  trust.add(proxy.ca());
  TlsClient client(*network_, trust, rng_->fork());
  client.pins().pin("api.example", server_cert_->pin_value());
  client.set_proxy(&proxy);
  int bypasses = 0;
  client.set_pin_check_override([&](const std::string&, const Certificate&, bool ok) {
    if (!ok) ++bypasses;
    return true;
  });
  HttpRequest req;
  req.body = to_bytes("now visible");
  ASSERT_TRUE(client.request("api.example", req).ok());
  EXPECT_EQ(bypasses, 1);
  ASSERT_FALSE(proxy.flows().empty());
  EXPECT_EQ(proxy.flows().back().request.body, to_bytes("now visible"));
}

TEST_F(NetTest, HostnameMismatchRejected) {
  // Register the api.example identity under a different hostname.
  auto identity = make_server_identity("api.example", *ca_, *rng_, 512);
  network_->add_server("wrong.example",
                       std::make_shared<TlsServer>(std::move(identity),
                                                   [](const HttpRequest&) { return http_ok({}); },
                                                   2));
  TlsClient client = make_client();
  const auto result = client.request("wrong.example", HttpRequest{});
  EXPECT_EQ(result.handshake, HandshakeResult::HostnameMismatch);
}

}  // namespace
}  // namespace wideleak::net
