// BigInt arithmetic: known answers, algebraic identities (randomized), and
// the classic division corner cases (Knuth Algorithm D add-back paths).
#include <gtest/gtest.h>

#include <stdexcept>

#include "crypto/bigint.hpp"
#include "support/rng.hpp"

namespace wideleak::crypto {
namespace {

BigInt random_bigint(Rng& rng, std::size_t max_bytes) {
  return BigInt::from_bytes_be(rng.next_bytes(1 + rng.next_below(max_bytes)));
}

// --- construction & conversion ------------------------------------------

TEST(BigInt, ZeroProperties) {
  const BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_odd());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_hex(), "0");
  EXPECT_EQ(zero.to_u64(), 0u);
}

TEST(BigInt, U64RoundTrip) {
  for (const std::uint64_t v : {0ull, 1ull, 255ull, 0x100000000ull, 0xffffffffffffffffull}) {
    EXPECT_EQ(BigInt(v).to_u64(), v);
  }
}

TEST(BigInt, ToU64Overflow) {
  const BigInt big = BigInt(1) << 65;
  EXPECT_THROW(big.to_u64(), std::overflow_error);
}

TEST(BigInt, BytesRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    Bytes raw = rng.next_bytes(1 + rng.next_below(64));
    raw[0] |= 1;  // avoid leading zero ambiguity
    EXPECT_EQ(BigInt::from_bytes_be(raw).to_bytes_be(), raw);
  }
}

TEST(BigInt, ToBytesMinLengthPads) {
  EXPECT_EQ(BigInt(0x1234).to_bytes_be(4), (Bytes{0x00, 0x00, 0x12, 0x34}));
  EXPECT_EQ(BigInt(0x1234).to_bytes_be(), (Bytes{0x12, 0x34}));
}

TEST(BigInt, HexRoundTrip) {
  EXPECT_EQ(BigInt::from_hex("deadbeef").to_hex(), "deadbeef");
  EXPECT_EQ(BigInt::from_hex("0").to_hex(), "0");
  EXPECT_EQ(BigInt::from_hex("abc").to_u64(), 0xabcu);  // odd length accepted
}

TEST(BigInt, BitLength) {
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(0xff).bit_length(), 8u);
  EXPECT_EQ(BigInt(0x100).bit_length(), 9u);
  EXPECT_EQ((BigInt(1) << 1000).bit_length(), 1001u);
}

TEST(BigInt, BitAccess) {
  const BigInt v(0b1010);
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_FALSE(v.bit(100));
}

// --- comparison -----------------------------------------------------------

TEST(BigInt, Ordering) {
  EXPECT_LT(BigInt(5), BigInt(7));
  EXPECT_GT(BigInt(1) << 64, BigInt(UINT64_MAX));
  EXPECT_EQ(BigInt(42), BigInt(42));
  EXPECT_LT(BigInt(), BigInt(1));
}

// --- arithmetic -------------------------------------------------------------

TEST(BigInt, AdditionCarries) {
  EXPECT_EQ(BigInt(UINT64_MAX) + BigInt(1), BigInt(1) << 64);
  EXPECT_EQ((BigInt(0xffffffff) + BigInt(1)).to_u64(), 0x100000000ull);
}

TEST(BigInt, SubtractionBorrows) {
  EXPECT_EQ((BigInt(1) << 64) - BigInt(1), BigInt(UINT64_MAX));
  EXPECT_TRUE((BigInt(7) - BigInt(7)).is_zero());
}

TEST(BigInt, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigInt(3) - BigInt(4), std::domain_error);
}

TEST(BigInt, AddSubIdentityRandomized) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const BigInt a = random_bigint(rng, 48);
    const BigInt b = random_bigint(rng, 48);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ(a + b, b + a);
  }
}

TEST(BigInt, MultiplicationKnownValues) {
  EXPECT_EQ(BigInt(12345) * BigInt(67890), BigInt(838102050ull));
  EXPECT_TRUE((BigInt(12345) * BigInt()).is_zero());
  EXPECT_EQ(BigInt::from_hex("ffffffffffffffff") * BigInt::from_hex("ffffffffffffffff"),
            BigInt::from_hex("fffffffffffffffe0000000000000001"));
}

TEST(BigInt, MultiplicationDistributesRandomized) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const BigInt a = random_bigint(rng, 32);
    const BigInt b = random_bigint(rng, 32);
    const BigInt c = random_bigint(rng, 32);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(BigInt, ShiftsAreMultiplicationByPowersOfTwo) {
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const BigInt a = random_bigint(rng, 24);
    const std::size_t s = rng.next_below(70);
    EXPECT_EQ(a << s, a * BigInt::mod_pow(BigInt(2), BigInt(s), BigInt(1) << 200));
    EXPECT_EQ((a << s) >> s, a);
  }
}

TEST(BigInt, DivModIdentityRandomized) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const BigInt a = random_bigint(rng, 64);
    BigInt b = random_bigint(rng, 32);
    if (b.is_zero()) b = BigInt(1);
    const auto [q, r] = BigInt::divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(1) / BigInt(), std::domain_error);
  EXPECT_THROW(BigInt(1) % BigInt(), std::domain_error);
}

TEST(BigInt, DivisionSmallerDividend) {
  const auto [q, r] = BigInt::divmod(BigInt(5), BigInt(100));
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r, BigInt(5));
}

TEST(BigInt, DivisionSingleLimbDivisor) {
  const BigInt a = BigInt::from_hex("123456789abcdef0123456789abcdef");
  const auto [q, r] = BigInt::divmod(a, BigInt(10));
  EXPECT_EQ(q * BigInt(10) + r, a);
  EXPECT_LT(r, BigInt(10));
}

TEST(BigInt, KnuthDAddBackCase) {
  // A divisor pattern known to trigger the D6 add-back path:
  // u = b^4/2, v = b^2/2 + 1 in base 2^32 terms (Hacker's Delight example).
  const BigInt u = BigInt(1) << 127;
  const BigInt v = (BigInt(1) << 63) + BigInt(1);
  const auto [q, r] = BigInt::divmod(u, v);
  EXPECT_EQ(q * v + r, u);
  EXPECT_LT(r, v);
}

TEST(BigInt, DivisionByPowersOfTwoMatchesShift) {
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    const BigInt a = random_bigint(rng, 40);
    const std::size_t s = 1 + rng.next_below(100);
    EXPECT_EQ(a / (BigInt(1) << s), a >> s);
  }
}

// --- modular arithmetic -----------------------------------------------------

TEST(BigInt, ModPowKnownValues) {
  EXPECT_EQ(BigInt::mod_pow(BigInt(2), BigInt(10), BigInt(1000)), BigInt(24));
  EXPECT_EQ(BigInt::mod_pow(BigInt(3), BigInt(), BigInt(7)), BigInt(1));  // x^0 = 1
  EXPECT_EQ(BigInt::mod_pow(BigInt(5), BigInt(117), BigInt(19)), BigInt(1));  // Fermat: 5^18=1
}

TEST(BigInt, ModPowFermatLittleTheorem) {
  // a^(p-1) = 1 mod p for prime p = 2^61 - 1 (Mersenne prime).
  const BigInt p = (BigInt(1) << 61) - BigInt(1);
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const BigInt a = BigInt(2) + BigInt::random_below(rng, p - BigInt(3));
    EXPECT_EQ(BigInt::mod_pow(a, p - BigInt(1), p), BigInt(1));
  }
}

TEST(BigInt, ModInverseProperty) {
  Rng rng(8);
  const BigInt m = (BigInt(1) << 61) - BigInt(1);  // prime modulus
  for (int i = 0; i < 20; ++i) {
    const BigInt a = BigInt(2) + BigInt::random_below(rng, m - BigInt(3));
    const BigInt inv = BigInt::mod_inverse(a, m);
    EXPECT_EQ((a * inv) % m, BigInt(1));
  }
}

TEST(BigInt, ModInverseOfNonInvertibleThrows) {
  EXPECT_THROW(BigInt::mod_inverse(BigInt(6), BigInt(12)), std::domain_error);
}

TEST(BigInt, ModInverseCompositeModulus) {
  // e = 65537 mod phi-like composite.
  const BigInt e(65537);
  const BigInt phi = BigInt::from_hex("6f1d8a4b2c");
  if (BigInt::gcd(e, phi) == BigInt(1)) {
    const BigInt d = BigInt::mod_inverse(e, phi);
    EXPECT_EQ((e * d) % phi, BigInt(1));
  }
}

TEST(BigInt, GcdKnownValues) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(5)), BigInt(1));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(9)), BigInt(9));
}

// --- randomness & primality --------------------------------------------------

TEST(BigInt, RandomBelowInRange) {
  Rng rng(9);
  const BigInt bound = BigInt::from_hex("ffffffffffffffffffffffff");
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(BigInt::random_below(rng, bound), bound);
  }
}

TEST(BigInt, RandomBitsExactLength) {
  Rng rng(10);
  for (const std::size_t bits : {8, 17, 64, 129, 512}) {
    EXPECT_EQ(BigInt::random_bits(rng, bits).bit_length(), bits);
  }
}

TEST(BigInt, MillerRabinKnownPrimes) {
  Rng rng(11);
  for (const std::uint64_t p : {2ull, 3ull, 17ull, 65537ull, 2147483647ull}) {
    EXPECT_TRUE(BigInt::is_probable_prime(BigInt(p), rng)) << p;
  }
  // 2^61 - 1 is a Mersenne prime.
  EXPECT_TRUE(BigInt::is_probable_prime((BigInt(1) << 61) - BigInt(1), rng));
}

TEST(BigInt, MillerRabinKnownComposites) {
  Rng rng(12);
  for (const std::uint64_t c : {1ull, 4ull, 100ull, 65539ull * 3ull}) {
    EXPECT_FALSE(BigInt::is_probable_prime(BigInt(c), rng)) << c;
  }
  // Carmichael numbers fool Fermat but not Miller-Rabin.
  EXPECT_FALSE(BigInt::is_probable_prime(BigInt(561), rng));
  EXPECT_FALSE(BigInt::is_probable_prime(BigInt(41041), rng));
  EXPECT_FALSE(BigInt::is_probable_prime(BigInt(825265), rng));
}

TEST(BigInt, GeneratePrimeHasExactBitsAndIsPrime) {
  Rng rng(13);
  for (const std::size_t bits : {32, 64, 128}) {
    const BigInt p = BigInt::generate_prime(rng, bits);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(BigInt::is_probable_prime(p, rng));
  }
}

}  // namespace
}  // namespace wideleak::crypto
