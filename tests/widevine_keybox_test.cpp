// Keybox structure tests: the 128-byte layout, magic/CRC validation and
// factory provisioning determinism.
#include <gtest/gtest.h>

#include "support/crc32.hpp"
#include "support/rng.hpp"
#include "widevine/keybox.hpp"

namespace wideleak::widevine {
namespace {

Keybox sample_keybox() { return make_factory_keybox("test-device-001", 42); }

TEST(Keybox, SerializedFormIs128Bytes) {
  EXPECT_EQ(sample_keybox().serialize().size(), kKeyboxSize);
}

TEST(Keybox, LayoutOffsets) {
  const Keybox keybox = sample_keybox();
  const Bytes raw = keybox.serialize();
  // stable id at 0, device key at 32, key data at 48, magic at 120, crc at 124.
  EXPECT_EQ(Bytes(raw.begin(), raw.begin() + 32), keybox.stable_id());
  EXPECT_EQ(Bytes(raw.begin() + 32, raw.begin() + 48), keybox.device_key());
  EXPECT_EQ(Bytes(raw.begin() + 48, raw.begin() + 120), keybox.key_data());
  EXPECT_EQ(raw[120], 'k');
  EXPECT_EQ(raw[121], 'b');
  EXPECT_EQ(raw[122], 'o');
  EXPECT_EQ(raw[123], 'x');
}

TEST(Keybox, CrcCoversFirst124Bytes) {
  const Bytes raw = sample_keybox().serialize();
  const std::uint32_t stored = static_cast<std::uint32_t>(raw[124]) << 24 |
                               static_cast<std::uint32_t>(raw[125]) << 16 |
                               static_cast<std::uint32_t>(raw[126]) << 8 | raw[127];
  EXPECT_EQ(stored, crc32(BytesView(raw.data(), 124)));
}

TEST(Keybox, ParseRoundTrip) {
  const Keybox original = sample_keybox();
  const auto parsed = Keybox::parse(original.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
}

TEST(Keybox, ParseRejectsWrongSize) {
  const Bytes raw = sample_keybox().serialize();
  EXPECT_FALSE(Keybox::parse(BytesView(raw.data(), 127)).has_value());
  Bytes longer = raw;
  longer.push_back(0);
  EXPECT_FALSE(Keybox::parse(longer).has_value());
}

TEST(Keybox, ParseRejectsBadMagic) {
  Bytes raw = sample_keybox().serialize();
  raw[120] = 'K';
  EXPECT_FALSE(Keybox::parse(raw).has_value());
}

TEST(Keybox, ParseRejectsBadCrc) {
  Bytes raw = sample_keybox().serialize();
  raw[127] ^= 1;
  EXPECT_FALSE(Keybox::parse(raw).has_value());
}

TEST(Keybox, ParseRejectsTamperedBody) {
  // Any flip in the covered area must invalidate the CRC.
  for (const std::size_t at : {0u, 32u, 47u, 48u, 119u}) {
    Bytes raw = sample_keybox().serialize();
    raw[at] ^= 1;
    EXPECT_FALSE(Keybox::parse(raw).has_value()) << "offset " << at;
  }
}

TEST(Keybox, RandomBlobsNeverValidate) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(Keybox::parse(rng.next_bytes(kKeyboxSize)).has_value());
  }
}

TEST(Keybox, ConstructorRejectsBadFieldSizes) {
  Rng rng(10);
  EXPECT_THROW(Keybox(rng.next_bytes(31), SecretBytes(rng.next_bytes(16)), rng.next_bytes(72)),
               std::invalid_argument);
  EXPECT_THROW(Keybox(rng.next_bytes(32), SecretBytes(rng.next_bytes(15)), rng.next_bytes(72)),
               std::invalid_argument);
  EXPECT_THROW(Keybox(rng.next_bytes(32), SecretBytes(rng.next_bytes(16)), rng.next_bytes(73)),
               std::invalid_argument);
}

TEST(Keybox, FactoryIsDeterministicPerSerialAndSeed) {
  EXPECT_EQ(make_factory_keybox("serial-a", 1), make_factory_keybox("serial-a", 1));
  EXPECT_NE(make_factory_keybox("serial-a", 1).device_key(),
            make_factory_keybox("serial-b", 1).device_key());
  EXPECT_NE(make_factory_keybox("serial-a", 1).device_key(),
            make_factory_keybox("serial-a", 2).device_key());
}

TEST(Keybox, StableIdEmbedsSerial) {
  const Keybox keybox = make_factory_keybox("nexus5-1337", 42);
  const std::string id = to_string(BytesView(keybox.stable_id()));
  EXPECT_EQ(id.substr(0, 11), "nexus5-1337");
}

}  // namespace
}  // namespace wideleak::widevine
