// net::FaultyEndpoint + net::RetryPolicy — fault kinds fire at their
// configured rates with the right client-observable error codes, the whole
// injector replays bit-identically for a fixed seed, and the retry layer
// recovers retryable faults / gives up on budget exhaustion / stops dead on
// terminal ones.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/http.hpp"
#include "net/network.hpp"
#include "net/retry.hpp"
#include "net/tls.hpp"
#include "support/errors.hpp"
#include "support/sim_clock.hpp"

namespace wideleak::net {
namespace {

// Shared fixture: CA + one echo server identity (key generation is the slow
// part); each test wires its own Network + FaultyEndpoint around it.
class NetFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(0xFA17);
    ca_ = new CertificateAuthority("test-ca", *rng_, 512);
    identity_ = new ServerIdentity(make_server_identity("api.example", *ca_, *rng_, 512));
  }

  /// A fresh echo server sharing the fixture identity, deterministic seed.
  static std::shared_ptr<TlsServer> make_echo_server(std::uint64_t seed) {
    return std::make_shared<TlsServer>(
        *identity_, [](const HttpRequest& req) { return http_ok(req.body); }, seed);
  }

  /// One world: network + injector around the echo server. Returns the
  /// injector so tests can read its stats.
  struct World {
    Network network;
    std::shared_ptr<FaultyEndpoint> injector;
    support::SimClock clock;
  };

  static std::unique_ptr<World> make_world(const FaultPlan& plan, std::uint64_t seed) {
    auto world = std::make_unique<World>();
    world->injector = std::make_shared<FaultyEndpoint>(make_echo_server(seed + 1), *identity_,
                                                       plan, "api.example", seed, &world->clock);
    world->network.add_endpoint("api.example", world->injector, identity_->certificate);
    return world;
  }

  static TlsClient make_client(const Network& network, std::uint64_t seed) {
    TrustStore trust;
    trust.add(*ca_);
    return TlsClient(network, trust, Rng(seed));
  }

  /// A plan with one rule covering every host and class.
  static FaultPlan plan_with(FaultRates rates) {
    FaultPlan plan;
    plan.name = "test";
    plan.rules.push_back(
        FaultRule{.host_prefix = "", .request_class = std::nullopt, .rates = rates});
    return plan;
  }

  static Rng* rng_;
  static CertificateAuthority* ca_;
  static ServerIdentity* identity_;
};

Rng* NetFaultTest::rng_ = nullptr;
CertificateAuthority* NetFaultTest::ca_ = nullptr;
ServerIdentity* NetFaultTest::identity_ = nullptr;

constexpr int kExchanges = 250;

// --- plan plumbing ----------------------------------------------------------

TEST(FaultPlanTest, ClassifyPathCoversTheEcosystemRoutes) {
  EXPECT_EQ(classify_path("/provision"), RequestClass::Provisioning);
  EXPECT_EQ(classify_path("/license"), RequestClass::License);
  EXPECT_EQ(classify_path("/custom_license"), RequestClass::License);
  EXPECT_EQ(classify_path("/manifest"), RequestClass::Manifest);
  EXPECT_EQ(classify_path("/login"), RequestClass::Auth);
  EXPECT_EQ(classify_path("/video_720.mp4"), RequestClass::Segment);
  EXPECT_EQ(classify_path("/st/token0"), RequestClass::Segment);
}

TEST(FaultPlanTest, RatesMergeByMaximumAcrossMatchingRules) {
  FaultPlan plan;
  plan.rules.push_back(FaultRule{.host_prefix = "api.",
                                 .request_class = RequestClass::License,
                                 .rates = {.drop_pm = 100, .http_5xx_pm = 300}});
  plan.rules.push_back(FaultRule{.host_prefix = "api.",
                                 .request_class = std::nullopt,
                                 .rates = {.drop_pm = 200, .cert_swap_pm = 50}});

  const FaultRates license = plan.rates_for("api.x.example", RequestClass::License);
  EXPECT_EQ(license.drop_pm, 200u);      // max(100, 200)
  EXPECT_EQ(license.http_5xx_pm, 300u);  // only the class rule
  EXPECT_EQ(license.cert_swap_pm, 50u);

  const FaultRates auth = plan.rates_for("api.x.example", RequestClass::Auth);
  EXPECT_EQ(auth.drop_pm, 200u);  // class rule does not match
  EXPECT_EQ(auth.http_5xx_pm, 0u);

  EXPECT_TRUE(plan.applies_to("api.x.example"));
  EXPECT_FALSE(plan.applies_to("cdn.x.example"));
  EXPECT_EQ(plan.host_rates("api.x.example").http_5xx_pm, 300u);
}

TEST(FaultPlanTest, ProfileNamesRoundTrip) {
  for (const FaultProfile profile :
       {FaultProfile::None, FaultProfile::FlakyCdn, FaultProfile::FlakyLicense,
        FaultProfile::ByzantineLicense}) {
    EXPECT_EQ(fault_profile_from_string(to_string(profile)), profile);
  }
  EXPECT_FALSE(fault_profile_from_string("flaky-everything").has_value());
  EXPECT_TRUE(fault_plan_for(FaultProfile::None).empty());
  EXPECT_FALSE(fault_plan_for(FaultProfile::FlakyCdn).empty());
}

// --- fault kinds fire at their configured rates -----------------------------

TEST_F(NetFaultTest, DropsFireNearTheConfiguredRateAsConnectionDropped) {
  auto world = make_world(plan_with({.drop_pm = 200}), 0xD207);
  TlsClient client = make_client(world->network, 1);
  int dropped = 0;
  for (int i = 0; i < kExchanges; ++i) {
    const auto result = client.request("api.example", HttpRequest{});
    if (result.error == ErrorCode::ConnectionDropped) {
      ++dropped;
      EXPECT_TRUE(is_retryable(result.error));
      EXPECT_NE(result.error_detail.find("dropped"), std::string::npos);
    } else {
      EXPECT_TRUE(result.ok());
    }
  }
  EXPECT_EQ(dropped, static_cast<int>(world->injector->stats().drops));
  // 200/1000 of 250: generous band, the stream is seeded but not tuned.
  EXPECT_GT(dropped, kExchanges / 10);
  EXPECT_LT(dropped, kExchanges / 2);
}

TEST_F(NetFaultTest, Http5xxSurfacesAsHttpServerError) {
  auto world = make_world(plan_with({.http_5xx_pm = 200}), 0x5E77);
  TlsClient client = make_client(world->network, 2);
  int failed = 0;
  for (int i = 0; i < kExchanges; ++i) {
    const auto result = client.request("api.example", HttpRequest{});
    if (result.error == ErrorCode::HttpServerError) {
      ++failed;
      ASSERT_TRUE(result.response.has_value());
      EXPECT_EQ(result.response->status, 503);
      EXPECT_TRUE(is_retryable(result.error));
    }
  }
  EXPECT_EQ(failed, static_cast<int>(world->injector->stats().http_5xx));
  EXPECT_GT(failed, kExchanges / 10);
  EXPECT_LT(failed, kExchanges / 2);
}

TEST_F(NetFaultTest, TruncationCorruptsTheTransportRecord) {
  auto world = make_world(plan_with({.truncate_pm = 200}), 0x7214);
  TlsClient client = make_client(world->network, 3);
  int corrupt = 0;
  for (int i = 0; i < kExchanges; ++i) {
    const auto result = client.request("api.example", HttpRequest{});
    if (result.error == ErrorCode::TransportCorrupt) {
      ++corrupt;
      EXPECT_TRUE(is_retryable(result.error));
    }
  }
  EXPECT_EQ(corrupt, static_cast<int>(world->injector->stats().truncations));
  EXPECT_GT(corrupt, kExchanges / 10);
  EXPECT_LT(corrupt, kExchanges / 2);
}

TEST_F(NetFaultTest, CorruptionScramblesThePayloadButKeepsTransportIntact) {
  auto world = make_world(plan_with({.corrupt_pm = 200}), 0xC027);
  TlsClient client = make_client(world->network, 4);
  HttpRequest req;
  req.body = to_bytes("payload-under-test");
  int scrambled = 0;
  for (int i = 0; i < kExchanges; ++i) {
    const auto result = client.request("api.example", req);
    // Transport-level success either way: corruption is app-payload only.
    ASSERT_TRUE(result.ok());
    if (result.response->body != req.body) ++scrambled;
  }
  EXPECT_EQ(scrambled, static_cast<int>(world->injector->stats().corruptions));
  EXPECT_GT(scrambled, kExchanges / 10);
  EXPECT_LT(scrambled, kExchanges / 2);
}

TEST_F(NetFaultTest, CertSwapFailsTheHandshakeTerminally) {
  auto world = make_world(plan_with({.cert_swap_pm = 200}), 0xCE27);
  TlsClient client = make_client(world->network, 5);
  int swapped = 0;
  for (int i = 0; i < kExchanges; ++i) {
    const auto result = client.request("api.example", HttpRequest{});
    if (result.error == ErrorCode::HandshakeFailed) {
      ++swapped;
      EXPECT_EQ(result.handshake, HandshakeResult::UntrustedCertificate);
      EXPECT_FALSE(is_retryable(result.error));
    }
  }
  EXPECT_EQ(swapped, static_cast<int>(world->injector->stats().cert_swaps));
  EXPECT_GT(swapped, kExchanges / 10);
  EXPECT_LT(swapped, kExchanges / 2);
}

TEST_F(NetFaultTest, LatencyAdvancesTheSimClockOnly) {
  auto world = make_world(plan_with({.latency_pm = 300, .latency_ticks = 7}), 0x1A7E);
  TlsClient client = make_client(world->network, 6);
  for (int i = 0; i < kExchanges / 5; ++i) {
    EXPECT_TRUE(client.request("api.example", HttpRequest{}).ok());
  }
  const auto& stats = world->injector->stats();
  EXPECT_GT(stats.latency_injections, 0u);
  EXPECT_EQ(world->clock.now(), stats.latency_injections * 7);
  EXPECT_EQ(stats.total_faults(), stats.latency_injections);  // nothing else fired
}

// --- determinism ------------------------------------------------------------

TEST_F(NetFaultTest, SameSeedReplaysTheExactFaultSequence) {
  const FaultPlan plan = plan_with(
      {.drop_pm = 150, .truncate_pm = 100, .http_5xx_pm = 150, .corrupt_pm = 100});
  const auto run = [&](std::uint64_t seed) {
    auto world = make_world(plan, seed);
    TlsClient client = make_client(world->network, 42);
    std::vector<ErrorCode> errors;
    for (int i = 0; i < kExchanges / 2; ++i) {
      errors.push_back(client.request("api.example", HttpRequest{}).error);
    }
    return std::make_pair(errors, world->injector->stats());
  };

  const auto [errors_a, stats_a] = run(0xABCD);
  const auto [errors_b, stats_b] = run(0xABCD);
  EXPECT_EQ(errors_a, errors_b);
  EXPECT_EQ(stats_a.drops, stats_b.drops);
  EXPECT_EQ(stats_a.truncations, stats_b.truncations);
  EXPECT_EQ(stats_a.http_5xx, stats_b.http_5xx);
  EXPECT_EQ(stats_a.corruptions, stats_b.corruptions);
  EXPECT_GT(stats_a.total_faults(), 0u);

  const auto [errors_c, stats_c] = run(0xDCBA);  // different seed, different story
  EXPECT_NE(errors_a, errors_c);
}

// --- retry layer ------------------------------------------------------------

TEST(RetryPolicyTest, BackoffIsExponentialWithACap) {
  RetryPolicy policy;  // base 8, cap 128
  EXPECT_EQ(policy.backoff_for(1), 8u);
  EXPECT_EQ(policy.backoff_for(2), 16u);
  EXPECT_EQ(policy.backoff_for(3), 32u);
  EXPECT_EQ(policy.backoff_for(10), 128u);
}

TEST_F(NetFaultTest, RetryRecoversRetryableFaults) {
  auto world = make_world(plan_with({.drop_pm = 300, .http_5xx_pm = 200}), 0x2E72);
  TlsClient client = make_client(world->network, 7);
  RetryPolicy policy;
  RetryStats stats;
  Rng jitter(0x11);
  int successes = 0;
  for (int i = 0; i < kExchanges / 5; ++i) {
    const auto result = request_with_retry(client, "api.example", HttpRequest{}, policy,
                                           jitter, &world->clock, stats);
    if (result.ok()) ++successes;
  }
  // Per-attempt failure ~44%; with a 4-attempt budget nearly every logical
  // request lands. Retries happened, backoff advanced the simulated clock.
  EXPECT_GT(successes, kExchanges / 5 - 5);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.attempts, static_cast<std::uint64_t>(kExchanges / 5));
  EXPECT_GT(world->clock.now(), 0u);
}

TEST_F(NetFaultTest, RetryGivesUpWhenEveryAttemptFails) {
  auto world = make_world(plan_with({.drop_pm = 1000}), 0x61FE);
  TlsClient client = make_client(world->network, 8);
  RetryPolicy policy;
  RetryStats stats;
  Rng jitter(0x12);
  const auto result =
      request_with_retry(client, "api.example", HttpRequest{}, policy, jitter, &world->clock, stats);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, ErrorCode::ConnectionDropped);
  EXPECT_EQ(stats.attempts, 4u);  // the full budget
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.giveups, 1u);
}

TEST_F(NetFaultTest, TerminalErrorsAreNotRetried) {
  auto world = make_world(plan_with({.cert_swap_pm = 1000}), 0x7E27);
  TlsClient client = make_client(world->network, 9);
  RetryPolicy policy;
  RetryStats stats;
  Rng jitter(0x13);
  const auto result =
      request_with_retry(client, "api.example", HttpRequest{}, policy, jitter, &world->clock, stats);
  EXPECT_EQ(result.error, ErrorCode::HandshakeFailed);
  EXPECT_EQ(stats.attempts, 1u);  // no second attempt, no giveup accounting
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(world->clock.now(), 0u);  // no backoff either
}

TEST_F(NetFaultTest, ValidatorMakesCorruptPayloadsRetryable) {
  // Corruption alone looks like success at the transport layer; a payload
  // validator folds it into the retry loop.
  auto world = make_world(plan_with({.corrupt_pm = 1000}), 0x7A11);
  TlsClient client = make_client(world->network, 10);
  RetryPolicy policy;
  RetryStats stats;
  Rng jitter(0x14);
  HttpRequest req;
  req.body = to_bytes("expected");
  const auto expected = req.body;
  const auto result = request_with_retry(
      client, "api.example", req, policy, jitter, &world->clock, stats,
      [&expected](const HttpResponse& r) {
        return r.body == expected ? ErrorCode::None : ErrorCode::MalformedPayload;
      });
  EXPECT_EQ(result.error, ErrorCode::MalformedPayload);
  EXPECT_EQ(stats.attempts, 4u);
  EXPECT_EQ(stats.giveups, 1u);
}

TEST_F(NetFaultTest, EmptyPlanIsAByteTransparentWrapper) {
  // A FaultyEndpoint with no rules must not perturb the exchange at all —
  // this is the invariant that keeps chaos profile `none` bit-identical to
  // the pre-fault world.
  auto world = make_world(FaultPlan{}, 0x0);
  TlsClient client = make_client(world->network, 11);
  HttpRequest req;
  req.body = to_bytes("untouched");
  for (int i = 0; i < 20; ++i) {
    const auto result = client.request("api.example", req);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.response->body, req.body);
  }
  EXPECT_EQ(world->injector->stats().total_faults(), 0u);
  EXPECT_EQ(world->clock.now(), 0u);
}

}  // namespace
}  // namespace wideleak::net
