// core::CampaignRunner — determinism under parallelism, matrix accounting,
// the CDM-override axis, and Table I parity with the serial WideleakStudy.
//
// The first two tests deliberately run multi-worker matrices so the CI tsan
// job exercises the work-stealing pool's happens-before edges.
#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "ott/catalog.hpp"
#include "ott/ecosystem.hpp"
#include "widevine/protocol.hpp"

namespace wideleak::core {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kUnderTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kUnderTsan = true;
#else
constexpr bool kUnderTsan = false;
#endif
#else
constexpr bool kUnderTsan = false;
#endif

// A representative catalog slice: the secure-channel pioneer (Netflix), the
// custom-DRM fallback (Amazon), a revocation enforcer (Disney+) and a
// plain-vanilla service (Showtime). Full 3-profile device axis. Under tsan
// (5-15x slowdown) the slice shrinks to two apps — the pool's concurrency is
// what matters there, not catalog coverage.
CampaignSpec small_spec(std::size_t workers) {
  CampaignSpec spec;
  std::vector<const char*> names = {"Netflix", "Amazon Prime Video"};
  if (!kUnderTsan) {
    names.push_back("Disney+");
    names.push_back("Showtime");
  }
  for (const char* name : names) {
    const auto app = ott::find_app(name);
    EXPECT_TRUE(app.has_value()) << name;
    spec.apps.push_back(*app);
  }
  spec.workers = workers;
  return spec;
}

TEST(CampaignTest, ReportsAreBitIdenticalAcrossWorkerCounts) {
  CampaignResult serial = CampaignRunner(small_spec(1)).run();
  CampaignResult parallel = CampaignRunner(small_spec(4)).run();

  EXPECT_EQ(render_campaign_report(serial), render_campaign_report(parallel));
  EXPECT_EQ(render_table_one(campaign_to_audits(serial)),
            render_table_one(campaign_to_audits(parallel)));

  // Cell-level: every schedule-independent stat must match exactly, not just
  // the rendered summary.
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const CellStats& a = serial.cells[i].stats;
    const CellStats& b = parallel.cells[i].stats;
    EXPECT_EQ(a.calls_hooked, b.calls_hooked) << i;
    EXPECT_EQ(a.bytes_decrypted, b.bytes_decrypted) << i;
    EXPECT_EQ(a.bytes_ripped, b.bytes_ripped) << i;
    EXPECT_EQ(a.licenses_granted, b.licenses_granted) << i;
    EXPECT_EQ(a.licenses_denied, b.licenses_denied) << i;
    EXPECT_EQ(a.keys_issued, b.keys_issued) << i;
    EXPECT_EQ(a.keys_withheld, b.keys_withheld) << i;
    EXPECT_EQ(serial.cells[i].content_keys_recovered,
              parallel.cells[i].content_keys_recovered)
        << i;
  }
}

TEST(CampaignTest, MatrixShapeAndSchedulingAccounting) {
  const CampaignSpec spec = small_spec(3);
  const std::size_t expected_cells = spec.apps.size() * 3;  // x canonical profiles
  CampaignRunner runner(spec);
  EXPECT_EQ(runner.cell_count(), expected_cells);

  const CampaignResult result = runner.run();
  ASSERT_EQ(result.cells.size(), expected_cells);
  EXPECT_EQ(result.stats.workers, 3u);
  EXPECT_EQ(result.stats.cells, expected_cells);

  std::size_t executed = 0;
  for (const std::size_t n : result.stats.cells_per_worker) executed += n;
  EXPECT_EQ(executed, expected_cells);

  for (const CellResult& cell : result.cells) {
    EXPECT_GT(cell.stats.wall_ms, 0.0) << cell.app.name << "/" << cell.profile_name;
    // Cells that fell back to the app's embedded DRM never touch the
    // Widevine CDM, so their hook trace is legitimately empty.
    if (!cell.custom_drm_used) {
      EXPECT_GT(cell.stats.calls_hooked, 0u)
          << cell.app.name << "/" << cell.profile_name;
    }
  }
  EXPECT_GT(result.stats.totals.bytes_decrypted, 0u);
}

TEST(CampaignTest, CdmOverrideAxisIsolatesInsecureKeyboxStorage) {
  // Same hardware (modern TEE-less L3), two CDMs: the stock build keeps only
  // a masked keybox copy mapped, the legacy override leaves the raw keybox
  // in process memory (CWE-922 / CVE-2021-0639).
  CampaignSpec spec;
  spec.apps.push_back(*ott::find_app("Showtime"));
  spec.profiles.push_back({"l3-stock", DeviceClass::ModernL3, std::nullopt});
  spec.profiles.push_back({"l3-legacy-cdm", DeviceClass::ModernL3, widevine::kLegacyCdm});
  spec.workers = 2;

  const CampaignResult result = CampaignRunner(std::move(spec)).run();
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].cdm, widevine::kCurrentCdm);
  EXPECT_FALSE(result.cells[0].keybox_recovered);
  EXPECT_EQ(result.cells[1].cdm, widevine::kLegacyCdm);
  EXPECT_TRUE(result.cells[1].keybox_recovered);
}

TEST(CampaignTest, FullCatalogCampaignMatchesTheSerialStudy) {
  if (kUnderTsan) {
    GTEST_SKIP() << "full-catalog campaign is covered by the faster matrices "
                    "above under tsan";
  }

  ott::StreamingEcosystem ecosystem;
  ecosystem.install_catalog();
  WideleakStudy study(ecosystem);
  const std::string study_table = render_table_one(study.run_catalog());

  CampaignSpec spec;  // defaults: full catalog, canonical profiles
  spec.workers = 4;
  spec.attempt_rip = false;  // Table I needs only the audit pass
  const CampaignResult result = CampaignRunner(std::move(spec)).run();
  EXPECT_EQ(render_table_one(campaign_to_audits(result)), study_table);
}

}  // namespace
}  // namespace wideleak::core
